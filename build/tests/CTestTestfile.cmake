# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/flick_unit_tests[1]_include.cmake")
include("/root/repo/build/tests/flick_integration_tests[1]_include.cmake")
add_test(flickc_emit_aoi "/root/repo/build/src/flickc" "--emit-aoi" "/root/repo/idl/bench.x")
set_tests_properties(flickc_emit_aoi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;59;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(flickc_emit_presc "/root/repo/build/src/flickc" "--emit-presc" "/root/repo/idl/bank.idl")
set_tests_properties(flickc_emit_presc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;61;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(flickc_rejects_bad_input "/root/repo/build/src/flickc" "--emit-aoi" "/root/repo/README.md")
set_tests_properties(flickc_rejects_bad_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;63;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(flickc_rejects_unknown_backend "/root/repo/build/src/flickc" "-b" "warp" "/root/repo/idl/mail.idl")
set_tests_properties(flickc_rejects_unknown_backend PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;66;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(flickc_mig_pipeline "/root/repo/build/src/flickc" "-o" "/root/repo/build/tests/gen/cli_counter" "/root/repo/idl/counter.defs")
set_tests_properties(flickc_mig_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;70;add_test;/root/repo/tests/CMakeLists.txt;0;")
