# Empty dependencies file for flick_integration_tests.
# This may be replaced when dependencies are built.
