
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/IntegrationBank.cpp" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationBank.cpp.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationBank.cpp.o.d"
  "/root/repo/tests/IntegrationKitchen.cpp" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationKitchen.cpp.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationKitchen.cpp.o.d"
  "/root/repo/tests/IntegrationLenParam.cpp" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationLenParam.cpp.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationLenParam.cpp.o.d"
  "/root/repo/tests/IntegrationList.cpp" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationList.cpp.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationList.cpp.o.d"
  "/root/repo/tests/IntegrationMail.cpp" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationMail.cpp.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationMail.cpp.o.d"
  "/root/repo/tests/IntegrationMig.cpp" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationMig.cpp.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationMig.cpp.o.d"
  "/root/repo/tests/IntegrationWire.cpp" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationWire.cpp.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/IntegrationWire.cpp.o.d"
  "/root/repo/build/tests/gen/it_bank_client.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bank_client.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bank_client.cc.o.d"
  "/root/repo/build/tests/gen/it_bank_server.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bank_server.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bank_server.cc.o.d"
  "/root/repo/build/tests/gen/it_bn_client.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bn_client.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bn_client.cc.o.d"
  "/root/repo/build/tests/gen/it_bn_server.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bn_server.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bn_server.cc.o.d"
  "/root/repo/build/tests/gen/it_bn_xdr.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bn_xdr.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bn_xdr.cc.o.d"
  "/root/repo/build/tests/gen/it_bx_client.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bx_client.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bx_client.cc.o.d"
  "/root/repo/build/tests/gen/it_bx_server.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bx_server.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_bx_server.cc.o.d"
  "/root/repo/build/tests/gen/it_counter_client.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_counter_client.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_counter_client.cc.o.d"
  "/root/repo/build/tests/gen/it_counter_server.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_counter_server.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_counter_server.cc.o.d"
  "/root/repo/build/tests/gen/it_kitchen_client.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_kitchen_client.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_kitchen_client.cc.o.d"
  "/root/repo/build/tests/gen/it_kitchen_server.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_kitchen_server.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_kitchen_server.cc.o.d"
  "/root/repo/build/tests/gen/it_kitchenx_client.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_kitchenx_client.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_kitchenx_client.cc.o.d"
  "/root/repo/build/tests/gen/it_kitchenx_server.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_kitchenx_server.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_kitchenx_server.cc.o.d"
  "/root/repo/build/tests/gen/it_list_client.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_list_client.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_list_client.cc.o.d"
  "/root/repo/build/tests/gen/it_list_server.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_list_server.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_list_server.cc.o.d"
  "/root/repo/build/tests/gen/it_lmail_client.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_lmail_client.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_lmail_client.cc.o.d"
  "/root/repo/build/tests/gen/it_lmail_server.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_lmail_server.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_lmail_server.cc.o.d"
  "/root/repo/build/tests/gen/it_mail_client.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_mail_client.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_mail_client.cc.o.d"
  "/root/repo/build/tests/gen/it_mail_server.cc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_mail_server.cc.o" "gcc" "tests/CMakeFiles/flick_integration_tests.dir/gen/it_mail_server.cc.o.d"
  )

# Pairs of files generated by the same build rule.
set(CMAKE_MULTIPLE_OUTPUT_PAIRS
  "/root/repo/build/tests/gen/it_bank_client.cc" "/root/repo/build/tests/gen/it_bank.h"
  "/root/repo/build/tests/gen/it_bank_server.cc" "/root/repo/build/tests/gen/it_bank.h"
  "/root/repo/build/tests/gen/it_bn_client.cc" "/root/repo/build/tests/gen/it_bn.h"
  "/root/repo/build/tests/gen/it_bn_server.cc" "/root/repo/build/tests/gen/it_bn.h"
  "/root/repo/build/tests/gen/it_bn_xdr.cc" "/root/repo/build/tests/gen/it_bn.h"
  "/root/repo/build/tests/gen/it_bx_client.cc" "/root/repo/build/tests/gen/it_bx.h"
  "/root/repo/build/tests/gen/it_bx_server.cc" "/root/repo/build/tests/gen/it_bx.h"
  "/root/repo/build/tests/gen/it_counter_client.cc" "/root/repo/build/tests/gen/it_counter.h"
  "/root/repo/build/tests/gen/it_counter_server.cc" "/root/repo/build/tests/gen/it_counter.h"
  "/root/repo/build/tests/gen/it_kitchen_client.cc" "/root/repo/build/tests/gen/it_kitchen.h"
  "/root/repo/build/tests/gen/it_kitchen_server.cc" "/root/repo/build/tests/gen/it_kitchen.h"
  "/root/repo/build/tests/gen/it_kitchenx_client.cc" "/root/repo/build/tests/gen/it_kitchenx.h"
  "/root/repo/build/tests/gen/it_kitchenx_server.cc" "/root/repo/build/tests/gen/it_kitchenx.h"
  "/root/repo/build/tests/gen/it_list_client.cc" "/root/repo/build/tests/gen/it_list.h"
  "/root/repo/build/tests/gen/it_list_server.cc" "/root/repo/build/tests/gen/it_list.h"
  "/root/repo/build/tests/gen/it_lmail_client.cc" "/root/repo/build/tests/gen/it_lmail.h"
  "/root/repo/build/tests/gen/it_lmail_server.cc" "/root/repo/build/tests/gen/it_lmail.h"
  "/root/repo/build/tests/gen/it_mail_client.cc" "/root/repo/build/tests/gen/it_mail.h"
  "/root/repo/build/tests/gen/it_mail_server.cc" "/root/repo/build/tests/gen/it_mail.h"
  )


# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flick_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
