
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/BackendTextTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/BackendTextTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/BackendTextTests.cpp.o.d"
  "/root/repo/tests/CastPrintTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/CastPrintTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/CastPrintTests.cpp.o.d"
  "/root/repo/tests/CorbaParserTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/CorbaParserTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/CorbaParserTests.cpp.o.d"
  "/root/repo/tests/InterpTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/InterpTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/InterpTests.cpp.o.d"
  "/root/repo/tests/LexerTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/LexerTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/LexerTests.cpp.o.d"
  "/root/repo/tests/MigParserTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/MigParserTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/MigParserTests.cpp.o.d"
  "/root/repo/tests/MintTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/MintTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/MintTests.cpp.o.d"
  "/root/repo/tests/OncParserTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/OncParserTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/OncParserTests.cpp.o.d"
  "/root/repo/tests/PresGenTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/PresGenTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/PresGenTests.cpp.o.d"
  "/root/repo/tests/RuntimeTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/RuntimeTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/RuntimeTests.cpp.o.d"
  "/root/repo/tests/SupportTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/SupportTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/SupportTests.cpp.o.d"
  "/root/repo/tests/VerifyTests.cpp" "tests/CMakeFiles/flick_unit_tests.dir/VerifyTests.cpp.o" "gcc" "tests/CMakeFiles/flick_unit_tests.dir/VerifyTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flick_frontends.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_presgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_pres.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_aoi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_mint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_cast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
