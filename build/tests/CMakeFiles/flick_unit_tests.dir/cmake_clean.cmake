file(REMOVE_RECURSE
  "CMakeFiles/flick_unit_tests.dir/BackendTextTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/BackendTextTests.cpp.o.d"
  "CMakeFiles/flick_unit_tests.dir/CastPrintTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/CastPrintTests.cpp.o.d"
  "CMakeFiles/flick_unit_tests.dir/CorbaParserTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/CorbaParserTests.cpp.o.d"
  "CMakeFiles/flick_unit_tests.dir/InterpTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/InterpTests.cpp.o.d"
  "CMakeFiles/flick_unit_tests.dir/LexerTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/LexerTests.cpp.o.d"
  "CMakeFiles/flick_unit_tests.dir/MigParserTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/MigParserTests.cpp.o.d"
  "CMakeFiles/flick_unit_tests.dir/MintTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/MintTests.cpp.o.d"
  "CMakeFiles/flick_unit_tests.dir/OncParserTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/OncParserTests.cpp.o.d"
  "CMakeFiles/flick_unit_tests.dir/PresGenTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/PresGenTests.cpp.o.d"
  "CMakeFiles/flick_unit_tests.dir/RuntimeTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/RuntimeTests.cpp.o.d"
  "CMakeFiles/flick_unit_tests.dir/SupportTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/SupportTests.cpp.o.d"
  "CMakeFiles/flick_unit_tests.dir/VerifyTests.cpp.o"
  "CMakeFiles/flick_unit_tests.dir/VerifyTests.cpp.o.d"
  "flick_unit_tests"
  "flick_unit_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flick_unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
