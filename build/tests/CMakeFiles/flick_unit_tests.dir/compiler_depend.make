# Empty compiler generated dependencies file for flick_unit_tests.
# This may be replaced when dependencies are built.
