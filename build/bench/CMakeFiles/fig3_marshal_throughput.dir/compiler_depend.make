# Empty compiler generated dependencies file for fig3_marshal_throughput.
# This may be replaced when dependencies are built.
