file(REMOVE_RECURSE
  "CMakeFiles/fig3_marshal_throughput.dir/fig3_marshal_throughput.cpp.o"
  "CMakeFiles/fig3_marshal_throughput.dir/fig3_marshal_throughput.cpp.o.d"
  "CMakeFiles/fig3_marshal_throughput.dir/gen/b_cdr_client.cc.o"
  "CMakeFiles/fig3_marshal_throughput.dir/gen/b_cdr_client.cc.o.d"
  "CMakeFiles/fig3_marshal_throughput.dir/gen/b_flick_client.cc.o"
  "CMakeFiles/fig3_marshal_throughput.dir/gen/b_flick_client.cc.o.d"
  "CMakeFiles/fig3_marshal_throughput.dir/gen/b_naive_client.cc.o"
  "CMakeFiles/fig3_marshal_throughput.dir/gen/b_naive_client.cc.o.d"
  "CMakeFiles/fig3_marshal_throughput.dir/gen/b_naive_xdr.cc.o"
  "CMakeFiles/fig3_marshal_throughput.dir/gen/b_naive_xdr.cc.o.d"
  "fig3_marshal_throughput"
  "fig3_marshal_throughput.pdb"
  "gen/b_cdr.h"
  "gen/b_cdr_client.cc"
  "gen/b_cdr_server.cc"
  "gen/b_flick.h"
  "gen/b_flick_client.cc"
  "gen/b_flick_server.cc"
  "gen/b_naive.h"
  "gen/b_naive_client.cc"
  "gen/b_naive_server.cc"
  "gen/b_naive_xdr.cc"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_marshal_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
