# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_end_to_end_100mbit.
