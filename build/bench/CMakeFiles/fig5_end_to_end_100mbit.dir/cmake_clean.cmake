file(REMOVE_RECURSE
  "CMakeFiles/fig5_end_to_end_100mbit.dir/fig5_end_to_end_100mbit.cpp.o"
  "CMakeFiles/fig5_end_to_end_100mbit.dir/fig5_end_to_end_100mbit.cpp.o.d"
  "CMakeFiles/fig5_end_to_end_100mbit.dir/gen/b_flick_client.cc.o"
  "CMakeFiles/fig5_end_to_end_100mbit.dir/gen/b_flick_client.cc.o.d"
  "CMakeFiles/fig5_end_to_end_100mbit.dir/gen/b_flick_server.cc.o"
  "CMakeFiles/fig5_end_to_end_100mbit.dir/gen/b_flick_server.cc.o.d"
  "CMakeFiles/fig5_end_to_end_100mbit.dir/gen/b_naive_client.cc.o"
  "CMakeFiles/fig5_end_to_end_100mbit.dir/gen/b_naive_client.cc.o.d"
  "CMakeFiles/fig5_end_to_end_100mbit.dir/gen/b_naive_server.cc.o"
  "CMakeFiles/fig5_end_to_end_100mbit.dir/gen/b_naive_server.cc.o.d"
  "CMakeFiles/fig5_end_to_end_100mbit.dir/gen/b_naive_xdr.cc.o"
  "CMakeFiles/fig5_end_to_end_100mbit.dir/gen/b_naive_xdr.cc.o.d"
  "fig5_end_to_end_100mbit"
  "fig5_end_to_end_100mbit.pdb"
  "gen/b_flick.h"
  "gen/b_flick_client.cc"
  "gen/b_flick_server.cc"
  "gen/b_naive.h"
  "gen/b_naive_client.cc"
  "gen/b_naive_server.cc"
  "gen/b_naive_xdr.cc"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_end_to_end_100mbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
