# Empty dependencies file for table2_object_size.
# This may be replaced when dependencies are built.
