file(REMOVE_RECURSE
  "CMakeFiles/table1_code_reuse.dir/table1_code_reuse.cpp.o"
  "CMakeFiles/table1_code_reuse.dir/table1_code_reuse.cpp.o.d"
  "table1_code_reuse"
  "table1_code_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_code_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
