# Empty dependencies file for table1_code_reuse.
# This may be replaced when dependencies are built.
