file(REMOVE_RECURSE
  "CMakeFiles/fig6_end_to_end_myrinet.dir/fig6_end_to_end_myrinet.cpp.o"
  "CMakeFiles/fig6_end_to_end_myrinet.dir/fig6_end_to_end_myrinet.cpp.o.d"
  "CMakeFiles/fig6_end_to_end_myrinet.dir/gen/b_flick_client.cc.o"
  "CMakeFiles/fig6_end_to_end_myrinet.dir/gen/b_flick_client.cc.o.d"
  "CMakeFiles/fig6_end_to_end_myrinet.dir/gen/b_flick_server.cc.o"
  "CMakeFiles/fig6_end_to_end_myrinet.dir/gen/b_flick_server.cc.o.d"
  "CMakeFiles/fig6_end_to_end_myrinet.dir/gen/b_naive_client.cc.o"
  "CMakeFiles/fig6_end_to_end_myrinet.dir/gen/b_naive_client.cc.o.d"
  "CMakeFiles/fig6_end_to_end_myrinet.dir/gen/b_naive_server.cc.o"
  "CMakeFiles/fig6_end_to_end_myrinet.dir/gen/b_naive_server.cc.o.d"
  "CMakeFiles/fig6_end_to_end_myrinet.dir/gen/b_naive_xdr.cc.o"
  "CMakeFiles/fig6_end_to_end_myrinet.dir/gen/b_naive_xdr.cc.o.d"
  "fig6_end_to_end_myrinet"
  "fig6_end_to_end_myrinet.pdb"
  "gen/b_flick.h"
  "gen/b_flick_client.cc"
  "gen/b_flick_server.cc"
  "gen/b_naive.h"
  "gen/b_naive_client.cc"
  "gen/b_naive_server.cc"
  "gen/b_naive_xdr.cc"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_end_to_end_myrinet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
