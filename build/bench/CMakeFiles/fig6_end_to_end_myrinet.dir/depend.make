# Empty dependencies file for fig6_end_to_end_myrinet.
# This may be replaced when dependencies are built.
