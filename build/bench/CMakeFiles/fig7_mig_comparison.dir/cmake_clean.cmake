file(REMOVE_RECURSE
  "CMakeFiles/fig7_mig_comparison.dir/fig7_mig_comparison.cpp.o"
  "CMakeFiles/fig7_mig_comparison.dir/fig7_mig_comparison.cpp.o.d"
  "CMakeFiles/fig7_mig_comparison.dir/gen/b_mach_client.cc.o"
  "CMakeFiles/fig7_mig_comparison.dir/gen/b_mach_client.cc.o.d"
  "CMakeFiles/fig7_mig_comparison.dir/gen/b_mach_server.cc.o"
  "CMakeFiles/fig7_mig_comparison.dir/gen/b_mach_server.cc.o.d"
  "fig7_mig_comparison"
  "fig7_mig_comparison.pdb"
  "gen/b_mach.h"
  "gen/b_mach_client.cc"
  "gen/b_mach_server.cc"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mig_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
