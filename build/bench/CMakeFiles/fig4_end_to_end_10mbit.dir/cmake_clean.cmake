file(REMOVE_RECURSE
  "CMakeFiles/fig4_end_to_end_10mbit.dir/fig4_end_to_end_10mbit.cpp.o"
  "CMakeFiles/fig4_end_to_end_10mbit.dir/fig4_end_to_end_10mbit.cpp.o.d"
  "CMakeFiles/fig4_end_to_end_10mbit.dir/gen/b_flick_client.cc.o"
  "CMakeFiles/fig4_end_to_end_10mbit.dir/gen/b_flick_client.cc.o.d"
  "CMakeFiles/fig4_end_to_end_10mbit.dir/gen/b_flick_server.cc.o"
  "CMakeFiles/fig4_end_to_end_10mbit.dir/gen/b_flick_server.cc.o.d"
  "CMakeFiles/fig4_end_to_end_10mbit.dir/gen/b_naive_client.cc.o"
  "CMakeFiles/fig4_end_to_end_10mbit.dir/gen/b_naive_client.cc.o.d"
  "CMakeFiles/fig4_end_to_end_10mbit.dir/gen/b_naive_server.cc.o"
  "CMakeFiles/fig4_end_to_end_10mbit.dir/gen/b_naive_server.cc.o.d"
  "CMakeFiles/fig4_end_to_end_10mbit.dir/gen/b_naive_xdr.cc.o"
  "CMakeFiles/fig4_end_to_end_10mbit.dir/gen/b_naive_xdr.cc.o.d"
  "fig4_end_to_end_10mbit"
  "fig4_end_to_end_10mbit.pdb"
  "gen/b_flick.h"
  "gen/b_flick_client.cc"
  "gen/b_flick_server.cc"
  "gen/b_naive.h"
  "gen/b_naive_client.cc"
  "gen/b_naive_server.cc"
  "gen/b_naive_xdr.cc"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_end_to_end_10mbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
