file(REMOVE_RECURSE
  "libflick_presgen.a"
)
