# Empty compiler generated dependencies file for flick_presgen.
# This may be replaced when dependencies are built.
