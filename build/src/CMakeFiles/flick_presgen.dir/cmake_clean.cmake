file(REMOVE_RECURSE
  "CMakeFiles/flick_presgen.dir/presgen/CorbaStyle.cpp.o"
  "CMakeFiles/flick_presgen.dir/presgen/CorbaStyle.cpp.o.d"
  "CMakeFiles/flick_presgen.dir/presgen/MigStyle.cpp.o"
  "CMakeFiles/flick_presgen.dir/presgen/MigStyle.cpp.o.d"
  "CMakeFiles/flick_presgen.dir/presgen/PresGen.cpp.o"
  "CMakeFiles/flick_presgen.dir/presgen/PresGen.cpp.o.d"
  "CMakeFiles/flick_presgen.dir/presgen/RpcgenStyle.cpp.o"
  "CMakeFiles/flick_presgen.dir/presgen/RpcgenStyle.cpp.o.d"
  "libflick_presgen.a"
  "libflick_presgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flick_presgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
