# Empty compiler generated dependencies file for flick_pres.
# This may be replaced when dependencies are built.
