file(REMOVE_RECURSE
  "CMakeFiles/flick_pres.dir/pres/Pres.cpp.o"
  "CMakeFiles/flick_pres.dir/pres/Pres.cpp.o.d"
  "libflick_pres.a"
  "libflick_pres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flick_pres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
