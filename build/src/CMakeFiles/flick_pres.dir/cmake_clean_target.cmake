file(REMOVE_RECURSE
  "libflick_pres.a"
)
