file(REMOVE_RECURSE
  "CMakeFiles/flick_cast.dir/cast/Print.cpp.o"
  "CMakeFiles/flick_cast.dir/cast/Print.cpp.o.d"
  "libflick_cast.a"
  "libflick_cast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flick_cast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
