# Empty dependencies file for flick_cast.
# This may be replaced when dependencies are built.
