file(REMOVE_RECURSE
  "libflick_cast.a"
)
