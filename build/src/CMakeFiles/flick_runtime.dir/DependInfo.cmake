
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Calibrate.cpp" "src/CMakeFiles/flick_runtime.dir/runtime/Calibrate.cpp.o" "gcc" "src/CMakeFiles/flick_runtime.dir/runtime/Calibrate.cpp.o.d"
  "/root/repo/src/runtime/Channel.cpp" "src/CMakeFiles/flick_runtime.dir/runtime/Channel.cpp.o" "gcc" "src/CMakeFiles/flick_runtime.dir/runtime/Channel.cpp.o.d"
  "/root/repo/src/runtime/Interp.cpp" "src/CMakeFiles/flick_runtime.dir/runtime/Interp.cpp.o" "gcc" "src/CMakeFiles/flick_runtime.dir/runtime/Interp.cpp.o.d"
  "/root/repo/src/runtime/Naive.cpp" "src/CMakeFiles/flick_runtime.dir/runtime/Naive.cpp.o" "gcc" "src/CMakeFiles/flick_runtime.dir/runtime/Naive.cpp.o.d"
  "/root/repo/src/runtime/NetworkModel.cpp" "src/CMakeFiles/flick_runtime.dir/runtime/NetworkModel.cpp.o" "gcc" "src/CMakeFiles/flick_runtime.dir/runtime/NetworkModel.cpp.o.d"
  "/root/repo/src/runtime/Runtime.cpp" "src/CMakeFiles/flick_runtime.dir/runtime/Runtime.cpp.o" "gcc" "src/CMakeFiles/flick_runtime.dir/runtime/Runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
