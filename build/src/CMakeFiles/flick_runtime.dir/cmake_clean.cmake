file(REMOVE_RECURSE
  "CMakeFiles/flick_runtime.dir/runtime/Calibrate.cpp.o"
  "CMakeFiles/flick_runtime.dir/runtime/Calibrate.cpp.o.d"
  "CMakeFiles/flick_runtime.dir/runtime/Channel.cpp.o"
  "CMakeFiles/flick_runtime.dir/runtime/Channel.cpp.o.d"
  "CMakeFiles/flick_runtime.dir/runtime/Interp.cpp.o"
  "CMakeFiles/flick_runtime.dir/runtime/Interp.cpp.o.d"
  "CMakeFiles/flick_runtime.dir/runtime/Naive.cpp.o"
  "CMakeFiles/flick_runtime.dir/runtime/Naive.cpp.o.d"
  "CMakeFiles/flick_runtime.dir/runtime/NetworkModel.cpp.o"
  "CMakeFiles/flick_runtime.dir/runtime/NetworkModel.cpp.o.d"
  "CMakeFiles/flick_runtime.dir/runtime/Runtime.cpp.o"
  "CMakeFiles/flick_runtime.dir/runtime/Runtime.cpp.o.d"
  "libflick_runtime.a"
  "libflick_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flick_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
