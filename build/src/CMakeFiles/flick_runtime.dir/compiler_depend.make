# Empty compiler generated dependencies file for flick_runtime.
# This may be replaced when dependencies are built.
