file(REMOVE_RECURSE
  "libflick_runtime.a"
)
