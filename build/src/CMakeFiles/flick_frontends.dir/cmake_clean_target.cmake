file(REMOVE_RECURSE
  "libflick_frontends.a"
)
