# Empty dependencies file for flick_frontends.
# This may be replaced when dependencies are built.
