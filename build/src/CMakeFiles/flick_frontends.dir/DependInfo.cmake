
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontends/Lexer.cpp" "src/CMakeFiles/flick_frontends.dir/frontends/Lexer.cpp.o" "gcc" "src/CMakeFiles/flick_frontends.dir/frontends/Lexer.cpp.o.d"
  "/root/repo/src/frontends/corba/CorbaParser.cpp" "src/CMakeFiles/flick_frontends.dir/frontends/corba/CorbaParser.cpp.o" "gcc" "src/CMakeFiles/flick_frontends.dir/frontends/corba/CorbaParser.cpp.o.d"
  "/root/repo/src/frontends/mig/MigParser.cpp" "src/CMakeFiles/flick_frontends.dir/frontends/mig/MigParser.cpp.o" "gcc" "src/CMakeFiles/flick_frontends.dir/frontends/mig/MigParser.cpp.o.d"
  "/root/repo/src/frontends/oncrpc/OncParser.cpp" "src/CMakeFiles/flick_frontends.dir/frontends/oncrpc/OncParser.cpp.o" "gcc" "src/CMakeFiles/flick_frontends.dir/frontends/oncrpc/OncParser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flick_aoi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
