file(REMOVE_RECURSE
  "CMakeFiles/flick_frontends.dir/frontends/Lexer.cpp.o"
  "CMakeFiles/flick_frontends.dir/frontends/Lexer.cpp.o.d"
  "CMakeFiles/flick_frontends.dir/frontends/corba/CorbaParser.cpp.o"
  "CMakeFiles/flick_frontends.dir/frontends/corba/CorbaParser.cpp.o.d"
  "CMakeFiles/flick_frontends.dir/frontends/mig/MigParser.cpp.o"
  "CMakeFiles/flick_frontends.dir/frontends/mig/MigParser.cpp.o.d"
  "CMakeFiles/flick_frontends.dir/frontends/oncrpc/OncParser.cpp.o"
  "CMakeFiles/flick_frontends.dir/frontends/oncrpc/OncParser.cpp.o.d"
  "libflick_frontends.a"
  "libflick_frontends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flick_frontends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
