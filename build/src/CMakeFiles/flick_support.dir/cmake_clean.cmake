file(REMOVE_RECURSE
  "CMakeFiles/flick_support.dir/support/CodeWriter.cpp.o"
  "CMakeFiles/flick_support.dir/support/CodeWriter.cpp.o.d"
  "CMakeFiles/flick_support.dir/support/Diagnostics.cpp.o"
  "CMakeFiles/flick_support.dir/support/Diagnostics.cpp.o.d"
  "CMakeFiles/flick_support.dir/support/StringExtras.cpp.o"
  "CMakeFiles/flick_support.dir/support/StringExtras.cpp.o.d"
  "libflick_support.a"
  "libflick_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flick_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
