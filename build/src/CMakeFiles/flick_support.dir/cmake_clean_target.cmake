file(REMOVE_RECURSE
  "libflick_support.a"
)
