# Empty dependencies file for flick_support.
# This may be replaced when dependencies are built.
