file(REMOVE_RECURSE
  "CMakeFiles/flick_aoi.dir/aoi/Aoi.cpp.o"
  "CMakeFiles/flick_aoi.dir/aoi/Aoi.cpp.o.d"
  "CMakeFiles/flick_aoi.dir/aoi/Verify.cpp.o"
  "CMakeFiles/flick_aoi.dir/aoi/Verify.cpp.o.d"
  "libflick_aoi.a"
  "libflick_aoi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flick_aoi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
