# Empty compiler generated dependencies file for flick_aoi.
# This may be replaced when dependencies are built.
