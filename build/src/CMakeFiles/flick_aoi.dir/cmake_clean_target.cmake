file(REMOVE_RECURSE
  "libflick_aoi.a"
)
