# Empty compiler generated dependencies file for flick_mint.
# This may be replaced when dependencies are built.
