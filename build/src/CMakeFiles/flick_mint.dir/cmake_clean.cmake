file(REMOVE_RECURSE
  "CMakeFiles/flick_mint.dir/mint/Mint.cpp.o"
  "CMakeFiles/flick_mint.dir/mint/Mint.cpp.o.d"
  "CMakeFiles/flick_mint.dir/mint/Wire.cpp.o"
  "CMakeFiles/flick_mint.dir/mint/Wire.cpp.o.d"
  "libflick_mint.a"
  "libflick_mint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flick_mint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
