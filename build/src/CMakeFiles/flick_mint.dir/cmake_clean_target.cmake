file(REMOVE_RECURSE
  "libflick_mint.a"
)
