
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/Backend.cpp" "src/CMakeFiles/flick_backends.dir/backends/Backend.cpp.o" "gcc" "src/CMakeFiles/flick_backends.dir/backends/Backend.cpp.o.d"
  "/root/repo/src/backends/Factory.cpp" "src/CMakeFiles/flick_backends.dir/backends/Factory.cpp.o" "gcc" "src/CMakeFiles/flick_backends.dir/backends/Factory.cpp.o.d"
  "/root/repo/src/backends/FlukeBackend.cpp" "src/CMakeFiles/flick_backends.dir/backends/FlukeBackend.cpp.o" "gcc" "src/CMakeFiles/flick_backends.dir/backends/FlukeBackend.cpp.o.d"
  "/root/repo/src/backends/IiopBackend.cpp" "src/CMakeFiles/flick_backends.dir/backends/IiopBackend.cpp.o" "gcc" "src/CMakeFiles/flick_backends.dir/backends/IiopBackend.cpp.o.d"
  "/root/repo/src/backends/MachBackend.cpp" "src/CMakeFiles/flick_backends.dir/backends/MachBackend.cpp.o" "gcc" "src/CMakeFiles/flick_backends.dir/backends/MachBackend.cpp.o.d"
  "/root/repo/src/backends/XdrBackend.cpp" "src/CMakeFiles/flick_backends.dir/backends/XdrBackend.cpp.o" "gcc" "src/CMakeFiles/flick_backends.dir/backends/XdrBackend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flick_presgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_pres.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_aoi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_mint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_cast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
