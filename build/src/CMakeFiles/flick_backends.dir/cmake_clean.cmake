file(REMOVE_RECURSE
  "CMakeFiles/flick_backends.dir/backends/Backend.cpp.o"
  "CMakeFiles/flick_backends.dir/backends/Backend.cpp.o.d"
  "CMakeFiles/flick_backends.dir/backends/Factory.cpp.o"
  "CMakeFiles/flick_backends.dir/backends/Factory.cpp.o.d"
  "CMakeFiles/flick_backends.dir/backends/FlukeBackend.cpp.o"
  "CMakeFiles/flick_backends.dir/backends/FlukeBackend.cpp.o.d"
  "CMakeFiles/flick_backends.dir/backends/IiopBackend.cpp.o"
  "CMakeFiles/flick_backends.dir/backends/IiopBackend.cpp.o.d"
  "CMakeFiles/flick_backends.dir/backends/MachBackend.cpp.o"
  "CMakeFiles/flick_backends.dir/backends/MachBackend.cpp.o.d"
  "CMakeFiles/flick_backends.dir/backends/XdrBackend.cpp.o"
  "CMakeFiles/flick_backends.dir/backends/XdrBackend.cpp.o.d"
  "libflick_backends.a"
  "libflick_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flick_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
