file(REMOVE_RECURSE
  "libflick_backends.a"
)
