# Empty compiler generated dependencies file for flick_backends.
# This may be replaced when dependencies are built.
