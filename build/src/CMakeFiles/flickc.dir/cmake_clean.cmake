file(REMOVE_RECURSE
  "CMakeFiles/flickc.dir/driver/flickc.cpp.o"
  "CMakeFiles/flickc.dir/driver/flickc.cpp.o.d"
  "flickc"
  "flickc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flickc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
