
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/flickc.cpp" "src/CMakeFiles/flickc.dir/driver/flickc.cpp.o" "gcc" "src/CMakeFiles/flickc.dir/driver/flickc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flick_frontends.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_presgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_pres.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_aoi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_mint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_cast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/flick_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
