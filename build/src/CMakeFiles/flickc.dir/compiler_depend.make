# Empty compiler generated dependencies file for flickc.
# This may be replaced when dependencies are built.
