file(REMOVE_RECURSE
  "CMakeFiles/quickstart.dir/gen/ex_mail_client.cc.o"
  "CMakeFiles/quickstart.dir/gen/ex_mail_client.cc.o.d"
  "CMakeFiles/quickstart.dir/gen/ex_mail_server.cc.o"
  "CMakeFiles/quickstart.dir/gen/ex_mail_server.cc.o.d"
  "CMakeFiles/quickstart.dir/quickstart.cpp.o"
  "CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  "gen/ex_mail.h"
  "gen/ex_mail_client.cc"
  "gen/ex_mail_server.cc"
  "quickstart"
  "quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
