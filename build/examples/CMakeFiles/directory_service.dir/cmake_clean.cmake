file(REMOVE_RECURSE
  "CMakeFiles/directory_service.dir/directory_service.cpp.o"
  "CMakeFiles/directory_service.dir/directory_service.cpp.o.d"
  "CMakeFiles/directory_service.dir/gen/ex_dir_client.cc.o"
  "CMakeFiles/directory_service.dir/gen/ex_dir_client.cc.o.d"
  "CMakeFiles/directory_service.dir/gen/ex_dir_server.cc.o"
  "CMakeFiles/directory_service.dir/gen/ex_dir_server.cc.o.d"
  "directory_service"
  "directory_service.pdb"
  "gen/ex_dir.h"
  "gen/ex_dir_client.cc"
  "gen/ex_dir_server.cc"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
