file(REMOVE_RECURSE
  "CMakeFiles/bank_teller.dir/bank_teller.cpp.o"
  "CMakeFiles/bank_teller.dir/bank_teller.cpp.o.d"
  "CMakeFiles/bank_teller.dir/gen/ex_bank_client.cc.o"
  "CMakeFiles/bank_teller.dir/gen/ex_bank_client.cc.o.d"
  "CMakeFiles/bank_teller.dir/gen/ex_bank_server.cc.o"
  "CMakeFiles/bank_teller.dir/gen/ex_bank_server.cc.o.d"
  "bank_teller"
  "bank_teller.pdb"
  "gen/ex_bank.h"
  "gen/ex_bank_client.cc"
  "gen/ex_bank_server.cc"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_teller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
