# Empty compiler generated dependencies file for bank_teller.
# This may be replaced when dependencies are built.
