file(REMOVE_RECURSE
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_fluke_client.cc.o"
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_fluke_client.cc.o.d"
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_fluke_server.cc.o"
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_fluke_server.cc.o.d"
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_iiop_client.cc.o"
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_iiop_client.cc.o.d"
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_iiop_server.cc.o"
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_iiop_server.cc.o.d"
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_mach_client.cc.o"
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_mach_client.cc.o.d"
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_mach_server.cc.o"
  "CMakeFiles/mix_and_match.dir/gen/ex_mail_mach_server.cc.o.d"
  "CMakeFiles/mix_and_match.dir/mix_and_match.cpp.o"
  "CMakeFiles/mix_and_match.dir/mix_and_match.cpp.o.d"
  "gen/ex_mail_fluke.h"
  "gen/ex_mail_fluke_client.cc"
  "gen/ex_mail_fluke_server.cc"
  "gen/ex_mail_iiop.h"
  "gen/ex_mail_iiop_client.cc"
  "gen/ex_mail_iiop_server.cc"
  "gen/ex_mail_mach.h"
  "gen/ex_mail_mach_client.cc"
  "gen/ex_mail_mach_server.cc"
  "mix_and_match"
  "mix_and_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_and_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
