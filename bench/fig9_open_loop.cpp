//===- bench/fig9_open_loop.cpp - latency under offered load --------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Latency-under-load curves for the async pipelined client: an
/// open-loop Poisson-arrival generator drives int-array RPCs through one
/// connection per transport (threaded queue, sharded rings, Unix
/// sockets + epoll) into a small worker pool, and reports the latency
/// distribution at each offered load.
///
/// Closed-loop driving (the fig4-8 benches) can never observe queueing
/// collapse: the client only submits after the previous reply lands, so
/// offered load falls automatically as the server slows -- coordinated
/// omission.  Here arrivals are scheduled by an exponential inter-arrival
/// clock that does not care how the server is doing, each call's latency
/// is measured from its *scheduled* arrival (so time spent blocked on the
/// flow-control window counts), and the curve shows the saturation knee:
/// flat p99 at low load, a sharp climb as offered load approaches the
/// pipelined capacity.
///
/// Three measurements per transport, all over unmodeled links (no wire
/// model: the subject is pipelining and queueing mechanics, not the
/// paper's 1997 wire):
///   1. closed-loop capacity: one client, synchronous stub calls.
///   2. pipelined capacity: one client, async submits at --pipeline-depth
///      (default 16) calls in flight.  The acceptance gate
///      (check_fig9.py) requires >= 3x closed-loop on sharded and socket
///      when the machine has >= 4 cores.
///   3. the open-loop sweep at 50/80/95% of the pipelined capacity,
///      emitting p50/p99/p999 (scheduled-arrival latency), goodput, and
///      the window_stalls count per row.
///
/// Uniform bench CLI: --transport=threaded|sharded|socket restricts the
/// sweep (FLICK_BENCH_TRANSPORT is the fallback), --pipeline-depth=N
/// sets the window; unknown options exit 2.  FLICK_FIG9_QUICK=1 shrinks
/// the measurement windows for smoke runs.  Open-loop JSON rows carry
/// {pipeline_depth, offered_pct} key fields (offered_pct rather than the
/// raw rate so keys survive hardware changes; compare_baseline.py folds
/// both into the row key).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "b_cdr.h"
#include "runtime/transport/Transport.h"
#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

using namespace flickbench;

// Work functions so the generated dispatcher links; decode has already
// happened when these run, so empty bodies still measure the full path.
void C_Transfer_send_ints_server(const C_IntSeq *, CORBA_Environment *) {}
void C_Transfer_send_rects_server(const C_RectSeq *, CORBA_Environment *) {}
void C_Transfer_send_dirents_server(const C_DirentSeq *,
                                    CORBA_Environment *) {}

namespace {

using Clock = std::chrono::steady_clock;

double secsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

constexpr size_t PayloadBytes = 1024;

/// One transport + pool + connected client, torn down per measurement so
/// rows are independent.
struct Rig {
  std::unique_ptr<flick::Transport> Link;
  flick_server_pool Pool;
  flick_client Cli;
  bool Ok = false;

  Rig(const char *Transport, unsigned Workers) {
    Link = flick::makeTransport(Transport);
    if (!Link)
      return;
    if (flick_server_pool_start(&Pool, Link.get(), C_Transfer_dispatch,
                                Workers) != FLICK_OK)
      return;
    flick_client_init(&Cli, &Link->connect());
    char EpName[32];
    std::snprintf(EpName, sizeof(EpName), "openloop@%s", Transport);
    Cli.endpoint = flick_endpoint_intern(EpName);
    Ok = true;
  }
  ~Rig() {
    if (Ok) {
      flick_client_destroy(&Cli);
      flick_server_pool_stop(&Pool);
    }
  }
};

/// Closed-loop capacity: synchronous calls back to back on one client.
double closedLoopRate(const char *Transport, unsigned Workers,
                      const C_IntSeq *Seq, double WindowSecs) {
  Rig R(Transport, Workers);
  if (!R.Ok)
    return -1;
  flick_obj Obj;
  Obj.client = &R.Cli;
  CORBA_Environment Ev{};
  auto T0 = Clock::now();
  auto Deadline = T0 + std::chrono::duration<double>(WindowSecs);
  uint64_t Calls = 0;
  while (Clock::now() < Deadline) {
    C_Transfer_send_ints(reinterpret_cast<C_Transfer>(&Obj),
                         const_cast<C_IntSeq *>(Seq), &Ev);
    if (Ev._major != CORBA_NO_EXCEPTION)
      return -1;
    ++Calls;
  }
  double Secs = secsSince(T0);
  return Secs > 0 ? static_cast<double>(Calls) / Secs : -1;
}

struct OpenLoopState;

/// Completion context for one in-flight open-loop call: the scheduled
/// arrival it is measured from, recycled through a free list sized to
/// the window (completions bound outstanding contexts).
struct Arrival {
  double SchedNs = 0;
  OpenLoopState *St = nullptr;
  Arrival *Next = nullptr;
};

struct OpenLoopState {
  flick_async_client *A = nullptr;
  flick_latency_hist Hist; ///< scheduled-arrival -> completion, us
  Clock::time_point T0;
  uint64_t Completed = 0;
  bool Failed = false;
  Arrival *Free = nullptr;
};

/// Shared reply validation: decode with the stub and flag any failure.
bool replyOk(flick_call *Call) {
  CORBA_Environment Ev{};
  return Call->status == FLICK_OK &&
         C_Transfer_send_ints_decode_reply(&Call->rep, &Ev) == FLICK_OK &&
         Ev._major == CORBA_NO_EXCEPTION;
}

/// Capacity-flood completion: validate and recycle, nothing measured
/// per call (the flood's own submit count is the metric).
void onFloodDone(flick_call *Call, void *P) {
  auto *St = static_cast<OpenLoopState *>(P);
  if (!replyOk(Call))
    St->Failed = true;
  ++St->Completed;
  flick_async_release(St->A, Call);
}

/// Open-loop completion: the ctx is this call's Arrival, carrying the
/// scheduled time the latency is measured from.
void onOpenLoopDone(flick_call *Call, void *P) {
  auto *Ar = static_cast<Arrival *>(P);
  OpenLoopState *St = Ar->St;
  if (!replyOk(Call))
    St->Failed = true;
  double NowNs =
      std::chrono::duration<double, std::nano>(Clock::now() - St->T0)
          .count();
  flick_hist_record(&St->Hist, (NowNs - Ar->SchedNs) * 1e-3);
  ++St->Completed;
  Ar->Next = St->Free;
  St->Free = Ar;
  flick_async_release(St->A, Call);
}

/// Pipelined capacity: async submits as fast as the window allows.
double pipelinedRate(const char *Transport, unsigned Workers,
                     const C_IntSeq *Seq, unsigned Depth,
                     double WindowSecs) {
  Rig R(Transport, Workers);
  if (!R.Ok)
    return -1;
  flick_async_opts Opts;
  Opts.window = Depth;
  flick_async_client A;
  if (flick_async_client_init(&A, R.Cli.chan, &Opts) != FLICK_OK)
    return -1;
  A.endpoint = R.Cli.endpoint;
  OpenLoopState St;
  St.A = &A;
  uint32_t Xid = 0;
  uint64_t Calls = 0;
  auto T0 = Clock::now();
  auto Deadline = T0 + std::chrono::duration<double>(WindowSecs);
  while (Clock::now() < Deadline && !St.Failed) {
    C_Transfer_send_ints_encode_request(flick_async_begin(&A), ++Xid, Seq);
    flick_call *Call = nullptr;
    if (flick_async_submit(&A, &Call, onFloodDone, &St) != FLICK_OK) {
      St.Failed = true;
      break;
    }
    ++Calls;
  }
  if (flick_async_drain(&A) != FLICK_OK)
    St.Failed = true;
  double Secs = secsSince(T0);
  flick_async_client_destroy(&A);
  if (St.Failed || Secs <= 0)
    return -1;
  return static_cast<double>(Calls) / Secs;
}

struct OpenLoopResult {
  double TargetRps = 0;   ///< the Poisson process's rate parameter
  double AchievedRps = 0; ///< submits per second actually issued
  double GoodputRps = 0;  ///< completions per second
  double P50Us = 0, P99Us = 0, P999Us = 0, MaxUs = 0;
  uint64_t Stalls = 0; ///< submits that found the window full
  bool Ok = false;
};

/// One open-loop run: exponential inter-arrival times at \p TargetRps;
/// each call's latency is recorded from its scheduled arrival, so both
/// window-stall time (client-side queueing) and server-side queueing
/// land in the histogram -- the open-loop number closed-loop driving
/// cannot produce.
OpenLoopResult openLoopRun(const char *Transport, unsigned Workers,
                           const C_IntSeq *Seq, unsigned Depth,
                           double TargetRps, double WindowSecs,
                           uint64_t Seed) {
  OpenLoopResult Res;
  Res.TargetRps = TargetRps;
  if (TargetRps <= 0)
    return Res;
  Rig R(Transport, Workers);
  if (!R.Ok)
    return Res;
  flick_async_opts Opts;
  Opts.window = Depth;
  flick_async_client A;
  if (flick_async_client_init(&A, R.Cli.chan, &Opts) != FLICK_OK)
    return Res;
  A.endpoint = R.Cli.endpoint;

  OpenLoopState St;
  St.A = &A;
  // Window+1 arrival contexts cover every call that can be outstanding.
  std::vector<Arrival> Slab(Depth + 1);
  for (auto &Ar : Slab) {
    Ar.St = &St;
    Ar.Next = St.Free;
    St.Free = &Ar;
  }

  std::mt19937_64 Rng(Seed);
  std::exponential_distribution<double> Gap(TargetRps);
  uint64_t Stalls0 =
      flick_gauges_global.window_stalls.load(std::memory_order_relaxed);

  St.T0 = Clock::now();
  auto T0 = St.T0;
  double NextNs = 0; // scheduled arrival, ns since T0
  uint64_t Submitted = 0;
  double WindowNs = WindowSecs * 1e9;
  while (NextNs < WindowNs && !St.Failed) {
    // Wait out the gap to the scheduled arrival.  Spinning keeps the
    // schedule honest at microsecond gaps; the window is short.
    while (std::chrono::duration<double, std::nano>(Clock::now() - T0)
               .count() < NextNs)
      ;
    Arrival *Ar = St.Free;
    St.Free = Ar->Next;
    Ar->SchedNs = NextNs;
    C_Transfer_send_ints_encode_request(flick_async_begin(&A),
                                        static_cast<uint32_t>(++Submitted),
                                        Seq);
    flick_call *Call = nullptr;
    // Blocking submit: when the window is full this pumps completions
    // first (counted in window_stalls), exactly the client-side queueing
    // the scheduled-arrival latency is meant to expose.  Each submit
    // carries its own Arrival as the completion context.
    if (flick_async_submit(&A, &Call, onOpenLoopDone, Ar) != FLICK_OK) {
      St.Failed = true;
      break;
    }
    NextNs += Gap(Rng) * 1e9;
  }
  if (flick_async_drain(&A) != FLICK_OK)
    St.Failed = true;
  double Secs = secsSince(T0);
  flick_async_client_destroy(&A);
  if (St.Failed || Secs <= 0 || !St.Hist.count)
    return Res;
  Res.AchievedRps = static_cast<double>(Submitted) / Secs;
  Res.GoodputRps = static_cast<double>(St.Completed) / Secs;
  Res.P50Us = flick_hist_percentile(&St.Hist, 0.50);
  Res.P99Us = flick_hist_percentile(&St.Hist, 0.99);
  Res.P999Us = flick_hist_percentile(&St.Hist, 0.999);
  Res.MaxUs = St.Hist.max_us;
  Res.Stalls =
      flick_gauges_global.window_stalls.load(std::memory_order_relaxed) -
      Stalls0;
  Res.Ok = true;
  return Res;
}

} // namespace

int main(int argc, char **argv) {
  flick_metrics *M = benchMetricsIfJson();
  flick_gauges_enable(); // window_stalls per open-loop row
  bool Quick = std::getenv("FLICK_FIG9_QUICK") != nullptr;
  double WindowSecs = Quick ? 0.1 : 0.4;

  std::vector<const char *> Transports = {"threaded", "sharded", "socket"};
  const char *Only = std::getenv("FLICK_BENCH_TRANSPORT");
  unsigned Depth = 16;
  for (int I = 1; I != argc; ++I) {
    if (std::strncmp(argv[I], "--transport=", 12) == 0) {
      Only = argv[I] + 12;
    } else if (std::strncmp(argv[I], "--pipeline-depth=", 17) == 0) {
      char *End = nullptr;
      long D = std::strtol(argv[I] + 17, &End, 10);
      if (!End || *End || D < 1 || D > 65536) {
        std::fprintf(stderr,
                     "fig9: bad --pipeline-depth '%s' (want an integer "
                     ">= 1)\n",
                     argv[I] + 17);
        return 2;
      }
      Depth = static_cast<unsigned>(D);
    } else {
      std::fprintf(stderr,
                   "fig9: unknown option '%s' (supported: "
                   "--transport=threaded|sharded|socket, "
                   "--pipeline-depth=N)\n",
                   argv[I]);
      return 2;
    }
  }
  if (Only && *Only) {
    if (!flick::makeTransport(Only)) {
      std::fprintf(stderr, "fig9: unknown transport '%s'\n", Only);
      return 2;
    }
    Transports = {Only};
  }

  unsigned Workers = std::thread::hardware_concurrency();
  if (Workers < 2)
    Workers = 2;
  if (Workers > 4)
    Workers = 4;

  uint32_t N = static_cast<uint32_t>(PayloadBytes / 4);
  std::vector<int32_t> Data(N);
  for (uint32_t I = 0; I != N; ++I)
    Data[I] = static_cast<int32_t>(I * 2654435761u);
  C_IntSeq Seq{0, N, Data.data()};

  std::printf("=== Open-loop latency under load (async pipelined client) "
              "===\nPoisson arrivals into one connection, %u pool workers, "
              "%zu B int arrays,\ndepth %u, unmodeled links; latency is "
              "measured from each call's *scheduled*\narrival, so queueing "
              "(window stalls included) cannot hide.\n\n",
              Workers, PayloadBytes, Depth);
  std::printf("%10s %9s %11s %11s %11s %9s %9s %9s %8s\n", "transport",
              "offered", "target/s", "goodput/s", "p50(us)", "p99(us)",
              "p999(us)", "max(us)", "stalls");

  for (const char *T : Transports) {
    double Closed = closedLoopRate(T, Workers, &Seq, WindowSecs);
    if (Closed <= 0) {
      std::fprintf(stderr, "fig9: closed-loop run failed on %s\n", T);
      return 1;
    }
    double Piped = pipelinedRate(T, Workers, &Seq, Depth, WindowSecs);
    if (Piped <= 0) {
      std::fprintf(stderr, "fig9: pipelined run failed on %s\n", T);
      return 1;
    }
    double Speedup = Piped / Closed;
    std::printf("%10s  capacity: closed %.0f rpc/s, pipelined %.0f rpc/s "
                "(%.2fx)\n",
                T, Closed, Piped, Speedup);
    char Series[48];
    std::snprintf(Series, sizeof(Series), "%s-closed", T);
    JsonReport::Row RowC;
    RowC.str("workload", "capacity")
        .str("series", Series)
        .str("transport", T)
        .num("payload_bytes", PayloadBytes)
        .num("pipeline_depth", static_cast<size_t>(1))
        .num("rpcs_per_s", Closed);
    JsonReport::get().add(RowC);
    std::snprintf(Series, sizeof(Series), "%s-pipelined", T);
    JsonReport::Row RowP;
    RowP.str("workload", "capacity")
        .str("series", Series)
        .str("transport", T)
        .num("payload_bytes", PayloadBytes)
        .num("pipeline_depth", static_cast<size_t>(Depth))
        .num("rpcs_per_s", Piped)
        .num("speedup_vs_closed", Speedup);
    JsonReport::get().add(RowP);

    for (unsigned Pct : {50u, 80u, 95u}) {
      double Target = Piped * Pct / 100.0;
      OpenLoopResult R = openLoopRun(T, Workers, &Seq, Depth, Target,
                                     WindowSecs,
                                     0x9E3779B97F4A7C15ull + Pct);
      if (!R.Ok) {
        std::fprintf(stderr, "fig9: open-loop run failed on %s at %u%%\n",
                     T, Pct);
        return 1;
      }
      std::printf("%10s %8u%% %11.0f %11.0f %11.1f %9.1f %9.1f %9.1f "
                  "%8llu\n",
                  T, Pct, R.TargetRps, R.GoodputRps, R.P50Us, R.P99Us,
                  R.P999Us, R.MaxUs,
                  static_cast<unsigned long long>(R.Stalls));
      JsonReport::Row Row;
      Row.str("workload", "open_loop")
          .str("series", T)
          .str("transport", T)
          .num("payload_bytes", PayloadBytes)
          .num("pipeline_depth", static_cast<size_t>(Depth))
          .num("offered_pct", static_cast<size_t>(Pct))
          .num("target_rps", R.TargetRps)
          .num("achieved_rps", R.AchievedRps)
          .num("goodput_rps", R.GoodputRps)
          .num("p50_us", R.P50Us)
          .num("p99_us", R.P99Us)
          .num("p999_us", R.P999Us)
          .num("max_us", R.MaxUs)
          .num("window_stalls", R.Stalls);
      JsonReport::get().add(Row);
    }
    std::printf("\n");
  }

  JsonReport::Row Cfg;
  Cfg.str("workload", "config")
      .str("series", "open_loop")
      .num("config_pipeline_depth", static_cast<size_t>(Depth))
      .num("workers", static_cast<size_t>(Workers))
      .num("window_secs", WindowSecs);
  JsonReport::get().add(Cfg);
  return JsonReport::get().write("fig9_open_loop", M) ? 0 : 1;
}
