#!/usr/bin/env python3
"""Unit tests for compare_baseline.py, run by ctest (compare_baseline_unit).

Covers the comparison core (row matching, metric selection, failure
attribution, noise floor, tolerated irregularities), dotted-path and
wildcard metrics over nested rows, the synthetic document-level rows
(metrics block, latency_anatomy endpoints), the --direction lower mode
for latency-style metrics, and the CLI entry point end to end through
temp files, including the exit codes CI depends on (0 pass /
1 regression / 2 nothing comparable or bad input).
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_baseline as cb


def row(workload="ints", series="optimized", payload=1024, **fields):
    r = {"workload": workload, "series": series, "payload_bytes": payload}
    r.update(fields)
    return r


def rows_by_key(rows):
    return {cb.key(r): r for r in rows}


class TestCompare(unittest.TestCase):
    def test_pass_within_limit(self):
        base = rows_by_key([row(rate_mb_per_s=100.0)])
        cur = rows_by_key([row(rate_mb_per_s=60.0)])  # 1.67x, under 2x
        checked, skipped, failures, notes = cb.compare(base, cur)
        self.assertEqual((checked, skipped, failures, notes),
                         (1, 0, [], []))

    def test_regression_names_row_and_metric(self):
        base = rows_by_key([row(rate_mb_per_s=100.0),
                            row(payload=4096, rate_mb_per_s=100.0)])
        cur = rows_by_key([row(rate_mb_per_s=10.0),
                           row(payload=4096, rate_mb_per_s=99.0)])
        checked, _, failures, _ = cb.compare(base, cur)
        self.assertEqual(checked, 2)
        self.assertEqual(len(failures), 1)
        f = failures[0]
        self.assertEqual(f["key"], ("ints", "optimized", 1024))
        self.assertEqual(f["metric"], "rate_mb_per_s")
        self.assertEqual(f["baseline"], 100.0)
        self.assertEqual(f["current"], 10.0)

    def test_zero_current_rate_is_a_regression(self):
        base = rows_by_key([row(rate_mb_per_s=1.0)])
        cur = rows_by_key([row(rate_mb_per_s=0.0)])
        _, _, failures, _ = cb.compare(base, cur)
        self.assertEqual(len(failures), 1)

    def test_baseline_row_missing_from_candidate_is_tolerated(self):
        base = rows_by_key([row(rate_mb_per_s=100.0),
                            row(series="dropped", rate_mb_per_s=100.0)])
        cur = rows_by_key([row(rate_mb_per_s=90.0)])
        checked, _, failures, notes = cb.compare(base, cur)
        self.assertEqual(checked, 1)
        self.assertEqual(failures, [])
        self.assertTrue(any("missing in current" in n and "dropped" in n
                            for n in notes))

    def test_row_without_metric_is_tolerated(self):
        base = rows_by_key([row(rate_mb_per_s=100.0),
                            row(payload=4096)])  # no metric at all
        cur = rows_by_key([row(rate_mb_per_s=90.0),
                           row(payload=4096, rate_mb_per_s="oops")])
        checked, _, failures, notes = cb.compare(base, cur)
        self.assertEqual(checked, 1)
        self.assertEqual(failures, [])
        self.assertTrue(any("has no 'rate_mb_per_s'" in n for n in notes))

    def test_alternate_metric_selects_fig5_rate(self):
        base = rows_by_key([row(rate_mbit_per_s=800.0, rate_mb_per_s=1.0)])
        cur = rows_by_key([row(rate_mbit_per_s=100.0, rate_mb_per_s=1.0)])
        _, _, failures, _ = cb.compare(base, cur, metric="rate_mbit_per_s")
        self.assertEqual(len(failures), 1)
        self.assertEqual(failures[0]["metric"], "rate_mbit_per_s")
        _, _, failures, _ = cb.compare(base, cur)  # default metric: fine
        self.assertEqual(failures, [])

    def test_noise_floor_skips_unmeasurable_rows(self):
        base = rows_by_key([row(rate_mb_per_s=5e6),
                            row(payload=4096, rate_mb_per_s=100.0)])
        cur = rows_by_key([row(rate_mb_per_s=1.0),
                           row(payload=4096, rate_mb_per_s=90.0)])
        checked, skipped, failures, _ = cb.compare(base, cur)
        self.assertEqual((checked, skipped), (1, 1))
        self.assertEqual(failures, [])

    def test_new_row_in_candidate_is_noted(self):
        base = rows_by_key([row(rate_mb_per_s=100.0)])
        cur = rows_by_key([row(rate_mb_per_s=90.0),
                           row(series="new-series", rate_mb_per_s=1.0)])
        _, _, failures, notes = cb.compare(base, cur)
        self.assertEqual(failures, [])
        self.assertTrue(any("new in current" in n for n in notes))


class TestCurveKeys(unittest.TestCase):
    """The pipeline/offered-load key extension: rows carrying
    pipeline_depth / offered_pct / offered_rps compare point by point,
    and never collide with classic 3-tuple rows."""

    def test_plain_rows_keep_the_classic_key(self):
        self.assertEqual(cb.key(row()), ("ints", "optimized", 1024))

    def test_depth_and_offered_fields_join_the_key(self):
        k = cb.key(row(pipeline_depth=16, offered_pct=80))
        self.assertEqual(k, ("ints", "optimized", 1024,
                             ("pipeline_depth", 16), ("offered_pct", 80)))
        self.assertIn("pipeline_depth=16", cb.fmt_key(k))
        self.assertIn("offered_pct=80", cb.fmt_key(k))

    def test_non_numeric_extras_are_ignored(self):
        self.assertEqual(cb.key(row(pipeline_depth="deep", offered_pct=True)),
                         ("ints", "optimized", 1024))

    def test_depth_rows_do_not_collide_with_depth1_baseline(self):
        base = rows_by_key([row(rate_mb_per_s=100.0)])
        cur = rows_by_key([row(rate_mb_per_s=1.0, pipeline_depth=16)])
        checked, _, failures, notes = cb.compare(base, cur)
        # Different keys: the slow depth-16 row is "new", never compared
        # against the depth-1 baseline.
        self.assertEqual((checked, failures), (0, []))
        self.assertTrue(any("missing in current" in n for n in notes))
        self.assertTrue(any("new in current" in n and "pipeline_depth=16"
                            in n for n in notes))

    def test_offered_load_curves_compare_point_by_point(self):
        def curve(p99_at_95):
            return [row(series="socket", offered_pct=50, p99_us=200.0),
                    row(series="socket", offered_pct=95, p99_us=p99_at_95)]
        base = rows_by_key(curve(1000.0))
        cur = rows_by_key(curve(9000.0))
        checked, _, failures, _ = cb.compare(
            base, cur, metric="p99_us", direction="lower")
        self.assertEqual(checked, 2)
        self.assertEqual(len(failures), 1)
        self.assertEqual(failures[0]["key"][3], ("offered_pct", 95))


class TestNestedMetrics(unittest.TestCase):
    def test_resolve_walks_dotted_paths(self):
        r = {"rpc_latency": {"p99_us": 12.5, "name": "x"}}
        self.assertEqual(cb.resolve(r, "rpc_latency.p99_us"), 12.5)
        self.assertIsNone(cb.resolve(r, "rpc_latency.name"))  # non-numeric
        self.assertIsNone(cb.resolve(r, "rpc_latency.p50_us"))
        self.assertIsNone(cb.resolve(r, "rpc_latency.p99_us.deeper"))
        self.assertIsNone(cb.resolve({"flag": True}, "flag"))  # bool

    def test_wildcard_expands_numeric_leaves_sorted(self):
        r = {"phases": {"send": {"mean_us": 1.0, "p99_us": 2.0},
                        "demux": {"mean_us": 3.0, "label": "d"}}}
        self.assertEqual(cb.expand_metric(r, "phases.*"),
                         ["phases.demux.mean_us", "phases.send.mean_us",
                          "phases.send.p99_us"])
        self.assertEqual(cb.expand_metric(r, "absent.*"), [])
        self.assertEqual(cb.expand_metric(r, "plain"), ["plain"])

    def test_dotted_metric_gates_nested_value(self):
        base = rows_by_key([row(rpc_latency={"p99_us": 10.0})])
        cur = rows_by_key([row(rpc_latency={"p99_us": 50.0})])
        checked, _, failures, _ = cb.compare(
            base, cur, metric="rpc_latency.p99_us", direction="lower")
        self.assertEqual(checked, 1)
        self.assertEqual(len(failures), 1)
        self.assertEqual(failures[0]["metric"], "rpc_latency.p99_us")

    def test_direction_lower_passes_on_improvement(self):
        base = rows_by_key([row(rpc_latency={"p99_us": 50.0})])
        cur = rows_by_key([row(rpc_latency={"p99_us": 10.0})])
        checked, _, failures, _ = cb.compare(
            base, cur, metric="rpc_latency.p99_us", direction="lower")
        self.assertEqual((checked, failures), (1, []))

    def test_direction_lower_zero_baseline_is_noted_not_divided(self):
        base = rows_by_key([row(rpc_latency={"p99_us": 0.0})])
        cur = rows_by_key([row(rpc_latency={"p99_us": 5.0})])
        checked, _, failures, notes = cb.compare(
            base, cur, metric="rpc_latency.p99_us", direction="lower")
        self.assertEqual((checked, failures), (0, []))
        self.assertTrue(any("zero baseline" in n for n in notes))


class TestSyntheticRows(unittest.TestCase):
    def write_doc(self, doc):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, encoding="utf-8")
        json.dump(doc, f)
        f.close()
        self.addCleanup(os.unlink, f.name)
        return f.name

    def test_metrics_and_anatomy_become_rows(self):
        doc = {"bench": "t", "rows": [row(rate_mb_per_s=1.0)],
               "metrics": {"rpc_latency": {"p99_us": 10.0}},
               "latency_anatomy": {
                   "ints": {"rpc": {"p99_us": 10.0}},
                   "rects": {"rpc": {"p99_us": 20.0}}}}
        rows = cb.load_rows(self.write_doc(doc))
        self.assertIn(("metrics", "metrics", 0), rows)
        self.assertIn(("latency_anatomy", "ints", 0), rows)
        self.assertIn(("latency_anatomy", "rects", 0), rows)
        self.assertEqual(
            cb.resolve(rows[("latency_anatomy", "rects", 0)],
                       "rpc.p99_us"), 20.0)

    def test_anatomy_p99_regression_detected_end_to_end(self):
        def doc(p99):
            return {"bench": "t", "rows": [row(rate_mb_per_s=1.0)],
                    "latency_anatomy": {
                        "ints": {"rpc": {"p99_us": p99},
                                 "phases": {"send": {"p99_us": p99 / 2}}}}}
        base = self.write_doc(doc(10.0))
        cur = self.write_doc(doc(50.0))
        self.assertEqual(cb.main(
            ["--baseline", base, "--current", cur,
             "--metric", "rpc.p99_us", "--direction", "lower"]), 1)
        self.assertEqual(cb.main(
            ["--baseline", base, "--current", base,
             "--metric", "rpc.p99_us", "--direction", "lower"]), 0)

    def test_anatomy_wildcard_covers_phase_leaves(self):
        base = rows_by_key([])
        base[("latency_anatomy", "ints", 0)] = {
            "phases": {"send": {"p99_us": 4.0, "share_p99": 0.5}}}
        cur = {("latency_anatomy", "ints", 0): {
            "phases": {"send": {"p99_us": 40.0, "share_p99": 0.5}}}}
        checked, _, failures, _ = cb.compare(
            base, cur, metric="phases.*", direction="lower",
            max_regression=2.0)
        self.assertEqual(checked, 2)
        self.assertEqual(len(failures), 1)
        self.assertEqual(failures[0]["metric"], "phases.send.p99_us")


class TestCli(unittest.TestCase):
    def write_doc(self, rows):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, encoding="utf-8")
        json.dump({"bench": "test", "rows": rows}, f)
        f.close()
        self.addCleanup(os.unlink, f.name)
        return f.name

    def run_main(self, base_rows, cur_rows, *extra):
        return cb.main(["--baseline", self.write_doc(base_rows),
                        "--current", self.write_doc(cur_rows), *extra])

    def test_exit_0_on_pass(self):
        self.assertEqual(
            self.run_main([row(rate_mb_per_s=100.0)],
                          [row(rate_mb_per_s=90.0)]), 0)

    def test_exit_1_on_regression(self):
        self.assertEqual(
            self.run_main([row(rate_mb_per_s=100.0)],
                          [row(rate_mb_per_s=10.0)]), 1)

    def test_exit_2_when_nothing_comparable(self):
        self.assertEqual(
            self.run_main([row(rate_mb_per_s=100.0)],
                          [row(series="other", rate_mb_per_s=100.0)]), 2)

    def test_exit_2_on_malformed_document(self):
        bad = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, encoding="utf-8")
        bad.write("{\"bench\": \"test\"}")  # no rows array
        bad.close()
        self.addCleanup(os.unlink, bad.name)
        good = self.write_doc([row(rate_mb_per_s=1.0)])
        self.assertEqual(
            cb.main(["--baseline", bad.name, "--current", good]), 2)

    def test_metric_option_reaches_compare(self):
        self.assertEqual(
            self.run_main([row(rate_mbit_per_s=800.0)],
                          [row(rate_mbit_per_s=100.0)],
                          "--metric", "rate_mbit_per_s"), 1)


if __name__ == "__main__":
    unittest.main()
