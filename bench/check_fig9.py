#!/usr/bin/env python3
"""Gate the fig9 open-loop export (the PR-10 acceptance criteria).

Two checks over a fig9_open_loop JSON export:

1. Pipelining capacity (the headline gate): for each transport named by
   --require-transport (default sharded and socket), the depth-16
   pipelined capacity row must reach --min-ratio (default 3, overridable
   with FLICK_FIG9_MIN_RATIO) times that transport's closed-loop
   capacity row.  Closed-loop driving pays a full round trip of
   cross-thread (or cross-socket) latency per call; the pipelined client
   keeps the window full so the server-side service rate binds instead.
   The ratio needs real parallelism to exist, so the check is skipped
   (with a notice) when the machine has fewer than 4 CPUs -- on one or
   two cores the client, the demultiplexer, and the workers time-slice
   one another and the window buys little.

2. Curve shape (always on): every transport in the export must carry
   open-loop rows at each offered_pct, with consistent percentiles
   (p50 <= p99 <= p999 <= max) and positive goodput.  A generator bug
   that stops submitting or a demultiplexer that drops replies shows up
   here before it corrupts a committed baseline.

Stdlib only; exit 0 on pass/skip, 1 on a failed gate, 2 on usage errors.
"""

import argparse
import json
import os
import sys


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = doc.get("rows")
    if not isinstance(rows, list):
        raise ValueError(f"{path}: no 'rows' array")
    return [r for r in rows if isinstance(r, dict)]


def capacity(rows, transport, kind):
    """rpcs_per_s of the '<transport>-<kind>' capacity row, or None."""
    for r in rows:
        if (r.get("workload") == "capacity"
                and r.get("series") == f"{transport}-{kind}"):
            rate = r.get("rpcs_per_s")
            if isinstance(rate, (int, float)) and rate > 0:
                return rate
    return None


def check_pipelining(rows, transports, min_ratio):
    failures = []
    for t in transports:
        closed = capacity(rows, t, "closed")
        piped = capacity(rows, t, "pipelined")
        if closed is None or piped is None:
            failures.append(f"transport {t}: missing closed/pipelined "
                            "capacity rows")
            continue
        ratio = piped / closed
        if ratio < min_ratio:
            failures.append(
                f"transport {t}: pipelined {piped:.0f} rpc/s is only "
                f"{ratio:.2f}x closed-loop {closed:.0f} rpc/s; gate "
                f"requires >= {min_ratio}x.  The window is not keeping "
                "the server busy across round trips.")
        else:
            print(f"check_fig9: {t} pipelined/closed = {ratio:.2f}x "
                  f"(gate {min_ratio}x): OK")
    return failures


def check_curves(rows):
    failures = []
    by_transport = {}
    for r in rows:
        if r.get("workload") != "open_loop":
            continue
        by_transport.setdefault(r.get("transport"), []).append(r)
    if not by_transport:
        return ["no open_loop rows found; cannot gate curve shape"]
    for t, trs in sorted(by_transport.items(), key=str):
        for r in trs:
            tag = f"{t}@{r.get('offered_pct')}%"
            good = r.get("goodput_rps")
            if not isinstance(good, (int, float)) or good <= 0:
                failures.append(f"{tag}: no goodput recorded")
                continue
            pcts = [r.get("p50_us"), r.get("p99_us"), r.get("p999_us"),
                    r.get("max_us")]
            if any(not isinstance(p, (int, float)) or p < 0 for p in pcts):
                failures.append(f"{tag}: missing latency percentiles")
                continue
            if not (pcts[0] <= pcts[1] <= pcts[2] <= pcts[3]):
                failures.append(f"{tag}: inconsistent percentiles "
                                f"p50={pcts[0]} p99={pcts[1]} "
                                f"p999={pcts[2]} max={pcts[3]}")
        print(f"check_fig9: {t} open-loop curve has {len(trs)} offered-load "
              "points with consistent percentiles")
    return failures


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("results", help="fig9_open_loop JSON export")
    ap.add_argument("--require-transport", action="append", default=[],
                    help="transports the capacity gate covers (default: "
                         "sharded and socket)")
    ap.add_argument("--min-ratio", type=float,
                    default=float(os.environ.get("FLICK_FIG9_MIN_RATIO",
                                                 "3")))
    args = ap.parse_args(argv)
    transports = args.require_transport or ["sharded", "socket"]

    try:
        rows = load_rows(args.results)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_fig9: {e}", file=sys.stderr)
        return 2

    failures = check_curves(rows)

    cpus = os.cpu_count() or 1
    if cpus < 4:
        print(f"check_fig9: pipelining-capacity gate SKIPPED ({cpus} "
              "CPU(s); needs >= 4 for the closed-loop round trip and the "
              "window to run on distinct cores)")
    else:
        failures.extend(check_pipelining(rows, transports, args.min_ratio))

    for f in failures:
        print(f"check_fig9: FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
