#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file (ctest: prometheus_format).

Checks the whole grammar a scraper depends on, not just "it looks like
text": every sample line must parse (metric name, optional label set,
float value), every sample's family must have been declared by a # TYPE
line (and HELP/TYPE must come in pairs, HELP first), and histogram
families must be internally consistent -- cumulative bucket counts
monotone over increasing le, a +Inf bucket present and equal to _count,
and _sum/_count present.  --require names metrics that must exist (CI
passes flick_build_info so every export is traceable to a commit).

Bucket samples may carry an OpenMetrics exemplar suffix
(`# {trace_id="0x..",endpoint=".."} value [ts]`), which the runtime
emits for the slowest retained RPC in each latency bucket.  Exemplars
are validated too: only _bucket samples of histogram families may carry
one, the label body must parse, and the exemplar value must not exceed
the bucket's le bound (an exemplar is a member of its bucket).
--require-exemplar names histogram families that must carry at least
one exemplar (CI uses it on tracer-enabled perf-smoke exports).

Stdlib only.  Exit 0 valid, 1 invalid, 2 usage error.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?[0-9]+))?"
    r"(?:\s+#\s+\{(?P<ex_labels>[^}]*)\}"
    r"\s+(?P<ex_value>\S+)(?:\s+(?P<ex_ts>\S+))?)?\s*$")
LABEL_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"$')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}

# Suffixes that attach samples to a histogram/summary family name.
FAMILY_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, types):
    """Maps a sample name to its declared family name."""
    if name in types:
        return name
    for suffix in FAMILY_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def parse_labels(text, errors, lineno):
    """Splits a label body on top-level commas, honoring quoted strings."""
    labels = {}
    depth_quote = False
    part, parts = "", []
    prev = ""
    for ch in text:
        if ch == '"' and prev != "\\":
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            parts.append(part)
            part = ""
        else:
            part += ch
        prev = ch
    if part.strip():
        parts.append(part)
    for p in parts:
        m = LABEL_RE.match(p.strip())
        if not m:
            errors.append(f"line {lineno}: bad label syntax: {p.strip()!r}")
            continue
        labels[m.group("key")] = m.group("val")
    return labels


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on junk; NaN parses


def check(lines):
    """Validates exposition-format lines; returns (errors, families).

    families maps family name -> {"type": str, "samples": [(name, labels,
    value, lineno)], "exemplars": [(name, labels, ex_labels, ex_value,
    lineno)]}.  All violations are collected, none raised, so one run
    reports everything wrong with a document.
    """
    errors = []
    helps = {}
    types = {}
    families = {}
    for lineno, raw in enumerate(lines, 1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not NAME_RE.fullmatch(parts[2]):
                    errors.append(f"line {lineno}: malformed # {parts[1]}")
                    continue
                name = parts[2]
                if parts[1] == "HELP":
                    if name in helps:
                        errors.append(
                            f"line {lineno}: duplicate HELP for {name}")
                    helps[name] = lineno
                else:
                    if name in types:
                        errors.append(
                            f"line {lineno}: duplicate TYPE for {name}")
                    if name not in helps:
                        errors.append(
                            f"line {lineno}: TYPE {name} without "
                            f"preceding HELP")
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in VALID_TYPES:
                        errors.append(
                            f"line {lineno}: TYPE {name} has invalid "
                            f"type {kind!r}")
                    types[name] = kind
                    families[name] = {"type": kind, "samples": [],
                                      "exemplars": []}
            continue  # other comments are legal and ignored
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        labels = (parse_labels(m.group("labels"), errors, lineno)
                  if m.group("labels") is not None else {})
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(
                f"line {lineno}: bad value {m.group('value')!r} for {name}")
            continue
        fam = family_of(name, types)
        if fam not in families:
            errors.append(f"line {lineno}: sample {name} has no # TYPE")
            families.setdefault(fam, {"type": "untyped", "samples": [],
                                      "exemplars": []})
        families[fam]["samples"].append((name, labels, value, lineno))
        if m.group("ex_labels") is None:
            continue
        # Exemplar suffix: only histogram bucket samples may carry one,
        # and the exemplar observation must belong to its bucket.
        if not name.endswith("_bucket") or types.get(fam) != "histogram":
            errors.append(
                f"line {lineno}: exemplar on non-histogram-bucket sample "
                f"{name}")
            continue
        ex_labels = parse_labels(m.group("ex_labels"), errors, lineno)
        try:
            ex_value = parse_value(m.group("ex_value"))
        except ValueError:
            errors.append(
                f"line {lineno}: bad exemplar value "
                f"{m.group('ex_value')!r} for {name}")
            continue
        le = labels.get("le")
        if le is not None:
            try:
                if ex_value > parse_value(le):
                    errors.append(
                        f"line {lineno}: exemplar value {ex_value:g} "
                        f"exceeds bucket le={le}")
            except ValueError:
                pass  # the bad le itself is reported by check_histograms
        families[fam]["exemplars"].append(
            (name, labels, ex_labels, ex_value, lineno))
    for name in helps:
        if name not in types:
            errors.append(f"# HELP {name} has no matching # TYPE")
    return errors, families


def check_counters(families, errors):
    for fam, info in families.items():
        if info["type"] != "counter":
            continue
        if not fam.endswith("_total"):
            errors.append(f"counter {fam} does not end in _total")
        for name, _, value, lineno in info["samples"]:
            if value < 0:
                errors.append(
                    f"line {lineno}: counter {name} is negative ({value})")


def check_histograms(families, errors):
    for fam, info in families.items():
        if info["type"] != "histogram":
            continue
        buckets = []
        total = None
        have_sum = False
        for name, labels, value, lineno in info["samples"]:
            if name == fam + "_bucket":
                le = labels.get("le")
                if le is None:
                    errors.append(
                        f"line {lineno}: {name} sample has no le label")
                    continue
                try:
                    buckets.append((parse_value(le), value, lineno))
                except ValueError:
                    errors.append(f"line {lineno}: bad le value {le!r}")
            elif name == fam + "_count":
                total = value
            elif name == fam + "_sum":
                have_sum = True
        if not buckets:
            errors.append(f"histogram {fam} has no _bucket samples")
            continue
        if total is None:
            errors.append(f"histogram {fam} has no _count sample")
        if not have_sum:
            errors.append(f"histogram {fam} has no _sum sample")
        # Exposition order is part of the format: le ascending.
        les = [le for le, _, _ in buckets]
        if les != sorted(les):
            errors.append(f"histogram {fam}: le values not ascending")
        counts = [count for _, count, _ in buckets]
        if any(b > a for b, a in zip(counts, counts[1:])):
            errors.append(
                f"histogram {fam}: cumulative bucket counts decrease")
        if les and les[-1] != float("inf"):
            errors.append(f"histogram {fam}: missing le=\"+Inf\" bucket")
        elif total is not None and counts and counts[-1] != total:
            errors.append(
                f"histogram {fam}: +Inf bucket {counts[-1]:g} != "
                f"_count {total:g}")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="Prometheus text-exposition file")
    ap.add_argument("--require", action="append", default=[],
                    metavar="METRIC",
                    help="fail unless this metric family has samples "
                         "(repeatable)")
    ap.add_argument("--require-exemplar", action="append", default=[],
                    metavar="FAMILY",
                    help="fail unless this histogram family carries at "
                         "least one exemplar (repeatable)")
    args = ap.parse_args(argv)

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        print(f"check_prometheus: {e}", file=sys.stderr)
        return 2

    errors, families = check(lines)
    check_counters(families, errors)
    check_histograms(families, errors)

    for metric in args.require:
        if not families.get(metric, {}).get("samples"):
            errors.append(f"required metric {metric} missing or empty")
    for fam in args.require_exemplar:
        if not families.get(fam, {}).get("exemplars"):
            errors.append(f"required exemplar on {fam} missing")

    nsamples = sum(len(info["samples"]) for info in families.values())
    if nsamples == 0:
        errors.append("no samples at all")

    for e in errors:
        print(f"check_prometheus: {args.file}: {e}", file=sys.stderr)
    if errors:
        return 1
    nexemplars = sum(len(info["exemplars"]) for info in families.values())
    print(f"check_prometheus: {args.file} OK "
          f"({len(families)} families, {nsamples} samples, "
          f"{nexemplars} exemplars)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
