#!/usr/bin/env python3
"""Compare a bench JSON export against a committed baseline.

Rows are matched by (workload, series, payload_bytes) and compared on
rate_mb_per_s.  The check fails only when a matched row regressed by more
than --max-regression (default 2x): perf smoke across heterogeneous CI
hardware can only catch order-of-magnitude breakage, not percent-level
drift.  Rows missing from either side are reported but never fatal, so
adding or dropping a series does not break the job.

Rows whose baseline rate exceeds --noise-floor-mb (default 1e6 MB/s) are
skipped: at those rates the stub only records a buffer reference, the
timer measures noise, and run-to-run swings beyond 2x are expected.

Stdlib only; exit 0 on pass, 1 on regression, 2 on usage/format errors.
"""

import argparse
import json
import sys


def key(row):
    return (row.get("workload"), row.get("series"), row.get("payload_bytes"))


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = doc.get("rows")
    if not isinstance(rows, list):
        raise ValueError(f"{path}: no 'rows' array")
    return {key(r): r for r in rows if None not in key(r)}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--max-regression", type=float, default=2.0,
                    help="fail when baseline_rate / current_rate exceeds this")
    ap.add_argument("--noise-floor-mb", type=float, default=1e6,
                    help="skip rows whose baseline rate exceeds this (MB/s)")
    args = ap.parse_args()

    try:
        base = load_rows(args.baseline)
        cur = load_rows(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"compare_baseline: {e}", file=sys.stderr)
        return 2

    checked = skipped = 0
    failures = []
    for k, brow in sorted(base.items(), key=str):
        brate = brow.get("rate_mb_per_s")
        crow = cur.get(k)
        if brate is None:
            continue
        if crow is None or crow.get("rate_mb_per_s") is None:
            print(f"  missing in current (ignored): {k}")
            continue
        crate = crow["rate_mb_per_s"]
        if brate > args.noise_floor_mb:
            skipped += 1
            continue
        checked += 1
        if crate <= 0 or brate / crate > args.max_regression:
            failures.append((k, brate, crate))
    for k in sorted(set(cur) - set(base), key=str):
        print(f"  new in current (ignored): {k}")

    for k, brate, crate in failures:
        print(f"REGRESSION {k}: baseline {brate:.1f} MB/s -> "
              f"current {crate:.1f} MB/s "
              f"(>{args.max_regression:g}x slower)", file=sys.stderr)
    print(f"compare_baseline: {checked} rows checked, {skipped} above the "
          f"noise floor skipped, {len(failures)} regressed "
          f"(limit {args.max_regression:g}x)")
    if checked == 0:
        print("compare_baseline: nothing comparable -- treating as failure",
              file=sys.stderr)
        return 2
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
