#!/usr/bin/env python3
"""Compare a bench JSON export against a committed baseline.

Rows are matched by (workload, series, payload_bytes) -- plus, when a row
carries them, the pipeline/offered-load key fields (pipeline_depth,
offered_pct, offered_rps), so latency-vs-load curves compare point by
point -- and compared on one metric (--metric, default rate_mb_per_s;
fig5 rows carry rate_mbit_per_s).
The check fails only when a matched row regressed by more than
--max-regression (default 2x): perf smoke across heterogeneous CI hardware
can only catch order-of-magnitude breakage, not percent-level drift.
Every failure names the exact row and metric that regressed.  Rows missing
from either side -- baseline rows absent from the candidate included --
are reported but never fatal, so adding or dropping a series does not
break the job.

The metric may be a dotted path into nested objects ("rpc_latency.p99_us")
and may end in ".*" to compare every numeric leaf under the prefix
("phases.send.*").  Two document-level blocks are exposed as synthetic
rows so histogram-derived numbers can be gated alongside the throughput
rows: the "metrics" block under key (metrics, metrics, 0), and one
(latency_anatomy, <endpoint>, 0) row per endpoint of the attribution
report.  Latency-style metrics grow when things get worse; pass
--direction lower to flip the regression test for them.

Rows whose baseline rate exceeds --noise-floor-mb (default 1e6 MB/s) are
skipped: at those rates the stub only records a buffer reference, the
timer measures noise, and run-to-run swings beyond 2x are expected.

Stdlib only; exit 0 on pass, 1 on regression, 2 on usage/format errors.
The comparison core (compare()) is imported by test_compare_baseline.py,
which ctest runs.
"""

import argparse
import json
import sys


# Optional key fields beyond the classic 3-tuple: benches that sweep the
# pipelining window (fig4-6/fig8 --pipeline-depth) or an offered-load
# curve (fig9) add these to their rows, and each present field joins the
# row key as a (name, value) pair -- so a depth-16 row can never collide
# with a depth-1 baseline row, while rows without the fields keep their
# original keys.  offered_pct (load as a percentage of measured capacity)
# rather than a raw rate keeps the keys stable across hardware.
EXTRA_KEY_FIELDS = ("pipeline_depth", "offered_pct", "offered_rps")


def key(row):
    base = (row.get("workload"), row.get("series"), row.get("payload_bytes"))
    extras = tuple((f, row.get(f)) for f in EXTRA_KEY_FIELDS
                   if isinstance(row.get(f), (int, float))
                   and not isinstance(row.get(f), bool))
    return base + extras


def fmt_key(k):
    workload, series, payload = k[:3]
    out = f"workload={workload} series={series} payload_bytes={payload}"
    for name, val in k[3:]:
        out += f" {name}={val}"
    return out


def resolve(row, path):
    """Walks dotted \\p path through nested dicts in \\p row.  Returns the
    numeric leaf, or None when any step is missing or non-numeric."""
    cur = row
    for part in path.split("."):
        if not isinstance(cur, dict):
            return None
        cur = cur.get(part)
    if isinstance(cur, bool) or not isinstance(cur, (int, float)):
        return None
    return cur


def expand_metric(row, metric):
    """A plain metric names itself; a trailing '.*' expands to every
    numeric dotted path under the prefix (sorted, depth-first)."""
    if not metric.endswith(".*"):
        return [metric]
    prefix = metric[:-2]
    base = row
    for part in prefix.split("."):
        if not isinstance(base, dict):
            return []
        base = base.get(part)
    paths = []

    def walk(node, at):
        if isinstance(node, dict):
            for k in sorted(node):
                walk(node[k], f"{at}.{k}")
        elif not isinstance(node, bool) and isinstance(node, (int, float)):
            paths.append(at)

    if isinstance(base, dict):
        walk(base, prefix)
    return paths


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = doc.get("rows")
    if not isinstance(rows, list):
        raise ValueError(f"{path}: no 'rows' array")
    out = {key(r): r for r in rows if None not in key(r)}
    # Synthetic rows for the document-level blocks, so dotted metrics can
    # gate histogram percentiles and the attribution report.
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        out[("metrics", "metrics", 0)] = metrics
    anatomy = doc.get("latency_anatomy")
    if isinstance(anatomy, dict):
        for endpoint, entry in anatomy.items():
            if isinstance(entry, dict):
                out[("latency_anatomy", endpoint, 0)] = entry
    return out


def compare(base, cur, metric="rate_mb_per_s", max_regression=2.0,
            noise_floor=1e6, direction="higher"):
    """Compares two {key: row} dicts on one metric (dotted paths and a
    trailing '.*' wildcard supported; see module docstring).

    direction "higher" treats larger values as better (rates); "lower"
    treats larger values as worse (latencies), flipping the ratio test.

    Returns (checked, skipped, failures, notes).  failures is a list of
    dicts naming the offending row and metric; notes lists every tolerated
    irregularity (rows missing from either side, rows without the metric).
    Nothing in here raises on malformed rows -- a row that cannot be
    compared becomes a note, never a crash.
    """
    checked = skipped = 0
    failures = []
    notes = []
    for k, brow in sorted(base.items(), key=str):
        paths = expand_metric(brow, metric)
        if not paths:
            notes.append(f"baseline row has nothing under '{metric}' "
                         f"(ignored): {fmt_key(k)}")
            continue
        crow = cur.get(k)
        missing_noted = False
        for mpath in paths:
            bval = resolve(brow, mpath)
            if bval is None:
                notes.append(f"baseline row has no '{mpath}' (ignored): "
                             f"{fmt_key(k)}")
                continue
            if crow is None:
                if not missing_noted:
                    notes.append(f"missing in current (ignored): "
                                 f"{fmt_key(k)}")
                    missing_noted = True
                continue
            cval = resolve(crow, mpath)
            if cval is None:
                notes.append(f"current row has no '{mpath}' (ignored): "
                             f"{fmt_key(k)}")
                continue
            if bval > noise_floor:
                skipped += 1
                continue
            if direction == "lower" and bval <= 0:
                # A zero baseline latency cannot anchor a ratio; the
                # value only grows from nothing, which is not regression
                # evidence at smoke tolerances.
                notes.append(f"zero baseline '{mpath}' (ignored): "
                             f"{fmt_key(k)}")
                continue
            checked += 1
            if direction == "lower":
                bad = cval / bval > max_regression
            else:
                bad = cval <= 0 or bval / cval > max_regression
            if bad:
                failures.append({
                    "key": k,
                    "metric": mpath,
                    "baseline": bval,
                    "current": cval,
                })
    for k in sorted(set(cur) - set(base), key=str):
        notes.append(f"new in current (ignored): {fmt_key(k)}")
    return checked, skipped, failures, notes


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--metric", default="rate_mb_per_s",
                    help="row field to compare (fig5 uses rate_mbit_per_s); "
                         "dotted paths reach nested objects "
                         "(rpc_latency.p99_us) and a trailing .* compares "
                         "every numeric leaf under the prefix")
    ap.add_argument("--max-regression", type=float, default=2.0,
                    help="fail when the worse-direction ratio exceeds this")
    ap.add_argument("--noise-floor-mb", type=float, default=1e6,
                    help="skip rows whose baseline rate exceeds this (MB/s)")
    ap.add_argument("--direction", choices=("higher", "lower"),
                    default="higher",
                    help="whether larger metric values are better (rates) "
                         "or worse (latencies)")
    args = ap.parse_args(argv)

    try:
        base = load_rows(args.baseline)
        cur = load_rows(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"compare_baseline: {e}", file=sys.stderr)
        return 2

    checked, skipped, failures, notes = compare(
        base, cur, metric=args.metric, max_regression=args.max_regression,
        noise_floor=args.noise_floor_mb, direction=args.direction)

    for note in notes:
        print(f"  {note}")
    for f in failures:
        print(f"REGRESSION {fmt_key(f['key'])}: {f['metric']} "
              f"baseline {f['baseline']:.1f} -> current {f['current']:.1f} "
              f"(>{args.max_regression:g}x worse)", file=sys.stderr)
    print(f"compare_baseline: {checked} rows checked on {args.metric}, "
          f"{skipped} above the noise floor skipped, {len(failures)} "
          f"regressed (limit {args.max_regression:g}x)")
    if checked == 0:
        print("compare_baseline: nothing comparable -- treating as failure",
              file=sys.stderr)
        return 2
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
