#!/usr/bin/env python3
"""Compare a bench JSON export against a committed baseline.

Rows are matched by (workload, series, payload_bytes) and compared on one
metric (--metric, default rate_mb_per_s; fig5 rows carry rate_mbit_per_s).
The check fails only when a matched row regressed by more than
--max-regression (default 2x): perf smoke across heterogeneous CI hardware
can only catch order-of-magnitude breakage, not percent-level drift.
Every failure names the exact row and metric that regressed.  Rows missing
from either side -- baseline rows absent from the candidate included --
are reported but never fatal, so adding or dropping a series does not
break the job.

Rows whose baseline rate exceeds --noise-floor-mb (default 1e6 MB/s) are
skipped: at those rates the stub only records a buffer reference, the
timer measures noise, and run-to-run swings beyond 2x are expected.

Stdlib only; exit 0 on pass, 1 on regression, 2 on usage/format errors.
The comparison core (compare()) is imported by test_compare_baseline.py,
which ctest runs.
"""

import argparse
import json
import sys


def key(row):
    return (row.get("workload"), row.get("series"), row.get("payload_bytes"))


def fmt_key(k):
    workload, series, payload = k
    return f"workload={workload} series={series} payload_bytes={payload}"


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = doc.get("rows")
    if not isinstance(rows, list):
        raise ValueError(f"{path}: no 'rows' array")
    return {key(r): r for r in rows if None not in key(r)}


def compare(base, cur, metric="rate_mb_per_s", max_regression=2.0,
            noise_floor=1e6):
    """Compares two {key: row} dicts on one metric.

    Returns (checked, skipped, failures, notes).  failures is a list of
    dicts naming the offending row and metric; notes lists every tolerated
    irregularity (rows missing from either side, rows without the metric).
    Nothing in here raises on malformed rows -- a row that cannot be
    compared becomes a note, never a crash.
    """
    checked = skipped = 0
    failures = []
    notes = []
    for k, brow in sorted(base.items(), key=str):
        brate = brow.get(metric)
        if not isinstance(brate, (int, float)):
            notes.append(f"baseline row has no '{metric}' (ignored): "
                         f"{fmt_key(k)}")
            continue
        crow = cur.get(k)
        if crow is None:
            notes.append(f"missing in current (ignored): {fmt_key(k)}")
            continue
        crate = crow.get(metric)
        if not isinstance(crate, (int, float)):
            notes.append(f"current row has no '{metric}' (ignored): "
                         f"{fmt_key(k)}")
            continue
        if brate > noise_floor:
            skipped += 1
            continue
        checked += 1
        if crate <= 0 or brate / crate > max_regression:
            failures.append({
                "key": k,
                "metric": metric,
                "baseline": brate,
                "current": crate,
            })
    for k in sorted(set(cur) - set(base), key=str):
        notes.append(f"new in current (ignored): {fmt_key(k)}")
    return checked, skipped, failures, notes


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--metric", default="rate_mb_per_s",
                    help="row field to compare (fig5 uses rate_mbit_per_s)")
    ap.add_argument("--max-regression", type=float, default=2.0,
                    help="fail when baseline_rate / current_rate exceeds this")
    ap.add_argument("--noise-floor-mb", type=float, default=1e6,
                    help="skip rows whose baseline rate exceeds this (MB/s)")
    args = ap.parse_args(argv)

    try:
        base = load_rows(args.baseline)
        cur = load_rows(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"compare_baseline: {e}", file=sys.stderr)
        return 2

    checked, skipped, failures, notes = compare(
        base, cur, metric=args.metric, max_regression=args.max_regression,
        noise_floor=args.noise_floor_mb)

    for note in notes:
        print(f"  {note}")
    for f in failures:
        print(f"REGRESSION {fmt_key(f['key'])}: {f['metric']} "
              f"baseline {f['baseline']:.1f} -> current {f['current']:.1f} "
              f"(>{args.max_regression:g}x slower)", file=sys.stderr)
    print(f"compare_baseline: {checked} rows checked on {args.metric}, "
          f"{skipped} above the noise floor skipped, {len(failures)} "
          f"regressed (limit {args.max_regression:g}x)")
    if checked == 0:
        print("compare_baseline: nothing comparable -- treating as failure",
              file=sys.stderr)
        return 2
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
