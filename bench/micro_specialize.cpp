//===- bench/micro_specialize.cpp - specializer cost/benefit sweep --------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what runtime marshal specialization costs and when it pays
/// off.  For each evaluation workload (int arrays, rect arrays, directory
/// entries) this sweeps:
///
///   compile_ns      : one cold specialization (stencil selection, run
///                     fusion, hole patching), cache-clear cost removed
///   cache_hit_ns    : resolving an already-compiled program (structural
///                     hash + table lookup), the per-call cost of lazy
///                     resolution instead of load-time resolution
///   interp/spec ns  : per-call encode time for the tree-walking
///                     interpreter vs the specialized threaded program
///   break_even_calls: compile_ns / (interp_ns - spec_ns), the number of
///                     marshals after which specialization has paid for
///                     itself at that payload size
///
/// The headline claim this supports: specialization amortizes within a
/// handful of calls even for small payloads, so a dynamic-IDL runtime
/// should always specialize hot type programs.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "runtime/Interp.h"
#include "runtime/Specialize.h"
#include <cstddef>
#include <cstring>
#include <vector>

using namespace flickbench;
using flick::InterpType;
using flick::InterpWire;

namespace {

//===----------------------------------------------------------------------===//
// Presentation structs and type programs (no generated stubs: the point
// of the specializer is types that only exist at runtime)
//===----------------------------------------------------------------------===//

struct IntSeq {
  uint32_t Len;
  int32_t *Val;
};

struct Rect {
  int32_t MinX, MinY, MaxX, MaxY;
};
struct RectSeq {
  uint32_t Len;
  Rect *Val;
};

struct DirentInfo {
  uint32_t Words[30];
  uint8_t Tag[16];
};
struct Dirent {
  char *Name;
  DirentInfo Info;
};
struct DirentSeq {
  uint32_t Len;
  Dirent *Val;
};

const InterpType I32 = InterpType::scalar(0, 4);
const InterpType IntSeqTy = InterpType::counted(
    offsetof(IntSeq, Len), offsetof(IntSeq, Val), &I32, sizeof(int32_t));

const InterpType RectElem = InterpType::structOf({
    InterpType::scalar(offsetof(Rect, MinX), 4),
    InterpType::scalar(offsetof(Rect, MinY), 4),
    InterpType::scalar(offsetof(Rect, MaxX), 4),
    InterpType::scalar(offsetof(Rect, MaxY), 4),
});
const InterpType RectSeqTy = InterpType::counted(
    offsetof(RectSeq, Len), offsetof(RectSeq, Val), &RectElem, sizeof(Rect));

const InterpType DirentElem = InterpType::structOf({
    InterpType::cstring(offsetof(Dirent, Name)),
    InterpType::fixedArray(offsetof(Dirent, Info.Words), &I32, 30, 4),
    InterpType::bytes(offsetof(Dirent, Info.Tag), 16),
});
const InterpType DirentSeqTy =
    InterpType::counted(offsetof(DirentSeq, Len), offsetof(DirentSeq, Val),
                        &DirentElem, sizeof(Dirent));

constexpr InterpWire XdrWire{true, true};

//===----------------------------------------------------------------------===//
// Measurement
//===----------------------------------------------------------------------===//

/// One cold compile, isolated from the cache-clear cost that the timing
/// loop needs to force recompilation.
double compileNs(const InterpType &T) {
  TimeStats Clear = timeIt([] { flick::flick_spec_cache_clear(); }, 5.0);
  TimeStats Comp = timeIt(
      [&] {
        flick::flick_spec_cache_clear();
        flick::flick_specialize(T, XdrWire);
      },
      5.0);
  double Ns = (Comp.Best - Clear.Best) * 1e9;
  return Ns > 0 ? Ns : 0;
}

/// Warm-cache resolution: structural key build + hash + table hit.
double cacheHitNs(const InterpType &T) {
  flick::flick_specialize(T, XdrWire);
  TimeStats Hit = timeIt([&] { flick::flick_specialize(T, XdrWire); }, 5.0);
  return Hit.Best * 1e9;
}

struct SizeRow {
  size_t Payload;
  double InterpNs, SpecNs, BreakEven;
};

/// Times interp vs specialized encode for one payload and logs both the
/// throughput rows (same schema as fig3) and the break-even row.
template <typename Fn1, typename Fn2>
SizeRow measure(const char *Workload, size_t Payload, double CompileNanos,
                flick_buf *Buf, Fn1 InterpEncode, Fn2 SpecEncode) {
  TimeStats TI = timeIt([&] {
    flick_buf_reset(Buf);
    InterpEncode();
  });
  TimeStats TS = timeIt([&] {
    flick_buf_reset(Buf);
    SpecEncode();
  });
  SizeRow R;
  R.Payload = Payload;
  R.InterpNs = TI.Best * 1e9;
  R.SpecNs = TS.Best * 1e9;
  double Saved = R.InterpNs - R.SpecNs;
  R.BreakEven = Saved > 0 ? CompileNanos / Saved : -1;
  JsonReport::get().addRate(Workload, "interp", Payload, TI,
                            static_cast<double>(Payload) / TI.Best);
  JsonReport::get().addRate(Workload, "interp-spec", Payload, TS,
                            static_cast<double>(Payload) / TS.Best);
  double Speedup = R.SpecNs > 0 ? R.InterpNs / R.SpecNs : 0;
  JsonReport::get().add(JsonReport::Row()
                            .str("workload", Workload)
                            .str("series", "break-even")
                            .num("payload_bytes", Payload)
                            .num("compile_ns", CompileNanos)
                            .num("interp_ns_per_call", R.InterpNs)
                            .num("spec_ns_per_call", R.SpecNs)
                            .num("speedup", Speedup)
                            .num("break_even_calls", R.BreakEven));
  return R;
}

void printTable(const char *Workload, double CompileNanos, double HitNanos,
                uint64_t StepsFused, const std::vector<SizeRow> &Rows) {
  std::printf("\n%s: compile %.0f ns, cache hit %.0f ns, %llu steps fused\n",
              Workload, CompileNanos, HitNanos,
              static_cast<unsigned long long>(StepsFused));
  std::printf("%8s %14s %14s %9s %12s\n", "size", "interp/call", "spec/call",
              "speedup", "break-even");
  for (const SizeRow &R : Rows) {
    char BE[32];
    if (R.BreakEven < 0)
      std::snprintf(BE, sizeof(BE), "%12s", "never");
    else
      std::snprintf(BE, sizeof(BE), "%9.1f calls", R.BreakEven);
    std::printf("%8s %12.0fns %12.0fns %8.1fx %s\n",
                fmtBytes(R.Payload).c_str(), R.InterpNs, R.SpecNs,
                R.SpecNs > 0 ? R.InterpNs / R.SpecNs : 0, BE);
  }
}

/// Emits the per-workload compile-cost row shared by all payload sizes.
const flick::flick_spec_program *
compileRow(const char *Workload, const InterpType &T, double &CompileNanos,
           double &HitNanos) {
  CompileNanos = compileNs(T);
  HitNanos = cacheHitNs(T);
  const flick::flick_spec_program *P = flick::flick_specialize(T, XdrWire);
  if (!P) {
    std::fprintf(stderr, "micro_specialize: %s failed to specialize\n",
                 Workload);
    std::exit(1);
  }
  JsonReport::get().add(JsonReport::Row()
                            .str("workload", Workload)
                            .str("series", "spec-compile")
                            .num("compile_ns", CompileNanos)
                            .num("cache_hit_ns", HitNanos)
                            .num("steps_fused", P->StepsFused)
                            .num("enc_ops", P->Enc.size())
                            .num("dec_ops", P->Dec.size()));
  return P;
}

void benchInts() {
  double CompileNanos, HitNanos;
  const flick::flick_spec_program *P =
      compileRow("ints", IntSeqTy, CompileNanos, HitNanos);
  std::vector<SizeRow> Rows;
  flick_buf Buf;
  flick_buf_init(&Buf);
  for (size_t Bytes : std::vector<size_t>{64, 1024, 4096, 65536}) {
    uint32_t N = static_cast<uint32_t>(Bytes / 4);
    std::vector<int32_t> Data(N);
    for (uint32_t I = 0; I != N; ++I)
      Data[I] = static_cast<int32_t>(I * 2654435761u);
    IntSeq S{N, Data.data()};
    Rows.push_back(measure(
        "ints", Bytes, CompileNanos, &Buf,
        [&] { flick_interp_encode(&Buf, IntSeqTy, &S, XdrWire); },
        [&] { flick_spec_encode(&Buf, P, &S); }));
  }
  flick_buf_destroy(&Buf);
  printTable("ints", CompileNanos, HitNanos, P->StepsFused, Rows);
}

void benchRects() {
  double CompileNanos, HitNanos;
  const flick::flick_spec_program *P =
      compileRow("rects", RectSeqTy, CompileNanos, HitNanos);
  std::vector<SizeRow> Rows;
  flick_buf Buf;
  flick_buf_init(&Buf);
  for (size_t Bytes : std::vector<size_t>{64, 1024, 4096, 65536}) {
    uint32_t N = static_cast<uint32_t>(Bytes / sizeof(Rect));
    std::vector<Rect> Data(N);
    for (uint32_t I = 0; I != N; ++I) {
      int32_t V = static_cast<int32_t>(I);
      Data[I] = Rect{V, V + 1, V + 2, V + 3};
    }
    RectSeq S{N, Data.data()};
    Rows.push_back(measure(
        "rects", Bytes, CompileNanos, &Buf,
        [&] { flick_interp_encode(&Buf, RectSeqTy, &S, XdrWire); },
        [&] { flick_spec_encode(&Buf, P, &S); }));
  }
  flick_buf_destroy(&Buf);
  printTable("rects", CompileNanos, HitNanos, P->StepsFused, Rows);
}

void benchDirents() {
  double CompileNanos, HitNanos;
  const flick::flick_spec_program *P =
      compileRow("dirents", DirentSeqTy, CompileNanos, HitNanos);
  std::vector<SizeRow> Rows;
  flick_buf Buf;
  flick_buf_init(&Buf);
  for (size_t Bytes : std::vector<size_t>{256, 4096, 65536}) {
    uint32_t N = static_cast<uint32_t>(Bytes / 256);
    auto Names = makeNames(N);
    std::vector<Dirent> Data(N);
    for (uint32_t I = 0; I != N; ++I) {
      Data[I].Name = Names[I].data();
      for (int W = 0; W != 30; ++W)
        Data[I].Info.Words[W] = I * 31 + W;
      std::memset(Data[I].Info.Tag, 0x42, 16);
    }
    DirentSeq S{N, Data.data()};
    Rows.push_back(measure(
        "dirents", Bytes, CompileNanos, &Buf,
        [&] { flick_interp_encode(&Buf, DirentSeqTy, &S, XdrWire); },
        [&] { flick_spec_encode(&Buf, P, &S); }));
  }
  flick_buf_destroy(&Buf);
  printTable("dirents", CompileNanos, HitNanos, P->StepsFused, Rows);
}

} // namespace

int main() {
  flick_metrics *M = benchMetricsIfJson();
  std::printf("=== Runtime specialization: compile cost vs break-even ===\n"
              "Stencil programs are compiled once per structural type; the\n"
              "break-even column is how many marshals amortize that cost.\n");
  benchInts();
  benchRects();
  benchDirents();
  return JsonReport::get().write("micro_specialize", M) ? 0 : 1;
}
