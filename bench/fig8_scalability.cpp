//===- bench/fig8_scalability.cpp - worker-pool scaling -------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Worker-pool scaling of the threaded runtime: N concurrent client
/// threads drive int-array RPCs through one ThreadedLink into a
/// flick_server_pool of N workers, under the 100 Mbps Ethernet wire model
/// realized as real blocking time on the senders.  Reported per (worker
/// count, payload): RPC/s, payload throughput, and speedup over the
/// one-worker run of the same payload.
///
/// Because the wire model dominates each call (~117 us for 1 KB at the
/// paper's measured 70 Mbps effective ceiling), the sweep measures how
/// well the pool overlaps wire waits -- the way a production RPC stack
/// overlaps NIC/syscall time -- rather than raw CPU parallelism, so the
/// curve is nearly machine-independent and holds on a single-core host.
/// Contention on the link's one bounded request queue is what eventually
/// bends it.
///
/// FLICK_FIG8_QUICK=1 shrinks the measurement window for smoke runs
/// (sanitizer CI); FLICK_FIG8_UNMODELED=1 drops the wire model so the
/// request-queue lock, not modeled transit, binds (the flight recorder's
/// saturation study).  JSON rows keep the same shape either way.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "b_cdr.h"
#include "runtime/Channel.h"
#include <atomic>
#include <thread>
#include <vector>

using namespace flickbench;

// Work functions so the generated dispatcher links; decode has already
// happened when these run, so empty bodies still measure the full path.
void C_Transfer_send_ints_server(const C_IntSeq *, CORBA_Environment *) {}
void C_Transfer_send_rects_server(const C_RectSeq *, CORBA_Environment *) {}
void C_Transfer_send_dirents_server(const C_DirentSeq *,
                                    CORBA_Environment *) {}

namespace {

/// One client thread's state: its own connection, stub client, and
/// metrics block (merged into the main thread's after join, mirroring
/// what flick_server_pool does for its workers).
struct Driver {
  flick_client Cli;
  flick_obj Obj;
  flick_metrics Metrics;
  uint64_t Calls = 0;
  bool Failed = false;
  std::thread Thread;
};

/// Runs \p Workers client threads against \p Workers pool workers for
/// \p WindowSecs and returns total RPCs per second.  Returns a negative
/// value when any call failed.
double runCombo(unsigned Workers, size_t PayloadBytes, double WindowSecs,
                bool Collect, flick_metrics *MergeInto) {
  flick::ThreadedLink Link;
  // FLICK_FIG8_UNMODELED drops the wire model: calls are no longer
  // dominated by modeled transit sleeps, so the MPSC queue lock becomes
  // the binding constraint -- the configuration the flight recorder's
  // saturation study (EXPERIMENTS.md) measures.
  if (!std::getenv("FLICK_FIG8_UNMODELED"))
    Link.setModel(flick::NetworkModel::ethernet100());
  flick_server_pool Pool;
  if (flick_server_pool_start(&Pool, &Link, C_Transfer_dispatch, Workers) !=
      FLICK_OK)
    return -1;

  uint32_t N = static_cast<uint32_t>(PayloadBytes / 4);
  std::vector<int32_t> Data(N);
  for (uint32_t I = 0; I != N; ++I)
    Data[I] = static_cast<int32_t>(I * 2654435761u);

  std::vector<std::unique_ptr<Driver>> Drivers;
  for (unsigned I = 0; I != Workers; ++I) {
    auto D = std::unique_ptr<Driver>(new Driver);
    flick_client_init(&D->Cli, &Link.connect());
    D->Obj.client = &D->Cli;
    Drivers.push_back(std::move(D));
  }

  using Clock = std::chrono::steady_clock;
  auto Deadline = Clock::now() + std::chrono::duration<double>(WindowSecs);
  auto T0 = Clock::now();
  for (auto &D : Drivers) {
    Driver *DP = D.get();
    DP->Thread = std::thread([DP, &Data, N, Deadline, Collect] {
      if (Collect)
        flick_metrics_enable(&DP->Metrics);
      C_IntSeq Seq{0, N, const_cast<int32_t *>(Data.data())};
      CORBA_Environment Ev{};
      while (Clock::now() < Deadline) {
        C_Transfer_send_ints(reinterpret_cast<C_Transfer>(&DP->Obj), &Seq,
                             &Ev);
        if (Ev._major != CORBA_NO_EXCEPTION) {
          DP->Failed = true;
          break;
        }
        ++DP->Calls;
      }
      flick_metrics_disable();
    });
  }
  uint64_t Total = 0;
  bool Failed = false;
  for (auto &D : Drivers) {
    D->Thread.join();
    Total += D->Calls;
    Failed |= D->Failed;
  }
  double Secs = std::chrono::duration<double>(Clock::now() - T0).count();
  // Stop after the clients quiesce: the pool drains, joins, and merges its
  // workers' telemetry into this (the starting) thread's blocks.
  flick_server_pool_stop(&Pool);
  if (MergeInto)
    for (auto &D : Drivers)
      flick_metrics_merge(MergeInto, &D->Metrics);
  for (auto &D : Drivers)
    flick_client_destroy(&D->Cli);
  if (Failed || Total == 0)
    return -1;
  return static_cast<double>(Total) / Secs;
}

} // namespace

int main() {
  flick_metrics *M = benchMetricsIfJson();
  bool Quick = std::getenv("FLICK_FIG8_QUICK") != nullptr;
  double WindowSecs = Quick ? 0.1 : 0.5;

  unsigned MaxW = std::thread::hardware_concurrency();
  if (MaxW < 4)
    MaxW = 4; // the sweep measures wait overlap, not core count
  std::vector<unsigned> WorkerCounts;
  for (unsigned W = 1; W <= MaxW; W *= 2)
    WorkerCounts.push_back(W);

  std::printf(
      "=== Worker-pool scaling: threaded runtime on modeled 100 Mbps "
      "Ethernet ===\nN client threads drive one flick_server_pool of N "
      "workers; the wire\nmodel is realized as real blocking time, so "
      "speedup measures overlap\nof wire waits across connections.\n\n");
  std::printf("%8s %8s %11s %13s %9s\n", "size", "workers", "rpc/s",
              "payload", "speedup");

  for (size_t Payload : {1024u, 16384u, 65536u}) {
    double Base = 0;
    for (unsigned W : WorkerCounts) {
      double RpcsPerSec = runCombo(W, Payload, WindowSecs, M != nullptr, M);
      if (RpcsPerSec < 0) {
        std::fprintf(stderr, "fig8: combo w=%u payload=%zu failed\n", W,
                     Payload);
        return 1;
      }
      if (W == 1)
        Base = RpcsPerSec;
      double Speedup = Base > 0 ? RpcsPerSec / Base : 0;
      double BytesPerSec = RpcsPerSec * static_cast<double>(Payload);
      std::printf("%8s %8u %11.0f %9sMB/s %8.2fx\n",
                  fmtBytes(Payload).c_str(), W, RpcsPerSec,
                  fmtRate(BytesPerSec).c_str(), Speedup);
      char Series[32];
      std::snprintf(Series, sizeof(Series), "threaded-w%u", W);
      JsonReport::Row R;
      R.str("workload", "ints")
          .str("series", Series)
          .num("payload_bytes", Payload)
          .num("workers", static_cast<size_t>(W))
          .num("rpcs_per_s", RpcsPerSec)
          .num("rate_mb_per_s", BytesPerSec / 1e6)
          .num("speedup_vs_1", Speedup);
      JsonReport::get().add(R);
    }
  }

  return JsonReport::get().write("fig8_scalability", M) ? 0 : 1;
}
