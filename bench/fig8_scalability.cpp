//===- bench/fig8_scalability.cpp - worker-pool scaling -------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Worker-pool scaling of the concurrent runtime, now with a transport
/// axis: N client threads drive int-array RPCs through one Transport
/// ("threaded" mutex queue, "sharded" lock-free rings, or "socket" Unix
/// sockets + epoll) into a flick_server_pool of N workers, under the
/// 100 Mbps Ethernet wire model realized as real blocking time on the
/// senders.  Reported per (transport, worker count, payload): RPC/s,
/// payload throughput, speedup over that transport's one-worker run, and
/// the payload-normalized user-space copy bill
/// (bytes_copied / (calls * payload) -- ~2.0 for the queue transports'
/// marshal-fill + send-copy, ~1.0 for the socket's marshal fill alone).
///
/// Because the wire model dominates each call (~117 us for 1 KB at the
/// paper's measured 70 Mbps effective ceiling), the modeled sweep
/// measures how well the pool overlaps wire waits; all transports tie
/// there.  FLICK_FIG8_UNMODELED=1 drops the wire model so the transport
/// itself binds -- the configuration where the sharded rings separate
/// from the mutex queue (EXPERIMENTS.md's contention study, gated in
/// perf-smoke CI).  FLICK_FIG8_QUICK=1 shrinks the measurement window
/// for smoke runs (sanitizer CI).  --transport=NAME or
/// FLICK_BENCH_TRANSPORT restricts the sweep to one transport; the
/// default runs all three.  --pipeline-depth=N (N > 1) reroutes every
/// driver thread through the async pipelined client with N calls in
/// flight (the uniform bench CLI; fig4-6 and fig9 spell it the same
/// way); such rows gain a "pipeline_depth" key field.  Unknown options
/// are rejected with a diagnostic and exit code 2.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "b_cdr.h"
#include "runtime/transport/Transport.h"
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace flickbench;

// Work functions so the generated dispatcher links; decode has already
// happened when these run, so empty bodies still measure the full path.
void C_Transfer_send_ints_server(const C_IntSeq *, CORBA_Environment *) {}
void C_Transfer_send_rects_server(const C_RectSeq *, CORBA_Environment *) {}
void C_Transfer_send_dirents_server(const C_DirentSeq *,
                                    CORBA_Environment *) {}

namespace {

/// One client thread's state: its own connection, stub client, metrics
/// block, and (when the bench tracer is on) its own span ring -- all
/// merged into the combo's after join, mirroring what flick_server_pool
/// does for its workers.
struct Driver {
  flick_client Cli;
  flick_obj Obj;
  flick_metrics Metrics;
  flick_tracer Tracer;
  std::vector<flick_span> Spans; ///< empty: tracing off for this run
  uint64_t Calls = 0;
  bool Failed = false;
  std::thread Thread;
};

struct ComboResult {
  double RpcsPerSec = -1; ///< negative when any call failed
  double CopiesPerRpc = 0;
};

/// Runs \p Workers client threads against \p Workers pool workers over
/// transport \p TransportName for \p WindowSecs.  \p Depth > 1 switches
/// each driver from synchronous invoke to the async pipelined client
/// with that many calls in flight (the stub's encode/decode entry points
/// marshal unchanged).
ComboResult runCombo(const char *TransportName, unsigned Workers,
                     size_t PayloadBytes, double WindowSecs, unsigned Depth,
                     flick_metrics *MergeInto) {
  ComboResult Res;
  auto Link = flick::makeTransport(TransportName);
  if (!Link)
    return Res;
  // FLICK_FIG8_UNMODELED drops the wire model: calls are no longer
  // dominated by modeled transit sleeps, so the transport itself (queue
  // mutex, ring CAS, or socket syscalls) becomes the binding constraint
  // -- the configuration the flight recorder's saturation study
  // (EXPERIMENTS.md) measures.
  if (!std::getenv("FLICK_FIG8_UNMODELED"))
    Link->setModel(flick::NetworkModel::ethernet100());
  // Per-combo metrics: the pool captures the active block at start and
  // merges its workers into it at stop; the drivers merge after join.
  // Swapping the raw active pointer (not flick_metrics_enable, which
  // zeroes) preserves whatever block the caller had installed.
  flick_metrics Combo;
  flick_metrics *Prev = flick_metrics_active;
  flick_metrics_active = &Combo;
  flick_server_pool Pool;
  if (flick_server_pool_start(&Pool, Link.get(), C_Transfer_dispatch,
                              Workers) != FLICK_OK) {
    flick_metrics_active = Prev;
    return Res;
  }

  uint32_t N = static_cast<uint32_t>(PayloadBytes / 4);
  std::vector<int32_t> Data(N);
  for (uint32_t I = 0; I != N; ++I)
    Data[I] = static_cast<int32_t>(I * 2654435761u);

  // Anatomy endpoint: one per transport, so the report separates the
  // three request-queue implementations' phase shares.
  char EpName[32];
  std::snprintf(EpName, sizeof(EpName), "transfer@%s", TransportName);
  uint32_t Endpoint = flick_endpoint_intern(EpName);
  flick_tracer *MainTracer = flick_trace_active;

  std::vector<std::unique_ptr<Driver>> Drivers;
  for (unsigned I = 0; I != Workers; ++I) {
    auto D = std::unique_ptr<Driver>(new Driver);
    flick_client_init(&D->Cli, &Link->connect());
    D->Cli.endpoint = Endpoint;
    D->Obj.client = &D->Cli;
    if (MainTracer)
      D->Spans.resize(8192);
    Drivers.push_back(std::move(D));
  }

  using Clock = std::chrono::steady_clock;
  auto Deadline = Clock::now() + std::chrono::duration<double>(WindowSecs);
  auto T0 = Clock::now();
  for (auto &D : Drivers) {
    Driver *DP = D.get();
    DP->Thread = std::thread([DP, &Data, N, Deadline, Depth] {
      flick_metrics_enable(&DP->Metrics);
      if (!DP->Spans.empty())
        flick_trace_enable_thread(&DP->Tracer, DP->Spans.data(),
                                  static_cast<uint32_t>(DP->Spans.size()));
      C_IntSeq Seq{0, N, const_cast<int32_t *>(Data.data())};
      if (Depth > 1) {
        // Pipelined driving: Depth calls in flight per connection, the
        // completion callback decoding each reply as it demultiplexes.
        flick_async_opts AO;
        AO.window = Depth;
        flick_async_client A;
        if (flick_async_client_init(&A, DP->Cli.chan, &AO) != FLICK_OK) {
          DP->Failed = true;
        } else {
          A.endpoint = DP->Cli.endpoint;
          struct Done {
            flick_async_client *A;
            bool Failed = false;
          } Ctx{&A, false};
          flick_call_fn OnDone = [](flick_call *Call, void *P) {
            auto *C = static_cast<Done *>(P);
            CORBA_Environment Ev{};
            if (Call->status != FLICK_OK ||
                C_Transfer_send_ints_decode_reply(&Call->rep, &Ev) !=
                    FLICK_OK ||
                Ev._major != CORBA_NO_EXCEPTION)
              C->Failed = true;
            flick_async_release(C->A, Call);
          };
          uint32_t Xid = 0;
          while (Clock::now() < Deadline && !Ctx.Failed) {
            C_Transfer_send_ints_encode_request(flick_async_begin(&A),
                                                ++Xid, &Seq);
            flick_call *Call = nullptr;
            if (flick_async_submit(&A, &Call, OnDone, &Ctx) != FLICK_OK) {
              Ctx.Failed = true;
              break;
            }
            ++DP->Calls;
          }
          if (flick_async_drain(&A) != FLICK_OK)
            Ctx.Failed = true;
          flick_async_client_destroy(&A);
          DP->Failed |= Ctx.Failed;
        }
      } else {
        CORBA_Environment Ev{};
        while (Clock::now() < Deadline) {
          C_Transfer_send_ints(reinterpret_cast<C_Transfer>(&DP->Obj), &Seq,
                               &Ev);
          if (Ev._major != CORBA_NO_EXCEPTION) {
            DP->Failed = true;
            break;
          }
          ++DP->Calls;
        }
      }
      if (!DP->Spans.empty())
        flick_trace_disable();
      flick_metrics_disable();
    });
  }
  uint64_t Total = 0;
  bool Failed = false;
  for (auto &D : Drivers) {
    D->Thread.join();
    Total += D->Calls;
    Failed |= D->Failed;
  }
  double Secs = std::chrono::duration<double>(Clock::now() - T0).count();
  // Stop after the clients quiesce: the pool drains, joins, and merges
  // its workers' telemetry into Combo.
  flick_server_pool_stop(&Pool);
  for (auto &D : Drivers)
    flick_metrics_merge(&Combo, &D->Metrics);
  // Driver span rings (and their tail-exemplar reservoirs) fold into the
  // bench tracer the same way the pool's workers just did.
  if (MainTracer)
    for (auto &D : Drivers)
      if (!D->Spans.empty())
        flick_trace_absorb(MainTracer, &D->Tracer);
  for (auto &D : Drivers)
    flick_client_destroy(&D->Cli);
  flick_metrics_active = Prev;
  if (MergeInto)
    flick_metrics_merge(MergeInto, &Combo);
  if (Failed || Total == 0)
    return Res;
  Res.RpcsPerSec = static_cast<double>(Total) / Secs;
  Res.CopiesPerRpc = static_cast<double>(Combo.bytes_copied) /
                     (static_cast<double>(Total) *
                      static_cast<double>(PayloadBytes));
  return Res;
}

} // namespace

int main(int argc, char **argv) {
  flick_metrics *M = benchMetricsIfJson();
  bool Quick = std::getenv("FLICK_FIG8_QUICK") != nullptr;
  double WindowSecs = Quick ? 0.1 : 0.5;

  // Transport selection: --transport=NAME wins, then FLICK_BENCH_TRANSPORT,
  // else the full three-way comparison.  --pipeline-depth=N > 1 reroutes
  // the drivers through the async pipelined client.  Anything else on the
  // command line is a usage error (exit 2), same as fig4-6 and fig9.
  std::vector<const char *> Transports = {"threaded", "sharded", "socket"};
  const char *Only = std::getenv("FLICK_BENCH_TRANSPORT");
  unsigned Depth = 1;
  for (int I = 1; I != argc; ++I) {
    if (std::strncmp(argv[I], "--transport=", 12) == 0) {
      Only = argv[I] + 12;
    } else if (std::strncmp(argv[I], "--pipeline-depth=", 17) == 0) {
      char *End = nullptr;
      long D = std::strtol(argv[I] + 17, &End, 10);
      if (!End || *End || D < 1 || D > 65536) {
        std::fprintf(stderr,
                     "fig8: bad --pipeline-depth '%s' (want an integer "
                     ">= 1)\n",
                     argv[I] + 17);
        return 2;
      }
      Depth = static_cast<unsigned>(D);
    } else {
      std::fprintf(stderr,
                   "fig8: unknown option '%s' (supported: "
                   "--transport=threaded|sharded|socket, "
                   "--pipeline-depth=N)\n",
                   argv[I]);
      return 2;
    }
  }
  if (Only && *Only) {
    if (!flick::makeTransport(Only)) {
      std::fprintf(stderr, "fig8: unknown transport '%s'\n", Only);
      return 2;
    }
    Transports = {Only};
  }

  unsigned MaxW = std::thread::hardware_concurrency();
  if (MaxW < 4)
    MaxW = 4; // the sweep measures wait overlap, not core count
  std::vector<unsigned> WorkerCounts;
  for (unsigned W = 1; W <= MaxW; W *= 2)
    WorkerCounts.push_back(W);

  bool Modeled = !std::getenv("FLICK_FIG8_UNMODELED");
  std::printf(
      "=== Worker-pool scaling: %s ===\nN client threads drive one "
      "flick_server_pool of N workers per transport;\n%s\n\n",
      Modeled ? "modeled 100 Mbps Ethernet" : "unmodeled (transport-bound)",
      Modeled ? "the wire model is realized as real blocking time, so "
                "speedup measures\noverlap of wire waits across connections."
              : "with no wire model the transport itself binds: queue "
                "mutex vs\nlock-free rings vs socket syscalls.");
  if (Depth > 1)
    std::printf("pipelined: %u calls in flight per driver "
                "(--pipeline-depth)\n",
                Depth);
  std::printf("%10s %8s %8s %11s %13s %9s %8s\n", "transport", "size",
              "workers", "rpc/s", "payload", "speedup", "cp/rpc");

  for (const char *T : Transports) {
    for (size_t Payload : {1024u, 16384u, 65536u}) {
      double Base = 0;
      for (unsigned W : WorkerCounts) {
        ComboResult R = runCombo(T, W, Payload, WindowSecs, Depth, M);
        if (R.RpcsPerSec < 0) {
          std::fprintf(stderr, "fig8: combo %s w=%u payload=%zu failed\n",
                       T, W, Payload);
          return 1;
        }
        if (W == 1)
          Base = R.RpcsPerSec;
        double Speedup = Base > 0 ? R.RpcsPerSec / Base : 0;
        double BytesPerSec = R.RpcsPerSec * static_cast<double>(Payload);
        std::printf("%10s %8s %8u %11.0f %9sMB/s %8.2fx %8.2f\n", T,
                    fmtBytes(Payload).c_str(), W, R.RpcsPerSec,
                    fmtRate(BytesPerSec).c_str(), Speedup, R.CopiesPerRpc);
        char Series[32];
        std::snprintf(Series, sizeof(Series), "%s-w%u", T, W);
        JsonReport::Row Row;
        Row.str("workload", "ints")
            .str("series", Series)
            .str("transport", T)
            .num("payload_bytes", Payload)
            .num("workers", static_cast<size_t>(W));
        // Depth joins the row key only when pipelining is on, so the
        // committed depth-1 baselines keep their original 3-tuple keys.
        if (Depth > 1)
          Row.num("pipeline_depth", static_cast<size_t>(Depth));
        Row.num("rpcs_per_s", R.RpcsPerSec)
            .num("rate_mb_per_s", BytesPerSec / 1e6)
            .num("speedup_vs_1", Speedup)
            .num("copies_per_rpc", R.CopiesPerRpc);
        JsonReport::get().add(Row);
      }
    }
    std::printf("\n");
  }

  return JsonReport::get().write("fig8_scalability", M) ? 0 : 1;
}
