//===- bench/fig4_end_to_end_10mbit.cpp - Paper Figure 4 ------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "EndToEnd.h"

int main(int argc, char **argv) {
  return flickbench::runEndToEndFigure(
      argc, argv,
      "Figure 4: end-to-end throughput, 10 Mbit Ethernet "
      "(paper: all compilers tie at ~6-7.5 Mbit)",
      "fig4_end_to_end_10mbit", flick::NetworkModel::ethernet10());
}
