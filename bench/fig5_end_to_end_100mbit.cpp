//===- bench/fig5_end_to_end_100mbit.cpp - Paper Figure 5 -----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "EndToEnd.h"

int main(int argc, char **argv) {
  return flickbench::runEndToEndFigure(
      argc, argv,
      "Figure 5: end-to-end throughput, 100 Mbit Ethernet "
      "(paper: flick 2-3x for medium, up to 3.2x for large messages)",
      "fig5_end_to_end_100mbit", flick::NetworkModel::ethernet100());
}
