//===- bench/micro_primitives.cpp - runtime primitive microbenches --------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the runtime primitives underneath
/// every generated stub: buffer ensure/grab, byte-swapped block copies,
/// the per-datum naive calls (what rpcgen-style stubs pay per field), and
/// arena allocation.  These explain the figure-level results from below.
///
//===----------------------------------------------------------------------===//

#include "runtime/flick_runtime.h"
#include <benchmark/benchmark.h>
#include <vector>

static void BM_BufEnsureGrab(benchmark::State &State) {
  flick_buf B;
  flick_buf_init(&B);
  for (auto _ : State) {
    flick_buf_reset(&B);
    flick_buf_ensure(&B, 64);
    benchmark::DoNotOptimize(flick_buf_grab(&B, 64));
  }
  flick_buf_destroy(&B);
}
BENCHMARK(BM_BufEnsureGrab);

static void BM_ChunkedStores(benchmark::State &State) {
  // What an optimized stub does for a 40-byte header.
  flick_buf B;
  flick_buf_init(&B);
  for (auto _ : State) {
    flick_buf_reset(&B);
    flick_buf_ensure(&B, 40);
    uint8_t *C = flick_buf_grab(&B, 40);
    for (unsigned I = 0; I != 10; ++I)
      flick_enc_u32be(C + 4 * I, I);
    benchmark::DoNotOptimize(C);
  }
  flick_buf_destroy(&B);
}
BENCHMARK(BM_ChunkedStores);

static void BM_NaivePerDatum(benchmark::State &State) {
  // The same 10 words through rpcgen-style out-of-line calls.
  flick_buf B;
  flick_buf_init(&B);
  for (auto _ : State) {
    flick_buf_reset(&B);
    for (unsigned I = 0; I != 10; ++I)
      flick_naive_put_u32(&B, I, 1);
    benchmark::DoNotOptimize(B.data);
  }
  flick_buf_destroy(&B);
}
BENCHMARK(BM_NaivePerDatum);

static void BM_SwapCopy(benchmark::State &State) {
  size_t Words = static_cast<size_t>(State.range(0));
  std::vector<uint32_t> Src(Words, 0x12345678);
  std::vector<uint8_t> Dst(Words * 4);
  for (auto _ : State) {
    flick_swap_copy_u32(Dst.data(),
                        reinterpret_cast<uint8_t *>(Src.data()), Words);
    benchmark::DoNotOptimize(Dst.data());
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Words) * 4);
}
BENCHMARK(BM_SwapCopy)->Range(16, 1 << 18);

static void BM_Memcpy(benchmark::State &State) {
  size_t Bytes = static_cast<size_t>(State.range(0));
  std::vector<uint8_t> Src(Bytes, 0x5A), Dst(Bytes);
  for (auto _ : State) {
    std::memcpy(Dst.data(), Src.data(), Bytes);
    benchmark::DoNotOptimize(Dst.data());
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Bytes));
}
BENCHMARK(BM_Memcpy)->Range(64, 1 << 20);

static void BM_ArenaAlloc(benchmark::State &State) {
  flick_arena A{};
  for (auto _ : State) {
    flick_arena_reset(&A);
    for (int I = 0; I != 16; ++I)
      benchmark::DoNotOptimize(flick_arena_alloc(&A, 48));
  }
  flick_arena_destroy(&A);
}
BENCHMARK(BM_ArenaAlloc);

static void BM_MallocFree(benchmark::State &State) {
  for (auto _ : State) {
    void *P[16];
    for (int I = 0; I != 16; ++I)
      benchmark::DoNotOptimize(P[I] = std::malloc(48));
    for (int I = 0; I != 16; ++I)
      std::free(P[I]);
  }
}
BENCHMARK(BM_MallocFree);
