//===- bench/fig7_mig_comparison.cpp - Paper Figure 7 ---------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 7: Flick's Mach 3 stubs vs MIG-generated stubs, integer arrays
/// over Mach IPC.  MIG stands in as a hand-modeled stub in the style MIG
/// emitted: a fixed static message buffer (no growth checks, no xid
/// bookkeeping -- MIG's small-message advantage) but an extra staging copy
/// into the send message (Mach's typed-message handling -- MIG's
/// large-message penalty).  The paper: MIG ~2x faster below 8 KB, Flick
/// pulls ahead from 8 KB, +17% at 64 KB.  The crossover (not the exact
/// percentages) is the reproduced claim; see EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "b_mach.h"
#include "runtime/Calibrate.h"
#include "runtime/transport/LocalLink.h"
#include <cstring>
#include <vector>

using namespace flickbench;

int M_send_ints_1_svc(const M_intseq *) { return 0; }
int M_send_rects_1_svc(const M_rectseq *) { return 0; }
int M_send_dirents_1_svc(const M_direntseq *) { return 0; }

namespace {

//===----------------------------------------------------------------------===//
// The MIG-style stub pair (hand-modeled; see file comment)
//===----------------------------------------------------------------------===//

struct MigClient {
  flick::Channel *Chan = nullptr;
  std::vector<uint8_t> Msg;   ///< MIG's static message buffer
  std::vector<uint8_t> Stage; ///< the typed-message staging copy
};

int migSendInts(MigClient &C, const int32_t *Data, uint32_t N) {
  size_t Len = 28 + size_t(N) * 4;
  uint8_t *B = C.Msg.data();
  // Fixed header; MIG compiled these stores with no checks at all.
  flick_enc_u32ne(B + 0, 0);
  flick_enc_u32ne(B + 4, static_cast<uint32_t>(Len));
  flick_enc_u32ne(B + 8, 1);
  flick_enc_u32ne(B + 12, 2);
  flick_enc_u32ne(B + 16, 401); // msgh_id: proc 1
  flick_enc_u32ne(B + 20, 0);
  flick_enc_u32ne(B + 24, N);
  std::memcpy(B + 28, Data, size_t(N) * 4);
  // Typed-message handling: Mach stages the message once more.
  std::memcpy(C.Stage.data(), B, Len);
  if (int Err = C.Chan->send(C.Stage.data(), Len))
    return Err;
  std::vector<uint8_t> Reply;
  return C.Chan->recv(Reply);
}

/// Server side of the MIG pair: consume the request, push a tiny reply.
bool migServe(flick::LocalLink &Link) {
  std::vector<uint8_t> Req;
  if (Link.serverEnd().recv(Req) != FLICK_OK)
    return false;
  if (Req.size() < 28)
    return false;
  uint32_t N = flick_dec_u32ne(Req.data() + 24);
  // MIG delivered arrays in the message body; the servant reads in place.
  volatile int32_t Sink = 0;
  if (N)
    Sink = flick_dec_u32ne(Req.data() + 28);
  (void)Sink;
  uint8_t Reply[32] = {0};
  flick_enc_u32ne(Reply + 16, 501);
  return Link.serverEnd().send(Reply, 32) == FLICK_OK;
}

} // namespace

int main() {
  flick_metrics *Metrics = benchMetricsIfJson();
  double HostBw = flick::measureCopyBandwidth();
  flick::NetworkModel Model =
      flick::scaleModelToHost(flick::NetworkModel::machIpc(), HostBw);
  std::printf(
      "=== Figure 7: Flick vs MIG stubs over Mach IPC ===\n"
      "paper: MIG ~2x faster below 8K; Flick ahead from 8K (+17%% at "
      "64K)\nhost copy bw %.1f MB/s; scaled per-message cost %.3f us\n\n",
      HostBw / 1e6, Model.PerMsgOverheadUs);
  std::printf("%8s %14s %14s %12s\n", "size", "flick(Mb/s)", "mig(Mb/s)",
              "flick/mig");

  std::vector<size_t> Sizes = {64,   256,   1024,   4096,   8192,
                               16384, 65536, 262144, 1048576};
  for (size_t Bytes : Sizes) {
    uint32_t N = static_cast<uint32_t>(Bytes / 4);
    std::vector<int32_t> Data(N, 7);

    // Flick Mach stubs over the simulated IPC port.
    flick::LocalLink FL;
    flick::SimClock FC;
    FL.setModel(Model, &FC);
    flick_server Srv;
    flick_server_init(&Srv, &FL.serverEnd(), M_BENCHPROG_dispatch);
    FL.setPump([&] { return flick_server_handle_one(&Srv) == FLICK_OK; });
    flick_client Cli;
    flick_client_init(&Cli, &FL.clientEnd());
    M_intseq MS{N, Data.data()};
    FC.reset();
    size_t FCalls = 0;
    TimeStats FCpu = timeIt([&] {
      ++FCalls;
      M_send_ints_1(&MS, &Cli);
    });
    double FSim = FC.totalUs() * 1e-6 / double(FCalls);
    double FT = double(Bytes) * 8.0 / (FCpu.Best + FSim) / 1e6;

    // MIG-style stubs over an identical port.
    flick::LocalLink ML;
    flick::SimClock MC;
    ML.setModel(Model, &MC);
    ML.setPump([&] { return migServe(ML); });
    MigClient Mig;
    Mig.Chan = &ML.clientEnd();
    Mig.Msg.resize(28 + Bytes);
    Mig.Stage.resize(28 + Bytes);
    MC.reset();
    size_t MCalls = 0;
    TimeStats MCpu = timeIt([&] {
      ++MCalls;
      migSendInts(Mig, Data.data(), N);
    });
    double MSim = MC.totalUs() * 1e-6 / double(MCalls);
    double MT = double(Bytes) * 8.0 / (MCpu.Best + MSim) / 1e6;

    JsonReport::get().addRate("ints", "flick-mach", Bytes, FCpu,
                              FT * 1e6 / 8.0);
    JsonReport::get().addRate("ints", "mig", Bytes, MCpu, MT * 1e6 / 8.0);
    std::printf("%8s %14.1f %14.1f %11.2fx\n", fmtBytes(Bytes).c_str(),
                FT, MT, MT > 0 ? FT / MT : 0);
    flick_client_destroy(&Cli);
    flick_server_destroy(&Srv);
  }
  return JsonReport::get().write("fig7_mig_comparison", Metrics) ? 0 : 1;
}
