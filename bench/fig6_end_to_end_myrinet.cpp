//===- bench/fig6_end_to_end_myrinet.cpp - Paper Figure 6 -----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "EndToEnd.h"

int main(int argc, char **argv) {
  return flickbench::runEndToEndFigure(
      argc, argv,
      "Figure 6: end-to-end throughput, 640 Mbit Myrinet "
      "(84.5 Mbit effective; paper: flick up to 3.7x on large messages)",
      "fig6_end_to_end_myrinet", flick::NetworkModel::myrinet640());
}
