//===- bench/BenchUtil.h - shared benchmark utilities -----------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing loops, table printing, and the evaluation workload builders
/// (paper §4): integer arrays, rectangle-structure arrays, and directory
/// entries padded so each encodes to exactly 256 bytes of XDR data.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_BENCH_BENCHUTIL_H
#define FLICK_BENCH_BENCHUTIL_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace flickbench {

/// Runs \p Fn repeatedly until ~MinMillis of wall time accumulates and
/// returns the best-of-three average seconds per call.
inline double timeIt(const std::function<void()> &Fn,
                     double MinMillis = 30.0) {
  using Clock = std::chrono::steady_clock;
  // Warm up and estimate.
  Fn();
  auto T0 = Clock::now();
  Fn();
  double Once = std::chrono::duration<double>(Clock::now() - T0).count();
  size_t Iters = Once > 0 ? static_cast<size_t>(MinMillis / 1e3 / Once) : 64;
  if (Iters < 3)
    Iters = 3;
  if (Iters > 2000000)
    Iters = 2000000;
  double Best = 1e100;
  for (int Round = 0; Round != 3; ++Round) {
    auto S = Clock::now();
    for (size_t I = 0; I != Iters; ++I)
      Fn();
    double Secs =
        std::chrono::duration<double>(Clock::now() - S).count() /
        static_cast<double>(Iters);
    if (Secs < Best)
      Best = Secs;
  }
  return Best;
}

/// Pretty MB/s with adaptive precision.
inline std::string fmtRate(double BytesPerSec) {
  char Buf[64];
  double MB = BytesPerSec / 1e6;
  std::snprintf(Buf, sizeof(Buf), MB >= 100 ? "%8.0f" : "%8.2f", MB);
  return Buf;
}

inline std::string fmtBytes(size_t N) {
  char Buf[32];
  if (N >= (1u << 20) && N % (1u << 20) == 0)
    std::snprintf(Buf, sizeof(Buf), "%zuM", N >> 20);
  else if (N >= 1024 && N % 1024 == 0)
    std::snprintf(Buf, sizeof(Buf), "%zuK", N >> 10);
  else
    std::snprintf(Buf, sizeof(Buf), "%zuB", N);
  return Buf;
}

/// Message sizes used by Figure 3/4/5/6 for the int and rect workloads.
inline std::vector<size_t> arraySizes() {
  return {64,        256,       1024,      4096,     16384,
          65536,     262144,    1048576,   4194304};
}

/// Directory-entry workload sizes (256 B to 512 KB, paper §4).
inline std::vector<size_t> direntSizes() {
  return {256, 1024, 4096, 16384, 65536, 262144, 524288};
}

/// Name length that makes one XDR-encoded dirent exactly 256 bytes:
/// 4 (length word) + 116 (name, padded) + 120 (30 u32) + 16 (tag) = 256.
inline constexpr size_t DirentNameLen = 116;

/// Builds the directory-entry name pool (NUL-terminated, DirentNameLen).
inline std::vector<std::string> makeNames(size_t Count) {
  std::vector<std::string> Names;
  Names.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    std::string N(DirentNameLen, 'f');
    std::snprintf(N.data(), N.size(), "file-%zu", I);
    N[std::string("file-").size() + 8] = 'x'; // keep full length
    for (char &C : N)
      if (C == '\0')
        C = 'p';
    Names.push_back(std::move(N));
  }
  return Names;
}

} // namespace flickbench

#endif // FLICK_BENCH_BENCHUTIL_H
