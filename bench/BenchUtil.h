//===- bench/BenchUtil.h - shared benchmark utilities -----------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing loops, table printing, and the evaluation workload builders
/// (paper §4): integer arrays, rectangle-structure arrays, and directory
/// entries padded so each encodes to exactly 256 bytes of XDR data.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_BENCH_BENCHUTIL_H
#define FLICK_BENCH_BENCHUTIL_H

#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include "support/BuildInfo.h"
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace flickbench {

/// Result of one timing measurement: per-call seconds for the best round,
/// plus run-variance data so JSON exports can report measurement quality.
struct TimeStats {
  double Best = 0;   ///< best round, seconds per call (rate basis)
  double Mean = 0;   ///< mean over all rounds, seconds per call
  double StdDev = 0; ///< standard deviation of the per-round means
  size_t Iters = 0;  ///< calls per round
  int Rounds = 0;    ///< rounds measured
  // Copy accounting deltas over the measured region, per call; zero when
  // metrics collection is off (the default interactive configuration).
  double BytesCopiedPerCall = 0; ///< message-path bytes copied per call
  double CopyOpsPerCall = 0;     ///< bulk copy operations per call
};

/// Runs \p Fn repeatedly until ~MinMillis of wall time accumulates per
/// round, measures \p Rounds rounds, and returns the best/mean/stddev
/// seconds-per-call along with the iteration count.
inline TimeStats timeIt(const std::function<void()> &Fn,
                        double MinMillis = 30.0, int Rounds = 3) {
  using Clock = std::chrono::steady_clock;
  // Warm up and estimate.
  Fn();
  auto T0 = Clock::now();
  Fn();
  double Once = std::chrono::duration<double>(Clock::now() - T0).count();
  size_t Iters = Once > 0 ? static_cast<size_t>(MinMillis / 1e3 / Once) : 64;
  if (Iters < 3)
    Iters = 3;
  if (Iters > 2000000)
    Iters = 2000000;
  TimeStats T;
  T.Iters = Iters;
  T.Rounds = Rounds;
  T.Best = 1e100;
  uint64_t Copied0 = 0, Ops0 = 0;
  if (flick_metrics_active) {
    Copied0 = flick_metrics_active->bytes_copied;
    Ops0 = flick_metrics_active->copy_ops;
  }
  double Sum = 0, SumSq = 0;
  for (int Round = 0; Round != Rounds; ++Round) {
    auto S = Clock::now();
    for (size_t I = 0; I != Iters; ++I)
      Fn();
    double Secs =
        std::chrono::duration<double>(Clock::now() - S).count() /
        static_cast<double>(Iters);
    Sum += Secs;
    SumSq += Secs * Secs;
    if (Secs < T.Best)
      T.Best = Secs;
  }
  T.Mean = Sum / Rounds;
  double Var = SumSq / Rounds - T.Mean * T.Mean;
  T.StdDev = Var > 0 ? std::sqrt(Var) : 0;
  if (flick_metrics_active) {
    double Calls = static_cast<double>(Iters) * Rounds;
    T.BytesCopiedPerCall =
        static_cast<double>(flick_metrics_active->bytes_copied - Copied0) /
        Calls;
    T.CopyOpsPerCall =
        static_cast<double>(flick_metrics_active->copy_ops - Ops0) / Calls;
  }
  return T;
}

/// Pretty MB/s with adaptive precision.
inline std::string fmtRate(double BytesPerSec) {
  char Buf[64];
  double MB = BytesPerSec / 1e6;
  std::snprintf(Buf, sizeof(Buf), MB >= 100 ? "%8.0f" : "%8.2f", MB);
  return Buf;
}

inline std::string fmtBytes(size_t N) {
  char Buf[32];
  if (N >= (1u << 20) && N % (1u << 20) == 0)
    std::snprintf(Buf, sizeof(Buf), "%zuM", N >> 20);
  else if (N >= 1024 && N % 1024 == 0)
    std::snprintf(Buf, sizeof(Buf), "%zuK", N >> 10);
  else
    std::snprintf(Buf, sizeof(Buf), "%zuB", N);
  return Buf;
}

/// Message sizes used by Figure 3/4/5/6 for the int and rect workloads.
inline std::vector<size_t> arraySizes() {
  return {64,        256,       1024,      4096,     16384,
          65536,     262144,    1048576,   4194304};
}

/// Directory-entry workload sizes (256 B to 512 KB, paper §4).
inline std::vector<size_t> direntSizes() {
  return {256, 1024, 4096, 16384, 65536, 262144, 524288};
}

/// Name length that makes one XDR-encoded dirent exactly 256 bytes:
/// 4 (length word) + 116 (name, padded) + 120 (30 u32) + 16 (tag) = 256.
inline constexpr size_t DirentNameLen = 116;

/// Builds the directory-entry name pool (NUL-terminated, DirentNameLen).
inline std::vector<std::string> makeNames(size_t Count) {
  std::vector<std::string> Names;
  Names.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    std::string N(DirentNameLen, 'f');
    std::snprintf(N.data(), N.size(), "file-%zu", I);
    N[std::string("file-").size() + 8] = 'x'; // keep full length
    for (char &C : N)
      if (C == '\0')
        C = 'p';
    Names.push_back(std::move(N));
  }
  return Names;
}

//===----------------------------------------------------------------------===//
// Machine-readable results (JSON)
//===----------------------------------------------------------------------===//

/// Formats a double as a JSON number (no inf/nan; fixed precision).
inline std::string jsonNum(double V) {
  if (!std::isfinite(V))
    return "0";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

/// Turns runtime metrics collection on for this process when JSON export
/// was requested via FLICK_BENCH_JSON, and returns the metrics block (or
/// nullptr).  Default interactive runs leave metrics disabled, so the
/// measured fast paths match a metrics-free build exactly.
/// Turns span tracing on when FLICK_BENCH_TRACE names an output path for
/// the Chrome trace-event JSON (written by JsonReport::write), or when
/// FLICK_BENCH_JSON is set at all: the per-endpoint latency anatomy in
/// the results document is populated at span close, so a JSON run needs
/// spans even when no trace file was asked for.  The Chrome trace export
/// itself stays gated on FLICK_BENCH_TRACE.  Ring size defaults to 65536
/// spans; FLICK_BENCH_TRACE_SPANS overrides it.
inline flick_tracer *benchTracerIfRequested() {
  static flick_tracer T;
  static std::vector<flick_span> Storage;
  const char *Path = std::getenv("FLICK_BENCH_TRACE");
  const char *Json = std::getenv("FLICK_BENCH_JSON");
  if ((!Path || !*Path) && (!Json || !*Json))
    return nullptr;
  if (Storage.empty()) {
    size_t N = 1 << 16;
    if (const char *S = std::getenv("FLICK_BENCH_TRACE_SPANS"))
      if (size_t V = std::strtoull(S, nullptr, 10))
        N = V;
    Storage.resize(N);
  }
  flick_trace_enable(&T, Storage.data(),
                     static_cast<uint32_t>(Storage.size()));
  return &T;
}

/// Starts the runtime flight recorder when FLICK_BENCH_SAMPLE names a
/// JSONL output path (written by JsonReport::write, which also stops the
/// sampler).  Optional knobs: FLICK_BENCH_SAMPLE_INTERVAL_US (default
/// 1000) and FLICK_BENCH_STALL_US (watchdog deadline; the post-mortem
/// dump goes to "<path>.postmortem.json").
inline bool benchSamplerIfRequested() {
  const char *Path = std::getenv("FLICK_BENCH_SAMPLE");
  if (!Path || !*Path)
    return false;
  if (flick_sampler_running())
    return true;
  flick_sampler_opts O;
  if (const char *S = std::getenv("FLICK_BENCH_SAMPLE_INTERVAL_US")) {
    double V = std::atof(S);
    if (V > 0)
      O.interval_us = V;
  }
  if (const char *S = std::getenv("FLICK_BENCH_STALL_US"))
    O.stall_deadline_us = std::atof(S);
  static std::string Postmortem;
  Postmortem = std::string(Path) + ".postmortem.json";
  O.postmortem_path = Postmortem.c_str();
  return flick_sampler_start(&O) == FLICK_OK;
}

/// Metrics collection turns on when any machine-readable export wants the
/// counters: FLICK_BENCH_JSON (the results document) or FLICK_METRICS_PROM
/// (Prometheus text exposition, written by JsonReport::write).  The block
/// is also registered with the flight recorder, which excerpts a few of
/// its fields into each sample via relaxed atomic reads.
inline flick_metrics *benchMetricsIfJson() {
  static flick_metrics M;
  benchTracerIfRequested();
  bool Sampling = benchSamplerIfRequested();
  const char *Path = std::getenv("FLICK_BENCH_JSON");
  const char *Prom = std::getenv("FLICK_METRICS_PROM");
  if ((!Path || !*Path) && (!Prom || !*Prom))
    return nullptr;
  flick_metrics_enable(&M);
  if (Sampling)
    flick_sampler_watch(&M);
  return &M;
}

/// Accumulates per-measurement rows and writes one JSON document per bench
/// binary when the FLICK_BENCH_JSON environment variable names an output
/// path.  Every fig/table binary emits through this, so plotting and CI
/// regression checks can consume results without scraping the tables.
class JsonReport {
public:
  static JsonReport &get() {
    static JsonReport R;
    return R;
  }

  /// One result row under construction; keys are emitted in call order.
  class Row {
  public:
    Row &str(const char *Key, const std::string &V) {
      field(Key, "\"" + flick_json_escape(V) + "\"");
      return *this;
    }
    Row &num(const char *Key, double V) {
      field(Key, jsonNum(V));
      return *this;
    }
    Row &num(const char *Key, size_t V) {
      field(Key, std::to_string(V));
      return *this;
    }
    /// Records the timing triple from one timeIt() measurement, plus the
    /// copy-accounting deltas timeIt snapshotted around the measured
    /// region (zeros when metrics collection was off).
    Row &time(const TimeStats &T) {
      num("secs_per_call", T.Best);
      num("secs_per_call_mean", T.Mean);
      num("stddev", T.StdDev);
      num("iters", T.Iters);
      num("rounds", static_cast<size_t>(T.Rounds));
      num("bytes_copied_per_call", T.BytesCopiedPerCall);
      num("copy_ops_per_call", T.CopyOpsPerCall);
      return *this;
    }

  private:
    friend class JsonReport;
    void field(const char *Key, const std::string &Rendered) {
      if (!Body.empty())
        Body += ", ";
      Body += "\"";
      Body += Key;
      Body += "\": " + Rendered;
    }
    std::string Body;
  };

  void add(const Row &R) { Rows.push_back("{" + R.Body + "}"); }

  /// Convenience: one throughput measurement.
  void addRate(const char *Workload, const char *Series, size_t Bytes,
               const TimeStats &T, double BytesPerSec) {
    Row R;
    R.str("workload", Workload)
        .str("series", Series)
        .num("payload_bytes", Bytes)
        .time(T)
        .num("rate_mb_per_s", BytesPerSec / 1e6);
    add(R);
  }

  /// Writes every requested machine-readable export: the results document
  /// {"bench", "build", "rows", optional "metrics", optional "flight"} to
  /// $FLICK_BENCH_JSON, the span ring (with flight-recorder counter events
  /// spliced in) as Chrome trace-event JSON to $FLICK_BENCH_TRACE, the
  /// flight-recorder JSONL time series to $FLICK_BENCH_SAMPLE, and the
  /// Prometheus text exposition to $FLICK_METRICS_PROM.  A running sampler
  /// is stopped first so the ring ends with a final sample.  The results
  /// file refuses to clobber an existing one ("x" exclusive mode): two
  /// benches pointed at one path is a harness bug, and silently keeping
  /// only the last writer's data corrupted comparisons before.  Returns
  /// false on any write failure; each export quietly does nothing when its
  /// variable is unset.
  bool write(const char *BenchName, const flick_metrics *M = nullptr) {
    if (flick_sampler_running())
      flick_sampler_stop();
    bool Ok = writeResults(BenchName, M);
    Ok &= writeSample();
    Ok &= writeProm(M);
    Ok &= writeTrace();
    Ok &= writeExemplars();
    return Ok;
  }

  bool writeResults(const char *BenchName, const flick_metrics *M) {
    const char *Path = std::getenv("FLICK_BENCH_JSON");
    if (!Path || !*Path)
      return true;
    std::FILE *F = std::fopen(Path, "wbx");
    if (!F) {
      std::fprintf(stderr,
                   "bench: cannot write '%s' (exists already? each bench "
                   "run needs a fresh FLICK_BENCH_JSON path)\n",
                   Path);
      return false;
    }
    std::fprintf(F, "{\n  \"bench\": \"%s\",\n  \"build\": %s,\n  \"rows\": [",
                 flick_json_escape(BenchName).c_str(),
                 flick_build_info_json().c_str());
    for (size_t I = 0; I != Rows.size(); ++I)
      std::fprintf(F, "%s\n    %s", I ? "," : "", Rows[I].c_str());
    std::fprintf(F, "%s]", Rows.empty() ? "" : "\n  ");
    if (M) {
      std::string Json = flick_metrics_to_json(M, "    ");
      std::fprintf(F, ",\n  \"metrics\": %s", Json.c_str());
      // The per-endpoint critical-path attribution also rides at top
      // level so checkers and dashboards reach it without digging into
      // the metrics block.
      std::string Anatomy = flick_metrics_anatomy_json(M, "    ");
      std::fprintf(F, ",\n  \"latency_anatomy\": %s", Anatomy.c_str());
    }
    // When the flight recorder ran, the time series rides along in the
    // results document so one artifact carries rates and their evolution.
    if (flick_sampler_count()) {
      std::string Flight = flick_sampler_to_json("    ");
      std::fprintf(F, ",\n  \"flight\": %s", Flight.c_str());
    }
    std::fprintf(F, "\n}\n");
    std::fclose(F);
    return true;
  }

  /// Writes the flight-recorder JSONL time series to $FLICK_BENCH_SAMPLE.
  bool writeSample() {
    const char *Path = std::getenv("FLICK_BENCH_SAMPLE");
    if (!Path || !*Path)
      return true;
    std::FILE *F = std::fopen(Path, "wb");
    if (!F) {
      std::fprintf(stderr, "bench: cannot write '%s'\n", Path);
      return false;
    }
    std::string Jsonl = flick_sampler_to_jsonl();
    std::fwrite(Jsonl.data(), 1, Jsonl.size(), F);
    std::fclose(F);
    return true;
  }

  /// Writes the Prometheus text exposition to $FLICK_METRICS_PROM.
  bool writeProm(const flick_metrics *M) {
    const char *Path = std::getenv("FLICK_METRICS_PROM");
    if (!Path || !*Path)
      return true;
    std::FILE *F = std::fopen(Path, "wb");
    if (!F) {
      std::fprintf(stderr, "bench: cannot write '%s'\n", Path);
      return false;
    }
    std::string Text = flick_metrics_to_prometheus(M, flick_trace_active);
    std::fwrite(Text.data(), 1, Text.size(), F);
    std::fclose(F);
    return true;
  }

  /// Writes the Chrome trace for the active tracer to $FLICK_BENCH_TRACE,
  /// splicing in the flight recorder's counter events ("ph":"C") when it
  /// recorded any, rebased onto the tracer's timeline.
  bool writeTrace() {
    const char *Path = std::getenv("FLICK_BENCH_TRACE");
    if (!Path || !*Path || !flick_trace_active)
      return true;
    std::FILE *F = std::fopen(Path, "wb");
    if (!F) {
      std::fprintf(stderr, "bench: cannot write '%s'\n", Path);
      return false;
    }
    std::string Counters;
    if (flick_sampler_count())
      Counters = flick_sampler_chrome_counters(
          flick_sampler_epoch_offset_us(flick_trace_active));
    std::string Json = flick_trace_to_chrome_json(flick_trace_active, Counters);
    std::fwrite(Json.data(), 1, Json.size(), F);
    std::fclose(F);
    return true;
  }

  /// Writes the tail-exemplar post-mortems beside the results document:
  /// "<FLICK_BENCH_JSON>.exemplars.json" holds the per-endpoint
  /// slowest-RPC span trees, ".exemplars.trace.json" the same trees as a
  /// standalone Chrome trace document.  Quietly skipped when no tracer
  /// ran or the reservoir is empty.
  bool writeExemplars() {
    const char *Path = std::getenv("FLICK_BENCH_JSON");
    const flick_tracer *T = flick_trace_active;
    if (!Path || !*Path || !T)
      return true;
    bool Any = false;
    for (int E = 0; E != FLICK_MAX_ENDPOINTS && !Any; ++E)
      for (int S = 0; S != FLICK_EXEMPLAR_SLOTS && !Any; ++S)
        Any = T->exemplars.slots[E][S].n_spans != 0;
    if (!Any)
      return true;
    auto Dump = [](const std::string &P, const std::string &Doc) {
      std::FILE *F = std::fopen(P.c_str(), "wb");
      if (!F) {
        std::fprintf(stderr, "bench: cannot write '%s'\n", P.c_str());
        return false;
      }
      std::fwrite(Doc.data(), 1, Doc.size(), F);
      std::fclose(F);
      return true;
    };
    bool Ok = Dump(std::string(Path) + ".exemplars.json",
                   flick_exemplars_to_json(T));
    Ok &= Dump(std::string(Path) + ".exemplars.trace.json",
               flick_exemplars_to_chrome_json(T));
    return Ok;
  }

private:
  std::vector<std::string> Rows;
};

} // namespace flickbench

#endif // FLICK_BENCH_BENCHUTIL_H
