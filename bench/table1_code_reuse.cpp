//===- bench/table1_code_reuse.cpp - Paper Table 1 ------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: code reuse within the compiler.  Counts substantive source
/// lines (non-blank, non-comment) of each base library and each
/// specialized component in *this* repository, and prints the fraction of
/// code unique to each component -- the same measurement the paper's
/// Table 1 makes on the original Flick.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#ifndef FLICK_SOURCE_DIR
#define FLICK_SOURCE_DIR "."
#endif

namespace {

/// Counts substantive lines: not blank, not pure comment.
size_t countLines(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return 0;
  size_t N = 0;
  std::string Line;
  bool InBlock = false;
  while (std::getline(In, Line)) {
    size_t I = Line.find_first_not_of(" \t");
    if (I == std::string::npos)
      continue;
    std::string T = Line.substr(I);
    if (InBlock) {
      if (T.find("*/") != std::string::npos)
        InBlock = false;
      continue;
    }
    if (T.rfind("//", 0) == 0)
      continue;
    if (T.rfind("/*", 0) == 0) {
      if (T.find("*/") == std::string::npos)
        InBlock = true;
      continue;
    }
    ++N;
  }
  return N;
}

size_t countAll(const std::vector<std::string> &Files) {
  size_t N = 0;
  for (const std::string &F : Files)
    N += countLines(std::string(FLICK_SOURCE_DIR) + "/src/" + F);
  return N;
}

struct Component {
  const char *Name;
  std::vector<std::string> Files;
};

void printPhase(const char *Phase, const Component &Base,
                const std::vector<Component> &Specials) {
  size_t BaseN = countAll(Base.Files);
  std::printf("%-10s %-22s %6zu\n", Phase, Base.Name, BaseN);
  for (const Component &C : Specials) {
    size_t N = countAll(C.Files);
    double Pct = 100.0 * double(N) / double(N + BaseN);
    std::printf("%-10s %-22s %6zu  %5.1f%%\n", "", C.Name, N, Pct);
    flickbench::JsonReport::Row R;
    R.str("phase", Phase)
        .str("component", C.Name)
        .num("base_lines", BaseN)
        .num("unique_lines", N)
        .num("unique_pct", Pct);
    flickbench::JsonReport::get().add(R);
  }
}

} // namespace

int main() {
  std::printf(
      "=== Table 1 reproduction: code reuse within the compiler ===\n"
      "Percentages: fraction of code unique to a component when linked\n"
      "with its base library (paper: presentations/back ends 0-11%%,\n"
      "front ends ~45-48%% because of per-IDL scanners/parsers).\n\n");
  std::printf("%-10s %-22s %6s  %6s\n", "phase", "component", "lines",
              "unique");

  printPhase("Front End",
             {"Base Library",
              {"frontends/Lexer.h", "frontends/Lexer.cpp", "aoi/Aoi.h",
               "aoi/Aoi.cpp", "aoi/Verify.cpp"}},
             {{"CORBA IDL",
               {"frontends/corba/CorbaFrontEnd.h",
                "frontends/corba/CorbaParser.cpp"}},
              {"ONC RPC IDL",
               {"frontends/oncrpc/OncFrontEnd.h",
                "frontends/oncrpc/OncParser.cpp"}}});

  // The presentation generators share PresGen.cpp; their specializations
  // are the policy overrides counted from the style sections.
  printPhase("Pres. Gen.",
             {"Base Library",
              {"presgen/PresGen.h", "presgen/PresGen.cpp", "pres/Pres.h",
               "pres/Pres.cpp", "mint/Mint.h", "mint/Mint.cpp",
               "cast/Cast.h", "cast/Print.cpp", "cast/Builder.h"}},
             {{"CORBA C mapping", {"presgen/CorbaStyle.cpp"}},
              {"rpcgen mapping", {"presgen/RpcgenStyle.cpp"}}});

  printPhase("Back End",
             {"Base Library",
              {"backends/Backend.h", "backends/Backend.cpp",
               "backends/StubShape.h", "backends/MarshalPlan.h",
               "backends/MarshalPlan.cpp", "backends/Passes.h",
               "backends/Passes.cpp", "backends/PlanEmit.cpp",
               "backends/Dispatch.cpp", "mint/Wire.h", "mint/Wire.cpp"}},
             {{"CORBA IIOP", {"backends/IiopBackend.cpp"}},
              {"ONC RPC XDR", {"backends/XdrBackend.cpp"}},
              {"Mach 3 IPC", {"backends/MachBackend.cpp"}},
              {"Fluke IPC", {"backends/FlukeBackend.cpp"}}});

  std::printf("\n(Substantive lines: non-blank, non-comment, counted from\n"
              "the sources under %s/src.)\n",
              FLICK_SOURCE_DIR);
  return flickbench::JsonReport::get().write("table1_code_reuse") ? 0 : 1;
}
