//===- bench/ablation_optimizations.cpp - §3 optimization ablations -------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies each optimization of paper §3 by disabling it alone and
/// re-measuring the workload the paper attributes it to:
///   memcpy copy (paper: strings 60-70%% faster) ........ dirents, ints
///   chunk/coalesced checks (paper: ~14%%) .............. rect arrays
///   inlining (paper: complex data up to 60%%) .......... dirents
///   scratch-alloc + buffer-alias unmarshal (paper:
///     stack alloc ~14%%, buffer mgmt ~12%%) ............. dirent decode
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ab_base.h"
#include "ab_nochunk.h"
#include "ab_noinline.h"
#include "ab_nomemcpy.h"
#include "ab_noscratch.h"
#include <cstring>
#include <vector>

using namespace flickbench;

// Work-function stubs so the generated dispatchers link (never called).
#define DUMMY_SVC(P)                                                        \
  int P##send_ints_1_svc(const P##intseq *) { return 0; }                   \
  int P##send_rects_1_svc(const P##rectseq *) { return 0; }                 \
  int P##send_dirents_1_svc(const P##direntseq *) { return 0; }
DUMMY_SVC(AB_)
DUMMY_SVC(AM_)
DUMMY_SVC(AC_)
DUMMY_SVC(AI_)
DUMMY_SVC(AS_)

namespace {

constexpr uint32_t NumDirents = 256; // 64 KB encoded
constexpr uint32_t NumInts = 16384;  // 64 KB
constexpr uint32_t NumRects = 4096;  // 64 KB

/// Builds one workload set for a given presentation-type family.
template <typename DirentT, typename DirentSeqT>
struct DirentSet {
  std::vector<std::string> Names = makeNames(NumDirents);
  std::vector<DirentT> Entries;
  DirentSeqT Seq{};

  DirentSet() {
    Entries.resize(NumDirents);
    for (uint32_t I = 0; I != NumDirents; ++I) {
      Entries[I].name = Names[I].data();
      for (int W = 0; W != 30; ++W)
        Entries[I].info.words[W] = I + W;
      std::memset(Entries[I].info.tag, 7, 16);
    }
    Seq.direntseq_len = NumDirents;
    Seq.direntseq_val = Entries.data();
  }
};

double pct(double Base, double Other) {
  return (Other / Base - 1.0) * 100.0;
}

void row(const char *Claim, const char *Workload, const TimeStats &Base,
         const TimeStats &Ablated) {
  std::printf("%-34s %-18s %9.2fus %9.2fus %+8.1f%%\n", Claim, Workload,
              Base.Best * 1e6, Ablated.Best * 1e6,
              pct(Base.Best, Ablated.Best));
  JsonReport::Row R;
  R.str("claim", Claim)
      .str("workload", Workload)
      .num("optimized_secs", Base.Best)
      .num("optimized_stddev", Base.StdDev)
      .num("ablated_secs", Ablated.Best)
      .num("ablated_stddev", Ablated.StdDev)
      .num("cost_pct", pct(Base.Best, Ablated.Best));
  JsonReport::get().add(R);
}

} // namespace

int main() {
  flick_metrics *Metrics = benchMetricsIfJson();
  std::printf(
      "=== Ablations of the paper-§3 optimizations (64 KB workloads) ===\n"
      "Columns: time with all optimizations, time with ONE disabled, and\n"
      "the slowdown that optimization was buying.\n\n");
  std::printf("%-34s %-18s %11s %11s %9s\n", "optimization (paper claim)",
              "workload", "optimized", "ablated", "cost");

  flick_buf Buf;
  flick_buf_init(&Buf);

  // --- Shared workloads per type family ---
  std::vector<int32_t> Ints(NumInts, 123);
  std::vector<AB_rect> Rects(NumRects, AB_rect{{1, 2}, {3, 4}});

  DirentSet<AB_dirent, AB_direntseq> DBase;
  DirentSet<AM_dirent, AM_direntseq> DNoMemcpy;
  DirentSet<AC_dirent, AC_direntseq> DNoChunk;
  DirentSet<AI_dirent, AI_direntseq> DNoInline;
  DirentSet<AS_dirent, AS_direntseq> DNoScratch;

  auto Enc = [&](auto Fn, const auto *Arg) {
    return timeIt([&] {
      flick_buf_reset(&Buf);
      Fn(&Buf, 1, Arg);
    });
  };

  // --- memcpy (strings + int arrays) ---
  {
    TimeStats B1 = Enc(AB_send_dirents_1_encode_request, &DBase.Seq);
    TimeStats A1 = Enc(AM_send_dirents_1_encode_request, &DNoMemcpy.Seq);
    row("memcpy copy (strings 60-70% win)", "dirents 64K", B1, A1);
    AB_intseq BI{NumInts, Ints.data()};
    AM_intseq MI{NumInts, Ints.data()};
    TimeStats B2 = Enc(AB_send_ints_1_encode_request, &BI);
    TimeStats A2 = Enc(AM_send_ints_1_encode_request, &MI);
    row("bulk copy (int arrays)", "ints 64K", B2, A2);
  }

  // --- chunked buffer checks (rect structures) ---
  {
    AB_rectseq BR{NumRects, Rects.data()};
    AC_rectseq CR{NumRects, reinterpret_cast<AC_rect *>(Rects.data())};
    TimeStats B = Enc(AB_send_rects_1_encode_request, &BR);
    TimeStats A = Enc(AC_send_rects_1_encode_request, &CR);
    row("chunking (~14% on marshal)", "rects 64K", B, A);
    TimeStats B2 = Enc(AB_send_dirents_1_encode_request, &DBase.Seq);
    TimeStats A2 = Enc(AC_send_dirents_1_encode_request, &DNoChunk.Seq);
    row("buffer mgmt (~12% large complex)", "dirents 64K", B2, A2);
  }

  // --- inlining (complex data) ---
  {
    TimeStats B = Enc(AB_send_dirents_1_encode_request, &DBase.Seq);
    TimeStats A = Enc(AI_send_dirents_1_encode_request, &DNoInline.Seq);
    row("inlining (up to 60% complex data)", "dirents 64K", B, A);
  }

  // --- scratch allocation + buffer alias (unmarshal path) ---
  {
    flick_buf Req;
    flick_buf_init(&Req);
    flick_arena Ar{};
    // Base: decode with arena + aliasing.
    AB_send_dirents_1_encode_request(&Req, 1, &DBase.Seq);
    AB_direntseq BOut{};
    TimeStats B = timeIt([&] {
      Req.pos = 40; // dispatch would have consumed the ONC header
      flick_arena_reset(&Ar);
      AB_send_dirents_1_decode_request(&Req, &Ar, &BOut);
    });
    // Ablated: heap allocation per object, full copies.
    flick_buf Req2;
    flick_buf_init(&Req2);
    AS_send_dirents_1_encode_request(&Req2, 1, &DNoScratch.Seq);
    AS_direntseq SOut{};
    TimeStats A = timeIt([&] {
      Req2.pos = 40;
      AS_send_dirents_1_decode_request(&Req2, nullptr, &SOut);
      // Heap-mode decode mallocs; release like a traditional server would.
      for (uint32_t I = 0; I != SOut.direntseq_len; ++I)
        free(SOut.direntseq_val[I].name);
      free(SOut.direntseq_val);
    });
    row("scratch+alias unmarshal (12-14%)", "dirents decode", B, A);
    flick_buf_destroy(&Req);
    flick_buf_destroy(&Req2);
    flick_arena_destroy(&Ar);
  }

  flick_buf_destroy(&Buf);
  return JsonReport::get().write("ablation_optimizations", Metrics) ? 0 : 1;
}
