#!/usr/bin/env python3
"""Validate the latency_anatomy block of a bench JSON export.

Every bench JSON written with FLICK_BENCH_JSON carries a document-level
"latency_anatomy" object: one entry per endpoint with the end-to-end rpc
histogram summary, per-phase breakdowns (count, mean/p50/p99 and their
shares of the rpc span), optional SLO counters, and a self-consistency
block.  This checker is CI's proof that the attribution is trustworthy:

  * structure -- each endpoint entry must carry "rpc" (count, mean_us,
    p50_us, p99_us) and a non-empty "phases" object whose entries carry
    the same summary plus share_mean/share_p50/share_p99;
  * self-consistency -- the client-visible top-level phases (send,
    queue, demux) partition the rpc span, so |drift_frac| (the relative
    gap between the rpc mean and the top-level phase-mean sum) must stay
    within --max-drift.  Drift can be negative: on the socket transport
    a payload larger than the socket buffers is streamed, so the
    sender's send span genuinely overlaps the worker's claim window
    (see DESIGN.md, "Latency anatomy");
  * coverage -- --require-endpoint names endpoints that must be present
    (repeatable); --require-phase names phases every gated endpoint must
    have attributed (repeatable).

Endpoints with fewer than --min-count rpcs are reported but not gated on
drift: a handful of calls cannot anchor a mean-vs-mean comparison.

Stdlib only.  Exit 0 valid, 1 invalid, 2 usage/format errors.
"""

import argparse
import json
import sys

RPC_FIELDS = ("count", "mean_us", "p50_us", "p99_us")
PHASE_FIELDS = RPC_FIELDS + ("share_mean", "share_p50", "share_p99")


def is_num(v):
    return not isinstance(v, bool) and isinstance(v, (int, float))


def check_summary(entry, fields, where, errors):
    if not isinstance(entry, dict):
        errors.append(f"{where}: not an object")
        return
    for f in fields:
        if not is_num(entry.get(f)):
            errors.append(f"{where}: missing or non-numeric '{f}'")


def check_endpoint(name, entry, args, errors, notes):
    where = f"endpoint {name}"
    if not isinstance(entry, dict):
        errors.append(f"{where}: not an object")
        return
    rpc = entry.get("rpc")
    check_summary(rpc, RPC_FIELDS, f"{where}: rpc", errors)
    phases = entry.get("phases")
    if not isinstance(phases, dict) or not phases:
        errors.append(f"{where}: missing or empty 'phases'")
        phases = {}
    for pname, phase in phases.items():
        check_summary(phase, PHASE_FIELDS, f"{where}: phase {pname}",
                      errors)
    for pname in args.require_phase:
        if pname not in phases:
            errors.append(f"{where}: required phase '{pname}' not "
                          f"attributed")

    count = rpc.get("count") if isinstance(rpc, dict) else None
    if not is_num(count) or count < args.min_count:
        notes.append(f"{where}: only {count} rpcs, below --min-count "
                     f"{args.min_count}; drift not gated")
        return
    cons = entry.get("consistency")
    if not isinstance(cons, dict):
        errors.append(f"{where}: missing 'consistency' block")
        return
    drift = cons.get("drift_frac")
    if not is_num(drift):
        errors.append(f"{where}: missing or non-numeric drift_frac")
        return
    if abs(drift) > args.max_drift:
        errors.append(
            f"{where}: drift_frac {drift:+.4f} exceeds +/-"
            f"{args.max_drift:g} (rpc_mean_us "
            f"{cons.get('rpc_mean_us')}, top_level_mean_us "
            f"{cons.get('top_level_mean_us')}): per-phase sums do not "
            f"reconcile with the end-to-end rpc span")
    else:
        notes.append(f"{where}: {count} rpcs, drift_frac {drift:+.4f} "
                     f"(limit +/-{args.max_drift:g})")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="bench JSON export (FLICK_BENCH_JSON)")
    ap.add_argument("--max-drift", type=float, default=0.10,
                    help="max |drift_frac| between the rpc mean and the "
                         "top-level phase-mean sum (default 0.10)")
    ap.add_argument("--min-count", type=int, default=100,
                    help="endpoints with fewer rpcs are not drift-gated "
                         "(default 100)")
    ap.add_argument("--require-endpoint", action="append", default=[],
                    metavar="NAME",
                    help="fail unless this endpoint appears in the "
                         "report (repeatable)")
    ap.add_argument("--require-phase", action="append", default=[],
                    metavar="NAME",
                    help="fail unless every endpoint attributed this "
                         "phase (repeatable)")
    args = ap.parse_args(argv)

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_anatomy: {e}", file=sys.stderr)
        return 2

    errors = []
    notes = []
    anatomy = doc.get("latency_anatomy")
    if not isinstance(anatomy, dict):
        errors.append("no 'latency_anatomy' object in document")
        anatomy = {}
    elif not anatomy:
        errors.append("'latency_anatomy' is empty: no endpoint recorded "
                      "any rpc span (is tracing enabled?)")

    for name, entry in sorted(anatomy.items()):
        check_endpoint(name, entry, args, errors, notes)
    for name in args.require_endpoint:
        if name not in anatomy:
            errors.append(f"required endpoint '{name}' missing from "
                          f"report")

    for n in notes:
        print(f"  {n}")
    for e in errors:
        print(f"check_anatomy: {args.file}: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"check_anatomy: {args.file} OK ({len(anatomy)} endpoints, "
          f"max |drift| {args.max_drift:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
