//===- bench/EndToEnd.h - Figures 4-6 shared harness ------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end round-trip throughput over a simulated network (the
/// substitute for the paper's Ethernet/Myrinet testbed; see DESIGN.md §3).
/// Measured stub CPU time combines with modeled wire time, after scaling
/// the 1997 network model so the wire-to-memory-bandwidth ratio matches
/// the paper's testbed.  Expected shapes:
///   Figure 4 (10 Mbit): every compiler saturates the slow wire -- ties.
///   Figure 5 (100 Mbit, 70 eff): flick 2-3x naive on medium/large sizes.
///   Figure 6 (Myrinet, 84.5 eff): flick up to ~3.7x naive.
///
/// FLICK_BENCH_TRANSPORT=threaded|sharded|socket reroutes the rig over a
/// real concurrent transport (one pool worker, one client) instead of
/// the deterministic LocalLink pump: the modeled wire time then blocks
/// the sender for real and lands in the measured call time rather than
/// the SimClock.  CI's socket smoke runs fig5 this way to prove the
/// generated stubs round-trip over the epoll transport end to end.
///
/// Every fig4-6 binary also takes the uniform bench CLI (same spelling
/// as fig8/fig9): --transport=local|threaded|sharded|socket overrides
/// the environment, and --pipeline-depth=N (N > 1) reroutes the measured
/// loop through the async pipelined client -- the stubs' own
/// encode_request/decode_reply entry points marshal unchanged, only the
/// transport interaction switches from synchronous invoke to
/// submit/demux with N calls in flight.  Unknown options or values are
/// rejected with a diagnostic and exit code 2.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_BENCH_ENDTOEND_H
#define FLICK_BENCH_ENDTOEND_H

#include "BenchUtil.h"
#include "b_flick.h"
#include "b_naive.h"
#include "runtime/Calibrate.h"
#include "runtime/transport/LocalLink.h"
#include "runtime/transport/Transport.h"
#include <cstring>

// Work functions for both dispatchers (payload is discarded; the paper's
// methods are one-way data pushes with a void reply).
int F_send_ints_1_svc(const F_intseq *) { return 0; }
int F_send_rects_1_svc(const F_rectseq *) { return 0; }
int F_send_dirents_1_svc(const F_direntseq *) { return 0; }
int N_send_ints_1_svc(const N_intseq *) { return 0; }
int N_send_rects_1_svc(const N_rectseq *) { return 0; }
int N_send_dirents_1_svc(const N_direntseq *) { return 0; }

namespace flickbench {

/// The uniform bench command line shared by fig4-6 (and spelled the same
/// way by fig8/fig9): transport selection plus the pipelining depth.
struct E2EOptions {
  const char *Transport = nullptr; ///< null: FLICK_BENCH_TRANSPORT or pump
  unsigned Depth = 1;              ///< >1: async pipelined client driving
};

/// Parses --transport= / --pipeline-depth=; anything else (unknown flag,
/// unknown transport name, non-positive depth) gets a diagnostic and
/// exits with code 2, the usage-error convention of the gate scripts.
inline E2EOptions parseEndToEndArgs(int argc, char **argv) {
  E2EOptions O;
  for (int I = 1; I != argc; ++I) {
    const char *A = argv[I];
    if (std::strncmp(A, "--transport=", 12) == 0) {
      O.Transport = A + 12;
    } else if (std::strncmp(A, "--pipeline-depth=", 17) == 0) {
      char *End = nullptr;
      long D = std::strtol(A + 17, &End, 10);
      if (!End || *End || D < 1 || D > 65536) {
        std::fprintf(stderr,
                     "%s: bad --pipeline-depth '%s' (want an integer >= 1)\n",
                     argv[0], A + 17);
        std::exit(2);
      }
      O.Depth = static_cast<unsigned>(D);
    } else {
      std::fprintf(stderr,
                   "%s: unknown option '%s' (supported: "
                   "--transport=local|threaded|sharded|socket, "
                   "--pipeline-depth=N)\n",
                   argv[0], A);
      std::exit(2);
    }
  }
  if (O.Transport && std::strcmp(O.Transport, "local") != 0 &&
      !flick::makeTransport(O.Transport)) {
    std::fprintf(stderr,
                 "%s: unknown transport '%s' (supported: local, threaded, "
                 "sharded, socket)\n",
                 argv[0], O.Transport);
    std::exit(2);
  }
  return O;
}

/// One client/server pair over a modeled link.  By default the link is
/// the deterministic LocalLink pump (wire time accrues on the SimClock);
/// with a transport named (--transport= beats FLICK_BENCH_TRANSPORT) it
/// is a real Transport with one pool worker, and modeled wire time
/// blocks the sender for real.  "local" names the pump explicitly.
struct E2ERig {
  flick::LocalLink Link;
  flick::SimClock Clock;
  std::unique_ptr<flick::Transport> Tp;
  flick_server_pool Pool;
  flick_server Srv;
  flick_client Cli;

  E2ERig(flick_dispatch_fn Dispatch, const flick::NetworkModel &Model,
         const char *TransportName = nullptr) {
    const char *T =
        TransportName ? TransportName : std::getenv("FLICK_BENCH_TRANSPORT");
    if (T && *T && std::strcmp(T, "local") != 0) {
      Tp = flick::makeTransport(T);
      if (!Tp) {
        std::fprintf(stderr, "bench: unknown FLICK_BENCH_TRANSPORT '%s'\n",
                     T);
        std::exit(2);
      }
      Tp->setModel(Model);
      if (flick_server_pool_start(&Pool, Tp.get(), Dispatch, 1) !=
          FLICK_OK) {
        std::fprintf(stderr, "bench: transport pool failed to start\n");
        std::exit(2);
      }
      flick_client_init(&Cli, &Tp->connect());
      return;
    }
    Link.setModel(Model, &Clock);
    flick_server_init(&Srv, &Link.serverEnd(), Dispatch);
    Link.setPump(
        [this] { return flick_server_handle_one(&Srv) == FLICK_OK; });
    flick_client_init(&Cli, &Link.clientEnd());
  }
  ~E2ERig() {
    flick_client_destroy(&Cli);
    if (Tp)
      flick_server_pool_stop(&Pool);
    else
      flick_server_destroy(&Srv);
  }
};

/// Round-trip throughput in Mbit/s: payload bits over measured CPU time
/// plus simulated wire time.  The JSON row records both components.
template <typename Call>
double e2eThroughput(E2ERig &Rig, const char *Workload, const char *Series,
                     size_t PayloadBytes, Call Invoke) {
  Rig.Clock.reset();
  size_t Calls = 0;
  TimeStats T = timeIt([&] {
    ++Calls;
    Invoke();
  });
  double SimSecsPerCall = Calls ? Rig.Clock.totalUs() * 1e-6 /
                                      static_cast<double>(Calls)
                                : 0;
  double Total = T.Best + SimSecsPerCall;
  double MbitPerSec = static_cast<double>(PayloadBytes) * 8.0 / Total / 1e6;
  JsonReport::Row R;
  R.str("workload", Workload)
      .str("series", Series)
      .num("payload_bytes", PayloadBytes)
      .time(T)
      .num("sim_wire_secs_per_call", SimSecsPerCall)
      .num("rate_mbit_per_s", MbitPerSec);
  JsonReport::get().add(R);
  return MbitPerSec;
}

/// Pipelined round-trip throughput (--pipeline-depth=N > 1): up to
/// \p Depth calls ride in flight through flick_async_client while the
/// stub's own marshal entry points run unchanged -- \p Enc fills the
/// staged request buffer (given the fresh xid) and \p Dec must accept
/// each reply payload.  Completions demultiplex in arrival order inside
/// the blocking submit; the measured per-call time is therefore the
/// amortized pipelined cost, and the drain tail after the timing loop is
/// not charged.  The JSON row keeps the sync row's shape plus a
/// "pipeline_depth" key field, so depth-1 baselines never collide.
template <typename Encode>
double e2ePipelinedThroughput(E2ERig &Rig, const char *Workload,
                              const char *Series, size_t PayloadBytes,
                              unsigned Depth, Encode Enc,
                              int (*Dec)(flick_buf *)) {
  flick_async_opts Opts;
  Opts.window = Depth;
  flick_async_client A;
  if (flick_async_client_init(&A, Rig.Cli.chan, &Opts) != FLICK_OK) {
    std::fprintf(stderr, "bench: async client init failed\n");
    std::exit(1);
  }
  A.endpoint = Rig.Cli.endpoint;
  struct Completion {
    flick_async_client *A;
    int (*Dec)(flick_buf *);
    bool Failed = false;
  } Done{&A, Dec, false};
  flick_call_fn OnDone = [](flick_call *Call, void *Ctx) {
    auto *C = static_cast<Completion *>(Ctx);
    if (Call->status != FLICK_OK || C->Dec(&Call->rep) != FLICK_OK)
      C->Failed = true;
    flick_async_release(C->A, Call);
  };
  Rig.Clock.reset();
  uint32_t Xid = 0;
  size_t Calls = 0;
  TimeStats T = timeIt([&] {
    ++Calls;
    Enc(flick_async_begin(&A), ++Xid);
    flick_call *Call = nullptr;
    if (flick_async_submit(&A, &Call, OnDone, &Done) != FLICK_OK)
      Done.Failed = true;
  });
  if (flick_async_drain(&A) != FLICK_OK)
    Done.Failed = true;
  flick_async_client_destroy(&A);
  if (Done.Failed) {
    std::fprintf(stderr, "bench: pipelined %s/%s depth=%u failed\n", Workload,
                 Series, Depth);
    std::exit(1);
  }
  double SimSecsPerCall = Calls ? Rig.Clock.totalUs() * 1e-6 /
                                      static_cast<double>(Calls)
                                : 0;
  double Total = T.Best + SimSecsPerCall;
  double MbitPerSec = static_cast<double>(PayloadBytes) * 8.0 / Total / 1e6;
  JsonReport::Row R;
  R.str("workload", Workload)
      .str("series", Series)
      .num("payload_bytes", PayloadBytes)
      .num("pipeline_depth", static_cast<size_t>(Depth))
      .time(T)
      .num("sim_wire_secs_per_call", SimSecsPerCall)
      .num("rate_mbit_per_s", MbitPerSec);
  JsonReport::get().add(R);
  return MbitPerSec;
}

/// Runs the full figure for one network model and finishes the JSON
/// report (written only when FLICK_BENCH_JSON is set).  Returns the
/// process exit code.  The argv vector is the uniform bench CLI
/// (parseEndToEndArgs): --transport= overrides the environment and
/// --pipeline-depth=N > 1 switches the measured loop to the async
/// pipelined client.
inline int runEndToEndFigure(int argc, char **argv, const char *Title,
                             const char *JsonName,
                             flick::NetworkModel PaperModel) {
  E2EOptions Opts = parseEndToEndArgs(argc, argv);
  flick_metrics *Metrics = benchMetricsIfJson();
  double HostBw = flick::measureCopyBandwidth();
  flick::NetworkModel Model =
      flick::scaleModelToHost(PaperModel, HostBw);
  std::printf(
      "=== %s ===\n"
      "paper model: %.1f Mbit/s effective; host copy bw %.1f MB/s;\n"
      "scaled model: %.0f Mbit/s effective (keeps the paper's wire/memory"
      " ratio)\n",
      Title, PaperModel.EffectiveBitsPerSec / 1e6, HostBw / 1e6,
      Model.EffectiveBitsPerSec / 1e6);
  if (Opts.Transport)
    std::printf("transport: %s (--transport)\n", Opts.Transport);
  if (Opts.Depth > 1)
    std::printf("pipelined: %u calls in flight (--pipeline-depth)\n",
                Opts.Depth);
  std::printf("\n");

  auto RunWorkload = [&](const char *Name, bool Rects) {
    std::printf("%s\n%8s %14s %14s %12s\n", Name, "size", "flick(Mb/s)",
                "naive(Mb/s)", "flick/naive");
    for (size_t Bytes : arraySizes()) {
      E2ERig FR(F_BENCHPROG_dispatch, Model, Opts.Transport);
      E2ERig NR(N_BENCHPROG_dispatch, Model, Opts.Transport);
      // Latency anatomy attributes by endpoint: both compilers' rigs
      // share the workload's endpoint so "ints" vs "rects" is the axis.
      FR.Cli.endpoint = NR.Cli.endpoint =
          flick_endpoint_intern(Rects ? "rects" : "ints");
      unsigned D = Opts.Depth;
      double FT, NT;
      if (!Rects) {
        uint32_t N = static_cast<uint32_t>(Bytes / 4);
        std::vector<int32_t> Data(N, 42);
        F_intseq FS{N, Data.data()};
        N_intseq NS{N, Data.data()};
        if (D > 1) {
          FT = e2ePipelinedThroughput(
              FR, "ints", "flick", Bytes, D,
              [&](flick_buf *B, uint32_t X) {
                F_send_ints_1_encode_request(B, X, &FS);
              },
              F_send_ints_1_decode_reply);
          NT = e2ePipelinedThroughput(
              NR, "ints", "naive", Bytes, D,
              [&](flick_buf *B, uint32_t X) {
                N_send_ints_1_encode_request(B, X, &NS);
              },
              N_send_ints_1_decode_reply);
        } else {
          FT = e2eThroughput(FR, "ints", "flick", Bytes,
                             [&] { F_send_ints_1(&FS, &FR.Cli); });
          NT = e2eThroughput(NR, "ints", "naive", Bytes,
                             [&] { N_send_ints_1(&NS, &NR.Cli); });
        }
      } else {
        uint32_t N = static_cast<uint32_t>(Bytes / sizeof(F_rect));
        if (!N)
          N = 1;
        std::vector<F_rect> Data(N, F_rect{{1, 2}, {3, 4}});
        F_rectseq FS{N, Data.data()};
        N_rectseq NS{N, reinterpret_cast<N_rect *>(Data.data())};
        size_t Payload = N * sizeof(F_rect);
        if (D > 1) {
          FT = e2ePipelinedThroughput(
              FR, "rects", "flick", Payload, D,
              [&](flick_buf *B, uint32_t X) {
                F_send_rects_1_encode_request(B, X, &FS);
              },
              F_send_rects_1_decode_reply);
          NT = e2ePipelinedThroughput(
              NR, "rects", "naive", Payload, D,
              [&](flick_buf *B, uint32_t X) {
                N_send_rects_1_encode_request(B, X, &NS);
              },
              N_send_rects_1_decode_reply);
        } else {
          FT = e2eThroughput(FR, "rects", "flick", Payload,
                             [&] { F_send_rects_1(&FS, &FR.Cli); });
          NT = e2eThroughput(NR, "rects", "naive", Payload,
                             [&] { N_send_rects_1(&NS, &NR.Cli); });
        }
      }
      std::printf("%8s %14.1f %14.1f %11.2fx\n", fmtBytes(Bytes).c_str(),
                  FT, NT, NT > 0 ? FT / NT : 0.0);
    }
    std::printf("\n");
  };
  RunWorkload("integer arrays:", false);
  RunWorkload("rect-structure arrays:", true);

  JsonReport::Row Cfg;
  Cfg.str("workload", "config")
      .str("series", "network_model")
      .num("paper_mbit_per_s", PaperModel.EffectiveBitsPerSec / 1e6)
      .num("scaled_mbit_per_s", Model.EffectiveBitsPerSec / 1e6)
      .num("host_copy_mb_per_s", HostBw / 1e6);
  if (Opts.Transport)
    Cfg.str("transport", Opts.Transport);
  if (Opts.Depth > 1)
    Cfg.num("config_pipeline_depth", static_cast<size_t>(Opts.Depth));
  JsonReport::get().add(Cfg);
  return JsonReport::get().write(JsonName, Metrics) ? 0 : 1;
}

} // namespace flickbench

#endif // FLICK_BENCH_ENDTOEND_H
