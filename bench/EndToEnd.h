//===- bench/EndToEnd.h - Figures 4-6 shared harness ------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end round-trip throughput over a simulated network (the
/// substitute for the paper's Ethernet/Myrinet testbed; see DESIGN.md §3).
/// Measured stub CPU time combines with modeled wire time, after scaling
/// the 1997 network model so the wire-to-memory-bandwidth ratio matches
/// the paper's testbed.  Expected shapes:
///   Figure 4 (10 Mbit): every compiler saturates the slow wire -- ties.
///   Figure 5 (100 Mbit, 70 eff): flick 2-3x naive on medium/large sizes.
///   Figure 6 (Myrinet, 84.5 eff): flick up to ~3.7x naive.
///
/// FLICK_BENCH_TRANSPORT=threaded|sharded|socket reroutes the rig over a
/// real concurrent transport (one pool worker, one client) instead of
/// the deterministic LocalLink pump: the modeled wire time then blocks
/// the sender for real and lands in the measured call time rather than
/// the SimClock.  CI's socket smoke runs fig5 this way to prove the
/// generated stubs round-trip over the epoll transport end to end.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_BENCH_ENDTOEND_H
#define FLICK_BENCH_ENDTOEND_H

#include "BenchUtil.h"
#include "b_flick.h"
#include "b_naive.h"
#include "runtime/Calibrate.h"
#include "runtime/transport/LocalLink.h"
#include "runtime/transport/Transport.h"

// Work functions for both dispatchers (payload is discarded; the paper's
// methods are one-way data pushes with a void reply).
int F_send_ints_1_svc(const F_intseq *) { return 0; }
int F_send_rects_1_svc(const F_rectseq *) { return 0; }
int F_send_dirents_1_svc(const F_direntseq *) { return 0; }
int N_send_ints_1_svc(const N_intseq *) { return 0; }
int N_send_rects_1_svc(const N_rectseq *) { return 0; }
int N_send_dirents_1_svc(const N_direntseq *) { return 0; }

namespace flickbench {

/// One client/server pair over a modeled link.  By default the link is
/// the deterministic LocalLink pump (wire time accrues on the SimClock);
/// with FLICK_BENCH_TRANSPORT set it is a real Transport with one pool
/// worker, and modeled wire time blocks the sender for real.
struct E2ERig {
  flick::LocalLink Link;
  flick::SimClock Clock;
  std::unique_ptr<flick::Transport> Tp;
  flick_server_pool Pool;
  flick_server Srv;
  flick_client Cli;

  E2ERig(flick_dispatch_fn Dispatch, const flick::NetworkModel &Model) {
    const char *T = std::getenv("FLICK_BENCH_TRANSPORT");
    if (T && *T) {
      Tp = flick::makeTransport(T);
      if (!Tp) {
        std::fprintf(stderr, "bench: unknown FLICK_BENCH_TRANSPORT '%s'\n",
                     T);
        std::exit(2);
      }
      Tp->setModel(Model);
      if (flick_server_pool_start(&Pool, Tp.get(), Dispatch, 1) !=
          FLICK_OK) {
        std::fprintf(stderr, "bench: transport pool failed to start\n");
        std::exit(2);
      }
      flick_client_init(&Cli, &Tp->connect());
      return;
    }
    Link.setModel(Model, &Clock);
    flick_server_init(&Srv, &Link.serverEnd(), Dispatch);
    Link.setPump(
        [this] { return flick_server_handle_one(&Srv) == FLICK_OK; });
    flick_client_init(&Cli, &Link.clientEnd());
  }
  ~E2ERig() {
    flick_client_destroy(&Cli);
    if (Tp)
      flick_server_pool_stop(&Pool);
    else
      flick_server_destroy(&Srv);
  }
};

/// Round-trip throughput in Mbit/s: payload bits over measured CPU time
/// plus simulated wire time.  The JSON row records both components.
template <typename Call>
double e2eThroughput(E2ERig &Rig, const char *Workload, const char *Series,
                     size_t PayloadBytes, Call Invoke) {
  Rig.Clock.reset();
  size_t Calls = 0;
  TimeStats T = timeIt([&] {
    ++Calls;
    Invoke();
  });
  double SimSecsPerCall = Calls ? Rig.Clock.totalUs() * 1e-6 /
                                      static_cast<double>(Calls)
                                : 0;
  double Total = T.Best + SimSecsPerCall;
  double MbitPerSec = static_cast<double>(PayloadBytes) * 8.0 / Total / 1e6;
  JsonReport::Row R;
  R.str("workload", Workload)
      .str("series", Series)
      .num("payload_bytes", PayloadBytes)
      .time(T)
      .num("sim_wire_secs_per_call", SimSecsPerCall)
      .num("rate_mbit_per_s", MbitPerSec);
  JsonReport::get().add(R);
  return MbitPerSec;
}

/// Runs the full figure for one network model and finishes the JSON
/// report (written only when FLICK_BENCH_JSON is set).  Returns the
/// process exit code.
inline int runEndToEndFigure(const char *Title, const char *JsonName,
                             flick::NetworkModel PaperModel) {
  flick_metrics *Metrics = benchMetricsIfJson();
  double HostBw = flick::measureCopyBandwidth();
  flick::NetworkModel Model =
      flick::scaleModelToHost(PaperModel, HostBw);
  std::printf(
      "=== %s ===\n"
      "paper model: %.1f Mbit/s effective; host copy bw %.1f MB/s;\n"
      "scaled model: %.0f Mbit/s effective (keeps the paper's wire/memory"
      " ratio)\n\n",
      Title, PaperModel.EffectiveBitsPerSec / 1e6, HostBw / 1e6,
      Model.EffectiveBitsPerSec / 1e6);

  auto RunWorkload = [&](const char *Name, bool Rects) {
    std::printf("%s\n%8s %14s %14s %12s\n", Name, "size", "flick(Mb/s)",
                "naive(Mb/s)", "flick/naive");
    for (size_t Bytes : arraySizes()) {
      E2ERig FR(F_BENCHPROG_dispatch, Model);
      E2ERig NR(N_BENCHPROG_dispatch, Model);
      // Latency anatomy attributes by endpoint: both compilers' rigs
      // share the workload's endpoint so "ints" vs "rects" is the axis.
      FR.Cli.endpoint = NR.Cli.endpoint =
          flick_endpoint_intern(Rects ? "rects" : "ints");
      double FT, NT;
      if (!Rects) {
        uint32_t N = static_cast<uint32_t>(Bytes / 4);
        std::vector<int32_t> Data(N, 42);
        F_intseq FS{N, Data.data()};
        N_intseq NS{N, Data.data()};
        FT = e2eThroughput(FR, "ints", "flick", Bytes,
                           [&] { F_send_ints_1(&FS, &FR.Cli); });
        NT = e2eThroughput(NR, "ints", "naive", Bytes,
                           [&] { N_send_ints_1(&NS, &NR.Cli); });
      } else {
        uint32_t N = static_cast<uint32_t>(Bytes / sizeof(F_rect));
        if (!N)
          N = 1;
        std::vector<F_rect> Data(N, F_rect{{1, 2}, {3, 4}});
        F_rectseq FS{N, Data.data()};
        N_rectseq NS{N, reinterpret_cast<N_rect *>(Data.data())};
        size_t Payload = N * sizeof(F_rect);
        FT = e2eThroughput(FR, "rects", "flick", Payload,
                           [&] { F_send_rects_1(&FS, &FR.Cli); });
        NT = e2eThroughput(NR, "rects", "naive", Payload,
                           [&] { N_send_rects_1(&NS, &NR.Cli); });
      }
      std::printf("%8s %14.1f %14.1f %11.2fx\n", fmtBytes(Bytes).c_str(),
                  FT, NT, NT > 0 ? FT / NT : 0.0);
    }
    std::printf("\n");
  };
  RunWorkload("integer arrays:", false);
  RunWorkload("rect-structure arrays:", true);

  JsonReport::Row Cfg;
  Cfg.str("workload", "config")
      .str("series", "network_model")
      .num("paper_mbit_per_s", PaperModel.EffectiveBitsPerSec / 1e6)
      .num("scaled_mbit_per_s", Model.EffectiveBitsPerSec / 1e6)
      .num("host_copy_mb_per_s", HostBw / 1e6);
  JsonReport::get().add(Cfg);
  return JsonReport::get().write(JsonName, Metrics) ? 0 : 1;
}

} // namespace flickbench

#endif // FLICK_BENCH_ENDTOEND_H
