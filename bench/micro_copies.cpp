//===- bench/micro_copies.cpp - copy accounting per message size ----------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sweeps int-array RPCs from 64 B to 1 MB over an in-process LocalLink
/// and reports, for plain CDR stubs versus --gather-min-bytes stubs:
/// RPCs/s, payload throughput, and -- the point of the exercise --
/// bytes_copied per RPC from the runtime's copy-accounting metric,
/// normalized to copies-of-payload.  Above the gather threshold the
/// gathered series should drop from ~2x the payload (marshal grab +
/// pooled transport write) to ~1x (the single pooled-buffer fill), while
/// below the threshold both series match.
///
/// Unlike the other benches, metrics collection is always on here: the
/// copy counts ARE the result, not an optional annotation.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "b_cdr.h"
#include "b_gather.h"
#include "runtime/transport/LocalLink.h"
#include <vector>

using namespace flickbench;

// Work functions so the generated dispatchers link.  Decode has already
// happened by the time these run, so empty bodies still measure the full
// message path.
void C_Transfer_send_ints_server(const C_IntSeq *, CORBA_Environment *) {}
void C_Transfer_send_rects_server(const C_RectSeq *, CORBA_Environment *) {}
void C_Transfer_send_dirents_server(const C_DirentSeq *,
                                    CORBA_Environment *) {}
void G_Transfer_send_ints_server(const G_IntSeq *, CORBA_Environment *) {}
void G_Transfer_send_rects_server(const G_RectSeq *, CORBA_Environment *) {}
void G_Transfer_send_dirents_server(const G_DirentSeq *,
                                    CORBA_Environment *) {}

namespace {

/// Client/server pair over an ideal in-process link (the wire costs
/// nothing, so every byte moved is a marshal or transport copy).
struct Rig {
  flick::LocalLink Link;
  flick_server Srv;
  flick_client Cli;
  flick_obj Obj;

  explicit Rig(flick_dispatch_fn Dispatch) {
    flick_server_init(&Srv, &Link.serverEnd(), Dispatch);
    Link.setPump(
        [this] { return flick_server_handle_one(&Srv) == FLICK_OK; });
    flick_client_init(&Cli, &Link.clientEnd());
    Obj.client = &Cli;
  }
  ~Rig() {
    flick_client_destroy(&Cli);
    flick_server_destroy(&Srv);
  }
};

struct Sample {
  double RpcsPerSec = 0;
  double BytesCopied = 0; ///< per RPC
  double CopyOps = 0;     ///< per RPC
};

template <typename Fn>
Sample measure(const char *Series, size_t Payload, Fn Call) {
  TimeStats T = timeIt(Call);
  Sample S;
  S.RpcsPerSec = T.Best > 0 ? 1.0 / T.Best : 0;
  S.BytesCopied = T.BytesCopiedPerCall;
  S.CopyOps = T.CopyOpsPerCall;
  JsonReport::Row R;
  R.str("workload", "rpc_ints")
      .str("series", Series)
      .num("payload_bytes", Payload)
      .time(T)
      .num("rpcs_per_s", S.RpcsPerSec)
      .num("payload_copies",
           Payload ? T.BytesCopiedPerCall / static_cast<double>(Payload)
                   : 0.0);
  JsonReport::get().add(R);
  return S;
}

void printSample(size_t Payload, const char *Series, const Sample &S) {
  std::printf("%8s %8s %11.0f %9sMB/s %13.0f %8.2fx %7.1f\n",
              fmtBytes(Payload).c_str(), Series, S.RpcsPerSec,
              fmtRate(S.RpcsPerSec * static_cast<double>(Payload)).c_str(),
              S.BytesCopied,
              Payload ? S.BytesCopied / static_cast<double>(Payload) : 0.0,
              S.CopyOps);
}

} // namespace

int main() {
  // Copy accounting is the measurement here, so collection is always on
  // (benchMetricsIfJson only enables it when JSON export is requested).
  flick_metrics *M = benchMetricsIfJson();
  static flick_metrics Always;
  if (!M) {
    flick_metrics_enable(&Always);
    M = &Always;
  }

  std::printf(
      "=== Copy accounting: plain vs gathered stubs, full RPC on "
      "LocalLink ===\n"
      "Above the 4 KB gather threshold the gathered series should move\n"
      "the payload once (pooled transport fill); the plain series pays\n"
      "the marshal copy on top.\n\n");
  std::printf("%8s %8s %11s %13s %13s %9s %7s\n", "size", "series",
              "rpc/s", "payload", "copied/rpc", "xpayload", "ops");

  Rig Plain(C_Transfer_dispatch);
  Rig Gather(G_Transfer_dispatch);

  for (size_t Bytes :
       {64u, 256u, 1024u, 4096u, 16384u, 65536u, 262144u, 1048576u}) {
    uint32_t N = static_cast<uint32_t>(Bytes / 4);
    std::vector<int32_t> Data(N);
    for (uint32_t I = 0; I != N; ++I)
      Data[I] = static_cast<int32_t>(I * 2654435761u);
    C_IntSeq CS{0, N, Data.data()};
    G_IntSeq GS{0, N, Data.data()};
    CORBA_Environment Ev{};

    Sample SP = measure("plain", Bytes, [&] {
      C_Transfer_send_ints(reinterpret_cast<C_Transfer>(&Plain.Obj), &CS,
                           &Ev);
    });
    if (Ev._major != CORBA_NO_EXCEPTION) {
      std::fprintf(stderr, "plain RPC raised exception at %zu bytes\n",
                   Bytes);
      return 1;
    }
    Sample SG = measure("gather", Bytes, [&] {
      G_Transfer_send_ints(reinterpret_cast<G_Transfer>(&Gather.Obj), &GS,
                           &Ev);
    });
    if (Ev._major != CORBA_NO_EXCEPTION) {
      std::fprintf(stderr, "gathered RPC raised exception at %zu bytes\n",
                   Bytes);
      return 1;
    }
    printSample(Bytes, "plain", SP);
    printSample(Bytes, "gather", SG);
  }

  return JsonReport::get().write("micro_copies", M) ? 0 : 1;
}
