#!/usr/bin/env python3
"""Gate the fig8 transport columns (the PR-7 acceptance criteria).

Two checks over a fig8_scalability JSON export:

1. Copy discipline (always on): every socket-transport row with a payload
   of at least --copy-floor-bytes (default 4096) must report
   copies_per_rpc <= --max-socket-copies (default 1.05).  The socket path
   marshals once into the request buffer and hands that straight to
   sendmsg; receive adopts pooled wire buffers.  Anything above ~1.0
   payload-normalized means a hidden memcpy crept back into the hot path.
   Small payloads are exempt: fixed header/trace bytes dominate there.

2. Contention scaling (--require-speedup, for unmodeled runs): at the
   highest common worker count, the best sharded-vs-threaded rpcs_per_s
   ratio across payloads must reach --min-speedup (default 5, overridable
   with FLICK_FIG8_MIN_SPEEDUP).  The threaded transport serializes every
   worker on one queue mutex, so its in-process ceiling collapses as
   workers contend; the sharded rings are the fix and this ratio is the
   proof.  The gate needs real parallelism to mean anything, so it is
   skipped (with a notice) when the machine has fewer than 4 CPUs --
   on one core a lock-free ring buys nothing over an uncontended mutex.

Stdlib only; exit 0 on pass/skip, 1 on a failed gate, 2 on usage errors.
"""

import argparse
import json
import os
import sys


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = doc.get("rows")
    if not isinstance(rows, list):
        raise ValueError(f"{path}: no 'rows' array")
    return [r for r in rows if isinstance(r, dict)]


def check_socket_copies(rows, floor_bytes, max_copies):
    failures = []
    checked = 0
    for r in rows:
        if r.get("transport") != "socket":
            continue
        payload = r.get("payload_bytes")
        copies = r.get("copies_per_rpc")
        if not isinstance(payload, (int, float)) or payload < floor_bytes:
            continue
        if not isinstance(copies, (int, float)):
            failures.append(f"socket row {r.get('series')} payload={payload}"
                            " has no copies_per_rpc")
            continue
        checked += 1
        if copies > max_copies:
            failures.append(
                f"socket series={r.get('series')} payload={payload}: "
                f"copies_per_rpc {copies:.3f} > {max_copies} -- an extra "
                "user-space copy is back on the socket path")
    if not checked:
        failures.append(f"no socket rows with payload >= {floor_bytes} "
                        "bytes found; cannot gate copy discipline")
    return checked, failures


def check_sharded_speedup(rows, min_speedup):
    """Best sharded/threaded rpcs_per_s ratio at the top worker count."""
    by = {}
    for r in rows:
        t, w, p = r.get("transport"), r.get("workers"), r.get("payload_bytes")
        rate = r.get("rpcs_per_s")
        if t in ("threaded", "sharded") and isinstance(rate, (int, float)):
            by[(t, w, p)] = rate
    workers = sorted({w for (t, w, _p) in by if t == "sharded"} &
                     {w for (t, w, _p) in by if t == "threaded"})
    if not workers:
        return None, ["no overlapping threaded/sharded worker counts found"]
    top = workers[-1]
    ratios = []
    for (t, w, p), rate in by.items():
        if t != "sharded" or w != top:
            continue
        threaded = by.get(("threaded", top, p))
        if threaded and threaded > 0:
            ratios.append((rate / threaded, p))
    if not ratios:
        return None, [f"no comparable payloads at workers={top}"]
    best, payload = max(ratios)
    if best < min_speedup:
        return best, [
            f"sharded/threaded at workers={top} peaked at {best:.2f}x "
            f"(payload={payload}); gate requires >= {min_speedup}x. "
            "The lock-free rings are not clearing the mutex-queue ceiling."]
    print(f"check_fig8_transports: sharded/threaded at workers={top} is "
          f"{best:.2f}x (payload={payload}), gate {min_speedup}x: OK")
    return best, []


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("results", help="fig8_scalability JSON export")
    ap.add_argument("--max-socket-copies", type=float, default=1.05)
    ap.add_argument("--copy-floor-bytes", type=float, default=4096)
    ap.add_argument("--require-speedup", action="store_true",
                    help="also gate sharded-vs-threaded scaling "
                         "(pass the JSON from an unmodeled run)")
    ap.add_argument("--min-speedup", type=float,
                    default=float(os.environ.get("FLICK_FIG8_MIN_SPEEDUP",
                                                 "5")))
    args = ap.parse_args(argv)

    try:
        rows = load_rows(args.results)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_fig8_transports: {e}", file=sys.stderr)
        return 2

    checked, failures = check_socket_copies(rows, args.copy_floor_bytes,
                                            args.max_socket_copies)
    if not failures:
        print(f"check_fig8_transports: {checked} socket rows within "
              f"{args.max_socket_copies} copies/rpc: OK")

    if args.require_speedup:
        cpus = os.cpu_count() or 1
        if cpus < 4:
            print(f"check_fig8_transports: speedup gate SKIPPED "
                  f"({cpus} CPU(s); needs >= 4 for the contention "
                  "ceiling to exist)")
        else:
            _best, errs = check_sharded_speedup(rows, args.min_speedup)
            failures.extend(errs)

    for f in failures:
        print(f"check_fig8_transports: FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
