#!/usr/bin/env python3
"""Gate the runtime-specialization columns (the PR-9 acceptance criteria).

Checks over a fig3_marshal_throughput JSON export:

1. Dense speedup (always on): for every payload of at least
   --dense-floor-bytes (default 4096) in the dense workloads (ints,
   rects), the interp-spec rate must be at least --min-speedup (default
   5.0) times the interp rate from the same run.  Dense payloads are
   where run fusion collapses the whole element loop into one bulk
   stencil, so anything under 5x means fusion regressed to per-field
   dispatch.  The mixed dirents workload (cstrings break up the runs)
   gets the softer --min-mixed-speedup gate (default 2.0).

2. Compile budget (when the export carries a metrics block): average
   specialization time, spec_compile_ns / spec_programs, must stay under
   --max-compile-us (default 250).  Programs are compiled once per
   structural type and cached, but a dynamic-IDL host may specialize on
   the first RPC of a connection, so compilation must stay cheap enough
   to never show up in a tail.

3. Break-even (--micro, a micro_specialize JSON export): every
   break-even row must report break_even_calls between 0 and
   --max-break-even (default 1000).  A negative value means the
   specialized path failed to beat the interpreter at that size.

Both gates compare series within ONE run on ONE machine, so they are
load-tolerant in the way absolute-rate gates are not.

Stdlib only; exit 0 on pass, 1 on a failed gate, 2 on usage errors.
"""

import argparse
import json
import sys

DENSE_WORKLOADS = ("ints", "rects")
MIXED_WORKLOADS = ("dirents",)


def load_doc(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def rows_of(doc, path):
    rows = doc.get("rows")
    if not isinstance(rows, list):
        raise ValueError(f"{path}: no 'rows' array")
    return [r for r in rows if isinstance(r, dict)]


def rate_index(rows, series):
    idx = {}
    for r in rows:
        if r.get("series") != series:
            continue
        key = (r.get("workload"), r.get("payload_bytes"))
        rate = r.get("rate_mb_per_s")
        if isinstance(rate, (int, float)) and rate > 0:
            idx[key] = rate
    return idx


def check_speedup(rows, floor_bytes, min_dense, min_mixed):
    interp = rate_index(rows, "interp")
    spec = rate_index(rows, "interp-spec")
    failures = []
    checked = 0
    for (workload, payload), spec_rate in sorted(spec.items()):
        if workload in DENSE_WORKLOADS:
            need = min_dense
        elif workload in MIXED_WORKLOADS:
            need = min_mixed
        else:
            continue
        if not isinstance(payload, (int, float)) or payload < floor_bytes:
            continue
        base = interp.get((workload, payload))
        if base is None:
            failures.append(f"{workload}/{payload}: interp-spec row has no "
                            "matching interp row")
            continue
        checked += 1
        ratio = spec_rate / base
        if ratio < need:
            failures.append(
                f"{workload} payload={payload}: interp-spec is only "
                f"{ratio:.2f}x interp (need {need}x) -- run fusion or the "
                "threaded dispatch loop regressed")
    if checked == 0:
        failures.append("no interp-spec rows at or above the payload floor; "
                        "did fig3 drop the series?")
    return checked, failures


def check_compile_budget(doc, max_compile_us):
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return 0, []  # metrics collection off; nothing to gate
    programs = metrics.get("spec_programs", 0)
    compile_ns = metrics.get("spec_compile_ns", 0)
    if not programs:
        return 0, ["metrics block has spec_programs == 0: the bench "
                   "compiled nothing through the specializer"]
    avg_us = compile_ns / programs / 1e3
    if avg_us > max_compile_us:
        return 1, [f"average specialization cost {avg_us:.1f}us/program "
                   f"exceeds the {max_compile_us}us budget "
                   f"({programs} programs, {compile_ns} ns total)"]
    return 1, []


def check_break_even(rows, max_calls, path):
    failures = []
    checked = 0
    for r in rows:
        if r.get("series") != "break-even":
            continue
        checked += 1
        calls = r.get("break_even_calls")
        where = f"{r.get('workload')}/{r.get('payload_bytes')}"
        if not isinstance(calls, (int, float)):
            failures.append(f"{where}: break-even row has no "
                            "break_even_calls")
        elif calls < 0:
            failures.append(f"{where}: specialized encode never beats the "
                            "interpreter (negative break-even)")
        elif calls > max_calls:
            failures.append(f"{where}: break-even {calls:.0f} calls "
                            f"exceeds the {max_calls}-call budget")
    if checked == 0:
        failures.append(f"{path}: no break-even rows; did micro_specialize "
                        "drop the series?")
    return checked, failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fig3", help="fig3_marshal_throughput JSON export")
    ap.add_argument("--micro", help="micro_specialize JSON export "
                    "(adds the break-even gate)")
    ap.add_argument("--dense-floor-bytes", type=float, default=4096)
    ap.add_argument("--min-speedup", type=float, default=5.0)
    ap.add_argument("--min-mixed-speedup", type=float, default=2.0)
    ap.add_argument("--max-compile-us", type=float, default=250.0)
    ap.add_argument("--max-break-even", type=float, default=1000.0)
    args = ap.parse_args(argv)

    try:
        doc = load_doc(args.fig3)
        rows = rows_of(doc, args.fig3)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_specialize: {e}", file=sys.stderr)
        return 2

    checked, failures = check_speedup(rows, args.dense_floor_bytes,
                                      args.min_speedup,
                                      args.min_mixed_speedup)
    budget_checked, budget_failures = check_compile_budget(
        doc, args.max_compile_us)
    failures += budget_failures

    be_checked = 0
    if args.micro:
        try:
            micro = rows_of(load_doc(args.micro), args.micro)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"check_specialize: {e}", file=sys.stderr)
            return 2
        be_checked, be_failures = check_break_even(
            micro, args.max_break_even, args.micro)
        failures += be_failures

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"check_specialize: OK ({checked} speedup rows, "
          f"{budget_checked} compile budgets, {be_checked} break-even rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
