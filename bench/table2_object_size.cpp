//===- bench/table2_object_size.cpp - Paper Table 2 -----------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2: object-code sizes of compiled stubs for the directory
/// interface, per compiler.  Regenerates the stubs with flickc (optimized
/// and naive back ends), compiles them with the host C++ compiler at -O2,
/// and reports the object sizes plus the marshal-library code each style
/// depends on.  The paper's point: aggressive inlining *reduced* compiled
/// stub size for a large class of interfaces because the per-type marshal
/// functions and their call chains disappear.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>

#ifndef FLICKC_PATH
#define FLICKC_PATH "flickc"
#endif
#ifndef FLICK_SOURCE_DIR
#define FLICK_SOURCE_DIR "."
#endif

namespace {

long fileSize(const std::string &Path) {
  struct stat St{};
  if (::stat(Path.c_str(), &St) != 0)
    return -1;
  return static_cast<long>(St.st_size);
}

bool run(const std::string &Cmd) {
  int Rc = std::system((Cmd + " > /dev/null 2>&1").c_str());
  return Rc == 0;
}

struct Variant {
  const char *Label;
  const char *Backend;
  const char *Prefix;
};

} // namespace

int main() {
  std::printf(
      "=== Table 2 reproduction: object-code sizes (directory "
      "interface) ===\n"
      "paper: inlined Flick stubs compile SMALLER than rpcgen-style\n"
      "stubs + their per-type marshal functions.\n\n");

  std::string Tmp = "/tmp/flick_table2";
  run("rm -rf " + Tmp);
  run("mkdir -p " + Tmp);
  std::string Idl = std::string(FLICK_SOURCE_DIR) + "/idl/bench.x";
  std::string Inc = std::string("-I") + FLICK_SOURCE_DIR + "/src -I" +
                    FLICK_SOURCE_DIR + "/src/runtime";

  const std::array<Variant, 2> Variants = {
      Variant{"Flick (xdr, optimized)", "xdr", "T2F_"},
      Variant{"rpcgen-style (naive)", "naive", "T2N_"},
  };

  std::printf("%-26s %12s %12s %12s\n", "compiler", "client .o",
              "server .o", "xdr lib .o");
  for (const Variant &V : Variants) {
    std::string Base = Tmp + "/" + V.Prefix + "stubs";
    std::string Gen = std::string(FLICKC_PATH) + " -b " + V.Backend +
                      " --prefix " + V.Prefix + " -o " + Base + " " + Idl;
    if (!run(Gen)) {
      std::printf("%-26s  (flickc failed)\n", V.Label);
      continue;
    }
    bool Ok = run("c++ -std=c++20 -O2 " + Inc + " -c " + Base +
                  "_client.cc -o " + Base + "_client.o") &&
              run("c++ -std=c++20 -O2 " + Inc + " -c " + Base +
                  "_server.cc -o " + Base + "_server.o");
    long Common = 0;
    if (fileSize(Base + "_xdr.cc") > 0) {
      Ok = Ok && run("c++ -std=c++20 -O2 " + Inc + " -c " + Base +
                     "_xdr.cc -o " + Base + "_xdr.o");
      Common = fileSize(Base + "_xdr.o");
    }
    if (!Ok) {
      // No host compiler: fall back to generated-source sizes.
      std::printf("%-26s %10ldB* %10ldB* %10ldB*  (*source bytes; no host "
                  "C++ compiler)\n",
                  V.Label, fileSize(Base + "_client.cc"),
                  fileSize(Base + "_server.cc"), fileSize(Base + "_xdr.cc"));
      continue;
    }
    std::printf("%-26s %11ldB %11ldB %11ldB\n", V.Label,
                fileSize(Base + "_client.o"), fileSize(Base + "_server.o"),
                Common);
    flickbench::JsonReport::Row R;
    R.str("compiler", V.Label)
        .str("backend", V.Backend)
        .num("client_obj_bytes", double(fileSize(Base + "_client.o")))
        .num("server_obj_bytes", double(fileSize(Base + "_server.o")))
        .num("marshal_lib_obj_bytes", double(Common));
    flickbench::JsonReport::get().add(R);
  }
  std::printf(
      "\n(Objects compiled with `c++ -O2 -c`; the naive style also needs\n"
      "its out-of-line per-type marshal library, column 3 -- the analogue\n"
      "of the paper's 'library code required to marshal' columns.)\n");
  return flickbench::JsonReport::get().write("table2_object_size") ? 0 : 1;
}
