//===- bench/fig3_marshal_throughput.cpp - Paper Figure 3 -----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 3: marshal throughput of generated stubs, independent of
/// transport.  Workloads per the paper: int arrays and rect-structure
/// arrays from 64 B to 4 MB, directory entries (256 B encoded each) from
/// 256 B to 512 KB.  Compilers compared:
///   flick-xdr  : this compiler, ONC/XDR stubs (bulk byte-swap on LE hosts)
///   flick-cdr  : this compiler, CORBA/IIOP stubs (bit-identical -> memcpy;
///                the SPARC/XDR situation of the paper)
///   naive      : rpcgen/PowerRPC-style stubs (per-datum out-of-line calls)
///   interp     : ILU/ORBeline-style type-program interpreter
/// The paper reports flick 2-5x faster for small and 5-17x for large
/// messages; the same ordering and growth with size should reproduce.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "b_cdr.h"
#include "b_flick.h"
#include "b_gather.h"
#include "b_naive.h"
#include "runtime/Interp.h"
#include "runtime/Specialize.h"
#include <cstring>
#include <vector>

using namespace flickbench;
using flick::InterpType;
using flick::InterpWire;

namespace {

//===----------------------------------------------------------------------===//
// Interpreter type programs for the F_ presentation types
//===----------------------------------------------------------------------===//

const InterpType IntElem = InterpType::scalar(0, 4);
const InterpType IntSeqTy = InterpType::counted(
    offsetof(F_intseq, intseq_len), offsetof(F_intseq, intseq_val),
    &IntElem, sizeof(int32_t));

const InterpType RectElem = InterpType::structOf({
    InterpType::scalar(offsetof(F_rect, min.x), 4),
    InterpType::scalar(offsetof(F_rect, min.y), 4),
    InterpType::scalar(offsetof(F_rect, max.x), 4),
    InterpType::scalar(offsetof(F_rect, max.y), 4),
});
const InterpType RectSeqTy = InterpType::counted(
    offsetof(F_rectseq, rectseq_len), offsetof(F_rectseq, rectseq_val),
    &RectElem, sizeof(F_rect));

const InterpType DirentElem = InterpType::structOf({
    InterpType::cstring(offsetof(F_dirent, name)),
    InterpType::fixedArray(offsetof(F_dirent, info.words), &IntElem, 30,
                           4),
    InterpType::bytes(offsetof(F_dirent, info.tag), 16),
});
const InterpType DirentSeqTy = InterpType::counted(
    offsetof(F_direntseq, direntseq_len),
    offsetof(F_direntseq, direntseq_val), &DirentElem, sizeof(F_dirent));

constexpr InterpWire XdrWire{true, true};

/// The specialized programs stand in for load-time compilation of a
/// dynamic IDL description: resolved once, reused per call (the program
/// cache makes repeat resolution a hash lookup anyway).
const flick::flick_spec_program *specProgram(const InterpType &T) {
  const flick::flick_spec_program *P = flick::flick_specialize(T, XdrWire);
  if (!P) {
    std::fprintf(stderr, "fig3: type program failed to specialize\n");
    std::exit(1);
  }
  return P;
}

struct Row {
  size_t Payload;
  double FlickXdr, FlickCdr, FlickCdrGather, Naive, Interp, InterpSpec;
};

void printRows(const char *Title, const std::vector<Row> &Rows) {
  std::printf("\n%s\n", Title);
  std::printf("%8s %12s %12s %12s %12s %12s %12s %12s %12s\n", "size",
              "flick-xdr", "flick-cdr", "cdr-gather", "naive", "interp",
              "interp-spec", "spec/interp", "flick/naive");
  for (const Row &R : Rows) {
    std::printf("%8s %10sMB/s %10sMB/s %10sMB/s %10sMB/s %10sMB/s "
                "%10sMB/s %11.1fx %11.1fx\n",
                fmtBytes(R.Payload).c_str(), fmtRate(R.FlickXdr).c_str(),
                fmtRate(R.FlickCdr).c_str(),
                fmtRate(R.FlickCdrGather).c_str(), fmtRate(R.Naive).c_str(),
                fmtRate(R.Interp).c_str(), fmtRate(R.InterpSpec).c_str(),
                R.Interp > 0 ? R.InterpSpec / R.Interp : 0.0,
                R.Naive > 0 ? R.FlickCdr / R.Naive : 0.0);
  }
}

/// Times one encode function; returns payload bytes per second and logs
/// the measurement into the JSON report.
template <typename Fn>
double rate(const char *Workload, const char *Series, size_t PayloadBytes,
            flick_buf *Buf, Fn Encode) {
  TimeStats T = timeIt([&] {
    flick_buf_reset(Buf);
    Encode();
  });
  double BytesPerSec = static_cast<double>(PayloadBytes) / T.Best;
  JsonReport::get().addRate(Workload, Series, PayloadBytes, T, BytesPerSec);
  return BytesPerSec;
}

void benchInts() {
  std::vector<Row> Rows;
  flick_buf Buf;
  flick_buf_init(&Buf);
  for (size_t Bytes : arraySizes()) {
    uint32_t N = static_cast<uint32_t>(Bytes / 4);
    std::vector<int32_t> Data(N);
    for (uint32_t I = 0; I != N; ++I)
      Data[I] = static_cast<int32_t>(I * 2654435761u);
    F_intseq FS{N, Data.data()};
    N_intseq NS{N, Data.data()};
    C_IntSeq CS{N, N, Data.data()};
    G_IntSeq GS{N, N, Data.data()};
    Row R{};
    R.Payload = Bytes;
    R.FlickXdr = rate("ints", "flick-xdr", Bytes, &Buf, [&] {
      F_send_ints_1_encode_request(&Buf, 1, &FS);
    });
    R.FlickCdr = rate("ints", "flick-cdr", Bytes, &Buf, [&] {
      C_Transfer_send_ints_encode_request(&Buf, 1, &CS);
    });
    R.FlickCdrGather = rate("ints", "flick-cdr-gather", Bytes, &Buf, [&] {
      G_Transfer_send_ints_encode_request(&Buf, 1, &GS);
    });
    R.Naive = rate("ints", "naive", Bytes, &Buf, [&] {
      N_send_ints_1_encode_request(&Buf, 1, &NS);
    });
    R.Interp = rate("ints", "interp", Bytes, &Buf, [&] {
      flick_interp_encode(&Buf, IntSeqTy, &FS, XdrWire);
    });
    const flick::flick_spec_program *P = specProgram(IntSeqTy);
    R.InterpSpec = rate("ints", "interp-spec", Bytes, &Buf, [&] {
      flick_spec_encode(&Buf, P, &FS);
    });
    Rows.push_back(R);
  }
  flick_buf_destroy(&Buf);
  printRows("Figure 3a: marshal throughput, arrays of integers", Rows);
}

void benchRects() {
  std::vector<Row> Rows;
  flick_buf Buf;
  flick_buf_init(&Buf);
  for (size_t Bytes : arraySizes()) {
    uint32_t N = static_cast<uint32_t>(Bytes / sizeof(F_rect));
    if (N == 0)
      N = 1;
    std::vector<F_rect> Data(N);
    for (uint32_t I = 0; I != N; ++I)
      Data[I] = F_rect{{int32_t(I), int32_t(I + 1)},
                       {int32_t(I + 2), int32_t(I + 3)}};
    size_t Payload = N * sizeof(F_rect);
    F_rectseq FS{N, Data.data()};
    N_rectseq NS{N, reinterpret_cast<N_rect *>(Data.data())};
    C_RectSeq CS{N, N, reinterpret_cast<C_Rect *>(Data.data())};
    G_RectSeq GS{N, N, reinterpret_cast<G_Rect *>(Data.data())};
    Row R{};
    R.Payload = Payload;
    R.FlickXdr = rate("rects", "flick-xdr", Payload, &Buf, [&] {
      F_send_rects_1_encode_request(&Buf, 1, &FS);
    });
    R.FlickCdr = rate("rects", "flick-cdr", Payload, &Buf, [&] {
      C_Transfer_send_rects_encode_request(&Buf, 1, &CS);
    });
    R.FlickCdrGather = rate("rects", "flick-cdr-gather", Payload, &Buf, [&] {
      G_Transfer_send_rects_encode_request(&Buf, 1, &GS);
    });
    R.Naive = rate("rects", "naive", Payload, &Buf, [&] {
      N_send_rects_1_encode_request(&Buf, 1, &NS);
    });
    R.Interp = rate("rects", "interp", Payload, &Buf, [&] {
      flick_interp_encode(&Buf, RectSeqTy, &FS, XdrWire);
    });
    const flick::flick_spec_program *P = specProgram(RectSeqTy);
    R.InterpSpec = rate("rects", "interp-spec", Payload, &Buf, [&] {
      flick_spec_encode(&Buf, P, &FS);
    });
    Rows.push_back(R);
  }
  flick_buf_destroy(&Buf);
  printRows("Figure 3b: marshal throughput, arrays of rect structures",
            Rows);
}

void benchDirents() {
  std::vector<Row> Rows;
  flick_buf Buf;
  flick_buf_init(&Buf);
  for (size_t Bytes : direntSizes()) {
    uint32_t N = static_cast<uint32_t>(Bytes / 256);
    if (N == 0)
      N = 1;
    auto Names = makeNames(N);
    std::vector<F_dirent> FD(N);
    std::vector<N_dirent> ND(N);
    std::vector<C_Dirent> CD(N);
    std::vector<G_Dirent> GD(N);
    for (uint32_t I = 0; I != N; ++I) {
      char *Name = Names[I].data();
      FD[I].name = Name;
      ND[I].name = Name;
      CD[I].name = Name;
      GD[I].name = Name;
      for (int W = 0; W != 30; ++W) {
        uint32_t V = I * 31 + W;
        FD[I].info.words[W] = V;
        ND[I].info.words[W] = V;
        CD[I].info.words[W] = V;
        GD[I].info.words[W] = V;
      }
      std::memset(FD[I].info.tag, 0x42, 16);
      std::memset(ND[I].info.tag, 0x42, 16);
      std::memset(CD[I].info.tag, 0x42, 16);
      std::memset(GD[I].info.tag, 0x42, 16);
    }
    size_t Payload = size_t(N) * 256; // encoded bytes per the paper
    F_direntseq FS{N, FD.data()};
    N_direntseq NS{N, ND.data()};
    (void)NS;
    C_DirentSeq CS{N, N, CD.data()};
    G_DirentSeq GS{N, N, GD.data()};
    Row R{};
    R.Payload = Payload;
    R.FlickXdr = rate("dirents", "flick-xdr", Payload, &Buf, [&] {
      F_send_dirents_1_encode_request(&Buf, 1, &FS);
    });
    R.FlickCdr = rate("dirents", "flick-cdr", Payload, &Buf, [&] {
      C_Transfer_send_dirents_encode_request(&Buf, 1, &CS);
    });
    // Dirents carry strings, so the gather pass leaves them alone: this
    // series documents that gathered stubs cost nothing off the bulk path.
    R.FlickCdrGather =
        rate("dirents", "flick-cdr-gather", Payload, &Buf, [&] {
          G_Transfer_send_dirents_encode_request(&Buf, 1, &GS);
        });
    R.Naive = rate("dirents", "naive", Payload, &Buf, [&] {
      N_send_dirents_1_encode_request(&Buf, 1, &NS);
    });
    R.Interp = rate("dirents", "interp", Payload, &Buf, [&] {
      flick_interp_encode(&Buf, DirentSeqTy, &FS, XdrWire);
    });
    const flick::flick_spec_program *P = specProgram(DirentSeqTy);
    R.InterpSpec = rate("dirents", "interp-spec", Payload, &Buf, [&] {
      flick_spec_encode(&Buf, P, &FS);
    });
    Rows.push_back(R);
  }
  flick_buf_destroy(&Buf);
  printRows("Figure 3c: marshal throughput, directory entries (256B each)",
            Rows);
}

} // namespace

int main() {
  flick_metrics *M = benchMetricsIfJson();
  std::printf("=== Figure 3 reproduction: marshal throughput ===\n"
              "Paper: Flick stubs marshal 2-5x faster (small) and 5-17x\n"
              "faster (large) than rpcgen/PowerRPC/ILU-style stubs.\n");
  benchInts();
  benchRects();
  benchDirents();
  return JsonReport::get().write("fig3_marshal_throughput", M) ? 0 : 1;
}
