# Validates a Chrome trace-event JSON document: it must parse as JSON,
# carry a traceEvents array, and hold matched B/E pairs (complete "X"
# events count as self-matched; counter events "C" -- the flight
# recorder's gauge series -- are standalone).  Two modes:
#
#   cmake -DFLICKC=<flickc> -DIDL=<file.idl> -DOUT=<trace.json>
#         -DGENDIR=<scratch-dir> -P CheckTraceJson.cmake
#     runs `flickc --trace=<OUT>` first, then validates OUT (the ctest
#     for the compiler's phase timeline), or
#
#   cmake -DTRACE=<trace.json> -P CheckTraceJson.cmake
#     validates an existing file (CI validates the bench runtime trace
#     written via FLICK_BENCH_TRACE this way).

if(DEFINED FLICKC)
  foreach(VAR IDL OUT GENDIR)
    if(NOT DEFINED ${VAR})
      message(FATAL_ERROR "CheckTraceJson.cmake: -D${VAR}=... is required "
                          "when -DFLICKC is given")
    endif()
  endforeach()
  file(MAKE_DIRECTORY "${GENDIR}")
  execute_process(
    COMMAND "${FLICKC}" --trace=${OUT} -o "${GENDIR}/trace_cli" "${IDL}"
    RESULT_VARIABLE RC
    OUTPUT_VARIABLE STDOUT
    ERROR_VARIABLE STDERR)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "flickc --trace failed (rc=${RC}):\n${STDERR}")
  endif()
  set(TRACE "${OUT}")
elseif(NOT DEFINED TRACE)
  message(FATAL_ERROR
          "CheckTraceJson.cmake: pass -DTRACE=<trace.json>, or -DFLICKC "
          "with -DIDL/-DOUT/-DGENDIR")
endif()

file(READ "${TRACE}" DOC)

# Whole-document JSON validity (string(JSON) raises on malformed input)
# plus phase accounting.  Bench traces run to 100k+ events and every
# string(JSON ... GET) re-parses the whole document, so per-event access
# is quadratic; the counts come from one linear regex sweep instead, and
# the per-event field checks run only on documents small enough to afford
# them.
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON NEVENTS LENGTH "${DOC}" traceEvents)
  if(NEVENTS EQUAL 0)
    message(FATAL_ERROR "trace JSON: traceEvents is empty in ${TRACE}")
  endif()
  foreach(PH B E X C)
    string(REGEX MATCHALL "\"ph\": \"${PH}\"" HITS "${DOC}")
    list(LENGTH HITS N_${PH})
  endforeach()
  set(BEGINS ${N_B})
  set(ENDS ${N_E})
  set(COMPLETES ${N_X})
  set(COUNTERS ${N_C})
  math(EXPR ACCOUNTED "${BEGINS} + ${ENDS} + ${COMPLETES} + ${COUNTERS}")
  if(NOT ACCOUNTED EQUAL NEVENTS)
    message(FATAL_ERROR "trace JSON: ${NEVENTS} events but only "
                        "${ACCOUNTED} have phase B, E, X, or C in ${TRACE}")
  endif()
  if(NOT BEGINS EQUAL ENDS)
    message(FATAL_ERROR "trace JSON: ${BEGINS} begin events vs ${ENDS} "
                        "end events in ${TRACE}")
  endif()
  math(EXPR TOTAL "${BEGINS} + ${COMPLETES}")
  if(TOTAL EQUAL 0)
    message(FATAL_ERROR "trace JSON: no spans recorded in ${TRACE}")
  endif()
  if(NEVENTS LESS_EQUAL 512)
    math(EXPR LAST "${NEVENTS} - 1")
    foreach(I RANGE ${LAST})
      string(JSON NAME GET "${DOC}" traceEvents ${I} name)
      string(JSON TS GET "${DOC}" traceEvents ${I} ts)
      if(NAME STREQUAL "")
        message(FATAL_ERROR "trace JSON: event ${I} has an empty name")
      endif()
      if(TS LESS 0)
        message(FATAL_ERROR "trace JSON: event ${I} has negative ts ${TS}")
      endif()
    endforeach()
  endif()
  message(STATUS "trace JSON OK: ${TRACE} (${BEGINS} B/E pairs, "
                 "${COMPLETES} complete events, ${COUNTERS} counter "
                 "samples)")
else()
  # Pre-3.19 fallback: structural smoke only.
  if(NOT DOC MATCHES "\"traceEvents\"")
    message(FATAL_ERROR "trace JSON: missing traceEvents in ${TRACE}")
  endif()
  message(STATUS "trace JSON OK (regex mode): ${TRACE}")
endif()
