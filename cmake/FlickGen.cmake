# flick_generate(<outvar> IDL <idl-file-rel-to-repo/idl> BASE <basename>
#                [ARGS <extra flickc args...>] [COMMON])
#
# Runs flickc at build time and sets <outvar> to the generated sources
# (header + client + server [+ common xdr file when COMMON is given, i.e.
# for the non-inlining naive back end]).  Consumers must add
# ${CMAKE_CURRENT_BINARY_DIR}/gen to their include path.
function(flick_generate OUTVAR)
  cmake_parse_arguments(FG "COMMON" "IDL;BASE" "ARGS" ${ARGN})
  set(gen_dir ${CMAKE_CURRENT_BINARY_DIR}/gen)
  file(MAKE_DIRECTORY ${gen_dir})
  set(idl ${CMAKE_SOURCE_DIR}/idl/${FG_IDL})
  set(outs
    ${gen_dir}/${FG_BASE}.h
    ${gen_dir}/${FG_BASE}_client.cc
    ${gen_dir}/${FG_BASE}_server.cc)
  if(FG_COMMON)
    list(APPEND outs ${gen_dir}/${FG_BASE}_xdr.cc)
  endif()
  add_custom_command(
    OUTPUT ${outs}
    COMMAND flickc ${FG_ARGS} -o ${gen_dir}/${FG_BASE} ${idl}
    DEPENDS flickc ${idl}
    COMMENT "flickc ${FG_IDL} -> ${FG_BASE}"
    VERBATIM)
  set(${OUTVAR} ${outs} PARENT_SCOPE)
endfunction()
