# Verifies the --trace-hooks contract both ways: with the flag, generated
# stubs contain flick_span_begin/flick_span_end brackets; without it, they
# contain none (tracing must cost nothing unless asked for).
#
# Usage:
#   cmake -DFLICKC=<flickc> -DIDL=<file.idl> -DGENDIR=<scratch-dir>
#         -P CheckTraceHooks.cmake

foreach(VAR FLICKC IDL GENDIR)
  if(NOT DEFINED ${VAR})
    message(FATAL_ERROR "CheckTraceHooks.cmake: -D${VAR}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${GENDIR}")

execute_process(
  COMMAND "${FLICKC}" --trace-hooks -o "${GENDIR}/hooks_on" "${IDL}"
  RESULT_VARIABLE RC
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "flickc --trace-hooks failed (rc=${RC}):\n${STDERR}")
endif()

execute_process(
  COMMAND "${FLICKC}" -o "${GENDIR}/hooks_off" "${IDL}"
  RESULT_VARIABLE RC
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "flickc failed (rc=${RC}):\n${STDERR}")
endif()

# Every generated file participates: the RPC root span opens in the
# client stub (closed via flick_trace_close_to so error unwinds stay
# paired), WORK spans bracket the dispatch cases in the server stub, and
# the MARSHAL/UNMARSHAL begin/end pairs live with the inline
# encode/decode helpers in the shared header.
file(GLOB ON_SRC "${GENDIR}/hooks_on*")
file(GLOB OFF_SRC "${GENDIR}/hooks_off*")
if(NOT ON_SRC OR NOT OFF_SRC)
  message(FATAL_ERROR "flickc produced no output under ${GENDIR}")
endif()

set(ON_ALL "")
foreach(F IN LISTS ON_SRC)
  file(READ "${F}" SRC)
  if(NOT SRC MATCHES "flick_span_begin")
    message(FATAL_ERROR "--trace-hooks produced no flick_span_begin "
                        "in ${F}")
  endif()
  string(APPEND ON_ALL "${SRC}")
endforeach()
foreach(NEEDED flick_span_end flick_trace_close_to FLICK_SPAN_MARSHAL
               FLICK_SPAN_UNMARSHAL FLICK_SPAN_WORK FLICK_SPAN_RPC)
  if(NOT ON_ALL MATCHES "${NEEDED}")
    message(FATAL_ERROR "--trace-hooks output is missing ${NEEDED} "
                        "across ${ON_SRC}")
  endif()
endforeach()

foreach(F IN LISTS OFF_SRC)
  file(READ "${F}" SRC)
  if(SRC MATCHES "flick_span_begin|flick_span_end|flick_trace")
    message(FATAL_ERROR "default compilation leaked tracing hooks "
                        "into ${F}")
  endif()
endforeach()

message(STATUS "trace hooks OK: present with --trace-hooks, absent without")
