# Runs a bench binary with FLICK_METRICS_PROM pointed at OUT, then
# validates the resulting Prometheus text exposition with
# bench/check_prometheus.py (full grammar plus histogram-consistency
# checks; --require pins the metrics CI artifacts depend on).
#
# Usage:
#   cmake -DBENCH=<bench-binary> -DCHECKER=<check_prometheus.py>
#         -DPYTHON=<python3> -DOUT=<metrics.prom> -P CheckPrometheus.cmake

foreach(VAR BENCH CHECKER PYTHON OUT)
  if(NOT DEFINED ${VAR})
    message(FATAL_ERROR "CheckPrometheus.cmake: -D${VAR}=... is required")
  endif()
endforeach()

file(REMOVE "${OUT}" "${OUT}.bench.json"
  "${OUT}.bench.json.exemplars.json"
  "${OUT}.bench.json.exemplars.trace.json")
# FLICK_FIG8_QUICK shrinks the measurement windows; a quick fig8 run still
# exercises the threaded runtime end to end, so the exposition carries
# nonzero RPC counters and a populated latency histogram.  FLICK_BENCH_JSON
# turns the bench tracer on (tail-exemplar reservoir -> bucket exemplar
# annotations) and FLICK_SLO_DEFAULT arms the error-budget counters, so
# the validated exposition covers the full latency-anatomy surface.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env
          FLICK_METRICS_PROM=${OUT} FLICK_FIG8_QUICK=1
          FLICK_BENCH_JSON=${OUT}.bench.json "FLICK_SLO_DEFAULT=p99<50ms"
          "${BENCH}"
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "bench run failed (rc=${RC}):\n${STDERR}")
endif()
if(NOT EXISTS "${OUT}")
  message(FATAL_ERROR "bench did not write ${OUT}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${OUT}"
          --require flick_build_info
          --require flick_rpcs_sent_total
          --require flick_rpc_latency_seconds
          --require flick_slo_met_total
          --require flick_slo_violated_total
          --require-exemplar flick_rpc_latency_seconds
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "Prometheus exposition invalid (rc=${RC}):\n"
                      "${STDOUT}${STDERR}")
endif()
message(STATUS "${STDOUT}")
