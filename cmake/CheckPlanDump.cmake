# Runs `flickc --dump-marshal-plan` on an IDL file and compares the dump
# byte-for-byte against a committed golden.  On mismatch the diff target
# is left at ${OUT} for inspection; regenerate a golden by copying ${OUT}
# over the file in tests/golden/ after reviewing the change.
#
# Usage:
#   cmake -DFLICKC=<flickc> -DIDL=<file.idl> -DGOLDEN=<golden.plan>
#         -DOUT=<dump.txt> -DGENDIR=<scratch-dir>
#         [-DEXTRA_ARGS=<flag;flag...>] -P CheckPlanDump.cmake

foreach(VAR FLICKC IDL GOLDEN OUT GENDIR)
  if(NOT DEFINED ${VAR})
    message(FATAL_ERROR "CheckPlanDump.cmake: -D${VAR}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${GENDIR}")
execute_process(
  COMMAND "${FLICKC}" ${EXTRA_ARGS} --dump-marshal-plan
          -o "${GENDIR}/plan_dump_scratch" "${IDL}"
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "flickc --dump-marshal-plan failed (rc=${RC}):\n"
                      "${STDERR}")
endif()

file(WRITE "${OUT}" "${STDOUT}")
file(READ "${GOLDEN}" WANT)
if(NOT STDOUT STREQUAL WANT)
  message(FATAL_ERROR "plan dump differs from golden ${GOLDEN}\n"
                      "actual output saved to ${OUT}")
endif()

message(STATUS "plan dump OK: ${GOLDEN}")
