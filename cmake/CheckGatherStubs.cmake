# Verifies the --gather-min-bytes contract both ways: with the flag,
# generated stubs take large dense arrays by reference (flick_buf_ref)
# behind a size test against the threshold; without it, no scatter-gather
# symbol leaks into the output (the zero-copy path must cost nothing
# unless asked for -- default output is golden-pinned byte-identical).
#
# Usage:
#   cmake -DFLICKC=<flickc> -DIDL=<file.idl> -DGENDIR=<scratch-dir>
#         -P CheckGatherStubs.cmake

foreach(VAR FLICKC IDL GENDIR)
  if(NOT DEFINED ${VAR})
    message(FATAL_ERROR "CheckGatherStubs.cmake: -D${VAR}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${GENDIR}")

execute_process(
  COMMAND "${FLICKC}" --gather-min-bytes=1024 -o "${GENDIR}/gather_on"
          "${IDL}"
  RESULT_VARIABLE RC
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "flickc --gather-min-bytes failed (rc=${RC}):\n"
                      "${STDERR}")
endif()

execute_process(
  COMMAND "${FLICKC}" -o "${GENDIR}/gather_off" "${IDL}"
  RESULT_VARIABLE RC
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "flickc failed (rc=${RC}):\n${STDERR}")
endif()

file(GLOB ON_SRC "${GENDIR}/gather_on*")
file(GLOB OFF_SRC "${GENDIR}/gather_off*")
if(NOT ON_SRC OR NOT OFF_SRC)
  message(FATAL_ERROR "flickc produced no output under ${GENDIR}")
endif()

# The by-reference branch lives with the inline encode helpers: a size
# test against the threshold guarding flick_buf_ref, with the plain copy
# as the else-arm, and the message-size patch widened to the logical
# (owned + borrowed) length.
set(ON_ALL "")
foreach(F IN LISTS ON_SRC)
  file(READ "${F}" SRC)
  string(APPEND ON_ALL "${SRC}")
endforeach()
foreach(NEEDED flick_buf_ref "1024u" flick_buf_total)
  if(NOT ON_ALL MATCHES "${NEEDED}")
    message(FATAL_ERROR "--gather-min-bytes output is missing ${NEEDED} "
                        "across ${ON_SRC}")
  endif()
endforeach()

foreach(F IN LISTS OFF_SRC)
  file(READ "${F}" SRC)
  if(SRC MATCHES "flick_buf_ref|flick_iov|flick_buf_total")
    message(FATAL_ERROR "default compilation leaked scatter-gather "
                        "symbols into ${F}")
  endif()
endforeach()

message(STATUS "gather stubs OK: by-reference with --gather-min-bytes, "
               "plain copies without")
