# Runs `flickc --stats=<json>` on an IDL file and validates the payload:
# the document must parse as JSON (cmake >= 3.19), contain one entry per
# pipeline phase (parse, verify, mint, presgen, backend), and report
# nonzero IR-size counters.
#
# Usage:
#   cmake -DFLICKC=<flickc> -DIDL=<file.idl> -DOUT=<stats.json>
#         -DGENDIR=<scratch-dir> -P CheckStatsJson.cmake

foreach(VAR FLICKC IDL OUT GENDIR)
  if(NOT DEFINED ${VAR})
    message(FATAL_ERROR "CheckStatsJson.cmake: -D${VAR}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${GENDIR}")
execute_process(
  COMMAND "${FLICKC}" --stats=${OUT} -o "${GENDIR}/stats_cli" "${IDL}"
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "flickc --stats failed (rc=${RC}):\n${STDERR}")
endif()

file(READ "${OUT}" DOC)

# Whole-document JSON validity (string(JSON) raises on malformed input).
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON TOOL GET "${DOC}" tool)
  if(NOT TOOL STREQUAL "flickc")
    message(FATAL_ERROR "stats JSON: expected \"tool\": \"flickc\", got "
                        "'${TOOL}'")
  endif()
endif()

# One region per pipeline phase, plus one per marshal-plan pass (nested
# under the backend region; all passes are on by default).
foreach(PHASE parse verify mint presgen backend
              pass.inline pass.chunk pass.memcpy pass.bounded pass.scratch
              pass.alias)
  if(NOT DOC MATCHES "\"name\": \"${PHASE}\"")
    message(FATAL_ERROR "stats JSON: missing phase '${PHASE}' in:\n${DOC}")
  endif()
endforeach()

# Per-pass plan counters.  Presence only: the keys are created even when a
# pass finds nothing to transform, so a missing key means the pass never
# ran its counting path at all.
foreach(COUNTER "plan.inline_items" "plan.chunks_before" "plan.chunks_after"
                "plan.chunk_bytes" "plan.memcpy_members"
                "plan.bounded_segments" "plan.scratch_segments"
                "plan.alias_segments")
  if(NOT DOC MATCHES "\"${COUNTER}\": [0-9]")
    message(FATAL_ERROR
            "stats JSON: plan counter '${COUNTER}' missing in:\n${DOC}")
  endif()
endforeach()

# Nonzero IR-size counters ([1-9] forces a nonzero leading digit).
foreach(COUNTER "aoi.defs" "lexer.tokens" "mint.nodes.total" "cast.nodes"
                "backend.bytes_total")
  if(NOT DOC MATCHES "\"${COUNTER}\": [1-9]")
    message(FATAL_ERROR
            "stats JSON: counter '${COUNTER}' missing or zero in:\n${DOC}")
  endif()
endforeach()

message(STATUS "stats JSON OK: ${OUT}")
