# Runs a bench binary with FLICK_BENCH_JSON pointed at OUT, then gates
# the document's latency_anatomy block with bench/check_anatomy.py: the
# per-endpoint report must exist for every transport, attribute the
# transport queue wait, and self-reconcile -- the top-level phase means
# (send + queue + demux) must sum to the end-to-end rpc span mean within
# MAX_DRIFT.  This is the CI proof that the attribution numbers can be
# trusted, run as the latency_anatomy ctest.
#
# Usage:
#   cmake -DBENCH=<bench-binary> -DCHECKER=<check_anatomy.py>
#         -DPYTHON=<python3> -DOUT=<bench.json> [-DMAX_DRIFT=0.10]
#         -P CheckAnatomy.cmake

foreach(VAR BENCH CHECKER PYTHON OUT)
  if(NOT DEFINED ${VAR})
    message(FATAL_ERROR "CheckAnatomy.cmake: -D${VAR}=... is required")
  endif()
endforeach()
if(NOT DEFINED MAX_DRIFT)
  set(MAX_DRIFT 0.10)
endif()

file(REMOVE "${OUT}" "${OUT}.exemplars.json" "${OUT}.exemplars.trace.json")
# The quick fig8 sweep drives all three transports (threaded, sharded,
# socket) through the pool under the wire model; FLICK_BENCH_JSON enables
# the bench tracer so spans attribute, and FLICK_SLO_DEFAULT arms the
# error-budget counters the report embeds.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env
          FLICK_BENCH_JSON=${OUT} FLICK_FIG8_QUICK=1
          "FLICK_SLO_DEFAULT=p99<50ms"
          "${BENCH}"
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "bench run failed (rc=${RC}):\n${STDERR}")
endif()
if(NOT EXISTS "${OUT}")
  message(FATAL_ERROR "bench did not write ${OUT}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${OUT}"
          --max-drift ${MAX_DRIFT}
          --require-endpoint transfer@threaded
          --require-endpoint transfer@sharded
          --require-endpoint transfer@socket
          --require-phase queue
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "latency anatomy invalid (rc=${RC}):\n"
                      "${STDOUT}${STDERR}")
endif()
message(STATUS "${STDOUT}")
