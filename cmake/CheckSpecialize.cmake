# Runs the micro_specialize bench with JSON export on and gates the
# result with bench/check_specialize.py: specialized encode must beat the
# interpreter by 5x on dense payloads (2x on the string-broken dirents),
# specialization must stay under the per-program compile budget, and
# every workload must break even within the call budget.  The bench
# export carries interp and interp-spec rate rows for the same payloads
# fig3 sweeps, so this is the in-tree version of the CI perf-smoke gate
# (which additionally runs it over the full fig3 export).
#
# Usage:
#   cmake -DBENCH=<micro_specialize> -DCHECKER=<check_specialize.py>
#         -DPYTHON=<python3> -DOUT=<output-stem>
#         -P CheckSpecialize.cmake

foreach(VAR BENCH CHECKER PYTHON OUT)
  if(NOT DEFINED ${VAR})
    message(FATAL_ERROR "CheckSpecialize.cmake: -D${VAR}=... is required")
  endif()
endforeach()

file(REMOVE "${OUT}.json")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env FLICK_BENCH_JSON=${OUT}.json "${BENCH}"
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "bench run failed (rc=${RC}):\n${STDERR}")
endif()
if(NOT EXISTS "${OUT}.json")
  message(FATAL_ERROR "bench did not write ${OUT}.json")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${OUT}.json" --micro "${OUT}.json"
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "specialization gate failed (rc=${RC}):\n"
                      "${STDOUT}${STDERR}")
endif()
message(STATUS "${STDOUT}")
