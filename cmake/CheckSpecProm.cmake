# Runs the micro_specialize bench with FLICK_METRICS_PROM pointed at OUT,
# then validates the exposition with bench/check_prometheus.py and pins
# the runtime-specialization counter families CI dashboards depend on.
# The bench compiles stencil programs, resolves them from the cache, and
# drives both the interpreter and specialized encode paths, so every
# required family carries a nonzero sample.
#
# Usage:
#   cmake -DBENCH=<micro_specialize> -DCHECKER=<check_prometheus.py>
#         -DPYTHON=<python3> -DOUT=<spec_metrics.prom>
#         -P CheckSpecProm.cmake

foreach(VAR BENCH CHECKER PYTHON OUT)
  if(NOT DEFINED ${VAR})
    message(FATAL_ERROR "CheckSpecProm.cmake: -D${VAR}=... is required")
  endif()
endforeach()

file(REMOVE "${OUT}")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env FLICK_METRICS_PROM=${OUT} "${BENCH}"
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "bench run failed (rc=${RC}):\n${STDERR}")
endif()
if(NOT EXISTS "${OUT}")
  message(FATAL_ERROR "bench did not write ${OUT}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${OUT}"
          --require flick_build_info
          --require flick_interp_dispatches_total
          --require flick_spec_programs_total
          --require flick_spec_cache_hits_total
          --require flick_spec_steps_fused_total
          --require flick_spec_dispatches_avoided_total
          --require flick_spec_compile_seconds_total
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "Prometheus exposition invalid (rc=${RC}):\n"
                      "${STDOUT}${STDERR}")
endif()
message(STATUS "${STDOUT}")
