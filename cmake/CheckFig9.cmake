# Runs the fig9 open-loop bench (quick window) with FLICK_BENCH_JSON
# pointed at OUT, then gates the export with bench/check_fig9.py: the
# open-loop curves must be structurally sound on every transport, and --
# on machines with >= 4 CPUs -- the depth-16 pipelined capacity must
# reach the required multiple of closed-loop capacity on the sharded and
# socket transports.  This is the CI proof that the async client's
# window actually overlaps round trips, run as the fig9_open_loop_gate
# ctest.
#
# Usage:
#   cmake -DBENCH=<fig9_open_loop> -DCHECKER=<check_fig9.py>
#         -DPYTHON=<python3> -DOUT=<fig9.json> -P CheckFig9.cmake

foreach(VAR BENCH CHECKER PYTHON OUT)
  if(NOT DEFINED ${VAR})
    message(FATAL_ERROR "CheckFig9.cmake: -D${VAR}=... is required")
  endif()
endforeach()

file(REMOVE "${OUT}")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env
          FLICK_BENCH_JSON=${OUT} FLICK_FIG9_QUICK=1
          "${BENCH}"
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "bench run failed (rc=${RC}):\n${STDERR}")
endif()
if(NOT EXISTS "${OUT}")
  message(FATAL_ERROR "bench did not write ${OUT}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${OUT}"
  RESULT_VARIABLE RC
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "fig9 open-loop gate failed (rc=${RC}):\n"
                      "${STDOUT}${STDERR}")
endif()
message(STATUS "${STDOUT}")
