//===- tests/SpecializeTests.cpp - runtime specializer tests --------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sidekick contract for the runtime specializer: specialized
/// programs must produce byte-identical wire output to the interpreter
/// across the fig3 presentation types (ints, rects, counted sequences,
/// cstrings, nested structs) on both wire conventions, decode exactly
/// what the interpreter decodes, fail cleanly on truncation, and share
/// one compiled program per structural hash.  (Equivalence against the
/// compiled stubs is asserted in the integration binary, which owns
/// generated headers.)
///
//===----------------------------------------------------------------------===//

#include "runtime/Specialize.h"
#include <cstring>
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace flick;

namespace {

constexpr InterpWire Xdr{true, true};
constexpr InterpWire CdrLE{false, false};

std::vector<uint8_t> bufBytes(const flick_buf *B) {
  return std::vector<uint8_t>(B->data, B->data + B->len);
}

/// Encodes \p Val through the interpreter and through a specialized
/// program and asserts the wire bytes match; returns the wire image.
std::vector<uint8_t> encodeBothWays(const InterpType &T, const void *Val,
                                    const InterpWire &W) {
  flick_buf IB, SB;
  flick_buf_init(&IB);
  flick_buf_init(&SB);
  EXPECT_EQ(flick_interp_encode(&IB, T, Val, W), FLICK_OK);
  const flick_spec_program *P = flick_specialize(T, W);
  EXPECT_NE(P, nullptr);
  if (P)
    EXPECT_EQ(flick_spec_encode(&SB, P, Val), FLICK_OK);
  std::vector<uint8_t> Interp = bufBytes(&IB), Spec = bufBytes(&SB);
  EXPECT_EQ(Interp, Spec);
  flick_buf_destroy(&IB);
  flick_buf_destroy(&SB);
  return Interp;
}

/// Decodes \p Wire through a specialized program into \p Out, then
/// re-encodes Out through the interpreter and asserts the bytes survive
/// the round trip -- a full-fidelity check that works for pointer-bearing
/// presentations too.
void decodeAndReencode(const InterpType &T, const InterpWire &W,
                       const std::vector<uint8_t> &Wire, void *Out,
                       flick_arena *Ar) {
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_buf_ensure(&B, Wire.size()), FLICK_OK);
  std::memcpy(flick_buf_grab(&B, Wire.size()), Wire.data(), Wire.size());
  const flick_spec_program *P = flick_specialize(T, W);
  ASSERT_NE(P, nullptr);
  ASSERT_EQ(flick_spec_decode(&B, P, Out, Ar), FLICK_OK);
  EXPECT_EQ(B.pos, B.len) << "specialized decode must consume everything";
  flick_buf Re;
  flick_buf_init(&Re);
  ASSERT_EQ(flick_interp_encode(&Re, T, Out, W), FLICK_OK);
  EXPECT_EQ(bufBytes(&Re), Wire);
  flick_buf_destroy(&Re);
  flick_buf_destroy(&B);
}

/// Truncating a valid message anywhere must produce a clean decode error.
void expectTruncationSafe(const InterpType &T, const InterpWire &W,
                          const std::vector<uint8_t> &Wire, void *Out,
                          size_t OutSize) {
  const flick_spec_program *P = flick_specialize(T, W);
  ASSERT_NE(P, nullptr);
  for (size_t Cut = 0; Cut < Wire.size(); ++Cut) {
    flick_buf B;
    flick_buf_init(&B);
    ASSERT_EQ(flick_buf_ensure(&B, Cut ? Cut : 1), FLICK_OK);
    std::memcpy(flick_buf_grab(&B, Cut), Wire.data(), Cut);
    flick_arena Ar{};
    std::memset(Out, 0, OutSize);
    EXPECT_NE(flick_spec_decode(&B, P, Out, &Ar), FLICK_OK)
        << "cut at " << Cut;
    flick_arena_destroy(&Ar);
    flick_buf_destroy(&B);
  }
}

//===----------------------------------------------------------------------===//
// Presentation types (mirroring bench.idl's fig3 workloads)
//===----------------------------------------------------------------------===//

struct TScalars {
  int32_t I;
  double D;
  uint8_t B;
  int64_t LL;
  uint16_t H;
};

const InterpType ScalarsTy = InterpType::structOf({
    InterpType::scalar(offsetof(TScalars, I), 4),
    InterpType::scalar(offsetof(TScalars, D), 8, true),
    InterpType::scalar(offsetof(TScalars, B), 1),
    InterpType::scalar(offsetof(TScalars, LL), 8),
    InterpType::scalar(offsetof(TScalars, H), 2),
});

struct TRect {
  int32_t X, Y, W, H;
};

const InterpType RectTy = InterpType::structOf({
    InterpType::scalar(offsetof(TRect, X), 4),
    InterpType::scalar(offsetof(TRect, Y), 4),
    InterpType::scalar(offsetof(TRect, W), 4),
    InterpType::scalar(offsetof(TRect, H), 4),
});

struct TRectSeq {
  uint32_t Len;
  TRect *Val;
};

const InterpType RectSeqTy =
    InterpType::counted(offsetof(TRectSeq, Len), offsetof(TRectSeq, Val),
                        &RectTy, sizeof(TRect));

struct TIntSeq {
  uint32_t Len;
  int32_t *Val;
};

const InterpType IntElem = InterpType::scalar(0, 4);
const InterpType IntSeqTy =
    InterpType::counted(offsetof(TIntSeq, Len), offsetof(TIntSeq, Val),
                        &IntElem, sizeof(int32_t));

struct TInfo {
  uint32_t Words[8];
  uint8_t Tag[16];
};

struct TDirent {
  char *Name;
  TInfo Info;
};

struct TDirentSeq {
  uint32_t Len;
  TDirent *Val;
};

const InterpType DirentTy = InterpType::structOf({
    InterpType::cstring(offsetof(TDirent, Name)),
    InterpType::fixedArray(offsetof(TDirent, Info.Words), &IntElem, 8, 4),
    InterpType::bytes(offsetof(TDirent, Info.Tag), 16),
});

const InterpType DirentSeqTy =
    InterpType::counted(offsetof(TDirentSeq, Len),
                        offsetof(TDirentSeq, Val), &DirentTy,
                        sizeof(TDirent));

//===----------------------------------------------------------------------===//
// Golden-bytes equivalence matrix
//===----------------------------------------------------------------------===//

class SpecWireTest : public ::testing::TestWithParam<bool> {
protected:
  InterpWire wire() const { return GetParam() ? Xdr : CdrLE; }
};

TEST_P(SpecWireTest, ScalarStructMatchesAndRoundTrips) {
  TScalars In{-77, 2.5, 200, -5000000000LL, 40000};
  std::vector<uint8_t> Wire = encodeBothWays(ScalarsTy, &In, wire());
  TScalars Out{};
  decodeAndReencode(ScalarsTy, wire(), Wire, &Out, nullptr);
  EXPECT_EQ(Out.I, In.I);
  EXPECT_EQ(Out.D, In.D);
  EXPECT_EQ(Out.B, In.B);
  EXPECT_EQ(Out.LL, In.LL);
  EXPECT_EQ(Out.H, In.H);
}

TEST_P(SpecWireTest, RectMatches) {
  TRect R{-1, 2, 300000, INT32_MIN};
  std::vector<uint8_t> Wire = encodeBothWays(RectTy, &R, wire());
  TRect Out{};
  decodeAndReencode(RectTy, wire(), Wire, &Out, nullptr);
  EXPECT_EQ(std::memcmp(&Out, &R, sizeof(R)), 0);
}

TEST_P(SpecWireTest, IntSequenceMatchesAcrossSizes) {
  for (uint32_t N : {0u, 1u, 3u, 64u, 1000u}) {
    std::vector<int32_t> Ints(N);
    for (uint32_t I = 0; I != N; ++I)
      Ints[I] = static_cast<int32_t>(I * 2654435761u);
    TIntSeq S{N, Ints.data()};
    std::vector<uint8_t> Wire = encodeBothWays(IntSeqTy, &S, wire());
    TIntSeq Out{};
    flick_arena Ar{};
    decodeAndReencode(IntSeqTy, wire(), Wire, &Out, &Ar);
    ASSERT_EQ(Out.Len, N);
    if (N)
      EXPECT_EQ(std::memcmp(Out.Val, Ints.data(), N * 4), 0);
    flick_arena_destroy(&Ar);
  }
}

TEST_P(SpecWireTest, RectSequenceMatches) {
  std::vector<TRect> Rects(37);
  for (size_t I = 0; I != Rects.size(); ++I)
    Rects[I] = {int32_t(I), int32_t(-2 * I), int32_t(I * I), 7};
  TRectSeq S{uint32_t(Rects.size()), Rects.data()};
  std::vector<uint8_t> Wire = encodeBothWays(RectSeqTy, &S, wire());
  TRectSeq Out{};
  flick_arena Ar{};
  decodeAndReencode(RectSeqTy, wire(), Wire, &Out, &Ar);
  ASSERT_EQ(Out.Len, Rects.size());
  EXPECT_EQ(std::memcmp(Out.Val, Rects.data(),
                        Rects.size() * sizeof(TRect)),
            0);
  flick_arena_destroy(&Ar);
}

TEST_P(SpecWireTest, DirentsWithStringsMatch) {
  char N0[] = "some-file", N1[] = "", N2[] = "abc"; // forces XDR padding
  TDirent D[3]{};
  D[0].Name = N0;
  D[1].Name = N1;
  D[2].Name = N2;
  for (int I = 0; I != 8; ++I) {
    D[0].Info.Words[I] = 1000 + I;
    D[2].Info.Words[I] = 0xDEADBEEF;
  }
  std::memcpy(D[0].Info.Tag, "0123456789abcdef", 16);
  TDirentSeq S{3, D};
  std::vector<uint8_t> Wire = encodeBothWays(DirentSeqTy, &S, wire());
  TDirentSeq Out{};
  flick_arena Ar{};
  decodeAndReencode(DirentSeqTy, wire(), Wire, &Out, &Ar);
  ASSERT_EQ(Out.Len, 3u);
  EXPECT_STREQ(Out.Val[0].Name, N0);
  EXPECT_STREQ(Out.Val[1].Name, N1);
  EXPECT_STREQ(Out.Val[2].Name, N2);
  EXPECT_EQ(std::memcmp(&Out.Val[0].Info, &D[0].Info, sizeof(TInfo)), 0);
  flick_arena_destroy(&Ar);
}

TEST_P(SpecWireTest, TruncationIsRejectedEverywhere) {
  char N0[] = "victim";
  TDirent D[2]{};
  D[0].Name = N0;
  D[1].Name = N0;
  TDirentSeq S{2, D};
  std::vector<uint8_t> Wire = encodeBothWays(DirentSeqTy, &S, wire());
  TDirentSeq Out{};
  expectTruncationSafe(DirentSeqTy, wire(), Wire, &Out, sizeof(Out));
}

INSTANTIATE_TEST_SUITE_P(Wires, SpecWireTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &I) {
                           return I.param ? "Xdr" : "CdrLE";
                         });

//===----------------------------------------------------------------------===//
// Specialize-flagged entry points
//===----------------------------------------------------------------------===//

TEST(SpecEntryPoints, SpecializeFlagProducesIdenticalBytes) {
  std::vector<int32_t> Ints(128, 42);
  TIntSeq S{128, Ints.data()};
  flick_buf Plain, Spec;
  flick_buf_init(&Plain);
  flick_buf_init(&Spec);
  ASSERT_EQ(flick_interp_encode(&Plain, IntSeqTy, &S, Xdr, false),
            FLICK_OK);
  ASSERT_EQ(flick_interp_encode(&Spec, IntSeqTy, &S, Xdr, true), FLICK_OK);
  EXPECT_EQ(bufBytes(&Plain), bufBytes(&Spec));
  TIntSeq Out{};
  flick_arena Ar{};
  ASSERT_EQ(flick_interp_decode(&Spec, IntSeqTy, &Out, Xdr, &Ar, true),
            FLICK_OK);
  ASSERT_EQ(Out.Len, 128u);
  EXPECT_EQ(std::memcmp(Out.Val, Ints.data(), 128 * 4), 0);
  flick_arena_destroy(&Ar);
  flick_buf_destroy(&Plain);
  flick_buf_destroy(&Spec);
}

TEST(SpecEntryPoints, UnspecializableTypeFallsBackTransparently) {
  // Width 3 has no stencil: flick_specialize must refuse (and cache the
  // refusal), while the specialize=true entry still encodes correctly.
  const InterpType OddTy = InterpType::scalar(0, 3);
  EXPECT_EQ(flick_specialize(OddTy, Xdr), nullptr);
  EXPECT_EQ(flick_specialize(OddTy, Xdr), nullptr); // cached refusal
  uint8_t V[4] = {1, 2, 3, 0};
  flick_buf Plain, Spec;
  flick_buf_init(&Plain);
  flick_buf_init(&Spec);
  ASSERT_EQ(flick_interp_encode(&Plain, OddTy, V, Xdr, false), FLICK_OK);
  ASSERT_EQ(flick_interp_encode(&Spec, OddTy, V, Xdr, true), FLICK_OK);
  EXPECT_EQ(bufBytes(&Plain), bufBytes(&Spec));
  flick_buf_destroy(&Plain);
  flick_buf_destroy(&Spec);
}

//===----------------------------------------------------------------------===//
// Program cache and structural hashing
//===----------------------------------------------------------------------===//

TEST(SpecCache, StructurallyIdenticalTreesShareOneProgram) {
  flick_spec_cache_clear();
  flick_metrics M;
  flick_metrics_enable(&M);
  // Two independently built but structurally identical trees.
  const InterpType ElemA = InterpType::scalar(0, 4);
  const InterpType TreeA = InterpType::counted(0, 8, &ElemA, 4);
  const InterpType ElemB = InterpType::scalar(0, 4);
  const InterpType TreeB = InterpType::counted(0, 8, &ElemB, 4);
  EXPECT_EQ(flick_spec_structural_key(TreeA, Xdr),
            flick_spec_structural_key(TreeB, Xdr));
  EXPECT_EQ(flick_spec_structural_hash(TreeA, Xdr),
            flick_spec_structural_hash(TreeB, Xdr));
  const flick_spec_program *PA = flick_specialize(TreeA, Xdr);
  const flick_spec_program *PB = flick_specialize(TreeB, Xdr);
  ASSERT_NE(PA, nullptr);
  EXPECT_EQ(PA, PB) << "same structural hash must mean one compile";
  EXPECT_EQ(M.spec_programs, 1u);
  EXPECT_EQ(M.spec_cache_hits, 1u);
  EXPECT_GT(M.spec_compile_ns, 0u);
  flick_metrics_disable();
}

TEST(SpecCache, DistinctTreesAndWiresCompileSeparately) {
  flick_spec_cache_clear();
  flick_metrics M;
  flick_metrics_enable(&M);
  const InterpType Elem = InterpType::scalar(0, 4);
  const InterpType TreeA = InterpType::counted(0, 8, &Elem, 4);
  const InterpType TreeB = InterpType::counted(0, 8, &Elem, 8); // stride!
  EXPECT_NE(flick_spec_structural_hash(TreeA, Xdr),
            flick_spec_structural_hash(TreeB, Xdr));
  const flick_spec_program *PA = flick_specialize(TreeA, Xdr);
  const flick_spec_program *PB = flick_specialize(TreeB, Xdr);
  const flick_spec_program *PC = flick_specialize(TreeA, CdrLE);
  ASSERT_NE(PA, nullptr);
  ASSERT_NE(PB, nullptr);
  ASSERT_NE(PC, nullptr);
  EXPECT_NE(PA, PB);
  EXPECT_NE(PA, PC) << "wire convention is part of the cache key";
  EXPECT_EQ(M.spec_programs, 3u);
  EXPECT_EQ(M.spec_cache_hits, 0u);
  EXPECT_EQ(flick_spec_cache_size(), 3u);
  flick_metrics_disable();
}

//===----------------------------------------------------------------------===//
// Counters: dispatch avoidance and per-call copy accounting
//===----------------------------------------------------------------------===//

TEST(SpecCounters, DispatchAvoidanceIsMeasured) {
  std::vector<int32_t> Ints(1000, 7);
  TIntSeq S{1000, Ints.data()};
  flick_metrics M;
  flick_metrics_enable(&M);
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_interp_encode(&B, IntSeqTy, &S, Xdr, false), FLICK_OK);
  uint64_t InterpDispatches = M.interp_dispatches;
  EXPECT_EQ(InterpDispatches, 1001u); // the counted node + 1000 elements
  flick_buf_reset(&B);
  ASSERT_EQ(flick_interp_encode(&B, IntSeqTy, &S, Xdr, true), FLICK_OK);
  EXPECT_EQ(M.interp_dispatches, InterpDispatches)
      << "the specialized path must not run interpreter dispatches";
  // The whole sequence runs in O(1) kernels, so nearly every one of the
  // 1001 interpreter dispatches is avoided.
  EXPECT_GE(M.spec_dispatches_avoided, 990u);
  flick_buf_destroy(&B);
  flick_metrics_disable();
}

TEST(SpecCounters, CopyAccountingIsPerCallInBothModes) {
  std::vector<int32_t> Ints(256, 3);
  TIntSeq S{256, Ints.data()};
  for (bool Specialize : {false, true}) {
    flick_metrics M;
    flick_metrics_enable(&M);
    flick_buf B;
    flick_buf_init(&B);
    ASSERT_EQ(flick_interp_encode(&B, IntSeqTy, &S, Xdr, Specialize),
              FLICK_OK);
    EXPECT_EQ(M.copy_ops, 1u) << "one bulk copy per encode call";
    EXPECT_EQ(M.bytes_copied, B.len);
    flick_buf_destroy(&B);
    flick_metrics_disable();
  }
}

TEST(SpecCounters, StepsFusedAreReported) {
  flick_spec_cache_clear();
  flick_metrics M;
  flick_metrics_enable(&M);
  // Four adjacent u32 fields fuse into one run (3 merges), and the
  // sequence collapses to a single counted-dense kernel.
  const flick_spec_program *P = flick_specialize(RectSeqTy, CdrLE);
  ASSERT_NE(P, nullptr);
  EXPECT_GE(P->StepsFused, 3u);
  EXPECT_EQ(M.spec_steps_fused, P->StepsFused);
  EXPECT_NE(P->Hash, 0u);
  flick_metrics_disable();
}

} // namespace
