//===- tests/RuntimeTests.cpp - stub runtime unit tests -------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "runtime/transport/LocalLink.h"
#include "runtime/NetworkModel.h"
#include "runtime/flick_runtime.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

TEST(Buf, GrowAndReuse) {
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_buf_ensure(&B, 10000), FLICK_OK);
  EXPECT_GE(B.cap, 10000u);
  uint8_t *P = flick_buf_grab(&B, 8);
  std::memset(P, 0xAB, 8);
  EXPECT_EQ(B.len, 8u);
  size_t Cap = B.cap;
  flick_buf_reset(&B);
  EXPECT_EQ(B.len, 0u);
  EXPECT_EQ(B.pos, 0u);
  EXPECT_EQ(B.cap, Cap) << "reset must keep the allocation (buffer reuse)";
  flick_buf_destroy(&B);
}

TEST(Buf, CheckAndTake) {
  flick_buf B;
  flick_buf_init(&B);
  flick_buf_ensure(&B, 16);
  flick_buf_grab(&B, 12);
  EXPECT_TRUE(flick_buf_check(&B, 12));
  EXPECT_FALSE(flick_buf_check(&B, 13));
  flick_buf_take(&B, 8);
  EXPECT_TRUE(flick_buf_check(&B, 4));
  EXPECT_FALSE(flick_buf_check(&B, 5));
  flick_buf_destroy(&B);
}

TEST(Buf, AlignWriteZeroPads) {
  flick_buf B;
  flick_buf_init(&B);
  flick_buf_ensure(&B, 16);
  uint8_t *P = flick_buf_grab(&B, 3);
  std::memset(P, 0xFF, 3);
  ASSERT_EQ(flick_buf_align_write(&B, 8), FLICK_OK);
  EXPECT_EQ(B.len, 8u);
  for (size_t I = 3; I != 8; ++I)
    EXPECT_EQ(B.data[I], 0u);
  flick_buf_destroy(&B);
}

TEST(Buf, AlignReadChecksAvailability) {
  flick_buf B;
  flick_buf_init(&B);
  flick_buf_ensure(&B, 8);
  flick_buf_grab(&B, 3);
  flick_buf_take(&B, 1); // pos=1: aligning to 4 needs 3 bytes, only 2 left
  EXPECT_EQ(flick_buf_align_read(&B, 4), FLICK_ERR_DECODE);
  flick_buf_grab(&B, 1); // len=4: now the padding exists
  EXPECT_EQ(flick_buf_align_read(&B, 4), FLICK_OK);
  EXPECT_EQ(B.pos, 4u);
  flick_buf_destroy(&B);
}

TEST(Prims, RoundTripAllWidthsBothEndians) {
  uint8_t Buf[8];
  flick_enc_u16be(Buf, 0x1234);
  EXPECT_EQ(Buf[0], 0x12);
  EXPECT_EQ(flick_dec_u16be(Buf), 0x1234);
  flick_enc_u16le(Buf, 0x1234);
  EXPECT_EQ(Buf[0], 0x34);
  EXPECT_EQ(flick_dec_u16le(Buf), 0x1234);
  flick_enc_u32be(Buf, 0xDEADBEEF);
  EXPECT_EQ(Buf[0], 0xDE);
  EXPECT_EQ(flick_dec_u32be(Buf), 0xDEADBEEFu);
  flick_enc_u64le(Buf, 0x0102030405060708ull);
  EXPECT_EQ(Buf[0], 0x08);
  EXPECT_EQ(flick_dec_u64le(Buf), 0x0102030405060708ull);
}

TEST(Prims, FloatBitsRoundTrip) {
  EXPECT_EQ(flick_bits_f32(flick_f32_bits(3.25f)), 3.25f);
  EXPECT_EQ(flick_bits_f64(flick_f64_bits(-1e100)), -1e100);
}

TEST(Prims, SwapCopyMatchesScalarSwaps) {
  uint32_t Src[4] = {1, 0x01020304, 0xFFFFFFFF, 42};
  uint8_t Dst[16];
  flick_swap_copy_u32(Dst, reinterpret_cast<uint8_t *>(Src), 4);
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(flick_dec_u32be(Dst + 4 * I), Src[I]);
  uint8_t Back[16];
  flick_swap_copy_u32(Back, Dst, 4);
  EXPECT_EQ(std::memcmp(Back, Src, 16), 0);
}

TEST(Arena, BumpAllocAndReset) {
  flick_arena A;
  void *P1 = flick_arena_alloc(&A, 100);
  void *P2 = flick_arena_alloc(&A, 100);
  ASSERT_TRUE(P1 && P2);
  EXPECT_NE(P1, P2);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P1) % 16, 0u);
  size_t Used = A.used;
  flick_arena_reset(&A);
  EXPECT_EQ(A.used, 0u);
  void *P3 = flick_arena_alloc(&A, 100);
  EXPECT_EQ(P3, P1) << "reset must reuse the same storage";
  (void)Used;
  flick_arena_destroy(&A);
}

TEST(Arena, NullArenaFallsBackToMalloc) {
  void *P = flick_arena_alloc(nullptr, 32);
  ASSERT_TRUE(P);
  std::free(P);
}

TEST(Channel, LocalLinkDeliversInOrder) {
  LocalLink Link;
  uint8_t A[] = {1, 2, 3};
  uint8_t B[] = {9};
  EXPECT_EQ(Link.clientEnd().send(A, 3), FLICK_OK);
  EXPECT_EQ(Link.clientEnd().send(B, 1), FLICK_OK);
  std::vector<uint8_t> Msg;
  EXPECT_EQ(Link.serverEnd().recv(Msg), FLICK_OK);
  EXPECT_EQ(Msg, std::vector<uint8_t>({1, 2, 3}));
  EXPECT_EQ(Link.serverEnd().recv(Msg), FLICK_OK);
  EXPECT_EQ(Msg, std::vector<uint8_t>({9}));
  EXPECT_EQ(Link.serverEnd().recv(Msg), FLICK_ERR_TRANSPORT);
}

TEST(Channel, ClientRecvPumpsServer) {
  LocalLink Link;
  int Pumps = 0;
  Link.setPump([&] {
    ++Pumps;
    uint8_t R[] = {7};
    return Link.serverEnd().send(R, 1) == FLICK_OK;
  });
  std::vector<uint8_t> Msg;
  EXPECT_EQ(Link.clientEnd().recv(Msg), FLICK_OK);
  EXPECT_EQ(Pumps, 1);
  EXPECT_EQ(Msg, std::vector<uint8_t>({7}));
}

TEST(Channel, SimClockAccumulatesWireTime) {
  LocalLink Link;
  SimClock Clock;
  NetworkModel M;
  M.EffectiveBitsPerSec = 8e6; // 1 byte/us
  M.PerMsgOverheadUs = 100;
  M.MtuBytes = 0;
  Link.setModel(M, &Clock);
  std::vector<uint8_t> Payload(1000);
  Link.clientEnd().send(Payload.data(), Payload.size());
  EXPECT_NEAR(Clock.totalUs(), 1100.0, 0.001);
}

TEST(NetworkModelTest, WireTimeComponents) {
  NetworkModel M{"t", 8e6, 50.0, 100, 10.0};
  // 250 bytes = 250us transmission + 50us per message + 3 packets * 10us.
  EXPECT_NEAR(M.wireTimeUs(250), 250 + 50 + 30, 1e-9);
  // Zero-byte message still pays overhead and one packet.
  EXPECT_NEAR(M.wireTimeUs(0), 50 + 10, 1e-9);
}

TEST(NetworkModelTest, PresetOrdering) {
  // Effective bandwidth must follow the paper: 10mbit < 100mbit(70 eff)
  // < myrinet(84.5 eff); the wire time for a big message the reverse.
  double T10 = NetworkModel::ethernet10().wireTimeUs(1 << 20);
  double T100 = NetworkModel::ethernet100().wireTimeUs(1 << 20);
  double TMyr = NetworkModel::myrinet640().wireTimeUs(1 << 20);
  EXPECT_GT(T10, T100);
  EXPECT_GT(T100, TMyr);
}

TEST(NaivePrims, PutGetRoundTrip) {
  flick_buf B;
  flick_buf_init(&B);
  EXPECT_EQ(flick_naive_put_u32(&B, 0xCAFEBABE, 1), FLICK_OK);
  EXPECT_EQ(flick_naive_put_u16(&B, 0x1234, 0), FLICK_OK);
  EXPECT_EQ(flick_naive_put_u8(&B, 0x7F), FLICK_OK);
  EXPECT_EQ(flick_naive_put_pad(&B, 4), FLICK_OK);
  uint32_t V32;
  uint16_t V16;
  uint8_t V8;
  EXPECT_EQ(flick_naive_get_u32(&B, &V32, 1), FLICK_OK);
  EXPECT_EQ(V32, 0xCAFEBABEu);
  EXPECT_EQ(flick_naive_get_u16(&B, &V16, 0), FLICK_OK);
  EXPECT_EQ(V16, 0x1234u);
  EXPECT_EQ(flick_naive_get_u8(&B, &V8), FLICK_OK);
  EXPECT_EQ(V8, 0x7Fu);
  EXPECT_EQ(flick_naive_get_pad(&B, 4), FLICK_OK);
  EXPECT_EQ(flick_naive_get_u8(&B, &V8), FLICK_ERR_DECODE);
  flick_buf_destroy(&B);
}

TEST(Channel, ClientRecvFailsOnEmptyLinkWithNoPump) {
  LocalLink Link;
  std::vector<uint8_t> Out;
  EXPECT_EQ(Link.clientEnd().recv(Out), FLICK_ERR_TRANSPORT);
  // Server side fails the same way: it never pumps.
  EXPECT_EQ(Link.serverEnd().recv(Out), FLICK_ERR_TRANSPORT);
}

TEST(Channel, PumpReturningFalseIsTransportError) {
  LocalLink Link;
  int Pumps = 0;
  Link.setPump([&] {
    ++Pumps;
    return false;
  });
  std::vector<uint8_t> Out{1, 2, 3};
  EXPECT_EQ(Link.clientEnd().recv(Out), FLICK_ERR_TRANSPORT);
  EXPECT_EQ(Pumps, 1) << "a failing pump must not be retried";
}

TEST(Channel, PendingToServerAccounting) {
  LocalLink Link;
  EXPECT_EQ(Link.pendingToServer(), 0u);
  uint8_t Msg[4] = {1, 2, 3, 4};
  ASSERT_EQ(Link.clientEnd().send(Msg, 4), FLICK_OK);
  ASSERT_EQ(Link.clientEnd().send(Msg, 2), FLICK_OK);
  EXPECT_EQ(Link.pendingToServer(), 2u);
  // Server->client traffic must not count toward the server queue.
  ASSERT_EQ(Link.serverEnd().send(Msg, 4), FLICK_OK);
  EXPECT_EQ(Link.pendingToServer(), 2u);
  std::vector<uint8_t> Out;
  ASSERT_EQ(Link.serverEnd().recv(Out), FLICK_OK);
  EXPECT_EQ(Out.size(), 4u);
  EXPECT_EQ(Link.pendingToServer(), 1u);
  ASSERT_EQ(Link.serverEnd().recv(Out), FLICK_OK);
  EXPECT_EQ(Out.size(), 2u);
  EXPECT_EQ(Link.pendingToServer(), 0u);
}

TEST(ClientServer, BuffersAreReusedAcrossCalls) {
  LocalLink Link;
  flick_client C;
  flick_client_init(&C, &Link.clientEnd());
  flick_buf *B1 = flick_client_begin(&C);
  flick_buf_ensure(B1, 4096);
  uint8_t *D1 = B1->data;
  flick_buf *B2 = flick_client_begin(&C);
  EXPECT_EQ(B1, B2);
  EXPECT_EQ(B2->data, D1) << "request buffer must be reused, not realloced";
  EXPECT_EQ(B2->len, 0u);
  flick_client_destroy(&C);
}

} // namespace
