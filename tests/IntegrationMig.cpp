//===- tests/IntegrationMig.cpp - MIG subsystem over Mach IPC -------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ItHarness.h"
#include "it_counter.h"
#include <cstring>
#include <gtest/gtest.h>
#include <numeric>
#include <vector>

using namespace flick;

static int32_t Total;
static int32_t Epoch;

int counter_increment_server(int32_t delta, int32_t *total) {
  Total += delta;
  *total = Total;
  return 0;
}

int counter_add_samples_server(const samplesseq *samples, int32_t *sum) {
  *sum = 0;
  for (uint32_t I = 0; I != samples->samplesCnt; ++I)
    *sum += samples->samples[I];
  return 0;
}

int counter_get_tag_server(char *tag) {
  std::memcpy(tag, "MIGTAG!", 8);
  return 0;
}

int counter_reset_server(int32_t epoch) {
  Total = 0;
  Epoch = epoch;
  return 0;
}

namespace {

class MigIt : public ::testing::Test {
protected:
  void SetUp() override {
    Total = 0;
    Epoch = 0;
  }
  ItRig Rig{counter_dispatch};
};

TEST_F(MigIt, RoutineWithOutParam) {
  int32_t T = 0;
  ASSERT_EQ(counter_increment(5, &T, Rig.client()), FLICK_OK);
  EXPECT_EQ(T, 5);
  ASSERT_EQ(counter_increment(7, &T, Rig.client()), FLICK_OK);
  EXPECT_EQ(T, 12);
}

TEST_F(MigIt, VariableArrayOfScalars) {
  std::vector<int32_t> Samples(100);
  std::iota(Samples.begin(), Samples.end(), 1);
  samplesseq S{100, Samples.data()};
  int32_t Sum = 0;
  ASSERT_EQ(counter_add_samples(&S, &Sum, Rig.client()), FLICK_OK);
  EXPECT_EQ(Sum, 5050);
}

TEST_F(MigIt, FixedCharArrayOut) {
  char Tag[8] = {0};
  ASSERT_EQ(counter_get_tag(Tag, Rig.client()), FLICK_OK);
  EXPECT_EQ(std::memcmp(Tag, "MIGTAG!", 8), 0);
}

TEST_F(MigIt, SimpleroutineIsOneway) {
  int32_t T = 0;
  counter_increment(3, &T, Rig.client());
  ASSERT_EQ(counter_reset(99, Rig.client()), FLICK_OK);
  // Oneway: pump explicitly, then observe the effect.
  while (flick_server_handle_one(Rig.server()) == FLICK_OK)
    ;
  EXPECT_EQ(Epoch, 99);
  counter_increment(1, &T, Rig.client());
  EXPECT_EQ(T, 1);
}

} // namespace
