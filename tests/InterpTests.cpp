//===- tests/InterpTests.cpp - interpretive marshaler tests ---------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the ILU/ORBeline-style type-program interpreter: round trips for
/// every node kind, both wire conventions, and truncation robustness.
/// (Wire equivalence with compiled stubs is asserted separately in the
/// integration binary, which owns generated headers.)
///
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"
#include <cstring>
#include <gtest/gtest.h>
#include <vector>

using namespace flick;

namespace {

constexpr InterpWire Xdr{true, true};
constexpr InterpWire CdrLE{false, false};

struct Scalars {
  int32_t I;
  double D;
  uint8_t B;
  int64_t LL;
};

const InterpType ScalarsTy = InterpType::structOf({
    InterpType::scalar(offsetof(Scalars, I), 4),
    InterpType::scalar(offsetof(Scalars, D), 8, true),
    InterpType::scalar(offsetof(Scalars, B), 1),
    InterpType::scalar(offsetof(Scalars, LL), 8),
});

class InterpWireTest : public ::testing::TestWithParam<bool> {
protected:
  InterpWire wire() const { return GetParam() ? Xdr : CdrLE; }
};

TEST_P(InterpWireTest, ScalarStructRoundTrip) {
  Scalars In{-77, 2.5, 200, -5000000000LL};
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_interp_encode(&B, ScalarsTy, &In, wire()), FLICK_OK);
  Scalars Out{};
  ASSERT_EQ(flick_interp_decode(&B, ScalarsTy, &Out, wire(), nullptr),
            FLICK_OK);
  EXPECT_EQ(Out.I, In.I);
  EXPECT_EQ(Out.D, In.D);
  EXPECT_EQ(Out.B, In.B);
  EXPECT_EQ(Out.LL, In.LL);
  flick_buf_destroy(&B);
}

TEST_P(InterpWireTest, CountedArrayRoundTrip) {
  struct Seq {
    uint32_t Len;
    int32_t *Buf;
  };
  const InterpType Elem = InterpType::scalar(0, 4);
  const InterpType SeqTy = InterpType::counted(
      offsetof(Seq, Len), offsetof(Seq, Buf), &Elem, sizeof(int32_t));
  std::vector<int32_t> Data = {1, -2, 3, INT32_MIN};
  Seq In{4, Data.data()};
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_interp_encode(&B, SeqTy, &In, wire()), FLICK_OK);
  Seq Out{};
  flick_arena Ar{};
  ASSERT_EQ(flick_interp_decode(&B, SeqTy, &Out, wire(), &Ar), FLICK_OK);
  ASSERT_EQ(Out.Len, 4u);
  EXPECT_EQ(std::memcmp(Out.Buf, Data.data(), 16), 0);
  flick_arena_destroy(&Ar);
  flick_buf_destroy(&B);
}

TEST_P(InterpWireTest, CStringRoundTrip) {
  struct Holder {
    char *S;
  };
  const InterpType Ty = InterpType::structOf({InterpType::cstring(0)});
  char Text[] = "interpreted";
  Holder In{Text};
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_interp_encode(&B, Ty, &In, wire()), FLICK_OK);
  Holder Out{};
  flick_arena Ar{};
  ASSERT_EQ(flick_interp_decode(&B, Ty, &Out, wire(), &Ar), FLICK_OK);
  EXPECT_STREQ(Out.S, "interpreted");
  flick_arena_destroy(&Ar);
  flick_buf_destroy(&B);
}

TEST_P(InterpWireTest, FixedArrayAndBytes) {
  struct Fixed {
    int32_t Grid[6];
    uint8_t Blob[8];
  };
  const InterpType Elem = InterpType::scalar(0, 4);
  const InterpType Ty = InterpType::structOf({
      InterpType::fixedArray(offsetof(Fixed, Grid), &Elem, 6, 4),
      InterpType::bytes(offsetof(Fixed, Blob), 8),
  });
  Fixed In{};
  for (int I = 0; I != 6; ++I)
    In.Grid[I] = I * 3 - 7;
  std::memcpy(In.Blob, "ABCDEFGH", 8);
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_interp_encode(&B, Ty, &In, wire()), FLICK_OK);
  Fixed Out{};
  ASSERT_EQ(flick_interp_decode(&B, Ty, &Out, wire(), nullptr), FLICK_OK);
  EXPECT_EQ(std::memcmp(&In, &Out, sizeof(Fixed)), 0);
  flick_buf_destroy(&B);
}

TEST_P(InterpWireTest, TruncationFailsCleanly) {
  Scalars In{1, 2.0, 3, 4};
  flick_buf Full;
  flick_buf_init(&Full);
  ASSERT_EQ(flick_interp_encode(&Full, ScalarsTy, &In, wire()), FLICK_OK);
  for (size_t Cut = 0; Cut < Full.len; Cut += 2) {
    flick_buf B;
    flick_buf_init(&B);
    flick_buf_ensure(&B, Cut + 1);
    std::memcpy(flick_buf_grab(&B, Cut), Full.data, Cut);
    Scalars Out{};
    EXPECT_NE(flick_interp_decode(&B, ScalarsTy, &Out, wire(), nullptr),
              FLICK_OK)
        << "cut at " << Cut;
    flick_buf_destroy(&B);
  }
  flick_buf_destroy(&Full);
}

TEST_P(InterpWireTest, HugeCountRejected) {
  struct Seq {
    uint32_t Len;
    int32_t *Buf;
  };
  const InterpType Elem = InterpType::scalar(0, 4);
  const InterpType SeqTy = InterpType::counted(
      offsetof(Seq, Len), offsetof(Seq, Buf), &Elem, sizeof(int32_t));
  flick_buf B;
  flick_buf_init(&B);
  flick_buf_ensure(&B, 4);
  if (wire().BigEndian)
    flick_enc_u32be(flick_buf_grab(&B, 4), 0xFFFFFFFFu);
  else
    flick_enc_u32le(flick_buf_grab(&B, 4), 0xFFFFFFFFu);
  Seq Out{};
  flick_arena Ar{};
  EXPECT_NE(flick_interp_decode(&B, SeqTy, &Out, wire(), &Ar), FLICK_OK);
  flick_arena_destroy(&Ar);
  flick_buf_destroy(&B);
}

INSTANTIATE_TEST_SUITE_P(Wires, InterpWireTest, ::testing::Bool(),
                         [](const auto &Info) {
                           return Info.param ? "xdr" : "cdr_le";
                         });

TEST(Interp, XdrWidensSmallScalars) {
  struct One {
    uint8_t V;
  };
  const InterpType Ty = InterpType::structOf({InterpType::scalar(0, 1)});
  One In{0xAB};
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_interp_encode(&B, Ty, &In, Xdr), FLICK_OK);
  EXPECT_EQ(B.len, 4u) << "XDR widens sub-word scalars to 4 bytes";
  flick_buf_destroy(&B);
  flick_buf_init(&B);
  ASSERT_EQ(flick_interp_encode(&B, Ty, &In, CdrLE), FLICK_OK);
  EXPECT_EQ(B.len, 1u);
  flick_buf_destroy(&B);
}

} // namespace
