//===- tests/StatsTests.cpp - compiler stats registry tests ---------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the --stats registry (regions, counters, JSON shape) and
/// a whole-pipeline test asserting that a compile records the five phases
/// (parse, verify, mint, presgen, backend) with nonzero IR counters.
///
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"
#include "frontends/corba/CorbaFrontEnd.h"
#include "presgen/PresGen.h"
#include "support/Diagnostics.h"
#include "support/Stats.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

/// Turns stats on for one test and restores the registry afterward so
/// other tests in the binary never see stale phases.
class StatsTest : public ::testing::Test {
protected:
  void SetUp() override {
    Stats::get().reset();
    Stats::get().setEnabled(true);
  }
  void TearDown() override {
    Stats::get().reset();
    Stats::get().setEnabled(false);
  }
};

TEST_F(StatsTest, CountersAccumulateOnCurrentRegion) {
  FLICK_STAT_COUNT("apples", 2);
  FLICK_STAT_COUNT("apples", 3);
  {
    FLICK_STAT_PHASE("inner");
    FLICK_STAT_COUNT("pears", 1);
  }
  const StatsRegion &R = Stats::get().root();
  EXPECT_EQ(R.counterValue("apples"), 5u);
  EXPECT_EQ(R.counterValue("pears"), 0u) << "pears belongs to the phase";
  ASSERT_NE(R.findChild("inner"), nullptr);
  EXPECT_EQ(R.findChild("inner")->counterValue("pears"), 1u);
}

TEST_F(StatsTest, PhasesNestAndRecordTime) {
  {
    FLICK_STAT_PHASE("outer");
    {
      FLICK_STAT_PHASE("nested");
      FLICK_STAT_COUNT("n", 7);
    }
  }
  const StatsRegion *Outer = Stats::get().root().findChild("outer");
  ASSERT_NE(Outer, nullptr);
  EXPECT_GE(Outer->WallUs, 0.0);
  const StatsRegion *Nested = Outer->findChild("nested");
  ASSERT_NE(Nested, nullptr);
  EXPECT_EQ(Nested->counterValue("n"), 7u);
  EXPECT_EQ(Stats::get().root().findChild("nested"), nullptr)
      << "nested must hang under outer, not the root";
}

TEST_F(StatsTest, DisabledRegistryRecordsNothing) {
  Stats::get().setEnabled(false);
  {
    FLICK_STAT_PHASE("ghost");
    FLICK_STAT_COUNT("ghost.count", 9);
  }
  EXPECT_TRUE(Stats::get().root().Children.empty());
  EXPECT_EQ(Stats::get().root().counterValue("ghost.count"), 0u);
}

TEST_F(StatsTest, SamePhaseNameMergesAcrossOpens) {
  {
    FLICK_STAT_PHASE("p");
    FLICK_STAT_COUNT("c", 1);
  }
  {
    FLICK_STAT_PHASE("p");
    FLICK_STAT_COUNT("c", 2);
  }
  ASSERT_EQ(Stats::get().root().Children.size(), 1u);
  EXPECT_EQ(Stats::get().root().findChild("p")->counterValue("c"), 3u);
}

TEST_F(StatsTest, JsonEscapesAndContainsNotes) {
  Stats::get().note("input", "a\"b\\c");
  FLICK_STAT_COUNT("k", 1);
  std::string J = Stats::get().toJson();
  EXPECT_NE(J.find("\"input\": \"a\\\"b\\\\c\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"k\": 1"), std::string::npos) << J;
  EXPECT_NE(J.find("\"build\": {\"git\": "), std::string::npos)
      << "stats exports carry build attribution: " << J;
}

TEST(StatsJsonEscape, ControlCharacters) {
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape("t\tx"), "t\\tx");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

/// The acceptance-criteria test: a full compile records one region per
/// pipeline phase and nonzero IR-size counters.
TEST_F(StatsTest, FullPipelineRecordsFivePhases) {
  const char *Idl = R"(
    struct Item { long id; string label; };
    interface Store {
      long put(in Item it);
      Item get(in long id);
    };
  )";
  DiagnosticEngine D;
  std::unique_ptr<AoiModule> M;
  {
    FLICK_STAT_PHASE("parse");
    M = parseCorbaIdl(Idl, "t.idl", D);
  }
  ASSERT_TRUE(M) << D.renderAll();
  {
    FLICK_STAT_PHASE("verify");
    ASSERT_TRUE(M->verify(D)) << D.renderAll();
  }
  CorbaPresGen PG{PresGenOptions{}};
  auto P = PG.generate(*M, D); // opens the mint + presgen phases itself
  ASSERT_TRUE(P) << D.renderAll();
  auto BE = createBackend("iiop", BackendOptions());
  ASSERT_TRUE(BE);
  BackendOutput Out = BE->generate(*P, "t"); // opens the backend phase

  const StatsRegion &R = Stats::get().root();
  for (const char *Phase : {"parse", "verify", "mint", "presgen", "backend"})
    EXPECT_NE(R.findChild(Phase), nullptr) << "missing phase " << Phase;
  EXPECT_EQ(R.Children.size(), 5u);

  const StatsRegion *Parse = R.findChild("parse");
  ASSERT_NE(Parse, nullptr);
  EXPECT_GT(Parse->counterValue("lexer.tokens"), 0u);

  const StatsRegion *Presgen = R.findChild("presgen");
  ASSERT_NE(Presgen, nullptr);
  EXPECT_GT(Presgen->counterValue("mint.nodes.total"), 0u);
  EXPECT_GT(Presgen->counterValue("cast.nodes"), 0u);
  EXPECT_GT(Presgen->counterValue("pres.interfaces"), 0u);

  const StatsRegion *Backend = R.findChild("backend");
  ASSERT_NE(Backend, nullptr);
  EXPECT_GT(Backend->counterValue("backend.bytes_total"), 0u);
  EXPECT_EQ(Backend->counterValue("backend.bytes_total"),
            Out.Header.size() + Out.ClientSrc.size() + Out.ServerSrc.size() +
                Out.CommonSrc.size());
  // The hierarchy: stub generation and printing nest under backend.
  EXPECT_NE(Backend->findChild("stubs"), nullptr);
  EXPECT_NE(Backend->findChild("print"), nullptr);

  EXPECT_NE(Stats::get().toJson().find("\"phases\""), std::string::npos);
}

} // namespace
