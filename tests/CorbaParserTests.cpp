//===- tests/CorbaParserTests.cpp - CORBA front-end tests -----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "frontends/corba/CorbaFrontEnd.h"
#include "support/Diagnostics.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

std::unique_ptr<AoiModule> parseOk(const std::string &Src) {
  DiagnosticEngine D;
  auto M = parseCorbaIdl(Src, "t.idl", D);
  EXPECT_TRUE(M) << D.renderAll();
  return M;
}

void parseFail(const std::string &Src, const std::string &MsgPart) {
  DiagnosticEngine D;
  auto M = parseCorbaIdl(Src, "t.idl", D);
  EXPECT_FALSE(M && !D.hasErrors()) << "expected failure";
  EXPECT_NE(D.renderAll().find(MsgPart), std::string::npos)
      << "diagnostics were:\n"
      << D.renderAll();
}

TEST(CorbaParser, PaperMailExample) {
  auto M = parseOk("interface Mail { void send(in string msg); };");
  AoiInterface *If = M->findInterface("Mail");
  ASSERT_TRUE(If);
  ASSERT_EQ(If->Operations.size(), 1u);
  const AoiOperation &Op = If->Operations[0];
  EXPECT_EQ(Op.Name, "send");
  EXPECT_EQ(Op.RequestCode, 1u);
  ASSERT_EQ(Op.Params.size(), 1u);
  EXPECT_EQ(Op.Params[0].Dir, AoiParamDir::In);
  EXPECT_TRUE(isa<AoiString>(Op.Params[0].Type));
  const auto *Ret = dyn_cast<AoiPrimitive>(Op.ReturnType);
  ASSERT_TRUE(Ret);
  EXPECT_EQ(Ret->prim(), AoiPrimKind::Void);
}

TEST(CorbaParser, ModulesScopeNames) {
  auto M = parseOk("module A { module B { interface I { void f(); }; }; };");
  EXPECT_TRUE(M->findInterface("A::B::I"));
}

TEST(CorbaParser, AllPrimitiveTypes) {
  auto M = parseOk(R"(
    struct P {
      boolean b; char c; octet o;
      short s; unsigned short us;
      long l; unsigned long ul;
      long long ll; unsigned long long ull;
      float f; double d;
    };)");
  const auto *S = dyn_cast<AoiStruct>(M->namedTypes().at(0));
  ASSERT_TRUE(S);
  ASSERT_EQ(S->fields().size(), 11u);
  AoiPrimKind Want[] = {
      AoiPrimKind::Boolean, AoiPrimKind::Char,   AoiPrimKind::Octet,
      AoiPrimKind::Short,   AoiPrimKind::UShort, AoiPrimKind::Long,
      AoiPrimKind::ULong,   AoiPrimKind::LongLong,
      AoiPrimKind::ULongLong, AoiPrimKind::Float, AoiPrimKind::Double};
  for (size_t I = 0; I != 11; ++I)
    EXPECT_EQ(cast<AoiPrimitive>(S->fields()[I].Type)->prim(), Want[I])
        << "field " << I;
}

TEST(CorbaParser, SequencesAndBounds) {
  auto M = parseOk("typedef sequence<long, 16> Small;\n"
                   "typedef sequence<string> Names;");
  const auto *TD = cast<AoiTypedef>(M->namedTypes().at(0));
  const auto *Seq = cast<AoiSequence>(TD->aliased());
  EXPECT_EQ(Seq->bound(), 16u);
  const auto *TD2 = cast<AoiTypedef>(M->namedTypes().at(1));
  EXPECT_EQ(cast<AoiSequence>(TD2->aliased())->bound(), 0u);
}

TEST(CorbaParser, ArraysMultiDim) {
  auto M = parseOk("struct G { long grid[2][3]; };");
  const auto *S = cast<AoiStruct>(M->namedTypes().at(0));
  const auto *A = cast<AoiArray>(S->fields()[0].Type);
  ASSERT_EQ(A->dims().size(), 2u);
  EXPECT_EQ(A->dims()[0], 2u);
  EXPECT_EQ(A->dims()[1], 3u);
  EXPECT_EQ(A->totalElems(), 6u);
}

TEST(CorbaParser, UnionWithEnumDiscriminator) {
  auto M = parseOk(R"(
    enum Kind { K_A, K_B };
    union U switch (Kind) {
    case K_A: long a;
    case K_B: string b;
    default: octet raw;
    };)");
  const AoiUnion *U = nullptr;
  for (AoiType *T : M->namedTypes())
    if ((U = dyn_cast<AoiUnion>(T)))
      break;
  ASSERT_TRUE(U);
  ASSERT_EQ(U->cases().size(), 3u);
  EXPECT_EQ(U->cases()[0].Labels[0].Value, 0);
  EXPECT_EQ(U->cases()[1].Labels[0].Value, 1);
  EXPECT_TRUE(U->cases()[2].Labels[0].IsDefault);
  EXPECT_TRUE(U->defaultCase());
}

TEST(CorbaParser, ConstExpressions) {
  auto M = parseOk("const long A = 4;\n"
                   "const long B = A * 2 + 1;\n"
                   "const long C = 1 << 4;\n"
                   "typedef sequence<long, B> S;");
  EXPECT_EQ(M->consts()[1].Value.IntValue, 9);
  EXPECT_EQ(M->consts()[2].Value.IntValue, 16);
  const auto *TD = cast<AoiTypedef>(M->namedTypes().at(0));
  EXPECT_EQ(cast<AoiSequence>(TD->aliased())->bound(), 9u);
}

TEST(CorbaParser, ExceptionsAndRaises) {
  auto M = parseOk(R"(
    exception Broke { long amount; };
    interface Bank {
      void withdraw(in long n) raises(Broke);
    };)");
  ASSERT_EQ(M->exceptions().size(), 1u);
  const AoiOperation &Op = M->findInterface("Bank")->Operations[0];
  ASSERT_EQ(Op.Raises.size(), 1u);
  EXPECT_EQ(Op.Raises[0]->Name, "Broke");
  EXPECT_EQ(Op.Raises[0]->ExceptionCode, 1u);
}

TEST(CorbaParser, AttributesReadonlyAndPlain) {
  auto M = parseOk("interface I { readonly attribute long id;\n"
                   "  attribute string name; };");
  const AoiInterface *If = M->findInterface("I");
  ASSERT_EQ(If->Attributes.size(), 2u);
  EXPECT_TRUE(If->Attributes[0].ReadOnly);
  EXPECT_FALSE(If->Attributes[1].ReadOnly);
}

TEST(CorbaParser, InterfaceInheritance) {
  auto M = parseOk("interface A { void a(); };\n"
                   "interface B : A { void b(); };");
  const AoiInterface *B = M->findInterface("B");
  ASSERT_EQ(B->Bases.size(), 1u);
  EXPECT_EQ(B->Bases[0]->Name, "A");
}

TEST(CorbaParser, OnewayOperations) {
  auto M = parseOk("interface I { oneway void ping(in long t); };");
  EXPECT_TRUE(M->findInterface("I")->Operations[0].Oneway);
}

TEST(CorbaParser, OperationCodesAreSequential) {
  auto M = parseOk("interface I { void a(); void b(); void c(); };");
  const AoiInterface *If = M->findInterface("I");
  EXPECT_EQ(If->Operations[0].RequestCode, 1u);
  EXPECT_EQ(If->Operations[1].RequestCode, 2u);
  EXPECT_EQ(If->Operations[2].RequestCode, 3u);
}

TEST(CorbaParser, DumpRoundTripMentionsEverything) {
  auto M = parseOk("module M { interface I { long f(in long x); }; };");
  std::string Dump = M->dump();
  EXPECT_NE(Dump.find("interface M::I"), std::string::npos);
  EXPECT_NE(Dump.find("long f(in x: long)"), std::string::npos);
}

// --- Error cases ---

TEST(CorbaParserErrors, UnknownType) {
  parseFail("interface I { void f(in Mystery m); };", "unknown type");
}

TEST(CorbaParserErrors, MissingDirection) {
  parseFail("interface I { void f(string m); };",
            "expected parameter direction");
}

TEST(CorbaParserErrors, UnsupportedAny) {
  parseFail("interface I { void f(in any a); };", "not supported");
}

TEST(CorbaParserErrors, UnknownRaises) {
  parseFail("interface I { void f() raises(Nope); };",
            "unknown exception");
}

TEST(CorbaParserErrors, UnknownBaseInterface) {
  parseFail("interface B : A { void b(); };", "unknown base interface");
}

TEST(CorbaParserErrors, RecoveryProducesMultipleErrors) {
  DiagnosticEngine D;
  parseCorbaIdl("interface I { void f(in Bad1 a); void g(in Bad2 b); };",
                "t.idl", D);
  EXPECT_GE(D.errorCount(), 2u);
}

TEST(CorbaParserErrors, DivisionByZeroInConst) {
  parseFail("const long X = 4 / 0;", "division by zero");
}

} // namespace
