//===- tests/IntegrationKitchen.cpp - kitchen-sink round trips ------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Round-trips every presented type shape through generated stubs: the
/// CORBA presentation over IIOP/CDR, and (KX_ prefix) the same presentation
/// over the XDR back end -- the paper's mix-and-match of components.
///
//===----------------------------------------------------------------------===//

#include "ItHarness.h"
#include "it_kitchen.h"
#include "it_kitchenx.h"
#include <cstring>
#include <gtest/gtest.h>
#include <random>

using namespace flick;

static int PingCount;

//===----------------------------------------------------------------------===//
// Echo servant: one implementation per generated prefix, via macro.
//===----------------------------------------------------------------------===//

#define DEFINE_KITCHEN_SERVANT(P)                                           \
  P##Scalars *P##Echo_echo_scalars_server(const P##Scalars *v,              \
                                          CORBA_Environment *_ev) {         \
    auto *R = static_cast<P##Scalars *>(malloc(sizeof(P##Scalars)));        \
    *R = *v;                                                                \
    return R;                                                               \
  }                                                                         \
  void P##Echo_echo_fixed_server(const P##Fixed *v, P##Fixed *r,            \
                                 CORBA_Environment *_ev) {                  \
    *r = *v;                                                                \
  }                                                                         \
  char *P##Echo_echo_string_server(const char *v,                           \
                                   CORBA_Environment *_ev) {                \
    return strdup(v);                                                       \
  }                                                                         \
  void P##Echo_echo_names_server(const P##NameSeq *v, P##NameSeq **r,       \
                                 CORBA_Environment *_ev) {                  \
    auto *Out = static_cast<P##NameSeq *>(malloc(sizeof(P##NameSeq)));      \
    Out->_maximum = Out->_length = v->_length;                              \
    Out->_buffer =                                                          \
        static_cast<char **>(malloc(sizeof(char *) * (v->_length + 1)));    \
    for (uint32_t I = 0; I != v->_length; ++I)                              \
      Out->_buffer[I] = strdup(v->_buffer[I]);                              \
    *r = Out;                                                               \
  }                                                                         \
  int32_t P##Echo_sum_blob_server(const P##Blob *v,                         \
                                  CORBA_Environment *_ev) {                 \
    int32_t S = 0;                                                          \
    for (uint32_t I = 0; I != v->_length; ++I)                              \
      S += v->_buffer[I];                                                   \
    return S;                                                               \
  }                                                                         \
  P##Variant *P##Echo_echo_variant_server(const P##Variant *v,              \
                                          CORBA_Environment *_ev) {         \
    auto *R = static_cast<P##Variant *>(malloc(sizeof(P##Variant)));        \
    R->_d = v->_d;                                                          \
    switch (v->_d) {                                                        \
    case 0:                                                                 \
      R->_u.i = v->_u.i;                                                    \
      break;                                                                \
    case 1:                                                                 \
      R->_u.d = v->_u.d;                                                    \
      break;                                                                \
    case 2:                                                                 \
      R->_u.s = strdup(v->_u.s);                                            \
      break;                                                                \
    default:                                                                \
      R->_u.raw._maximum = R->_u.raw._length = v->_u.raw._length;           \
      R->_u.raw._buffer =                                                   \
          static_cast<uint8_t *>(malloc(v->_u.raw._length + 1));            \
      memcpy(R->_u.raw._buffer, v->_u.raw._buffer, v->_u.raw._length);      \
      break;                                                                \
    }                                                                       \
    return R;                                                               \
  }                                                                         \
  void P##Echo_echo_nested_server(const P##Nested *v, P##Nested **r,        \
                                  CORBA_Environment *_ev) {                 \
    auto *Out = static_cast<P##Nested *>(malloc(sizeof(P##Nested)));        \
    Out->label = strdup(v->label);                                          \
    Out->items._maximum = Out->items._length = v->items._length;            \
    Out->items._buffer = static_cast<P##Scalars *>(                         \
        malloc(sizeof(P##Scalars) * (v->items._length + 1)));               \
    memcpy(Out->items._buffer, v->items._buffer,                            \
           sizeof(P##Scalars) * v->items._length);                          \
    Out->v._d = 0;                                                          \
    Out->v._u.i = v->v._d == 0 ? v->v._u.i : 0;                             \
    *r = Out;                                                               \
  }                                                                         \
  void P##Echo_swap_longs_server(int32_t *a, int32_t *b,                    \
                                 CORBA_Environment *_ev) {                  \
    int32_t T = *a;                                                         \
    *a = *b;                                                                \
    *b = T;                                                                 \
  }                                                                         \
  void P##Echo_ping_server(int32_t tick, CORBA_Environment *_ev) {          \
    PingCount += tick;                                                      \
  }

DEFINE_KITCHEN_SERVANT()
DEFINE_KITCHEN_SERVANT(KX_)

namespace {

Scalars sampleScalars(uint32_t Seed) {
  std::mt19937_64 Rng(Seed);
  Scalars S{};
  S.b = Seed % 2;
  S.c = static_cast<char>('A' + Seed % 26);
  S.o = static_cast<uint8_t>(Rng());
  S.s = static_cast<int16_t>(Rng());
  S.us = static_cast<uint16_t>(Rng());
  S.l = static_cast<int32_t>(Rng());
  S.ul = static_cast<uint32_t>(Rng());
  S.ll = static_cast<int64_t>(Rng());
  S.ull = Rng();
  S.f = 1.5f * static_cast<float>(Seed);
  S.d = -2.25 * static_cast<double>(Seed);
  S.col = static_cast<Color>(Seed % 3);
  return S;
}

void expectScalarsEq(const Scalars &A, const Scalars &B) {
  EXPECT_EQ(A.b, B.b);
  EXPECT_EQ(A.c, B.c);
  EXPECT_EQ(A.o, B.o);
  EXPECT_EQ(A.s, B.s);
  EXPECT_EQ(A.us, B.us);
  EXPECT_EQ(A.l, B.l);
  EXPECT_EQ(A.ul, B.ul);
  EXPECT_EQ(A.ll, B.ll);
  EXPECT_EQ(A.ull, B.ull);
  EXPECT_EQ(A.f, B.f);
  EXPECT_EQ(A.d, B.d);
  EXPECT_EQ(A.col, B.col);
}

class KitchenIt : public ::testing::Test {
protected:
  ItRig Rig{Echo_dispatch};
  CORBA_Environment Ev{};
};

TEST_F(KitchenIt, ScalarExtremes) {
  Scalars In{};
  In.b = 1;
  In.c = '\x7f';
  In.o = 0xFF;
  In.s = INT16_MIN;
  In.us = UINT16_MAX;
  In.l = INT32_MIN;
  In.ul = UINT32_MAX;
  In.ll = INT64_MIN;
  In.ull = UINT64_MAX;
  In.f = -0.0f;
  In.d = 1e308;
  In.col = BLUE;
  Scalars *Out = Echo_echo_scalars(Rig.object(), &In, &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  expectScalarsEq(In, *Out);
  free(Out);
}

TEST_F(KitchenIt, FixedArraysRoundTrip) {
  Fixed In{};
  for (int I = 0; I != 2; ++I)
    for (int J = 0; J != 3; ++J)
      In.grid[I][J] = I * 10 + J - 5;
  for (int I = 0; I != 8; ++I)
    In.blob[I] = static_cast<uint8_t>(0xF0 + I);
  std::memcpy(In.name, "hello wrld<", 12);
  Fixed Out{};
  Echo_echo_fixed(Rig.object(), &In, &Out, &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  EXPECT_EQ(std::memcmp(&In, &Out, sizeof(Fixed)), 0);
}

TEST_F(KitchenIt, StringEcho) {
  char *Out = Echo_echo_string(Rig.object(), "presentation layer", &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  EXPECT_STREQ(Out, "presentation layer");
  free(Out);
}

TEST_F(KitchenIt, SequencesOfStrings) {
  char N0[] = "alpha", N1[] = "", N2[] = "gamma-gamma";
  char *Names[] = {N0, N1, N2};
  NameSeq In{3, 3, Names};
  NameSeq *Out = nullptr;
  Echo_echo_names(Rig.object(), &In, &Out, &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  ASSERT_TRUE(Out);
  ASSERT_EQ(Out->_length, 3u);
  EXPECT_STREQ(Out->_buffer[0], "alpha");
  EXPECT_STREQ(Out->_buffer[1], "");
  EXPECT_STREQ(Out->_buffer[2], "gamma-gamma");
  for (uint32_t I = 0; I != Out->_length; ++I)
    free(Out->_buffer[I]);
  free(Out->_buffer);
  free(Out);
}

TEST_F(KitchenIt, OctetBlobSum) {
  std::vector<uint8_t> Data(1000);
  int32_t Want = 0;
  for (size_t I = 0; I != Data.size(); ++I) {
    Data[I] = static_cast<uint8_t>(I * 7);
    Want += Data[I];
  }
  Blob In{uint32_t(Data.size()), uint32_t(Data.size()), Data.data()};
  EXPECT_EQ(Echo_sum_blob(Rig.object(), &In, &Ev), Want);
}

TEST_F(KitchenIt, EmptySequences) {
  Blob In{0, 0, nullptr};
  EXPECT_EQ(Echo_sum_blob(Rig.object(), &In, &Ev), 0);
  EXPECT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
}

TEST_F(KitchenIt, UnionArms) {
  Variant In{};
  In._d = 0;
  In._u.i = -77;
  Variant *Out = Echo_echo_variant(Rig.object(), &In, &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  EXPECT_EQ(Out->_d, 0);
  EXPECT_EQ(Out->_u.i, -77);
  free(Out);

  In._d = 1;
  In._u.d = 2.5;
  Out = Echo_echo_variant(Rig.object(), &In, &Ev);
  EXPECT_EQ(Out->_u.d, 2.5);
  free(Out);

  char S[] = "in the union";
  In._d = 2;
  In._u.s = S;
  Out = Echo_echo_variant(Rig.object(), &In, &Ev);
  EXPECT_STREQ(Out->_u.s, "in the union");
  free(Out->_u.s);
  free(Out);

  uint8_t Raw[] = {1, 2, 3, 4, 5};
  In._d = 3;
  In._u.raw = Blob{5, 5, Raw};
  Out = Echo_echo_variant(Rig.object(), &In, &Ev);
  ASSERT_EQ(Out->_u.raw._length, 5u);
  EXPECT_EQ(Out->_u.raw._buffer[4], 5);
  free(Out->_u.raw._buffer);
  free(Out);
}

TEST_F(KitchenIt, NestedStructure) {
  std::vector<Scalars> Items;
  for (uint32_t I = 0; I != 5; ++I)
    Items.push_back(sampleScalars(I));
  char Label[] = "nested";
  Nested In{};
  In.label = Label;
  In.items = ScalarSeq{5, 5, Items.data()};
  In.v._d = 0;
  In.v._u.i = 42;
  Nested *Out = nullptr;
  Echo_echo_nested(Rig.object(), &In, &Out, &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  ASSERT_TRUE(Out);
  EXPECT_STREQ(Out->label, "nested");
  ASSERT_EQ(Out->items._length, 5u);
  for (uint32_t I = 0; I != 5; ++I)
    expectScalarsEq(Items[I], Out->items._buffer[I]);
  free(Out->label);
  free(Out->items._buffer);
  free(Out);
}

TEST_F(KitchenIt, InOutParameters) {
  int32_t A = 111, BV = -222;
  Echo_swap_longs(Rig.object(), &A, &BV, &Ev);
  EXPECT_EQ(A, -222);
  EXPECT_EQ(BV, 111);
}

TEST_F(KitchenIt, OnewayPing) {
  PingCount = 0;
  Echo_ping(Rig.object(), 5, &Ev);
  Echo_ping(Rig.object(), 7, &Ev);
  EXPECT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  // Oneway requests queue without replies; pump the server explicitly.
  EXPECT_EQ(Rig.link().pendingToServer(), 2u);
  while (flick_server_handle_one(Rig.server()) == FLICK_OK)
    ;
  EXPECT_EQ(PingCount, 12);
}

// Property-style sweep: random scalars must round-trip exactly through
// CDR for a range of seeds.
class KitchenScalarSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(KitchenScalarSweep, RandomScalarsRoundTrip) {
  ItRig Rig(Echo_dispatch);
  CORBA_Environment Ev{};
  Scalars In = sampleScalars(GetParam());
  Scalars *Out = Echo_echo_scalars(Rig.object(), &In, &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  expectScalarsEq(In, *Out);
  free(Out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KitchenScalarSweep,
                         ::testing::Range(1u, 17u));

//===----------------------------------------------------------------------===//
// The same presentation over the XDR back end (mix and match)
//===----------------------------------------------------------------------===//

class KitchenXdrIt : public ::testing::Test {
protected:
  ItRig Rig{KX_Echo_dispatch};
  CORBA_Environment Ev{};
};

TEST_F(KitchenXdrIt, ScalarsOverXdr) {
  KX_Scalars In{};
  In.s = -123;
  In.ul = 0xDEADBEEF;
  In.ll = -5000000000LL;
  In.d = 3.25;
  In.col = KX_GREEN;
  KX_Scalars *Out = KX_Echo_echo_scalars(Rig.object(), &In, &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  EXPECT_EQ(Out->s, -123);
  EXPECT_EQ(Out->ul, 0xDEADBEEFu);
  EXPECT_EQ(Out->ll, -5000000000LL);
  EXPECT_EQ(Out->d, 3.25);
  EXPECT_EQ(Out->col, KX_GREEN);
  free(Out);
}

TEST_F(KitchenXdrIt, StringsAndUnionsOverXdr) {
  char *S = KX_Echo_echo_string(Rig.object(), "xdr bytes", &Ev);
  EXPECT_STREQ(S, "xdr bytes");
  free(S);
  KX_Variant In{};
  char Str[] = "arm";
  In._d = 2;
  In._u.s = Str;
  KX_Variant *Out = KX_Echo_echo_variant(Rig.object(), &In, &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  EXPECT_STREQ(Out->_u.s, "arm");
  free(Out->_u.s);
  free(Out);
}

} // namespace
