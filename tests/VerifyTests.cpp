//===- tests/VerifyTests.cpp - AOI verifier tests -------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "aoi/Aoi.h"
#include "frontends/corba/CorbaFrontEnd.h"
#include "frontends/oncrpc/OncFrontEnd.h"
#include "support/Diagnostics.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

void verifyFails(AoiModule &M, const std::string &MsgPart) {
  DiagnosticEngine D;
  EXPECT_FALSE(M.verify(D));
  EXPECT_NE(D.renderAll().find(MsgPart), std::string::npos)
      << D.renderAll();
}

TEST(Verify, AcceptsWellFormedParsedModules) {
  DiagnosticEngine D;
  auto M = parseCorbaIdl(R"(
    struct S { long a; };
    exception E { string why; };
    interface I { long f(in S s) raises(E); oneway void p(in long t); };
  )",
                         "t.idl", D);
  ASSERT_TRUE(M);
  EXPECT_TRUE(M->verify(D)) << D.renderAll();
}

TEST(Verify, InfiniteSizeRecursionRejected) {
  // A struct directly containing itself has no finite encoding.
  AoiModule M;
  auto *S = M.make<AoiStruct>("s", std::vector<AoiField>{});
  S->setFields({AoiField{"self", S, SourceLoc()}});
  M.addNamedType(S);
  verifyFails(M, "contains itself");
}

TEST(Verify, RecursionThroughOptionalIsLegal) {
  DiagnosticEngine D;
  auto M = parseOncIdl("struct node { int v; node *next; };", "t.x", D);
  ASSERT_TRUE(M);
  EXPECT_TRUE(M->verify(D)) << D.renderAll();
}

TEST(Verify, DuplicateFieldNames) {
  AoiModule M;
  auto *L = M.make<AoiPrimitive>(AoiPrimKind::Long);
  auto *S = M.make<AoiStruct>(
      "s", std::vector<AoiField>{{"x", L, SourceLoc()},
                                 {"x", L, SourceLoc()}});
  M.addNamedType(S);
  verifyFails(M, "duplicate field");
}

TEST(Verify, UnionDiscriminatorMustBeIntegral) {
  AoiModule M;
  auto *F = M.make<AoiPrimitive>(AoiPrimKind::Float);
  auto *U = M.make<AoiUnion>("u", F, std::vector<AoiUnionCase>{});
  M.addNamedType(U);
  verifyFails(M, "discriminator must be");
}

TEST(Verify, DuplicateCaseLabels) {
  AoiModule M;
  auto *L = M.make<AoiPrimitive>(AoiPrimKind::Long);
  std::vector<AoiUnionCase> Cases(2);
  Cases[0].Labels = {{false, 3}};
  Cases[0].FieldName = "a";
  Cases[0].Type = L;
  Cases[1].Labels = {{false, 3}};
  Cases[1].FieldName = "b";
  Cases[1].Type = L;
  auto *U = M.make<AoiUnion>("u", L, std::move(Cases));
  M.addNamedType(U);
  verifyFails(M, "duplicate case label");
}

TEST(Verify, TwoDefaultCasesRejected) {
  AoiModule M;
  auto *L = M.make<AoiPrimitive>(AoiPrimKind::Long);
  std::vector<AoiUnionCase> Cases(2);
  Cases[0].Labels = {{true, 0}};
  Cases[1].Labels = {{true, 0}};
  auto *U = M.make<AoiUnion>("u", L, std::move(Cases));
  M.addNamedType(U);
  verifyFails(M, "more than one default");
}

TEST(Verify, DuplicateOperationNames) {
  AoiModule M;
  auto *V = M.make<AoiPrimitive>(AoiPrimKind::Void);
  AoiInterface *If = M.makeInterface();
  If->Name = If->ScopedName = "I";
  AoiOperation A;
  A.Name = "f";
  A.ReturnType = V;
  A.RequestCode = 1;
  AoiOperation B = A;
  B.RequestCode = 2;
  If->Operations = {A, B};
  verifyFails(M, "duplicate operation");
}

TEST(Verify, DuplicateRequestCodes) {
  AoiModule M;
  auto *V = M.make<AoiPrimitive>(AoiPrimKind::Void);
  AoiInterface *If = M.makeInterface();
  If->Name = If->ScopedName = "I";
  AoiOperation A;
  A.Name = "f";
  A.ReturnType = V;
  A.RequestCode = 5;
  AoiOperation B = A;
  B.Name = "g";
  If->Operations = {A, B};
  verifyFails(M, "duplicate request code");
}

TEST(Verify, OnewayConstraints) {
  AoiModule M;
  auto *L = M.make<AoiPrimitive>(AoiPrimKind::Long);
  AoiInterface *If = M.makeInterface();
  If->Name = If->ScopedName = "I";
  AoiOperation Op;
  Op.Name = "bad";
  Op.ReturnType = L; // oneway must return void
  Op.Oneway = true;
  Op.RequestCode = 1;
  If->Operations = {Op};
  verifyFails(M, "must return void");
}

TEST(Verify, OnewayOutParamRejected) {
  AoiModule M;
  auto *L = M.make<AoiPrimitive>(AoiPrimKind::Long);
  auto *V = M.make<AoiPrimitive>(AoiPrimKind::Void);
  AoiInterface *If = M.makeInterface();
  If->Name = If->ScopedName = "I";
  AoiOperation Op;
  Op.Name = "bad";
  Op.ReturnType = V;
  Op.Oneway = true;
  Op.RequestCode = 1;
  Op.Params = {AoiParam{AoiParamDir::Out, "x", L, SourceLoc()}};
  If->Operations = {Op};
  verifyFails(M, "out or inout");
}

TEST(Verify, VoidParameterRejected) {
  AoiModule M;
  auto *V = M.make<AoiPrimitive>(AoiPrimKind::Void);
  AoiInterface *If = M.makeInterface();
  If->Name = If->ScopedName = "I";
  AoiOperation Op;
  Op.Name = "f";
  Op.ReturnType = V;
  Op.RequestCode = 1;
  Op.Params = {AoiParam{AoiParamDir::In, "x", V, SourceLoc()}};
  If->Operations = {Op};
  verifyFails(M, "void type");
}

TEST(Verify, RedefinedTypeNames) {
  AoiModule M;
  auto *L = M.make<AoiPrimitive>(AoiPrimKind::Long);
  auto *S1 = M.make<AoiStruct>("s", std::vector<AoiField>{});
  auto *S2 = M.make<AoiStruct>("s", std::vector<AoiField>{});
  (void)L;
  M.addNamedType(S1);
  M.addNamedType(S2);
  verifyFails(M, "redefinition");
}

} // namespace
