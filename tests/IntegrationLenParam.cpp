//===- tests/IntegrationLenParam.cpp - §2 presentation flexibility --------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §2 flexibility example: presenting `Mail::send` with an
/// explicit length parameter changes only the calling convention -- the
/// stub stops counting characters -- while "the messages exchanged
/// between client and server would be unchanged."  Both presentations of
/// the same IDL are linked here and that claim is asserted byte for byte.
///
//===----------------------------------------------------------------------===//

#include "ItHarness.h"
#include "it_lmail.h" // --string-len-params presentation (L_ prefix)
#include "it_mail.h"  // standard CORBA presentation
#include <cstring>
#include <gtest/gtest.h>
#include <string>

using namespace flick;

static std::string LGot;
static uint32_t LGotLen;

void L_Mail_send_server(const char *msg, uint32_t msg_len,
                        CORBA_Environment *_ev) {
  LGot.assign(msg, msg_len);
  LGotLen = msg_len;
}

namespace {

TEST(LenParamPresentation, RoundTripCarriesExplicitLength) {
  ItRig Rig(L_Mail_dispatch);
  CORBA_Environment Ev;
  // The caller supplies the length; embedded text beyond it must not
  // travel (the stub honors the contract, not strlen).
  L_Mail_send(reinterpret_cast<L_Mail>(Rig.object()),
              "counted-not-scanned-XXXX", 19, &Ev);
  EXPECT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  EXPECT_EQ(LGotLen, 19u);
  EXPECT_EQ(LGot, "counted-not-scanned");
}

TEST(LenParamPresentation, GeneratedStubNeverCallsStrlen) {
  // Compile-time property, checked at run time against this binary's own
  // generated header text would need the file; instead assert behavior:
  // a non-NUL-terminated buffer of known length is safe to send.
  std::string NoNul(64, 'q'); // deliberately no terminator semantics used
  ItRig Rig(L_Mail_dispatch);
  CORBA_Environment Ev;
  L_Mail_send(reinterpret_cast<L_Mail>(Rig.object()), NoNul.data(),
              (uint32_t)NoNul.size(), &Ev);
  EXPECT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  EXPECT_EQ(LGotLen, 64u);
}

TEST(LenParamPresentation, NetworkContractUnchanged) {
  // Paper §2: "This change to the presentation would not affect the
  // network contract ... the messages exchanged would be unchanged."
  const char *Msg = "hello flick";
  flick_buf Std, Len;
  flick_buf_init(&Std);
  flick_buf_init(&Len);
  ASSERT_EQ(Mail_send_encode_request(&Std, 5, Msg), FLICK_OK);
  ASSERT_EQ(L_Mail_send_encode_request(&Len, 5, Msg,
                                       (uint32_t)std::strlen(Msg)),
            FLICK_OK);
  ASSERT_EQ(Std.len, Len.len);
  EXPECT_EQ(std::memcmp(Std.data, Len.data, Std.len), 0)
      << "the two presentations must produce identical messages";
  flick_buf_destroy(&Std);
  flick_buf_destroy(&Len);
}

TEST(LenParamPresentation, CrossPresentationInterop) {
  // A request from the explicit-length client decodes through the
  // standard presentation's dispatcher: same wire contract.
  flick_buf Req, Rep;
  flick_buf_init(&Req);
  flick_buf_init(&Rep);
  ASSERT_EQ(L_Mail_send_encode_request(&Req, 1, "interop", 7), FLICK_OK);
  ItRig Rig(Mail_dispatch); // the STANDARD dispatcher
  EXPECT_EQ(Mail_dispatch(Rig.server(), &Req, &Rep), FLICK_OK);
  flick_buf_destroy(&Req);
  flick_buf_destroy(&Rep);
}

} // namespace
