//===- tests/AsyncClientTests.cpp - pipelined client + reply demux --------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The async pipelined client under adversarial interleavings: replies
/// arriving out of order, duplicate and unknown correlation ids (dropped
/// and counted, never fatal), window-full backpressure in both blocking
/// and fail-fast modes, shutdown with requests in flight, and oneway
/// corking.  A scripted mock channel makes the reorderings deterministic;
/// the value-parameterized half runs the same client against every real
/// transport (threaded/sharded/socket) and so runs under TSan in CI.
/// Also pins the out-of-band contract: the payload bytes a server receives
/// from an async submit are identical to a synchronous client's, and
/// synchronous traffic always carries correlation id 0.
///
//===----------------------------------------------------------------------===//

#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include "runtime/transport/LocalLink.h"
#include "runtime/transport/Transport.h"
#include <cstring>
#include <deque>
#include <gtest/gtest.h>
#include <string>
#include <thread>
#include <vector>

using namespace flick;

namespace {

struct ScopedMetrics {
  flick_metrics M;
  ScopedMetrics() { flick_metrics_enable(&M); }
  ~ScopedMetrics() { flick_metrics_disable(); }
};

struct ScopedGauges {
  ScopedGauges() { flick_gauges_enable(); }
  ~ScopedGauges() { flick_gauges_disable(); }
};

std::vector<uint8_t> pattern(unsigned Seed, unsigned Call, size_t N) {
  std::vector<uint8_t> V(N);
  for (size_t I = 0; I != N; ++I)
    V[I] = static_cast<uint8_t>(Seed * 131 + Call * 31 + I);
  return V;
}

/// A scripted channel: records every frame the client sends (with the
/// correlation id it carried) and replays replies in exactly the order
/// (and with exactly the ids) the test enqueued -- the deterministic
/// stand-in for a transport that reorders replies.
class MockChan final : public Channel {
public:
  struct Frame {
    std::vector<uint8_t> Bytes;
    uint64_t Corr;
  };
  std::deque<Frame> Sent;
  std::deque<Frame> Replies;

  int send(const uint8_t *Data, size_t Len) override {
    Sent.push_back({{Data, Data + Len}, CorrOut});
    return FLICK_OK;
  }
  int recv(std::vector<uint8_t> &Out) override {
    if (Replies.empty())
      return FLICK_ERR_TRANSPORT;
    Frame F = Replies.front();
    Replies.pop_front();
    CorrIn = F.Corr;
    Out = std::move(F.Bytes);
    return FLICK_OK;
  }
};

void marshalPattern(flick_buf *Req, unsigned Seed, unsigned Call, size_t N) {
  std::vector<uint8_t> P = pattern(Seed, Call, N);
  ASSERT_EQ(flick_buf_ensure(Req, N), FLICK_OK);
  std::memcpy(flick_buf_grab(Req, N), P.data(), N);
}

TEST(AsyncClient, CompletesOutOfOrderRepliesToTheRightCalls) {
  ScopedMetrics Scope;
  MockChan Chan;
  flick_async_client Cli;
  ASSERT_EQ(flick_async_client_init(&Cli, &Chan), FLICK_OK);

  flick_call *Calls[3] = {};
  for (unsigned I = 0; I != 3; ++I) {
    marshalPattern(flick_async_begin(&Cli), 1, I, 32);
    ASSERT_EQ(flick_async_submit(&Cli, &Calls[I]), FLICK_OK);
    ASSERT_NE(Calls[I], nullptr);
    EXPECT_EQ(Chan.Sent.back().Corr, Calls[I]->id);
  }
  EXPECT_EQ(Cli.inflight, 3u);

  // Replies land 2, 0, 1 -- each tagged with its request's id and carrying
  // a payload that names the call it belongs to.
  for (unsigned I : {2u, 0u, 1u})
    Chan.Replies.push_back({pattern(9, I, 48), Calls[I]->id});

  // Waiting on call 1 (completed last) demultiplexes 2 and 0 on the way.
  EXPECT_EQ(flick_async_wait(&Cli, Calls[1]), FLICK_OK);
  for (unsigned I = 0; I != 3; ++I) {
    ASSERT_TRUE(Calls[I]->done) << "call " << I;
    std::vector<uint8_t> Want = pattern(9, I, 48);
    ASSERT_EQ(Calls[I]->rep.len, Want.size());
    EXPECT_EQ(std::memcmp(Calls[I]->rep.data, Want.data(), Want.size()), 0)
        << "call " << I << " got another call's reply";
  }
  EXPECT_EQ(Cli.inflight, 0u);
  EXPECT_EQ(Scope.M.replies_received, 3u);
  EXPECT_EQ(Scope.M.rpc_latency.count, 3u); // per-call stamps, all recorded
  EXPECT_EQ(Scope.M.corr_drops, 0u);
  flick_async_client_destroy(&Cli);
}

TEST(AsyncClient, DropsUnknownAndDuplicateIdsWithoutCrashing) {
  ScopedMetrics Scope;
  MockChan Chan;
  flick_async_client Cli;
  ASSERT_EQ(flick_async_client_init(&Cli, &Chan), FLICK_OK);

  flick_call *A = nullptr, *B = nullptr;
  marshalPattern(flick_async_begin(&Cli), 2, 0, 16);
  ASSERT_EQ(flick_async_submit(&Cli, &A), FLICK_OK);
  marshalPattern(flick_async_begin(&Cli), 2, 1, 16);
  ASSERT_EQ(flick_async_submit(&Cli, &B), FLICK_OK);

  // Unknown id, then B's reply, then a duplicate of B's id, then A's.
  Chan.Replies.push_back({pattern(7, 99, 8), 0xDEADBEEFull});
  Chan.Replies.push_back({pattern(7, 1, 24), B->id});
  Chan.Replies.push_back({pattern(7, 42, 24), B->id});
  Chan.Replies.push_back({pattern(7, 0, 24), A->id});

  EXPECT_EQ(flick_async_wait(&Cli, A), FLICK_OK);
  EXPECT_TRUE(B->done);
  std::vector<uint8_t> WantB = pattern(7, 1, 24);
  ASSERT_EQ(B->rep.len, WantB.size());
  EXPECT_EQ(std::memcmp(B->rep.data, WantB.data(), WantB.size()), 0)
      << "duplicate reply must not overwrite the first completion";
  EXPECT_EQ(Scope.M.corr_drops, 2u); // one unknown + one duplicate
  EXPECT_EQ(Scope.M.replies_received, 2u);
  flick_async_client_destroy(&Cli);
}

TEST(AsyncClient, FailFastSubmitReturnsWouldBlockAtTheWindow) {
  ScopedGauges Gauges;
  MockChan Chan;
  flick_async_opts Opts;
  Opts.window = 2;
  Opts.fail_fast = 1;
  flick_async_client Cli;
  ASSERT_EQ(flick_async_client_init(&Cli, &Chan, &Opts), FLICK_OK);

  for (unsigned I = 0; I != 2; ++I) {
    marshalPattern(flick_async_begin(&Cli), 3, I, 8);
    ASSERT_EQ(flick_async_submit(&Cli, nullptr), FLICK_OK);
  }
  marshalPattern(flick_async_begin(&Cli), 3, 2, 8);
  EXPECT_EQ(flick_async_submit(&Cli, nullptr), FLICK_ERR_WOULD_BLOCK);
  EXPECT_EQ(Cli.inflight, 2u);
  EXPECT_EQ(Chan.Sent.size(), 2u) << "rejected submit must not send";
  EXPECT_EQ(flick_gauges_global.window_stalls.load(std::memory_order_relaxed),
            1u);
  flick_async_client_destroy(&Cli);
}

TEST(AsyncClient, BlockingSubmitPumpsACompletionWhenTheWindowIsFull) {
  ScopedGauges Gauges;
  MockChan Chan;
  flick_async_opts Opts;
  Opts.window = 1;
  flick_async_client Cli;
  ASSERT_EQ(flick_async_client_init(&Cli, &Chan, &Opts), FLICK_OK);

  flick_call *A = nullptr, *B = nullptr;
  marshalPattern(flick_async_begin(&Cli), 4, 0, 8);
  ASSERT_EQ(flick_async_submit(&Cli, &A), FLICK_OK);
  // A's reply is already waiting, so the over-window submit below stalls
  // once, completes A, and then goes out.
  Chan.Replies.push_back({pattern(8, 0, 8), A->id});
  marshalPattern(flick_async_begin(&Cli), 4, 1, 8);
  ASSERT_EQ(flick_async_submit(&Cli, &B), FLICK_OK);
  EXPECT_TRUE(A->done);
  EXPECT_EQ(A->status, FLICK_OK);
  EXPECT_EQ(Cli.inflight, 1u);
  EXPECT_EQ(Chan.Sent.size(), 2u);
  EXPECT_EQ(flick_gauges_global.window_stalls.load(std::memory_order_relaxed),
            1u);
  flick_async_client_destroy(&Cli);
}

TEST(AsyncClient, CompletionCallbackRunsAndMayReleaseTheCall) {
  MockChan Chan;
  flick_async_client Cli;
  ASSERT_EQ(flick_async_client_init(&Cli, &Chan), FLICK_OK);

  struct Ctx {
    unsigned Fired = 0;
    flick_async_client *Cli = nullptr;
  } C;
  C.Cli = &Cli;
  auto OnDone = [](flick_call *Call, void *P) {
    auto *C = static_cast<Ctx *>(P);
    ++C->Fired;
    EXPECT_EQ(Call->status, FLICK_OK);
    flick_async_release(C->Cli, Call); // legal from inside the callback
  };

  flick_call *A = nullptr;
  marshalPattern(flick_async_begin(&Cli), 5, 0, 8);
  ASSERT_EQ(flick_async_submit(&Cli, &A, OnDone, &C), FLICK_OK);
  Chan.Replies.push_back({pattern(6, 0, 8), A->id});
  EXPECT_EQ(flick_async_drain(&Cli), FLICK_OK);
  EXPECT_EQ(C.Fired, 1u);
  EXPECT_EQ(Cli.inflight, 0u);
  flick_async_client_destroy(&Cli);
}

//===----------------------------------------------------------------------===//
// The out-of-band contract, pinned on the deterministic link
//===----------------------------------------------------------------------===//

TEST(AsyncClient, PayloadBytesIdenticalToSyncClientAndSyncCarriesIdZero) {
  // The same logical request leaves a synchronous client and an async
  // client; the server-visible payload bytes must be identical -- the
  // correlation id rides out of band -- and only the async frame may carry
  // a nonzero id.
  LocalLink SyncL, AsyncL;
  flick_client Sync;
  flick_client_init(&Sync, &SyncL.clientEnd());
  marshalPattern(flick_client_begin(&Sync), 11, 0, 200);
  ASSERT_EQ(flick_client_send_oneway(&Sync), FLICK_OK);
  std::vector<uint8_t> SyncBytes;
  ASSERT_EQ(SyncL.serverEnd().recv(SyncBytes), FLICK_OK);
  EXPECT_EQ(SyncL.serverEnd().lastCorrelation(), 0u)
      << "synchronous traffic must stay id 0";

  flick_async_client Async;
  ASSERT_EQ(flick_async_client_init(&Async, &AsyncL.clientEnd()), FLICK_OK);
  flick_call *Call = nullptr;
  marshalPattern(flick_async_begin(&Async), 11, 0, 200);
  ASSERT_EQ(flick_async_submit(&Async, &Call), FLICK_OK);
  std::vector<uint8_t> AsyncBytes;
  ASSERT_EQ(AsyncL.serverEnd().recv(AsyncBytes), FLICK_OK);
  EXPECT_EQ(AsyncL.serverEnd().lastCorrelation(), Call->id);
  EXPECT_NE(Call->id, 0u);

  EXPECT_EQ(SyncBytes, AsyncBytes);
  flick_async_client_destroy(&Async); // in-flight call dies with the client
  flick_client_destroy(&Sync);
}

TEST(AsyncClient, OnewayCorkHoldsFramesUntilFlush) {
  ScopedMetrics Scope;
  LocalLink L;
  flick_async_client Cli;
  ASSERT_EQ(flick_async_client_init(&Cli, &L.clientEnd()), FLICK_OK);

  const unsigned N = 5;
  for (unsigned I = 0; I != N; ++I) {
    marshalPattern(flick_async_begin(&Cli), 12, I, 40 + I);
    ASSERT_EQ(flick_async_oneway(&Cli), FLICK_OK);
    EXPECT_EQ(L.pendingToServer(), 0u) << "corked oneway must not hit the wire";
  }
  ASSERT_EQ(flick_async_flush(&Cli), FLICK_OK);
  EXPECT_EQ(L.pendingToServer(), N);
  EXPECT_EQ(flick_async_flush(&Cli), FLICK_OK); // empty flush is a no-op
  EXPECT_EQ(L.pendingToServer(), N);

  for (unsigned I = 0; I != N; ++I) {
    std::vector<uint8_t> Got;
    ASSERT_EQ(L.serverEnd().recv(Got), FLICK_OK);
    std::vector<uint8_t> Want = pattern(12, I, 40 + I);
    EXPECT_EQ(Got, Want) << "corked frame " << I;
    EXPECT_EQ(L.serverEnd().lastCorrelation(), 0u) << "oneways carry id 0";
  }
  EXPECT_EQ(Scope.M.oneways_sent, N);
  flick_async_client_destroy(&Cli);
}

TEST(AsyncClient, CorkAutoFlushesAtCorkMax) {
  LocalLink L;
  flick_async_opts Opts;
  Opts.cork_max = 3;
  flick_async_client Cli;
  ASSERT_EQ(flick_async_client_init(&Cli, &L.clientEnd(), &Opts), FLICK_OK);
  for (unsigned I = 0; I != 3; ++I) {
    marshalPattern(flick_async_begin(&Cli), 13, I, 16);
    ASSERT_EQ(flick_async_oneway(&Cli), FLICK_OK);
  }
  EXPECT_EQ(L.pendingToServer(), 3u) << "cork_max-th oneway must auto-flush";
  flick_async_client_destroy(&Cli);
}

//===----------------------------------------------------------------------===//
// Real transports (runs under TSan in CI)
//===----------------------------------------------------------------------===//

int echoDispatch(flick_server *, flick_buf *Req, flick_buf *Rep) {
  size_t N = Req->len - Req->pos;
  if (flick_buf_ensure(Rep, N) != FLICK_OK)
    return FLICK_ERR_ALLOC;
  std::memcpy(flick_buf_grab(Rep, N), Req->data + Req->pos, N);
  return FLICK_OK;
}

class AsyncClientTransport : public ::testing::TestWithParam<const char *> {
protected:
  std::unique_ptr<Transport> make(size_t QueueCap = 256) {
    auto T = makeTransport(GetParam(), QueueCap);
    EXPECT_NE(T, nullptr);
    return T;
  }
};

TEST_P(AsyncClientTransport, PipelinedEchoesMatchTheirOwnRequests) {
  ScopedMetrics Scope;
  auto T = make();
  flick_server_pool Pool;
  ASSERT_EQ(flick_server_pool_start(&Pool, T.get(), echoDispatch, 4),
            FLICK_OK);

  flick_async_opts Opts;
  Opts.window = 8;
  flick_async_client Cli;
  ASSERT_EQ(flick_async_client_init(&Cli, &T->connect(), &Opts), FLICK_OK);

  // More submits than the window: blocking submits pump completions; four
  // workers race, so replies interleave however they like -- every handle
  // must still end up with its own echo.
  const unsigned Calls = 64;
  std::vector<flick_call *> Handles;
  for (unsigned I = 0; I != Calls; ++I) {
    marshalPattern(flick_async_begin(&Cli), 21, I, 64 + (I % 7));
    flick_call *Call = nullptr;
    ASSERT_EQ(flick_async_submit(&Cli, &Call), FLICK_OK);
    Handles.push_back(Call);
  }
  ASSERT_EQ(flick_async_drain(&Cli), FLICK_OK);
  for (unsigned I = 0; I != Calls; ++I) {
    ASSERT_TRUE(Handles[I]->done) << "call " << I;
    ASSERT_EQ(Handles[I]->status, FLICK_OK) << "call " << I;
    std::vector<uint8_t> Want = pattern(21, I, 64 + (I % 7));
    ASSERT_EQ(Handles[I]->rep.len, Want.size());
    EXPECT_EQ(std::memcmp(Handles[I]->rep.data, Want.data(), Want.size()), 0)
        << "call " << I << " got another call's reply";
    flick_async_release(&Cli, Handles[I]);
  }
  EXPECT_EQ(Cli.inflight, 0u);
  EXPECT_EQ(Scope.M.corr_drops, 0u);
  EXPECT_EQ(Scope.M.rpc_latency.count, Calls);
  flick_async_client_destroy(&Cli);
  flick_server_pool_stop(&Pool);
}

TEST_P(AsyncClientTransport, UnknownAndDuplicateIdsFromAWorkerAreDropped) {
  ScopedMetrics Scope;
  auto T = make();
  Channel &Conn = T->connect();
  Channel &Worker = T->workerEnd();
  flick_async_client Cli;
  ASSERT_EQ(flick_async_client_init(&Cli, &Conn), FLICK_OK);

  flick_call *Call = nullptr;
  marshalPattern(flick_async_begin(&Cli), 22, 0, 32);
  ASSERT_EQ(flick_async_submit(&Cli, &Call), FLICK_OK);

  std::vector<uint8_t> Req;
  ASSERT_EQ(Worker.recv(Req), FLICK_OK);
  EXPECT_EQ(Worker.lastCorrelation(), Call->id);
  uint8_t Junk[4] = {1, 2, 3, 4};
  // A misbehaving peer: a reply with a bogus id, a correct reply, and a
  // duplicate of the correct reply.
  Worker.setCorrelation(0xBADBADull);
  ASSERT_EQ(Worker.send(Junk, sizeof Junk), FLICK_OK);
  Worker.setCorrelation(Call->id);
  ASSERT_EQ(Worker.send(Req.data(), Req.size()), FLICK_OK);
  ASSERT_EQ(Worker.send(Req.data(), Req.size()), FLICK_OK);

  EXPECT_EQ(flick_async_wait(&Cli, Call), FLICK_OK);
  ASSERT_EQ(Call->rep.len, Req.size());
  EXPECT_EQ(std::memcmp(Call->rep.data, Req.data(), Req.size()), 0);
  EXPECT_EQ(Scope.M.corr_drops, 1u); // the bogus id; the dup is still queued

  // The duplicate is still in the reply queue: submit another call and let
  // its pump swallow the stale frame.
  flick_async_release(&Cli, Call);
  flick_call *Second = nullptr;
  marshalPattern(flick_async_begin(&Cli), 22, 1, 32);
  ASSERT_EQ(flick_async_submit(&Cli, &Second), FLICK_OK);
  std::vector<uint8_t> Req2;
  ASSERT_EQ(Worker.recv(Req2), FLICK_OK);
  ASSERT_EQ(Worker.send(Req2.data(), Req2.size()), FLICK_OK);
  EXPECT_EQ(flick_async_wait(&Cli, Second), FLICK_OK);
  EXPECT_EQ(Scope.M.corr_drops, 2u) << "stale duplicate dropped, not matched";
  ASSERT_EQ(Second->rep.len, Req2.size());
  EXPECT_EQ(std::memcmp(Second->rep.data, Req2.data(), Req2.size()), 0);

  flick_async_client_destroy(&Cli);
  T->shutdown();
}

TEST_P(AsyncClientTransport, ShutdownWithRequestsInFlightFailsEveryCall) {
  ScopedMetrics Scope;
  auto T = make();
  Channel &Conn = T->connect();
  flick_async_client Cli;
  ASSERT_EQ(flick_async_client_init(&Cli, &Conn), FLICK_OK);

  const unsigned K = 4;
  std::vector<flick_call *> Handles;
  for (unsigned I = 0; I != K; ++I) {
    marshalPattern(flick_async_begin(&Cli), 23, I, 64);
    flick_call *Call = nullptr;
    ASSERT_EQ(flick_async_submit(&Cli, &Call), FLICK_OK);
    Handles.push_back(Call);
  }
  T->shutdown(); // no worker ever served them
  EXPECT_EQ(flick_async_drain(&Cli), FLICK_ERR_TRANSPORT);
  for (unsigned I = 0; I != K; ++I) {
    EXPECT_TRUE(Handles[I]->done) << "call " << I;
    EXPECT_EQ(Handles[I]->status, FLICK_ERR_TRANSPORT) << "call " << I;
  }
  EXPECT_EQ(Cli.inflight, 0u);
  flick_async_client_destroy(&Cli);
}

TEST_P(AsyncClientTransport, CorkedBatchArrivesIntactFrameByFrame) {
  auto T = make();
  Channel &Conn = T->connect();
  Channel &Worker = T->workerEnd();
  flick_async_client Cli;
  ASSERT_EQ(flick_async_client_init(&Cli, &Conn), FLICK_OK);

  const unsigned N = 6;
  for (unsigned I = 0; I != N; ++I) {
    marshalPattern(flick_async_begin(&Cli), 24, I, 100 + 13 * I);
    ASSERT_EQ(flick_async_oneway(&Cli), FLICK_OK);
  }
  ASSERT_EQ(flick_async_flush(&Cli), FLICK_OK);
  // One connection's frames stay FIFO on every transport; SocketLink sent
  // all of them in a single sendmsg and the receiver re-frames the stream.
  for (unsigned I = 0; I != N; ++I) {
    std::vector<uint8_t> Got;
    ASSERT_EQ(Worker.recv(Got), FLICK_OK) << "frame " << I;
    std::vector<uint8_t> Want = pattern(24, I, 100 + 13 * I);
    EXPECT_EQ(Got, Want) << "frame " << I;
    EXPECT_EQ(Worker.lastCorrelation(), 0u);
  }
  flick_async_client_destroy(&Cli);
  T->shutdown();
}

INSTANTIATE_TEST_SUITE_P(AllTransports, AsyncClientTransport,
                         ::testing::Values("threaded", "sharded", "socket"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

} // namespace
