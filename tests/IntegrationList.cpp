//===- tests/IntegrationList.cpp - recursive linked-list round trips ------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// XDR linked lists exercise the recursive-type path: the back end must
/// fall back to out-of-line marshal helpers (paper §3.3) and still
/// round-trip correctly at depth.
///
//===----------------------------------------------------------------------===//

#include "ItHarness.h"
#include "it_list.h"
#include <cstring>
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace flick;

//===----------------------------------------------------------------------===//
// Servant
//===----------------------------------------------------------------------===//

int count_items_1_svc(stringnode *arg1, int32_t *_result) {
  int32_t N = 0;
  for (stringnode *P = arg1; P; P = P->next)
    ++N;
  *_result = N;
  return 0;
}

int reverse_1_svc(stringnode *arg1, stringnode **_result) {
  stringnode *Out = nullptr;
  for (stringnode *P = arg1; P; P = P->next) {
    auto *N = static_cast<stringnode *>(malloc(sizeof(stringnode)));
    N->item = strdup(P->item);
    N->next = Out;
    Out = N;
  }
  *_result = Out;
  return 0;
}

int lookup_1_svc(int32_t arg1, maybe_pair *_result) {
  if (arg1 < 0)
    return 1; // system error path
  if (arg1 == 0) {
    _result->disc = 0;
    return 0;
  }
  _result->disc = 1;
  _result->u.p.key = arg1;
  _result->u.p.value = arg1 * arg1;
  return 0;
}

//===----------------------------------------------------------------------===//
// Tests
//===----------------------------------------------------------------------===//

namespace {

/// Builds a heap list from strings (owned by the caller).
stringnode *makeList(const std::vector<std::string> &Items) {
  stringnode *Head = nullptr, **Tail = &Head;
  for (const std::string &S : Items) {
    auto *N = static_cast<stringnode *>(malloc(sizeof(stringnode)));
    N->item = strdup(S.c_str());
    N->next = nullptr;
    *Tail = N;
    Tail = &N->next;
  }
  return Head;
}

void freeList(stringnode *P) {
  while (P) {
    stringnode *Next = P->next;
    free(P->item);
    free(P);
    P = Next;
  }
}

class ListIt : public ::testing::Test {
protected:
  ItRig Rig{LISTPROG_dispatch};
};

TEST_F(ListIt, CountEmptyList) {
  int32_t N = -1;
  EXPECT_EQ(count_items_1(nullptr, &N, Rig.client()), FLICK_OK);
  EXPECT_EQ(N, 0);
}

TEST_F(ListIt, CountSmallList) {
  stringnode *L = makeList({"a", "b", "c"});
  int32_t N = 0;
  EXPECT_EQ(count_items_1(L, &N, Rig.client()), FLICK_OK);
  EXPECT_EQ(N, 3);
  freeList(L);
}

TEST_F(ListIt, DeepListRoundTrips) {
  std::vector<std::string> Items;
  for (int I = 0; I != 500; ++I)
    Items.push_back("item-" + std::to_string(I));
  stringnode *L = makeList(Items);
  int32_t N = 0;
  EXPECT_EQ(count_items_1(L, &N, Rig.client()), FLICK_OK);
  EXPECT_EQ(N, 500);
  freeList(L);
}

TEST_F(ListIt, ReverseReturnsNewList) {
  stringnode *L = makeList({"x", "y", "z"});
  stringnode *R = nullptr;
  ASSERT_EQ(reverse_1(L, &R, Rig.client()), FLICK_OK);
  ASSERT_TRUE(R);
  EXPECT_STREQ(R->item, "z");
  ASSERT_TRUE(R->next);
  EXPECT_STREQ(R->next->item, "y");
  ASSERT_TRUE(R->next->next);
  EXPECT_STREQ(R->next->next->item, "x");
  EXPECT_EQ(R->next->next->next, nullptr);
  freeList(L);
  freeList(R);
}

TEST_F(ListIt, UnionResultBothArms) {
  maybe_pair P{};
  ASSERT_EQ(lookup_1(7, &P, Rig.client()), FLICK_OK);
  EXPECT_EQ(P.disc, 1);
  EXPECT_EQ(P.u.p.key, 7);
  EXPECT_EQ(P.u.p.value, 49);
  maybe_pair Q{};
  ASSERT_EQ(lookup_1(0, &Q, Rig.client()), FLICK_OK);
  EXPECT_EQ(Q.disc, 0);
}

TEST_F(ListIt, ServantFailureBecomesErrorStatus) {
  maybe_pair P{};
  int Err = lookup_1(-1, &P, Rig.client());
  EXPECT_EQ(Err, FLICK_ERR_EXCEPTION);
}

} // namespace
