//===- tests/MarshalPlanTests.cpp - plan IR and pass pipeline tests -------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the MarshalPlan layer in isolation: the --passes grammar,
// chunk coalescing over synthetic plans, memcpy run merging on hand-built
// presentations, structural helper keys, and the plan builder/dump.
//
//===----------------------------------------------------------------------===//

#include "backends/Passes.h"
#include "cast/Builder.h"
#include "pres/Pres.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

//===----------------------------------------------------------------------===//
// --passes grammar
//===----------------------------------------------------------------------===//

TEST(PassList, TokensApplyLeftToRight) {
  BackendOptions O;
  std::string Err;
  ASSERT_TRUE(parsePassList("none", O, Err)) << Err;
  EXPECT_FALSE(O.Inline);
  EXPECT_FALSE(O.Chunk);
  EXPECT_FALSE(O.Memcpy);
  EXPECT_FALSE(O.ScratchAlloc);
  EXPECT_FALSE(O.BufferAlias);
  EXPECT_EQ(O.BoundedThreshold, 0u);

  ASSERT_TRUE(parsePassList("+chunk,inline", O, Err)) << Err;
  EXPECT_TRUE(O.Chunk);
  EXPECT_TRUE(O.Inline);
  EXPECT_FALSE(O.Memcpy);

  ASSERT_TRUE(parsePassList("all,-memcpy", O, Err)) << Err;
  EXPECT_TRUE(O.Inline);
  EXPECT_TRUE(O.Chunk);
  EXPECT_FALSE(O.Memcpy);
  EXPECT_TRUE(O.ScratchAlloc);
  EXPECT_TRUE(O.BufferAlias);
  EXPECT_EQ(O.BoundedThreshold, DefaultBoundedThreshold);
}

TEST(PassList, BoundedRestoresThreshold) {
  BackendOptions O;
  O.BoundedThreshold = 1234;
  std::string Err;
  ASSERT_TRUE(parsePassList("-bounded", O, Err));
  EXPECT_EQ(O.BoundedThreshold, 0u);
  // Re-enabling after disable falls back to the paper's default.
  ASSERT_TRUE(parsePassList("+bounded", O, Err));
  EXPECT_EQ(O.BoundedThreshold, DefaultBoundedThreshold);
  // Enabling while already enabled keeps the custom threshold.
  O.BoundedThreshold = 1234;
  ASSERT_TRUE(parsePassList("bounded", O, Err));
  EXPECT_EQ(O.BoundedThreshold, 1234u);
}

TEST(PassList, UnknownTokenFailsWithDiagnostic) {
  BackendOptions O;
  std::string Err;
  EXPECT_FALSE(parsePassList("all,-turbo", O, Err));
  EXPECT_NE(Err.find("unknown pass 'turbo'"), std::string::npos) << Err;
  EXPECT_NE(Err.find("valid:"), std::string::npos) << Err;
}

TEST(PassList, EmptyTokensAreTolerated) {
  BackendOptions O;
  std::string Err;
  ASSERT_TRUE(parsePassList(",,none,,+alias,", O, Err)) << Err;
  EXPECT_TRUE(O.BufferAlias);
  EXPECT_FALSE(O.Chunk);
}

TEST(PassRegistry, EnabledNamesFollowOptions) {
  BackendOptions O; // defaults: everything on
  std::vector<std::string> All = {"inline",  "chunk",   "memcpy",
                                  "bounded", "scratch", "alias"};
  EXPECT_EQ(enabledPassNames(O), All);
  std::string Err;
  ASSERT_TRUE(parsePassList("none,chunk,bounded", O, Err));
  std::vector<std::string> Two = {"chunk", "bounded"};
  EXPECT_EQ(enabledPassNames(O), Two);
}

TEST(PassList, GatherTokenControlsThreshold) {
  BackendOptions O;
  std::string Err;
  ASSERT_TRUE(parsePassList("none", O, Err));
  EXPECT_EQ(O.GatherMinBytes, 0u); // off by default
  ASSERT_TRUE(parsePassList("+gather", O, Err));
  EXPECT_EQ(O.GatherMinBytes, DefaultGatherMinBytes);
  ASSERT_TRUE(parsePassList("-gather", O, Err));
  EXPECT_EQ(O.GatherMinBytes, 0u);
  // Enabling while already enabled keeps a custom threshold.
  O.GatherMinBytes = 777;
  ASSERT_TRUE(parsePassList("gather", O, Err));
  EXPECT_EQ(O.GatherMinBytes, 777u);
}

TEST(PassRegistry, GatherListsInPipelineOrder) {
  BackendOptions O;
  std::string Err;
  ASSERT_TRUE(parsePassList("none,memcpy,gather,bounded", O, Err));
  std::vector<std::string> Want = {"memcpy", "gather", "bounded"};
  EXPECT_EQ(enabledPassNames(O), Want);
}

//===----------------------------------------------------------------------===//
// Chunk coalescing over synthetic plans
//===----------------------------------------------------------------------===//

/// A synthetic fixed item (no PRES node): the chunk pass lays it out from
/// FixedSize/FixedAlign directly.
PlanItem fixedItem(const std::string &Name, uint64_t Size, unsigned Align) {
  PlanItem It;
  It.Name = Name;
  It.Fixed = true;
  It.FixedSize = Size;
  It.FixedAlign = Align;
  It.CoalesceOK = true;
  It.Storage = StorageClass::Fixed;
  It.MaxBytes = Size;
  return It;
}

PlanItem variableItem(const std::string &Name) {
  PlanItem It;
  It.Name = Name;
  return It;
}

MarshalStep segStep(unsigned Item) {
  MarshalStep St;
  St.Kind = StepKind::VariableSegment;
  St.Item = Item;
  return St;
}

TEST(ChunkPass, CoalescesAdjacentFixedItemsWithAlignment) {
  WireLayout L(WireKind::CdrLE);
  BackendOptions O;
  SeqPlan Plan;
  Plan.Encode = true;
  Plan.Items = {fixedItem("a", 4, 4), fixedItem("b", 8, 8),
                fixedItem("c", 4, 4)};
  Plan.Steps = {segStep(0), segStep(1), segStep(2)};

  PassPipeline(O, L).run(Plan);

  ASSERT_EQ(Plan.Steps.size(), 1u);
  const MarshalStep &St = Plan.Steps[0];
  EXPECT_EQ(St.Kind, StepKind::FixedChunk);
  ASSERT_EQ(St.Members.size(), 3u);
  EXPECT_EQ(St.Members[0].WireOff, 0u);
  EXPECT_EQ(St.Members[0].WireSize, 4u);
  // b aligns 4 -> 8, so its window includes the alignment gap.
  EXPECT_EQ(St.Members[1].WireOff, 4u);
  EXPECT_EQ(St.Members[1].WireSize, 12u);
  EXPECT_EQ(St.Members[2].WireOff, 16u);
  EXPECT_EQ(St.Members[2].WireSize, 4u);
  EXPECT_EQ(St.Size, 20u);
  EXPECT_EQ(St.Align, 8u);
}

TEST(ChunkPass, FramingHooksBreakRuns) {
  WireLayout L(WireKind::CdrLE);
  BackendOptions O;
  SeqPlan Plan;
  Plan.Encode = true;
  Plan.Items = {fixedItem("a", 4, 4), fixedItem("b", 4, 4)};
  MarshalStep Hook;
  Hook.Kind = StepKind::FramingHook;
  Hook.Hook = HookKind::RequestFinish;
  Plan.Steps = {segStep(0), Hook, segStep(1)};

  PassPipeline(O, L).run(Plan);

  ASSERT_EQ(Plan.Steps.size(), 3u);
  EXPECT_EQ(Plan.Steps[0].Kind, StepKind::FixedChunk);
  EXPECT_EQ(Plan.Steps[1].Kind, StepKind::FramingHook);
  EXPECT_EQ(Plan.Steps[2].Kind, StepKind::FixedChunk);
  EXPECT_EQ(Plan.Steps[0].Size, 4u);
  EXPECT_EQ(Plan.Steps[2].Size, 4u);
}

TEST(ChunkPass, VariableItemsBreakRuns) {
  WireLayout L(WireKind::CdrLE);
  BackendOptions O;
  SeqPlan Plan;
  Plan.Encode = false;
  Plan.Items = {fixedItem("a", 4, 4), variableItem("v"),
                fixedItem("b", 8, 8)};
  Plan.Steps = {segStep(0), segStep(1), segStep(2)};

  PassPipeline(O, L).run(Plan);

  ASSERT_EQ(Plan.Steps.size(), 3u);
  EXPECT_EQ(Plan.Steps[0].Kind, StepKind::FixedChunk);
  EXPECT_EQ(Plan.Steps[1].Kind, StepKind::VariableSegment);
  EXPECT_EQ(Plan.Steps[1].Item, 1u);
  EXPECT_EQ(Plan.Steps[2].Kind, StepKind::FixedChunk);
}

TEST(ChunkPass, DisabledLeavesSegmentsAlone) {
  WireLayout L(WireKind::CdrLE);
  BackendOptions O;
  std::string Err;
  ASSERT_TRUE(parsePassList("all,-chunk", O, Err));
  SeqPlan Plan;
  Plan.Encode = true;
  Plan.Items = {fixedItem("a", 4, 4), fixedItem("b", 4, 4)};
  Plan.Steps = {segStep(0), segStep(1)};

  PassPipeline(O, L).run(Plan);

  ASSERT_EQ(Plan.Steps.size(), 2u);
  EXPECT_EQ(Plan.Steps[0].Kind, StepKind::VariableSegment);
  EXPECT_EQ(Plan.Steps[1].Kind, StepKind::VariableSegment);
}

//===----------------------------------------------------------------------===//
// Memcpy run merging
//===----------------------------------------------------------------------===//

struct PresFixture {
  PresC P;
  CastBuilder B{P.Cast};

  PresPrim *i32() {
    return P.make<PresPrim>(P.Mint.integer(32, true), B.prim("int32_t"));
  }
  PresPrim *i64() {
    return P.make<PresPrim>(P.Mint.integer(64, true), B.prim("int64_t"));
  }
  PresStruct *structOf(const std::string &CName,
                       std::vector<PresField> Fields) {
    std::vector<MintStructElem> Elems;
    for (const PresField &F : Fields)
      Elems.push_back(MintStructElem{F.Pres->mint(), F.CName});
    auto *M = P.Mint.make<MintStruct>(std::move(Elems));
    return P.make<PresStruct>(M, B.prim(CName), std::move(Fields));
  }
  PresFixedArray *arrOf(PresNode *Elem, uint64_t N) {
    auto *M = P.Mint.make<MintArray>(Elem->mint(), N, N);
    return P.make<PresFixedArray>(M, B.arr(Elem->ctype(), N), Elem, N);
  }
};

TEST(MemcpyRuns, DenseStructMergesToOneRun) {
  PresFixture F;
  // struct { int32 a; int32 b; int32 c[2]; }: 16 contiguous identical
  // bytes under CDR-LE.
  PresStruct *S = F.structOf(
      "S1", {{"a", F.i32()}, {"b", F.i32()}, {"c", F.arrOf(F.i32(), 2)}});
  WireLayout L(WireKind::CdrLE);
  MemcpyRuns R = memcpyRunsOf(S, L);
  EXPECT_TRUE(R.Identical);
  ASSERT_EQ(R.Runs.size(), 1u);
  EXPECT_EQ(R.Runs[0].Off, 0u);
  EXPECT_EQ(R.Runs[0].Bytes, 16u);
  EXPECT_EQ(R.WireSize, 16u);
  EXPECT_EQ(R.HostSize, 16u);
  EXPECT_EQ(R.Leaves, 4u);
  EXPECT_TRUE(denseBitIdentical(R));
}

TEST(MemcpyRuns, InteriorPaddingSplitsRuns) {
  PresFixture F;
  // struct { int32 a; int64 b; }: both wire and host pad [4,8), so the
  // leaves form two runs and the subtree cannot block-copy whole.
  PresStruct *S = F.structOf("S2", {{"a", F.i32()}, {"b", F.i64()}});
  WireLayout L(WireKind::CdrLE);
  MemcpyRuns R = memcpyRunsOf(S, L);
  EXPECT_TRUE(R.Identical);
  ASSERT_EQ(R.Runs.size(), 2u);
  EXPECT_EQ(R.Runs[0].Off, 0u);
  EXPECT_EQ(R.Runs[0].Bytes, 4u);
  EXPECT_EQ(R.Runs[1].Off, 8u);
  EXPECT_EQ(R.Runs[1].Bytes, 8u);
  EXPECT_FALSE(denseBitIdentical(R));
}

TEST(MemcpyRuns, HostTailPaddingBlocksDensity) {
  PresFixture F;
  // struct { int64 a; int32 b; }: one dense wire run of 12 bytes, but the
  // host struct pads to 16 -- copying sizeof(struct) would write/read 4
  // bytes past the wire image.
  PresStruct *S = F.structOf("S3", {{"a", F.i64()}, {"b", F.i32()}});
  WireLayout L(WireKind::CdrLE);
  MemcpyRuns R = memcpyRunsOf(S, L);
  EXPECT_TRUE(R.Identical);
  ASSERT_EQ(R.Runs.size(), 1u);
  EXPECT_EQ(R.Runs[0].Bytes, 12u);
  EXPECT_EQ(R.WireSize, 12u);
  EXPECT_EQ(R.HostSize, 16u);
  EXPECT_FALSE(denseBitIdentical(R));
}

TEST(MemcpyRuns, ByteSwappedWireIsNotIdentical) {
  PresFixture F;
  PresStruct *S = F.structOf("S4", {{"a", F.i32()}, {"b", F.i32()}});
  // XDR is big-endian; on the little-endian hosts the suite targets, no
  // leaf is host-identical.
  WireLayout L(WireKind::Xdr);
  MemcpyRuns R = memcpyRunsOf(S, L);
  EXPECT_FALSE(R.Identical);
  EXPECT_FALSE(denseBitIdentical(R));
}

TEST(MemcpyRuns, TinySubtreesAreNotWorthABlockCopy) {
  PresFixture F;
  // A single int32 merges to one identical run, but one 4-byte leaf is
  // below the two-leaf/8-byte floor for promotion.
  PresStruct *S = F.structOf("S5", {{"a", F.i32()}});
  WireLayout L(WireKind::CdrLE);
  MemcpyRuns R = memcpyRunsOf(S, L);
  EXPECT_TRUE(R.Identical);
  EXPECT_FALSE(denseBitIdentical(R));
}

//===----------------------------------------------------------------------===//
// Gather pass: large dense segments go by reference
//===----------------------------------------------------------------------===//

/// Extends PresFixture with the sequence/byte shapes the gather pass
/// inspects.
struct GatherFixture : PresFixture {
  PresPrim *u8() {
    return P.make<PresPrim>(P.Mint.integer(8, false), B.prim("uint8_t"));
  }
  PresCounted *seqOf(PresNode *Elem) {
    auto *M = P.Mint.make<MintArray>(Elem->mint(), 0, 1 << 20);
    AllocSemantics AS;
    return P.make<PresCounted>(M, B.prim("seq"), Elem, "_length", "_buffer",
                               "_maximum", AS);
  }
  SeqPlan seqPlan(PresNode *Item, std::string Label) {
    SeqPlan Plan;
    Plan.Label = std::move(Label);
    Plan.Encode = true;
    PlanItem It;
    It.Name = "data";
    It.Pres = Item;
    Plan.Items = {It};
    Plan.Steps = {segStep(0)};
    return Plan;
  }
};

TEST(GatherPass, RewritesDenseSegmentsInEncodeRequestPlans) {
  GatherFixture F;
  WireLayout L(WireKind::CdrLE);
  BackendOptions O;
  std::string Err;
  ASSERT_TRUE(parsePassList("none,memcpy,gather", O, Err));
  SeqPlan Plan = F.seqPlan(F.seqOf(F.i32()), "op_encode_request");
  PassPipeline(O, L).run(Plan);
  ASSERT_EQ(Plan.Steps.size(), 1u);
  EXPECT_EQ(Plan.Steps[0].Kind, StepKind::GatherRef);
  EXPECT_EQ(Plan.Steps[0].GatherMinBytes, DefaultGatherMinBytes);
}

TEST(GatherPass, LeavesRepliesAndDecodesAlone) {
  // Borrowed spans must outlive the send; reply encoding runs inside the
  // dispatch frame where that cannot be guaranteed, so only client
  // request plans gather (DESIGN.md §11).
  GatherFixture F;
  WireLayout L(WireKind::CdrLE);
  BackendOptions O;
  std::string Err;
  ASSERT_TRUE(parsePassList("none,memcpy,gather", O, Err));
  SeqPlan Reply = F.seqPlan(F.seqOf(F.i32()), "op_encode_reply");
  PassPipeline(O, L).run(Reply);
  EXPECT_EQ(Reply.Steps[0].Kind, StepKind::VariableSegment);

  SeqPlan Decode = F.seqPlan(F.seqOf(F.i32()), "op_decode_request");
  Decode.Encode = false;
  PassPipeline(O, L).run(Decode);
  EXPECT_EQ(Decode.Steps[0].Kind, StepKind::VariableSegment);
}

TEST(GatherPass, SwappedWireKeepsTheCopy) {
  // XDR is big-endian: the marshal copy also swaps, so there is no dense
  // byte-identical span to borrow.
  GatherFixture F;
  WireLayout L(WireKind::Xdr);
  BackendOptions O;
  std::string Err;
  ASSERT_TRUE(parsePassList("none,memcpy,gather", O, Err));
  SeqPlan Plan = F.seqPlan(F.seqOf(F.i32()), "op_encode_request");
  PassPipeline(O, L).run(Plan);
  EXPECT_EQ(Plan.Steps[0].Kind, StepKind::VariableSegment);
}

TEST(GatherPass, WithoutMemcpyOnlyByteArraysGather) {
  // The wide cases replace the memcpy pass's bulk copies; without that
  // pass the emitter marshals per element and only byte arrays (always a
  // dense copy) remain gatherable.
  GatherFixture F;
  WireLayout L(WireKind::CdrLE);
  BackendOptions O;
  std::string Err;
  ASSERT_TRUE(parsePassList("none,gather", O, Err));
  SeqPlan Ints = F.seqPlan(F.seqOf(F.i32()), "op_encode_request");
  PassPipeline(O, L).run(Ints);
  EXPECT_EQ(Ints.Steps[0].Kind, StepKind::VariableSegment);

  SeqPlan Bytes = F.seqPlan(F.seqOf(F.u8()), "op_encode_request");
  PassPipeline(O, L).run(Bytes);
  EXPECT_EQ(Bytes.Steps[0].Kind, StepKind::GatherRef);
}

//===----------------------------------------------------------------------===//
// Structural keys
//===----------------------------------------------------------------------===//

TEST(StructureKey, IdenticalStructuresShareKeys) {
  PresFixture F;
  PresStruct *A = F.structOf("Pt", {{"x", F.i32()}, {"y", F.i32()}});
  PresStruct *B = F.structOf("Pt", {{"x", F.i32()}, {"y", F.i32()}});
  EXPECT_NE(A, B);
  EXPECT_EQ(presStructureKey(A), presStructureKey(B));
}

TEST(StructureKey, FieldNamesAndTypesDistinguish) {
  PresFixture F;
  PresStruct *A = F.structOf("Pt", {{"x", F.i32()}, {"y", F.i32()}});
  PresStruct *B = F.structOf("Pt", {{"x", F.i32()}, {"z", F.i32()}});
  PresStruct *C = F.structOf("Pt", {{"x", F.i32()}, {"y", F.i64()}});
  EXPECT_NE(presStructureKey(A), presStructureKey(B));
  EXPECT_NE(presStructureKey(A), presStructureKey(C));
}

TEST(StructureKey, RecursiveTypesTerminate) {
  PresFixture F;
  auto MakeList = [&]() -> PresStruct * {
    auto *NodeM = F.P.Mint.make<MintStruct>(std::vector<MintStructElem>{});
    auto *OptM = F.P.Mint.make<MintArray>(NodeM, 0, 1);
    auto *S = F.P.make<PresStruct>(NodeM, F.B.prim("node"),
                                   std::vector<PresField>{});
    AllocSemantics AS;
    auto *Next = F.P.make<PresOptPtr>(OptM, F.B.ptr(F.B.prim("node")), S, AS);
    NodeM->elems().push_back(
        MintStructElem{F.P.Mint.integer(32, true), "item"});
    NodeM->elems().push_back(MintStructElem{OptM, "next"});
    auto *Item = F.i32();
    S->fieldsMut().push_back(PresField{"item", Item});
    S->fieldsMut().push_back(PresField{"next", Next});
    return S;
  };
  PresStruct *A = MakeList();
  PresStruct *B = MakeList();
  std::string KeyA = presStructureKey(A);
  EXPECT_EQ(KeyA, presStructureKey(B));
  EXPECT_NE(KeyA.find("@"), std::string::npos)
      << "cycle must close via a back-reference: " << KeyA;
}

//===----------------------------------------------------------------------===//
// Builder + dump
//===----------------------------------------------------------------------===//

TEST(PlanBuilder, AnalyzesItemsAndEmitsOneSegmentEach) {
  PresFixture F;
  PresPrim *A = F.i32();
  auto *VoidP = F.P.make<PresVoid>(F.P.Mint.voidType());
  PresStruct *S = F.structOf("Pt", {{"x", F.i32()}, {"y", F.i32()}});
  WireLayout L(WireKind::CdrLE);
  std::set<const PresNode *> Active;
  SeqPlan Plan = buildSeqPlan({A, VoidP, S}, {"a", "v", "s"}, L,
                              /*Encode=*/true, /*ServerSide=*/false, Active);

  ASSERT_EQ(Plan.Items.size(), 3u);
  EXPECT_TRUE(Plan.Items[0].Scalar);
  EXPECT_TRUE(Plan.Items[0].Fixed);
  EXPECT_TRUE(Plan.Items[0].CoalesceOK);
  EXPECT_FALSE(Plan.Items[1].Fixed); // void: no layout, no step
  EXPECT_TRUE(Plan.Items[2].Fixed);
  EXPECT_FALSE(Plan.Items[2].Scalar);
  EXPECT_TRUE(Plan.Items[2].OutOfLine) << "builder is pre-inline-pass";
  // One VariableSegment per non-void item.
  ASSERT_EQ(Plan.Steps.size(), 2u);
  EXPECT_EQ(Plan.Steps[0].Item, 0u);
  EXPECT_EQ(Plan.Steps[1].Item, 2u);
}

TEST(PlanDump, RendersStableText) {
  WireLayout L(WireKind::CdrLE);
  BackendOptions O;
  SeqPlan Plan;
  Plan.Label = "op_encode_request";
  Plan.Encode = true;
  Plan.Items = {fixedItem("a", 4, 4), fixedItem("b", 4, 4)};
  MarshalStep Hook;
  Hook.Kind = StepKind::FramingHook;
  Hook.Hook = HookKind::RequestHeader;
  Plan.Steps = {Hook, segStep(0), segStep(1)};
  SeqPlan Before = Plan;
  PassPipeline(O, L).run(Plan);

  std::string Text = dumpSeqPlan(Before, Plan);
  EXPECT_NE(Text.find("== op_encode_request (encode)"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("framing request_header"), std::string::npos) << Text;
  EXPECT_NE(Text.find("segment [0] a"), std::string::npos) << Text;
  EXPECT_NE(Text.find("chunk size=8 align=4"), std::string::npos) << Text;
  EXPECT_NE(Text.find("[1] b off=4 size=4"), std::string::npos) << Text;
}

} // namespace
