//===- tests/SupportTests.cpp - support library unit tests ----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/CodeWriter.h"
#include "support/Diagnostics.h"
#include "support/StringExtras.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

struct Base {
  enum class Kind { A, B } K;
  explicit Base(Kind K) : K(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->K == Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->K == Kind::B; }
};

TEST(Casting, IsaCastDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_EQ(cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(dyn_cast_or_null<DerivedA>(static_cast<Base *>(nullptr)),
            nullptr);
}

TEST(CodeWriter, IndentationAndBlocks) {
  CodeWriter W;
  W.open("if (x)");
  W.line("y = 1;");
  W.open("while (z)");
  W.line("--z;");
  W.close();
  W.close();
  EXPECT_EQ(W.str(), "if (x) {\n  y = 1;\n  while (z) {\n    --z;\n  }\n}\n");
}

TEST(CodeWriter, PrintThenLineStaysOnOneLine) {
  CodeWriter W;
  W.indent();
  W.print("int x");
  W.line(" = 3;");
  EXPECT_EQ(W.str(), "  int x = 3;\n");
}

TEST(CodeWriter, BlankLineHasNoIndent) {
  CodeWriter W;
  W.indent();
  W.blank();
  W.line("a");
  EXPECT_EQ(W.str(), "\n  a\n");
}

TEST(StringExtras, IsCIdentifier) {
  EXPECT_TRUE(isCIdentifier("foo_bar9"));
  EXPECT_TRUE(isCIdentifier("_x"));
  EXPECT_FALSE(isCIdentifier("9foo"));
  EXPECT_FALSE(isCIdentifier(""));
  EXPECT_FALSE(isCIdentifier("a-b"));
}

TEST(StringExtras, CaseConversion) {
  EXPECT_EQ(toUpper("aB9_z"), "AB9_Z");
  EXPECT_EQ(toLower("Ab9_Z"), "ab9_z");
}

TEST(StringExtras, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
}

TEST(StringExtras, EscapeCString) {
  EXPECT_EQ(escapeCString("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(escapeCString(std::string("\x01\x7f", 2)), "\\x01\\x7f");
}

TEST(StringExtras, SanitizeIdentifier) {
  EXPECT_EQ(sanitizeIdentifier("a-b.c"), "a_b_c");
  EXPECT_EQ(sanitizeIdentifier("9lives"), "_9lives");
  EXPECT_EQ(sanitizeIdentifier(""), "_");
}

TEST(StringExtras, Split) {
  auto Parts = split("a::b", ':');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[2], "b");
}

TEST(StringExtras, StartsEndsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(endsWith("file.idl", ".idl"));
  EXPECT_FALSE(endsWith("idl", ".idl"));
}

TEST(Diagnostics, RenderWithLocation) {
  DiagnosticEngine D;
  int F = D.addFile("test.idl");
  D.error(SourceLoc(F, 3, 7), "something went wrong");
  ASSERT_EQ(D.diagnostics().size(), 1u);
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.render(D.diagnostics()[0]),
            "test.idl:3:7: error: something went wrong");
}

TEST(Diagnostics, WarningsAreNotErrors) {
  DiagnosticEngine D;
  D.warning(SourceLoc(), "heads up");
  EXPECT_FALSE(D.hasErrors());
  EXPECT_EQ(D.render(D.diagnostics()[0]), "warning: heads up");
}

TEST(Diagnostics, FileInterningIsStable) {
  DiagnosticEngine D;
  int A = D.addFile("a.idl");
  int B = D.addFile("b.idl");
  EXPECT_EQ(D.addFile("a.idl"), A);
  EXPECT_NE(A, B);
  EXPECT_EQ(D.fileName(B), "b.idl");
  EXPECT_EQ(D.fileName(99), "<unknown>");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine D;
  D.error(SourceLoc(), "x");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diagnostics().empty());
}

} // namespace
