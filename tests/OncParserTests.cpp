//===- tests/OncParserTests.cpp - ONC RPC front-end tests -----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "frontends/oncrpc/OncFrontEnd.h"
#include "support/Diagnostics.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

std::unique_ptr<AoiModule> parseOk(const std::string &Src) {
  DiagnosticEngine D;
  auto M = parseOncIdl(Src, "t.x", D);
  EXPECT_TRUE(M) << D.renderAll();
  return M;
}

void parseFail(const std::string &Src, const std::string &MsgPart) {
  DiagnosticEngine D;
  auto M = parseOncIdl(Src, "t.x", D);
  EXPECT_FALSE(M && !D.hasErrors());
  EXPECT_NE(D.renderAll().find(MsgPart), std::string::npos)
      << D.renderAll();
}

TEST(OncParser, PaperMailExample) {
  auto M = parseOk(R"(
    program Mail {
      version MailVers {
        void SEND(string) = 1;
      } = 1;
    } = 0x20000001;)");
  ASSERT_EQ(M->interfaces().size(), 1u);
  const AoiInterface &If = *M->interfaces()[0];
  EXPECT_EQ(If.Name, "Mail");
  EXPECT_EQ(If.ProgramNumber, 0x20000001u);
  EXPECT_EQ(If.VersionNumber, 1u);
  ASSERT_EQ(If.Operations.size(), 1u);
  EXPECT_EQ(If.Operations[0].Name, "SEND");
  EXPECT_EQ(If.Operations[0].RequestCode, 1u);
  ASSERT_EQ(If.Operations[0].Params.size(), 1u);
  EXPECT_TRUE(isa<AoiString>(If.Operations[0].Params[0].Type));
}

TEST(OncParser, StructWithOpaqueAndVariableArrays) {
  auto M = parseOk(R"(
    struct blob {
      opaque fixed[16];
      opaque var<64>;
      int values<>;
      string name<255>;
    };)");
  const auto *S = cast<AoiStruct>(M->namedTypes().at(0));
  ASSERT_EQ(S->fields().size(), 4u);
  const auto *A = cast<AoiArray>(S->fields()[0].Type);
  EXPECT_EQ(cast<AoiPrimitive>(A->elem())->prim(), AoiPrimKind::Octet);
  EXPECT_EQ(A->dims()[0], 16u);
  EXPECT_EQ(cast<AoiSequence>(S->fields()[1].Type)->bound(), 64u);
  EXPECT_EQ(cast<AoiSequence>(S->fields()[2].Type)->bound(), 0u);
  EXPECT_EQ(cast<AoiString>(S->fields()[3].Type)->bound(), 255u);
}

TEST(OncParser, HyperAndUnsigned) {
  auto M = parseOk("struct w { hyper h; unsigned hyper uh;\n"
                   "  unsigned int u; u_int u2; };");
  const auto *S = cast<AoiStruct>(M->namedTypes().at(0));
  EXPECT_EQ(cast<AoiPrimitive>(S->fields()[0].Type)->prim(),
            AoiPrimKind::LongLong);
  EXPECT_EQ(cast<AoiPrimitive>(S->fields()[1].Type)->prim(),
            AoiPrimKind::ULongLong);
  EXPECT_EQ(cast<AoiPrimitive>(S->fields()[2].Type)->prim(),
            AoiPrimKind::ULong);
  EXPECT_EQ(cast<AoiPrimitive>(S->fields()[3].Type)->prim(),
            AoiPrimKind::ULong);
}

TEST(OncParser, SelfReferentialListViaOptional) {
  auto M = parseOk(R"(
    struct node {
      int item;
      node *next;
    };)");
  const auto *S = cast<AoiStruct>(M->namedTypes().at(0));
  const auto *Opt = cast<AoiOptional>(S->fields()[1].Type);
  EXPECT_EQ(Opt->elem(), S);
}

TEST(OncParser, UnionWithVoidArm) {
  auto M = parseOk(R"(
    union result switch (int status) {
    case 0: void;
    case 1: int value;
    default: void;
    };)");
  const auto *U = cast<AoiUnion>(M->namedTypes().at(0));
  ASSERT_EQ(U->cases().size(), 3u);
  EXPECT_EQ(U->cases()[0].Type, nullptr);
  EXPECT_NE(U->cases()[1].Type, nullptr);
  EXPECT_TRUE(U->defaultCase());
}

TEST(OncParser, EnumWithExplicitValues) {
  auto M = parseOk("enum color { RED = 1, BLUE = 4, GREEN };");
  const auto *E = cast<AoiEnum>(M->namedTypes().at(0));
  EXPECT_EQ(E->enumerators()[0].Value, 1);
  EXPECT_EQ(E->enumerators()[1].Value, 4);
  EXPECT_EQ(E->enumerators()[2].Value, 5);
}

TEST(OncParser, ConstsUsableAsBoundsAndNumbers) {
  auto M = parseOk(R"(
    const MAXN = 8;
    typedef int small<MAXN>;
    program P { version V { void F(void) = 1; } = 1; } = MAXN;)");
  const auto *TD = cast<AoiTypedef>(M->namedTypes().at(0));
  EXPECT_EQ(cast<AoiSequence>(TD->aliased())->bound(), 8u);
  EXPECT_EQ(M->interfaces()[0]->ProgramNumber, 8u);
}

TEST(OncParser, MultipleVersionsBecomeInterfaces) {
  auto M = parseOk(R"(
    program P {
      version V1 { void A(void) = 1; } = 1;
      version V2 { void A(void) = 1; int B(int) = 2; } = 2;
    } = 77;)");
  ASSERT_EQ(M->interfaces().size(), 2u);
  EXPECT_EQ(M->interfaces()[0]->VersionNumber, 1u);
  EXPECT_EQ(M->interfaces()[1]->VersionNumber, 2u);
  EXPECT_EQ(M->interfaces()[1]->Operations.size(), 2u);
  EXPECT_EQ(M->interfaces()[1]->ProgramNumber, 77u);
}

TEST(OncParser, ProcedureNumbersAreDeclared) {
  auto M = parseOk(R"(
    program P { version V {
      void A(void) = 10;
      void B(void) = 20;
    } = 1; } = 1;)");
  EXPECT_EQ(M->interfaces()[0]->Operations[0].RequestCode, 10u);
  EXPECT_EQ(M->interfaces()[0]->Operations[1].RequestCode, 20u);
}

TEST(OncParser, TypedefOfSequence) {
  auto M = parseOk("typedef int intseq<>;");
  const auto *TD = cast<AoiTypedef>(M->namedTypes().at(0));
  EXPECT_TRUE(isa<AoiSequence>(TD->aliased()));
}

// --- Error cases ---

TEST(OncParserErrors, UnknownTypeInProc) {
  parseFail("program P { version V { void F(nope) = 1; } = 1; } = 1;",
            "unknown type");
}

TEST(OncParserErrors, UnknownConstant) {
  parseFail("typedef int x<WAT>;", "unknown constant");
}

TEST(OncParserErrors, OpaqueWithoutArray) {
  parseFail("struct s { opaque o; };", "opaque requires an array");
}

TEST(OncParserErrors, ProgramWithoutVersions) {
  parseFail("program P { } = 1;", "declares no versions");
}

} // namespace
