//===- tests/SamplerTests.cpp - flight recorder tests ---------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the runtime flight recorder: the gauge block and its guarded
/// update helpers, the sampler thread's lifecycle and ring, the stall
/// watchdog (detection, one-count-per-stall, post-mortem dump), and every
/// exporter (JSONL, post-mortem JSON, Chrome counter events, Prometheus
/// text exposition).
///
/// Fixture naming is load-bearing for CI: `Sampler.*` runs under TSan, so
/// every test here reads the ring only after flick_sampler_stop().  The
/// `SamplerWatch.*` tests exercise the documented benign race -- the
/// sampler's relaxed atomic reads of a plainly-written watched metrics
/// block -- and are excluded from the TSan regex on purpose.
///
//===----------------------------------------------------------------------===//

#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include <chrono>
#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <thread>

namespace {

void sleepMs(int Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

/// Stops the sampler and disables gauges on scope exit, so a failing
/// ASSERT cannot leak a running sampler thread into the next test.
struct ScopedSampler {
  ~ScopedSampler() {
    flick_sampler_stop();
    flick_gauges_disable();
  }
};

uint64_t gauge(std::atomic<uint64_t> flick_gauges::*F) {
  return (flick_gauges_global.*F).load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Gauges
//===----------------------------------------------------------------------===//

TEST(Sampler, GaugeHooksAreNoopsWhenDisabled) {
  flick_gauges_disable();
  flick_gauges_global.queue_depth.store(0, std::memory_order_relaxed);
  flick_gauge_add(&flick_gauges::queue_depth, 5);
  EXPECT_EQ(gauge(&flick_gauges::queue_depth), 0u);
  EXPECT_EQ(flick_gauge_lock_begin(), 0u);
  flick_gauge_lock_end(0); // must not count an acquisition
  EXPECT_EQ(gauge(&flick_gauges::lock_acquires), 0u);
  EXPECT_EQ(flick_stall_mark_begin(), -1);
  flick_stall_mark_end(-1); // ignored
}

TEST(Sampler, EnableZeroesTheBlock) {
  ScopedSampler Guard;
  flick_gauges_global.rpcs_completed.store(99, std::memory_order_relaxed);
  flick_gauges_global.queue_depth.store(7, std::memory_order_relaxed);
  flick_gauges_enable();
  EXPECT_TRUE(flick_gauges_on());
  EXPECT_EQ(gauge(&flick_gauges::rpcs_completed), 0u);
  EXPECT_EQ(gauge(&flick_gauges::queue_depth), 0u);
  flick_gauge_add(&flick_gauges::rpcs_completed, 2);
  EXPECT_EQ(gauge(&flick_gauges::rpcs_completed), 2u);
}

TEST(Sampler, SubSaturatesAtZero) {
  // A gauge enabled mid-conversation sees decrements whose increments
  // predate the enable; it must undercount briefly, never wrap.
  ScopedSampler Guard;
  flick_gauges_enable();
  flick_gauge_sub(&flick_gauges::inflight_rpcs, 1);
  EXPECT_EQ(gauge(&flick_gauges::inflight_rpcs), 0u);
  flick_gauge_add(&flick_gauges::inflight_rpcs, 5);
  flick_gauge_sub(&flick_gauges::inflight_rpcs, 10);
  EXPECT_EQ(gauge(&flick_gauges::inflight_rpcs), 0u);
  flick_gauge_add(&flick_gauges::inflight_rpcs, 10);
  flick_gauge_sub(&flick_gauges::inflight_rpcs, 3);
  EXPECT_EQ(gauge(&flick_gauges::inflight_rpcs), 7u);
}

TEST(Sampler, LockBracketCountsAcquisitions) {
  ScopedSampler Guard;
  flick_gauges_enable();
  uint64_t T0 = flick_gauge_lock_begin();
  EXPECT_NE(T0, 0u);
  flick_gauge_lock_end(T0);
  EXPECT_EQ(gauge(&flick_gauges::lock_acquires), 1u);
  // Wait accumulation is monotone (possibly zero at ns resolution).
  uint64_t Wait1 = gauge(&flick_gauges::lock_wait_ns);
  uint64_t T1 = flick_gauge_lock_begin();
  sleepMs(2);
  flick_gauge_lock_end(T1);
  EXPECT_EQ(gauge(&flick_gauges::lock_acquires), 2u);
  EXPECT_GT(gauge(&flick_gauges::lock_wait_ns), Wait1);
}

//===----------------------------------------------------------------------===//
// Sampler lifecycle and ring
//===----------------------------------------------------------------------===//

TEST(Sampler, StartStopLifecycle) {
  ScopedSampler Guard;
  EXPECT_FALSE(flick_sampler_running());
  flick_sampler_opts O;
  O.interval_us = 200;
  ASSERT_EQ(flick_sampler_start(&O), FLICK_OK);
  EXPECT_TRUE(flick_sampler_running());
  EXPECT_TRUE(flick_gauges_on()) << "start must enable gauges";
  EXPECT_EQ(flick_sampler_start(&O), FLICK_ERR_ALLOC) << "one per process";
  sleepMs(3);
  flick_sampler_stop();
  EXPECT_FALSE(flick_sampler_running());
  EXPECT_FALSE(flick_gauges_on()) << "stop must disable gauges";
  // The final on-stop sample guarantees at least one even for a session
  // shorter than the interval.
  EXPECT_GE(flick_sampler_count(), 1u);
  // Restart works and resets the ring.
  ASSERT_EQ(flick_sampler_start(&O), FLICK_OK);
  flick_sampler_stop();
}

TEST(Sampler, RejectsUnusableOpts) {
  flick_sampler_opts O;
  O.interval_us = 0;
  EXPECT_EQ(flick_sampler_start(&O), FLICK_ERR_ALLOC);
  O = flick_sampler_opts{};
  O.ring_cap = 0;
  EXPECT_EQ(flick_sampler_start(&O), FLICK_ERR_ALLOC);
  EXPECT_FALSE(flick_sampler_running());
}

TEST(Sampler, RingKeepsTheMostRecentSamples) {
  ScopedSampler Guard;
  flick_sampler_opts O;
  O.interval_us = 100;
  O.ring_cap = 4;
  ASSERT_EQ(flick_sampler_start(&O), FLICK_OK);
  sleepMs(20); // far more ticks than the ring holds
  flick_sampler_stop();
  EXPECT_EQ(flick_sampler_count(), 4u) << "retained count caps at ring_cap";
  double PrevT = -1;
  for (size_t I = 0; I != flick_sampler_count(); ++I) {
    flick_sample Smp;
    ASSERT_TRUE(flick_sampler_get(I, &Smp));
    EXPECT_GT(Smp.t_us, PrevT) << "samples are oldest-first";
    PrevT = Smp.t_us;
  }
  flick_sample Smp;
  EXPECT_FALSE(flick_sampler_get(4, &Smp)) << "out of range";
}

TEST(Sampler, SamplesSeeGaugeUpdates) {
  ScopedSampler Guard;
  flick_sampler_opts O;
  O.interval_us = 200;
  ASSERT_EQ(flick_sampler_start(&O), FLICK_OK);
  flick_gauge_add(&flick_gauges::queue_depth, 3);
  flick_gauge_add(&flick_gauges::rpcs_completed, 40);
  sleepMs(5);
  flick_sampler_stop();
  ASSERT_GE(flick_sampler_count(), 1u);
  flick_sample Last;
  ASSERT_TRUE(flick_sampler_get(flick_sampler_count() - 1, &Last));
  EXPECT_EQ(Last.queue_depth, 3u);
  EXPECT_EQ(Last.rpcs_completed, 40u);
}

//===----------------------------------------------------------------------===//
// Stall watchdog
//===----------------------------------------------------------------------===//

TEST(Sampler, WatchdogFlagsStallOnceAndDumpsPostmortem) {
  ScopedSampler Guard;
  std::string Path =
      testing::TempDir() + "flick_sampler_postmortem_test.json";
  std::remove(Path.c_str());
  flick_sampler_opts O;
  O.interval_us = 200;
  O.stall_deadline_us = 500;
  O.postmortem_path = Path.c_str();
  ASSERT_EQ(flick_sampler_start(&O), FLICK_OK);

  int Slot = flick_stall_mark_begin();
  ASSERT_GE(Slot, 0);
  sleepMs(10); // several ticks past the 0.5 ms deadline
  EXPECT_EQ(flick_sampler_stalls(), 1u)
      << "one stuck RPC is one detection, not one per tick";
  flick_stall_mark_end(Slot);
  sleepMs(3);
  flick_sampler_stop();

  flick_sample Last;
  ASSERT_TRUE(flick_sampler_get(flick_sampler_count() - 1, &Last));
  EXPECT_EQ(Last.stalled_rpcs, 0u) << "completion clears the slot";
  EXPECT_EQ(Last.stalls_detected, 1u);

  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr) << "watchdog must leave a post-mortem behind";
  std::string Doc;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Doc.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_NE(Doc.find("\"stalls_detected\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"samples\": ["), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"build\": {"), std::string::npos) << Doc;
}

TEST(Sampler, CompletedRpcIsNeverAStall) {
  ScopedSampler Guard;
  flick_sampler_opts O;
  O.interval_us = 200;
  O.stall_deadline_us = 500;
  ASSERT_EQ(flick_sampler_start(&O), FLICK_OK);
  int Slot = flick_stall_mark_begin();
  flick_stall_mark_end(Slot); // completes well inside the deadline
  sleepMs(5);
  flick_sampler_stop();
  EXPECT_EQ(flick_sampler_stalls(), 0u);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(Sampler, JsonlHeaderThenOneLinePerSample) {
  ScopedSampler Guard;
  flick_sampler_opts O;
  O.interval_us = 300;
  ASSERT_EQ(flick_sampler_start(&O), FLICK_OK);
  flick_gauge_add(&flick_gauges::rpcs_completed, 10);
  sleepMs(5);
  flick_sampler_stop();

  std::string Jsonl = flick_sampler_to_jsonl();
  size_t Lines = 0;
  for (char C : Jsonl)
    Lines += C == '\n';
  EXPECT_EQ(Lines, flick_sampler_count() + 1) << Jsonl;
  EXPECT_EQ(Jsonl.find("{\"type\": \"header\""), 0u) << Jsonl;
  EXPECT_NE(Jsonl.find("\"build\": {"), std::string::npos) << Jsonl;
  EXPECT_NE(Jsonl.find("\"interval_us\": 300.0"), std::string::npos) << Jsonl;
  EXPECT_NE(Jsonl.find("\"rpcs_per_s\": "), std::string::npos) << Jsonl;
  EXPECT_NE(Jsonl.find("\"lock_wait_frac\": "), std::string::npos) << Jsonl;
}

TEST(Sampler, ChromeCountersSpliceIntoATrace) {
  ScopedSampler Guard;
  flick_sampler_opts O;
  O.interval_us = 300;
  ASSERT_EQ(flick_sampler_start(&O), FLICK_OK);
  sleepMs(3);
  flick_sampler_stop();
  ASSERT_GE(flick_sampler_count(), 1u);

  std::string Frag = flick_sampler_chrome_counters(0);
  EXPECT_NE(Frag.find("\"ph\": \"C\""), std::string::npos) << Frag;
  EXPECT_NE(Frag.find("\"name\": \"queue_depth\""), std::string::npos);
  EXPECT_NE(Frag.find("\"name\": \"rpcs_per_s\""), std::string::npos);
  EXPECT_EQ(Frag[0], '\n') << "no leading comma on the first event";
  EXPECT_NE(Frag.find(",\n    {"), std::string::npos)
      << "later events are comma-separated";

  // Spliced into a tracer's export, the document stays a Chrome trace:
  // span B/E events and counter C events in one traceEvents array.
  flick_tracer T;
  flick_span Storage[8];
  flick_trace_enable(&T, Storage, 8);
  flick_span_begin(FLICK_SPAN_RPC, "rpc");
  flick_span_end();
  flick_trace_disable();
  std::string Json = flick_trace_to_chrome_json(&T, Frag);
  EXPECT_NE(Json.find("\"ph\": \"B\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"ph\": \"C\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
}

TEST(Sampler, EpochOffsetIsZeroWithoutATracer) {
  EXPECT_EQ(flick_sampler_epoch_offset_us(nullptr), 0.0);
}

//===----------------------------------------------------------------------===//
// Prometheus exposition
//===----------------------------------------------------------------------===//

TEST(Sampler, PrometheusGaugesOnlyWhenNoMetricsBlock) {
  std::string Text = flick_metrics_to_prometheus(nullptr);
  EXPECT_EQ(Text.find("# HELP flick_build_info"), 0u) << Text;
  EXPECT_NE(Text.find("flick_build_info{git=\""), std::string::npos);
  EXPECT_NE(Text.find("# TYPE flick_queue_depth gauge"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE flick_rpcs_completed_total counter"),
            std::string::npos);
  EXPECT_EQ(Text.find("flick_rpcs_sent_total"), std::string::npos)
      << "metrics families must not appear without a block";
}

TEST(Sampler, PrometheusHistogramIsCumulativeInSeconds) {
  flick_metrics M;
  M.rpcs_sent = 3;
  M.request_bytes = 4096;
  // 0.5 us -> bucket 0 (le 1e-06), 3 us -> bucket 2 (le 4e-06),
  // 1000 us -> bucket 10 (le 0.001024).
  flick_hist_record(&M.rpc_latency, 0.5);
  flick_hist_record(&M.rpc_latency, 3.0);
  flick_hist_record(&M.rpc_latency, 1000.0);
  std::string Text = flick_metrics_to_prometheus(&M);

  EXPECT_NE(Text.find("flick_rpcs_sent_total 3"), std::string::npos) << Text;
  EXPECT_NE(Text.find("flick_request_bytes_total 4096"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE flick_rpc_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(Text.find("flick_rpc_latency_seconds_bucket{le=\"1e-06\"} 1"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("flick_rpc_latency_seconds_bucket{le=\"4e-06\"} 2"),
            std::string::npos)
      << "buckets are cumulative: " << Text;
  EXPECT_NE(Text.find("flick_rpc_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("flick_rpc_latency_seconds_count 3"),
            std::string::npos);
  EXPECT_NE(Text.find("flick_rpc_latency_seconds_sum 0.0010035"),
            std::string::npos)
      << "sum is in seconds: " << Text;
}

TEST(Sampler, PrometheusEmptyHistogramStillWellFormed) {
  flick_metrics M;
  std::string Text = flick_metrics_to_prometheus(&M);
  // No observations: no finite buckets, but +Inf/sum/count must exist so
  // the family stays scrapable.
  EXPECT_NE(Text.find("flick_rpc_latency_seconds_bucket{le=\"+Inf\"} 0"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("flick_rpc_latency_seconds_count 0"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Watched metrics excerpt (excluded from the TSan regex: the sampler's
// relaxed atomic reads race the owner's plain writes by design)
//===----------------------------------------------------------------------===//

TEST(SamplerWatch, WatchedMetricsAppearInSamples) {
  ScopedSampler Guard;
  static flick_metrics M; // outlives the session, as documented
  M = flick_metrics{};
  flick_sampler_opts O;
  O.interval_us = 200;
  ASSERT_EQ(flick_sampler_start(&O), FLICK_OK);
  flick_sampler_watch(&M);
  M.rpcs_sent = 17;
  M.request_bytes = 2048;
  sleepMs(5);
  flick_sampler_stop();
  flick_sampler_watch(nullptr);

  flick_sample Last;
  ASSERT_TRUE(flick_sampler_get(flick_sampler_count() - 1, &Last));
  EXPECT_EQ(Last.m_rpcs_sent, 17u);
  EXPECT_EQ(Last.m_request_bytes, 2048u);

  std::string Jsonl = flick_sampler_to_jsonl();
  EXPECT_NE(Jsonl.find("\"m_rpcs_sent\": 17"), std::string::npos) << Jsonl;
}

} // namespace
