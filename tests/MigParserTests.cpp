//===- tests/MigParserTests.cpp - MIG front-end tests ---------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "frontends/mig/MigFrontEnd.h"
#include "support/Diagnostics.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

std::unique_ptr<AoiModule> parseOk(const std::string &Src) {
  DiagnosticEngine D;
  auto M = parseMigDefs(Src, "t.defs", D);
  EXPECT_TRUE(M) << D.renderAll();
  return M;
}

void parseFail(const std::string &Src, const std::string &MsgPart) {
  DiagnosticEngine D;
  auto M = parseMigDefs(Src, "t.defs", D);
  EXPECT_FALSE(M && !D.hasErrors());
  EXPECT_NE(D.renderAll().find(MsgPart), std::string::npos)
      << D.renderAll();
}

TEST(MigParser, SubsystemAndRoutines) {
  auto M = parseOk(R"(
    subsystem counter 400;
    routine bump(delta : int; out total : int);
    simpleroutine ping(n : int);
  )");
  ASSERT_EQ(M->interfaces().size(), 1u);
  const AoiInterface &If = *M->interfaces()[0];
  EXPECT_EQ(If.Name, "counter");
  EXPECT_EQ(If.ProgramNumber, 400u);
  ASSERT_EQ(If.Operations.size(), 2u);
  EXPECT_EQ(If.Operations[0].Name, "bump");
  EXPECT_EQ(If.Operations[0].Params[1].Dir, AoiParamDir::Out);
  EXPECT_TRUE(If.Operations[1].Oneway);
}

TEST(MigParser, TypeAliasesAndMachConstants) {
  auto M = parseOk(R"(
    subsystem s 1;
    type count_t = MACH_MSG_TYPE_INTEGER_32;
    type tag_t = array[8] of char;
    routine f(c : count_t; t : tag_t);
  )");
  const auto *TD = cast<AoiTypedef>(M->namedTypes().at(0));
  EXPECT_EQ(cast<AoiPrimitive>(TD->aliased())->prim(), AoiPrimKind::Long);
  const auto *TD2 = cast<AoiTypedef>(M->namedTypes().at(1));
  EXPECT_TRUE(isa<AoiArray>(TD2->aliased()));
}

TEST(MigParser, VariableAndBoundedArrays) {
  auto M = parseOk(R"(
    subsystem s 1;
    routine f(a : array[] of int; b : array[*:64] of int);
  )");
  const AoiOperation &Op = M->interfaces()[0]->Operations[0];
  EXPECT_EQ(cast<AoiSequence>(Op.Params[0].Type)->bound(), 0u);
  EXPECT_EQ(cast<AoiSequence>(Op.Params[1].Type)->bound(), 64u);
}

TEST(MigParser, SkipReservesMessageIds) {
  auto M = parseOk(R"(
    subsystem s 1;
    routine a(x : int);
    skip;
    routine b(x : int);
  )");
  const AoiInterface &If = *M->interfaces()[0];
  EXPECT_EQ(If.Operations[0].RequestCode, 1u);
  EXPECT_EQ(If.Operations[1].RequestCode, 3u);
}

TEST(MigParserErrors, ArraysOfAggregatesRejected) {
  // The paper: MIG "cannot express arrays of non-atomic types".
  parseFail("subsystem s 1;\n"
            "routine f(a : array[] of array[2] of int);",
            "only hold scalar");
}

TEST(MigParserErrors, MissingSubsystem) {
  parseFail("routine f(x : int);", "starts with 'subsystem");
}

TEST(MigParserErrors, UnknownType) {
  parseFail("subsystem s 1;\nroutine f(x : mystery);", "unknown MIG type");
}

} // namespace
