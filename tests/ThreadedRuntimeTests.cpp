//===- tests/ThreadedRuntimeTests.cpp - parallel runtime tests ------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrency tests for ThreadedLink and flick_server_pool: request/reply
/// integrity across many client threads and pool workers, bounded-queue
/// backpressure (queue_full accounting), drain-then-stop shutdown, exact
/// merged metrics, and trace context crossing threads.  Every test is
/// deterministic in its assertions -- interleavings vary, the checked
/// outcomes do not -- and the suite runs under TSan in CI.
///
//===----------------------------------------------------------------------===//

#include "runtime/transport/ThreadedLink.h"
#include "runtime/flick_runtime.h"
#include <atomic>
#include <cstring>
#include <gtest/gtest.h>
#include <map>
#include <set>
#include <thread>
#include <vector>

using namespace flick;

namespace {

/// Dispatch that echoes the request payload back as the reply.
int echoDispatch(flick_server *, flick_buf *Req, flick_buf *Rep) {
  size_t N = Req->len - Req->pos;
  if (flick_buf_ensure(Rep, N) != FLICK_OK)
    return FLICK_ERR_ALLOC;
  std::memcpy(flick_buf_grab(Rep, N), Req->data + Req->pos, N);
  return FLICK_OK;
}

/// Dispatch that counts invocations through the servant hook and sends no
/// reply (oneway shape).
int countDispatch(flick_server *Srv, flick_buf *, flick_buf *) {
  static_cast<std::atomic<int> *>(Srv->impl)->fetch_add(1);
  return FLICK_OK;
}

/// Installs a zeroed metrics block for the enclosing scope and uninstalls
/// it on exit, so early ASSERT returns never leak collection state.
struct ScopedMetrics {
  flick_metrics M;
  ScopedMetrics() { flick_metrics_enable(&M); }
  ~ScopedMetrics() { flick_metrics_disable(); }
};

/// Same, for a tracer over caller-sized ring storage.
struct ScopedTracer {
  flick_tracer T;
  std::vector<flick_span> Storage;
  explicit ScopedTracer(uint32_t Cap = 256) : Storage(Cap) {
    flick_trace_enable(&T, Storage.data(), Cap);
  }
  ~ScopedTracer() { flick_trace_disable(); }
};

/// Fills \p N bytes with a pattern unique to (\p Seed, \p Call).
std::vector<uint8_t> pattern(unsigned Seed, unsigned Call, size_t N) {
  std::vector<uint8_t> V(N);
  for (size_t I = 0; I != N; ++I)
    V[I] = static_cast<uint8_t>(Seed * 131 + Call * 31 + I);
  return V;
}

/// Issues \p Calls echo RPCs of \p Bytes each over its own connection and
/// verifies every reply byte.  Returns the number of verified replies.
unsigned driveEchoes(ThreadedLink &Link, unsigned Seed, unsigned Calls,
                     size_t Bytes) {
  flick_client Cli;
  flick_client_init(&Cli, &Link.connect());
  unsigned Ok = 0;
  for (unsigned C = 0; C != Calls; ++C) {
    std::vector<uint8_t> Want = pattern(Seed, C, Bytes);
    flick_buf *Req = flick_client_begin(&Cli);
    if (flick_buf_ensure(Req, Bytes) != FLICK_OK)
      break;
    std::memcpy(flick_buf_grab(Req, Bytes), Want.data(), Bytes);
    if (flick_client_invoke(&Cli) != FLICK_OK)
      break;
    if (Cli.rep.len == Bytes &&
        std::memcmp(Cli.rep.data, Want.data(), Bytes) == 0)
      ++Ok;
  }
  flick_client_destroy(&Cli);
  return Ok;
}

TEST(ServerPool, EchoAcrossPoolPreservesPayloads) {
  ThreadedLink Link;
  flick_server_pool Pool;
  ASSERT_EQ(flick_server_pool_start(&Pool, &Link, echoDispatch, 4),
            FLICK_OK);

  const unsigned Clients = 4, Calls = 50;
  std::vector<unsigned> Verified(Clients, 0);
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I != Clients; ++I)
    Ts.emplace_back([&, I] {
      Verified[I] = driveEchoes(Link, I, Calls, 64 + I * 32);
    });
  for (auto &T : Ts)
    T.join();
  flick_server_pool_stop(&Pool);

  for (unsigned I = 0; I != Clients; ++I)
    EXPECT_EQ(Verified[I], Calls) << "client " << I;
}

TEST(ServerPool, StartStopAndWorkerCount) {
  ThreadedLink Link;
  flick_server_pool Pool;
  EXPECT_EQ(flick_server_pool_workers(&Pool), 0u);
  ASSERT_EQ(flick_server_pool_start(&Pool, &Link, echoDispatch, 3),
            FLICK_OK);
  EXPECT_EQ(flick_server_pool_workers(&Pool), 3u);
  // A running pool refuses a second start.
  EXPECT_EQ(flick_server_pool_start(&Pool, &Link, echoDispatch, 2),
            FLICK_ERR_ALLOC);
  // Zero workers is rejected up front.
  flick_server_pool Other;
  EXPECT_EQ(flick_server_pool_start(&Other, &Link, echoDispatch, 0),
            FLICK_ERR_ALLOC);
  flick_server_pool_stop(&Pool);
  EXPECT_EQ(flick_server_pool_workers(&Pool), 0u);
  flick_server_pool_stop(&Pool); // double stop is a no-op
}

TEST(ServerPool, DrainsQueuedRequestsBeforeStopping) {
  ThreadedLink Link;
  std::atomic<int> Handled{0};
  // Queue oneway-shaped requests BEFORE any worker exists: stop() must
  // still dispatch every one (drain-then-stop), not discard them.
  Channel &C = Link.connect();
  const int K = 7;
  for (int I = 0; I != K; ++I) {
    uint8_t B[8] = {static_cast<uint8_t>(I)};
    ASSERT_EQ(C.send(B, sizeof B), FLICK_OK);
  }
  EXPECT_EQ(Link.pendingRequests(), size_t(K));
  flick_server_pool Pool;
  ASSERT_EQ(
      flick_server_pool_start(&Pool, &Link, countDispatch, 2, &Handled),
      FLICK_OK);
  flick_server_pool_stop(&Pool);
  EXPECT_EQ(Handled.load(), K);
  EXPECT_EQ(Link.pendingRequests(), 0u);
}

TEST(ServerPool, MergesWorkerAndClientMetricsExactly) {
  ScopedMetrics Scope;
  flick_metrics &Main = Scope.M;
  ThreadedLink Link;
  flick_server_pool Pool;
  ASSERT_EQ(flick_server_pool_start(&Pool, &Link, echoDispatch, 3),
            FLICK_OK);

  const unsigned Clients = 2, Calls = 10;
  const size_t Bytes = 16;
  std::vector<flick_metrics> CliM(Clients);
  std::vector<unsigned> Verified(Clients, 0);
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I != Clients; ++I)
    Ts.emplace_back([&, I] {
      flick_metrics_enable(&CliM[I]);
      Verified[I] = driveEchoes(Link, I, Calls, Bytes);
      flick_metrics_disable();
    });
  for (auto &T : Ts)
    T.join();
  // Worker-side counters merge into Main here (the start-caller's block).
  flick_server_pool_stop(&Pool);
  for (flick_metrics &M : CliM)
    flick_metrics_merge(&Main, &M);

  for (unsigned I = 0; I != Clients; ++I)
    ASSERT_EQ(Verified[I], Calls);
  const uint64_t N = Clients * Calls;
  EXPECT_EQ(Main.rpcs_sent, N);
  EXPECT_EQ(Main.replies_received, N);
  EXPECT_EQ(Main.rpcs_handled, N);
  EXPECT_EQ(Main.replies_sent, N);
  EXPECT_EQ(Main.request_bytes, N * Bytes);
  EXPECT_EQ(Main.reply_bytes, N * Bytes);
  EXPECT_EQ(Main.server_request_bytes, N * Bytes);
  EXPECT_EQ(Main.server_reply_bytes, N * Bytes);
  // Clean shutdown must not show up as transport faults.
  EXPECT_EQ(Main.transport_errors, 0u);
  EXPECT_EQ(Main.decode_errors, 0u);
  EXPECT_EQ(Main.rpc_latency.count, N);
}

TEST(ThreadedLink, BackpressureCountsQueueFullOnce) {
  ThreadedLink Link(/*QueueCap=*/1);
  // Fill the queue from this thread so the sender below is guaranteed to
  // meet it full regardless of scheduling.
  Channel &Filler = Link.connect();
  uint8_t B[4] = {1, 2, 3, 4};
  ASSERT_EQ(Filler.send(B, sizeof B), FLICK_OK);
  ASSERT_EQ(Link.pendingRequests(), 1u);

  flick_metrics SenderM;
  int SendErr = -1;
  std::thread Sender([&] {
    flick_metrics_enable(&SenderM);
    Channel &C = Link.connect();
    SendErr = C.send(B, sizeof B); // full at entry: counts, then blocks
    flick_metrics_disable();
  });
  // No worker ever drains, so only shutdown can release the sender.
  Link.shutdown();
  Sender.join();
  EXPECT_EQ(SendErr, FLICK_ERR_TRANSPORT);
  EXPECT_EQ(SenderM.queue_full, 1u);
}

TEST(ThreadedLink, ShutdownUnblocksReceivers) {
  ThreadedLink Link;
  Channel &Conn = Link.connect();
  Channel &Worker = Link.workerEnd();
  int ConnErr = -1, WorkerErr = -1;
  std::thread ClientT([&] {
    std::vector<uint8_t> Out;
    ConnErr = Conn.recv(Out); // no reply will ever come
  });
  std::thread WorkerT([&] {
    std::vector<uint8_t> Out;
    WorkerErr = Worker.recv(Out); // no request will ever come
  });
  Link.shutdown();
  ClientT.join();
  WorkerT.join();
  EXPECT_EQ(ConnErr, FLICK_ERR_TRANSPORT);
  EXPECT_EQ(WorkerErr, FLICK_ERR_TRANSPORT);
}

TEST(ThreadedLink, SendAndRecvFailAfterShutdown) {
  ThreadedLink Link;
  Channel &Conn = Link.connect();
  Channel &Worker = Link.workerEnd();
  Link.shutdown();
  uint8_t B[4] = {9, 9, 9, 9};
  EXPECT_EQ(Conn.send(B, sizeof B), FLICK_ERR_TRANSPORT);
  std::vector<uint8_t> Out;
  EXPECT_EQ(Conn.recv(Out), FLICK_ERR_TRANSPORT);
  EXPECT_EQ(Worker.recv(Out), FLICK_ERR_TRANSPORT);
  Link.shutdown(); // idempotent
}

TEST(ThreadedLink, WorkerDrainsQueueAfterShutdown) {
  ThreadedLink Link;
  Channel &Conn = Link.connect();
  const int K = 5;
  for (int I = 0; I != K; ++I) {
    uint8_t B[4] = {static_cast<uint8_t>(0x10 + I)};
    ASSERT_EQ(Conn.send(B, sizeof B), FLICK_OK);
  }
  Link.shutdown();
  // Already-accepted requests still come out, in order, then the drained
  // queue fails.
  Channel &Worker = Link.workerEnd();
  for (int I = 0; I != K; ++I) {
    std::vector<uint8_t> Out;
    ASSERT_EQ(Worker.recv(Out), FLICK_OK) << "request " << I;
    ASSERT_EQ(Out.size(), 4u);
    EXPECT_EQ(Out[0], 0x10 + I);
  }
  std::vector<uint8_t> Out;
  EXPECT_EQ(Worker.recv(Out), FLICK_ERR_TRANSPORT);
}

TEST(ThreadedLink, ModeledWireTimeIsAccountedPerThread) {
  ThreadedLink Link;
  Link.setModel(NetworkModel::ethernet100());
  ScopedMetrics S;
  Channel &Conn = Link.connect();
  uint8_t B[64] = {};
  ASSERT_EQ(Conn.send(B, sizeof B), FLICK_OK);
  EXPECT_GT(S.M.wire_time_us, 0.0);
  EXPECT_DOUBLE_EQ(S.M.wire_time_us,
                   NetworkModel::ethernet100().wireTimeUs(sizeof B));
}

TEST(ThreadedTrace, ContextCrossesThreadsAndRingsAbsorb) {
  ScopedTracer Scope;
  flick_tracer &Main = Scope.T;

  ThreadedLink Link;
  flick_server_pool Pool;
  ASSERT_EQ(flick_server_pool_start(&Pool, &Link, echoDispatch, 2),
            FLICK_OK);
  // The client runs on this thread, so its spans land in Main directly;
  // the workers record into salted per-thread rings absorbed at stop.
  EXPECT_EQ(driveEchoes(Link, 7, 3, 32), 3u);
  flick_server_pool_stop(&Pool);

  std::map<uint64_t, std::vector<const flick_span *>> ByTrace;
  std::set<uint64_t> SpanIds;
  for (size_t I = 0; I != flick_trace_span_count(&Main); ++I) {
    const flick_span *Sp = flick_trace_span(&Main, I);
    EXPECT_TRUE(SpanIds.insert(Sp->span_id).second)
        << "span ids must stay unique across absorbed rings";
    ByTrace[Sp->trace_id].push_back(Sp);
  }
  ASSERT_EQ(ByTrace.size(), 3u) << "one trace per RPC";
  for (const auto &[Trace, Spans] : ByTrace) {
    // Client side: rpc root + send.  Server side (crossed threads): demux
    // root adopted via the out-of-band context + reply.
    std::map<int, const flick_span *> ByKind;
    for (const flick_span *Sp : Spans)
      ByKind[Sp->kind] = Sp;
    ASSERT_TRUE(ByKind.count(FLICK_SPAN_RPC));
    ASSERT_TRUE(ByKind.count(FLICK_SPAN_SEND));
    ASSERT_TRUE(ByKind.count(FLICK_SPAN_DEMUX))
        << "server spans must join the client's trace";
    ASSERT_TRUE(ByKind.count(FLICK_SPAN_REPLY));
    EXPECT_EQ(ByKind[FLICK_SPAN_DEMUX]->parent_id,
              ByKind[FLICK_SPAN_SEND]->span_id)
        << "demux must parent onto the send that carried the request";
  }
}

} // namespace
