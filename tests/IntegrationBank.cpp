//===- tests/IntegrationBank.cpp - exceptions/attributes/inheritance ------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ItHarness.h"
#include "it_bank.h"
#include <cstring>
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace flick;

//===----------------------------------------------------------------------===//
// Servant state
//===----------------------------------------------------------------------===//

namespace {
int64_t Balance = 1000;
std::string Owner = "alice";
std::vector<Event> Log;
double Rate = 0.05;
} // namespace

int32_t Account__get_id_server(CORBA_Environment *_ev) { return 42; }

char *Account__get_owner_server(CORBA_Environment *_ev) {
  return strdup(Owner.c_str());
}

void Account__set_owner_server(const char *value, CORBA_Environment *_ev) {
  Owner = value;
}

Money *Account_balance_server(CORBA_Environment *_ev) {
  auto *M = static_cast<Money *>(malloc(sizeof(Money)));
  M->kind = USD;
  M->amount = Balance;
  return M;
}

void Account_deposit_server(const Money *m, CORBA_Environment *_ev) {
  Balance += m->amount;
  Event E{};
  E._d = 1;
  E._u.deposit = *m;
  Log.push_back(E);
}

void Account_withdraw_server(const Money *m, CORBA_Environment *_ev) {
  if (m->amount > Balance) {
    auto *Ex = static_cast<InsufficientFunds *>(
        malloc(sizeof(InsufficientFunds)));
    Ex->balance = Money{USD, Balance};
    Ex->requested = *m;
    _ev->_major = CORBA_USER_EXCEPTION;
    _ev->_exc_code = InsufficientFunds_CODE;
    _ev->_exc_value = Ex;
    return;
  }
  Balance -= m->amount;
}

void Account_history_server(EventLog **log, CORBA_Environment *_ev) {
  auto *Out = static_cast<EventLog *>(malloc(sizeof(EventLog)));
  Out->_maximum = Out->_length = static_cast<uint32_t>(Log.size());
  Out->_buffer =
      static_cast<Event *>(malloc(sizeof(Event) * (Log.size() + 1)));
  for (size_t I = 0; I != Log.size(); ++I)
    Out->_buffer[I] = Log[I];
  *log = Out;
}

void Account_rename_server(char **name, CORBA_Environment *_ev) {
  std::string NewName = std::string(*name) + "-renamed";
  // inout strings: the servant may replace the storage.
  *name = strdup(NewName.c_str());
}

// Savings inherits every Account operation; its dispatcher calls
// Savings-prefixed work functions.
int32_t Savings__get_id_server(CORBA_Environment *_ev) { return 43; }
char *Savings__get_owner_server(CORBA_Environment *_ev) {
  return strdup(Owner.c_str());
}
void Savings__set_owner_server(const char *value, CORBA_Environment *_ev) {
  Owner = value;
}
Money *Savings_balance_server(CORBA_Environment *_ev) {
  return Account_balance_server(_ev);
}
void Savings_deposit_server(const Money *m, CORBA_Environment *_ev) {
  Account_deposit_server(m, _ev);
}
void Savings_withdraw_server(const Money *m, CORBA_Environment *_ev) {
  Account_withdraw_server(m, _ev);
}
void Savings_history_server(EventLog **log, CORBA_Environment *_ev) {
  Account_history_server(log, _ev);
}
void Savings_rename_server(char **name, CORBA_Environment *_ev) {
  Account_rename_server(name, _ev);
}
double Savings_rate_server(CORBA_Environment *_ev) { return Rate; }
void Savings_set_rate_server(double r, CORBA_Environment *_ev) { Rate = r; }

//===----------------------------------------------------------------------===//
// Tests
//===----------------------------------------------------------------------===//

namespace {

class BankIt : public ::testing::Test {
protected:
  void SetUp() override {
    Balance = 1000;
    Owner = "alice";
    Log.clear();
    Rate = 0.05;
  }
  ItRig Rig{Account_dispatch};
  CORBA_Environment Ev{};
};

TEST_F(BankIt, BalanceAndDeposit) {
  Money *B = Account_balance(Rig.object(), &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  EXPECT_EQ(B->amount, 1000);
  EXPECT_EQ(B->kind, USD);
  free(B);
  Money D{EUR, 250};
  Account_deposit(Rig.object(), &D, &Ev);
  B = Account_balance(Rig.object(), &Ev);
  EXPECT_EQ(B->amount, 1250);
  free(B);
}

TEST_F(BankIt, WithdrawRaisesUserException) {
  Money Req{USD, 5000};
  Account_withdraw(Rig.object(), &Req, &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_USER_EXCEPTION));
  ASSERT_EQ(Ev._exc_code, unsigned(InsufficientFunds_CODE));
  auto *Ex = static_cast<InsufficientFunds *>(Ev._exc_value);
  ASSERT_TRUE(Ex);
  EXPECT_EQ(Ex->balance.amount, 1000);
  EXPECT_EQ(Ex->requested.amount, 5000);
  CORBA_exception_free(&Ev);
  // Balance unchanged after the failed withdrawal.
  Money *B = Account_balance(Rig.object(), &Ev);
  EXPECT_EQ(B->amount, 1000);
  free(B);
}

TEST_F(BankIt, SuccessfulWithdrawClearsEnvironment) {
  Money Req{USD, 400};
  Account_withdraw(Rig.object(), &Req, &Ev);
  EXPECT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  Money *B = Account_balance(Rig.object(), &Ev);
  EXPECT_EQ(B->amount, 600);
  free(B);
}

TEST_F(BankIt, AttributesGetAndSet) {
  EXPECT_EQ(Account__get_id(Rig.object(), &Ev), 42);
  char *Name = Account__get_owner(Rig.object(), &Ev);
  EXPECT_STREQ(Name, "alice");
  free(Name);
  Account__set_owner(Rig.object(), "bob", &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  Name = Account__get_owner(Rig.object(), &Ev);
  EXPECT_STREQ(Name, "bob");
  free(Name);
}

TEST_F(BankIt, HistoryCarriesUnionEvents) {
  Money D{USD, 5};
  Account_deposit(Rig.object(), &D, &Ev);
  D.amount = 6;
  Account_deposit(Rig.object(), &D, &Ev);
  EventLog *L = nullptr;
  Account_history(Rig.object(), &L, &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  ASSERT_TRUE(L);
  ASSERT_EQ(L->_length, 2u);
  EXPECT_EQ(L->_buffer[0]._d, 1);
  EXPECT_EQ(L->_buffer[0]._u.deposit.amount, 5);
  EXPECT_EQ(L->_buffer[1]._u.deposit.amount, 6);
  free(L->_buffer);
  free(L);
}

TEST_F(BankIt, InoutStringRename) {
  char *Name = strdup("fund");
  Account_rename(Rig.object(), &Name, &Ev);
  ASSERT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  EXPECT_STREQ(Name, "fund-renamed");
  free(Name);
}

TEST_F(BankIt, SavingsInheritsAccountOperations) {
  ItRig SRig(Savings_dispatch);
  CORBA_Environment E2{};
  // Inherited operation through the derived dispatcher.
  Money *B = Savings_balance(SRig.object(), &E2);
  ASSERT_EQ(E2._major, unsigned(CORBA_NO_EXCEPTION));
  EXPECT_EQ(B->amount, 1000);
  free(B);
  // Derived-only operations.
  EXPECT_DOUBLE_EQ(Savings_rate(SRig.object(), &E2), 0.05);
  Savings_set_rate(SRig.object(), 0.07, &E2);
  EXPECT_DOUBLE_EQ(Savings_rate(SRig.object(), &E2), 0.07);
  // Inherited exception path still works in the derived dispatcher.
  Money Req{USD, 99999};
  Savings_withdraw(SRig.object(), &Req, &E2);
  EXPECT_EQ(E2._major, unsigned(CORBA_USER_EXCEPTION));
  CORBA_exception_free(&E2);
}

TEST_F(BankIt, UnknownOperationNameRejected) {
  // Handcraft a request with a bogus operation name: demux must answer
  // FLICK_ERR_NO_SUCH_OP without calling any servant.
  flick_buf *B = flick_client_begin(Rig.client());
  Money One{USD, 1};
  ASSERT_EQ(Account_deposit_encode_request(B, 9, &One), FLICK_OK);
  // Corrupt the operation name bytes ("deposit\0" starts after the
  // 32-byte fixed prefix and its 4-byte length word).
  std::memcpy(B->data + 36, "dep0sit", 7);
  flick_buf Req, Rep;
  flick_buf_init(&Req);
  flick_buf_init(&Rep);
  flick_buf_ensure(&Req, B->len);
  std::memcpy(flick_buf_grab(&Req, B->len), B->data, B->len);
  EXPECT_EQ(Account_dispatch(Rig.server(), &Req, &Rep),
            FLICK_ERR_NO_SUCH_OP);
  flick_buf_destroy(&Req);
  flick_buf_destroy(&Rep);
}

} // namespace
