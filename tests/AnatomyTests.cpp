//===- tests/AnatomyTests.cpp - latency anatomy, SLOs, exemplars ----------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the tail-latency anatomy subsystem: the endpoint registry
/// and SLO grammar, per-endpoint x per-phase attribution at span close,
/// error-budget counters settled at RPC-root close, entry-wise anatomy
/// merging, histogram behavior at exact bucket boundaries, the slow-RPC
/// exemplar reservoir (including survival of a single slow call among
/// thousands after the span ring has overwritten it), and the Prometheus
/// rendering of SLO counter families and exemplar annotations.
///
//===----------------------------------------------------------------------===//

#include "runtime/Sampler.h"
#include "runtime/transport/LocalLink.h"
#include "runtime/flick_runtime.h"
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <gtest/gtest.h>
#include <set>
#include <vector>

using namespace flick;

namespace {

/// Dispatch that echoes the payload; a leading 0xFF byte makes the call
/// artificially slow so a test can plant one outlier among thousands.
int markedEchoDispatch(flick_server *, flick_buf *Req, flick_buf *Rep) {
  size_t N = Req->len - Req->pos;
  if (N && static_cast<uint8_t>(Req->data[Req->pos]) == 0xFF) {
    auto Until = std::chrono::steady_clock::now() +
                 std::chrono::microseconds(1500);
    while (std::chrono::steady_clock::now() < Until) {
    }
  }
  if (flick_buf_ensure(Rep, N) != FLICK_OK)
    return FLICK_ERR_ALLOC;
  std::memcpy(flick_buf_grab(Rep, N), Req->data + Req->pos, N);
  return FLICK_OK;
}

struct Rig {
  LocalLink Link;
  flick_server Srv;
  flick_client Cli;

  Rig() {
    flick_server_init(&Srv, &Link.serverEnd(), markedEchoDispatch);
    Link.setPump(
        [this] { return flick_server_handle_one(&Srv) == FLICK_OK; });
    flick_client_init(&Cli, &Link.clientEnd());
  }
  ~Rig() {
    flick_client_destroy(&Cli);
    flick_server_destroy(&Srv);
  }
};

void invokeOnce(Rig &R, bool Slow = false) {
  flick_buf *Req = flick_client_begin(&R.Cli);
  ASSERT_EQ(flick_buf_ensure(Req, 16), FLICK_OK);
  std::memset(flick_buf_grab(Req, 16), Slow ? 0xFF : 0x42, 16);
  ASSERT_EQ(flick_client_invoke(&R.Cli), FLICK_OK);
}

void busyWaitUs(unsigned Us) {
  auto Until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(Us);
  while (std::chrono::steady_clock::now() < Until) {
  }
}

/// Clears the process-wide endpoint/SLO registry around each test so
/// intern order in one test never shifts ids in another.
struct RegistryGuard {
  RegistryGuard() { flick_endpoint_reset_for_tests(); }
  ~RegistryGuard() { flick_endpoint_reset_for_tests(); }
};

TEST(Endpoint, InternIsIdempotentAndBounded) {
  RegistryGuard G;
  EXPECT_EQ(flick_endpoint_intern(nullptr), 0u);
  EXPECT_EQ(flick_endpoint_intern(""), 0u);
  uint32_t A = flick_endpoint_intern("pay-api");
  EXPECT_NE(A, 0u);
  EXPECT_EQ(flick_endpoint_intern("pay-api"), A);
  EXPECT_STREQ(flick_endpoint_name(A), "pay-api");
  EXPECT_STREQ(flick_endpoint_name(0), "default");
  EXPECT_STREQ(flick_endpoint_name(999), "default");
  // Fill the table; interning past the bound degrades to the default id
  // instead of failing.
  char Name[16];
  for (int I = 0; I != FLICK_MAX_ENDPOINTS; ++I) {
    std::snprintf(Name, sizeof(Name), "ep-%d", I);
    flick_endpoint_intern(Name);
  }
  EXPECT_EQ(flick_endpoint_intern("one-too-many"), 0u);
  EXPECT_EQ(flick_endpoint_count(), uint32_t(FLICK_MAX_ENDPOINTS));
}

TEST(Endpoint, SloGrammarParsesTargetAndThreshold) {
  RegistryGuard G;
  setenv("FLICK_SLO_PAY_API", "p99<2ms", 1);
  setenv("FLICK_SLO_BULK", "p50<250us", 1);
  setenv("FLICK_SLO_BATCH", "p90<1s", 1);
  setenv("FLICK_SLO_BROKEN", "banana", 1);
  uint32_t Pay = flick_endpoint_intern("pay-api");
  uint32_t Bulk = flick_endpoint_intern("bulk");
  uint32_t Batch = flick_endpoint_intern("batch");
  uint32_t Broken = flick_endpoint_intern("broken");
  uint32_t Plain = flick_endpoint_intern("plain");

  const flick_slo *S = flick_slo_for(Pay);
  ASSERT_TRUE(S->set);
  EXPECT_DOUBLE_EQ(S->target, 0.99);
  EXPECT_DOUBLE_EQ(S->threshold_us, 2000.0);
  EXPECT_STREQ(S->objective, "p99<2ms");
  S = flick_slo_for(Bulk);
  ASSERT_TRUE(S->set);
  EXPECT_DOUBLE_EQ(S->target, 0.50);
  EXPECT_DOUBLE_EQ(S->threshold_us, 250.0);
  S = flick_slo_for(Batch);
  ASSERT_TRUE(S->set);
  EXPECT_DOUBLE_EQ(S->target, 0.90);
  EXPECT_DOUBLE_EQ(S->threshold_us, 1e6);
  EXPECT_FALSE(flick_slo_for(Broken)->set) << "bad grammar must not parse";
  EXPECT_FALSE(flick_slo_for(Plain)->set);
  // Burn-rate math uses the tightest allowed-violation fraction.
  EXPECT_NEAR(flick_slo_strictest_allowed(), 0.01, 1e-12);

  unsetenv("FLICK_SLO_PAY_API");
  unsetenv("FLICK_SLO_BULK");
  unsetenv("FLICK_SLO_BATCH");
  unsetenv("FLICK_SLO_BROKEN");
  flick_slo_reload();
  EXPECT_FALSE(flick_slo_for(Pay)->set) << "reload re-reads the env";
  EXPECT_DOUBLE_EQ(flick_slo_strictest_allowed(), 0.0);
}

TEST(Anatomy, RpcCloseAttributesPhasesPerEndpoint) {
  RegistryGuard G;
  flick_metrics M;
  flick_metrics_enable(&M);
  flick_tracer T;
  std::vector<flick_span> Storage(256);
  flick_trace_enable(&T, Storage.data(), 256);
  {
    Rig R;
    R.Cli.endpoint = flick_endpoint_intern("ints-test");
    for (int I = 0; I != 5; ++I)
      invokeOnce(R);
  }
  flick_trace_disable();
  flick_metrics_disable();

  uint32_t Ep = flick_endpoint_intern("ints-test");
  const flick_endpoint_stats &E = M.anatomy[Ep];
  EXPECT_TRUE(E.used);
  EXPECT_EQ(E.phase[FLICK_SPAN_RPC].count, 5u);
  EXPECT_EQ(E.phase[FLICK_SPAN_SEND].count, 5u);
  EXPECT_EQ(E.phase[FLICK_SPAN_DEMUX].count, 5u);
  EXPECT_EQ(E.phase[FLICK_SPAN_REPLY].count, 5u);
  EXPECT_FALSE(M.anatomy[0].used) << "tagged calls must not hit default";

  std::string J = flick_metrics_anatomy_json(&M);
  EXPECT_NE(J.find("\"ints-test\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"phases\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"send\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"share_p99\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"consistency\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"drift_frac\""), std::string::npos) << J;
}

TEST(Anatomy, UntaggedTrafficAttributesToDefaultEndpoint) {
  RegistryGuard G;
  flick_metrics M;
  flick_metrics_enable(&M);
  flick_tracer T;
  std::vector<flick_span> Storage(64);
  flick_trace_enable(&T, Storage.data(), 64);
  {
    Rig R; // endpoint never set
    invokeOnce(R);
  }
  flick_trace_disable();
  flick_metrics_disable();
  EXPECT_TRUE(M.anatomy[0].used);
  EXPECT_EQ(M.anatomy[0].phase[FLICK_SPAN_RPC].count, 1u);
}

TEST(Anatomy, SloCountersSettleAtRpcRootClose) {
  RegistryGuard G;
  setenv("FLICK_SLO_GATED", "p99<200us", 1);
  uint32_t Ep = flick_endpoint_intern("gated");
  flick_metrics M;
  flick_metrics_enable(&M);
  flick_tracer T;
  std::vector<flick_span> Storage(64);
  flick_trace_enable(&T, Storage.data(), 64);

  for (int I = 0; I != 3; ++I) { // fast: within the objective
    flick_span_begin(FLICK_SPAN_RPC, "call");
    flick_trace_tag_endpoint(Ep);
    flick_span_end();
  }
  flick_span_begin(FLICK_SPAN_RPC, "slow-call");
  flick_trace_tag_endpoint(Ep);
  busyWaitUs(400); // over the 200us bound
  flick_span_end();

  flick_trace_disable();
  flick_metrics_disable();
  unsetenv("FLICK_SLO_GATED");

  EXPECT_EQ(M.anatomy[Ep].slo_met, 3u);
  EXPECT_EQ(M.anatomy[Ep].slo_violated, 1u);
  std::string J = flick_metrics_anatomy_json(&M);
  EXPECT_NE(J.find("\"objective\": \"p99<200us\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"violated\": 1"), std::string::npos) << J;
  EXPECT_NE(J.find("\"burn_rate\""), std::string::npos) << J;
}

TEST(AnatomyMerge, EmptyEntryIntoPopulatedIsIdentity) {
  flick_metrics Full{}, Empty{};
  flick_endpoint_stats &E = Full.anatomy[2];
  E.used = 1;
  E.slo_met = 7;
  E.slo_violated = 3;
  flick_hist_record(&E.phase[FLICK_SPAN_RPC], 100.0);
  flick_hist_record(&E.phase[FLICK_SPAN_SEND], 40.0);
  flick_metrics Snapshot = Full;

  flick_metrics_merge(&Full, &Empty);
  const flick_endpoint_stats &A = Full.anatomy[2];
  const flick_endpoint_stats &B = Snapshot.anatomy[2];
  EXPECT_EQ(A.used, B.used);
  EXPECT_EQ(A.slo_met, B.slo_met);
  EXPECT_EQ(A.slo_violated, B.slo_violated);
  EXPECT_EQ(A.phase[FLICK_SPAN_RPC].count, B.phase[FLICK_SPAN_RPC].count);
  EXPECT_DOUBLE_EQ(A.phase[FLICK_SPAN_RPC].sum_us,
                   B.phase[FLICK_SPAN_RPC].sum_us);
  for (int I = 0; I != FLICK_HIST_BUCKETS; ++I)
    EXPECT_EQ(A.phase[FLICK_SPAN_SEND].buckets[I],
              B.phase[FLICK_SPAN_SEND].buckets[I])
        << "bucket " << I;

  // The other direction: populating an empty block copies everything.
  flick_metrics Dst{};
  flick_metrics_merge(&Dst, &Full);
  EXPECT_TRUE(Dst.anatomy[2].used);
  EXPECT_EQ(Dst.anatomy[2].slo_met, 7u);
  EXPECT_EQ(Dst.anatomy[2].phase[FLICK_SPAN_SEND].count, 1u);
  EXPECT_FALSE(Dst.anatomy[0].used);
}

TEST(Hist, RecordsAtExactBucketBoundaries) {
  // Bucket i holds [2^(i-1), 2^i): a value exactly at a power of two
  // belongs to the bucket above the boundary, and values just below it
  // stay in the bucket below.
  flick_latency_hist H{};
  flick_hist_record(&H, 4.0);
  EXPECT_EQ(H.buckets[3], 1u); // [4, 8)
  flick_hist_record(&H, 3.999);
  EXPECT_EQ(H.buckets[2], 1u); // [2, 4)
  flick_hist_record(&H, 1.0);
  EXPECT_EQ(H.buckets[1], 1u); // [1, 2)
  flick_hist_record(&H, 0.5);
  EXPECT_EQ(H.buckets[0], 1u); // below 1us
}

TEST(Hist, PercentileInterpolatesAtBucketBoundaries) {
  flick_latency_hist H{};
  for (int I = 0; I != 50; ++I)
    flick_hist_record(&H, 4.0); // bucket [4,8)
  for (int I = 0; I != 50; ++I)
    flick_hist_record(&H, 16.0); // bucket [16,32)
  // p50 falls exactly on the last sample of the low bucket: its upper
  // bound, not the next bucket's.
  EXPECT_DOUBLE_EQ(flick_hist_percentile(&H, 0.50), 8.0);
  // Anything past the boundary resolves to the high bucket, clamped to
  // the observed max rather than the 32us bucket bound.
  EXPECT_DOUBLE_EQ(flick_hist_percentile(&H, 0.51), 16.0);
  EXPECT_DOUBLE_EQ(flick_hist_percentile(&H, 0.99), 16.0);
  // A single sample clamps to itself even though its bucket bound is
  // higher.
  flick_latency_hist One{};
  flick_hist_record(&One, 4.0);
  EXPECT_DOUBLE_EQ(flick_hist_percentile(&One, 1.0), 4.0);
}

TEST(Exemplar, SlowRpcSurvivesRingOverwrite) {
  // The acceptance scenario: one artificially slow RPC among thousands
  // must remain inspectable after the span ring (here: 16 RPCs deep) has
  // long since overwritten it.
  RegistryGuard G;
  flick_tracer T;
  std::vector<flick_span> Storage(64);
  flick_trace_enable(&T, Storage.data(), 64);
  uint64_t SlowTrace = 0;
  {
    Rig R;
    R.Cli.endpoint = flick_endpoint_intern("survival");
    for (int I = 0; I != 100; ++I)
      invokeOnce(R);
    invokeOnce(R, /*Slow=*/true);
    // The slow call's trace id is the newest RPC root in the ring.
    for (size_t I = flick_trace_span_count(&T); I-- > 0;) {
      const flick_span *S = flick_trace_span(&T, I);
      if (S->kind == FLICK_SPAN_RPC) {
        SlowTrace = S->trace_id;
        break;
      }
    }
    for (int I = 0; I != 2000; ++I) // bury it
      invokeOnce(R);
  }
  flick_trace_disable();
  ASSERT_NE(SlowTrace, 0u);

  // The ring has overwritten the slow call...
  for (size_t I = 0; I != flick_trace_span_count(&T); ++I)
    EXPECT_NE(flick_trace_span(&T, I)->trace_id, SlowTrace)
        << "ring should have overwritten the slow RPC";
  // ...but the reservoir retained it, as the slowest for its endpoint.
  uint32_t Ep = flick_endpoint_intern("survival");
  const flick_exemplar *Kept = nullptr;
  for (int I = 0; I != FLICK_EXEMPLAR_SLOTS; ++I)
    if (T.exemplars.slots[Ep][I].trace_id == SlowTrace)
      Kept = &T.exemplars.slots[Ep][I];
  ASSERT_NE(Kept, nullptr) << "slow RPC fell out of the reservoir";
  EXPECT_GE(Kept->dur_us, 1000.0);
  ASSERT_GE(Kept->n_spans, 1u);
  // The copy is in ring (close) order: children close before the root,
  // so the rpc root is the tree's last span.
  EXPECT_EQ(Kept->spans[Kept->n_spans - 1].kind, FLICK_SPAN_RPC);
  for (int I = 0; I != FLICK_EXEMPLAR_SLOTS; ++I)
    EXPECT_LE(T.exemplars.slots[Ep][I].dur_us, Kept->dur_us);

  // Both post-mortem exports carry the retained call.
  std::string J = flick_exemplars_to_json(&T);
  EXPECT_NE(J.find("\"survival\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"rpc\""), std::string::npos) << J;
  std::string C = flick_exemplars_to_chrome_json(&T);
  EXPECT_NE(C.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(C.find("survival"), std::string::npos) << C;
}

TEST(Exemplar, AbsorbMergesReservoirsBySlowness) {
  RegistryGuard G;
  uint32_t Ep = flick_endpoint_intern("merged");

  auto RecordRpc = [&](unsigned Us) {
    flick_span_begin(FLICK_SPAN_RPC, "call");
    flick_trace_tag_endpoint(Ep);
    busyWaitUs(Us);
    flick_span_end();
  };

  flick_tracer Dst;
  std::vector<flick_span> DS(32);
  flick_trace_enable(&Dst, DS.data(), 32);
  RecordRpc(200);
  flick_trace_disable();

  flick_tracer Src;
  std::vector<flick_span> SS(32);
  flick_trace_enable_thread(&Src, SS.data(), 32);
  RecordRpc(800); // slower than anything Dst holds
  flick_trace_disable();

  flick_trace_absorb(&Dst, &Src);
  double Slowest = 0;
  int Held = 0;
  for (int I = 0; I != FLICK_EXEMPLAR_SLOTS; ++I) {
    const flick_exemplar &E = Dst.exemplars.slots[Ep][I];
    if (!E.n_spans)
      continue;
    ++Held;
    if (E.dur_us > Slowest)
      Slowest = E.dur_us;
  }
  EXPECT_EQ(Held, 2) << "both tracers' exemplars must survive the merge";
  EXPECT_GE(Slowest, 800.0) << "the absorbed slow call must be retained";
}

TEST(Exemplar, PrometheusCarriesSloFamiliesAndExemplars) {
  RegistryGuard G;
  setenv("FLICK_SLO_PROM_EP", "p99<10ms", 1);
  uint32_t Ep = flick_endpoint_intern("prom-ep");

  flick_metrics M;
  flick_metrics_enable(&M);
  flick_tracer T;
  std::vector<flick_span> Storage(32);
  flick_trace_enable(&T, Storage.data(), 32);
  flick_span_begin(FLICK_SPAN_RPC, "call");
  flick_trace_tag_endpoint(Ep);
  busyWaitUs(100);
  flick_span_end();
  flick_hist_record(&M.rpc_latency, 100.0);
  flick_trace_disable();
  flick_metrics_disable();
  unsetenv("FLICK_SLO_PROM_EP");

  std::string P = flick_metrics_to_prometheus(&M, &T);
  EXPECT_NE(P.find("# TYPE flick_slo_met_total counter"),
            std::string::npos)
      << P;
  EXPECT_NE(P.find("flick_slo_met_total{endpoint=\"prom-ep\","
                   "objective=\"p99<10ms\"} 1"),
            std::string::npos)
      << P;
  EXPECT_NE(P.find("flick_slo_violated_total{endpoint=\"prom-ep\""),
            std::string::npos)
      << P;
  // The latency bucket holding the exemplar carries the OpenMetrics
  // annotation: "# {trace_id=...,endpoint=...} <seconds>".
  size_t Ann = P.find("# {trace_id=\"0x");
  ASSERT_NE(Ann, std::string::npos) << P;
  EXPECT_NE(P.find("endpoint=\"prom-ep\"", Ann), std::string::npos) << P;
  // Without a tracer the export must not change shape, just drop the
  // annotations.
  std::string Plain = flick_metrics_to_prometheus(&M);
  EXPECT_EQ(Plain.find("# {trace_id"), std::string::npos);
}

TEST(Anatomy, DisabledAttributionLeavesMetricsUntouched) {
  // Tracer on, metrics off: spans record but nothing attributes.
  RegistryGuard G;
  flick_tracer T;
  std::vector<flick_span> Storage(32);
  flick_trace_enable(&T, Storage.data(), 32);
  {
    Rig R;
    R.Cli.endpoint = flick_endpoint_intern("nobody");
    invokeOnce(R);
  }
  flick_trace_disable();
  // Metrics on, tracer off: counters record but anatomy stays empty
  // (spans are the attribution source).
  flick_metrics M;
  flick_metrics_enable(&M);
  {
    Rig R;
    R.Cli.endpoint = flick_endpoint_intern("nobody");
    invokeOnce(R);
  }
  flick_metrics_disable();
  for (int I = 0; I != FLICK_MAX_ENDPOINTS; ++I)
    EXPECT_FALSE(M.anatomy[I].used) << "endpoint " << I;
  EXPECT_EQ(flick_metrics_anatomy_json(&M), "{}");
  EXPECT_EQ(M.rpcs_sent, 1u) << "plain counters still work without spans";
}

} // namespace
