//===- tests/BufferPoolTests.cpp - wire-buffer pool & gather-ref tests ----===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the zero-copy message-path plumbing: flick_buf borrowed
/// segments (flick_buf_ref / flick_buf_iovec), the LocalLink wire-buffer
/// free list (reuse, growth under outstanding messages, exhaustion
/// fallback, alignment of adopted buffers), and the base-Channel staging
/// defaults that keep flat-only transports working.
///
//===----------------------------------------------------------------------===//

#include "runtime/transport/LocalLink.h"
#include "runtime/flick_runtime.h"
#include <cstring>
#include <gtest/gtest.h>
#include <vector>

using namespace flick;

namespace {

struct ScopedMetrics {
  flick_metrics M;
  ScopedMetrics() { flick_metrics_enable(&M); }
  ~ScopedMetrics() { flick_metrics_disable(); }
};

//===----------------------------------------------------------------------===//
// flick_buf borrowed segments
//===----------------------------------------------------------------------===//

TEST(BufRef, RecordsBorrowedSpanWithoutCopying) {
  ScopedMetrics S;
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_buf_ensure(&B, 8), FLICK_OK);
  std::memset(flick_buf_grab(&B, 8), 0xAB, 8);

  std::vector<uint8_t> Payload(4096, 0xCD);
  uint64_t CopiedBefore = S.M.bytes_copied;
  ASSERT_EQ(flick_buf_ref(&B, Payload.data(), Payload.size()), FLICK_OK);

  EXPECT_EQ(B.nrefs, 1u);
  EXPECT_EQ(B.ref_bytes, 4096u);
  EXPECT_EQ(B.len, 8u); // owned bytes untouched
  EXPECT_EQ(flick_buf_total(&B), 8u + 4096u);
  EXPECT_EQ(B.refs[0].base, Payload.data());
  EXPECT_EQ(B.refs[0].own_off, 8u);
  EXPECT_EQ(S.M.bytes_copied, CopiedBefore); // no bytes moved
  EXPECT_EQ(S.M.gather_refs, 1u);
  EXPECT_EQ(S.M.gather_bytes, 4096u);
  flick_buf_destroy(&B);
}

TEST(BufRef, IovecInterleavesOwnedRunsAndBorrowedSpans) {
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_buf_ensure(&B, 64), FLICK_OK);
  std::memset(flick_buf_grab(&B, 8), 0x11, 8);
  uint8_t R1[16], R2[32];
  ASSERT_EQ(flick_buf_ref(&B, R1, sizeof(R1)), FLICK_OK);
  std::memset(flick_buf_grab(&B, 4), 0x22, 4);
  ASSERT_EQ(flick_buf_ref(&B, R2, sizeof(R2)), FLICK_OK);

  flick_iov Iov[2 * FLICK_BUF_MAX_REFS + 1];
  size_t N = flick_buf_iovec(&B, Iov);
  ASSERT_EQ(N, 4u);
  EXPECT_EQ(Iov[0].base, B.data); // owned run before first ref
  EXPECT_EQ(Iov[0].len, 8u);
  EXPECT_EQ(Iov[1].base, R1);
  EXPECT_EQ(Iov[1].len, sizeof(R1));
  EXPECT_EQ(Iov[2].base, B.data + 8);
  EXPECT_EQ(Iov[2].len, 4u);
  EXPECT_EQ(Iov[3].base, R2);
  EXPECT_EQ(Iov[3].len, sizeof(R2));

  size_t Sum = 0;
  for (size_t I = 0; I != N; ++I)
    Sum += Iov[I].len;
  EXPECT_EQ(Sum, flick_buf_total(&B));
  flick_buf_destroy(&B);
}

TEST(BufRef, FallsBackToPlainCopyWhenSegmentListIsFull) {
  ScopedMetrics S;
  flick_buf B;
  flick_buf_init(&B);
  std::vector<uint8_t> Payload(128, 0x5C);
  for (int I = 0; I != FLICK_BUF_MAX_REFS; ++I)
    ASSERT_EQ(flick_buf_ref(&B, Payload.data(), Payload.size()), FLICK_OK);
  ASSERT_EQ(B.nrefs, size_t(FLICK_BUF_MAX_REFS));

  // The ninth segment degrades to an owned copy of the bytes.
  size_t OwnedBefore = B.len;
  ASSERT_EQ(flick_buf_ref(&B, Payload.data(), Payload.size()), FLICK_OK);
  EXPECT_EQ(B.nrefs, size_t(FLICK_BUF_MAX_REFS));
  EXPECT_EQ(B.len, OwnedBefore + Payload.size());
  EXPECT_EQ(S.M.gather_refs, uint64_t(FLICK_BUF_MAX_REFS));
  EXPECT_GE(S.M.bytes_copied, Payload.size());
  EXPECT_EQ(std::memcmp(B.data + OwnedBefore, Payload.data(), Payload.size()),
            0);
  flick_buf_destroy(&B);
}

TEST(BufRef, ResetDropsBorrowedSegments) {
  flick_buf B;
  flick_buf_init(&B);
  uint8_t Span[256];
  ASSERT_EQ(flick_buf_ref(&B, Span, sizeof(Span)), FLICK_OK);
  flick_buf_reset(&B);
  EXPECT_EQ(B.nrefs, 0u);
  EXPECT_EQ(B.ref_bytes, 0u);
  EXPECT_EQ(flick_buf_total(&B), 0u);
  flick_buf_destroy(&B);
}

TEST(BufRef, AlignWritePadsTheLogicalPosition) {
  // A borrowed span counts toward alignment, so a gathered message keeps
  // the same padding as its copied twin.
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_buf_ensure(&B, 16), FLICK_OK);
  std::memset(flick_buf_grab(&B, 4), 0, 4);
  uint8_t Span[6];
  ASSERT_EQ(flick_buf_ref(&B, Span, sizeof(Span)), FLICK_OK);
  ASSERT_EQ(flick_buf_align_write(&B, 8), FLICK_OK); // logical pos 10 -> 16
  EXPECT_EQ(flick_buf_total(&B), 16u);
  EXPECT_EQ(B.len, 10u); // 4 owned + 6 pad
  flick_buf_destroy(&B);
}

//===----------------------------------------------------------------------===//
// LocalLink wire-buffer pool
//===----------------------------------------------------------------------===//

TEST(BufferPool, ReleasedBufferIsReusedByTheNextSend) {
  ScopedMetrics S;
  LocalLink L;
  std::vector<uint8_t> Msg(100, 0x42), Out;
  ASSERT_EQ(L.clientEnd().send(Msg.data(), Msg.size()), FLICK_OK);
  EXPECT_EQ(S.M.pool_misses, 1u);
  ASSERT_EQ(L.serverEnd().recv(Out), FLICK_OK); // releases to the pool
  EXPECT_EQ(Out, Msg);
  ASSERT_EQ(L.clientEnd().send(Msg.data(), Msg.size()), FLICK_OK);
  EXPECT_EQ(S.M.pool_hits, 1u);
  EXPECT_EQ(S.M.pool_misses, 1u);
  ASSERT_EQ(L.serverEnd().recv(Out), FLICK_OK);
}

TEST(BufferPool, GrowsUnderConcurrentOutstandingMessages) {
  // Buffers come back only on receive, so N outstanding messages force N
  // distinct allocations -- the pool must grow, not recycle live storage.
  ScopedMetrics S;
  LocalLink L;
  std::vector<uint8_t> Msg(64, 0x07), Out;
  const size_t Outstanding = 5;
  for (size_t I = 0; I != Outstanding; ++I)
    ASSERT_EQ(L.clientEnd().send(Msg.data(), Msg.size()), FLICK_OK);
  EXPECT_EQ(S.M.pool_misses, Outstanding);
  EXPECT_EQ(L.pendingToServer(), Outstanding);
  for (size_t I = 0; I != Outstanding; ++I)
    ASSERT_EQ(L.serverEnd().recv(Out), FLICK_OK);
  // All five allocations are parked now; five more sends are all hits.
  for (size_t I = 0; I != Outstanding; ++I)
    ASSERT_EQ(L.clientEnd().send(Msg.data(), Msg.size()), FLICK_OK);
  EXPECT_EQ(S.M.pool_hits, Outstanding);
  EXPECT_EQ(S.M.pool_misses, Outstanding);
  for (size_t I = 0; I != Outstanding; ++I)
    ASSERT_EQ(L.serverEnd().recv(Out), FLICK_OK);
}

TEST(BufferPool, ExhaustionFallsBackToFreshAllocation) {
  // The free list is bounded: releasing more buffers than it holds frees
  // the excess, and later sends past the parked set must allocate again.
  ScopedMetrics S;
  LocalLink L;
  std::vector<uint8_t> Msg(32, 0x3F), Out;
  const size_t Burst = size_t(8) + 4; // PoolMaxBufs + 4
  for (size_t I = 0; I != Burst; ++I)
    ASSERT_EQ(L.clientEnd().send(Msg.data(), Msg.size()), FLICK_OK);
  EXPECT_EQ(S.M.pool_misses, Burst);
  for (size_t I = 0; I != Burst; ++I)
    ASSERT_EQ(L.serverEnd().recv(Out), FLICK_OK); // only 8 can park
  for (size_t I = 0; I != Burst; ++I)
    ASSERT_EQ(L.clientEnd().send(Msg.data(), Msg.size()), FLICK_OK);
  EXPECT_EQ(S.M.pool_hits, 8u);
  EXPECT_EQ(S.M.pool_misses, Burst + (Burst - 8));
  for (size_t I = 0; I != Burst; ++I)
    ASSERT_EQ(L.serverEnd().recv(Out), FLICK_OK);
}

TEST(BufferPool, AdoptedReceiveBuffersAreMaxAligned) {
  // recvInto hands the pooled allocation to the flick_buf by move; decode
  // may alias scalars of any type inside it, so it must be as aligned as
  // malloc guarantees.
  LocalLink L;
  std::vector<uint8_t> Msg(48, 0x66);
  ASSERT_EQ(L.clientEnd().send(Msg.data(), Msg.size()), FLICK_OK);
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(L.serverEnd().recvInto(&B), FLICK_OK);
  EXPECT_EQ(B.len, Msg.size());
  EXPECT_EQ(std::memcmp(B.data, Msg.data(), Msg.size()), 0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(B.data) % alignof(std::max_align_t),
            0u);
  flick_buf_destroy(&B);
}

TEST(BufferPool, GatheredSendLandsInOnePooledBuffer) {
  ScopedMetrics S;
  LocalLink L;
  uint8_t Head[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint8_t> Body(1024, 0x9A);
  flick_iov Iov[2] = {{Head, sizeof(Head)}, {Body.data(), Body.size()}};
  ASSERT_EQ(L.clientEnd().sendv(Iov, 2), FLICK_OK);
  EXPECT_EQ(S.M.pool_misses, 1u); // one buffer for the whole message
  uint64_t Copied = S.M.bytes_copied;
  EXPECT_EQ(Copied, sizeof(Head) + Body.size()); // written exactly once

  std::vector<uint8_t> Out;
  ASSERT_EQ(L.serverEnd().recv(Out), FLICK_OK);
  ASSERT_EQ(Out.size(), sizeof(Head) + Body.size());
  EXPECT_EQ(std::memcmp(Out.data(), Head, sizeof(Head)), 0);
  EXPECT_EQ(std::memcmp(Out.data() + sizeof(Head), Body.data(), Body.size()),
            0);
}

//===----------------------------------------------------------------------===//
// Base-Channel staging defaults (flat-only transports keep working)
//===----------------------------------------------------------------------===//

/// A transport that implements only the flat pair, like any pre-gather
/// Channel subclass would.
class FlatOnlyChan : public Channel {
public:
  int send(const uint8_t *Data, size_t Len) override {
    Q.emplace_back(Data, Data + Len);
    return FLICK_OK;
  }
  int recv(std::vector<uint8_t> &Out) override {
    if (Q.empty())
      return FLICK_ERR_TRANSPORT;
    Out = std::move(Q.front());
    Q.pop_front();
    return FLICK_OK;
  }

private:
  std::deque<std::vector<uint8_t>> Q;
};

TEST(BufferPool, DefaultSendvFlattensForFlatOnlyTransports) {
  ScopedMetrics S;
  FlatOnlyChan Ch;
  uint8_t A[4] = {'a', 'b', 'c', 'd'};
  uint8_t B[3] = {'e', 'f', 'g'};
  flick_iov Iov[2] = {{A, sizeof(A)}, {B, sizeof(B)}};
  ASSERT_EQ(flick_channel_sendv(&Ch, Iov, 2), FLICK_OK);
  EXPECT_GE(S.M.bytes_copied, 7u); // the staging copy is accounted

  flick_buf Into;
  flick_buf_init(&Into);
  ASSERT_EQ(flick_channel_recv(&Ch, &Into), FLICK_OK);
  ASSERT_EQ(Into.len, 7u);
  EXPECT_EQ(std::memcmp(Into.data, "abcdefg", 7), 0);
  flick_buf_destroy(&Into);
}

} // namespace
