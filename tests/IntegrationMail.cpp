//===- tests/IntegrationMail.cpp - Mail interface round trips -------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ItHarness.h"
#include "it_mail.h"
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace flick;

namespace {

std::vector<std::string> Received;

} // namespace

void Mail_send_server(const char *msg, CORBA_Environment *_ev) {
  Received.push_back(msg ? msg : "<null>");
}

namespace {

class MailIt : public ::testing::Test {
protected:
  void SetUp() override { Received.clear(); }
  ItRig Rig{Mail_dispatch};
};

TEST_F(MailIt, PaperExampleRoundTrip) {
  CORBA_Environment Ev;
  Mail_send(Rig.object(), "hello flick", &Ev);
  EXPECT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  ASSERT_EQ(Received.size(), 1u);
  EXPECT_EQ(Received[0], "hello flick");
}

TEST_F(MailIt, EmptyAndLongMessages) {
  CORBA_Environment Ev;
  Mail_send(Rig.object(), "", &Ev);
  EXPECT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  std::string Long(100000, 'x');
  Mail_send(Rig.object(), Long.c_str(), &Ev);
  EXPECT_EQ(Ev._major, unsigned(CORBA_NO_EXCEPTION));
  ASSERT_EQ(Received.size(), 2u);
  EXPECT_EQ(Received[0], "");
  EXPECT_EQ(Received[1], Long);
}

TEST_F(MailIt, ManySequentialCallsReuseBuffers) {
  CORBA_Environment Ev;
  for (int I = 0; I != 200; ++I)
    Mail_send(Rig.object(), ("msg" + std::to_string(I)).c_str(), &Ev);
  ASSERT_EQ(Received.size(), 200u);
  EXPECT_EQ(Received[199], "msg199");
}

TEST_F(MailIt, EmbeddedUtf8AndEscapes) {
  CORBA_Environment Ev;
  Mail_send(Rig.object(), "tab\tnewline\nquote\"", &Ev);
  ASSERT_EQ(Received.size(), 1u);
  EXPECT_EQ(Received[0], "tab\tnewline\nquote\"");
}

TEST_F(MailIt, GarbageRequestIsRejectedNotCrashed) {
  // Feed the dispatcher a corrupt request directly.
  uint8_t Junk[16] = {0};
  flick_buf Req, Rep;
  flick_buf_init(&Req);
  flick_buf_init(&Rep);
  flick_buf_ensure(&Req, 16);
  std::memcpy(flick_buf_grab(&Req, 16), Junk, 16);
  int Err = Mail_dispatch(Rig.server(), &Req, &Rep);
  EXPECT_NE(Err, FLICK_OK);
  flick_buf_destroy(&Req);
  flick_buf_destroy(&Rep);
  EXPECT_TRUE(Received.empty());
}

TEST_F(MailIt, TruncatedRequestIsRejected) {
  // A valid message truncated mid-string must fail cleanly.
  flick_buf *B = flick_client_begin(Rig.client());
  ASSERT_EQ(Mail_send_encode_request(B, 1, "hello truncation"), FLICK_OK);
  flick_buf Req, Rep;
  flick_buf_init(&Req);
  flick_buf_init(&Rep);
  size_t Cut = B->len - 6;
  flick_buf_ensure(&Req, Cut);
  std::memcpy(flick_buf_grab(&Req, Cut), B->data, Cut);
  // Patch the GIOP size so only the payload truncation is at fault.
  int Err = Mail_dispatch(Rig.server(), &Req, &Rep);
  EXPECT_NE(Err, FLICK_OK);
  flick_buf_destroy(&Req);
  flick_buf_destroy(&Rep);
}

} // namespace
