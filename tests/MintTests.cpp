//===- tests/MintTests.cpp - MINT and wire-layout unit tests --------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mint/Mint.h"
#include "mint/Wire.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

TEST(Mint, LeafCachingIsShared) {
  MintModule M;
  EXPECT_EQ(M.integer(32, true), M.integer(32, true));
  EXPECT_NE(M.integer(32, true), M.integer(32, false));
  EXPECT_NE(M.integer(32, true), M.integer(16, true));
  EXPECT_EQ(M.voidType(), M.voidType());
  EXPECT_EQ(M.floatType(64), M.floatType(64));
}

TEST(Mint, DumpHandlesCycles) {
  MintModule M;
  auto *Node = M.make<MintStruct>(std::vector<MintStructElem>{});
  auto *Opt = M.make<MintArray>(Node, 0, 1);
  Node->elems().push_back(MintStructElem{M.integer(32, true), "item"});
  Node->elems().push_back(MintStructElem{Opt, "next"});
  std::string Dump = MintModule::dump(Node);
  EXPECT_NE(Dump.find("ref #"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("array[0..1]"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Wire layout, parameterized over the encodings
//===----------------------------------------------------------------------===//

class WireLayoutTest : public ::testing::TestWithParam<WireKind> {};

TEST_P(WireLayoutTest, AtomSizesArePositiveAndAligned) {
  WireLayout L(GetParam());
  MintModule M;
  const MintType *Atoms[] = {M.integer(8, false),  M.integer(16, true),
                             M.integer(32, true),  M.integer(64, false),
                             M.floatType(32),      M.floatType(64),
                             M.charType(),         M.boolType()};
  for (const MintType *T : Atoms) {
    unsigned S = L.atomSize(T);
    unsigned A = L.atomAlign(T);
    EXPECT_GT(S, 0u);
    EXPECT_GT(A, 0u);
    EXPECT_EQ(S % A, 0u) << "size must be a multiple of alignment";
  }
}

TEST_P(WireLayoutTest, PaddedIsMonotoneAndAligned) {
  WireLayout L(GetParam());
  for (uint64_t N : {0u, 1u, 3u, 4u, 5u, 8u, 1000u}) {
    EXPECT_GE(L.padded(N), N);
    EXPECT_EQ(L.padded(N) % L.padUnit(), 0u);
  }
}

TEST_P(WireLayoutTest, HostIdenticalImpliesNoSwap) {
  WireLayout L(GetParam());
  MintModule M;
  const MintType *Atoms[] = {M.integer(16, true), M.integer(32, false),
                             M.integer(64, true), M.floatType(64)};
  for (const MintType *T : Atoms)
    if (L.hostIdentical(T))
      EXPECT_FALSE(L.needsSwap(T));
}

INSTANTIATE_TEST_SUITE_P(AllWires, WireLayoutTest,
                         ::testing::Values(WireKind::Xdr, WireKind::CdrLE,
                                           WireKind::CdrBE,
                                           WireKind::MachTyped,
                                           WireKind::FlukeReg),
                         [](const auto &Info) {
                           std::string N = wireKindName(Info.param);
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

TEST(WireLayout, XdrWidensSmallAtoms) {
  WireLayout L(WireKind::Xdr);
  MintModule M;
  EXPECT_EQ(L.atomSize(M.integer(8, false)), 4u);
  EXPECT_EQ(L.atomSize(M.integer(16, true)), 4u);
  EXPECT_EQ(L.atomSize(M.boolType()), 4u);
  EXPECT_EQ(L.atomSize(M.charType()), 4u);
  EXPECT_EQ(L.atomSize(M.integer(64, true)), 8u);
}

TEST(WireLayout, CdrUsesNaturalSizes) {
  WireLayout L(WireKind::CdrLE);
  MintModule M;
  EXPECT_EQ(L.atomSize(M.integer(8, false)), 1u);
  EXPECT_EQ(L.atomSize(M.integer(16, true)), 2u);
  EXPECT_EQ(L.atomSize(M.boolType()), 1u);
  EXPECT_EQ(L.atomAlign(M.integer(64, true)), 8u);
}

TEST(WireLayout, LittleEndianHostMemcpyEligibility) {
  // These assertions encode the x86-64 (little-endian) host expectations
  // that drive the Figure 3 memcpy-vs-swap split.
  MintModule M;
  WireLayout Xdr(WireKind::Xdr), Cdr(WireKind::CdrLE);
  EXPECT_FALSE(Xdr.hostIdentical(M.integer(32, true)));
  EXPECT_TRUE(Xdr.needsSwap(M.integer(32, true)));
  EXPECT_TRUE(Cdr.hostIdentical(M.integer(32, true)));
  EXPECT_TRUE(Cdr.hostIdentical(M.floatType(64)));
  // Byte data copies everywhere.
  EXPECT_TRUE(Cdr.hostIdentical(M.charType()));
  EXPECT_FALSE(Xdr.hostIdentical(M.charType())); // XDR chars widen to 4
  EXPECT_TRUE(Xdr.hostIdentical(M.integer(8, false)) ||
              Xdr.atomSize(M.integer(8, false)) == 4);
}

TEST(WireLayout, StringNulConventions) {
  EXPECT_TRUE(WireLayout(WireKind::CdrLE).stringCountsNul());
  EXPECT_FALSE(WireLayout(WireKind::Xdr).stringCountsNul());
}

//===----------------------------------------------------------------------===//
// Storage analysis (paper §3.1)
//===----------------------------------------------------------------------===//

TEST(StorageAnalysis, FixedStruct) {
  MintModule M;
  // The paper's rect: two points of two int32s.
  std::vector<MintStructElem> Pt = {{M.integer(32, true), "x"},
                                    {M.integer(32, true), "y"}};
  auto *Point = M.make<MintStruct>(Pt);
  auto *Rect = M.make<MintStruct>(std::vector<MintStructElem>{
      {Point, "min"}, {Point, "max"}});
  StorageInfo SI = analyzeStorage(Rect, WireLayout(WireKind::Xdr));
  EXPECT_EQ(SI.Class, StorageClass::Fixed);
  EXPECT_EQ(SI.MinBytes, 16u);
  EXPECT_EQ(SI.MaxBytes, 16u);
}

TEST(StorageAnalysis, BoundedString) {
  MintModule M;
  auto *Str = M.make<MintArray>(M.charType(), 0, 255);
  StorageInfo SI = analyzeStorage(Str, WireLayout(WireKind::Xdr));
  EXPECT_EQ(SI.Class, StorageClass::Bounded);
  EXPECT_GE(SI.MaxBytes, 255u + 4u);
}

TEST(StorageAnalysis, UnboundedArray) {
  MintModule M;
  auto *Arr = M.make<MintArray>(M.integer(32, true), 0, MintUnboundedLen);
  StorageInfo SI = analyzeStorage(Arr, WireLayout(WireKind::Xdr));
  EXPECT_EQ(SI.Class, StorageClass::Unbounded);
}

TEST(StorageAnalysis, FixedArrayOfFixedStructsIsFixed) {
  MintModule M;
  auto *S = M.make<MintStruct>(std::vector<MintStructElem>{
      {M.integer(32, true), "a"}, {M.integer(32, true), "b"}});
  auto *Arr = M.make<MintArray>(S, 8, 8);
  StorageInfo SI = analyzeStorage(Arr, WireLayout(WireKind::CdrLE));
  EXPECT_EQ(SI.Class, StorageClass::Fixed);
  EXPECT_EQ(SI.MaxBytes, 64u);
}

TEST(StorageAnalysis, UnionOfDifferentFixedArmsIsBounded) {
  MintModule M;
  std::vector<MintUnionCase> Cases = {
      {1, M.integer(32, true), "i"},
      {2, M.floatType(64), "d"},
  };
  auto *U = M.make<MintUnion>(M.integer(32, true), Cases, nullptr);
  StorageInfo SI = analyzeStorage(U, WireLayout(WireKind::Xdr));
  EXPECT_EQ(SI.Class, StorageClass::Bounded);
  EXPECT_EQ(SI.MaxBytes, 4u + 8u);
  EXPECT_EQ(SI.MinBytes, 4u + 4u);
}

TEST(StorageAnalysis, RecursiveTypeIsUnbounded) {
  MintModule M;
  auto *Node = M.make<MintStruct>(std::vector<MintStructElem>{});
  auto *Opt = M.make<MintArray>(Node, 0, 1);
  Node->elems().push_back(MintStructElem{M.integer(32, true), "v"});
  Node->elems().push_back(MintStructElem{Opt, "next"});
  StorageInfo SI = analyzeStorage(Node, WireLayout(WireKind::Xdr));
  EXPECT_EQ(SI.Class, StorageClass::Unbounded);
}

TEST(StorageAnalysis, PaperDirentShapeIsBounded) {
  // dirent = string<255> + 30 u32 + 16 bytes: variable but bounded.
  MintModule M;
  auto *Name = M.make<MintArray>(M.charType(), 0, 255);
  auto *Words = M.make<MintArray>(M.integer(32, false), 30, 30);
  auto *Tag = M.make<MintArray>(M.integer(8, false), 16, 16);
  auto *Stat = M.make<MintStruct>(std::vector<MintStructElem>{
      {Words, "words"}, {Tag, "tag"}});
  auto *Dirent = M.make<MintStruct>(std::vector<MintStructElem>{
      {Name, "name"}, {Stat, "info"}});
  StorageInfo SI = analyzeStorage(Dirent, WireLayout(WireKind::Xdr));
  EXPECT_EQ(SI.Class, StorageClass::Bounded);
  // At least the fixed 136 bytes plus the length word.
  EXPECT_GE(SI.MinBytes, 136u + 4u);
}

} // namespace
