//===- tests/ItHarness.h - integration-test client/server rig --*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny rig wiring one generated dispatch function to a client over an
/// in-process LocalLink; integration tests instantiate it per fixture.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_TESTS_ITHARNESS_H
#define FLICK_TESTS_ITHARNESS_H

#include "runtime/transport/LocalLink.h"
#include "runtime/flick_runtime.h"

namespace flick {

/// RAII client/server pair over an in-process link.
class ItRig {
public:
  explicit ItRig(flick_dispatch_fn Dispatch) {
    flick_server_init(&Srv, &Link.serverEnd(), Dispatch);
    Link.setPump([this] { return flick_server_handle_one(&Srv) == FLICK_OK; });
    flick_client_init(&Cli, &Link.clientEnd());
    Obj.client = &Cli;
  }
  ~ItRig() {
    flick_client_destroy(&Cli);
    flick_server_destroy(&Srv);
  }

  flick_client *client() { return &Cli; }
  flick_obj *object() { return &Obj; }
  flick_server *server() { return &Srv; }
  LocalLink &link() { return Link; }

private:
  LocalLink Link;
  flick_server Srv;
  flick_client Cli;
  flick_obj Obj;
};

} // namespace flick

#endif // FLICK_TESTS_ITHARNESS_H
