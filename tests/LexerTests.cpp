//===- tests/LexerTests.cpp - shared IDL lexer unit tests -----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "frontends/Lexer.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

std::vector<Token> lexAll(const std::string &Src, DiagnosticEngine &D) {
  Lexer L(Src, D.addFile("t.idl"), D);
  std::vector<Token> Out;
  while (!L.peek().is(Token::Kind::Eof))
    Out.push_back(L.next());
  return Out;
}

TEST(Lexer, IdentifiersAndPunct) {
  DiagnosticEngine D;
  auto T = lexAll("interface Mail { };", D);
  ASSERT_EQ(T.size(), 5u);
  EXPECT_TRUE(T[0].isIdent("interface"));
  EXPECT_TRUE(T[1].isIdent("Mail"));
  EXPECT_TRUE(T[2].isPunct("{"));
  EXPECT_TRUE(T[3].isPunct("}"));
  EXPECT_TRUE(T[4].isPunct(";"));
  EXPECT_FALSE(D.hasErrors());
}

TEST(Lexer, IntegerLiterals) {
  DiagnosticEngine D;
  auto T = lexAll("42 0x20 010 7u 9L", D);
  ASSERT_EQ(T.size(), 5u);
  EXPECT_EQ(T[0].IntValue, 42u);
  EXPECT_EQ(T[1].IntValue, 32u);
  EXPECT_EQ(T[2].IntValue, 8u);
  EXPECT_EQ(T[3].IntValue, 7u);
  EXPECT_EQ(T[4].IntValue, 9u);
}

TEST(Lexer, ProgramNumberStyleHex) {
  DiagnosticEngine D;
  auto T = lexAll("0x20000001", D);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_EQ(T[0].IntValue, 0x20000001u);
}

TEST(Lexer, StringAndCharLiterals) {
  DiagnosticEngine D;
  auto T = lexAll("\"hi\\n\" 'x' '\\n'", D);
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "hi\n");
  EXPECT_EQ(T[1].IntValue, uint64_t('x'));
  EXPECT_EQ(T[2].IntValue, uint64_t('\n'));
}

TEST(Lexer, CommentsAndPreprocessorLinesAreSkipped) {
  DiagnosticEngine D;
  auto T = lexAll("// line\n#include <x>\n/* block\n */ foo", D);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T[0].isIdent("foo"));
}

TEST(Lexer, MultiCharPunct) {
  DiagnosticEngine D;
  auto T = lexAll("A::B << >>", D);
  ASSERT_EQ(T.size(), 5u);
  EXPECT_TRUE(T[1].isPunct("::"));
  EXPECT_TRUE(T[3].isPunct("<<"));
  EXPECT_TRUE(T[4].isPunct(">>"));
}

TEST(Lexer, LocationsTrackLinesAndColumns) {
  DiagnosticEngine D;
  auto T = lexAll("a\n  bb", D);
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[0].Loc.Col, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[1].Loc.Col, 3u);
}

TEST(Lexer, UnterminatedStringReportsError) {
  DiagnosticEngine D;
  lexAll("\"oops", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Lexer, UnterminatedCommentReportsError) {
  DiagnosticEngine D;
  lexAll("/* never ends", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Lexer, BadCharacterIsReportedAndSkipped) {
  DiagnosticEngine D;
  auto T = lexAll("a @ b", D);
  EXPECT_TRUE(D.hasErrors());
  ASSERT_EQ(T.size(), 2u);
  EXPECT_TRUE(T[1].isIdent("b"));
}

TEST(Lexer, PeekTwoAhead) {
  DiagnosticEngine D;
  Lexer L("a b c", D.addFile("t"), D);
  EXPECT_TRUE(L.peek().isIdent("a"));
  EXPECT_TRUE(L.peek2().isIdent("b"));
  L.next();
  EXPECT_TRUE(L.peek().isIdent("b"));
  EXPECT_TRUE(L.peek2().isIdent("c"));
}

} // namespace
