//===- tests/IntegrationWire.cpp - wire-format equivalence & robustness ---===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimized and naive back ends implement the *same* network contract
/// (paper §2: presentation changes never alter the messages).  These tests
/// prove it byte-for-byte on the evaluation workloads, check XDR framing
/// invariants, fuzz the decoder with corrupt inputs, and property-test
/// round trips across random directory listings.
///
//===----------------------------------------------------------------------===//

#include "ItHarness.h"
#include "it_bn.h"
#include "it_bx.h"
#include "runtime/Interp.h"
#include "runtime/Specialize.h"
#include <cstring>
#include <gtest/gtest.h>
#include <random>
#include <vector>

using namespace flick;

//===----------------------------------------------------------------------===//
// Servants (both prefixes); they record what they saw for comparison.
//===----------------------------------------------------------------------===//

namespace {
std::vector<int32_t> GotInts;
std::vector<F_rect> GotRects;
std::vector<std::pair<std::string, F_stat_info>> GotDirents;
} // namespace

int F_send_ints_1_svc(const F_intseq *a) {
  GotInts.assign(a->intseq_val, a->intseq_val + a->intseq_len);
  return 0;
}
int F_send_rects_1_svc(const F_rectseq *a) {
  GotRects.assign(a->rectseq_val, a->rectseq_val + a->rectseq_len);
  return 0;
}
int F_send_dirents_1_svc(const F_direntseq *a) {
  GotDirents.clear();
  for (uint32_t I = 0; I != a->direntseq_len; ++I)
    GotDirents.emplace_back(a->direntseq_val[I].name,
                            a->direntseq_val[I].info);
  return 0;
}
int N_send_ints_1_svc(const N_intseq *a) {
  GotInts.assign(a->intseq_val, a->intseq_val + a->intseq_len);
  return 0;
}
int N_send_rects_1_svc(const N_rectseq *a) { return 0; }
int N_send_dirents_1_svc(const N_direntseq *a) { return 0; }

namespace {

std::vector<uint8_t> bufBytes(const flick_buf *B) {
  return std::vector<uint8_t>(B->data, B->data + B->len);
}

TEST(WireEquivalence, IntArraysEncodeIdentically) {
  // Optimized (bulk swap-copy) and naive (per-datum calls) stubs must put
  // the very same XDR bytes on the wire.
  std::vector<int32_t> Ints = {0, -1, INT32_MAX, INT32_MIN, 123456789};
  F_intseq FS{uint32_t(Ints.size()), Ints.data()};
  N_intseq NS{uint32_t(Ints.size()), Ints.data()};
  flick_buf FB, NB;
  flick_buf_init(&FB);
  flick_buf_init(&NB);
  ASSERT_EQ(F_send_ints_1_encode_request(&FB, 7, &FS), FLICK_OK);
  ASSERT_EQ(N_send_ints_1_encode_request(&NB, 7, &NS), FLICK_OK);
  EXPECT_EQ(bufBytes(&FB), bufBytes(&NB));
  flick_buf_destroy(&FB);
  flick_buf_destroy(&NB);
}

TEST(WireEquivalence, DirentsEncodeIdentically) {
  char Name0[] = "some-file", Name1[] = "x";
  F_dirent FD[2]{};
  N_dirent ND[2]{};
  FD[0].name = Name0;
  FD[1].name = Name1;
  ND[0].name = Name0;
  ND[1].name = Name1;
  for (int I = 0; I != 30; ++I) {
    FD[0].info.words[I] = ND[0].info.words[I] = 1000 + I;
    FD[1].info.words[I] = ND[1].info.words[I] = 77;
  }
  std::memcpy(FD[0].info.tag, "0123456789abcdef", 16);
  std::memcpy(ND[0].info.tag, "0123456789abcdef", 16);
  std::memset(FD[1].info.tag, 0, 16);
  std::memset(ND[1].info.tag, 0, 16);
  F_direntseq FS{2, FD};
  N_direntseq NS{2, ND};
  flick_buf FB, NB;
  flick_buf_init(&FB);
  flick_buf_init(&NB);
  ASSERT_EQ(F_send_dirents_1_encode_request(&FB, 3, &FS), FLICK_OK);
  ASSERT_EQ(N_send_dirents_1_encode_request(&NB, 3, &NS), FLICK_OK);
  EXPECT_EQ(bufBytes(&FB), bufBytes(&NB));
  flick_buf_destroy(&FB);
  flick_buf_destroy(&NB);
}

TEST(WireEquivalence, OptimizedRequestDecodesThroughNaiveServer) {
  // Cross-decode: optimized encoder, naive decoder.
  std::vector<int32_t> Ints = {5, 6, 7};
  F_intseq FS{3, Ints.data()};
  flick_buf FB;
  flick_buf_init(&FB);
  ASSERT_EQ(F_send_ints_1_encode_request(&FB, 1, &FS), FLICK_OK);
  flick_buf Rep;
  flick_buf_init(&Rep);
  flick_server Srv{};
  flick_arena_reset(&Srv.arena);
  GotInts.clear();
  EXPECT_EQ(N_BENCHPROG_dispatch(&Srv, &FB, &Rep), FLICK_OK);
  EXPECT_EQ(GotInts, Ints);
  flick_buf_destroy(&FB);
  flick_buf_destroy(&Rep);
  flick_arena_destroy(&Srv.arena);
}

TEST(WireFormat, XdrMessagesAreWordAligned) {
  char Name[] = "ab"; // 2 chars forces XDR string padding
  F_dirent D{};
  D.name = Name;
  F_direntseq S{1, &D};
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(F_send_dirents_1_encode_request(&B, 1, &S), FLICK_OK);
  EXPECT_EQ(B.len % 4, 0u) << "XDR data is always a multiple of 4 bytes";
  flick_buf_destroy(&B);
}

TEST(WireFormat, OncHeaderFields) {
  std::vector<int32_t> Ints = {1};
  F_intseq S{1, Ints.data()};
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(F_send_ints_1_encode_request(&B, 0xABCD, &S), FLICK_OK);
  ASSERT_GE(B.len, 48u);
  EXPECT_EQ(flick_dec_u32be(B.data + 0), 0xABCDu); // xid
  EXPECT_EQ(flick_dec_u32be(B.data + 4), 0u);      // CALL
  EXPECT_EQ(flick_dec_u32be(B.data + 8), 2u);      // RPC version
  EXPECT_EQ(flick_dec_u32be(B.data + 12), 0x20000101u); // program
  EXPECT_EQ(flick_dec_u32be(B.data + 16), 1u);     // version
  EXPECT_EQ(flick_dec_u32be(B.data + 20), 1u);     // proc SEND_INTS
  EXPECT_EQ(flick_dec_u32be(B.data + 40), 1u);     // array length
  EXPECT_EQ(flick_dec_u32be(B.data + 44), 1u);     // element big-endian
  flick_buf_destroy(&B);
}

TEST(WireRobustness, OversizedLengthRejected) {
  std::vector<int32_t> Ints = {1, 2};
  F_intseq S{2, Ints.data()};
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(F_send_ints_1_encode_request(&B, 1, &S), FLICK_OK);
  // Claim four billion elements.
  flick_enc_u32be(B.data + 40, 0xF0000000u);
  flick_buf Rep;
  flick_buf_init(&Rep);
  flick_server Srv{};
  EXPECT_EQ(F_BENCHPROG_dispatch(&Srv, &B, &Rep), FLICK_ERR_DECODE);
  flick_buf_destroy(&B);
  flick_buf_destroy(&Rep);
  flick_arena_destroy(&Srv.arena);
}

TEST(WireRobustness, WrongProgramRejected) {
  std::vector<int32_t> Ints = {1};
  F_intseq S{1, Ints.data()};
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(F_send_ints_1_encode_request(&B, 1, &S), FLICK_OK);
  flick_enc_u32be(B.data + 12, 999); // program number
  flick_buf Rep;
  flick_buf_init(&Rep);
  flick_server Srv{};
  EXPECT_EQ(F_BENCHPROG_dispatch(&Srv, &B, &Rep), FLICK_ERR_NO_SUCH_OP);
  flick_buf_destroy(&B);
  flick_buf_destroy(&Rep);
  flick_arena_destroy(&Srv.arena);
}

TEST(WireRobustness, UnknownProcedureRejected) {
  std::vector<int32_t> Ints = {1};
  F_intseq S{1, Ints.data()};
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(F_send_ints_1_encode_request(&B, 1, &S), FLICK_OK);
  flick_enc_u32be(B.data + 20, 99); // proc
  flick_buf Rep;
  flick_buf_init(&Rep);
  flick_server Srv{};
  EXPECT_EQ(F_BENCHPROG_dispatch(&Srv, &B, &Rep), FLICK_ERR_NO_SUCH_OP);
  flick_buf_destroy(&B);
  flick_buf_destroy(&Rep);
  flick_arena_destroy(&Srv.arena);
}

TEST(WireRobustness, TruncationAtEveryBoundary) {
  std::vector<int32_t> Ints = {10, 20, 30, 40};
  F_intseq S{4, Ints.data()};
  flick_buf Full;
  flick_buf_init(&Full);
  ASSERT_EQ(F_send_ints_1_encode_request(&Full, 1, &S), FLICK_OK);
  // Truncating anywhere must produce a clean decode error, never a crash.
  for (size_t Cut = 0; Cut < Full.len; Cut += 3) {
    flick_buf Req, Rep;
    flick_buf_init(&Req);
    flick_buf_init(&Rep);
    flick_buf_ensure(&Req, Cut ? Cut : 1);
    std::memcpy(flick_buf_grab(&Req, Cut), Full.data, Cut);
    flick_server Srv{};
    int Err = F_BENCHPROG_dispatch(&Srv, &Req, &Rep);
    EXPECT_NE(Err, FLICK_OK) << "cut at " << Cut;
    flick_buf_destroy(&Req);
    flick_buf_destroy(&Rep);
    flick_arena_destroy(&Srv.arena);
  }
  flick_buf_destroy(&Full);
}

TEST(WireEquivalence, InterpreterMatchesCompiledStubsOnTheWire) {
  // The ILU-style interpreter and the compiled stubs implement the same
  // XDR contract: the interpreted encoding must equal the compiled
  // request body byte for byte.
  using flick::InterpType;
  static const InterpType IntElem = InterpType::scalar(0, 4);
  static const InterpType SeqTy = InterpType::counted(
      offsetof(F_intseq, intseq_len), offsetof(F_intseq, intseq_val),
      &IntElem, sizeof(int32_t));
  std::vector<int32_t> Ints = {0, -1, INT32_MAX, 42};
  F_intseq S{4, Ints.data()};
  flick_buf Stub, Interp;
  flick_buf_init(&Stub);
  flick_buf_init(&Interp);
  ASSERT_EQ(F_send_ints_1_encode_request(&Stub, 1, &S), FLICK_OK);
  ASSERT_EQ(flick_interp_encode(&Interp, SeqTy, &S,
                                flick::InterpWire{true, true}),
            FLICK_OK);
  // The interpreter encodes the body only; skip the 40-byte ONC header.
  ASSERT_EQ(Stub.len, 40 + Interp.len);
  EXPECT_EQ(std::memcmp(Stub.data + 40, Interp.data, Interp.len), 0);
  flick_buf_destroy(&Stub);
  flick_buf_destroy(&Interp);
}

TEST(WireEquivalence, SpecializedMatchesInterpAndCompiledStubs) {
  // The three-way contract: interpreter, runtime-specialized program, and
  // compiled stub put the very same XDR bytes on the wire -- here for the
  // dirent workload, the presentation with every node kind in play
  // (cstring, fixed array, raw bytes, counted sequence of structs).
  using flick::InterpType;
  static const InterpType IntElem = InterpType::scalar(0, 4);
  static const InterpType DirentTy = InterpType::structOf({
      InterpType::cstring(offsetof(F_dirent, name)),
      InterpType::fixedArray(offsetof(F_dirent, info.words), &IntElem, 30,
                             4),
      InterpType::bytes(offsetof(F_dirent, info.tag), 16),
  });
  static const InterpType SeqTy = InterpType::counted(
      offsetof(F_direntseq, direntseq_len),
      offsetof(F_direntseq, direntseq_val), &DirentTy, sizeof(F_dirent));
  const flick::InterpWire Xdr{true, true};

  char Name0[] = "three-way", Name1[] = "f";
  F_dirent D[2]{};
  D[0].name = Name0;
  D[1].name = Name1;
  for (int I = 0; I != 30; ++I)
    D[0].info.words[I] = 3000 + I;
  std::memcpy(D[1].info.tag, "fedcba9876543210", 16);
  F_direntseq S{2, D};

  flick_buf Stub, Interp, Spec;
  flick_buf_init(&Stub);
  flick_buf_init(&Interp);
  flick_buf_init(&Spec);
  ASSERT_EQ(F_send_dirents_1_encode_request(&Stub, 1, &S), FLICK_OK);
  ASSERT_EQ(flick_interp_encode(&Interp, SeqTy, &S, Xdr), FLICK_OK);
  const flick::flick_spec_program *P = flick::flick_specialize(SeqTy, Xdr);
  ASSERT_NE(P, nullptr);
  ASSERT_EQ(flick_spec_encode(&Spec, P, &S), FLICK_OK);

  ASSERT_EQ(Interp.len, Spec.len);
  EXPECT_EQ(std::memcmp(Interp.data, Spec.data, Spec.len), 0);
  ASSERT_EQ(Stub.len, 40 + Spec.len); // body behind the ONC header
  EXPECT_EQ(std::memcmp(Stub.data + 40, Spec.data, Spec.len), 0);

  // And the specialized decoder accepts the compiled stub's body.
  flick_buf Body;
  flick_buf_init(&Body);
  ASSERT_EQ(flick_buf_ensure(&Body, Spec.len), FLICK_OK);
  std::memcpy(flick_buf_grab(&Body, Spec.len), Stub.data + 40, Spec.len);
  F_direntseq Out{};
  flick_arena Ar{};
  ASSERT_EQ(flick_spec_decode(&Body, P, &Out, &Ar), FLICK_OK);
  ASSERT_EQ(Out.direntseq_len, 2u);
  EXPECT_STREQ(Out.direntseq_val[0].name, Name0);
  EXPECT_STREQ(Out.direntseq_val[1].name, Name1);
  EXPECT_EQ(std::memcmp(Out.direntseq_val[0].info.words, D[0].info.words,
                        120),
            0);
  EXPECT_EQ(std::memcmp(Out.direntseq_val[1].info.tag, D[1].info.tag, 16),
            0);
  flick_arena_destroy(&Ar);
  flick_buf_destroy(&Body);
  flick_buf_destroy(&Stub);
  flick_buf_destroy(&Interp);
  flick_buf_destroy(&Spec);
}

//===----------------------------------------------------------------------===//
// Property sweep: random directory listings round-trip end to end.
//===----------------------------------------------------------------------===//

class DirentSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DirentSweep, RandomListingsRoundTrip) {
  std::mt19937 Rng(GetParam());
  ItRig Rig(F_BENCHPROG_dispatch);

  uint32_t N = Rng() % 40;
  std::vector<std::string> Names;
  std::vector<F_dirent> Entries(N);
  for (uint32_t I = 0; I != N; ++I) {
    std::string Name(Rng() % 60, 'a');
    for (char &C : Name)
      C = static_cast<char>('a' + Rng() % 26);
    Names.push_back(Name);
    for (int W = 0; W != 30; ++W)
      Entries[I].info.words[W] = Rng();
    for (int T = 0; T != 16; ++T)
      Entries[I].info.tag[T] = static_cast<uint8_t>(Rng());
  }
  for (uint32_t I = 0; I != N; ++I)
    Entries[I].name = const_cast<char *>(Names[I].c_str());

  F_direntseq S{N, Entries.data()};
  GotDirents.clear();
  ASSERT_EQ(F_send_dirents_1(&S, Rig.client()), FLICK_OK);
  ASSERT_EQ(GotDirents.size(), N);
  for (uint32_t I = 0; I != N; ++I) {
    EXPECT_EQ(GotDirents[I].first, Names[I]);
    EXPECT_EQ(std::memcmp(GotDirents[I].second.words,
                          Entries[I].info.words, 120),
              0);
    EXPECT_EQ(std::memcmp(GotDirents[I].second.tag, Entries[I].info.tag,
                          16),
              0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirentSweep, ::testing::Range(1u, 13u));

// Size sweep: integer arrays of awkward lengths round-trip through the
// full client/dispatch path (0, 1, odd, just-around buffer growth, large).
class IntSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(IntSizeSweep, RoundTripsExactly) {
  uint32_t N = GetParam();
  ItRig Rig(F_BENCHPROG_dispatch);
  std::vector<int32_t> Data(N);
  for (uint32_t I = 0; I != N; ++I)
    Data[I] = static_cast<int32_t>(I * 2654435761u);
  F_intseq S{N, Data.data()};
  GotInts.assign(1, -999); // sentinel
  ASSERT_EQ(F_send_ints_1(&S, Rig.client()), FLICK_OK);
  EXPECT_EQ(GotInts, Data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IntSizeSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 16u, 127u,
                                           128u, 129u, 1000u, 4096u,
                                           65536u));

} // namespace
