//===- tests/CastPrintTests.cpp - CAST pretty-printer tests ---------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cast/Builder.h"
#include "support/CodeWriter.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

class CastPrint : public ::testing::Test {
protected:
  CastContext Ctx;
  CastBuilder B{Ctx};

  std::string stmtText(CastStmt *S) {
    CodeWriter W;
    printCastStmt(S, W);
    return W.take();
  }
  std::string declText(CastDecl *D) {
    CodeWriter W;
    printCastDecl(D, W);
    return W.take();
  }
};

TEST_F(CastPrint, DeclaratorSyntax) {
  EXPECT_EQ(printCastType(B.prim("int"), "x"), "int x");
  EXPECT_EQ(printCastType(B.ptr(B.prim("char")), "s"), "char *s");
  EXPECT_EQ(printCastType(B.ptr(B.ptr(B.prim("char"))), "s"), "char **s");
  EXPECT_EQ(printCastType(B.arr(B.prim("long"), 4), "a"), "long a[4]");
  EXPECT_EQ(printCastType(B.arr(B.arr(B.prim("long"), 3), 2), "g"),
            "long g[2][3]");
  EXPECT_EQ(printCastType(B.ptr(B.arr(B.prim("int"), 8)), "p"),
            "int (*p)[8]");
  EXPECT_EQ(printCastType(B.arr(B.ptr(B.prim("char")), 4), "argv"),
            "char *argv[4]");
  EXPECT_EQ(printCastType(B.constPtr(B.prim("char")), "s"),
            "const char *s");
  EXPECT_EQ(printCastType(B.structTy("foo"), ""), "struct foo");
}

TEST_F(CastPrint, ExpressionPrecedence) {
  // (a + b) * c needs parens; a + b * c does not.
  auto *E1 = B.mul(B.add(B.id("a"), B.id("b")), B.id("c"));
  EXPECT_EQ(printCastExpr(E1), "(a + b) * c");
  auto *E2 = B.add(B.id("a"), B.mul(B.id("b"), B.id("c")));
  EXPECT_EQ(printCastExpr(E2), "a + b * c");
}

TEST_F(CastPrint, UnaryDoesNotFuse) {
  auto *E = B.un("-", B.un("-", B.id("x")));
  EXPECT_EQ(printCastExpr(E), "- -x");
  auto *A = B.addr(B.addr(B.id("x")));
  EXPECT_EQ(printCastExpr(A), "& &x");
}

TEST_F(CastPrint, MemberCallsIndex) {
  auto *E = B.callE(B.id("f"), {B.mem(B.id("s"), "len"),
                                B.idx(B.arrow(B.id("p"), "buf"), B.num(3))});
  EXPECT_EQ(printCastExpr(E), "f(s.len, p->buf[3])");
}

TEST_F(CastPrint, MemberOfDerefParenthesized) {
  auto *E = B.mem(B.deref(B.id("p")), "x");
  EXPECT_EQ(printCastExpr(E), "(*p).x");
}

TEST_F(CastPrint, CastsAndSizeof) {
  auto *E = B.castTo(B.ptr(B.prim("uint8_t")),
                     B.add(B.id("p"), B.num(4)));
  EXPECT_EQ(printCastExpr(E), "(uint8_t *)(p + 4)");
  EXPECT_EQ(printCastExpr(B.sizeofTy(B.prim("int32_t"))),
            "sizeof(int32_t)");
}

TEST_F(CastPrint, MixedLogicalAlwaysParenthesized) {
  auto *E = B.bin("||", B.bin("&&", B.id("a"), B.id("b")), B.id("c"));
  EXPECT_EQ(printCastExpr(E), "(a && b) || c");
}

TEST_F(CastPrint, TernaryAndAssignment) {
  auto *E = B.assign(B.id("x"), B.ternary(B.id("c"), B.num(1), B.num(2)));
  EXPECT_EQ(printCastExpr(E), "x = c ? 1 : 2");
}

TEST_F(CastPrint, StringAndCharLiterals) {
  EXPECT_EQ(printCastExpr(B.str("a\"b")), "\"a\\\"b\"");
  EXPECT_EQ(printCastExpr(B.chr('\'')), "'\\''");
  EXPECT_EQ(printCastExpr(B.unum(7)), "7u");
}

TEST_F(CastPrint, IfElseStatement) {
  auto *S = B.ifStmt(B.id("c"), B.block({B.ret(B.num(1))}),
                     B.block({B.ret(B.num(2))}));
  EXPECT_EQ(stmtText(S), "if (c) {\n  return 1;\n} else {\n  return 2;\n}\n");
}

TEST_F(CastPrint, ForLoop) {
  auto *S = B.forStmt(B.varDecl(B.prim("size_t"), "i", B.num(0)),
                      B.lt(B.id("i"), B.id("n")),
                      B.assign(B.id("i"), B.add(B.id("i"), B.num(1))),
                      B.block({B.exprStmt(B.call("f", {B.id("i")}))}));
  EXPECT_EQ(stmtText(S),
            "for (size_t i = 0; i < n; i = i + 1) {\n  f(i);\n}\n");
}

TEST_F(CastPrint, SwitchBracesEachCase) {
  std::vector<CastSwitchCase> Cases(2);
  Cases[0].Values = {B.num(1)};
  Cases[0].Stmts = {B.varDecl(B.prim("int"), "x", B.num(0))};
  Cases[1].Stmts = {B.ret(B.num(0))}; // default
  Cases[1].FallsThrough = true;
  auto *S = B.switchStmt(B.id("op"), std::move(Cases));
  std::string Text = stmtText(S);
  EXPECT_NE(Text.find("case 1: {"), std::string::npos) << Text;
  EXPECT_NE(Text.find("default: {"), std::string::npos);
  EXPECT_NE(Text.find("break;"), std::string::npos);
}

TEST_F(CastPrint, FunctionDefinitionAndPrototype) {
  std::vector<CastParam> Ps = {{B.ptr(B.prim("char")), "s"},
                               {B.prim("int"), "n"}};
  auto *Proto = B.func(B.prim("int"), "f", Ps, nullptr);
  EXPECT_EQ(declText(Proto), "int f(char *s, int n);\n");
  auto *Def = B.func(B.prim("int"), "f", Ps,
                     B.block({B.ret(B.id("n"))}), true, true);
  EXPECT_EQ(declText(Def),
            "static inline int f(char *s, int n) {\n  return n;\n}\n");
  auto *NoArgs = B.func(B.voidTy(), "g", {}, nullptr);
  EXPECT_EQ(declText(NoArgs), "void g(void);\n");
}

TEST_F(CastPrint, AggregateAndTypedefDecls) {
  auto *S = B.structDef("pt", {{B.prim("int32_t"), "x"},
                               {B.prim("int32_t"), "y"}});
  EXPECT_EQ(declText(S), "struct pt {\n  int32_t x;\n  int32_t y;\n};\n");
  auto *T = B.typedefDecl(B.structTy("pt"), "pt");
  EXPECT_EQ(declText(T), "typedef struct pt pt;\n");
  auto *E = B.enumDef("color", {{"RED", 0}, {"BLUE", 1}});
  EXPECT_EQ(declText(E), "enum color {\n  RED = 0,\n  BLUE = 1,\n};\n");
}

TEST_F(CastPrint, HeaderGuardWrapsFile) {
  CastFile F;
  F.HeaderGuard = "TEST_H";
  F.Includes = {"<stdint.h>"};
  F.add(B.rawDecl("#define X 1"));
  std::string Text = printCastFile(F);
  EXPECT_NE(Text.find("#ifndef TEST_H"), std::string::npos);
  EXPECT_NE(Text.find("#define TEST_H"), std::string::npos);
  EXPECT_NE(Text.find("#include <stdint.h>"), std::string::npos);
  EXPECT_NE(Text.find("#endif /* TEST_H */"), std::string::npos);
}

} // namespace
