//===- tests/TransportConformanceTests.cpp - transport contract -----------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared Transport contract (Transport.h file comment), checked
/// against every implementation the factory can make: request/reply
/// integrity through a worker pool, the zero-copy sendv/recvInto/release
/// surface, backpressure accounting (one queue_full per send that meets a
/// full queue or socket buffer), shutdown-while-blocked on every wait
/// site, and drain-then-stop.  Each test is value-parameterized over
/// "threaded", "sharded", and "socket", so a new transport joins the
/// suite by adding one literal.  Runs under TSan in CI.
///
//===----------------------------------------------------------------------===//

#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include "runtime/transport/ShardedLink.h"
#include "runtime/transport/SocketLink.h"
#include "runtime/transport/ThreadedLink.h"
#include "runtime/transport/Transport.h"
#include <cstring>
#include <gtest/gtest.h>
#include <string>
#include <thread>
#include <vector>

using namespace flick;

namespace {

int echoDispatch(flick_server *, flick_buf *Req, flick_buf *Rep) {
  size_t N = Req->len - Req->pos;
  if (flick_buf_ensure(Rep, N) != FLICK_OK)
    return FLICK_ERR_ALLOC;
  std::memcpy(flick_buf_grab(Rep, N), Req->data + Req->pos, N);
  return FLICK_OK;
}

struct ScopedMetrics {
  flick_metrics M;
  ScopedMetrics() { flick_metrics_enable(&M); }
  ~ScopedMetrics() { flick_metrics_disable(); }
};

struct ScopedGauges {
  ScopedGauges() { flick_gauges_enable(); }
  ~ScopedGauges() { flick_gauges_disable(); }
};

std::vector<uint8_t> pattern(unsigned Seed, unsigned Call, size_t N) {
  std::vector<uint8_t> V(N);
  for (size_t I = 0; I != N; ++I)
    V[I] = static_cast<uint8_t>(Seed * 131 + Call * 31 + I);
  return V;
}

unsigned driveEchoes(Transport &T, unsigned Seed, unsigned Calls,
                     size_t Bytes) {
  flick_client Cli;
  flick_client_init(&Cli, &T.connect());
  unsigned Ok = 0;
  for (unsigned C = 0; C != Calls; ++C) {
    std::vector<uint8_t> Want = pattern(Seed, C, Bytes);
    flick_buf *Req = flick_client_begin(&Cli);
    if (flick_buf_ensure(Req, Bytes) != FLICK_OK)
      break;
    std::memcpy(flick_buf_grab(Req, Bytes), Want.data(), Bytes);
    if (flick_client_invoke(&Cli) != FLICK_OK)
      break;
    if (Cli.rep.len == Bytes &&
        std::memcmp(Cli.rep.data, Want.data(), Bytes) == 0)
      ++Ok;
  }
  flick_client_destroy(&Cli);
  return Ok;
}

TEST(TransportFactory, ResolvesNamesAndDefaultsToSharded) {
  auto Default = makeTransport(nullptr);
  ASSERT_NE(Default, nullptr);
  EXPECT_NE(dynamic_cast<ShardedLink *>(Default.get()), nullptr);
  auto Threaded = makeTransport("threaded");
  ASSERT_NE(Threaded, nullptr);
  EXPECT_NE(dynamic_cast<ThreadedLink *>(Threaded.get()), nullptr);
  auto Sharded = makeTransport("sharded");
  ASSERT_NE(Sharded, nullptr);
  EXPECT_NE(dynamic_cast<ShardedLink *>(Sharded.get()), nullptr);
  auto Socket = makeTransport("socket");
  ASSERT_NE(Socket, nullptr);
  EXPECT_NE(dynamic_cast<SocketLink *>(Socket.get()), nullptr);
  EXPECT_EQ(makeTransport("carrier-pigeon"), nullptr);
}

class TransportConformance : public ::testing::TestWithParam<const char *> {
protected:
  bool isSocket() const { return std::string(GetParam()) == "socket"; }
  std::unique_ptr<Transport> make(size_t QueueCap = 256) {
    auto T = makeTransport(GetParam(), QueueCap);
    EXPECT_NE(T, nullptr);
    return T;
  }
};

TEST_P(TransportConformance, EchoAcrossPoolPreservesPayloads) {
  auto T = make();
  flick_server_pool Pool;
  ASSERT_EQ(flick_server_pool_start(&Pool, T.get(), echoDispatch, 4),
            FLICK_OK);
  const unsigned Clients = 3, Calls = 25;
  std::vector<unsigned> Verified(Clients, 0);
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I != Clients; ++I)
    Ts.emplace_back([&, I] {
      Verified[I] = driveEchoes(*T, I, Calls, 64 + I * 32);
    });
  for (auto &Th : Ts)
    Th.join();
  flick_server_pool_stop(&Pool);
  for (unsigned I = 0; I != Clients; ++I)
    EXPECT_EQ(Verified[I], Calls) << "client " << I;
}

TEST_P(TransportConformance, SendvRecvIntoReleaseRoundTrip) {
  auto T = make();
  Channel &C = T->connect();
  Channel &W = T->workerEnd();
  // Request: three gather segments; the worker must see one contiguous
  // payload regardless of how the transport moved them.
  std::vector<uint8_t> A = pattern(1, 0, 1000), B = pattern(2, 0, 3000),
                       D = pattern(3, 0, 50);
  flick_iov Segs[3] = {{A.data(), A.size()},
                       {B.data(), B.size()},
                       {D.data(), D.size()}};
  ASSERT_EQ(C.sendv(Segs, 3), FLICK_OK);

  flick_buf Req;
  flick_buf_init(&Req);
  ASSERT_EQ(W.recvInto(&Req), FLICK_OK);
  ASSERT_EQ(Req.len, A.size() + B.size() + D.size());
  EXPECT_EQ(std::memcmp(Req.data, A.data(), A.size()), 0);
  EXPECT_EQ(std::memcmp(Req.data + A.size(), B.data(), B.size()), 0);
  EXPECT_EQ(std::memcmp(Req.data + A.size() + B.size(), D.data(), D.size()),
            0);
  W.release(&Req);
  EXPECT_EQ(Req.data, nullptr);

  // Reply: two segments back through the same worker channel.
  flick_iov Rep[2] = {{B.data(), B.size()}, {A.data(), A.size()}};
  ASSERT_EQ(W.sendv(Rep, 2), FLICK_OK);
  flick_buf Got;
  flick_buf_init(&Got);
  ASSERT_EQ(C.recvInto(&Got), FLICK_OK);
  ASSERT_EQ(Got.len, A.size() + B.size());
  EXPECT_EQ(std::memcmp(Got.data, B.data(), B.size()), 0);
  EXPECT_EQ(std::memcmp(Got.data + B.size(), A.data(), A.size()), 0);
  C.release(&Got);
  T->shutdown();
}

TEST_P(TransportConformance, BackpressureCountsQueueFullOncePerSend) {
  ScopedGauges Gauges;
  // Capacity 1: a couple of queued messages for the queue transports
  // (rings round up), ~1 KiB of socket send buffer.  With no worker ever
  // draining, the sender below must meet "full" within a few sends.
  auto T = make(/*QueueCap=*/1);
  Channel &C = T->connect();
  std::vector<uint8_t> Payload(isSocket() ? (1u << 20) : 4, 0xAB);

  flick_metrics SenderM;
  int SendErr = -1;
  std::thread Sender([&] {
    flick_metrics_enable(&SenderM);
    // Sends succeed while there is space; the one that meets the full
    // condition counts queue_full once and blocks until shutdown fails
    // it out.
    while ((SendErr = C.send(Payload.data(), Payload.size())) == FLICK_OK)
      ;
    flick_metrics_disable();
  });
  // The queue_full_waits gauge flips exactly when the sender has met the
  // full condition and is about to block; only then is shutdown's "fail
  // the blocked sender" path actually exercised.
  while (flick_gauges_global.queue_full_waits.load(
             std::memory_order_relaxed) == 0)
    std::this_thread::yield();
  T->shutdown();
  Sender.join();
  EXPECT_EQ(SendErr, FLICK_ERR_TRANSPORT);
  EXPECT_EQ(SenderM.queue_full, 1u);
}

TEST_P(TransportConformance, ShutdownUnblocksBlockedReceivers) {
  auto T = make();
  Channel &Conn = T->connect();
  Channel &Worker = T->workerEnd();
  int ConnErr = -1, WorkerErr = -1;
  std::thread ClientT([&] {
    std::vector<uint8_t> Out;
    ConnErr = Conn.recv(Out); // no reply will ever come
  });
  std::thread WorkerT([&] {
    std::vector<uint8_t> Out;
    WorkerErr = Worker.recv(Out); // no request will ever come
  });
  T->shutdown();
  ClientT.join();
  WorkerT.join();
  EXPECT_EQ(ConnErr, FLICK_ERR_TRANSPORT);
  EXPECT_EQ(WorkerErr, FLICK_ERR_TRANSPORT);
}

TEST_P(TransportConformance, SendAndRecvFailAfterShutdown) {
  auto T = make();
  Channel &Conn = T->connect();
  Channel &Worker = T->workerEnd();
  T->shutdown();
  uint8_t B[4] = {9, 9, 9, 9};
  EXPECT_EQ(Conn.send(B, sizeof B), FLICK_ERR_TRANSPORT);
  std::vector<uint8_t> Out;
  EXPECT_EQ(Conn.recv(Out), FLICK_ERR_TRANSPORT);
  EXPECT_EQ(Worker.recv(Out), FLICK_ERR_TRANSPORT);
  T->shutdown(); // idempotent
}

TEST_P(TransportConformance, WorkerDrainsAcceptedRequestsAfterShutdown) {
  auto T = make();
  Channel &Conn = T->connect();
  const int K = 5;
  for (int I = 0; I != K; ++I) {
    uint8_t B[4] = {static_cast<uint8_t>(0x10 + I)};
    ASSERT_EQ(Conn.send(B, sizeof B), FLICK_OK);
  }
  EXPECT_NE(T->pendingRequests(), 0u);
  T->shutdown();
  // One connection's requests stay FIFO on every transport, and requests
  // accepted before shutdown still come out before the drained end fails.
  Channel &Worker = T->workerEnd();
  for (int I = 0; I != K; ++I) {
    std::vector<uint8_t> Out;
    ASSERT_EQ(Worker.recv(Out), FLICK_OK) << "request " << I;
    ASSERT_EQ(Out.size(), 4u);
    EXPECT_EQ(Out[0], 0x10 + I);
  }
  std::vector<uint8_t> Out;
  EXPECT_EQ(Worker.recv(Out), FLICK_ERR_TRANSPORT);
  EXPECT_EQ(T->pendingRequests(), 0u);
}

TEST_P(TransportConformance, MergedPoolMetricsAreExact) {
  ScopedMetrics Scope;
  flick_metrics &Main = Scope.M;
  auto T = make();
  flick_server_pool Pool;
  ASSERT_EQ(flick_server_pool_start(&Pool, T.get(), echoDispatch, 2),
            FLICK_OK);

  const unsigned Clients = 2, Calls = 10;
  const size_t Bytes = 64;
  std::vector<flick_metrics> CliM(Clients);
  std::vector<unsigned> Verified(Clients, 0);
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I != Clients; ++I)
    Ts.emplace_back([&, I] {
      flick_metrics_enable(&CliM[I]);
      Verified[I] = driveEchoes(*T, I, Calls, Bytes);
      flick_metrics_disable();
    });
  for (auto &Th : Ts)
    Th.join();
  flick_server_pool_stop(&Pool);
  for (flick_metrics &M : CliM)
    flick_metrics_merge(&Main, &M);

  for (unsigned I = 0; I != Clients; ++I)
    ASSERT_EQ(Verified[I], Calls);
  const uint64_t N = Clients * Calls;
  EXPECT_EQ(Main.rpcs_sent, N);
  EXPECT_EQ(Main.replies_received, N);
  EXPECT_EQ(Main.rpcs_handled, N);
  EXPECT_EQ(Main.replies_sent, N);
  EXPECT_EQ(Main.request_bytes, N * Bytes);
  EXPECT_EQ(Main.reply_bytes, N * Bytes);
  EXPECT_EQ(Main.server_request_bytes, N * Bytes);
  EXPECT_EQ(Main.server_reply_bytes, N * Bytes);
  // Clean shutdown must not show up as transport faults on any transport.
  EXPECT_EQ(Main.transport_errors, 0u);
  EXPECT_EQ(Main.decode_errors, 0u);
  EXPECT_EQ(Main.rpc_latency.count, N);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportConformance,
                         ::testing::Values("threaded", "sharded", "socket"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

} // namespace
