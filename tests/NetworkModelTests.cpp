//===- tests/NetworkModelTests.cpp - simulated wire-time tests ------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for NetworkModel's wire-time accounting: the per-byte /
/// per-message / per-packet formula on known inputs, the latency floor on
/// empty messages, and agreement between the flick_metrics wire-time
/// counter and the model's own prediction for a round trip of known
/// payload (one request message plus one reply message).
///
//===----------------------------------------------------------------------===//

#include "runtime/transport/LocalLink.h"
#include "runtime/flick_runtime.h"
#include <cstring>
#include <gtest/gtest.h>

using namespace flick;

namespace {

int echoDispatch(flick_server *, flick_buf *Req, flick_buf *Rep) {
  size_t N = Req->len - Req->pos;
  if (flick_buf_ensure(Rep, N) != FLICK_OK)
    return FLICK_ERR_ALLOC;
  std::memcpy(flick_buf_grab(Rep, N), Req->data + Req->pos, N);
  return FLICK_OK;
}

struct Rig {
  LocalLink Link;
  flick_server Srv;
  flick_client Cli;

  Rig() {
    flick_server_init(&Srv, &Link.serverEnd(), echoDispatch);
    Link.setPump(
        [this] { return flick_server_handle_one(&Srv) == FLICK_OK; });
    flick_client_init(&Cli, &Link.clientEnd());
  }
  ~Rig() {
    flick_client_destroy(&Cli);
    flick_server_destroy(&Srv);
  }
};

/// 8 Mbit/s => exactly 1 us per byte, so expectations stay readable.
NetworkModel knownModel() {
  return NetworkModel{"test", 8.0e6, 100.0, 1000, 10.0};
}

TEST(NetworkModel, FormulaSumsPerBytePerMessageAndPerPacketCosts) {
  NetworkModel M = knownModel();
  // 2500 bytes: 100 us/message + 2500 us serialization + 3 packets * 10 us.
  EXPECT_DOUBLE_EQ(M.wireTimeUs(2500), 100.0 + 2500.0 + 30.0);
  // One byte still pays a whole packet.
  EXPECT_DOUBLE_EQ(M.wireTimeUs(1), 100.0 + 1.0 + 10.0);
  // Exactly one MTU is exactly one packet.
  EXPECT_DOUBLE_EQ(M.wireTimeUs(1000), 100.0 + 1000.0 + 10.0);
  EXPECT_DOUBLE_EQ(M.wireTimeUs(1001), 100.0 + 1001.0 + 20.0);
}

TEST(NetworkModel, EmptyMessagePaysTheLatencyFloor) {
  NetworkModel M = knownModel();
  // Per-message overhead plus one forced packet: the floor below which no
  // message can travel, no matter how small.
  EXPECT_DOUBLE_EQ(M.wireTimeUs(0), 100.0 + 10.0);
}

TEST(NetworkModel, IdealTransportIsFree) {
  NetworkModel M = NetworkModel::ideal();
  EXPECT_DOUBLE_EQ(M.wireTimeUs(0), 0.0);
  EXPECT_DOUBLE_EQ(M.wireTimeUs(1 << 20), 0.0);
}

TEST(NetworkModel, FactoriesOrderByEffectiveBandwidth) {
  EXPECT_LT(NetworkModel::ethernet10().EffectiveBitsPerSec,
            NetworkModel::ethernet100().EffectiveBitsPerSec);
  EXPECT_LT(NetworkModel::ethernet100().EffectiveBitsPerSec,
            NetworkModel::myrinet640().EffectiveBitsPerSec);
}

TEST(NetworkModel, ClockAccumulatesOneEntryPerMessage) {
  SimClock Clock;
  Rig R;
  R.Link.setModel(knownModel(), &Clock);
  flick_buf *Req = flick_client_begin(&R.Cli);
  ASSERT_EQ(flick_buf_ensure(Req, 500), FLICK_OK);
  std::memset(flick_buf_grab(Req, 500), 7, 500);
  ASSERT_EQ(flick_client_invoke(&R.Cli), FLICK_OK);
  // Echo server: request and reply are both 500 bytes => two messages.
  EXPECT_DOUBLE_EQ(Clock.totalUs(), 2 * knownModel().wireTimeUs(500));
}

TEST(NetworkModel, MetricsWireTimeMatchesModelPredictionOnKnownPayload) {
  flick_metrics M;
  flick_metrics_enable(&M);
  SimClock Clock;
  Rig R;
  R.Link.setModel(knownModel(), &Clock);

  const size_t Payload = 2500;
  flick_buf *Req = flick_client_begin(&R.Cli);
  ASSERT_EQ(flick_buf_ensure(Req, Payload), FLICK_OK);
  std::memset(flick_buf_grab(Req, Payload), 9, Payload);
  ASSERT_EQ(flick_client_invoke(&R.Cli), FLICK_OK);
  flick_metrics_disable();

  double Predicted = 2 * knownModel().wireTimeUs(Payload);
  EXPECT_DOUBLE_EQ(M.wire_time_us, Predicted);
  EXPECT_DOUBLE_EQ(M.wire_time_us, Clock.totalUs());
}

TEST(NetworkModel, UnmodeledLinkAccountsNothing) {
  flick_metrics M;
  flick_metrics_enable(&M);
  Rig R; // no setModel: ideal in-process link
  flick_buf *Req = flick_client_begin(&R.Cli);
  ASSERT_EQ(flick_buf_ensure(Req, 64), FLICK_OK);
  std::memset(flick_buf_grab(Req, 64), 1, 64);
  ASSERT_EQ(flick_client_invoke(&R.Cli), FLICK_OK);
  flick_metrics_disable();
  EXPECT_DOUBLE_EQ(M.wire_time_us, 0.0);
}

} // namespace
