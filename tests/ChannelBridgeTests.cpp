//===- tests/ChannelBridgeTests.cpp - Channel default-bridge tests --------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Channel base-class default bridges: a transport that
/// overrides only the flat send()/recv() pair must get working
/// scatter-gather entry points for free -- sendv flattens segments in wire
/// order at the cost of one accounted staging copy, recvInto stages
/// through recv(), and release is a no-op that leaves the buffer's
/// storage alone.  Errors from the flat pair must surface unchanged.
///
//===----------------------------------------------------------------------===//

#include "runtime/Channel.h"
#include "runtime/flick_runtime.h"
#include <cstring>
#include <deque>
#include <gtest/gtest.h>
#include <vector>

using namespace flick;

namespace {

/// Minimal loopback transport overriding ONLY the flat pair, exactly the
/// subclass the base-class bridges exist for.
class FlatOnlyChannel final : public Channel {
public:
  int send(const uint8_t *Data, size_t Len) override {
    if (FailSends)
      return FLICK_ERR_TRANSPORT;
    Queue.emplace_back(Data, Data + Len);
    return FLICK_OK;
  }
  int recv(std::vector<uint8_t> &Out) override {
    if (Queue.empty())
      return FLICK_ERR_TRANSPORT;
    Out = std::move(Queue.front());
    Queue.pop_front();
    return FLICK_OK;
  }

  bool FailSends = false;
  std::deque<std::vector<uint8_t>> Queue;
};

struct ScopedMetrics {
  flick_metrics M;
  ScopedMetrics() { flick_metrics_enable(&M); }
  ~ScopedMetrics() { flick_metrics_disable(); }
};

TEST(ChannelBridge, SendvFlattensSegmentsInOrder) {
  FlatOnlyChannel Ch;
  const uint8_t A[] = {1, 2, 3};
  const uint8_t B[] = {4, 5};
  const uint8_t C[] = {6, 7, 8, 9};
  flick_iov Segs[] = {{A, sizeof A}, {B, sizeof B}, {C, sizeof C}};
  ASSERT_EQ(Ch.sendv(Segs, 3), FLICK_OK);
  std::vector<uint8_t> Out;
  ASSERT_EQ(Ch.recv(Out), FLICK_OK);
  const uint8_t Want[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  ASSERT_EQ(Out.size(), sizeof Want);
  EXPECT_EQ(std::memcmp(Out.data(), Want, sizeof Want), 0);
}

TEST(ChannelBridge, SendvCountsOneStagingCopy) {
  ScopedMetrics S;
  FlatOnlyChannel Ch;
  const uint8_t A[16] = {}, B[48] = {};
  flick_iov Segs[] = {{A, sizeof A}, {B, sizeof B}};
  ASSERT_EQ(Ch.sendv(Segs, 2), FLICK_OK);
  // The bridge pays exactly one bulk copy to flatten; FlatOnlyChannel
  // itself does no accounting.
  EXPECT_EQ(S.M.bytes_copied, 64u);
  EXPECT_EQ(S.M.copy_ops, 1u);
}

TEST(ChannelBridge, RecvIntoStagesThroughRecv) {
  ScopedMetrics S;
  FlatOnlyChannel Ch;
  uint8_t Msg[32];
  for (size_t I = 0; I != sizeof Msg; ++I)
    Msg[I] = static_cast<uint8_t>(0xC0 + I);
  ASSERT_EQ(Ch.send(Msg, sizeof Msg), FLICK_OK);

  flick_buf Into;
  flick_buf_init(&Into);
  ASSERT_EQ(Ch.recvInto(&Into), FLICK_OK);
  ASSERT_EQ(Into.len, sizeof Msg);
  EXPECT_EQ(Into.pos, 0u);
  EXPECT_EQ(std::memcmp(Into.data, Msg, sizeof Msg), 0);
  // One staging copy out of the recv vector into the caller's buffer.
  EXPECT_EQ(S.M.bytes_copied, 32u);
  EXPECT_EQ(S.M.copy_ops, 1u);
  flick_buf_destroy(&Into);
}

TEST(ChannelBridge, RecvIntoResetsStaleBufferState) {
  FlatOnlyChannel Ch;
  const uint8_t Msg[] = {0xAA, 0xBB};
  ASSERT_EQ(Ch.send(Msg, sizeof Msg), FLICK_OK);
  flick_buf Into;
  flick_buf_init(&Into);
  // Dirty the buffer as a previous call would have.
  ASSERT_EQ(flick_buf_ensure(&Into, 64), FLICK_OK);
  std::memset(flick_buf_grab(&Into, 64), 0xFF, 64);
  Into.pos = 17;
  ASSERT_EQ(Ch.recvInto(&Into), FLICK_OK);
  EXPECT_EQ(Into.len, sizeof Msg);
  EXPECT_EQ(Into.pos, 0u);
  EXPECT_EQ(Into.data[0], 0xAA);
  flick_buf_destroy(&Into);
}

TEST(ChannelBridge, ReleaseDefaultLeavesBufferAlone) {
  FlatOnlyChannel Ch;
  const uint8_t Msg[] = {7, 7, 7};
  ASSERT_EQ(Ch.send(Msg, sizeof Msg), FLICK_OK);
  flick_buf Into;
  flick_buf_init(&Into);
  ASSERT_EQ(Ch.recvInto(&Into), FLICK_OK);
  uint8_t *Data = Into.data;
  size_t Cap = Into.cap;
  Ch.release(&Into);
  // Default release reclaims nothing: flick_buf keeps managing its own
  // storage and the contents survive.
  EXPECT_EQ(Into.data, Data);
  EXPECT_EQ(Into.cap, Cap);
  EXPECT_EQ(Into.len, sizeof Msg);
  EXPECT_EQ(Into.data[0], 7);
  flick_buf_destroy(&Into);
}

TEST(ChannelBridge, TransportErrorsPropagate) {
  FlatOnlyChannel Ch;
  // recvInto surfaces recv's failure on an empty queue.
  flick_buf Into;
  flick_buf_init(&Into);
  EXPECT_EQ(Ch.recvInto(&Into), FLICK_ERR_TRANSPORT);
  // sendv surfaces send's failure.
  Ch.FailSends = true;
  const uint8_t A[4] = {};
  flick_iov Seg{A, sizeof A};
  EXPECT_EQ(Ch.sendv(&Seg, 1), FLICK_ERR_TRANSPORT);
  flick_buf_destroy(&Into);
}

/// The bridges must be enough to run a whole RPC: a full client/server
/// round-trip over two FlatOnly endpoints sharing queues.
TEST(ChannelBridge, FullRoundTripOverFlatOnlyTransport) {
  // Client's sends land in the server channel's queue and vice versa.
  FlatOnlyChannel CliCh, SrvCh;
  flick_server Srv;
  flick_server_init(&Srv, &SrvCh, [](flick_server *, flick_buf *Req,
                                     flick_buf *Rep) -> int {
    size_t N = Req->len - Req->pos;
    if (flick_buf_ensure(Rep, N) != FLICK_OK)
      return FLICK_ERR_ALLOC;
    std::memcpy(flick_buf_grab(Rep, N), Req->data + Req->pos, N);
    return FLICK_OK;
  });
  flick_client Cli;
  flick_client_init(&Cli, &CliCh);

  flick_buf *Req = flick_client_begin(&Cli);
  ASSERT_EQ(flick_buf_ensure(Req, 8), FLICK_OK);
  std::memset(flick_buf_grab(Req, 8), 0x3C, 8);
  // Move the request over, serve it, move the reply back.
  ASSERT_EQ(CliCh.send(Req->data, Req->len), FLICK_OK);
  SrvCh.Queue = std::move(CliCh.Queue);
  CliCh.Queue.clear();
  ASSERT_EQ(flick_server_handle_one(&Srv), FLICK_OK);
  CliCh.Queue = std::move(SrvCh.Queue);
  ASSERT_EQ(CliCh.recvInto(&Cli.rep), FLICK_OK);
  ASSERT_EQ(Cli.rep.len, 8u);
  EXPECT_EQ(Cli.rep.data[3], 0x3C);

  flick_client_destroy(&Cli);
  flick_server_destroy(&Srv);
}

} // namespace
