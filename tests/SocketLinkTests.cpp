//===- tests/SocketLinkTests.cpp - Unix-socket transport ------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SocketLink specifics beyond the TransportConformance contract: the
/// zero-copy send path (sendv adds no user-space copy; a whole RPC's
/// copy bill is the worker's one receive copy), kernel backpressure via
/// EAGAIN with the sock_eagain/sock_syscalls gauges, pooled-buffer
/// recycling through receive-by-adoption, and fault containment -- a
/// peer that vanishes mid-frame costs exactly one transport_errors
/// event, the pool keeps serving other connections, nothing hangs, and
/// the stall watchdog stays quiet.  Runs under TSan in CI.
///
//===----------------------------------------------------------------------===//

#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include "runtime/transport/SocketLink.h"
#include <cstring>
#include <gtest/gtest.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace flick;

namespace {

int echoDispatch(flick_server *, flick_buf *Req, flick_buf *Rep) {
  size_t N = Req->len - Req->pos;
  if (flick_buf_ensure(Rep, N) != FLICK_OK)
    return FLICK_ERR_ALLOC;
  std::memcpy(flick_buf_grab(Rep, N), Req->data + Req->pos, N);
  return FLICK_OK;
}

struct ScopedMetrics {
  flick_metrics M;
  ScopedMetrics() { flick_metrics_enable(&M); }
  ~ScopedMetrics() { flick_metrics_disable(); }
};

struct ScopedGauges {
  ScopedGauges() { flick_gauges_enable(); }
  ~ScopedGauges() { flick_gauges_disable(); }
};

unsigned driveEchoes(SocketLink &Link, unsigned Seed, unsigned Calls,
                     size_t Bytes) {
  flick_client Cli;
  flick_client_init(&Cli, &Link.connect());
  unsigned Ok = 0;
  for (unsigned C = 0; C != Calls; ++C) {
    std::vector<uint8_t> Want(Bytes);
    for (size_t I = 0; I != Bytes; ++I)
      Want[I] = static_cast<uint8_t>(Seed * 131 + C * 31 + I);
    flick_buf *Req = flick_client_begin(&Cli);
    if (flick_buf_ensure(Req, Bytes) != FLICK_OK)
      break;
    std::memcpy(flick_buf_grab(Req, Bytes), Want.data(), Bytes);
    if (flick_client_invoke(&Cli) != FLICK_OK)
      break;
    if (Cli.rep.len == Bytes &&
        std::memcmp(Cli.rep.data, Want.data(), Bytes) == 0)
      ++Ok;
  }
  flick_client_destroy(&Cli);
  return Ok;
}

TEST(SocketLink, LargeFramesSurvivePartialReadsAndWrites) {
  SocketLink Link;
  flick_server_pool Pool;
  ASSERT_EQ(flick_server_pool_start(&Pool, &Link, echoDispatch, 2),
            FLICK_OK);
  // 96 KiB payloads overflow both socket buffers, forcing the framing
  // code through partial sendmsg and short-read paths.
  EXPECT_EQ(driveEchoes(Link, 3, 8, 96 * 1024), 8u);
  flick_server_pool_stop(&Pool);
}

TEST(SocketLink, SendSideAddsNoUserSpaceCopies) {
  ScopedMetrics Scope;
  SocketLink Link;
  Channel &C = Link.connect();
  Channel &W = Link.workerEnd();
  std::vector<uint8_t> A(4096, 0x11), B(512, 0x22);
  flick_iov Segs[2] = {{A.data(), A.size()}, {B.data(), B.size()}};
  const size_t Total = A.size() + B.size();

  // sendv lowers to one sendmsg gather: no staging buffer, no copy.
  ASSERT_EQ(C.sendv(Segs, 2), FLICK_OK);
  EXPECT_EQ(Scope.M.bytes_copied, 0u);
  EXPECT_EQ(Scope.M.copy_ops, 0u);

  // The worker's vector recv is the one honest copy of the request path.
  std::vector<uint8_t> Req;
  ASSERT_EQ(W.recv(Req), FLICK_OK);
  ASSERT_EQ(Req.size(), Total);
  EXPECT_EQ(Scope.M.bytes_copied, Total);
  EXPECT_EQ(Scope.M.copy_ops, 1u);

  // Reply via sendv and receive by adoption: still no further copies, so
  // the whole round trip billed exactly one payload copy.
  flick_iov Rep[1] = {{Req.data(), Req.size()}};
  ASSERT_EQ(W.sendv(Rep, 1), FLICK_OK);
  flick_buf Got;
  flick_buf_init(&Got);
  ASSERT_EQ(C.recvInto(&Got), FLICK_OK);
  EXPECT_EQ(Got.len, Total);
  C.release(&Got);
  EXPECT_EQ(Scope.M.bytes_copied, Total);
  EXPECT_EQ(Scope.M.copy_ops, 1u);
  Link.shutdown();
}

TEST(SocketLink, KernelBackpressureShowsAsEagainGauges) {
  ScopedGauges Gauges;
  SocketLink Link(/*SndBufKiB=*/1); // tiny buffers: EAGAIN is guaranteed
  Channel &C = Link.connect();
  Channel &W = Link.workerEnd();
  std::vector<uint8_t> Big(1u << 20, 0x7E);

  flick_metrics SenderM;
  int SendErr = -1;
  std::thread Sender([&] {
    flick_metrics_enable(&SenderM);
    SendErr = C.send(Big.data(), Big.size());
    flick_metrics_disable();
  });
  while (flick_gauges_global.sock_eagain.load(std::memory_order_relaxed) ==
         0)
    std::this_thread::yield();
  // A worker consuming the frame frees buffer space; the sender's polled
  // retries then complete the megabyte.
  std::vector<uint8_t> Out;
  ASSERT_EQ(W.recv(Out), FLICK_OK);
  Sender.join();
  EXPECT_EQ(SendErr, FLICK_OK);
  EXPECT_EQ(Out.size(), Big.size());
  // Backpressure is billed once per send regardless of how many EAGAIN
  // retries it took, mirroring the queue transports' queue_full contract.
  EXPECT_EQ(SenderM.queue_full, 1u);
  EXPECT_GE(flick_gauges_global.sock_eagain.load(), 1u);
  EXPECT_GE(flick_gauges_global.sock_syscalls.load(), 3u);
  Link.shutdown();
}

TEST(SocketLink, AdoptionRecyclesPooledWireBuffers) {
  ScopedGauges Gauges;
  SocketLink Link;
  Channel &C = Link.connect();
  Channel &W = Link.workerEnd();
  uint8_t B[1024] = {};
  flick_buf Req;
  flick_buf_init(&Req);
  // First receive adopts a freshly malloc'd pool buffer; releasing it
  // parks it, and the second receive must reuse it (a pool hit).
  ASSERT_EQ(C.send(B, sizeof B), FLICK_OK);
  ASSERT_EQ(W.recvInto(&Req), FLICK_OK);
  W.release(&Req);
  uint64_t HitsBefore = flick_gauges_global.pool_gauge_hits.load();
  ASSERT_EQ(C.send(B, sizeof B), FLICK_OK);
  ASSERT_EQ(W.recvInto(&Req), FLICK_OK);
  EXPECT_GT(flick_gauges_global.pool_gauge_hits.load(), HitsBefore);
  W.release(&Req);
  Link.shutdown();
}

TEST(SocketLink, PeerVanishingMidFrameIsContained) {
  // Watchdog armed: if the fault wedged the epoll loop, the deadline
  // sweep would flag the stuck RPCs below.
  flick_sampler_opts Opts;
  Opts.interval_us = 1000;
  Opts.stall_deadline_us = 5e6;
  ASSERT_EQ(flick_sampler_start(&Opts), FLICK_OK);
  {
    ScopedMetrics Scope;
    SocketLink Link;
    Channel &Victim = Link.connect();
    flick_server_pool Pool;
    ASSERT_EQ(flick_server_pool_start(&Pool, &Link, echoDispatch, 2),
              FLICK_OK);

    // Hand-craft a truncated frame on the victim's raw fd: a header
    // promising 100 payload bytes, 10 actual bytes, then a vanishing
    // peer.  Some worker claims it, reads the header, and meets EOF
    // mid-payload.
    int Fd = Link.debugClientFd(Victim);
    ASSERT_GE(Fd, 0);
    uint64_t Hdr[3] = {100, 0, 0};
    ASSERT_EQ(::write(Fd, Hdr, sizeof Hdr),
              static_cast<ssize_t>(sizeof Hdr));
    uint8_t Partial[10] = {};
    ASSERT_EQ(::write(Fd, Partial, sizeof Partial),
              static_cast<ssize_t>(sizeof Partial));
    Link.debugCloseClient(Victim);

    // The pool must keep serving other connections as if nothing
    // happened.
    EXPECT_EQ(driveEchoes(Link, 9, 10, 256), 10u);
    flick_server_pool_stop(&Pool);
    // Exactly one fault: the truncated frame.  Clean shutdown of the
    // healthy connection and the workers' own drain-end receives must
    // not inflate it.
    EXPECT_EQ(Scope.M.transport_errors, 1u);
    EXPECT_EQ(Scope.M.rpcs_handled, 10u);
  }
  EXPECT_EQ(flick_sampler_stalls(), 0u);
  flick_sampler_stop();
}

} // namespace
