//===- tests/PresGenTests.cpp - presentation generator tests --------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "frontends/corba/CorbaFrontEnd.h"
#include "frontends/oncrpc/OncFrontEnd.h"
#include "presgen/PresGen.h"
#include "support/Diagnostics.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

std::unique_ptr<PresC> genCorba(const std::string &Src,
                                const std::string &Prefix = "") {
  DiagnosticEngine D;
  auto M = parseCorbaIdl(Src, "t.idl", D);
  EXPECT_TRUE(M) << D.renderAll();
  CorbaPresGen PG{PresGenOptions{Prefix}};
  auto P = PG.generate(*M, D);
  EXPECT_TRUE(P) << D.renderAll();
  return P;
}

std::unique_ptr<PresC> genRpcgen(const std::string &Src) {
  DiagnosticEngine D;
  auto M = parseOncIdl(Src, "t.x", D);
  EXPECT_TRUE(M) << D.renderAll();
  RpcgenPresGen PG{PresGenOptions{}};
  auto P = PG.generate(*M, D);
  EXPECT_TRUE(P) << D.renderAll();
  return P;
}

TEST(PresGen, CorbaStubNamingMatchesPaper) {
  // The paper: `void Mail_send(Mail obj, char *msg)` plus environment.
  auto P = genCorba("interface Mail { void send(in string msg); };");
  ASSERT_EQ(P->Interfaces.size(), 1u);
  const PresCOperation &Op = P->Interfaces[0].Ops[0];
  EXPECT_EQ(Op.CName, "Mail_send");
  EXPECT_EQ(Op.ServerImplName, "Mail_send_server");
  EXPECT_EQ(Op.IdlName, "send");
  ASSERT_EQ(Op.Params.size(), 1u);
  EXPECT_EQ(printCastType(Op.Params[0].SigType, "msg"), "const char *msg");
}

TEST(PresGen, RpcgenStubNamingMatchesRpcgen) {
  auto P = genRpcgen(R"(
    program MAIL { version MV { void SEND(string) = 1; } = 3; } = 7;)");
  const PresCOperation &Op = P->Interfaces[0].Ops[0];
  EXPECT_EQ(Op.CName, "send_3");
  EXPECT_EQ(Op.ServerImplName, "send_3_svc");
  EXPECT_EQ(Op.RequestCode, 1u);
}

TEST(PresGen, SequenceMemberConventionsDiffer) {
  // CORBA sequences use _maximum/_length/_buffer; rpcgen uses <name>_len /
  // <name>_val -- the same network contract, two programmer's contracts
  // (paper §2.2).
  auto PC = genCorba("typedef sequence<long> IntSeq;\n"
                     "interface I { void f(in IntSeq s); };");
  const auto *CSeq =
      cast<PresCounted>(PC->Interfaces[0].Ops[0].Params[0].Pres);
  EXPECT_EQ(CSeq->lenField(), "_length");
  EXPECT_EQ(CSeq->bufField(), "_buffer");
  EXPECT_EQ(CSeq->maxField(), "_maximum");

  auto PR = genRpcgen(R"(
    typedef int intseq<>;
    program P { version V { void F(intseq) = 1; } = 1; } = 1;)");
  const auto *RSeq =
      cast<PresCounted>(PR->Interfaces[0].Ops[0].Params[0].Pres);
  EXPECT_EQ(RSeq->lenField(), "intseq_len");
  EXPECT_EQ(RSeq->bufField(), "intseq_val");
  EXPECT_EQ(RSeq->maxField(), "");
}

TEST(PresGen, UnionMemberConventionsDiffer) {
  auto PC = genCorba("union U switch (long) { case 1: long a; };\n"
                     "interface I { void f(in U u); };");
  const auto *CU = cast<PresUnion>(PC->Interfaces[0].Ops[0].Params[0].Pres);
  EXPECT_EQ(CU->discField(), "_d");
  EXPECT_EQ(CU->unionField(), "_u");

  auto PR = genRpcgen(R"(
    union u switch (int w) { case 1: int a; };
    program P { version V { void F(u) = 1; } = 1; } = 1;)");
  const auto *RU = cast<PresUnion>(PR->Interfaces[0].Ops[0].Params[0].Pres);
  EXPECT_EQ(RU->discField(), "disc");
  EXPECT_EQ(RU->unionField(), "u");
}

TEST(PresGen, RequestAndReplyMintShapes) {
  auto P = genCorba(
      "interface I { long f(in long a, inout long b, out long c); };");
  const PresCOperation &Op = P->Interfaces[0].Ops[0];
  // Request carries in + inout; reply carries retval + inout + out.
  ASSERT_TRUE(Op.RequestMint);
  EXPECT_EQ(Op.RequestMint->elems().size(), 2u);
  ASSERT_TRUE(Op.ReplyMint);
  EXPECT_EQ(Op.ReplyMint->elems().size(), 3u);
  EXPECT_EQ(Op.ReplyMint->elems()[0].Label, "_retval");
}

TEST(PresGen, OnewayHasNoReply) {
  auto P = genCorba("interface I { oneway void ping(in long t); };");
  const PresCOperation &Op = P->Interfaces[0].Ops[0];
  EXPECT_TRUE(Op.Oneway);
  EXPECT_EQ(Op.ReplyMint, nullptr);
}

TEST(PresGen, AttributesLowerToAccessors) {
  auto P = genCorba("interface I { readonly attribute long id;\n"
                    "  attribute string name; };");
  const PresCInterface &If = P->Interfaces[0];
  ASSERT_EQ(If.Ops.size(), 3u); // _get_id, _get_name, _set_name
  EXPECT_EQ(If.Ops[0].CName, "I__get_id");
  EXPECT_EQ(If.Ops[1].CName, "I__get_name");
  EXPECT_EQ(If.Ops[2].CName, "I__set_name");
  EXPECT_EQ(If.Ops[2].Params.size(), 1u);
}

TEST(PresGen, InheritanceFlattensBaseOperationsFirst) {
  auto P = genCorba("interface A { void a(); };\n"
                    "interface B : A { void b(); };");
  ASSERT_EQ(P->Interfaces.size(), 2u);
  const PresCInterface &B = P->Interfaces[1];
  ASSERT_EQ(B.Ops.size(), 2u);
  EXPECT_EQ(B.Ops[0].IdlName, "a");
  EXPECT_EQ(B.Ops[0].CName, "B_a");
  EXPECT_EQ(B.Ops[1].IdlName, "b");
  EXPECT_EQ(B.Ops[0].RequestCode, 1u);
  EXPECT_EQ(B.Ops[1].RequestCode, 2u);
}

TEST(PresGen, ExceptionsGetCodesAndStructs) {
  auto P = genCorba("exception E1 { long a; };\n"
                    "exception E2 { string s; };\n"
                    "interface I { void f() raises(E2); };");
  ASSERT_EQ(P->Exceptions.size(), 2u);
  EXPECT_EQ(P->Exceptions[0].Name, "E1");
  EXPECT_EQ(P->Exceptions[0].Code, 1u);
  EXPECT_EQ(P->Exceptions[1].Code, 2u);
  const PresCOperation &Op = P->Interfaces[0].Ops[0];
  ASSERT_EQ(Op.RaisesIdx.size(), 1u);
  EXPECT_EQ(Op.RaisesIdx[0], 1u);
}

TEST(PresGen, NamePrefixAppliesEverywhere) {
  auto P = genCorba("struct S { long x; };\n"
                    "interface I { void f(in S s); };",
                    "PF_");
  EXPECT_EQ(P->Interfaces[0].Name, "PF_I");
  EXPECT_EQ(P->Interfaces[0].Ops[0].CName, "PF_I_f");
  const auto *PS = cast<PresStruct>(P->Interfaces[0].Ops[0].Params[0].Pres);
  EXPECT_EQ(printCastType(PS->ctype(), ""), "PF_S");
}

TEST(PresGen, VariableOutParamsPassDoublePointer) {
  auto P = genCorba("typedef sequence<long> Seq;\n"
                    "interface I { void f(out Seq s, out long n); };");
  const PresCOperation &Op = P->Interfaces[0].Ops[0];
  EXPECT_EQ(printCastType(Op.Params[0].SigType, "s"), "Seq **s");
  EXPECT_EQ(printCastType(Op.Params[1].SigType, "n"), "int32_t *n");
}

TEST(PresGen, SelfReferentialXdrListMaps) {
  auto P = genRpcgen(R"(
    struct node { int v; node *next; };
    typedef node *list;
    program P { version V { int LEN(list) = 1; } = 1; } = 1;)");
  const auto *Opt =
      dyn_cast<PresOptPtr>(P->Interfaces[0].Ops[0].Params[0].Pres);
  ASSERT_TRUE(Opt);
  ASSERT_TRUE(Opt->elem());
  const auto *Node = cast<PresStruct>(Opt->elem());
  ASSERT_EQ(Node->fields().size(), 2u);
  // The cycle must close: next's element is the node itself.
  const auto *Next = cast<PresOptPtr>(Node->fields()[1].Pres);
  EXPECT_EQ(Next->elem(), Node);
  EXPECT_TRUE(Opt->ctype());
}

TEST(PresGen, ServerInParamsMayAliasAndUseScratch) {
  auto P = genCorba("typedef sequence<octet> Blob;\n"
                    "interface I { void f(in Blob b); };");
  const auto *Seq = cast<PresCounted>(P->Interfaces[0].Ops[0].Params[0].Pres);
  EXPECT_TRUE(Seq->alloc().AllowBufferAlias);
  EXPECT_TRUE(Seq->alloc().AllowStackAlloc);
}

TEST(PresGen, StringLenParamsOption) {
  // Paper §2: the alternative Mail_send presentation with an explicit
  // length parameter.
  DiagnosticEngine D;
  auto M = parseCorbaIdl(
      "interface Mail { void send(in string msg, in long x); };", "t.idl",
      D);
  ASSERT_TRUE(M);
  PresGenOptions O;
  O.StringLenParams = true;
  CorbaPresGen PG{O};
  auto P = PG.generate(*M, D);
  ASSERT_TRUE(P);
  const PresCOperation &Op = P->Interfaces[0].Ops[0];
  EXPECT_EQ(Op.Params[0].LenParamName, "msg_len");
  EXPECT_EQ(Op.Params[1].LenParamName, ""); // only strings gain lengths
  // The network contract is untouched: request MINT still has 2 members.
  EXPECT_EQ(Op.RequestMint->elems().size(), 2u);
}

TEST(PresGen, PresCDumpIsStable) {
  auto P = genCorba("interface Mail { void send(in string msg); };");
  std::string Dump = P->dump();
  EXPECT_NE(Dump.find("presentation style: corba"), std::string::npos);
  EXPECT_NE(Dump.find("op Mail_send"), std::string::npos);
  EXPECT_NE(Dump.find("string -> char *"), std::string::npos);
}

} // namespace
