//===- tests/MetricsTests.cpp - runtime RPC metrics tests -----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the flick_metrics runtime counters: one RPC round-trip must
/// record exact request/reply counts and byte totals with zero errors,
/// fault paths must bump their error counters, and buffer/arena events
/// must be accounted.  Every test verifies collection is a no-op when the
/// metrics block is not installed.
///
//===----------------------------------------------------------------------===//

#include "runtime/transport/LocalLink.h"
#include "runtime/flick_runtime.h"
#include <cstring>
#include <gtest/gtest.h>
#include <thread>

using namespace flick;

namespace {

/// Dispatch that echoes the request payload back as the reply.
int echoDispatch(flick_server *, flick_buf *Req, flick_buf *Rep) {
  size_t N = Req->len - Req->pos;
  if (flick_buf_ensure(Rep, N) != FLICK_OK)
    return FLICK_ERR_ALLOC;
  std::memcpy(flick_buf_grab(Rep, N), Req->data + Req->pos, N);
  return FLICK_OK;
}

int rejectDecodeDispatch(flick_server *, flick_buf *, flick_buf *) {
  return FLICK_ERR_DECODE;
}

int rejectDemuxDispatch(flick_server *, flick_buf *, flick_buf *) {
  return FLICK_ERR_NO_SUCH_OP;
}

/// Installs a zeroed metrics block for the test body and uninstalls it on
/// scope exit, so test order never leaks collection state.
struct ScopedMetrics {
  flick_metrics M;
  ScopedMetrics() { flick_metrics_enable(&M); }
  ~ScopedMetrics() { flick_metrics_disable(); }
};

/// One client/server pair over an ideal in-process link.
struct Rig {
  LocalLink Link;
  flick_server Srv;
  flick_client Cli;

  explicit Rig(flick_dispatch_fn Dispatch) {
    flick_server_init(&Srv, &Link.serverEnd(), Dispatch);
    Link.setPump(
        [this] { return flick_server_handle_one(&Srv) == FLICK_OK; });
    flick_client_init(&Cli, &Link.clientEnd());
  }
  ~Rig() {
    flick_client_destroy(&Cli);
    flick_server_destroy(&Srv);
  }
};

TEST(Metrics, RoundTripCountsExactly) {
  ScopedMetrics S;
  Rig R(echoDispatch);

  flick_buf *Req = flick_client_begin(&R.Cli);
  ASSERT_EQ(flick_buf_ensure(Req, 12), FLICK_OK);
  std::memset(flick_buf_grab(Req, 12), 0x5A, 12);
  ASSERT_EQ(flick_client_invoke(&R.Cli), FLICK_OK);
  EXPECT_EQ(R.Cli.rep.len, 12u);

  EXPECT_EQ(S.M.rpcs_sent, 1u);
  EXPECT_EQ(S.M.replies_received, 1u);
  EXPECT_EQ(S.M.oneways_sent, 0u);
  EXPECT_EQ(S.M.request_bytes, 12u);
  EXPECT_EQ(S.M.reply_bytes, 12u);
  EXPECT_EQ(S.M.rpcs_handled, 1u);
  EXPECT_EQ(S.M.replies_sent, 1u);
  EXPECT_EQ(S.M.server_request_bytes, 12u);
  EXPECT_EQ(S.M.server_reply_bytes, 12u);
  EXPECT_EQ(S.M.decode_errors, 0u);
  EXPECT_EQ(S.M.transport_errors, 0u);
  EXPECT_EQ(S.M.demux_errors, 0u);
  EXPECT_EQ(S.M.alloc_errors, 0u);
}

TEST(Metrics, SeveralInvokesAccumulate) {
  ScopedMetrics S;
  Rig R(echoDispatch);
  for (int I = 0; I != 3; ++I) {
    flick_buf *Req = flick_client_begin(&R.Cli);
    ASSERT_EQ(flick_buf_ensure(Req, 8), FLICK_OK);
    std::memset(flick_buf_grab(Req, 8), I, 8);
    ASSERT_EQ(flick_client_invoke(&R.Cli), FLICK_OK);
  }
  EXPECT_EQ(S.M.rpcs_sent, 3u);
  EXPECT_EQ(S.M.replies_received, 3u);
  EXPECT_EQ(S.M.request_bytes, 24u);
  EXPECT_EQ(S.M.reply_bytes, 24u);
}

TEST(Metrics, DecodeErrorIncrementsCounter) {
  ScopedMetrics S;
  Rig R(rejectDecodeDispatch);

  flick_buf *Req = flick_client_begin(&R.Cli);
  ASSERT_EQ(flick_buf_ensure(Req, 4), FLICK_OK);
  std::memset(flick_buf_grab(Req, 4), 0xFF, 4);
  ASSERT_EQ(flick_client_send_oneway(&R.Cli), FLICK_OK);
  EXPECT_EQ(flick_server_handle_one(&R.Srv), FLICK_ERR_DECODE);

  EXPECT_EQ(S.M.oneways_sent, 1u);
  EXPECT_EQ(S.M.rpcs_handled, 1u);
  EXPECT_EQ(S.M.decode_errors, 1u);
  EXPECT_EQ(S.M.replies_sent, 0u);
}

TEST(Metrics, DemuxErrorIncrementsCounter) {
  ScopedMetrics S;
  Rig R(rejectDemuxDispatch);

  flick_buf *Req = flick_client_begin(&R.Cli);
  ASSERT_EQ(flick_buf_ensure(Req, 4), FLICK_OK);
  std::memset(flick_buf_grab(Req, 4), 0, 4);
  ASSERT_EQ(flick_client_send_oneway(&R.Cli), FLICK_OK);
  EXPECT_EQ(flick_server_handle_one(&R.Srv), FLICK_ERR_NO_SUCH_OP);
  EXPECT_EQ(S.M.demux_errors, 1u);
  EXPECT_EQ(S.M.decode_errors, 0u);
}

TEST(Metrics, TransportErrorOnDrainedServer) {
  ScopedMetrics S;
  Rig R(echoDispatch);
  EXPECT_EQ(flick_server_handle_one(&R.Srv), FLICK_ERR_TRANSPORT);
  EXPECT_EQ(S.M.transport_errors, 1u);
  EXPECT_EQ(S.M.rpcs_handled, 0u);
}

TEST(Metrics, BufferGrowAndReuseAreCounted) {
  ScopedMetrics S;
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_buf_ensure(&B, 4 * FLICK_BUF_MIN_CAP), FLICK_OK);
  EXPECT_GE(S.M.buf_grows, 1u);
  flick_buf_reset(&B);
  flick_buf_reset(&B);
  EXPECT_EQ(S.M.buf_reuses, 2u);
  flick_buf_destroy(&B);
}

TEST(Metrics, ArenaHighWaterTracksPeakUse) {
  ScopedMetrics S;
  flick_arena A{};
  ASSERT_NE(flick_arena_alloc(&A, 300), nullptr);
  ASSERT_NE(flick_arena_alloc(&A, 400), nullptr);
  flick_arena_reset(&A);
  EXPECT_GE(S.M.arena_high_water, 700u);
  EXPECT_GE(S.M.arena_grows, 1u);
  flick_arena_destroy(&A);
}

TEST(Metrics, WireTimeAccumulatesOnModeledLinks) {
  ScopedMetrics S;
  SimClock Clock;
  Rig R(echoDispatch);
  R.Link.setModel(NetworkModel::ethernet10(), &Clock);

  flick_buf *Req = flick_client_begin(&R.Cli);
  ASSERT_EQ(flick_buf_ensure(Req, 64), FLICK_OK);
  std::memset(flick_buf_grab(Req, 64), 1, 64);
  ASSERT_EQ(flick_client_invoke(&R.Cli), FLICK_OK);
  EXPECT_GT(S.M.wire_time_us, 0.0);
  EXPECT_DOUBLE_EQ(S.M.wire_time_us, Clock.totalUs());
}

TEST(Metrics, DisabledCollectionTouchesNothing) {
  flick_metrics M;
  flick_metrics_enable(&M);
  flick_metrics_disable(); // M zeroed, then uninstalled
  Rig R(echoDispatch);
  flick_buf *Req = flick_client_begin(&R.Cli);
  ASSERT_EQ(flick_buf_ensure(Req, 8), FLICK_OK);
  std::memset(flick_buf_grab(Req, 8), 2, 8);
  ASSERT_EQ(flick_client_invoke(&R.Cli), FLICK_OK);
  EXPECT_EQ(M.rpcs_sent, 0u);
  EXPECT_EQ(M.request_bytes, 0u);
}

TEST(Metrics, EnableZeroesTheBlock) {
  flick_metrics M;
  M.rpcs_sent = 99;
  M.wire_time_us = 3.5;
  flick_metrics_enable(&M);
  EXPECT_EQ(M.rpcs_sent, 0u);
  EXPECT_EQ(M.wire_time_us, 0.0);
  flick_metrics_disable();
}

TEST(Metrics, CopyAccountingCountsGrabAndTake) {
  // Every bulk byte movement on the message path is measured: grab on
  // encode, take on decode.  take_mut is the zero-cost alias and must not
  // count.
  ScopedMetrics S;
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_buf_ensure(&B, 64), FLICK_OK);
  std::memset(flick_buf_grab(&B, 24), 1, 24);
  EXPECT_EQ(S.M.bytes_copied, 24u);
  EXPECT_EQ(S.M.copy_ops, 1u);
  (void)flick_buf_take(&B, 16);
  EXPECT_EQ(S.M.bytes_copied, 40u);
  EXPECT_EQ(S.M.copy_ops, 2u);
  (void)flick_buf_take_mut(&B, 8); // aliasing consume: free
  EXPECT_EQ(S.M.bytes_copied, 40u);
  EXPECT_EQ(S.M.copy_ops, 2u);
  flick_buf_destroy(&B);
}

TEST(Metrics, JsonCarriesCopyAccounting) {
  flick_metrics M;
  M.bytes_copied = 4096;
  M.copy_ops = 6;
  M.gather_refs = 2;
  M.gather_bytes = 8192;
  M.pool_hits = 5;
  M.pool_misses = 1;
  M.rpcs_sent = 2;
  M.oneways_sent = 1;
  std::string J = flick_metrics_to_json(&M);
  EXPECT_NE(J.find("\"bytes_copied\": 4096"), std::string::npos) << J;
  EXPECT_NE(J.find("\"copy_ops\": 6"), std::string::npos) << J;
  EXPECT_NE(J.find("\"gather_refs\": 2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"gather_bytes\": 8192"), std::string::npos) << J;
  EXPECT_NE(J.find("\"pool_hits\": 5"), std::string::npos) << J;
  EXPECT_NE(J.find("\"pool_misses\": 1"), std::string::npos) << J;
  // Derived: 6 copy ops over 3 issued calls.
  EXPECT_NE(J.find("\"copies_per_rpc\": 2.000"), std::string::npos) << J;
}

TEST(MetricsMerge, SumsCountersMaxesHighWaterMergesHistogram) {
  flick_metrics A, B;
  A.rpcs_sent = 3;
  A.request_bytes = 300;
  A.arena_high_water = 1000;
  A.queue_full = 2;
  A.wire_time_us = 1.5;
  flick_hist_record(&A.rpc_latency, 10.0);
  flick_hist_record(&A.rpc_latency, 100.0);
  B.rpcs_sent = 4;
  B.request_bytes = 400;
  B.arena_high_water = 250;
  B.queue_full = 1;
  B.wire_time_us = 2.5;
  flick_hist_record(&B.rpc_latency, 500.0);

  flick_metrics_merge(&A, &B);
  EXPECT_EQ(A.rpcs_sent, 7u);
  EXPECT_EQ(A.request_bytes, 700u);
  EXPECT_EQ(A.arena_high_water, 1000u) << "high water takes the max";
  EXPECT_EQ(A.queue_full, 3u);
  EXPECT_DOUBLE_EQ(A.wire_time_us, 4.0);
  EXPECT_EQ(A.rpc_latency.count, 3u);
  EXPECT_DOUBLE_EQ(A.rpc_latency.max_us, 500.0);
  EXPECT_DOUBLE_EQ(A.rpc_latency.sum_us, 610.0);
}

TEST(MetricsMerge, TwoThreadsCollectIndependentlyAndSumExactly) {
  // Each thread installs its own block (the active pointer is
  // thread-local), hammers the hooks concurrently, and the post-join merge
  // must equal a single-threaded run that saw all the traffic.
  const uint64_t PerThread = 20000;
  flick_metrics T1M, T2M;
  auto Body = [PerThread](flick_metrics *M) {
    flick_metrics_enable(M);
    for (uint64_t I = 0; I != PerThread; ++I) {
      flick_metric_add(&flick_metrics::rpcs_sent, 1);
      flick_metric_add(&flick_metrics::request_bytes, 8);
      flick_metric_max(&flick_metrics::arena_high_water, I % 512);
      flick_hist_record(&flick_metrics_active->rpc_latency,
                        static_cast<double>(I % 64));
    }
    flick_metrics_disable();
  };
  std::thread T1(Body, &T1M);
  std::thread T2(Body, &T2M);
  T1.join();
  T2.join();

  flick_metrics Total;
  flick_metrics_merge(&Total, &T1M);
  flick_metrics_merge(&Total, &T2M);
  EXPECT_EQ(Total.rpcs_sent, 2 * PerThread);
  EXPECT_EQ(Total.request_bytes, 16 * PerThread);
  EXPECT_EQ(Total.arena_high_water, 511u);
  EXPECT_EQ(Total.rpc_latency.count, 2 * PerThread);
}

TEST(MetricsMerge, CopiesPerRpcDerivesFromMergedTotals) {
  flick_metrics A, B;
  A.rpcs_sent = 2;
  A.copy_ops = 5;
  A.bytes_copied = 512;
  B.oneways_sent = 2;
  B.copy_ops = 3;
  B.bytes_copied = 256;
  flick_metrics_merge(&A, &B);
  std::string J = flick_metrics_to_json(&A);
  // 8 copy ops over 4 issued calls -- same derivation as a single block.
  EXPECT_NE(J.find("\"copies_per_rpc\": 2.000"), std::string::npos) << J;
  EXPECT_NE(J.find("\"bytes_copied\": 768"), std::string::npos) << J;
  EXPECT_NE(J.find("\"queue_full\": 0"), std::string::npos) << J;
}

TEST(MetricsMerge, FromNeverEnabledBlockAddsNothing) {
  // A worker that never saw traffic merges as all zeros: counters and the
  // histogram stay put, and the zero high-water mark cannot shrink the max.
  flick_metrics A, Src;
  A.rpcs_sent = 5;
  A.request_bytes = 640;
  A.arena_high_water = 1234;
  A.wire_time_us = 2.0;
  flick_hist_record(&A.rpc_latency, 50.0);
  flick_metrics_merge(&A, &Src);
  EXPECT_EQ(A.rpcs_sent, 5u);
  EXPECT_EQ(A.request_bytes, 640u);
  EXPECT_EQ(A.arena_high_water, 1234u);
  EXPECT_DOUBLE_EQ(A.wire_time_us, 2.0);
  EXPECT_EQ(A.rpc_latency.count, 1u);
  EXPECT_DOUBLE_EQ(A.rpc_latency.max_us, 50.0);
}

TEST(MetricsMerge, ArenaHighWaterIsMaxNotSumAcrossManyBlocks) {
  // Three workers each peak near the same level; the merged figure must be
  // the largest single peak, not 3x it -- the sum would claim an arena
  // footprint no thread ever had.
  flick_metrics Total, W1, W2, W3;
  W1.arena_high_water = 900;
  W2.arena_high_water = 1100;
  W3.arena_high_water = 1000;
  flick_metrics_merge(&Total, &W1);
  flick_metrics_merge(&Total, &W2);
  flick_metrics_merge(&Total, &W3);
  EXPECT_EQ(Total.arena_high_water, 1100u);
}

TEST(Metrics, JsonLeadsWithBuildInfo) {
  flick_metrics M;
  std::string J = flick_metrics_to_json(&M);
  size_t Build = J.find("\"build\": {\"git\": ");
  ASSERT_NE(Build, std::string::npos) << J;
  EXPECT_LT(Build, J.find("\"rpcs_sent\""))
      << "attribution comes before the counters";
  EXPECT_NE(J.find("\"compiler\": "), std::string::npos) << J;
  EXPECT_NE(J.find("\"build_type\": "), std::string::npos) << J;
}

TEST(Metrics, JsonContainsEveryCounter) {
  flick_metrics M;
  M.rpcs_sent = 2;
  M.reply_bytes = 128;
  M.wire_time_us = 1.25;
  std::string J = flick_metrics_to_json(&M);
  EXPECT_NE(J.find("\"rpcs_sent\": 2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"reply_bytes\": 128"), std::string::npos) << J;
  EXPECT_NE(J.find("\"wire_time_us\": 1.250"), std::string::npos) << J;
  EXPECT_NE(J.find("\"decode_errors\": 0"), std::string::npos) << J;
}

} // namespace
