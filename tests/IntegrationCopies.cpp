//===- tests/IntegrationCopies.cpp - zero-copy message-path proof ---------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proves the scatter-gather marshal path end-to-end on the paper's bulk
/// workloads: stubs built with --gather-min-bytes (GB_ prefix) must put
/// the exact bytes of their plain twins (CB_ prefix) on the wire while
/// performing at most ONE bulk copy of the payload, measured by the
/// bytes_copied metric -- down from the grab-plus-transport-write pair the
/// plain path pays (and the four copies the pre-pool runtime paid).
/// Arrays below the threshold must fall back to the plain copy, and the
/// interpretive marshaler must be untouched by all of it.
///
//===----------------------------------------------------------------------===//

#include "ItHarness.h"
#include "it_cb.h"
#include "it_gb.h"
#include "runtime/Interp.h"
#include <cstring>
#include <gtest/gtest.h>
#include <vector>

using namespace flick;

//===----------------------------------------------------------------------===//
// Servants: record what the dispatch decoded for comparison.
//===----------------------------------------------------------------------===//

namespace {
std::vector<int32_t> GotInts;
std::vector<GB_Rect> GotRects;
} // namespace

void GB_Transfer_send_ints_server(const GB_IntSeq *data,
                                  CORBA_Environment *) {
  GotInts.assign(data->_buffer, data->_buffer + data->_length);
}
void GB_Transfer_send_rects_server(const GB_RectSeq *data,
                                   CORBA_Environment *) {
  GotRects.assign(data->_buffer, data->_buffer + data->_length);
}
void GB_Transfer_send_dirents_server(const GB_DirentSeq *,
                                     CORBA_Environment *) {}
void CB_Transfer_send_ints_server(const CB_IntSeq *data,
                                  CORBA_Environment *) {
  GotInts.assign(data->_buffer, data->_buffer + data->_length);
}
void CB_Transfer_send_rects_server(const CB_RectSeq *, CORBA_Environment *) {}
void CB_Transfer_send_dirents_server(const CB_DirentSeq *,
                                     CORBA_Environment *) {}

namespace {

struct ScopedMetrics {
  flick_metrics M;
  ScopedMetrics() { flick_metrics_enable(&M); }
  ~ScopedMetrics() { flick_metrics_disable(); }
};

std::vector<uint8_t> flatten(const flick_buf *B) {
  flick_iov Iov[2 * FLICK_BUF_MAX_REFS + 1];
  size_t N = flick_buf_iovec(B, Iov);
  std::vector<uint8_t> Out;
  for (size_t I = 0; I != N; ++I)
    Out.insert(Out.end(), Iov[I].base, Iov[I].base + Iov[I].len);
  return Out;
}

TEST(ZeroCopy, GatheredEncodingMatchesPlainWireBytes) {
  // The gather pass changes how bytes reach the wire, never which bytes:
  // flattening the segmented request must reproduce the plain encoding
  // byte for byte.
  std::vector<int32_t> Ints(8192);
  for (size_t I = 0; I != Ints.size(); ++I)
    Ints[I] = int32_t(I * 2654435761u);
  GB_IntSeq GS{0, uint32_t(Ints.size()), Ints.data()};
  CB_IntSeq CS{0, uint32_t(Ints.size()), Ints.data()};
  flick_buf GB, CB;
  flick_buf_init(&GB);
  flick_buf_init(&CB);
  ASSERT_EQ(GB_Transfer_send_ints_encode_request(&GB, 7, &GS), FLICK_OK);
  ASSERT_EQ(CB_Transfer_send_ints_encode_request(&CB, 7, &CS), FLICK_OK);
  EXPECT_GE(GB.nrefs, 1u); // the payload really went by reference
  EXPECT_EQ(CB.nrefs, 0u);
  std::vector<uint8_t> Plain(CB.data, CB.data + CB.len);
  EXPECT_EQ(flatten(&GB), Plain);
  flick_buf_destroy(&GB);
  flick_buf_destroy(&CB);
}

TEST(ZeroCopy, LargeArrayRoundTripsWithAtMostOneBulkCopy) {
  // The acceptance bar: with gather enabled, a large-array RPC moves the
  // payload at most once (the pooled-buffer fill in sendv).  The plain
  // path pays twice (marshal grab + transport write); the pre-pool
  // runtime paid four times.
  ScopedMetrics S;
  ItRig Rig(GB_Transfer_dispatch);
  std::vector<int32_t> Ints(65536, 0x5A5A5A5A);
  const uint64_t Payload = Ints.size() * sizeof(int32_t);
  GB_IntSeq Seq{0, uint32_t(Ints.size()), Ints.data()};
  CORBA_Environment Ev;
  GB_Transfer_send_ints(reinterpret_cast<GB_Transfer>(Rig.object()), &Seq,
                        &Ev);
  ASSERT_EQ(Ev._major, uint32_t(CORBA_NO_EXCEPTION));
  ASSERT_EQ(GotInts.size(), Ints.size());
  EXPECT_EQ(GotInts, Ints);

  EXPECT_GE(S.M.gather_refs, 1u);
  EXPECT_GE(S.M.gather_bytes, Payload);
  // One bulk copy of the payload plus small header traffic; well under
  // the two-copy plain path.
  EXPECT_GE(S.M.bytes_copied, Payload);
  EXPECT_LT(S.M.bytes_copied, Payload * 3 / 2);
}

TEST(ZeroCopy, PlainStubsStillPayTwoBulkCopies) {
  // The control: identical workload through the no-gather twin copies the
  // payload twice (marshal grab + pooled transport write).
  ScopedMetrics S;
  ItRig Rig(CB_Transfer_dispatch);
  std::vector<int32_t> Ints(65536, 0x17);
  const uint64_t Payload = Ints.size() * sizeof(int32_t);
  CB_IntSeq Seq{0, uint32_t(Ints.size()), Ints.data()};
  CORBA_Environment Ev;
  CB_Transfer_send_ints(reinterpret_cast<CB_Transfer>(Rig.object()), &Seq,
                        &Ev);
  ASSERT_EQ(Ev._major, uint32_t(CORBA_NO_EXCEPTION));
  EXPECT_EQ(S.M.gather_refs, 0u);
  EXPECT_GE(S.M.bytes_copied, Payload * 2);
}

TEST(ZeroCopy, SmallArraysFallBackToThePlainCopy) {
  // Below --gather-min-bytes the reference machinery must not engage:
  // tiny payloads are cheaper to copy than to segment.
  ScopedMetrics S;
  ItRig Rig(GB_Transfer_dispatch);
  std::vector<int32_t> Ints(64, 9); // 256 B < 1024-byte threshold
  GB_IntSeq Seq{0, uint32_t(Ints.size()), Ints.data()};
  CORBA_Environment Ev;
  GB_Transfer_send_ints(reinterpret_cast<GB_Transfer>(Rig.object()), &Seq,
                        &Ev);
  ASSERT_EQ(Ev._major, uint32_t(CORBA_NO_EXCEPTION));
  EXPECT_EQ(S.M.gather_refs, 0u);
  EXPECT_EQ(GotInts, Ints);
}

TEST(ZeroCopy, BitIdenticalAggregatesGatherToo) {
  // Rects are plain int pairs under CDR-LE on a little-endian host: the
  // whole element array is bit-identical and goes by reference.
  ScopedMetrics S;
  ItRig Rig(GB_Transfer_dispatch);
  std::vector<GB_Rect> Rects(1000);
  for (size_t I = 0; I != Rects.size(); ++I)
    Rects[I] = {{int32_t(I), int32_t(-I)}, {int32_t(I + 1), int32_t(I * 7)}};
  GB_RectSeq Seq{0, uint32_t(Rects.size()), Rects.data()};
  CORBA_Environment Ev;
  GB_Transfer_send_rects(reinterpret_cast<GB_Transfer>(Rig.object()), &Seq,
                         &Ev);
  ASSERT_EQ(Ev._major, uint32_t(CORBA_NO_EXCEPTION));
  EXPECT_GE(S.M.gather_refs, 1u);
  ASSERT_EQ(GotRects.size(), Rects.size());
  EXPECT_EQ(std::memcmp(GotRects.data(), Rects.data(),
                        Rects.size() * sizeof(GB_Rect)),
            0);
}

TEST(ZeroCopy, FlattenedGatherMessageDecodesThroughDispatch) {
  // Oracle for the wire contract: a gathered request, flattened exactly
  // as a transport would, must decode through the ordinary dispatch path.
  ItRig Rig(GB_Transfer_dispatch);
  std::vector<int32_t> Ints(2048);
  for (size_t I = 0; I != Ints.size(); ++I)
    Ints[I] = int32_t(I ^ 0x55AA);
  GB_IntSeq Seq{0, uint32_t(Ints.size()), Ints.data()};
  flick_buf Enc;
  flick_buf_init(&Enc);
  ASSERT_EQ(GB_Transfer_send_ints_encode_request(&Enc, 3, &Seq), FLICK_OK);
  ASSERT_GE(Enc.nrefs, 1u);
  std::vector<uint8_t> Wire = flatten(&Enc);
  flick_buf_destroy(&Enc);

  flick_buf Req, Rep;
  flick_buf_init(&Req);
  flick_buf_init(&Rep);
  ASSERT_EQ(flick_buf_ensure(&Req, Wire.size()), FLICK_OK);
  std::memcpy(flick_buf_grab(&Req, Wire.size()), Wire.data(), Wire.size());
  GotInts.clear();
  ASSERT_EQ(GB_Transfer_dispatch(Rig.server(), &Req, &Rep), FLICK_OK);
  EXPECT_EQ(GotInts, Ints);
  flick_buf_destroy(&Req);
  flick_buf_destroy(&Rep);
}

TEST(ZeroCopy, InterpretivePathIsUntouchedByGather) {
  // The interpreter is the reference marshaler: it must round-trip
  // identically with gather-enabled stubs linked in, and never take
  // references itself.
  ScopedMetrics S;
  static const InterpType IntElem = InterpType::scalar(0, 4);
  static const InterpType SeqTy = InterpType::counted(
      offsetof(GB_IntSeq, _length), offsetof(GB_IntSeq, _buffer), &IntElem,
      sizeof(int32_t));
  std::vector<int32_t> Ints(4096);
  for (size_t I = 0; I != Ints.size(); ++I)
    Ints[I] = int32_t(I * 31 + 7);
  GB_IntSeq In{0, uint32_t(Ints.size()), Ints.data()};
  flick_buf B;
  flick_buf_init(&B);
  ASSERT_EQ(flick_interp_encode(&B, SeqTy, &In, InterpWire{false, false}),
            FLICK_OK);
  EXPECT_EQ(B.nrefs, 0u);
  GB_IntSeq Out{};
  flick_arena A{};
  ASSERT_EQ(flick_interp_decode(&B, SeqTy, &Out, InterpWire{false, false},
                                &A),
            FLICK_OK);
  ASSERT_EQ(Out._length, In._length);
  EXPECT_EQ(std::memcmp(Out._buffer, In._buffer,
                        Ints.size() * sizeof(int32_t)),
            0);
  EXPECT_EQ(S.M.gather_refs, 0u);
  flick_arena_destroy(&A);
  flick_buf_destroy(&B);
}

} // namespace
