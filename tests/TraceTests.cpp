//===- tests/TraceTests.cpp - per-RPC distributed tracing tests -----------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the flick_trace span recorder: a multi-call client/server
/// exchange must produce complete span trees (every parent id resolves,
/// exactly one root per trace), the Chrome exporter must emit matched
/// B/E pairs, the ring must overflow by dropping oldest spans without
/// desynchronizing begin/end pairing, latency histogram percentiles must
/// be ordered, and everything must be a no-op when no tracer is
/// installed.
///
//===----------------------------------------------------------------------===//

#include "runtime/transport/LocalLink.h"
#include "runtime/flick_runtime.h"
#include <cstring>
#include <gtest/gtest.h>
#include <map>
#include <set>
#include <thread>
#include <vector>

using namespace flick;

namespace {

/// Dispatch that echoes the request payload back as the reply.
int echoDispatch(flick_server *, flick_buf *Req, flick_buf *Rep) {
  size_t N = Req->len - Req->pos;
  if (flick_buf_ensure(Rep, N) != FLICK_OK)
    return FLICK_ERR_ALLOC;
  std::memcpy(flick_buf_grab(Rep, N), Req->data + Req->pos, N);
  return FLICK_OK;
}

/// Installs a tracer over caller-sized storage for the test body and
/// uninstalls it on scope exit, so test order never leaks trace state.
struct ScopedTracer {
  flick_tracer T;
  std::vector<flick_span> Storage;
  explicit ScopedTracer(uint32_t Cap = 256) : Storage(Cap) {
    flick_trace_enable(&T, Storage.data(), Cap);
  }
  ~ScopedTracer() { flick_trace_disable(); }
};

/// One client/server pair over an in-process link.
struct Rig {
  LocalLink Link;
  flick_server Srv;
  flick_client Cli;

  explicit Rig(flick_dispatch_fn Dispatch = echoDispatch) {
    flick_server_init(&Srv, &Link.serverEnd(), Dispatch);
    Link.setPump(
        [this] { return flick_server_handle_one(&Srv) == FLICK_OK; });
    flick_client_init(&Cli, &Link.clientEnd());
  }
  ~Rig() {
    flick_client_destroy(&Cli);
    flick_server_destroy(&Srv);
  }
};

void invokeOnce(Rig &R, size_t Bytes = 16) {
  flick_buf *Req = flick_client_begin(&R.Cli);
  ASSERT_EQ(flick_buf_ensure(Req, Bytes), FLICK_OK);
  std::memset(flick_buf_grab(Req, Bytes), 0x42, Bytes);
  ASSERT_EQ(flick_client_invoke(&R.Cli), FLICK_OK);
}

TEST(Trace, DisabledCollectionIsANoop) {
  ASSERT_EQ(flick_trace_active, nullptr);
  EXPECT_EQ(flick_trace_depth(), 0u);
  flick_span_begin(FLICK_SPAN_RPC, "ignored");
  flick_span_end();
  flick_trace_close_to(0);
  Rig R;
  invokeOnce(R);
  EXPECT_EQ(flick_trace_active, nullptr);
}

TEST(Trace, MultiCallExchangeBuildsCompleteSpanTrees) {
  ScopedTracer S;
  Rig R;
  const int Calls = 5;
  for (int I = 0; I != Calls; ++I)
    invokeOnce(R);

  // Runtime-level spans per call: rpc root, send, demux, reply.
  ASSERT_EQ(flick_trace_span_count(&S.T), size_t(4 * Calls));
  EXPECT_EQ(S.T.dropped, 0u);
  EXPECT_EQ(S.T.truncated, 0u);
  EXPECT_EQ(S.T.depth, 0u) << "a span leaked open";

  std::map<uint64_t, const flick_span *> ById;
  std::map<uint64_t, std::vector<const flick_span *>> ByTrace;
  for (size_t I = 0; I != flick_trace_span_count(&S.T); ++I) {
    const flick_span *Sp = flick_trace_span(&S.T, I);
    ASSERT_NE(Sp, nullptr);
    EXPECT_NE(Sp->trace_id, 0u);
    EXPECT_NE(Sp->span_id, 0u);
    EXPECT_GE(Sp->dur_us, 0.0);
    ById[Sp->span_id] = Sp;
    ByTrace[Sp->trace_id].push_back(Sp);
  }
  ASSERT_EQ(ByTrace.size(), size_t(Calls)) << "one trace per RPC";

  for (const auto &[Trace, Spans] : ByTrace) {
    ASSERT_EQ(Spans.size(), 4u);
    int Roots = 0;
    std::set<int> Kinds;
    for (const flick_span *Sp : Spans) {
      Kinds.insert(Sp->kind);
      if (Sp->parent_id == 0) {
        ++Roots;
        EXPECT_EQ(Sp->kind, FLICK_SPAN_RPC);
      } else {
        // Every parent id must resolve, within the same trace: the demux
        // root crossed the link via the propagated context.
        auto It = ById.find(Sp->parent_id);
        ASSERT_NE(It, ById.end()) << "orphan span " << Sp->name;
        EXPECT_EQ(It->second->trace_id, Trace);
      }
    }
    EXPECT_EQ(Roots, 1) << "exactly one root per trace";
    EXPECT_TRUE(Kinds.count(FLICK_SPAN_RPC));
    EXPECT_TRUE(Kinds.count(FLICK_SPAN_SEND));
    EXPECT_TRUE(Kinds.count(FLICK_SPAN_DEMUX));
    EXPECT_TRUE(Kinds.count(FLICK_SPAN_REPLY));
  }
}

TEST(Trace, ServerSpanParentsOntoClientSendAcrossTheLink) {
  ScopedTracer S;
  Rig R;
  invokeOnce(R);
  const flick_span *Send = nullptr, *Demux = nullptr, *Reply = nullptr;
  for (size_t I = 0; I != flick_trace_span_count(&S.T); ++I) {
    const flick_span *Sp = flick_trace_span(&S.T, I);
    if (Sp->kind == FLICK_SPAN_SEND)
      Send = Sp;
    else if (Sp->kind == FLICK_SPAN_DEMUX)
      Demux = Sp;
    else if (Sp->kind == FLICK_SPAN_REPLY)
      Reply = Sp;
  }
  ASSERT_NE(Send, nullptr);
  ASSERT_NE(Demux, nullptr);
  ASSERT_NE(Reply, nullptr);
  EXPECT_EQ(Demux->parent_id, Send->span_id);
  EXPECT_EQ(Demux->trace_id, Send->trace_id);
  EXPECT_EQ(Reply->parent_id, Demux->span_id);
}

TEST(Trace, ModeledLinkRecordsWireSpansMatchingTheModel) {
  ScopedTracer S;
  SimClock Clock;
  Rig R;
  NetworkModel Model = NetworkModel::ethernet100();
  R.Link.setModel(Model, &Clock);
  invokeOnce(R, 64);
  double WireUs = 0;
  int Wires = 0;
  for (size_t I = 0; I != flick_trace_span_count(&S.T); ++I) {
    const flick_span *Sp = flick_trace_span(&S.T, I);
    if (Sp->kind == FLICK_SPAN_WIRE) {
      ++Wires;
      WireUs += Sp->dur_us;
      EXPECT_NE(Sp->parent_id, 0u) << "wire span must nest under a send";
    }
  }
  EXPECT_EQ(Wires, 2) << "request + reply";
  EXPECT_DOUBLE_EQ(WireUs, Clock.totalUs());
  EXPECT_DOUBLE_EQ(WireUs, 2 * Model.wireTimeUs(64));
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  ScopedTracer S(8);
  Rig R;
  for (int I = 0; I != 5; ++I)
    invokeOnce(R); // 20 spans into an 8-slot ring
  EXPECT_EQ(flick_trace_span_count(&S.T), 8u);
  EXPECT_EQ(S.T.head, 20u);
  EXPECT_EQ(S.T.dropped, 12u);
  EXPECT_EQ(S.T.depth, 0u);
  // The survivors are the newest spans, still well-formed.
  for (size_t I = 0; I != 8; ++I)
    EXPECT_NE(flick_trace_span(&S.T, I)->span_id, 0u);
}

TEST(Trace, DepthOverflowKeepsBeginEndPairing) {
  ScopedTracer S;
  const int Deep = FLICK_TRACE_MAX_DEPTH + 8;
  for (int I = 0; I != Deep; ++I)
    flick_span_begin(FLICK_SPAN_WORK, "deep");
  EXPECT_EQ(S.T.depth, uint32_t(Deep));
  EXPECT_EQ(S.T.truncated, 8u);
  for (int I = 0; I != Deep; ++I)
    flick_span_end();
  EXPECT_EQ(S.T.depth, 0u);
  // Only the spans that fit the open stack were recorded.
  EXPECT_EQ(flick_trace_span_count(&S.T), size_t(FLICK_TRACE_MAX_DEPTH));
}

TEST(Trace, CloseToUnwindsLeakedSpans) {
  ScopedTracer S;
  flick_span_begin(FLICK_SPAN_RPC, "root");
  flick_span_begin(FLICK_SPAN_MARSHAL, "leaky");
  flick_span_begin(FLICK_SPAN_WORK, "leakier");
  flick_trace_close_to(0);
  EXPECT_EQ(S.T.depth, 0u);
  EXPECT_EQ(flick_trace_span_count(&S.T), 3u);
}

TEST(Trace, ChromeExportHasMatchedBeginEndPairs) {
  ScopedTracer S;
  Rig R;
  for (int I = 0; I != 3; ++I)
    invokeOnce(R);
  std::string Json = flick_trace_to_chrome_json(&S.T);
  size_t Begins = 0, Ends = 0, Pos = 0;
  while ((Pos = Json.find("\"ph\": \"B\"", Pos)) != std::string::npos)
    ++Begins, Pos += 1;
  Pos = 0;
  while ((Pos = Json.find("\"ph\": \"E\"", Pos)) != std::string::npos)
    ++Ends, Pos += 1;
  EXPECT_EQ(Begins, flick_trace_span_count(&S.T));
  EXPECT_EQ(Begins, Ends);
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json[Json.size() - 2], '}'); // trailing newline after the brace
}

TEST(Trace, CollapsedStacksFollowParentChains) {
  ScopedTracer S;
  Rig R;
  invokeOnce(R);
  std::string Out = flick_trace_to_collapsed(&S.T);
  EXPECT_NE(Out.find("rpc;send"), std::string::npos) << Out;
  EXPECT_NE(Out.find("rpc;send;demux;reply"), std::string::npos) << Out;
}

TEST(Trace, InvokeRecordsLatencyHistogramWhenMetricsOn) {
  flick_metrics M;
  flick_metrics_enable(&M);
  Rig R;
  const int Calls = 7;
  for (int I = 0; I != Calls; ++I)
    invokeOnce(R);
  flick_metrics_disable();

  const flick_latency_hist &H = M.rpc_latency;
  EXPECT_EQ(H.count, uint64_t(Calls));
  uint64_t BucketSum = 0;
  for (uint64_t B : H.buckets)
    BucketSum += B;
  EXPECT_EQ(BucketSum, H.count);
  double P50 = flick_hist_percentile(&H, 0.50);
  double P90 = flick_hist_percentile(&H, 0.90);
  double P99 = flick_hist_percentile(&H, 0.99);
  EXPECT_LE(P50, P90);
  EXPECT_LE(P90, P99);
  EXPECT_LE(P99, H.max_us);
}

TEST(Trace, HistogramPercentilesAreOrderedOnKnownData) {
  flick_latency_hist H;
  for (int I = 0; I != 90; ++I)
    flick_hist_record(&H, 3.0); // bucket [2,4)
  for (int I = 0; I != 9; ++I)
    flick_hist_record(&H, 100.0); // bucket [64,128)
  flick_hist_record(&H, 5000.0);  // bucket [4096,8192)
  EXPECT_EQ(H.count, 100u);
  EXPECT_DOUBLE_EQ(H.max_us, 5000.0);
  EXPECT_DOUBLE_EQ(flick_hist_percentile(&H, 0.50), 4.0);
  EXPECT_DOUBLE_EQ(flick_hist_percentile(&H, 0.90), 4.0);
  EXPECT_DOUBLE_EQ(flick_hist_percentile(&H, 0.99), 128.0);
  // The last bucket's upper bound exceeds the observed max: clamp.
  EXPECT_DOUBLE_EQ(flick_hist_percentile(&H, 1.0), 5000.0);
  flick_latency_hist Empty;
  EXPECT_DOUBLE_EQ(flick_hist_percentile(&Empty, 0.5), 0.0);
}

TEST(Trace, HistogramJsonCarriesPercentilesAndBuckets) {
  flick_latency_hist H;
  flick_hist_record(&H, 10.0);
  flick_hist_record(&H, 20.0);
  std::string J = flick_hist_to_json(&H);
  EXPECT_NE(J.find("\"count\": 2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"p50_us\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"p90_us\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"p99_us\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"max_us\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"buckets\""), std::string::npos) << J;
}

TEST(Trace, MetricsJsonEmbedsRpcLatency) {
  flick_metrics M{};
  flick_hist_record(&M.rpc_latency, 42.0);
  std::string J = flick_metrics_to_json(&M);
  EXPECT_NE(J.find("\"rpc_latency\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"count\": 1"), std::string::npos) << J;
}

TEST(Trace, JsonEscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(flick_json_escape("plain"), "plain");
  EXPECT_EQ(flick_json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(flick_json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(flick_json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(flick_json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(TraceMerge, HistMergeAddsCountsAndKeepsMax) {
  flick_latency_hist A{}, B{};
  flick_hist_record(&A, 3.0);
  flick_hist_record(&A, 100.0);
  flick_hist_record(&B, 5000.0);
  flick_hist_merge(&A, &B);
  EXPECT_EQ(A.count, 3u);
  EXPECT_DOUBLE_EQ(A.sum_us, 5103.0);
  EXPECT_DOUBLE_EQ(A.max_us, 5000.0);
  // Percentiles over the merged buckets see all three samples.
  EXPECT_GE(flick_hist_percentile(&A, 0.99), 100.0);
  EXPECT_LE(flick_hist_percentile(&A, 0.99), 5000.0);
}

TEST(TraceMerge, HistMergeWithEmptySidesIsIdentity) {
  // Empty-into-populated and populated-into-empty both preserve the data
  // exactly: merging a worker that recorded nothing must not disturb
  // counts, sum, max, or any bucket.
  flick_latency_hist Full{}, Empty{};
  flick_hist_record(&Full, 3.0);
  flick_hist_record(&Full, 700.0);
  flick_latency_hist Snapshot = Full;
  flick_hist_merge(&Full, &Empty);
  EXPECT_EQ(Full.count, Snapshot.count);
  EXPECT_DOUBLE_EQ(Full.sum_us, Snapshot.sum_us);
  EXPECT_DOUBLE_EQ(Full.max_us, Snapshot.max_us);
  for (int I = 0; I != FLICK_HIST_BUCKETS; ++I)
    EXPECT_EQ(Full.buckets[I], Snapshot.buckets[I]) << "bucket " << I;
  flick_latency_hist Dst{};
  flick_hist_merge(&Dst, &Full);
  EXPECT_EQ(Dst.count, 2u);
  EXPECT_DOUBLE_EQ(Dst.sum_us, 703.0);
  EXPECT_DOUBLE_EQ(Dst.max_us, 700.0);
}

TEST(Trace, OverflowBucketCatchesAstronomicalLatencies) {
  // Durations beyond the last finite boundary land in the overflow bucket
  // (index FLICK_HIST_BUCKETS - 1) instead of indexing out of range, and
  // percentiles clamp to the observed max rather than the bucket bound.
  flick_latency_hist H{};
  flick_hist_record(&H, 1e30);
  flick_hist_record(&H, 5.0);
  EXPECT_EQ(H.count, 2u);
  EXPECT_EQ(H.buckets[FLICK_HIST_BUCKETS - 1], 1u);
  EXPECT_DOUBLE_EQ(H.max_us, 1e30);
  // p100 resolves to the overflow bucket's upper bound (2^63 us): the
  // histogram cannot locate a duration beyond its last boundary more
  // precisely than "at least this", and it never exceeds the true max.
  double P100 = flick_hist_percentile(&H, 1.0);
  EXPECT_DOUBLE_EQ(
      P100, static_cast<double>(uint64_t(1) << (FLICK_HIST_BUCKETS - 1)));
  EXPECT_LE(P100, H.max_us);
}

TEST(TraceMerge, AbsorbEmptySourceRingIsANoop) {
  flick_tracer Dst;
  std::vector<flick_span> DstStorage(8);
  flick_trace_enable(&Dst, DstStorage.data(), 8);
  flick_span_begin(FLICK_SPAN_RPC, "only");
  flick_span_end();
  flick_trace_disable();

  flick_tracer Src; // enabled, but its ring never saw a completed span
  std::vector<flick_span> SrcStorage(8);
  flick_trace_enable_thread(&Src, SrcStorage.data(), 8);
  flick_trace_disable();

  flick_trace_absorb(&Dst, &Src);
  ASSERT_EQ(flick_trace_span_count(&Dst), 1u);
  EXPECT_STREQ(flick_trace_span(&Dst, 0)->name, "only");
  EXPECT_EQ(Dst.dropped, 0u);
  EXPECT_EQ(Dst.truncated, 0u);
}

TEST(Trace, ChromeExportCarriesBuildInfo) {
  ScopedTracer S;
  Rig R;
  invokeOnce(R);
  std::string Json = flick_trace_to_chrome_json(&S.T);
  EXPECT_NE(Json.find("\"build\": {\"git\": "), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"compiler\": "), std::string::npos) << Json;
}

TEST(TraceMerge, AbsorbCopiesSpansRebasedWithCounters) {
  flick_tracer Dst;
  std::vector<flick_span> DstStorage(16);
  flick_trace_enable(&Dst, DstStorage.data(), 16);
  flick_span_begin(FLICK_SPAN_RPC, "local");
  flick_span_end();
  flick_trace_disable();

  flick_tracer Src;
  std::vector<flick_span> SrcStorage(16);
  flick_trace_enable_thread(&Src, SrcStorage.data(), 16);
  flick_span_begin(FLICK_SPAN_DEMUX, "remote");
  flick_span_end();
  flick_trace_disable();
  Src.dropped = 5;
  Src.truncated = 2;

  flick_trace_absorb(&Dst, &Src);
  ASSERT_EQ(flick_trace_span_count(&Dst), 2u);
  EXPECT_STREQ(flick_trace_span(&Dst, 0)->name, "local");
  EXPECT_STREQ(flick_trace_span(&Dst, 1)->name, "remote");
  EXPECT_EQ(Dst.dropped, 5u);
  EXPECT_EQ(Dst.truncated, 2u);
  // Timestamps were rebased onto Dst's epoch: the absorbed span began
  // after (or at) the local one on the shared clock.
  EXPECT_GE(flick_trace_span(&Dst, 1)->begin_us,
            flick_trace_span(&Dst, 0)->begin_us);
}

TEST(TraceMerge, ThreadSaltKeepsIdSpacesDistinct) {
  // Two salted tracers recording concurrently must never mint colliding
  // trace or span ids, or absorbed rings would stitch unrelated spans
  // into one tree.
  flick_tracer A, B;
  std::vector<flick_span> SA(64), SB(64);
  auto Body = [](flick_tracer *T, flick_span *Storage) {
    flick_trace_enable_thread(T, Storage, 64);
    for (int I = 0; I != 20; ++I) {
      flick_span_begin(FLICK_SPAN_RPC, "r");
      flick_span_begin(FLICK_SPAN_SEND, "s");
      flick_span_end();
      flick_span_end();
    }
    flick_trace_disable();
  };
  std::thread T1(Body, &A, SA.data());
  std::thread T2(Body, &B, SB.data());
  T1.join();
  T2.join();

  std::set<uint64_t> Ids, Traces;
  for (const flick_tracer *T : {&A, &B})
    for (size_t I = 0; I != flick_trace_span_count(T); ++I) {
      const flick_span *Sp = flick_trace_span(T, I);
      EXPECT_TRUE(Ids.insert(Sp->span_id).second) << "span id collision";
      Traces.insert(Sp->trace_id);
    }
  EXPECT_EQ(Ids.size(), 80u);
  EXPECT_EQ(Traces.size(), 40u) << "trace ids distinct across threads";
}

TEST(Trace, EnableResetsAndDisableKeepsRecordedSpans) {
  flick_tracer T;
  std::vector<flick_span> Storage(16);
  T.head = 99;
  T.depth = 3;
  flick_trace_enable(&T, Storage.data(), 16);
  EXPECT_EQ(T.head, 0u);
  EXPECT_EQ(T.depth, 0u);
  flick_span_begin(FLICK_SPAN_RPC, "kept");
  flick_span_end();
  flick_trace_disable();
  EXPECT_EQ(flick_trace_active, nullptr);
  EXPECT_EQ(flick_trace_span_count(&T), 1u);
  EXPECT_STREQ(flick_trace_span(&T, 0)->name, "kept");
}

} // namespace
