//===- tests/BenchJsonTests.cpp - bench JSON report tests -----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the FLICK_BENCH_JSON report writer: string values must be
/// escaped (not spliced raw into the document), an existing results file
/// must be refused rather than silently overwritten, and FLICK_BENCH_TRACE
/// must produce a Chrome trace beside the results.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace flickbench;

namespace {

std::string tempPath(const char *Leaf) {
  return ::testing::TempDir() + Leaf;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

/// Points FLICK_BENCH_JSON (and optionally FLICK_BENCH_TRACE) at fresh
/// paths for the test body; restores an unset environment on exit.
struct ScopedBenchEnv {
  explicit ScopedBenchEnv(const std::string &Json,
                          const std::string &Trace = "") {
    std::remove(Json.c_str());
    setenv("FLICK_BENCH_JSON", Json.c_str(), 1);
    if (!Trace.empty()) {
      std::remove(Trace.c_str());
      setenv("FLICK_BENCH_TRACE", Trace.c_str(), 1);
    }
  }
  ~ScopedBenchEnv() {
    unsetenv("FLICK_BENCH_JSON");
    unsetenv("FLICK_BENCH_TRACE");
  }
};

TEST(BenchJson, UnsetEnvironmentMeansNoFile) {
  unsetenv("FLICK_BENCH_JSON");
  JsonReport R;
  EXPECT_TRUE(R.write("noop"));
}

TEST(BenchJson, WritesRowsAndEscapesStrings) {
  std::string Path = tempPath("bench_json_escape.json");
  ScopedBenchEnv Env(Path);
  JsonReport R;
  JsonReport::Row Row;
  Row.str("workload", "evil\"name\\with\nnewline").num("payload_bytes",
                                                       size_t(42));
  R.add(Row);
  ASSERT_TRUE(R.write("quo\"ted"));
  std::string Doc = slurp(Path);
  EXPECT_NE(Doc.find("\"bench\": \"quo\\\"ted\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("evil\\\"name\\\\with\\nnewline"), std::string::npos)
      << Doc;
  EXPECT_EQ(Doc.find("evil\"name"), std::string::npos)
      << "raw quote leaked into JSON:\n"
      << Doc;
  std::remove(Path.c_str());
}

TEST(BenchJson, RefusesToOverwriteExistingResults) {
  std::string Path = tempPath("bench_json_existing.json");
  ScopedBenchEnv Env(Path);
  {
    std::ofstream Out(Path);
    Out << "{\"bench\": \"earlier run\"}\n";
  }
  JsonReport R;
  EXPECT_FALSE(R.write("clobber"));
  // The original document survives untouched.
  EXPECT_NE(slurp(Path).find("earlier run"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(BenchJson, FreshPathSucceedsAfterRefusal) {
  std::string Path = tempPath("bench_json_fresh.json");
  ScopedBenchEnv Env(Path);
  JsonReport R;
  ASSERT_TRUE(R.write("fresh"));
  EXPECT_NE(slurp(Path).find("\"bench\": \"fresh\""), std::string::npos);
  std::remove(Path.c_str());
}

TEST(BenchJson, TraceEnvEnablesTracerAndWritesChromeJson) {
  std::string Json = tempPath("bench_json_traced.json");
  std::string Trace = tempPath("bench_trace.json");
  ScopedBenchEnv Env(Json, Trace);

  EXPECT_NE(benchTracerIfRequested(), nullptr);
  ASSERT_NE(flick_trace_active, nullptr);
  flick_span_begin(FLICK_SPAN_RPC, "bench_call");
  flick_span_end();

  JsonReport R;
  ASSERT_TRUE(R.write("traced"));
  flick_trace_disable();

  std::string Doc = slurp(Trace);
  EXPECT_NE(Doc.find("\"traceEvents\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("bench_call"), std::string::npos) << Doc;
  std::remove(Json.c_str());
  std::remove(Trace.c_str());
}

TEST(BenchJson, MetricsBlockCarriesLatencyHistogram) {
  std::string Path = tempPath("bench_json_hist.json");
  ScopedBenchEnv Env(Path);
  flick_metrics M{};
  flick_hist_record(&M.rpc_latency, 12.5);
  JsonReport R;
  ASSERT_TRUE(R.write("hist", &M));
  std::string Doc = slurp(Path);
  EXPECT_NE(Doc.find("\"rpc_latency\""), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"p99_us\""), std::string::npos) << Doc;
  std::remove(Path.c_str());
}

} // namespace
