//===- tests/ShardedLinkTests.cpp - lock-free ring transport --------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ShardedLink specifics beyond the TransportConformance contract: shard
/// placement and work stealing (with the steals gauge), per-shard depth
/// accounting, ring_wait_ns for senders blocked on a full ring, gauge
/// balance after a full pool run, and a shutdown-vs-senders race.  The
/// concurrency tests run under TSan in CI; every assertion is about a
/// deterministic outcome, not an interleaving.
///
//===----------------------------------------------------------------------===//

#include "runtime/Sampler.h"
#include "runtime/flick_runtime.h"
#include "runtime/transport/ShardedLink.h"
#include <atomic>
#include <chrono>
#include <cstring>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace flick;

namespace {

int echoDispatch(flick_server *, flick_buf *Req, flick_buf *Rep) {
  size_t N = Req->len - Req->pos;
  if (flick_buf_ensure(Rep, N) != FLICK_OK)
    return FLICK_ERR_ALLOC;
  std::memcpy(flick_buf_grab(Rep, N), Req->data + Req->pos, N);
  return FLICK_OK;
}

struct ScopedGauges {
  ScopedGauges() { flick_gauges_enable(); }
  ~ScopedGauges() { flick_gauges_disable(); }
};

unsigned driveEchoes(ShardedLink &Link, unsigned Seed, unsigned Calls,
                     size_t Bytes) {
  flick_client Cli;
  flick_client_init(&Cli, &Link.connect());
  unsigned Ok = 0;
  for (unsigned C = 0; C != Calls; ++C) {
    std::vector<uint8_t> Want(Bytes);
    for (size_t I = 0; I != Bytes; ++I)
      Want[I] = static_cast<uint8_t>(Seed * 131 + C * 31 + I);
    flick_buf *Req = flick_client_begin(&Cli);
    if (flick_buf_ensure(Req, Bytes) != FLICK_OK)
      break;
    std::memcpy(flick_buf_grab(Req, Bytes), Want.data(), Bytes);
    if (flick_client_invoke(&Cli) != FLICK_OK)
      break;
    if (Cli.rep.len == Bytes &&
        std::memcmp(Cli.rep.data, Want.data(), Bytes) == 0)
      ++Ok;
  }
  flick_client_destroy(&Cli);
  return Ok;
}

TEST(ShardedLink, DefaultAndExplicitShardCounts) {
  ShardedLink Def;
  EXPECT_EQ(Def.shards(), 4u);
  ShardedLink Two(/*ShardCap=*/8, /*Shards=*/2);
  EXPECT_EQ(Two.shards(), 2u);
  Def.shutdown();
  Two.shutdown();
}

TEST(ShardedLink, ShardDepthTracksPerRingOccupancy) {
  ScopedGauges Gauges;
  ShardedLink Link(/*ShardCap=*/8, /*Shards=*/2);
  // connect() assigns shards round-robin: first connection -> shard 0,
  // second -> shard 1.
  Channel &C0 = Link.connect();
  Channel &C1 = Link.connect();
  uint8_t B[8] = {};
  for (int I = 0; I != 3; ++I)
    ASSERT_EQ(C0.send(B, sizeof B), FLICK_OK);
  for (int I = 0; I != 2; ++I)
    ASSERT_EQ(C1.send(B, sizeof B), FLICK_OK);
  EXPECT_EQ(Link.shardDepth(0), 3u);
  EXPECT_EQ(Link.shardDepth(1), 2u);
  EXPECT_EQ(Link.shardDepth(99), 0u); // out of range reads as empty
  EXPECT_EQ(Link.pendingRequests(), 5u);
  // The flight-recorder mirrors: per-slot occupancy and the global depth.
  EXPECT_EQ(flick_gauges_global.shard_depth[0].load(), 3u);
  EXPECT_EQ(flick_gauges_global.shard_depth[1].load(), 2u);
  EXPECT_EQ(flick_gauges_global.queue_depth.load(), 5u);

  Channel &W = Link.workerEnd();
  std::vector<uint8_t> Out;
  for (int I = 0; I != 5; ++I)
    ASSERT_EQ(W.recv(Out), FLICK_OK);
  EXPECT_EQ(Link.shardDepth(0), 0u);
  EXPECT_EQ(Link.shardDepth(1), 0u);
  EXPECT_EQ(flick_gauges_global.shard_depth[0].load(), 0u);
  EXPECT_EQ(flick_gauges_global.shard_depth[1].load(), 0u);
  EXPECT_EQ(flick_gauges_global.queue_depth.load(), 0u);
  Link.shutdown();
}

TEST(ShardedLink, WorkerStealsFromOtherShards) {
  ScopedGauges Gauges;
  ShardedLink Link(/*ShardCap=*/8, /*Shards=*/2);
  (void)Link.connect();            // shard 0 (unused)
  Channel &C1 = Link.connect();    // shard 1
  Channel &W = Link.workerEnd();   // prefers shard 0
  uint8_t B[4] = {0x5E, 0, 0, 0};
  ASSERT_EQ(C1.send(B, sizeof B), FLICK_OK);
  std::vector<uint8_t> Out;
  // The only pending request sits in shard 1; the worker's sweep must
  // cross over and the crossing must be visible as a steal.
  ASSERT_EQ(W.recv(Out), FLICK_OK);
  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out[0], 0x5E);
  EXPECT_EQ(flick_gauges_global.steals.load(), 1u);
  EXPECT_EQ(flick_gauges_global.queue_dequeues.load(), 1u);
  Link.shutdown();
}

TEST(ShardedLink, RingWaitAccountsBlockedSenders) {
  ScopedGauges Gauges;
  ShardedLink Link(/*ShardCap=*/2, /*Shards=*/1);
  Channel &C = Link.connect();
  uint8_t B[4] = {1, 2, 3, 4};
  ASSERT_EQ(C.send(B, sizeof B), FLICK_OK); // fills the two-cell ring
  ASSERT_EQ(C.send(B, sizeof B), FLICK_OK);

  flick_metrics SenderM;
  int SendErr = -1;
  std::thread Sender([&] {
    flick_metrics_enable(&SenderM);
    SendErr = C.send(B, sizeof B); // meets the full ring, blocks
    flick_metrics_disable();
  });
  while (flick_gauges_global.queue_full_waits.load(
             std::memory_order_relaxed) == 0)
    std::this_thread::yield();
  // Hold the sender on the full ring long enough that its accounted wait
  // is unambiguously nonzero, then let a worker free a cell.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Channel &W = Link.workerEnd();
  std::vector<uint8_t> Out;
  ASSERT_EQ(W.recv(Out), FLICK_OK);
  ASSERT_EQ(W.recv(Out), FLICK_OK);
  ASSERT_EQ(W.recv(Out), FLICK_OK);
  Sender.join();
  EXPECT_EQ(SendErr, FLICK_OK);
  EXPECT_EQ(SenderM.queue_full, 1u);
  EXPECT_GE(flick_gauges_global.ring_wait_ns.load(), 1000000u);
  Link.shutdown();
}

TEST(ShardedLink, GaugesBalanceAfterPoolRun) {
  ScopedGauges Gauges;
  ShardedLink Link;
  flick_server_pool Pool;
  ASSERT_EQ(flick_server_pool_start(&Pool, &Link, echoDispatch, 4),
            FLICK_OK);
  const unsigned Clients = 4, Calls = 50;
  std::vector<unsigned> Verified(Clients, 0);
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I != Clients; ++I)
    Ts.emplace_back([&, I] {
      Verified[I] = driveEchoes(Link, I, Calls, 64 + I * 32);
    });
  for (auto &T : Ts)
    T.join();
  flick_server_pool_stop(&Pool);
  for (unsigned I = 0; I != Clients; ++I)
    EXPECT_EQ(Verified[I], Calls) << "client " << I;
  // Every enqueue was dequeued and both sides of the depth accounting
  // met: the instantaneous gauges must return exactly to zero.
  const uint64_t N = Clients * Calls;
  EXPECT_EQ(flick_gauges_global.queue_enqueues.load(), N);
  EXPECT_EQ(flick_gauges_global.queue_dequeues.load(), N);
  EXPECT_EQ(flick_gauges_global.queue_depth.load(), 0u);
  for (int S = 0; S != FLICK_GAUGE_SHARD_SLOTS; ++S)
    EXPECT_EQ(flick_gauges_global.shard_depth[S].load(), 0u) << "slot " << S;
}

TEST(ShardedLink, ShutdownRacesActiveSenders) {
  ShardedLink Link(/*ShardCap=*/4);
  std::vector<std::thread> Ts;
  for (int I = 0; I != 4; ++I)
    Ts.emplace_back([&] {
      Channel &C = Link.connect();
      uint8_t B[16] = {};
      for (int K = 0; K != 200; ++K)
        // With tiny rings and no workers each sender soon blocks; the
        // racing shutdown must fail it out, never strand it.
        if (C.send(B, sizeof B) != FLICK_OK)
          return;
    });
  Link.shutdown();
  for (auto &T : Ts)
    T.join(); // the assertion is that this returns at all
  Channel &C = Link.connect();
  uint8_t B[4] = {};
  EXPECT_EQ(C.send(B, sizeof B), FLICK_ERR_TRANSPORT);
}

} // namespace
