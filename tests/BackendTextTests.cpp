//===- tests/BackendTextTests.cpp - generated-code property tests ---------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Asserts structural properties of the generated C text: that the
/// optimizations of paper §3 actually show up in the code (one coalesced
/// buffer check per fixed segment, chunk-pointer addressing, memcpy for
/// bit-identical arrays, switch-based demux, word-at-a-time name matching)
/// and disappear when their flags are off.
///
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"
#include "frontends/corba/CorbaFrontEnd.h"
#include "frontends/oncrpc/OncFrontEnd.h"
#include "presgen/PresGen.h"
#include "support/Diagnostics.h"
#include <gtest/gtest.h>

using namespace flick;

namespace {

BackendOutput gen(const std::string &Src, bool Onc,
                  const std::string &BackendTag,
                  BackendOptions Opts = BackendOptions()) {
  DiagnosticEngine D;
  std::unique_ptr<AoiModule> M =
      Onc ? parseOncIdl(Src, "t.x", D) : parseCorbaIdl(Src, "t.idl", D);
  EXPECT_TRUE(M) << D.renderAll();
  std::unique_ptr<PresGen> PG;
  if (Onc)
    PG = std::make_unique<RpcgenPresGen>(PresGenOptions{});
  else
    PG = std::make_unique<CorbaPresGen>(PresGenOptions{});
  auto P = PG->generate(*M, D);
  EXPECT_TRUE(P) << D.renderAll();
  auto BE = createBackend(BackendTag, Opts);
  EXPECT_TRUE(BE);
  return BE->generate(*P, "t");
}

size_t countOccurrences(const std::string &Hay, const std::string &Needle) {
  size_t N = 0, Pos = 0;
  while ((Pos = Hay.find(Needle, Pos)) != std::string::npos) {
    ++N;
    Pos += Needle.size();
  }
  return N;
}

/// Extracts one function's body from generated text.
std::string functionBody(const std::string &Text, const std::string &Name) {
  size_t Pos = Text.find(" " + Name + "(");
  EXPECT_NE(Pos, std::string::npos) << "function " << Name << " not found";
  if (Pos == std::string::npos)
    return {};
  size_t Open = Text.find('{', Pos);
  size_t Depth = 1, I = Open + 1;
  while (I < Text.size() && Depth) {
    if (Text[I] == '{')
      ++Depth;
    if (Text[I] == '}')
      --Depth;
    ++I;
  }
  return Text.substr(Open, I - Open);
}

const char *FixedIdl = R"(
  struct P4 { long a; long b; long c; long d; };
  interface I { void f(in P4 v, in long x); };
)";

TEST(BackendText, FixedMessageHasSingleBufferCheck) {
  // Paper §3.1: a fixed-size message checks marshal-buffer space exactly
  // once (header and body may be separate chunks; the body itself must
  // not check per datum).
  auto Out = gen(FixedIdl, false, "iiop");
  std::string Body = functionBody(Out.Header, "I_f_encode_request");
  // One ensure for the header+name chunk, one for the 5-long body chunk,
  // plus the trailing-alignment helper: at most 3, far below per-datum.
  EXPECT_LE(countOccurrences(Body, "flick_buf_ensure"), 3u) << Body;
  // Chunk-pointer addressing with constant offsets (paper §3.2).
  EXPECT_NE(Body.find("_chk"), std::string::npos);
}

TEST(BackendText, NoChunkFlagChecksPerDatum) {
  BackendOptions O;
  O.Chunk = false;
  auto Out = gen(FixedIdl, false, "iiop", O);
  std::string Body = functionBody(Out.Header, "I_f_encode_request");
  // Five body fields + header pieces: many separate ensures.
  EXPECT_GE(countOccurrences(Body, "flick_buf_ensure"), 5u) << Body;
}

TEST(BackendText, MemcpyForBitIdenticalArrays) {
  // CDR-LE int arrays are bit-identical on a little-endian host.
  auto Out = gen("typedef sequence<long> S;\n"
                 "interface I { void f(in S v); };",
                 false, "iiop");
  std::string Body = functionBody(Out.Header, "I_f_encode_request");
  EXPECT_NE(Body.find("memcpy"), std::string::npos) << Body;
  EXPECT_EQ(Body.find("for ("), std::string::npos)
      << "int arrays must not marshal element by element:\n"
      << Body;
}

TEST(BackendText, SwapArraysGetSingleCheckAndLoop) {
  // XDR int arrays on a little-endian host: one coalesced space check,
  // then a chunk-relative element loop the compiler vectorizes into a
  // byte-swapping block copy.
  auto Out = gen(R"(
    typedef int s<>;
    program P { version V { void F(s) = 1; } = 1; } = 1;)",
                 true, "xdr");
  std::string Body = functionBody(Out.Header, "f_1_encode_request");
  EXPECT_NE(Body.find("for ("), std::string::npos) << Body;
  // Header + length word + ONE whole-array ensure: no per-element checks.
  EXPECT_LE(countOccurrences(Body, "flick_buf_ensure"), 3u) << Body;
  EXPECT_NE(Body.find("flick_enc_u32be"), std::string::npos);
}

TEST(BackendText, NoMemcpyFlagFallsBackToLoops) {
  BackendOptions O;
  O.Memcpy = false;
  auto Out = gen("typedef sequence<long> S;\n"
                 "interface I { void f(in S v); };",
                 false, "iiop", O);
  std::string Body = functionBody(Out.Header, "I_f_encode_request");
  EXPECT_NE(Body.find("for ("), std::string::npos) << Body;
}

TEST(BackendText, DispatchUsesSwitchOnProcedureNumber) {
  auto Out = gen(R"(
    program P { version V {
      void A(int) = 1; void B(int) = 2; void C(int) = 3;
    } = 1; } = 9;)",
                 true, "xdr");
  EXPECT_NE(Out.ServerSrc.find("switch (_opcode)"), std::string::npos);
  EXPECT_NE(Out.ServerSrc.find("case 1u:"), std::string::npos);
  EXPECT_NE(Out.ServerSrc.find("case 3u:"), std::string::npos);
  EXPECT_NE(Out.ServerSrc.find("FLICK_ERR_NO_SUCH_OP"), std::string::npos);
}

TEST(BackendText, IiopDemuxMatchesNamesWordAtATime) {
  // Paper §3.3: multi-word discriminators decode with nested switches on
  // machine words.
  auto Out = gen("interface I { void send(in long a);\n"
                 "  void send_more(in long a); void stop(); };",
                 false, "iiop");
  EXPECT_NE(Out.ServerSrc.find("switch (flick_dec_u32ne(_opname))"),
            std::string::npos)
      << Out.ServerSrc;
  // "send\0..." and "send_more\0..." share the first word, so a nested
  // word comparison must appear.
  EXPECT_GE(countOccurrences(Out.ServerSrc, "flick_dec_u32ne(_opname + 4"),
            1u);
}

TEST(BackendText, ServerAliasesRequestBufferForArrays) {
  auto Out = gen("typedef sequence<long> S;\n"
                 "interface I { void f(in S v); };",
                 false, "iiop");
  std::string Body = functionBody(Out.Header, "I_f_decode_request");
  EXPECT_NE(Body.find("flick_buf_take_mut"), std::string::npos)
      << "expected decode-in-place aliasing:\n"
      << Body;
}

TEST(BackendText, NoAliasFlagCopiesInstead) {
  BackendOptions O;
  O.BufferAlias = false;
  auto Out = gen("typedef sequence<long> S;\n"
                 "interface I { void f(in S v); };",
                 false, "iiop", O);
  std::string Body = functionBody(Out.Header, "I_f_decode_request");
  EXPECT_EQ(Body.find("flick_buf_take_mut"), std::string::npos);
  EXPECT_NE(Body.find("flick_arena_alloc"), std::string::npos) << Body;
}

TEST(BackendText, NoScratchFlagMallocs) {
  BackendOptions O;
  O.ScratchAlloc = false;
  auto Out = gen("typedef sequence<long> S;\n"
                 "interface I { void f(in S v); };",
                 false, "iiop", O);
  std::string Body = functionBody(Out.Header, "I_f_decode_request");
  EXPECT_EQ(Body.find("flick_arena_alloc"), std::string::npos);
  EXPECT_NE(Body.find("malloc"), std::string::npos) << Body;
}

TEST(BackendText, RecursiveTypesGetOutOfLineHelpers) {
  // Paper §3.3: everything inlines except recursive types.
  auto Out = gen(R"(
    struct node { int v; node *next; };
    typedef node *list;
    program P { version V { void F(list) = 1; } = 1; } = 1;)",
                 true, "xdr");
  EXPECT_NE(Out.Header.find("_enc_h"), std::string::npos);
  EXPECT_NE(Out.Header.find("_dec_h"), std::string::npos);
}

TEST(BackendText, NonRecursiveTypesFullyInline) {
  auto Out = gen(FixedIdl, false, "iiop");
  // No out-of-line marshal helpers for plain structs.
  EXPECT_EQ(Out.Header.find("_enc_h"), std::string::npos);
}

TEST(BackendText, NaiveBackendCallsPerDatumFunctions) {
  auto Out = gen(R"(
    typedef int s<>;
    program P { version V { void F(s) = 1; } = 1; } = 1;)",
                 true, "naive");
  EXPECT_FALSE(Out.CommonSrc.empty());
  EXPECT_NE(Out.CommonSrc.find("flick_naive_put_u32"), std::string::npos);
  EXPECT_EQ(Out.CommonSrc.find("flick_swap_copy"), std::string::npos);
  // Stubs call out-of-line helpers instead of inlining.
  EXPECT_EQ(Out.Header.find("static inline int f_1_encode_request"),
            std::string::npos);
}

TEST(BackendText, BoundedSegmentPreEnsuresOnce) {
  // A bounded string below the threshold triggers the §3.1 bounded-segment
  // optimization: one ensure of the maximum, then no further checks.
  auto Out = gen("interface I { void f(in string<64> s); };", false, "iiop");
  std::string Body = functionBody(Out.Header, "I_f_encode_request");
  // The string body itself must not re-ensure: only the header chunk and
  // the single bounded pre-ensure remain.
  EXPECT_LE(countOccurrences(Body, "flick_buf_ensure"), 2u) << Body;
}

TEST(BackendText, OnewayGeneratesNoReplyHelpers) {
  auto Out = gen("interface I { oneway void ping(in long t); };", false,
                 "iiop");
  EXPECT_EQ(Out.Header.find("I_ping_decode_reply"), std::string::npos);
  EXPECT_NE(Out.ClientSrc.find("flick_client_send_oneway"),
            std::string::npos);
}

TEST(BackendText, ExceptionsProduceEncodeHelperAndEnvHandling) {
  auto Out = gen("exception E { long code; };\n"
                 "interface I { void f() raises(E); };",
                 false, "iiop");
  EXPECT_NE(Out.Header.find("I_encode_reply_exc"), std::string::npos);
  EXPECT_NE(Out.ServerSrc.find("CORBA_USER_EXCEPTION"), std::string::npos);
  std::string Body = functionBody(Out.Header, "I_f_decode_reply");
  EXPECT_NE(Body.find("FLICK_REPLY_USER_EXCEPTION"), std::string::npos);
}

TEST(BackendText, XdrHeaderIsOneFortyByteChunk) {
  auto Out = gen(R"(
    program P { version V { void F(int) = 1; } = 1; } = 9;)",
                 true, "xdr");
  std::string Body = functionBody(Out.Header, "f_1_encode_request");
  EXPECT_NE(Body.find("flick_buf_grab(_buf, 40u)"), std::string::npos)
      << Body;
}

TEST(BackendText, GiopSizePatchEmitted) {
  auto Out = gen("interface I { void f(in long x); };", false, "iiop");
  std::string Body = functionBody(Out.Header, "I_f_encode_request");
  EXPECT_NE(Body.find("_buf->len - _mark"), std::string::npos) << Body;
}

TEST(BackendText, MachHeaderUsesMsghIdConvention) {
  // MIG convention: request ids are base + proc; sizes patch like GIOP.
  auto Out = gen(R"(
    program P { version V { void F(int) = 3; } = 1; } = 1;)",
                 true, "mach");
  std::string Body = functionBody(Out.Header, "f_1_encode_request");
  EXPECT_NE(Body.find("403u"), std::string::npos) << Body; // 400 + proc 3
  EXPECT_NE(Body.find("flick_enc_u32ne"), std::string::npos)
      << "Mach messages are host-endian";
  EXPECT_NE(Body.find("_buf->len - _mark"), std::string::npos);
}

TEST(BackendText, FlukeRequestRidesInRegisterWindow) {
  auto Out = gen(R"(
    program P { version V { void F(int) = 1; } = 1; } = 7;)",
                 true, "fluke");
  std::string Body = functionBody(Out.Header, "f_1_encode_request");
  // The whole register window reserves as one 32-byte chunk.
  EXPECT_NE(Body.find("flick_buf_grab(_buf, 32u)"), std::string::npos)
      << Body;
}

TEST(BackendText, AggregateArraysBlockCopyWhenBitIdentical) {
  // USC-style extension (paper §3.2 future work): arrays of structs whose
  // host layout equals their wire layout move with one memcpy, guarded by
  // a generated static_assert.
  auto Out = gen(R"(
    struct Pt { long x; long y; };
    struct R { Pt min; Pt max; };
    typedef sequence<R> Rs;
    interface I { void f(in Rs v); };)",
                 false, "iiop");
  std::string Body = functionBody(Out.Header, "I_f_encode_request");
  EXPECT_NE(Body.find("static_assert(sizeof(R) == 16"), std::string::npos)
      << Body;
  EXPECT_EQ(Body.find("for ("), std::string::npos)
      << "bit-identical struct arrays must not loop" << Body;
}

TEST(BackendText, MixedLayoutAggregatesStillLoop) {
  // A short + long struct has host padding the XDR wire does not mirror
  // (XDR widens the short): no block copy.
  auto Out = gen(R"(
    struct M { short s; long l; };
    typedef sequence<M> Ms;
    interface I { void f(in Ms v); };)",
                 false, "xdr");
  std::string Body = functionBody(Out.Header, "I_f_encode_request");
  EXPECT_EQ(Body.find("static_assert"), std::string::npos);
  EXPECT_NE(Body.find("for ("), std::string::npos) << Body;
}

TEST(BackendText, EveryBackendAcceptsEveryPresentation) {
  // The kit property (paper Figure 1): any presentation feeds any back
  // end.  Smoke-generate the kitchen-sink module across the matrix.
  const char *Idl = R"(
    struct S { long a; string b; };
    typedef sequence<S> Seq;
    interface I { void f(in Seq v, out S r); };
  )";
  for (const char *BE : {"xdr", "iiop", "mach", "fluke", "naive"}) {
    auto Out = gen(Idl, false, BE);
    EXPECT_FALSE(Out.Header.empty()) << BE;
    EXPECT_NE(Out.ServerSrc.find("I_dispatch"), std::string::npos) << BE;
  }
}

} // namespace
