//===- pres/Pres.h - Message presentation IR (PRES / PRES_C) ----*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PRES nodes (paper §2.2.3) define the *type conversion* between a MINT
/// message type and a CAST target-language type: how `char *` presents a
/// counted character array, how a null pointer presents a zero-length
/// optional, and so on.  PRES_C (paper §2.2.4) bundles, for every stub, the
/// CAST declaration, the request/reply MINT graphs, and the PRES trees
/// linking them -- everything a back end needs, with no trace of the IDL or
/// presentation rules that produced it.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_PRES_PRES_H
#define FLICK_PRES_PRES_H

#include "aoi/Aoi.h"
#include "cast/Cast.h"
#include "mint/Mint.h"
#include <memory>
#include <string>
#include <vector>

namespace flick {

/// How unmarshaled storage for a pointer-presented value may be obtained.
/// The presentation generator records what the programmer's contract
/// *allows*; the back end picks the cheapest legal strategy (paper §3.1,
/// "Parameter Management").
struct AllocSemantics {
  /// Callee may point the presented pointer into the marshal buffer itself
  /// (valid only when the server contract forbids keeping references after
  /// the work function returns).
  bool AllowBufferAlias = false;
  /// Callee may use stack/scratch storage with request lifetime.
  bool AllowStackAlloc = false;
  /// Fallback: heap allocation owned by the receiver.
  bool AllowHeap = true;
};

/// Base class of PRES nodes.  Each node links one MINT type with one CAST
/// type.  Owned by a PresC.
class PresNode {
public:
  enum class Kind {
    Void,
    Prim,      ///< atomic MINT value <-> C scalar
    Enum,      ///< MINT integer <-> C enum
    Struct,    ///< MINT struct <-> C struct, field by field
    FixedArray,///< fixed MINT array <-> C array member
    Counted,   ///< variable MINT array <-> counted struct {len, buf}
    String,    ///< MINT char array <-> NUL-terminated char *
    OptPtr,    ///< MINT array [0..1] <-> nullable pointer
    Union,     ///< MINT union <-> C {disc, union} struct
  };

  Kind kind() const { return K; }
  MintType *mint() const { return M; }
  CastType *ctype() const { return CT; }

  /// Patches the presented C type; used when tying self-referential
  /// presentation knots (the pointer type exists only after the element
  /// mapping completes).
  void setCType(CastType *T) { CT = T; }

  virtual ~PresNode() = default;

protected:
  PresNode(Kind K, MintType *M, CastType *CT) : K(K), M(M), CT(CT) {}

private:
  const Kind K;
  MintType *M;
  CastType *CT;
};

/// No data: void return values and empty union arms.
class PresVoid : public PresNode {
public:
  explicit PresVoid(MintType *M) : PresNode(Kind::Void, M, nullptr) {}
  static bool classof(const PresNode *P) { return P->kind() == Kind::Void; }
};

/// A direct atomic mapping (paper Figure 2, example 1): the MINT value and
/// the C scalar hold the same value; only representation may change.
class PresPrim : public PresNode {
public:
  PresPrim(MintType *M, CastType *CT) : PresNode(Kind::Prim, M, CT) {}
  static bool classof(const PresNode *P) { return P->kind() == Kind::Prim; }
};

/// MINT integer presented as a C enum type (marshals as its integer value).
class PresEnum : public PresNode {
public:
  PresEnum(MintType *M, CastType *CT) : PresNode(Kind::Enum, M, CT) {}
  static bool classof(const PresNode *P) { return P->kind() == Kind::Enum; }
};

/// One presented field of a PresStruct.
struct PresField {
  std::string CName;
  PresNode *Pres = nullptr;
};

/// MINT struct presented as a C struct; MINT members correspond
/// positionally to the listed C fields.
class PresStruct : public PresNode {
public:
  PresStruct(MintType *M, CastType *CT, std::vector<PresField> Fields)
      : PresNode(Kind::Struct, M, CT), Fields(std::move(Fields)) {}

  const std::vector<PresField> &fields() const { return Fields; }
  /// Mutable access so generators can build self-referential types in two
  /// phases (create empty, then fill).
  std::vector<PresField> &fieldsMut() { return Fields; }

  static bool classof(const PresNode *P) {
    return P->kind() == Kind::Struct;
  }

private:
  std::vector<PresField> Fields;
};

/// Fixed-length MINT array presented as a C array.
class PresFixedArray : public PresNode {
public:
  PresFixedArray(MintType *M, CastType *CT, PresNode *Elem, uint64_t Count)
      : PresNode(Kind::FixedArray, M, CT), Elem(Elem), Count(Count) {}

  PresNode *elem() const { return Elem; }
  uint64_t count() const { return Count; }

  static bool classof(const PresNode *P) {
    return P->kind() == Kind::FixedArray;
  }

private:
  PresNode *Elem;
  uint64_t Count;
};

/// Variable-length MINT array presented as a counted struct
/// `{ <LenField>; <BufField> }` -- the shape of both CORBA sequences
/// (`_length` / `_buffer`) and rpcgen variable arrays (`x_len` / `x_val`).
class PresCounted : public PresNode {
public:
  PresCounted(MintType *M, CastType *CT, PresNode *Elem,
              std::string LenField, std::string BufField,
              std::string MaxField, AllocSemantics Alloc)
      : PresNode(Kind::Counted, M, CT), Elem(Elem),
        LenField(std::move(LenField)), BufField(std::move(BufField)),
        MaxField(std::move(MaxField)), Alloc(Alloc) {}

  PresNode *elem() const { return Elem; }
  const std::string &lenField() const { return LenField; }
  const std::string &bufField() const { return BufField; }
  /// Empty when the presentation has no capacity member.
  const std::string &maxField() const { return MaxField; }
  const AllocSemantics &alloc() const { return Alloc; }

  static bool classof(const PresNode *P) {
    return P->kind() == Kind::Counted;
  }

private:
  PresNode *Elem;
  std::string LenField;
  std::string BufField;
  std::string MaxField;
  AllocSemantics Alloc;
};

/// Counted MINT char array presented as a NUL-terminated `char *`.
class PresString : public PresNode {
public:
  PresString(MintType *M, CastType *CT, AllocSemantics Alloc)
      : PresNode(Kind::String, M, CT), Alloc(Alloc) {}

  const AllocSemantics &alloc() const { return Alloc; }

  static bool classof(const PresNode *P) {
    return P->kind() == Kind::String;
  }

private:
  AllocSemantics Alloc;
};

/// MINT array of zero-or-one elements presented as a nullable pointer
/// (the paper's OPT_PTR node, Figure 2 example 2's cousin); the vehicle for
/// XDR linked lists.
class PresOptPtr : public PresNode {
public:
  PresOptPtr(MintType *M, CastType *CT, PresNode *Elem, AllocSemantics Alloc)
      : PresNode(Kind::OptPtr, M, CT), Elem(Elem), Alloc(Alloc) {}

  PresNode *elem() const { return Elem; }
  const AllocSemantics &alloc() const { return Alloc; }

  /// Ties self-referential presentation knots.
  void setElem(PresNode *P) { Elem = P; }

  static bool classof(const PresNode *P) {
    return P->kind() == Kind::OptPtr;
  }

private:
  PresNode *Elem;
  AllocSemantics Alloc;
};

/// One arm of a presented union.
struct PresUnionArm {
  std::vector<int64_t> CaseValues;
  bool IsDefault = false;
  std::string ArmField; ///< member name inside the C union
  PresNode *Pres = nullptr; ///< null for void arms
};

/// MINT discriminated union presented as a C struct containing the
/// discriminator and an anonymous-style union member.
class PresUnion : public PresNode {
public:
  PresUnion(MintType *M, CastType *CT, PresNode *DiscPres,
            std::string DiscField, std::string UnionField,
            std::vector<PresUnionArm> Arms)
      : PresNode(Kind::Union, M, CT), DiscPres(DiscPres),
        DiscField(std::move(DiscField)), UnionField(std::move(UnionField)),
        Arms(std::move(Arms)) {}

  PresNode *discPres() const { return DiscPres; }
  const std::string &discField() const { return DiscField; }
  const std::string &unionField() const { return UnionField; }
  const std::vector<PresUnionArm> &arms() const { return Arms; }

  static bool classof(const PresNode *P) { return P->kind() == Kind::Union; }

private:
  PresNode *DiscPres;
  std::string DiscField;
  std::string UnionField;
  std::vector<PresUnionArm> Arms;
};

//===----------------------------------------------------------------------===//
// PRES_C: the complete per-interface presentation description
//===----------------------------------------------------------------------===//

/// One presented stub parameter (or return value).
struct PresCParam {
  std::string Name;
  /// Non-empty when the presentation adds an explicit length parameter
  /// for this string (paper §2's `Mail_send(obj, msg, len)` example).
  std::string LenParamName;
  AoiParamDir Dir = AoiParamDir::In;
  /// Presentation of the value; null only for a void return.
  PresNode *Pres = nullptr;
  /// Type as it appears in the stub signature (may add pointer/const over
  /// Pres->ctype(): `in struct` passes `const S *`).
  CastType *SigType = nullptr;
  /// True when the signature passes a pointer to the presented value.
  bool ByPointer = false;
};

/// A presented exception: wire code plus the struct presentation of its
/// members.
struct PresCException {
  std::string Name;     ///< C struct name (e.g. `Bank_InsufficientFunds`)
  std::string IdlName;
  uint32_t Code = 0;
  PresNode *Members = nullptr; ///< PresStruct over the member fields
};

/// One presented operation: the programmer's-contract function plus the
/// network-contract messages.
struct PresCOperation {
  std::string IdlName;        ///< for name-keyed demux (IIOP)
  std::string CName;          ///< client stub function name
  std::string ServerImplName; ///< work function the dispatcher calls
  uint32_t RequestCode = 0;   ///< numeric discriminator (proc number)
  bool Oneway = false;

  PresCParam Return;
  std::vector<PresCParam> Params;

  /// MINT struct of the request body: in/inout params in order.
  MintStruct *RequestMint = nullptr;
  /// MINT struct of the normal reply body: return value then out/inout
  /// params.
  MintStruct *ReplyMint = nullptr;
  /// Exceptions this operation may raise (indices into PresC::Exceptions).
  std::vector<uint32_t> RaisesIdx;
};

/// One presented interface.
struct PresCInterface {
  std::string Name;       ///< C identifier prefix (`Mail`)
  std::string ScopedName;
  uint32_t ProgramNumber = 0;
  uint32_t VersionNumber = 0;
  std::vector<PresCOperation> Ops;
};

/// The complete presentation of an IDL module in C: owns the MINT graphs,
/// the CAST declarations, and the PRES trees connecting them.
class PresC {
public:
  /// Creates and owns a PRES node.
  template <typename T, typename... Args> T *make(Args &&...As) {
    auto Owned = std::make_unique<T>(std::forward<Args>(As)...);
    T *Raw = Owned.get();
    Nodes.push_back(std::move(Owned));
    return Raw;
  }

  MintModule Mint;
  CastContext Cast;

  /// Presentation style tag ("corba" / "rpcgen" / "fluke" / "mig").
  std::string Style;
  /// Prefix applied to every global identifier (supports linking two
  /// presentations of one interface into a single test binary).
  std::string NamePrefix;

  /// File-scope C declarations of the presented data types, in dependency
  /// order (typedefs, structs, enums, exception structs, constants).
  std::vector<CastDecl *> TypeDecls;

  std::vector<PresCException> Exceptions;
  std::vector<PresCInterface> Interfaces;

  /// Renders a stable text dump (tests, `flickc --emit-presc`).
  std::string dump() const;

  /// Total PRES nodes owned (--stats IR-size counter).
  size_t numNodes() const { return Nodes.size(); }

private:
  std::vector<std::unique_ptr<PresNode>> Nodes;
};

} // namespace flick

#endif // FLICK_PRES_PRES_H
