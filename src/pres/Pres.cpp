//===- pres/Pres.cpp - PRES_C dumping -------------------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pres/Pres.h"
#include "support/CodeWriter.h"
#include <set>

using namespace flick;

namespace {

class PresDumper {
public:
  explicit PresDumper(CodeWriter &W) : W(W) {}

  void dump(const PresNode *P) {
    if (!P) {
      W.line("<none>");
      return;
    }
    if (!Visiting.insert(P).second) {
      W.line("<recursive ref>");
      return;
    }
    dumpNew(P);
    Visiting.erase(P);
  }

private:
  std::string ctypeOf(const PresNode *P) {
    return P->ctype() ? printCastType(P->ctype(), "") : "void";
  }

  void dumpNew(const PresNode *P) {
    switch (P->kind()) {
    case PresNode::Kind::Void:
      W.line("void");
      return;
    case PresNode::Kind::Prim:
      W.line("prim -> " + ctypeOf(P));
      return;
    case PresNode::Kind::Enum:
      W.line("enum -> " + ctypeOf(P));
      return;
    case PresNode::Kind::Struct: {
      const auto *S = cast<PresStruct>(P);
      W.open("struct -> " + ctypeOf(P));
      for (const PresField &F : S->fields()) {
        W.print("." + F.CName + ": ");
        dump(F.Pres);
      }
      W.close();
      return;
    }
    case PresNode::Kind::FixedArray: {
      const auto *A = cast<PresFixedArray>(P);
      W.open("fixed_array[" + std::to_string(A->count()) + "] -> " +
             ctypeOf(P));
      dump(A->elem());
      W.close();
      return;
    }
    case PresNode::Kind::Counted: {
      const auto *C = cast<PresCounted>(P);
      W.open("counted{len=." + C->lenField() + ", buf=." + C->bufField() +
             "} -> " + ctypeOf(P));
      dump(C->elem());
      W.close();
      return;
    }
    case PresNode::Kind::String:
      W.line("string -> " + ctypeOf(P));
      return;
    case PresNode::Kind::OptPtr: {
      const auto *O = cast<PresOptPtr>(P);
      W.open("opt_ptr -> " + ctypeOf(P));
      dump(O->elem());
      W.close();
      return;
    }
    case PresNode::Kind::Union: {
      const auto *U = cast<PresUnion>(P);
      W.open("union{disc=." + U->discField() + ", u=." + U->unionField() +
             "} -> " + ctypeOf(P));
      for (const PresUnionArm &A : U->arms()) {
        std::string Head = A.IsDefault ? "default" : "case";
        for (int64_t V : A.CaseValues)
          Head += " " + std::to_string(V);
        if (!A.Pres) {
          W.line(Head + ": void");
          continue;
        }
        W.print(Head + " ." + A.ArmField + ": ");
        dump(A.Pres);
      }
      W.close();
      return;
    }
    }
  }

  CodeWriter &W;
  std::set<const PresNode *> Visiting;
};

const char *dirTag(AoiParamDir D) {
  switch (D) {
  case AoiParamDir::In:
    return "in";
  case AoiParamDir::Out:
    return "out";
  case AoiParamDir::InOut:
    return "inout";
  }
  return "?";
}

} // namespace

std::string PresC::dump() const {
  CodeWriter W;
  PresDumper D(W);
  W.line("presentation style: " + Style);
  for (const PresCException &E : Exceptions) {
    W.open("exception " + E.Name + " code " + std::to_string(E.Code));
    D.dump(E.Members);
    W.close();
  }
  for (const PresCInterface &If : Interfaces) {
    W.open("interface " + If.Name);
    for (const PresCOperation &Op : If.Ops) {
      std::string Head = "op " + Op.CName + " (idl '" + Op.IdlName +
                         "', code " + std::to_string(Op.RequestCode) + ")";
      if (Op.Oneway)
        Head += " oneway";
      W.open(Head);
      W.print("return: ");
      D.dump(Op.Return.Pres);
      for (const PresCParam &P : Op.Params) {
        W.print(std::string(dirTag(P.Dir)) + " " + P.Name + ": ");
        D.dump(P.Pres);
      }
      W.close();
    }
    W.close();
  }
  return W.take();
}
