//===- cast/Cast.h - C Abstract Syntax Tree ---------------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CAST is Flick's explicit representation of the C code it generates
/// (paper §2.2.2): types, declarations, statements, and expressions.  Unlike
/// traditional IDL compilers that print strings as they go, Flick builds
/// CAST so that PRES nodes can associate target-language constructs with
/// MINT message types, and so back ends can transform generated code before
/// printing.  The printer lives in Print.cpp; convenience constructors in
/// Builder.h.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_CAST_CAST_H
#define FLICK_CAST_CAST_H

#include "support/Casting.h"
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace flick {

class CodeWriter;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Base class of C type nodes.  Owned by a CastContext.
class CastType {
public:
  enum class Kind { Prim, Named, Pointer, Array };

  Kind kind() const { return K; }

  virtual ~CastType() = default;

protected:
  explicit CastType(Kind K) : K(K) {}

private:
  const Kind K;
};

/// A type spelled with a single token sequence: `void`, `int32_t`, `double`,
/// or any typedef name.
class CastPrim : public CastType {
public:
  explicit CastPrim(std::string Name)
      : CastType(Kind::Prim), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  static bool classof(const CastType *T) { return T->kind() == Kind::Prim; }

private:
  std::string Name;
};

/// Aggregate tag kinds for CastNamed.
enum class CastTag { Struct, Union, Enum };

/// A tagged type reference: `struct Foo`, `union Bar`, `enum Baz`.
class CastNamed : public CastType {
public:
  CastNamed(CastTag Tag, std::string Name)
      : CastType(Kind::Named), Tag(Tag), Name(std::move(Name)) {}

  CastTag tag() const { return Tag; }
  const std::string &name() const { return Name; }

  static bool classof(const CastType *T) { return T->kind() == Kind::Named; }

private:
  CastTag Tag;
  std::string Name;
};

/// A pointer type; `Const` qualifies the pointee (`const T *`).
class CastPointer : public CastType {
public:
  CastPointer(CastType *Pointee, bool ConstPointee)
      : CastType(Kind::Pointer), Pointee(Pointee), ConstPointee(ConstPointee) {
  }

  CastType *pointee() const { return Pointee; }
  bool isConstPointee() const { return ConstPointee; }

  static bool classof(const CastType *T) {
    return T->kind() == Kind::Pointer;
  }

private:
  CastType *Pointee;
  bool ConstPointee;
};

/// An array type; Size 0 prints as an unsized `[]`.
class CastArray : public CastType {
public:
  CastArray(CastType *Elem, uint64_t Size)
      : CastType(Kind::Array), Elem(Elem), Size(Size) {}

  CastType *elem() const { return Elem; }
  uint64_t size() const { return Size; }

  static bool classof(const CastType *T) { return T->kind() == Kind::Array; }

private:
  CastType *Elem;
  uint64_t Size;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of C expression nodes.
class CastExpr {
public:
  enum class Kind {
    Ident,
    IntLit,
    StrLit,
    CharLit,
    Call,
    Member,
    Index,
    Unary,
    Binary,
    Cast,
    SizeofType,
    Ternary,
    Raw,
  };

  Kind kind() const { return K; }

  virtual ~CastExpr() = default;

protected:
  explicit CastExpr(Kind K) : K(K) {}

private:
  const Kind K;
};

/// A bare identifier.
class CEIdent : public CastExpr {
public:
  explicit CEIdent(std::string Name)
      : CastExpr(Kind::Ident), Name(std::move(Name)) {}
  const std::string &name() const { return Name; }
  static bool classof(const CastExpr *E) { return E->kind() == Kind::Ident; }

private:
  std::string Name;
};

/// An integer literal; prints with a `u`/`ull` suffix as needed.
class CEIntLit : public CastExpr {
public:
  CEIntLit(uint64_t Value, bool IsUnsigned, bool IsLongLong = false)
      : CastExpr(Kind::IntLit), Value(Value), IsUnsigned(IsUnsigned),
        IsLongLong(IsLongLong) {}
  uint64_t value() const { return Value; }
  bool isUnsigned() const { return IsUnsigned; }
  bool isLongLong() const { return IsLongLong; }
  static bool classof(const CastExpr *E) {
    return E->kind() == Kind::IntLit;
  }

private:
  uint64_t Value;
  bool IsUnsigned;
  bool IsLongLong;
};

/// A string literal (unescaped content stored).
class CEStrLit : public CastExpr {
public:
  explicit CEStrLit(std::string Value)
      : CastExpr(Kind::StrLit), Value(std::move(Value)) {}
  const std::string &value() const { return Value; }
  static bool classof(const CastExpr *E) {
    return E->kind() == Kind::StrLit;
  }

private:
  std::string Value;
};

/// A character literal.
class CECharLit : public CastExpr {
public:
  explicit CECharLit(char Value) : CastExpr(Kind::CharLit), Value(Value) {}
  char value() const { return Value; }
  static bool classof(const CastExpr *E) {
    return E->kind() == Kind::CharLit;
  }

private:
  char Value;
};

/// A function call `Callee(Args...)`.
class CECall : public CastExpr {
public:
  CECall(CastExpr *Callee, std::vector<CastExpr *> Args)
      : CastExpr(Kind::Call), Callee(Callee), Args(std::move(Args)) {}
  CastExpr *callee() const { return Callee; }
  const std::vector<CastExpr *> &args() const { return Args; }
  static bool classof(const CastExpr *E) { return E->kind() == Kind::Call; }

private:
  CastExpr *Callee;
  std::vector<CastExpr *> Args;
};

/// Member access `Base.Name` or `Base->Name`.
class CEMember : public CastExpr {
public:
  CEMember(CastExpr *Base, std::string Name, bool Arrow)
      : CastExpr(Kind::Member), Base(Base), Name(std::move(Name)),
        Arrow(Arrow) {}
  CastExpr *base() const { return Base; }
  const std::string &name() const { return Name; }
  bool isArrow() const { return Arrow; }
  static bool classof(const CastExpr *E) {
    return E->kind() == Kind::Member;
  }

private:
  CastExpr *Base;
  std::string Name;
  bool Arrow;
};

/// Array subscript `Base[Idx]`.
class CEIndex : public CastExpr {
public:
  CEIndex(CastExpr *Base, CastExpr *Idx)
      : CastExpr(Kind::Index), Base(Base), Idx(Idx) {}
  CastExpr *base() const { return Base; }
  CastExpr *index() const { return Idx; }
  static bool classof(const CastExpr *E) { return E->kind() == Kind::Index; }

private:
  CastExpr *Base;
  CastExpr *Idx;
};

/// A prefix unary operator (`*`, `&`, `-`, `!`, `~`, `++`, `--`).
class CEUnary : public CastExpr {
public:
  CEUnary(std::string Op, CastExpr *Operand)
      : CastExpr(Kind::Unary), Op(std::move(Op)), Operand(Operand) {}
  const std::string &op() const { return Op; }
  CastExpr *operand() const { return Operand; }
  static bool classof(const CastExpr *E) { return E->kind() == Kind::Unary; }

private:
  std::string Op;
  CastExpr *Operand;
};

/// An infix binary operator, including assignment operators.
class CEBinary : public CastExpr {
public:
  CEBinary(std::string Op, CastExpr *LHS, CastExpr *RHS)
      : CastExpr(Kind::Binary), Op(std::move(Op)), LHS(LHS), RHS(RHS) {}
  const std::string &op() const { return Op; }
  CastExpr *lhs() const { return LHS; }
  CastExpr *rhs() const { return RHS; }
  static bool classof(const CastExpr *E) {
    return E->kind() == Kind::Binary;
  }

private:
  std::string Op;
  CastExpr *LHS;
  CastExpr *RHS;
};

/// A C-style cast `(Type)Operand`.
class CECast : public CastExpr {
public:
  CECast(CastType *Type, CastExpr *Operand)
      : CastExpr(Kind::Cast), Type(Type), Operand(Operand) {}
  CastType *type() const { return Type; }
  CastExpr *operand() const { return Operand; }
  static bool classof(const CastExpr *E) { return E->kind() == Kind::Cast; }

private:
  CastType *Type;
  CastExpr *Operand;
};

/// `sizeof(Type)`.
class CESizeofType : public CastExpr {
public:
  explicit CESizeofType(CastType *Type)
      : CastExpr(Kind::SizeofType), Type(Type) {}
  CastType *type() const { return Type; }
  static bool classof(const CastExpr *E) {
    return E->kind() == Kind::SizeofType;
  }

private:
  CastType *Type;
};

/// `Cond ? Then : Else`.
class CETernary : public CastExpr {
public:
  CETernary(CastExpr *Cond, CastExpr *Then, CastExpr *Else)
      : CastExpr(Kind::Ternary), Cond(Cond), Then(Then), Else(Else) {}
  CastExpr *cond() const { return Cond; }
  CastExpr *thenExpr() const { return Then; }
  CastExpr *elseExpr() const { return Else; }
  static bool classof(const CastExpr *E) {
    return E->kind() == Kind::Ternary;
  }

private:
  CastExpr *Cond;
  CastExpr *Then;
  CastExpr *Else;
};

/// Verbatim expression text; printed parenthesized.  Escape hatch for
/// constructs CAST does not model.
class CERaw : public CastExpr {
public:
  explicit CERaw(std::string Text)
      : CastExpr(Kind::Raw), Text(std::move(Text)) {}
  const std::string &text() const { return Text; }
  static bool classof(const CastExpr *E) { return E->kind() == Kind::Raw; }

private:
  std::string Text;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of C statement nodes.
class CastStmt {
public:
  enum class Kind {
    Expr,
    VarDecl,
    Block,
    If,
    While,
    For,
    Switch,
    Return,
    Break,
    Continue,
    Comment,
    Raw,
  };

  Kind kind() const { return K; }

  virtual ~CastStmt() = default;

protected:
  explicit CastStmt(Kind K) : K(K) {}

private:
  const Kind K;
};

/// An expression statement `E;`.
class CSExpr : public CastStmt {
public:
  explicit CSExpr(CastExpr *E) : CastStmt(Kind::Expr), E(E) {}
  CastExpr *expr() const { return E; }
  static bool classof(const CastStmt *S) { return S->kind() == Kind::Expr; }

private:
  CastExpr *E;
};

/// A local variable declaration with optional initializer.
class CSVarDecl : public CastStmt {
public:
  CSVarDecl(CastType *Type, std::string Name, CastExpr *Init)
      : CastStmt(Kind::VarDecl), Type(Type), Name(std::move(Name)),
        Init(Init) {}
  CastType *type() const { return Type; }
  const std::string &name() const { return Name; }
  CastExpr *init() const { return Init; }
  static bool classof(const CastStmt *S) {
    return S->kind() == Kind::VarDecl;
  }

private:
  CastType *Type;
  std::string Name;
  CastExpr *Init;
};

/// A `{ ... }` block.
class CSBlock : public CastStmt {
public:
  explicit CSBlock(std::vector<CastStmt *> Stmts = {})
      : CastStmt(Kind::Block), Stmts(std::move(Stmts)) {}
  const std::vector<CastStmt *> &stmts() const { return Stmts; }
  void add(CastStmt *S) { Stmts.push_back(S); }
  bool empty() const { return Stmts.empty(); }
  static bool classof(const CastStmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<CastStmt *> Stmts;
};

/// `if (Cond) Then [else Else]`.
class CSIf : public CastStmt {
public:
  CSIf(CastExpr *Cond, CastStmt *Then, CastStmt *Else)
      : CastStmt(Kind::If), Cond(Cond), Then(Then), Else(Else) {}
  CastExpr *cond() const { return Cond; }
  CastStmt *thenStmt() const { return Then; }
  CastStmt *elseStmt() const { return Else; }
  static bool classof(const CastStmt *S) { return S->kind() == Kind::If; }

private:
  CastExpr *Cond;
  CastStmt *Then;
  CastStmt *Else;
};

/// `while (Cond) Body`.
class CSWhile : public CastStmt {
public:
  CSWhile(CastExpr *Cond, CastStmt *Body)
      : CastStmt(Kind::While), Cond(Cond), Body(Body) {}
  CastExpr *cond() const { return Cond; }
  CastStmt *body() const { return Body; }
  static bool classof(const CastStmt *S) { return S->kind() == Kind::While; }

private:
  CastExpr *Cond;
  CastStmt *Body;
};

/// `for (Init; Cond; Step) Body`; Init is a var decl or expression
/// statement (or null).
class CSFor : public CastStmt {
public:
  CSFor(CastStmt *Init, CastExpr *Cond, CastExpr *Step, CastStmt *Body)
      : CastStmt(Kind::For), Init(Init), Cond(Cond), Step(Step), Body(Body) {
  }
  CastStmt *init() const { return Init; }
  CastExpr *cond() const { return Cond; }
  CastExpr *step() const { return Step; }
  CastStmt *body() const { return Body; }
  static bool classof(const CastStmt *S) { return S->kind() == Kind::For; }

private:
  CastStmt *Init;
  CastExpr *Cond;
  CastExpr *Step;
  CastStmt *Body;
};

/// One arm of a switch; empty Values means `default:`.  Each arm's
/// statements are followed by `break;` unless FallsThrough.
struct CastSwitchCase {
  std::vector<CastExpr *> Values;
  std::vector<CastStmt *> Stmts;
  bool FallsThrough = false;
};

/// `switch (Cond) { case...: ... }` -- the shape of Flick's word-at-a-time
/// server demultiplexers (paper §3.3).
class CSSwitch : public CastStmt {
public:
  CSSwitch(CastExpr *Cond, std::vector<CastSwitchCase> Cases)
      : CastStmt(Kind::Switch), Cond(Cond), Cases(std::move(Cases)) {}
  CastExpr *cond() const { return Cond; }
  const std::vector<CastSwitchCase> &cases() const { return Cases; }
  std::vector<CastSwitchCase> &cases() { return Cases; }
  static bool classof(const CastStmt *S) {
    return S->kind() == Kind::Switch;
  }

private:
  CastExpr *Cond;
  std::vector<CastSwitchCase> Cases;
};

/// `return [E];`.
class CSReturn : public CastStmt {
public:
  explicit CSReturn(CastExpr *E) : CastStmt(Kind::Return), E(E) {}
  CastExpr *expr() const { return E; }
  static bool classof(const CastStmt *S) {
    return S->kind() == Kind::Return;
  }

private:
  CastExpr *E;
};

/// `break;`
class CSBreak : public CastStmt {
public:
  CSBreak() : CastStmt(Kind::Break) {}
  static bool classof(const CastStmt *S) { return S->kind() == Kind::Break; }
};

/// `continue;`
class CSContinue : public CastStmt {
public:
  CSContinue() : CastStmt(Kind::Continue) {}
  static bool classof(const CastStmt *S) {
    return S->kind() == Kind::Continue;
  }
};

/// A `/* ... */` comment line in the output.
class CSComment : public CastStmt {
public:
  explicit CSComment(std::string Text)
      : CastStmt(Kind::Comment), Text(std::move(Text)) {}
  const std::string &text() const { return Text; }
  static bool classof(const CastStmt *S) {
    return S->kind() == Kind::Comment;
  }

private:
  std::string Text;
};

/// A verbatim statement line.
class CSRaw : public CastStmt {
public:
  explicit CSRaw(std::string Text)
      : CastStmt(Kind::Raw), Text(std::move(Text)) {}
  const std::string &text() const { return Text; }
  static bool classof(const CastStmt *S) { return S->kind() == Kind::Raw; }

private:
  std::string Text;
};

//===----------------------------------------------------------------------===//
// Declarations and files
//===----------------------------------------------------------------------===//

/// A named, typed slot (function parameter or aggregate field).
struct CastParam {
  CastType *Type = nullptr;
  std::string Name;
};

/// Base class of file-scope declarations.
class CastDecl {
public:
  enum class Kind {
    Var,
    Func,
    AggregateDef,
    EnumDef,
    Typedef,
    Comment,
    Raw,
  };

  Kind kind() const { return K; }

  virtual ~CastDecl() = default;

protected:
  explicit CastDecl(Kind K) : K(K) {}

private:
  const Kind K;
};

/// A file-scope variable.
class CDVar : public CastDecl {
public:
  CDVar(CastType *Type, std::string Name, CastExpr *Init, bool Static)
      : CastDecl(Kind::Var), Type(Type), Name(std::move(Name)), Init(Init),
        Static(Static) {}
  CastType *type() const { return Type; }
  const std::string &name() const { return Name; }
  CastExpr *init() const { return Init; }
  bool isStatic() const { return Static; }
  static bool classof(const CastDecl *D) { return D->kind() == Kind::Var; }

private:
  CastType *Type;
  std::string Name;
  CastExpr *Init;
  bool Static;
};

/// A function definition (Body set) or prototype (Body null).
class CDFunc : public CastDecl {
public:
  CDFunc(CastType *Ret, std::string Name, std::vector<CastParam> Params,
         CSBlock *Body, bool Static, bool Inline)
      : CastDecl(Kind::Func), Ret(Ret), Name(std::move(Name)),
        Params(std::move(Params)), Body(Body), Static(Static),
        Inline(Inline) {}
  CastType *ret() const { return Ret; }
  const std::string &name() const { return Name; }
  const std::vector<CastParam> &params() const { return Params; }
  CSBlock *body() const { return Body; }
  void setBody(CSBlock *B) { Body = B; }
  bool isStatic() const { return Static; }
  bool isInline() const { return Inline; }
  static bool classof(const CastDecl *D) { return D->kind() == Kind::Func; }

private:
  CastType *Ret;
  std::string Name;
  std::vector<CastParam> Params;
  CSBlock *Body;
  bool Static;
  bool Inline;
};

/// A struct or union definition.
class CDAggregateDef : public CastDecl {
public:
  CDAggregateDef(CastTag Tag, std::string Name, std::vector<CastParam> Fields)
      : CastDecl(Kind::AggregateDef), Tag(Tag), Name(std::move(Name)),
        Fields(std::move(Fields)) {}
  CastTag tag() const { return Tag; }
  const std::string &name() const { return Name; }
  const std::vector<CastParam> &fields() const { return Fields; }
  static bool classof(const CastDecl *D) {
    return D->kind() == Kind::AggregateDef;
  }

private:
  CastTag Tag;
  std::string Name;
  std::vector<CastParam> Fields;
};

/// One enumerator of a CDEnumDef.
struct CastEnumerator {
  std::string Name;
  int64_t Value = 0;
};

/// An enum definition.
class CDEnumDef : public CastDecl {
public:
  CDEnumDef(std::string Name, std::vector<CastEnumerator> Enumerators)
      : CastDecl(Kind::EnumDef), Name(std::move(Name)),
        Enumerators(std::move(Enumerators)) {}
  const std::string &name() const { return Name; }
  const std::vector<CastEnumerator> &enumerators() const {
    return Enumerators;
  }
  static bool classof(const CastDecl *D) {
    return D->kind() == Kind::EnumDef;
  }

private:
  std::string Name;
  std::vector<CastEnumerator> Enumerators;
};

/// `typedef <Type> <Name>;`
class CDTypedef : public CastDecl {
public:
  CDTypedef(CastType *Type, std::string Name)
      : CastDecl(Kind::Typedef), Type(Type), Name(std::move(Name)) {}
  CastType *type() const { return Type; }
  const std::string &name() const { return Name; }
  static bool classof(const CastDecl *D) {
    return D->kind() == Kind::Typedef;
  }

private:
  CastType *Type;
  std::string Name;
};

/// A file-scope comment.
class CDComment : public CastDecl {
public:
  explicit CDComment(std::string Text)
      : CastDecl(Kind::Comment), Text(std::move(Text)) {}
  const std::string &text() const { return Text; }
  static bool classof(const CastDecl *D) {
    return D->kind() == Kind::Comment;
  }

private:
  std::string Text;
};

/// A verbatim file-scope line (preprocessor directives and such).
class CDRaw : public CastDecl {
public:
  explicit CDRaw(std::string Text)
      : CastDecl(Kind::Raw), Text(std::move(Text)) {}
  const std::string &text() const { return Text; }
  static bool classof(const CastDecl *D) { return D->kind() == Kind::Raw; }

private:
  std::string Text;
};

/// One generated translation unit or header.
class CastFile {
public:
  /// Non-empty for headers; printed as an include guard.
  std::string HeaderGuard;
  std::vector<std::string> Includes;
  std::vector<CastDecl *> Decls;

  void add(CastDecl *D) { Decls.push_back(D); }
};

/// Owns every CAST node of a compilation.  CastType/CastExpr/CastStmt/
/// CastDecl do not share a base class, so nodes are stored behind a
/// type-erasing holder.
class CastContext {
public:
  template <typename T, typename... Args> T *make(Args &&...As) {
    auto Holder = std::make_unique<Node<T>>(std::forward<Args>(As)...);
    T *Raw = &Holder->Value;
    Nodes.push_back(std::move(Holder));
    return Raw;
  }

  /// Total CAST nodes owned (--stats IR-size counter).
  size_t numNodes() const { return Nodes.size(); }

private:
  struct NodeBase {
    virtual ~NodeBase() = default;
  };
  template <typename T> struct Node final : NodeBase {
    template <typename... Args>
    explicit Node(Args &&...As) : Value(std::forward<Args>(As)...) {}
    T Value;
  };

  std::vector<std::unique_ptr<NodeBase>> Nodes;
};

//===----------------------------------------------------------------------===//
// Printing (implemented in Print.cpp)
//===----------------------------------------------------------------------===//

/// Renders \p Type declaring \p Name using C declarator syntax
/// (`char *argv[4]`); empty Name prints an abstract declarator.
std::string printCastType(const CastType *Type, const std::string &Name);

/// Renders one expression with minimal parentheses.
std::string printCastExpr(const CastExpr *E);

/// Prints one statement (with trailing newline) into \p W.
void printCastStmt(const CastStmt *S, CodeWriter &W);

/// Prints one declaration into \p W.
void printCastDecl(const CastDecl *D, CodeWriter &W);

/// Renders a whole file, including the include guard when present.
std::string printCastFile(const CastFile &File);

} // namespace flick

#endif // FLICK_CAST_CAST_H
