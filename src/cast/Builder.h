//===- cast/Builder.h - Terse CAST construction helpers ---------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CastBuilder wraps a CastContext with short factory methods so the back
/// ends can assemble marshal code without drowning in `Ctx.make<...>` noise.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_CAST_BUILDER_H
#define FLICK_CAST_BUILDER_H

#include "cast/Cast.h"

namespace flick {

/// Factory facade over a CastContext.  All returned nodes are owned by the
/// underlying context.
class CastBuilder {
public:
  explicit CastBuilder(CastContext &Ctx) : Ctx(Ctx) {}

  CastContext &context() { return Ctx; }

  // --- Types ---
  CastType *prim(const std::string &Name) { return Ctx.make<CastPrim>(Name); }
  CastType *voidTy() { return prim("void"); }
  CastType *structTy(const std::string &Name) {
    return Ctx.make<CastNamed>(CastTag::Struct, Name);
  }
  CastType *unionTy(const std::string &Name) {
    return Ctx.make<CastNamed>(CastTag::Union, Name);
  }
  CastType *enumTy(const std::string &Name) {
    return Ctx.make<CastNamed>(CastTag::Enum, Name);
  }
  CastType *ptr(CastType *T) { return Ctx.make<CastPointer>(T, false); }
  CastType *constPtr(CastType *T) { return Ctx.make<CastPointer>(T, true); }
  CastType *arr(CastType *T, uint64_t N) { return Ctx.make<CastArray>(T, N); }

  // --- Expressions ---
  CastExpr *id(const std::string &Name) { return Ctx.make<CEIdent>(Name); }
  CastExpr *num(int64_t V) {
    return Ctx.make<CEIntLit>(static_cast<uint64_t>(V), false);
  }
  CastExpr *unum(uint64_t V) { return Ctx.make<CEIntLit>(V, true); }
  CastExpr *str(const std::string &S) { return Ctx.make<CEStrLit>(S); }
  CastExpr *chr(char C) { return Ctx.make<CECharLit>(C); }
  CastExpr *call(const std::string &Fn, std::vector<CastExpr *> Args) {
    return Ctx.make<CECall>(id(Fn), std::move(Args));
  }
  CastExpr *callE(CastExpr *Fn, std::vector<CastExpr *> Args) {
    return Ctx.make<CECall>(Fn, std::move(Args));
  }
  CastExpr *mem(CastExpr *Base, const std::string &Field) {
    return Ctx.make<CEMember>(Base, Field, /*Arrow=*/false);
  }
  CastExpr *arrow(CastExpr *Base, const std::string &Field) {
    return Ctx.make<CEMember>(Base, Field, /*Arrow=*/true);
  }
  CastExpr *idx(CastExpr *Base, CastExpr *I) {
    return Ctx.make<CEIndex>(Base, I);
  }
  CastExpr *un(const std::string &Op, CastExpr *E) {
    return Ctx.make<CEUnary>(Op, E);
  }
  CastExpr *deref(CastExpr *E) { return un("*", E); }
  CastExpr *addr(CastExpr *E) { return un("&", E); }
  CastExpr *nt(CastExpr *E) { return un("!", E); }
  CastExpr *bin(const std::string &Op, CastExpr *L, CastExpr *R) {
    return Ctx.make<CEBinary>(Op, L, R);
  }
  CastExpr *assign(CastExpr *L, CastExpr *R) { return bin("=", L, R); }
  CastExpr *add(CastExpr *L, CastExpr *R) { return bin("+", L, R); }
  CastExpr *sub(CastExpr *L, CastExpr *R) { return bin("-", L, R); }
  CastExpr *mul(CastExpr *L, CastExpr *R) { return bin("*", L, R); }
  CastExpr *eq(CastExpr *L, CastExpr *R) { return bin("==", L, R); }
  CastExpr *ne(CastExpr *L, CastExpr *R) { return bin("!=", L, R); }
  CastExpr *lt(CastExpr *L, CastExpr *R) { return bin("<", L, R); }
  CastExpr *castTo(CastType *T, CastExpr *E) {
    return Ctx.make<CECast>(T, E);
  }
  CastExpr *sizeofTy(CastType *T) { return Ctx.make<CESizeofType>(T); }
  CastExpr *ternary(CastExpr *C, CastExpr *T, CastExpr *E) {
    return Ctx.make<CETernary>(C, T, E);
  }
  CastExpr *rawE(const std::string &Text) { return Ctx.make<CERaw>(Text); }

  // --- Statements ---
  CastStmt *exprStmt(CastExpr *E) { return Ctx.make<CSExpr>(E); }
  CastStmt *varDecl(CastType *T, const std::string &Name,
                    CastExpr *Init = nullptr) {
    return Ctx.make<CSVarDecl>(T, Name, Init);
  }
  CSBlock *block(std::vector<CastStmt *> Stmts = {}) {
    return Ctx.make<CSBlock>(std::move(Stmts));
  }
  CastStmt *ifStmt(CastExpr *Cond, CastStmt *Then, CastStmt *Else = nullptr) {
    return Ctx.make<CSIf>(Cond, Then, Else);
  }
  CastStmt *whileStmt(CastExpr *Cond, CastStmt *Body) {
    return Ctx.make<CSWhile>(Cond, Body);
  }
  CastStmt *forStmt(CastStmt *Init, CastExpr *Cond, CastExpr *Step,
                    CastStmt *Body) {
    return Ctx.make<CSFor>(Init, Cond, Step, Body);
  }
  CSSwitch *switchStmt(CastExpr *Cond, std::vector<CastSwitchCase> Cases) {
    return Ctx.make<CSSwitch>(Cond, std::move(Cases));
  }
  CastStmt *ret(CastExpr *E = nullptr) { return Ctx.make<CSReturn>(E); }
  CastStmt *brk() { return Ctx.make<CSBreak>(); }
  CastStmt *comment(const std::string &Text) {
    return Ctx.make<CSComment>(Text);
  }
  CastStmt *rawStmt(const std::string &Text) {
    return Ctx.make<CSRaw>(Text);
  }

  // --- Declarations ---
  CDFunc *func(CastType *Ret, const std::string &Name,
               std::vector<CastParam> Params, CSBlock *Body,
               bool Static = false, bool Inline = false) {
    return Ctx.make<CDFunc>(Ret, Name, std::move(Params), Body, Static,
                            Inline);
  }
  CDAggregateDef *structDef(const std::string &Name,
                            std::vector<CastParam> Fields) {
    return Ctx.make<CDAggregateDef>(CastTag::Struct, Name,
                                    std::move(Fields));
  }
  CDAggregateDef *unionDef(const std::string &Name,
                           std::vector<CastParam> Fields) {
    return Ctx.make<CDAggregateDef>(CastTag::Union, Name, std::move(Fields));
  }
  CDEnumDef *enumDef(const std::string &Name,
                     std::vector<CastEnumerator> Enumerators) {
    return Ctx.make<CDEnumDef>(Name, std::move(Enumerators));
  }
  CDTypedef *typedefDecl(CastType *T, const std::string &Name) {
    return Ctx.make<CDTypedef>(T, Name);
  }
  CastDecl *declComment(const std::string &Text) {
    return Ctx.make<CDComment>(Text);
  }
  CastDecl *rawDecl(const std::string &Text) { return Ctx.make<CDRaw>(Text); }

private:
  CastContext &Ctx;
};

} // namespace flick

#endif // FLICK_CAST_BUILDER_H
