//===- cast/Print.cpp - CAST pretty printer -------------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders CAST into compilable C.  Types print with real C declarator
/// syntax (pointers bind inward, arrays outward); expressions print with a
/// precedence table so parentheses appear only where required or where they
/// aid reading (mixed && / || is always parenthesized).
///
//===----------------------------------------------------------------------===//

#include "cast/Cast.h"
#include "support/CodeWriter.h"
#include "support/StringExtras.h"
#include <cassert>

using namespace flick;

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

namespace {

/// Returns the base (leftmost) type specifier and builds the declarator
/// around \p Name: `T` for prim, `*Name` for pointers, `Name[N]` for arrays.
void buildDeclarator(const CastType *T, std::string &Spec, std::string &Decl) {
  if (!T) { Spec = "__NULLTYPE__"; return; }
  switch (T->kind()) {
  case CastType::Kind::Prim:
    Spec = cast<CastPrim>(T)->name();
    return;
  case CastType::Kind::Named: {
    const auto *N = cast<CastNamed>(T);
    const char *Tag = N->tag() == CastTag::Struct  ? "struct "
                      : N->tag() == CastTag::Union ? "union "
                                                   : "enum ";
    Spec = Tag + N->name();
    return;
  }
  case CastType::Kind::Pointer: {
    const auto *P = cast<CastPointer>(T);
    std::string Inner = "*";
    if (P->isConstPointee())
      Inner = "*"; // constness printed on the specifier below
    Decl = Inner + Decl;
    // Pointer-to-array/function needs parens; only arrays are modeled.
    if (P->pointee() && isa<CastArray>(P->pointee()))
      Decl = "(" + Decl + ")";
    buildDeclarator(P->pointee(), Spec, Decl);
    if (P->isConstPointee())
      Spec = "const " + Spec;
    return;
  }
  case CastType::Kind::Array: {
    const auto *A = cast<CastArray>(T);
    Decl += A->size() ? "[" + std::to_string(A->size()) + "]" : "[]";
    buildDeclarator(A->elem(), Spec, Decl);
    return;
  }
  }
}

} // namespace

std::string flick::printCastType(const CastType *Type,
                                 const std::string &Name) {
  std::string Spec, Decl = Name;
  buildDeclarator(Type, Spec, Decl);
  if (Decl.empty())
    return Spec;
  // No space between '*' and the name, one space after the specifier.
  return Spec + " " + Decl;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {

/// C precedence levels; larger binds tighter.
int binaryPrec(const std::string &Op) {
  if (Op == "*" || Op == "/" || Op == "%")
    return 13;
  if (Op == "+" || Op == "-")
    return 12;
  if (Op == "<<" || Op == ">>")
    return 11;
  if (Op == "<" || Op == ">" || Op == "<=" || Op == ">=")
    return 10;
  if (Op == "==" || Op == "!=")
    return 9;
  if (Op == "&")
    return 8;
  if (Op == "^")
    return 7;
  if (Op == "|")
    return 6;
  if (Op == "&&")
    return 5;
  if (Op == "||")
    return 4;
  // Assignment family.
  return 2;
}

bool isAssignOp(const std::string &Op) {
  return flick::endsWith(Op, "=") && Op != "==" && Op != "!=" && Op != "<=" &&
         Op != ">=";
}

int exprPrec(const CastExpr *E) {
  switch (E->kind()) {
  case CastExpr::Kind::Ident:
  case CastExpr::Kind::IntLit:
  case CastExpr::Kind::StrLit:
  case CastExpr::Kind::CharLit:
  case CastExpr::Kind::Raw: // printed parenthesized, acts atomic
    return 16;
  case CastExpr::Kind::Call:
  case CastExpr::Kind::Member:
  case CastExpr::Kind::Index:
    return 15;
  case CastExpr::Kind::Unary:
  case CastExpr::Kind::Cast:
  case CastExpr::Kind::SizeofType:
    return 14;
  case CastExpr::Kind::Binary:
    return binaryPrec(cast<CEBinary>(E)->op());
  case CastExpr::Kind::Ternary:
    return 3;
  }
  return 0;
}

void printExpr(const CastExpr *E, std::string &Out);

/// Prints \p E, parenthesizing when its precedence is below \p MinPrec.
void printOperand(const CastExpr *E, int MinPrec, std::string &Out) {
  if (exprPrec(E) < MinPrec) {
    Out += '(';
    printExpr(E, Out);
    Out += ')';
  } else {
    printExpr(E, Out);
  }
}

void printExpr(const CastExpr *E, std::string &Out) {
  switch (E->kind()) {
  case CastExpr::Kind::Ident:
    Out += cast<CEIdent>(E)->name();
    return;
  case CastExpr::Kind::IntLit: {
    const auto *L = cast<CEIntLit>(E);
    if (L->isUnsigned() || L->value() <= 0x7fffffffffffffffULL) {
      Out += std::to_string(L->value());
    } else {
      Out += std::to_string(static_cast<int64_t>(L->value()));
    }
    if (L->isUnsigned())
      Out += 'u';
    if (L->isLongLong())
      Out += "ll";
    return;
  }
  case CastExpr::Kind::StrLit:
    Out += '"';
    Out += escapeCString(cast<CEStrLit>(E)->value());
    Out += '"';
    return;
  case CastExpr::Kind::CharLit: {
    char C = cast<CECharLit>(E)->value();
    Out += '\'';
    if (C == '\'' || C == '\\') {
      Out += '\\';
      Out += C;
    } else {
      Out += escapeCString(std::string(1, C));
    }
    Out += '\'';
    return;
  }
  case CastExpr::Kind::Call: {
    const auto *C = cast<CECall>(E);
    printOperand(C->callee(), 15, Out);
    Out += '(';
    for (size_t I = 0, N = C->args().size(); I != N; ++I) {
      if (I)
        Out += ", ";
      printExpr(C->args()[I], Out);
    }
    Out += ')';
    return;
  }
  case CastExpr::Kind::Member: {
    const auto *M = cast<CEMember>(E);
    printOperand(M->base(), 15, Out);
    Out += M->isArrow() ? "->" : ".";
    Out += M->name();
    return;
  }
  case CastExpr::Kind::Index: {
    const auto *I = cast<CEIndex>(E);
    printOperand(I->base(), 15, Out);
    Out += '[';
    printExpr(I->index(), Out);
    Out += ']';
    return;
  }
  case CastExpr::Kind::Unary: {
    const auto *U = cast<CEUnary>(E);
    Out += U->op();
    // `- -x` and `& &x` must not fuse into `--x` / `&&x`.
    size_t Before = Out.size();
    printOperand(U->operand(), 14, Out);
    if (Before < Out.size() && !U->op().empty() &&
        Out[Before] == U->op().back()) {
      Out.insert(Before, " ");
    }
    return;
  }
  case CastExpr::Kind::Binary: {
    const auto *B = cast<CEBinary>(E);
    int Prec = binaryPrec(B->op());
    if (isAssignOp(B->op())) {
      // Right-associative.
      printOperand(B->lhs(), 14, Out);
      Out += ' ';
      Out += B->op();
      Out += ' ';
      printOperand(B->rhs(), Prec, Out);
      return;
    }
    // Left-associative; force parens when mixing && and || for clarity.
    int RhsMin = Prec + 1;
    int LhsMin = Prec;
    if (B->op() == "&&" || B->op() == "||" || B->op() == "&" ||
        B->op() == "|" || B->op() == "^") {
      auto MixedLogical = [&](const CastExpr *Sub) {
        const auto *SB = dyn_cast<CEBinary>(Sub);
        return SB && binaryPrec(SB->op()) <= 8 && SB->op() != B->op();
      };
      if (MixedLogical(B->lhs()))
        LhsMin = 15;
      if (MixedLogical(B->rhs()))
        RhsMin = 15;
    }
    printOperand(B->lhs(), LhsMin, Out);
    Out += ' ';
    Out += B->op();
    Out += ' ';
    printOperand(B->rhs(), RhsMin, Out);
    return;
  }
  case CastExpr::Kind::Cast: {
    const auto *C = cast<CECast>(E);
    Out += '(';
    Out += printCastType(C->type(), "");
    Out += ')';
    printOperand(C->operand(), 14, Out);
    return;
  }
  case CastExpr::Kind::SizeofType:
    Out += "sizeof(";
    Out += printCastType(cast<CESizeofType>(E)->type(), "");
    Out += ')';
    return;
  case CastExpr::Kind::Ternary: {
    const auto *T = cast<CETernary>(E);
    printOperand(T->cond(), 4, Out);
    Out += " ? ";
    printOperand(T->thenExpr(), 3, Out);
    Out += " : ";
    printOperand(T->elseExpr(), 3, Out);
    return;
  }
  case CastExpr::Kind::Raw:
    Out += '(';
    Out += cast<CERaw>(E)->text();
    Out += ')';
    return;
  }
}

} // namespace

std::string flick::printCastExpr(const CastExpr *E) {
  std::string Out;
  printExpr(E, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

namespace {

/// Prints \p S as the body of a control statement: blocks share the
/// header's braces, single statements print indented on their own line.
void printControlled(const CastStmt *S, CodeWriter &W) {
  if (const auto *B = dyn_cast<CSBlock>(S)) {
    for (const CastStmt *Sub : B->stmts())
      printCastStmt(Sub, W);
    return;
  }
  printCastStmt(S, W);
}

} // namespace

void flick::printCastStmt(const CastStmt *S, CodeWriter &W) {
  switch (S->kind()) {
  case CastStmt::Kind::Expr:
    W.line(printCastExpr(cast<CSExpr>(S)->expr()) + ";");
    return;
  case CastStmt::Kind::VarDecl: {
    const auto *D = cast<CSVarDecl>(S);
    std::string Line = printCastType(D->type(), D->name());
    if (D->init())
      Line += " = " + printCastExpr(D->init());
    W.line(Line + ";");
    return;
  }
  case CastStmt::Kind::Block: {
    W.open("");
    for (const CastStmt *Sub : cast<CSBlock>(S)->stmts())
      printCastStmt(Sub, W);
    W.close();
    return;
  }
  case CastStmt::Kind::If: {
    const auto *I = cast<CSIf>(S);
    W.open("if (" + printCastExpr(I->cond()) + ")");
    printControlled(I->thenStmt(), W);
    if (const CastStmt *Else = I->elseStmt()) {
      W.outdent();
      W.line("} else {");
      W.indent();
      printControlled(Else, W);
    }
    W.close();
    return;
  }
  case CastStmt::Kind::While: {
    const auto *L = cast<CSWhile>(S);
    W.open("while (" + printCastExpr(L->cond()) + ")");
    printControlled(L->body(), W);
    W.close();
    return;
  }
  case CastStmt::Kind::For: {
    const auto *F = cast<CSFor>(S);
    std::string Head = "for (";
    if (const CastStmt *Init = F->init()) {
      if (const auto *D = dyn_cast<CSVarDecl>(Init)) {
        Head += printCastType(D->type(), D->name());
        if (D->init())
          Head += " = " + printCastExpr(D->init());
      } else if (const auto *E = dyn_cast<CSExpr>(Init)) {
        Head += printCastExpr(E->expr());
      }
    }
    Head += "; ";
    if (F->cond())
      Head += printCastExpr(F->cond());
    Head += "; ";
    if (F->step())
      Head += printCastExpr(F->step());
    Head += ")";
    W.open(Head);
    printControlled(F->body(), W);
    W.close();
    return;
  }
  case CastStmt::Kind::Switch: {
    const auto *Sw = cast<CSSwitch>(S);
    W.open("switch (" + printCastExpr(Sw->cond()) + ")");
    for (const CastSwitchCase &C : Sw->cases()) {
      if (C.Values.empty()) {
        W.line("default: {");
      } else {
        for (size_t I = 0; I + 1 < C.Values.size(); ++I)
          W.line("case " + printCastExpr(C.Values[I]) + ":");
        W.line("case " + printCastExpr(C.Values.back()) + ": {");
      }
      // Braced bodies keep locals legal across case labels.
      W.indent();
      for (const CastStmt *Sub : C.Stmts)
        printCastStmt(Sub, W);
      if (!C.FallsThrough)
        W.line("break;");
      W.outdent();
      W.line("}");
    }
    W.close();
    return;
  }
  case CastStmt::Kind::Return: {
    const CastExpr *E = cast<CSReturn>(S)->expr();
    W.line(E ? "return " + printCastExpr(E) + ";" : "return;");
    return;
  }
  case CastStmt::Kind::Break:
    W.line("break;");
    return;
  case CastStmt::Kind::Continue:
    W.line("continue;");
    return;
  case CastStmt::Kind::Comment:
    W.line("/* " + cast<CSComment>(S)->text() + " */");
    return;
  case CastStmt::Kind::Raw:
    W.line(cast<CSRaw>(S)->text());
    return;
  }
}

//===----------------------------------------------------------------------===//
// Declarations and files
//===----------------------------------------------------------------------===//

void flick::printCastDecl(const CastDecl *D, CodeWriter &W) {
  switch (D->kind()) {
  case CastDecl::Kind::Var: {
    const auto *V = cast<CDVar>(D);
    std::string Line;
    if (V->isStatic())
      Line += "static ";
    Line += printCastType(V->type(), V->name());
    if (V->init())
      Line += " = " + printCastExpr(V->init());
    W.line(Line + ";");
    return;
  }
  case CastDecl::Kind::Func: {
    const auto *F = cast<CDFunc>(D);
    std::string Head;
    if (F->isStatic())
      Head += "static ";
    if (F->isInline())
      Head += "inline ";
    std::string ParamList;
    if (F->params().empty()) {
      ParamList = "void";
    } else {
      for (size_t I = 0, N = F->params().size(); I != N; ++I) {
        if (I)
          ParamList += ", ";
        const CastParam &P = F->params()[I];
        ParamList += printCastType(P.Type, P.Name);
      }
    }
    Head += printCastType(F->ret(), F->name() + "(" + ParamList + ")");
    if (!F->body()) {
      W.line(Head + ";");
      return;
    }
    W.open(Head);
    for (const CastStmt *S : F->body()->stmts())
      printCastStmt(S, W);
    W.close();
    return;
  }
  case CastDecl::Kind::AggregateDef: {
    const auto *A = cast<CDAggregateDef>(D);
    const char *Tag = A->tag() == CastTag::Struct ? "struct" : "union";
    W.open(std::string(Tag) + " " + A->name());
    for (const CastParam &F : A->fields())
      W.line(printCastType(F.Type, F.Name) + ";");
    W.close(";");
    return;
  }
  case CastDecl::Kind::EnumDef: {
    const auto *E = cast<CDEnumDef>(D);
    W.open("enum " + E->name());
    for (const CastEnumerator &En : E->enumerators())
      W.line(En.Name + " = " + std::to_string(En.Value) + ",");
    W.close(";");
    return;
  }
  case CastDecl::Kind::Typedef: {
    const auto *T = cast<CDTypedef>(D);
    W.line("typedef " + printCastType(T->type(), T->name()) + ";");
    return;
  }
  case CastDecl::Kind::Comment:
    W.line("/* " + cast<CDComment>(D)->text() + " */");
    return;
  case CastDecl::Kind::Raw:
    W.line(cast<CDRaw>(D)->text());
    return;
  }
}

std::string flick::printCastFile(const CastFile &File) {
  CodeWriter W;
  W.line("/* Generated by flickc.  Do not edit. */");
  if (!File.HeaderGuard.empty()) {
    W.line("#ifndef " + File.HeaderGuard);
    W.line("#define " + File.HeaderGuard);
  }
  W.blank();
  for (const std::string &Inc : File.Includes)
    W.line("#include " + Inc);
  if (!File.Includes.empty())
    W.blank();
  for (const CastDecl *D : File.Decls) {
    printCastDecl(D, W);
    W.blank();
  }
  if (!File.HeaderGuard.empty())
    W.line("#endif /* " + File.HeaderGuard + " */");
  return W.take();
}
