//===- mint/Mint.cpp - Message INterface Types IR -------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mint/Mint.h"
#include "support/CodeWriter.h"
#include <cassert>
#include <map>
#include <set>

using namespace flick;

MintVoid *MintModule::voidType() {
  if (!VoidCache)
    VoidCache = make<MintVoid>();
  return VoidCache;
}

MintInteger *MintModule::integer(unsigned Bits, bool Signed) {
  unsigned Idx;
  switch (Bits) {
  case 8:
    Idx = 0;
    break;
  case 16:
    Idx = 1;
    break;
  case 32:
    Idx = 2;
    break;
  case 64:
    Idx = 3;
    break;
  default:
    assert(false && "unsupported integer width");
    Idx = 2;
  }
  MintInteger *&Slot = IntCache[Signed ? 1 : 0][Idx];
  if (!Slot)
    Slot = make<MintInteger>(Bits, Signed);
  return Slot;
}

MintFloat *MintModule::floatType(unsigned Bits) {
  assert((Bits == 32 || Bits == 64) && "unsupported float width");
  MintFloat *&Slot = FloatCache[Bits == 64 ? 1 : 0];
  if (!Slot)
    Slot = make<MintFloat>(Bits);
  return Slot;
}

MintChar *MintModule::charType() {
  if (!CharCache)
    CharCache = make<MintChar>();
  return CharCache;
}

MintBoolean *MintModule::boolType() {
  if (!BoolCache)
    BoolCache = make<MintBoolean>();
  return BoolCache;
}

namespace {

/// Recursive dumper with cycle detection: the second visit of a node prints
/// a back-reference instead of recursing.
class MintDumper {
public:
  explicit MintDumper(CodeWriter &W) : W(W) {}

  void dump(const MintType *T) {
    if (!T) {
      W.line("<null>");
      return;
    }
    auto It = Ids.find(T);
    if (It != Ids.end() && Visiting.count(T)) {
      W.line("ref #" + std::to_string(It->second));
      return;
    }
    unsigned Id;
    if (It == Ids.end()) {
      Id = NextId++;
      Ids.emplace(T, Id);
    } else {
      Id = It->second;
    }
    Visiting.insert(T);
    dumpNew(T, Id);
    Visiting.erase(T);
  }

private:
  void dumpNew(const MintType *T, unsigned Id) {
    std::string Tag = "#" + std::to_string(Id) + " ";
    switch (T->kind()) {
    case MintType::Kind::Void:
      W.line(Tag + "void");
      return;
    case MintType::Kind::Integer: {
      const auto *I = cast<MintInteger>(T);
      W.line(Tag + (I->isSigned() ? "int" : "uint") +
             std::to_string(I->bits()));
      return;
    }
    case MintType::Kind::Float:
      W.line(Tag + "float" + std::to_string(cast<MintFloat>(T)->bits()));
      return;
    case MintType::Kind::Char:
      W.line(Tag + "char");
      return;
    case MintType::Kind::Boolean:
      W.line(Tag + "boolean");
      return;
    case MintType::Kind::Array: {
      const auto *A = cast<MintArray>(T);
      std::string Range =
          A->isBounded()
              ? "[" + std::to_string(A->minLen()) + ".." +
                    std::to_string(A->maxLen()) + "]"
              : "[" + std::to_string(A->minLen()) + "..*]";
      W.open(Tag + "array" + Range);
      dump(A->elem());
      W.close();
      return;
    }
    case MintType::Kind::Struct: {
      const auto *S = cast<MintStruct>(T);
      W.open(Tag + "struct");
      for (const MintStructElem &E : S->elems()) {
        if (!E.Label.empty())
          W.line("// " + E.Label);
        dump(E.Type);
      }
      W.close();
      return;
    }
    case MintType::Kind::Union: {
      const auto *U = cast<MintUnion>(T);
      W.open(Tag + "union");
      W.print("disc: ");
      dump(U->disc());
      for (const MintUnionCase &C : U->cases()) {
        std::string Head = "case " + std::to_string(C.Value);
        if (!C.Label.empty())
          Head += " /* " + C.Label + " */";
        W.open(Head + ":");
        dump(C.Body);
        W.close();
      }
      if (U->defaultBody()) {
        W.open("default:");
        dump(U->defaultBody());
        W.close();
      }
      W.close();
      return;
    }
    }
  }

  CodeWriter &W;
  std::map<const MintType *, unsigned> Ids;
  std::set<const MintType *> Visiting;
  unsigned NextId = 0;
};

} // namespace

std::string MintModule::dump(const MintType *Root) {
  CodeWriter W;
  MintDumper(W).dump(Root);
  return W.take();
}
