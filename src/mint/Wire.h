//===- mint/Wire.h - On-the-wire atomic encodings ---------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The encoding layer *below* MINT (paper Figure 2): how each atomic MINT
/// type is laid out in message bytes for a given protocol.  Back ends and
/// the storage analysis consult a WireLayout to size message segments, to
/// decide when a host-format `memcpy` is legal, and to pick the inline
/// runtime primitive to call for each datum.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_MINT_WIRE_H
#define FLICK_MINT_WIRE_H

#include "mint/Mint.h"
#include <string>

namespace flick {

/// The message data encodings supported by the back ends.
enum class WireKind {
  /// RFC 1832 XDR: big-endian, every item padded to 4 bytes, bool is a
  /// 4-byte word, strings are counted *without* the NUL.
  Xdr,
  /// CORBA CDR, little-endian variant: natural alignment (1/2/4/8),
  /// strings counted *including* the NUL.
  CdrLE,
  /// CORBA CDR, big-endian variant.
  CdrBE,
  /// Mach 3 typed messages: host-endian data preceded by type descriptor
  /// words; 4-byte alignment.
  MachTyped,
  /// Fluke kernel IPC: host-endian packed words; the first register-file
  /// words of a message travel in "registers".
  FlukeReg,
};

/// Returns a stable lowercase name ("xdr", "cdr-le", ...).
const char *wireKindName(WireKind K);

/// Byte-level layout rules for one encoding.  All queries are per atomic
/// MINT type; aggregates are laid out by concatenation with alignment.
class WireLayout {
public:
  explicit WireLayout(WireKind K) : K(K) {}

  WireKind kind() const { return K; }

  /// Encoded size in bytes of one atomic value (Integer/Float/Char/Bool).
  unsigned atomSize(const MintType *T) const;

  /// Required alignment (relative to message start) of an atomic value.
  unsigned atomAlign(const MintType *T) const;

  /// True when the encoded representation of \p T is bit-identical to the
  /// host's in-memory representation, making `memcpy` of arrays legal
  /// (paper §3.2).  Depends on host endianness.
  bool hostIdentical(const MintType *T) const;

  /// Size in bytes of an array/string length word.
  unsigned lengthWordSize() const { return 4; }

  /// True when string length counts include the terminating NUL (CDR).
  bool stringCountsNul() const { return K == WireKind::CdrLE ||
                                        K == WireKind::CdrBE; }

  /// Granularity every marshaled item is padded to (XDR: 4; others: 1,
  /// meaning only natural alignment applies).
  unsigned padUnit() const { return K == WireKind::Xdr ? 4 : 1; }

  /// True when multi-byte values must be byte-swapped on this host.
  bool needsSwap(const MintType *T) const;

  /// Rounds \p Size up to this encoding's pad unit.
  uint64_t padded(uint64_t Size) const {
    unsigned U = padUnit();
    return (Size + U - 1) / U * U;
  }

  /// Name of the runtime primitive family ("xdr", "cdr", "mach", "fluke");
  /// generated code calls e.g. `flick_<family>_encode_u32`.
  std::string primitiveFamily() const;

private:
  WireKind K;
};

//===----------------------------------------------------------------------===//
// Storage analysis (paper §3.1, "Marshal Buffer Management")
//===----------------------------------------------------------------------===//

/// Classification of a message region's encoded size.
enum class StorageClass {
  /// Size is a compile-time constant.
  Fixed,
  /// Size varies but has a static upper bound.
  Bounded,
  /// No static upper bound.
  Unbounded,
};

/// Result of analyzing one MINT subtree under a WireLayout.
struct StorageInfo {
  StorageClass Class = StorageClass::Fixed;
  /// Exact size when Fixed; minimum size otherwise.  Conservative: element
  /// sizes are rounded up to their alignment, so this is an upper bound on
  /// the exact fixed size and safe for buffer pre-allocation.
  uint64_t MinBytes = 0;
  /// Upper bound when Fixed or Bounded; meaningless when Unbounded.
  uint64_t MaxBytes = 0;
};

/// Computes the storage classification of \p T encoded with \p Layout.
/// Recursive types (cycles) are classified Unbounded.
StorageInfo analyzeStorage(const MintType *T, const WireLayout &Layout);

} // namespace flick

#endif // FLICK_MINT_WIRE_H
