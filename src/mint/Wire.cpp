//===- mint/Wire.cpp - On-the-wire atomic encodings -----------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mint/Wire.h"
#include <algorithm>
#include <bit>
#include <cassert>
#include <set>

using namespace flick;

const char *flick::wireKindName(WireKind K) {
  switch (K) {
  case WireKind::Xdr:
    return "xdr";
  case WireKind::CdrLE:
    return "cdr-le";
  case WireKind::CdrBE:
    return "cdr-be";
  case WireKind::MachTyped:
    return "mach";
  case WireKind::FlukeReg:
    return "fluke";
  }
  return "<bad-wire>";
}

unsigned WireLayout::atomSize(const MintType *T) const {
  switch (T->kind()) {
  case MintType::Kind::Integer: {
    unsigned Bytes = cast<MintInteger>(T)->bits() / 8;
    // XDR hyper stays 8 bytes; everything smaller widens to a 4-byte unit.
    if (K == WireKind::Xdr && Bytes < 4)
      return 4;
    return Bytes;
  }
  case MintType::Kind::Float:
    return cast<MintFloat>(T)->bits() / 8;
  case MintType::Kind::Char:
    return K == WireKind::Xdr ? 4 : 1;
  case MintType::Kind::Boolean:
    return K == WireKind::Xdr ? 4 : 1;
  default:
    assert(false && "atomSize on non-atomic MINT type");
    return 0;
  }
}

unsigned WireLayout::atomAlign(const MintType *T) const {
  if (K == WireKind::Xdr)
    return 4;
  unsigned Size = atomSize(T);
  return Size == 0 ? 1 : Size;
}

bool WireLayout::needsSwap(const MintType *T) const {
  unsigned Size = atomSize(T);
  if (Size <= 1)
    return false;
  constexpr bool HostLittle = std::endian::native == std::endian::little;
  switch (K) {
  case WireKind::Xdr:
  case WireKind::CdrBE:
    return HostLittle;
  case WireKind::CdrLE:
    return !HostLittle;
  case WireKind::MachTyped:
  case WireKind::FlukeReg:
    return false; // host-endian encodings
  }
  return false;
}

bool WireLayout::hostIdentical(const MintType *T) const {
  switch (T->kind()) {
  case MintType::Kind::Integer:
  case MintType::Kind::Float: {
    // Identical when the encoded size matches the C type's size and no
    // byte swap is required.  XDR widens sub-word integers, so only the
    // 4- and 8-byte kinds can match there -- and on a little-endian host
    // they still need a swap.
    const auto *I = dyn_cast<MintInteger>(T);
    unsigned HostSize = I ? I->bits() / 8 : cast<MintFloat>(T)->bits() / 8;
    return atomSize(T) == HostSize && !needsSwap(T);
  }
  case MintType::Kind::Char:
    return atomSize(T) == 1;
  case MintType::Kind::Boolean:
    // The runtime presents booleans as one byte; only 1-byte encodings of
    // bool are bit-identical.
    return atomSize(T) == 1;
  default:
    return false;
  }
}

std::string WireLayout::primitiveFamily() const {
  switch (K) {
  case WireKind::Xdr:
    return "xdr";
  case WireKind::CdrLE:
  case WireKind::CdrBE:
    return "cdr";
  case WireKind::MachTyped:
    return "mach";
  case WireKind::FlukeReg:
    return "fluke";
  }
  return "bad";
}

namespace {

/// One storage-analysis walk; tracks in-progress nodes so cycles classify
/// as Unbounded instead of recursing forever.
class StorageAnalyzer {
public:
  explicit StorageAnalyzer(const WireLayout &Layout) : Layout(Layout) {}

  StorageInfo analyze(const MintType *T) {
    assert(T && "analyzing null MINT type");
    if (!InProgress.insert(T).second)
      return StorageInfo{StorageClass::Unbounded, 0, 0};
    StorageInfo Info = analyzeNew(T);
    InProgress.erase(T);
    return Info;
  }

private:
  /// Size of one array element including inter-element padding; used for
  /// `count * elemSize` bounds.  Conservatively rounds the element size up
  /// to its own alignment.
  static uint64_t strideOf(const StorageInfo &Elem, uint64_t Align,
                           const WireLayout &Layout) {
    uint64_t S = Elem.MaxBytes;
    S = (S + Align - 1) / Align * Align;
    return Layout.padded(S);
  }

  StorageInfo analyzeNew(const MintType *T) {
    switch (T->kind()) {
    case MintType::Kind::Void:
      return StorageInfo{StorageClass::Fixed, 0, 0};
    case MintType::Kind::Integer:
    case MintType::Kind::Float:
    case MintType::Kind::Char:
    case MintType::Kind::Boolean: {
      uint64_t S = Layout.padded(Layout.atomSize(T));
      return StorageInfo{StorageClass::Fixed, S, S};
    }
    case MintType::Kind::Array: {
      const auto *A = cast<MintArray>(T);
      StorageInfo Elem = analyze(A->elem());
      uint64_t Align = alignOf(A->elem());
      if (A->isFixed()) {
        if (Elem.Class == StorageClass::Fixed) {
          uint64_t S = A->maxLen() * strideOf(Elem, Align, Layout);
          return StorageInfo{StorageClass::Fixed, S, S};
        }
        if (Elem.Class == StorageClass::Bounded)
          return StorageInfo{StorageClass::Bounded,
                             A->minLen() * Elem.MinBytes,
                             A->maxLen() * strideOf(Elem, Align, Layout)};
        return StorageInfo{StorageClass::Unbounded, 0, 0};
      }
      uint64_t LenBytes = Layout.padded(Layout.lengthWordSize());
      if (!A->isBounded() || Elem.Class == StorageClass::Unbounded)
        return StorageInfo{StorageClass::Unbounded,
                           LenBytes + A->minLen() * Elem.MinBytes, 0};
      return StorageInfo{StorageClass::Bounded,
                         LenBytes + A->minLen() * Elem.MinBytes,
                         LenBytes +
                             A->maxLen() * strideOf(Elem, Align, Layout)};
    }
    case MintType::Kind::Struct: {
      const auto *S = cast<MintStruct>(T);
      StorageInfo Out{StorageClass::Fixed, 0, 0};
      for (const MintStructElem &E : S->elems()) {
        StorageInfo Elem = analyze(E.Type);
        if (Elem.Class == StorageClass::Unbounded ||
            Out.Class == StorageClass::Unbounded) {
          Out.Class = StorageClass::Unbounded;
          Out.MinBytes += Elem.MinBytes;
          continue;
        }
        if (Elem.Class == StorageClass::Bounded)
          Out.Class = StorageClass::Bounded;
        // Conservative alignment slack between members.
        uint64_t Align = alignOf(E.Type);
        Out.MinBytes += Elem.MinBytes;
        Out.MaxBytes =
            (Out.MaxBytes + Align - 1) / Align * Align + Elem.MaxBytes;
      }
      return Out;
    }
    case MintType::Kind::Union: {
      const auto *U = cast<MintUnion>(T);
      StorageInfo Disc = analyze(U->disc());
      StorageInfo Out{StorageClass::Fixed, 0, 0};
      bool First = true;
      auto Merge = [&](const StorageInfo &Arm) {
        if (Arm.Class == StorageClass::Unbounded)
          Out.Class = StorageClass::Unbounded;
        else if (Arm.Class == StorageClass::Bounded &&
                 Out.Class == StorageClass::Fixed)
          Out.Class = StorageClass::Bounded;
        Out.MinBytes = First ? Arm.MinBytes
                             : std::min(Out.MinBytes, Arm.MinBytes);
        Out.MaxBytes = std::max(Out.MaxBytes, Arm.MaxBytes);
        First = false;
      };
      for (const MintUnionCase &C : U->cases())
        Merge(analyze(C.Body));
      if (U->defaultBody())
        Merge(analyze(U->defaultBody()));
      if (First)
        Out = StorageInfo{StorageClass::Fixed, 0, 0};
      // Arms of different sizes make the total variable even if each arm is
      // fixed.
      if (Out.Class == StorageClass::Fixed && Out.MinBytes != Out.MaxBytes)
        Out.Class = StorageClass::Bounded;
      Out.MinBytes += Disc.MinBytes;
      Out.MaxBytes += Disc.MaxBytes;
      return Out;
    }
    }
    return StorageInfo{StorageClass::Unbounded, 0, 0};
  }

  uint64_t alignOf(const MintType *T) {
    switch (T->kind()) {
    case MintType::Kind::Integer:
    case MintType::Kind::Float:
    case MintType::Kind::Char:
    case MintType::Kind::Boolean:
      return Layout.atomAlign(T);
    default:
      return Layout.padUnit() > 1 ? Layout.padUnit() : 8;
    }
  }

  const WireLayout &Layout;
  std::set<const MintType *> InProgress;
};

} // namespace

StorageInfo flick::analyzeStorage(const MintType *T,
                                  const WireLayout &Layout) {
  return StorageAnalyzer(Layout).analyze(T);
}
