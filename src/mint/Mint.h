//===- mint/Mint.h - Message INterface Types IR -----------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MINT is Flick's message-type intermediate representation (paper §2.2.1):
/// a directed graph describing every message exchanged between client and
/// server -- value ranges and structure, but *not* the byte-level encoding
/// (that is the back end's wire format) and *not* the target-language
/// types (that is CAST).  MINT sits between the two; PRES nodes glue a MINT
/// node to a CAST type.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_MINT_MINT_H
#define FLICK_MINT_MINT_H

#include "support/Casting.h"
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace flick {

/// Base class of all MINT types.  Nodes are owned by a MintModule; graphs
/// may be cyclic (self-referential types reached through a variable-length
/// array of zero-or-one elements).
class MintType {
public:
  enum class Kind {
    Void,
    Integer,
    Float,
    Char,
    Boolean,
    Array,
    Struct,
    Union,
  };

  Kind kind() const { return K; }

  virtual ~MintType() = default;

protected:
  explicit MintType(Kind K) : K(K) {}

private:
  const Kind K;
};

/// The absence of data (e.g. a void reply body or empty union arm).
class MintVoid : public MintType {
public:
  MintVoid() : MintType(Kind::Void) {}
  static bool classof(const MintType *T) { return T->kind() == Kind::Void; }
};

/// An integer constrained to an 8/16/32/64-bit signed or unsigned range.
/// MINT specifies the range only; the byte encoding belongs to the wire
/// format below it.
class MintInteger : public MintType {
public:
  MintInteger(unsigned Bits, bool Signed)
      : MintType(Kind::Integer), Bits(Bits), Signed(Signed) {}

  unsigned bits() const { return Bits; }
  bool isSigned() const { return Signed; }

  static bool classof(const MintType *T) {
    return T->kind() == Kind::Integer;
  }

private:
  unsigned Bits;
  bool Signed;
};

/// An IEEE float of 32 or 64 bits.
class MintFloat : public MintType {
public:
  explicit MintFloat(unsigned Bits) : MintType(Kind::Float), Bits(Bits) {}

  unsigned bits() const { return Bits; }

  static bool classof(const MintType *T) { return T->kind() == Kind::Float; }

private:
  unsigned Bits;
};

/// A character (ISO 8859-1 octet in the paper's encodings).
class MintChar : public MintType {
public:
  MintChar() : MintType(Kind::Char) {}
  static bool classof(const MintType *T) { return T->kind() == Kind::Char; }
};

/// A boolean value.
class MintBoolean : public MintType {
public:
  MintBoolean() : MintType(Kind::Boolean) {}
  static bool classof(const MintType *T) {
    return T->kind() == Kind::Boolean;
  }
};

/// Sentinel meaning "no static bound" for MintArray::maxLen().
inline constexpr uint64_t MintUnboundedLen =
    std::numeric_limits<uint64_t>::max();

/// A counted array: a length in [MinLen, MaxLen] followed by that many
/// elements.  Fixed-size arrays have MinLen == MaxLen (and no length word on
/// most encodings); strings are arrays of MintChar; XDR optional pointers
/// are arrays with range [0, 1].
class MintArray : public MintType {
public:
  MintArray(MintType *Elem, uint64_t MinLen, uint64_t MaxLen)
      : MintType(Kind::Array), Elem(Elem), MinLen(MinLen), MaxLen(MaxLen) {}

  MintType *elem() const { return Elem; }
  uint64_t minLen() const { return MinLen; }
  uint64_t maxLen() const { return MaxLen; }
  bool isFixed() const { return MinLen == MaxLen; }
  bool isBounded() const { return MaxLen != MintUnboundedLen; }

  /// Patches the element; used to tie self-referential type knots.
  void setElem(MintType *T) { Elem = T; }

  static bool classof(const MintType *T) { return T->kind() == Kind::Array; }

private:
  MintType *Elem;
  uint64_t MinLen;
  uint64_t MaxLen;
};

/// One positional member of a MintStruct.  Labels exist for dumps only.
struct MintStructElem {
  MintType *Type = nullptr;
  std::string Label;
};

/// A sequence of heterogeneous members marshaled in order.
class MintStruct : public MintType {
public:
  explicit MintStruct(std::vector<MintStructElem> Elems)
      : MintType(Kind::Struct), Elems(std::move(Elems)) {}

  const std::vector<MintStructElem> &elems() const { return Elems; }
  std::vector<MintStructElem> &elems() { return Elems; }

  static bool classof(const MintType *T) {
    return T->kind() == Kind::Struct;
  }

private:
  std::vector<MintStructElem> Elems;
};

/// One arm of a MintUnion: a typed literal discriminator value selects Body.
struct MintUnionCase {
  int64_t Value = 0;
  MintType *Body = nullptr;
  std::string Label;
};

/// A discriminated union: the discriminator is marshaled, then the arm whose
/// literal matches.  Request messages are modeled as a union over operation
/// request codes (the typed-literal-constant role from the paper).
class MintUnion : public MintType {
public:
  MintUnion(MintInteger *Disc, std::vector<MintUnionCase> Cases,
            MintType *DefaultBody)
      : MintType(Kind::Union), Disc(Disc), Cases(std::move(Cases)),
        DefaultBody(DefaultBody) {}

  MintInteger *disc() const { return Disc; }
  const std::vector<MintUnionCase> &cases() const { return Cases; }
  /// Null when an unmatched discriminator is a protocol error.
  MintType *defaultBody() const { return DefaultBody; }

  static bool classof(const MintType *T) { return T->kind() == Kind::Union; }

private:
  MintInteger *Disc;
  std::vector<MintUnionCase> Cases;
  MintType *DefaultBody;
};

/// Owns MINT nodes and provides conveniences for the common ones.
class MintModule {
public:
  template <typename T, typename... Args> T *make(Args &&...As) {
    auto Owned = std::make_unique<T>(std::forward<Args>(As)...);
    T *Raw = Owned.get();
    Nodes.push_back(std::move(Owned));
    return Raw;
  }

  /// Shared leaves (created on first use).
  MintVoid *voidType();
  MintInteger *integer(unsigned Bits, bool Signed);
  MintFloat *floatType(unsigned Bits);
  MintChar *charType();
  MintBoolean *boolType();

  /// Renders a stable textual dump rooted at \p Root (tests, --emit-mint).
  static std::string dump(const MintType *Root);

  /// Total MINT nodes owned by the module (--stats IR-size counter).
  size_t numNodes() const { return Nodes.size(); }

private:
  std::vector<std::unique_ptr<MintType>> Nodes;
  MintVoid *VoidCache = nullptr;
  MintChar *CharCache = nullptr;
  MintBoolean *BoolCache = nullptr;
  // [signed][log2(bits)-3]
  MintInteger *IntCache[2][4] = {};
  MintFloat *FloatCache[2] = {};
};

} // namespace flick

#endif // FLICK_MINT_MINT_H
