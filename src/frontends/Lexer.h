//===- frontends/Lexer.h - Shared IDL lexer ---------------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer shared by the IDL front ends.  The CORBA and ONC
/// RPC IDLs have C-like surface syntax: identifiers, integer/char/string
/// literals, punctuation (including `::` and shift operators), `//` and
/// `/* */` comments, and preprocessor lines (skipped).  Keywords are the
/// parsers' business -- the lexer returns identifiers.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_FRONTENDS_LEXER_H
#define FLICK_FRONTENDS_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"
#include <cstdint>
#include <string>

namespace flick {

/// One lexed token.
struct Token {
  enum class Kind {
    Eof,
    Ident,
    IntLit,
    StrLit,
    CharLit,
    Punct,
  };

  Kind K = Kind::Eof;
  /// Identifier spelling, punctuation spelling, or string literal value.
  std::string Text;
  /// Value for IntLit / CharLit.
  uint64_t IntValue = 0;
  SourceLoc Loc;

  bool is(Kind Kd) const { return K == Kd; }
  bool isPunct(const char *P) const {
    return K == Kind::Punct && Text == P;
  }
  bool isIdent(const char *Id) const {
    return K == Kind::Ident && Text == Id;
  }
};

/// Lexes a whole IDL source buffer.  Errors (bad characters, unterminated
/// literals) are reported to the DiagnosticEngine and the offending input
/// is skipped.
class Lexer {
public:
  Lexer(std::string Source, int FileId, DiagnosticEngine &Diags);

  /// Flushes the token count into the --stats registry (no-op when stats
  /// collection is off).
  ~Lexer();

  /// Returns the current token without consuming it.
  const Token &peek() const { return Cur; }

  /// Returns the token after the current one.
  const Token &peek2();

  /// Consumes and returns the current token.
  Token next();

  SourceLoc loc() const { return Cur.Loc; }

private:
  Token lexOne();
  void skipTrivia();
  SourceLoc here() const;

  std::string Source;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
  int FileId;
  DiagnosticEngine &Diags;
  Token Cur;
  Token Ahead;
  bool HasAhead = false;
  uint64_t NumTokens = 0;

  char at(size_t Off = 0) const {
    return Pos + Off < Source.size() ? Source[Pos + Off] : '\0';
  }
  void advance();
};

} // namespace flick

#endif // FLICK_FRONTENDS_LEXER_H
