//===- frontends/Lexer.cpp - Shared IDL lexer -----------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "frontends/Lexer.h"
#include "support/Stats.h"
#include <cctype>

using namespace flick;

Lexer::Lexer(std::string Source, int FileId, DiagnosticEngine &Diags)
    : Source(std::move(Source)), FileId(FileId), Diags(Diags) {
  Cur = lexOne();
}

Lexer::~Lexer() { FLICK_STAT_COUNT("lexer.tokens", NumTokens); }

SourceLoc Lexer::here() const { return SourceLoc(FileId, Line, Col); }

void Lexer::advance() {
  if (Pos >= Source.size())
    return;
  if (Source[Pos] == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  ++Pos;
}

void Lexer::skipTrivia() {
  while (true) {
    char C = at();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && at(1) == '/') {
      while (at() && at() != '\n')
        advance();
      continue;
    }
    if (C == '/' && at(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      while (at() && !(at() == '*' && at(1) == '/'))
        advance();
      if (!at()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      advance();
      advance();
      continue;
    }
    // Preprocessor lines (#include, #pragma, cpp line markers): skip.
    if (C == '#' && Col == 1) {
      while (at() && at() != '\n')
        advance();
      continue;
    }
    return;
  }
}

const Token &Lexer::peek2() {
  if (!HasAhead) {
    Ahead = lexOne();
    HasAhead = true;
  }
  return Ahead;
}

Token Lexer::next() {
  Token Out = Cur;
  if (HasAhead) {
    Cur = Ahead;
    HasAhead = false;
  } else {
    Cur = lexOne();
  }
  return Out;
}

Token Lexer::lexOne() {
  skipTrivia();
  Token T;
  T.Loc = here();
  char C = at();
  if (!C) {
    T.K = Token::Kind::Eof;
    return T;
  }
  ++NumTokens;

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Id;
    while (std::isalnum(static_cast<unsigned char>(at())) || at() == '_') {
      Id += at();
      advance();
    }
    T.K = Token::Kind::Ident;
    T.Text = std::move(Id);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    uint64_t V = 0;
    if (C == '0' && (at(1) == 'x' || at(1) == 'X')) {
      advance();
      advance();
      while (std::isxdigit(static_cast<unsigned char>(at()))) {
        char D = at();
        unsigned Dig = std::isdigit(static_cast<unsigned char>(D))
                           ? unsigned(D - '0')
                           : unsigned(std::tolower(D) - 'a') + 10;
        V = V * 16 + Dig;
        advance();
      }
    } else if (C == '0' && std::isdigit(static_cast<unsigned char>(at(1)))) {
      // Octal, per C tradition.
      while (at() >= '0' && at() <= '7') {
        V = V * 8 + unsigned(at() - '0');
        advance();
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(at()))) {
        V = V * 10 + unsigned(at() - '0');
        advance();
      }
    }
    // Swallow integer suffixes (uUlL).
    while (at() == 'u' || at() == 'U' || at() == 'l' || at() == 'L')
      advance();
    T.K = Token::Kind::IntLit;
    T.IntValue = V;
    return T;
  }

  if (C == '"') {
    advance();
    std::string S;
    while (at() && at() != '"') {
      char Ch = at();
      if (Ch == '\\') {
        advance();
        switch (at()) {
        case 'n':
          Ch = '\n';
          break;
        case 't':
          Ch = '\t';
          break;
        case '\\':
          Ch = '\\';
          break;
        case '"':
          Ch = '"';
          break;
        case '0':
          Ch = '\0';
          break;
        default:
          Ch = at();
        }
      }
      S += Ch;
      advance();
    }
    if (!at())
      Diags.error(T.Loc, "unterminated string literal");
    else
      advance();
    T.K = Token::Kind::StrLit;
    T.Text = std::move(S);
    return T;
  }

  if (C == '\'') {
    advance();
    char Ch = at();
    if (Ch == '\\') {
      advance();
      switch (at()) {
      case 'n':
        Ch = '\n';
        break;
      case 't':
        Ch = '\t';
        break;
      case '0':
        Ch = '\0';
        break;
      default:
        Ch = at();
      }
    }
    advance();
    if (at() != '\'')
      Diags.error(T.Loc, "unterminated character literal");
    else
      advance();
    T.K = Token::Kind::CharLit;
    T.IntValue = static_cast<unsigned char>(Ch);
    return T;
  }

  // Punctuation; multi-character first.
  static const char *Multi[] = {"::", "<<", ">>"};
  for (const char *M : Multi) {
    if (C == M[0] && at(1) == M[1]) {
      advance();
      advance();
      T.K = Token::Kind::Punct;
      T.Text = M;
      return T;
    }
  }
  static const char Single[] = "{}()[]<>;:,=*+-/%|&^~";
  for (char S : Single) {
    if (C == S) {
      advance();
      T.K = Token::Kind::Punct;
      T.Text = std::string(1, S);
      return T;
    }
  }

  Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
  advance();
  return lexOne();
}
