//===- frontends/mig/MigParser.cpp - MIG .defs parser ---------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "frontends/mig/MigFrontEnd.h"
#include "frontends/Lexer.h"
#include "support/Diagnostics.h"
#include <map>

using namespace flick;

namespace {

class MigParser {
public:
  MigParser(const std::string &Source, const std::string &Filename,
            DiagnosticEngine &Diags)
      : Diags(Diags), Lex(Source, Diags.addFile(Filename), Diags),
        Module(std::make_unique<AoiModule>()) {}

  std::unique_ptr<AoiModule> run() {
    if (!parseSubsystem())
      return nullptr;
    while (!Lex.peek().is(Token::Kind::Eof)) {
      if (!parseStatement())
        synchronize();
    }
    if (Diags.hasErrors())
      return nullptr;
    return std::move(Module);
  }

private:
  void error(const std::string &Msg) { Diags.error(Lex.loc(), Msg); }

  bool expectPunct(const char *P) {
    if (Lex.peek().isPunct(P)) {
      Lex.next();
      return true;
    }
    error("expected '" + std::string(P) + "'");
    return false;
  }

  bool acceptPunct(const char *P) {
    if (!Lex.peek().isPunct(P))
      return false;
    Lex.next();
    return true;
  }

  bool acceptIdent(const char *Id) {
    if (!Lex.peek().isIdent(Id))
      return false;
    Lex.next();
    return true;
  }

  std::string expectIdent(const char *What) {
    if (Lex.peek().is(Token::Kind::Ident))
      return Lex.next().Text;
    error(std::string("expected ") + What);
    return std::string();
  }

  void synchronize() {
    while (!Lex.peek().is(Token::Kind::Eof)) {
      if (Lex.peek().isPunct(";")) {
        Lex.next();
        return;
      }
      Lex.next();
    }
  }

  bool parseSubsystem() {
    if (!acceptIdent("subsystem")) {
      error("a MIG definition file starts with 'subsystem <name> <id>;'");
      return false;
    }
    If = Module->makeInterface();
    If->Name = expectIdent("a subsystem name");
    If->ScopedName = If->Name;
    If->Loc = Lex.loc();
    if (!Lex.peek().is(Token::Kind::IntLit)) {
      error("expected the subsystem message-id base");
      return false;
    }
    If->ProgramNumber = static_cast<uint32_t>(Lex.next().IntValue);
    If->VersionNumber = 1;
    return expectPunct(";");
  }

  /// MIG's builtin scalar universe (MIG cannot express aggregates).
  AoiType *builtinType(const std::string &Name) {
    auto Prim = [&](AoiPrimKind K) {
      return Module->make<AoiPrimitive>(K, Lex.loc());
    };
    if (Name == "int" || Name == "int32" || Name == "integer_t")
      return Prim(AoiPrimKind::Long);
    if (Name == "unsigned" || Name == "uint32" || Name == "natural_t")
      return Prim(AoiPrimKind::ULong);
    if (Name == "int64")
      return Prim(AoiPrimKind::LongLong);
    if (Name == "char" || Name == "int8")
      return Prim(AoiPrimKind::Char);
    if (Name == "byte" || Name == "uint8")
      return Prim(AoiPrimKind::Octet);
    if (Name == "int16")
      return Prim(AoiPrimKind::Short);
    if (Name == "boolean_t")
      return Prim(AoiPrimKind::Boolean);
    if (Name == "float")
      return Prim(AoiPrimKind::Float);
    if (Name == "double")
      return Prim(AoiPrimKind::Double);
    return nullptr;
  }

  /// type-spec := id | 'array' '[' [n] ']' 'of' type-spec
  ///            | id '[' n ']' (c-style string form)
  AoiType *parseTypeSpec() {
    if (acceptIdent("array")) {
      if (!expectPunct("["))
        return nullptr;
      uint64_t Count = 0;
      bool Variable = true;
      if (Lex.peek().is(Token::Kind::IntLit)) {
        Count = Lex.next().IntValue;
        Variable = false;
      } else if (Lex.peek().isPunct("*")) {
        // `array[*:N]` bounded-variable form.
        Lex.next();
        if (acceptPunct(":")) {
          if (!Lex.peek().is(Token::Kind::IntLit)) {
            error("expected a bound after ':'");
            return nullptr;
          }
          Count = Lex.next().IntValue;
        }
      }
      if (!expectPunct("]"))
        return nullptr;
      if (!acceptIdent("of")) {
        error("expected 'of' in array type");
        return nullptr;
      }
      AoiType *Elem = parseTypeSpec();
      if (!Elem)
        return nullptr;
      // MIG arrays carry only scalars.
      if (!isa<AoiPrimitive>(Elem->resolved())) {
        error("MIG arrays may only hold scalar types");
        return nullptr;
      }
      if (Variable || Count == 0)
        return Module->make<AoiSequence>(Elem, Count, Lex.loc());
      return Module->make<AoiArray>(
          Elem, std::vector<uint64_t>{Count}, Lex.loc());
    }

    std::string Name = expectIdent("a type name");
    if (Name.empty())
      return nullptr;
    if (Name == "string") {
      uint64_t Bound = 0;
      if (acceptPunct("[")) {
        if (Lex.peek().is(Token::Kind::IntLit))
          Bound = Lex.next().IntValue;
        if (!expectPunct("]"))
          return nullptr;
      }
      return Module->make<AoiString>(Bound, Lex.loc());
    }
    auto It = Aliases.find(Name);
    if (It != Aliases.end())
      return It->second;
    if (AoiType *T = builtinType(Name))
      return T;
    error("unknown MIG type '" + Name + "'");
    return nullptr;
  }

  bool parseTypeAlias() {
    std::string Name = expectIdent("a type name");
    if (Name.empty() || !expectPunct("="))
      return false;
    // Accept either a type spec or a MACH_MSG_TYPE_* constant name, which
    // maps onto the matching scalar.
    AoiType *T = nullptr;
    const Token &Tok = Lex.peek();
    if (Tok.is(Token::Kind::Ident) &&
        Tok.Text.rfind("MACH_MSG_TYPE_", 0) == 0) {
      std::string C = Lex.next().Text;
      if (C == "MACH_MSG_TYPE_INTEGER_32")
        T = Module->make<AoiPrimitive>(AoiPrimKind::Long, Lex.loc());
      else if (C == "MACH_MSG_TYPE_INTEGER_64")
        T = Module->make<AoiPrimitive>(AoiPrimKind::LongLong, Lex.loc());
      else if (C == "MACH_MSG_TYPE_INTEGER_16")
        T = Module->make<AoiPrimitive>(AoiPrimKind::Short, Lex.loc());
      else if (C == "MACH_MSG_TYPE_CHAR")
        T = Module->make<AoiPrimitive>(AoiPrimKind::Char, Lex.loc());
      else if (C == "MACH_MSG_TYPE_BYTE")
        T = Module->make<AoiPrimitive>(AoiPrimKind::Octet, Lex.loc());
      else if (C == "MACH_MSG_TYPE_BOOLEAN")
        T = Module->make<AoiPrimitive>(AoiPrimKind::Boolean, Lex.loc());
      else {
        error("unsupported Mach type constant '" + C + "'");
        return false;
      }
    } else {
      T = parseTypeSpec();
    }
    if (!T)
      return false;
    auto *TD = Module->make<AoiTypedef>(Name, T, Lex.loc());
    Aliases[Name] = TD;
    Module->addNamedType(TD);
    return expectPunct(";");
  }

  bool parseRoutine(bool Simple) {
    AoiOperation Op;
    Op.Loc = Lex.loc();
    Op.Oneway = Simple;
    Op.ReturnType = Module->make<AoiPrimitive>(AoiPrimKind::Void, Op.Loc);
    Op.Name = expectIdent("a routine name");
    if (Op.Name.empty() || !expectPunct("("))
      return false;
    if (!Lex.peek().isPunct(")")) {
      do {
        AoiParam P;
        P.Loc = Lex.loc();
        P.Dir = AoiParamDir::In;
        if (acceptIdent("out"))
          P.Dir = AoiParamDir::Out;
        else if (acceptIdent("inout"))
          P.Dir = AoiParamDir::InOut;
        else
          acceptIdent("in");
        P.Name = expectIdent("a parameter name");
        if (P.Name.empty() || !expectPunct(":"))
          return false;
        P.Type = parseTypeSpec();
        if (!P.Type)
          return false;
        Op.Params.push_back(std::move(P));
      } while (acceptPunct(";") && !Lex.peek().isPunct(")"));
    }
    if (!expectPunct(")"))
      return false;
    if (Simple)
      for (const AoiParam &P : Op.Params)
        if (P.Dir != AoiParamDir::In)
          error("simpleroutine '" + Op.Name +
                "' cannot have out parameters");
    Op.RequestCode = NextProc++;
    If->Operations.push_back(std::move(Op));
    return expectPunct(";");
  }

  bool parseStatement() {
    if (acceptIdent("type"))
      return parseTypeAlias();
    if (acceptIdent("routine"))
      return parseRoutine(/*Simple=*/false);
    if (acceptIdent("simpleroutine"))
      return parseRoutine(/*Simple=*/true);
    if (acceptIdent("skip")) {
      ++NextProc; // MIG's placeholder for retired message ids
      return expectPunct(";");
    }
    error("expected 'type', 'routine', 'simpleroutine', or 'skip'");
    return false;
  }

  DiagnosticEngine &Diags;
  Lexer Lex;
  std::unique_ptr<AoiModule> Module;
  AoiInterface *If = nullptr;
  std::map<std::string, AoiType *> Aliases;
  uint32_t NextProc = 1;
};

} // namespace

std::unique_ptr<AoiModule> flick::parseMigDefs(const std::string &Source,
                                               const std::string &Filename,
                                               DiagnosticEngine &Diags) {
  return MigParser(Source, Filename, Diags).run();
}
