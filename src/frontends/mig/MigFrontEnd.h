//===- frontends/mig/MigFrontEnd.h - MIG .defs parser -----------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MIG front end (paper §2.1).  MIG's input language is deliberately
/// restricted -- "essentially just scalars and arrays of scalars" (paper
/// §5) -- and its constructs assume C and Mach, which is why the paper
/// conjoins the MIG front end with a special MIG presentation generator
/// instead of going through AOI alone.  This reproduction parses the
/// common subset (`subsystem`, `type` aliases, `routine` /
/// `simpleroutine` with in/out parameters and arrays) into AOI restricted
/// to MIG's type universe; MigPresGen (presgen/MigStyle.cpp) supplies the
/// conjoined presentation policy.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_FRONTENDS_MIG_MIGFRONTEND_H
#define FLICK_FRONTENDS_MIG_MIGFRONTEND_H

#include "aoi/Aoi.h"
#include <memory>
#include <string>

namespace flick {

class DiagnosticEngine;

/// Parses a MIG `.defs` subsystem into an AOI module (one interface,
/// MIG-restricted types).  Returns null when parsing reported errors.
std::unique_ptr<AoiModule> parseMigDefs(const std::string &Source,
                                        const std::string &Filename,
                                        DiagnosticEngine &Diags);

} // namespace flick

#endif // FLICK_FRONTENDS_MIG_MIGFRONTEND_H
