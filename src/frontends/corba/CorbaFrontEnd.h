//===- frontends/corba/CorbaFrontEnd.h - CORBA IDL parser -------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CORBA IDL front end (paper §2.1): parses the CORBA 2.0 IDL subset
/// used by the paper's experiments -- modules, interfaces with inheritance,
/// operations with in/out/inout parameters and raises clauses, attributes,
/// exceptions, structs, discriminated unions, enums, typedefs, sequences,
/// strings, arrays, and constants -- into AOI.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_FRONTENDS_CORBA_CORBAFRONTEND_H
#define FLICK_FRONTENDS_CORBA_CORBAFRONTEND_H

#include "aoi/Aoi.h"
#include <memory>
#include <string>

namespace flick {

class DiagnosticEngine;

/// Parses CORBA IDL source into an AOI module.  Returns null when parsing
/// reported errors (all diagnostics go to \p Diags).
std::unique_ptr<AoiModule> parseCorbaIdl(const std::string &Source,
                                         const std::string &Filename,
                                         DiagnosticEngine &Diags);

} // namespace flick

#endif // FLICK_FRONTENDS_CORBA_CORBAFRONTEND_H
