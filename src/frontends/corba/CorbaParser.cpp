//===- frontends/corba/CorbaParser.cpp - CORBA IDL parser -----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "frontends/corba/CorbaFrontEnd.h"
#include "frontends/Lexer.h"
#include "support/Diagnostics.h"
#include <map>
#include <vector>

using namespace flick;

namespace {

class CorbaParser {
public:
  CorbaParser(const std::string &Source, const std::string &Filename,
              DiagnosticEngine &Diags)
      : Diags(Diags), FileId(Diags.addFile(Filename)),
        Lex(Source, FileId, Diags), Module(std::make_unique<AoiModule>()) {}

  std::unique_ptr<AoiModule> run() {
    while (!Lex.peek().is(Token::Kind::Eof)) {
      if (!parseDefinition())
        synchronize();
    }
    if (Diags.hasErrors())
      return nullptr;
    return std::move(Module);
  }

private:
  //===------------------------------------------------------------------===//
  // Token utilities
  //===------------------------------------------------------------------===//

  bool expectPunct(const char *P) {
    if (Lex.peek().isPunct(P)) {
      Lex.next();
      return true;
    }
    error("expected '" + std::string(P) + "' but found '" +
          describe(Lex.peek()) + "'");
    return false;
  }

  bool acceptPunct(const char *P) {
    if (!Lex.peek().isPunct(P))
      return false;
    Lex.next();
    return true;
  }

  bool acceptIdent(const char *Id) {
    if (!Lex.peek().isIdent(Id))
      return false;
    Lex.next();
    return true;
  }

  std::string expectIdent(const char *What) {
    if (Lex.peek().is(Token::Kind::Ident))
      return Lex.next().Text;
    error(std::string("expected ") + What + " but found '" +
          describe(Lex.peek()) + "'");
    return std::string();
  }

  static std::string describe(const Token &T) {
    switch (T.K) {
    case Token::Kind::Eof:
      return "end of file";
    case Token::Kind::Ident:
    case Token::Kind::Punct:
      return T.Text;
    case Token::Kind::IntLit:
      return std::to_string(T.IntValue);
    case Token::Kind::StrLit:
      return "string literal";
    case Token::Kind::CharLit:
      return "character literal";
    }
    return "?";
  }

  void error(const std::string &Msg) { Diags.error(Lex.loc(), Msg); }

  /// Skips to the next ';' or '}' so one syntax error does not cascade.
  void synchronize() {
    unsigned Depth = 0;
    while (!Lex.peek().is(Token::Kind::Eof)) {
      const Token &T = Lex.peek();
      if (T.isPunct("{"))
        ++Depth;
      if (T.isPunct("}")) {
        if (Depth == 0) {
          Lex.next();
          acceptPunct(";");
          return;
        }
        --Depth;
      }
      if (T.isPunct(";") && Depth == 0) {
        Lex.next();
        return;
      }
      Lex.next();
    }
  }

  //===------------------------------------------------------------------===//
  // Scopes and symbol tables
  //===------------------------------------------------------------------===//

  std::string scopedName(const std::string &Name) const {
    return ScopePrefix.empty() ? Name : ScopePrefix + "::" + Name;
  }

  void declareType(const std::string &Name, AoiType *T) {
    std::string Scoped = scopedName(Name);
    if (Types.count(Scoped)) {
      error("redefinition of '" + Scoped + "'");
      return;
    }
    Types[Scoped] = T;
  }

  AoiType *lookupType(const std::string &Name) {
    // Absolute or already-qualified names first, then enclosing scopes.
    auto It = Types.find(Name);
    if (It != Types.end())
      return It->second;
    std::string Prefix = ScopePrefix;
    while (!Prefix.empty()) {
      It = Types.find(Prefix + "::" + Name);
      if (It != Types.end())
        return It->second;
      size_t Pos = Prefix.rfind("::");
      Prefix = Pos == std::string::npos ? std::string()
                                        : Prefix.substr(0, Pos);
    }
    return nullptr;
  }

  //===------------------------------------------------------------------===//
  // Constant expressions
  //===------------------------------------------------------------------===//

  bool parseConstPrimary(int64_t &Out) {
    const Token &T = Lex.peek();
    if (T.is(Token::Kind::IntLit) || T.is(Token::Kind::CharLit)) {
      Out = static_cast<int64_t>(Lex.next().IntValue);
      return true;
    }
    if (T.isIdent("TRUE")) {
      Lex.next();
      Out = 1;
      return true;
    }
    if (T.isIdent("FALSE")) {
      Lex.next();
      Out = 0;
      return true;
    }
    if (T.isPunct("-")) {
      Lex.next();
      if (!parseConstPrimary(Out))
        return false;
      Out = -Out;
      return true;
    }
    if (T.isPunct("(")) {
      Lex.next();
      if (!parseConstExpr(Out))
        return false;
      return expectPunct(")");
    }
    if (T.is(Token::Kind::Ident)) {
      std::string Name = parseScopedNameText();
      auto It = Consts.find(Name);
      if (It == Consts.end()) {
        // Retry with scope resolution.
        std::string Prefix = ScopePrefix;
        while (!Prefix.empty() && It == Consts.end()) {
          It = Consts.find(Prefix + "::" + Name);
          size_t Pos = Prefix.rfind("::");
          Prefix = Pos == std::string::npos ? std::string()
                                            : Prefix.substr(0, Pos);
        }
      }
      if (It == Consts.end()) {
        error("unknown constant '" + Name + "'");
        return false;
      }
      Out = It->second;
      return true;
    }
    error("expected constant expression");
    return false;
  }

  bool parseConstExpr(int64_t &Out) {
    if (!parseConstPrimary(Out))
      return false;
    while (true) {
      const Token &T = Lex.peek();
      const char *Ops[] = {"+", "-", "*", "/", "<<", ">>", "|", "&", "^"};
      const char *Op = nullptr;
      for (const char *O : Ops)
        if (T.isPunct(O)) {
          Op = O;
          break;
        }
      if (!Op)
        return true;
      Lex.next();
      int64_t Rhs = 0;
      if (!parseConstPrimary(Rhs))
        return false;
      switch (Op[0]) {
      case '+':
        Out += Rhs;
        break;
      case '-':
        Out -= Rhs;
        break;
      case '*':
        Out *= Rhs;
        break;
      case '/':
        if (Rhs == 0) {
          error("division by zero in constant expression");
          return false;
        }
        Out /= Rhs;
        break;
      case '<':
        Out <<= Rhs;
        break;
      case '>':
        Out >>= Rhs;
        break;
      case '|':
        Out |= Rhs;
        break;
      case '&':
        Out &= Rhs;
        break;
      case '^':
        Out ^= Rhs;
        break;
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Types
  //===------------------------------------------------------------------===//

  std::string parseScopedNameText() {
    std::string Name;
    if (Lex.peek().isPunct("::"))
      Lex.next(); // absolute names resolve from the global scope anyway
    Name = expectIdent("a name");
    while (Lex.peek().isPunct("::")) {
      Lex.next();
      Name += "::";
      Name += expectIdent("a name after '::'");
    }
    return Name;
  }

  AoiPrimitive *prim(AoiPrimKind K) {
    return Module->make<AoiPrimitive>(K, Lex.loc());
  }

  /// Parses a type specifier; null on error.  \p AllowVoid permits the
  /// `void` return type.
  AoiType *parseTypeSpec(bool AllowVoid = false) {
    const Token &T = Lex.peek();
    if (!T.is(Token::Kind::Ident)) {
      error("expected a type name");
      return nullptr;
    }

    if (acceptIdent("void")) {
      if (!AllowVoid)
        error("'void' is only valid as an operation return type");
      return prim(AoiPrimKind::Void);
    }
    if (acceptIdent("boolean"))
      return prim(AoiPrimKind::Boolean);
    if (acceptIdent("char"))
      return prim(AoiPrimKind::Char);
    if (acceptIdent("octet"))
      return prim(AoiPrimKind::Octet);
    if (acceptIdent("short"))
      return prim(AoiPrimKind::Short);
    if (acceptIdent("float"))
      return prim(AoiPrimKind::Float);
    if (acceptIdent("double"))
      return prim(AoiPrimKind::Double);
    if (acceptIdent("long")) {
      if (acceptIdent("long"))
        return prim(AoiPrimKind::LongLong);
      if (Lex.peek().isIdent("double")) {
        error("'long double' is not supported");
        Lex.next();
        return nullptr;
      }
      return prim(AoiPrimKind::Long);
    }
    if (acceptIdent("unsigned")) {
      if (acceptIdent("short"))
        return prim(AoiPrimKind::UShort);
      if (acceptIdent("long")) {
        if (acceptIdent("long"))
          return prim(AoiPrimKind::ULongLong);
        return prim(AoiPrimKind::ULong);
      }
      error("expected 'short' or 'long' after 'unsigned'");
      return nullptr;
    }
    if (acceptIdent("string")) {
      uint64_t Bound = 0;
      if (acceptPunct("<")) {
        int64_t B = 0;
        if (!parseConstExpr(B))
          return nullptr;
        Bound = static_cast<uint64_t>(B);
        if (!expectPunct(">"))
          return nullptr;
      }
      return Module->make<AoiString>(Bound, Lex.loc());
    }
    if (acceptIdent("sequence")) {
      if (!expectPunct("<"))
        return nullptr;
      AoiType *Elem = parseTypeSpec();
      if (!Elem)
        return nullptr;
      uint64_t Bound = 0;
      if (acceptPunct(",")) {
        int64_t B = 0;
        if (!parseConstExpr(B))
          return nullptr;
        Bound = static_cast<uint64_t>(B);
      }
      if (!expectPunct(">"))
        return nullptr;
      return Module->make<AoiSequence>(Elem, Bound, Lex.loc());
    }
    if (T.isIdent("struct") || T.isIdent("union") || T.isIdent("enum")) {
      // Inline aggregate definitions inside other types.
      return parseTypeDcl(/*Inline=*/true);
    }
    if (T.isIdent("any") || T.isIdent("Object") || T.isIdent("wchar") ||
        T.isIdent("wstring") || T.isIdent("fixed")) {
      error("type '" + T.Text + "' is not supported");
      Lex.next();
      return nullptr;
    }

    std::string Name = parseScopedNameText();
    AoiType *Found = lookupType(Name);
    if (!Found)
      error("unknown type '" + Name + "'");
    return Found;
  }

  /// Parses `typedef`, `struct`, `union`, or `enum`; returns the declared
  /// type (for Inline use) or null on error.
  AoiType *parseTypeDcl(bool Inline = false) {
    SourceLoc Loc = Lex.loc();
    if (acceptIdent("typedef")) {
      AoiType *Base = parseTypeSpec();
      if (!Base)
        return nullptr;
      // Declarators, possibly with array dimensions.
      AoiType *First = nullptr;
      do {
        std::string Name = expectIdent("a typedef name");
        if (Name.empty())
          return nullptr;
        AoiType *T = parseArraySuffix(Base);
        auto *TD = Module->make<AoiTypedef>(Name, T, Loc);
        declareType(Name, TD);
        Module->addNamedType(TD);
        if (!First)
          First = TD;
      } while (acceptPunct(","));
      return First;
    }

    if (acceptIdent("struct")) {
      std::string Name = expectIdent("a struct name");
      if (!expectPunct("{"))
        return nullptr;
      // Allow self-reference through sequences: declare a placeholder
      // struct first.
      auto *S = Module->make<AoiStruct>(Name, std::vector<AoiField>{}, Loc);
      declareType(Name, S);
      std::vector<AoiField> Fields;
      while (!Lex.peek().isPunct("}") &&
             !Lex.peek().is(Token::Kind::Eof)) {
        AoiType *FT = parseTypeSpec();
        if (!FT)
          return nullptr;
        do {
          AoiField F;
          F.Loc = Lex.loc();
          F.Name = expectIdent("a field name");
          F.Type = parseArraySuffix(FT);
          Fields.push_back(std::move(F));
        } while (acceptPunct(","));
        if (!expectPunct(";"))
          return nullptr;
      }
      expectPunct("}");
      S->setFields(std::move(Fields));
      Module->addNamedType(S);
      return S;
    }

    if (acceptIdent("union")) {
      std::string Name = expectIdent("a union name");
      if (!acceptIdent("switch")) {
        error("expected 'switch' in union declaration");
        return nullptr;
      }
      if (!expectPunct("("))
        return nullptr;
      AoiType *Disc = parseTypeSpec();
      if (!Disc || !expectPunct(")") || !expectPunct("{"))
        return nullptr;
      std::vector<AoiUnionCase> Cases;
      while (!Lex.peek().isPunct("}") &&
             !Lex.peek().is(Token::Kind::Eof)) {
        AoiUnionCase C;
        C.Loc = Lex.loc();
        bool AnyLabel = false;
        while (true) {
          if (acceptIdent("case")) {
            int64_t V = 0;
            if (!parseCaseLabelValue(Disc, V))
              return nullptr;
            if (!expectPunct(":"))
              return nullptr;
            C.Labels.push_back(AoiCaseLabel{false, V});
            AnyLabel = true;
            continue;
          }
          if (acceptIdent("default")) {
            if (!expectPunct(":"))
              return nullptr;
            C.Labels.push_back(AoiCaseLabel{true, 0});
            AnyLabel = true;
            continue;
          }
          break;
        }
        if (!AnyLabel) {
          error("expected 'case' or 'default' in union body");
          return nullptr;
        }
        AoiType *ET = parseTypeSpec();
        if (!ET)
          return nullptr;
        C.FieldName = expectIdent("an element name");
        C.Type = parseArraySuffix(ET);
        if (!expectPunct(";"))
          return nullptr;
        Cases.push_back(std::move(C));
      }
      expectPunct("}");
      auto *U = Module->make<AoiUnion>(Name, Disc, std::move(Cases), Loc);
      declareType(Name, U);
      Module->addNamedType(U);
      return U;
    }

    if (acceptIdent("enum")) {
      std::string Name = expectIdent("an enum name");
      if (!expectPunct("{"))
        return nullptr;
      std::vector<AoiEnumerator> Ens;
      int64_t Next = 0;
      do {
        std::string EName = expectIdent("an enumerator");
        if (EName.empty())
          return nullptr;
        Ens.push_back(AoiEnumerator{EName, Next});
        Consts[scopedName(EName)] = Next;
        ++Next;
      } while (acceptPunct(","));
      expectPunct("}");
      auto *E = Module->make<AoiEnum>(Name, std::move(Ens), Loc);
      declareType(Name, E);
      Module->addNamedType(E);
      // Remember enumerator membership for case-label resolution.
      for (const AoiEnumerator &En : E->enumerators())
        EnumOf[En.Name] = E;
      return E;
    }

    error("expected a type declaration");
    return nullptr;
  }

  /// Parses optional `[N]...` dimensions after a declarator name.
  AoiType *parseArraySuffix(AoiType *Base) {
    std::vector<uint64_t> Dims;
    while (acceptPunct("[")) {
      int64_t N = 0;
      if (!parseConstExpr(N))
        return Base;
      if (N <= 0)
        error("array dimension must be positive");
      Dims.push_back(static_cast<uint64_t>(N));
      expectPunct("]");
    }
    if (Dims.empty())
      return Base;
    return Module->make<AoiArray>(Base, std::move(Dims), Lex.loc());
  }

  bool parseCaseLabelValue(AoiType *Disc, int64_t &Out) {
    // Enum discriminators accept enumerator names.
    const AoiType *R = Disc->resolved();
    if (const auto *E = dyn_cast<AoiEnum>(R)) {
      if (Lex.peek().is(Token::Kind::Ident)) {
        std::string Name = parseScopedNameText();
        // Strip scope for enumerator comparison.
        size_t Pos = Name.rfind("::");
        std::string Last =
            Pos == std::string::npos ? Name : Name.substr(Pos + 2);
        for (const AoiEnumerator &En : E->enumerators())
          if (En.Name == Last) {
            Out = En.Value;
            return true;
          }
        error("'" + Name + "' is not an enumerator of the discriminator");
        return false;
      }
    }
    return parseConstExpr(Out);
  }

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  bool parseConstDcl() {
    SourceLoc Loc = Lex.loc();
    AoiType *T = parseTypeSpec();
    if (!T)
      return false;
    std::string Name = expectIdent("a constant name");
    if (!expectPunct("="))
      return false;
    AoiConst C;
    C.Name = Name;
    C.Type = T;
    C.Loc = Loc;
    if (Lex.peek().is(Token::Kind::StrLit)) {
      C.Value.K = AoiConstValue::Kind::String;
      C.Value.StrValue = Lex.next().Text;
    } else {
      int64_t V = 0;
      if (!parseConstExpr(V))
        return false;
      C.Value.K = AoiConstValue::Kind::Int;
      C.Value.IntValue = V;
      Consts[scopedName(Name)] = V;
    }
    Module->addConst(std::move(C));
    return expectPunct(";");
  }

  bool parseExceptDcl() {
    SourceLoc Loc = Lex.loc();
    std::string Name = expectIdent("an exception name");
    if (!expectPunct("{"))
      return false;
    AoiExceptionDecl *Ex = Module->makeException();
    Ex->Name = Name;
    Ex->Loc = Loc;
    while (!Lex.peek().isPunct("}") && !Lex.peek().is(Token::Kind::Eof)) {
      AoiType *FT = parseTypeSpec();
      if (!FT)
        return false;
      do {
        AoiField F;
        F.Loc = Lex.loc();
        F.Name = expectIdent("a member name");
        F.Type = parseArraySuffix(FT);
        Ex->Members.push_back(std::move(F));
      } while (acceptPunct(","));
      if (!expectPunct(";"))
        return false;
    }
    expectPunct("}");
    Exceptions[scopedName(Name)] = Ex;
    return expectPunct(";");
  }

  bool parseInterface() {
    SourceLoc Loc = Lex.loc();
    std::string Name = expectIdent("an interface name");
    // Forward declaration `interface X;`.
    if (acceptPunct(";"))
      return true;

    AoiInterface *If = Module->makeInterface();
    If->Name = Name;
    If->ScopedName = scopedName(Name);
    If->Loc = Loc;
    InterfaceMap[If->ScopedName] = If;

    if (acceptPunct(":")) {
      do {
        std::string BaseName = parseScopedNameText();
        AoiInterface *Base = nullptr;
        auto It = InterfaceMap.find(BaseName);
        if (It != InterfaceMap.end())
          Base = It->second;
        else if (auto It2 = InterfaceMap.find(scopedName(BaseName));
                 It2 != InterfaceMap.end())
          Base = It2->second;
        if (!Base) {
          error("unknown base interface '" + BaseName + "'");
          return false;
        }
        If->Bases.push_back(Base);
      } while (acceptPunct(","));
    }
    if (!expectPunct("{"))
      return false;

    std::string SavedPrefix = ScopePrefix;
    ScopePrefix = If->ScopedName;
    uint32_t NextCode = 1;
    while (!Lex.peek().isPunct("}") && !Lex.peek().is(Token::Kind::Eof)) {
      if (!parseExport(*If, NextCode)) {
        ScopePrefix = SavedPrefix;
        return false;
      }
    }
    ScopePrefix = SavedPrefix;
    expectPunct("}");
    return expectPunct(";");
  }

  bool parseExport(AoiInterface &If, uint32_t &NextCode) {
    const Token &T = Lex.peek();
    if (T.isIdent("typedef") || T.isIdent("struct") || T.isIdent("union") ||
        T.isIdent("enum")) {
      if (!parseTypeDcl())
        return false;
      return expectPunct(";");
    }
    if (acceptIdent("const"))
      return parseConstDcl();
    if (acceptIdent("exception"))
      return parseExceptDcl();
    if (T.isIdent("readonly") || T.isIdent("attribute"))
      return parseAttribute(If);
    return parseOperation(If, NextCode);
  }

  bool parseAttribute(AoiInterface &If) {
    AoiAttribute A;
    A.Loc = Lex.loc();
    A.ReadOnly = acceptIdent("readonly");
    if (!acceptIdent("attribute")) {
      error("expected 'attribute'");
      return false;
    }
    AoiType *T = parseTypeSpec();
    if (!T)
      return false;
    do {
      AoiAttribute Copy = A;
      Copy.Type = T;
      Copy.Name = expectIdent("an attribute name");
      If.Attributes.push_back(std::move(Copy));
    } while (acceptPunct(","));
    return expectPunct(";");
  }

  bool parseOperation(AoiInterface &If, uint32_t &NextCode) {
    AoiOperation Op;
    Op.Loc = Lex.loc();
    Op.Oneway = acceptIdent("oneway");
    Op.ReturnType = parseTypeSpec(/*AllowVoid=*/true);
    if (!Op.ReturnType)
      return false;
    Op.Name = expectIdent("an operation name");
    if (Op.Name.empty() || !expectPunct("("))
      return false;
    if (!acceptPunct(")")) {
      do {
        AoiParam P;
        P.Loc = Lex.loc();
        if (acceptIdent("in"))
          P.Dir = AoiParamDir::In;
        else if (acceptIdent("out"))
          P.Dir = AoiParamDir::Out;
        else if (acceptIdent("inout"))
          P.Dir = AoiParamDir::InOut;
        else {
          error("expected parameter direction (in/out/inout)");
          return false;
        }
        P.Type = parseTypeSpec();
        if (!P.Type)
          return false;
        P.Name = expectIdent("a parameter name");
        Op.Params.push_back(std::move(P));
      } while (acceptPunct(","));
      if (!expectPunct(")"))
        return false;
    }
    if (acceptIdent("raises")) {
      if (!expectPunct("("))
        return false;
      do {
        std::string EName = parseScopedNameText();
        AoiExceptionDecl *Ex = nullptr;
        auto It = Exceptions.find(EName);
        if (It != Exceptions.end())
          Ex = It->second;
        else {
          std::string Prefix = ScopePrefix;
          while (!Prefix.empty() && !Ex) {
            auto It2 = Exceptions.find(Prefix + "::" + EName);
            if (It2 != Exceptions.end())
              Ex = It2->second;
            size_t Pos = Prefix.rfind("::");
            Prefix = Pos == std::string::npos ? std::string()
                                              : Prefix.substr(0, Pos);
          }
        }
        if (!Ex) {
          error("unknown exception '" + EName + "' in raises clause");
          return false;
        }
        Op.Raises.push_back(Ex);
      } while (acceptPunct(","));
      if (!expectPunct(")"))
        return false;
    }
    Op.RequestCode = NextCode++;
    If.Operations.push_back(std::move(Op));
    return expectPunct(";");
  }

  bool parseDefinition() {
    const Token &T = Lex.peek();
    if (T.is(Token::Kind::Eof))
      return true;
    if (acceptIdent("module")) {
      std::string Name = expectIdent("a module name");
      if (!expectPunct("{"))
        return false;
      std::string Saved = ScopePrefix;
      ScopePrefix = scopedName(Name);
      while (!Lex.peek().isPunct("}") &&
             !Lex.peek().is(Token::Kind::Eof)) {
        if (!parseDefinition()) {
          ScopePrefix = Saved;
          return false;
        }
      }
      ScopePrefix = Saved;
      expectPunct("}");
      return expectPunct(";");
    }
    if (acceptIdent("interface"))
      return parseInterface();
    if (acceptIdent("exception"))
      return parseExceptDcl();
    if (acceptIdent("const"))
      return parseConstDcl();
    if (T.isIdent("typedef") || T.isIdent("struct") || T.isIdent("union") ||
        T.isIdent("enum")) {
      if (!parseTypeDcl())
        return false;
      return expectPunct(";");
    }
    error("expected a definition but found '" + describe(T) + "'");
    return false;
  }

  DiagnosticEngine &Diags;
  int FileId;
  Lexer Lex;
  std::unique_ptr<AoiModule> Module;
  std::string ScopePrefix;
  std::map<std::string, AoiType *> Types;
  std::map<std::string, AoiExceptionDecl *> Exceptions;
  std::map<std::string, AoiInterface *> InterfaceMap;
  std::map<std::string, int64_t> Consts;
  std::map<std::string, AoiEnum *> EnumOf;
};

} // namespace

std::unique_ptr<AoiModule> flick::parseCorbaIdl(const std::string &Source,
                                                const std::string &Filename,
                                                DiagnosticEngine &Diags) {
  return CorbaParser(Source, Filename, Diags).run();
}
