//===- frontends/oncrpc/OncFrontEnd.h - ONC RPC IDL parser ------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ONC RPC front end (paper §2.1): parses the Sun rpcgen input language
/// (RFC 1832 XDR type definitions plus `program`/`version` blocks) into
/// AOI.  Each `version` becomes an AOI interface carrying its program and
/// version numbers; each procedure becomes an operation whose request code
/// is the declared procedure number.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_FRONTENDS_ONCRPC_ONCFRONTEND_H
#define FLICK_FRONTENDS_ONCRPC_ONCFRONTEND_H

#include "aoi/Aoi.h"
#include <memory>
#include <string>

namespace flick {

class DiagnosticEngine;

/// Parses ONC RPC (rpcgen) IDL source into an AOI module.  Returns null
/// when parsing reported errors.
std::unique_ptr<AoiModule> parseOncIdl(const std::string &Source,
                                       const std::string &Filename,
                                       DiagnosticEngine &Diags);

} // namespace flick

#endif // FLICK_FRONTENDS_ONCRPC_ONCFRONTEND_H
