//===- frontends/oncrpc/OncParser.cpp - ONC RPC IDL parser ----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "frontends/oncrpc/OncFrontEnd.h"
#include "frontends/Lexer.h"
#include "support/Diagnostics.h"
#include "support/StringExtras.h"
#include <map>

using namespace flick;

namespace {

class OncParser {
public:
  OncParser(const std::string &Source, const std::string &Filename,
            DiagnosticEngine &Diags)
      : Diags(Diags), Lex(Source, Diags.addFile(Filename), Diags),
        Module(std::make_unique<AoiModule>()) {}

  std::unique_ptr<AoiModule> run() {
    while (!Lex.peek().is(Token::Kind::Eof)) {
      if (!parseDefinition())
        synchronize();
    }
    if (Diags.hasErrors())
      return nullptr;
    return std::move(Module);
  }

private:
  void error(const std::string &Msg) { Diags.error(Lex.loc(), Msg); }

  bool expectPunct(const char *P) {
    if (Lex.peek().isPunct(P)) {
      Lex.next();
      return true;
    }
    error("expected '" + std::string(P) + "'");
    return false;
  }

  bool acceptPunct(const char *P) {
    if (!Lex.peek().isPunct(P))
      return false;
    Lex.next();
    return true;
  }

  bool acceptIdent(const char *Id) {
    if (!Lex.peek().isIdent(Id))
      return false;
    Lex.next();
    return true;
  }

  std::string expectIdent(const char *What) {
    if (Lex.peek().is(Token::Kind::Ident))
      return Lex.next().Text;
    error(std::string("expected ") + What);
    return std::string();
  }

  void synchronize() {
    unsigned Depth = 0;
    while (!Lex.peek().is(Token::Kind::Eof)) {
      const Token &T = Lex.peek();
      if (T.isPunct("{"))
        ++Depth;
      if (T.isPunct("}")) {
        if (Depth == 0) {
          Lex.next();
          acceptPunct(";");
          return;
        }
        --Depth;
      }
      if (T.isPunct(";") && Depth == 0) {
        Lex.next();
        return;
      }
      Lex.next();
    }
  }

  bool parseValue(int64_t &Out) {
    const Token &T = Lex.peek();
    if (T.is(Token::Kind::IntLit)) {
      Out = static_cast<int64_t>(Lex.next().IntValue);
      return true;
    }
    if (T.isPunct("-")) {
      Lex.next();
      if (!parseValue(Out))
        return false;
      Out = -Out;
      return true;
    }
    if (T.is(Token::Kind::Ident)) {
      auto It = Consts.find(T.Text);
      if (It == Consts.end()) {
        error("unknown constant '" + T.Text + "'");
        return false;
      }
      Lex.next();
      Out = It->second;
      return true;
    }
    error("expected a value");
    return false;
  }

  AoiPrimitive *prim(AoiPrimKind K) {
    return Module->make<AoiPrimitive>(K, Lex.loc());
  }

  /// Parses an XDR type specifier (not including the declarator).  The
  /// `opaque` and `string` pseudo-types are handled by parseDeclaration
  /// because their meaning depends on the declarator.
  AoiType *parseTypeSpecifier(bool AllowVoid) {
    if (acceptIdent("void")) {
      if (!AllowVoid)
        error("'void' only allowed for procedure argument/result");
      return prim(AoiPrimKind::Void);
    }
    if (acceptIdent("unsigned")) {
      if (acceptIdent("int"))
        return prim(AoiPrimKind::ULong);
      if (acceptIdent("long"))
        return prim(AoiPrimKind::ULong);
      if (acceptIdent("short"))
        return prim(AoiPrimKind::UShort);
      if (acceptIdent("char"))
        return prim(AoiPrimKind::Octet);
      if (acceptIdent("hyper"))
        return prim(AoiPrimKind::ULongLong);
      // Bare `unsigned` means unsigned int in rpcgen.
      return prim(AoiPrimKind::ULong);
    }
    if (acceptIdent("int"))
      return prim(AoiPrimKind::Long);
    if (acceptIdent("long"))
      return prim(AoiPrimKind::Long);
    if (acceptIdent("short"))
      return prim(AoiPrimKind::Short);
    if (acceptIdent("char"))
      return prim(AoiPrimKind::Char);
    if (acceptIdent("hyper"))
      return prim(AoiPrimKind::LongLong);
    if (acceptIdent("u_int"))
      return prim(AoiPrimKind::ULong);
    if (acceptIdent("u_long"))
      return prim(AoiPrimKind::ULong);
    if (acceptIdent("u_short"))
      return prim(AoiPrimKind::UShort);
    if (acceptIdent("u_char"))
      return prim(AoiPrimKind::Octet);
    if (acceptIdent("float"))
      return prim(AoiPrimKind::Float);
    if (acceptIdent("double"))
      return prim(AoiPrimKind::Double);
    if (acceptIdent("bool"))
      return prim(AoiPrimKind::Boolean);
    if (acceptIdent("bool_t"))
      return prim(AoiPrimKind::Boolean);

    const Token &T = Lex.peek();
    if (T.isIdent("struct") || T.isIdent("union") || T.isIdent("enum")) {
      // Inline body or forward reference: `struct foo` as a type spec.
      if (Lex.peek2().is(Token::Kind::Ident)) {
        std::string Tag = Lex.peek2().Text;
        // `struct name` used as a reference (next token after name is not
        // '{'): look it up.
        Lex.next(); // struct/union/enum
        std::string Name = expectIdent("a tag name");
        if (!Lex.peek().isPunct("{")) {
          auto It = Types.find(Name);
          if (It == Types.end()) {
            error("unknown type '" + Name + "'");
            return nullptr;
          }
          return It->second;
        }
        error("inline aggregate definitions must appear at top level");
        return nullptr;
      }
      error("anonymous aggregates are not supported");
      return nullptr;
    }

    if (T.is(Token::Kind::Ident)) {
      auto It = Types.find(T.Text);
      if (It != Types.end()) {
        Lex.next();
        return It->second;
      }
      error("unknown type '" + T.Text + "'");
      Lex.next();
      return nullptr;
    }
    error("expected a type specifier");
    return nullptr;
  }

  /// Parses one XDR declaration `type-specifier declarator` and returns
  /// the field.  Handles `opaque`, `string`, pointers (`*`), fixed `[n]`
  /// and variable `<n>` suffixes.
  bool parseDeclaration(AoiField &Out, bool AllowVoid = false) {
    Out.Loc = Lex.loc();

    if (acceptIdent("opaque")) {
      Out.Name = expectIdent("a declarator");
      if (acceptPunct("[")) {
        int64_t N = 0;
        if (!parseValue(N) || !expectPunct("]"))
          return false;
        Out.Type = Module->make<AoiArray>(
            prim(AoiPrimKind::Octet), std::vector<uint64_t>{uint64_t(N)},
            Out.Loc);
        return true;
      }
      if (acceptPunct("<")) {
        uint64_t Bound = 0;
        if (!Lex.peek().isPunct(">")) {
          int64_t N = 0;
          if (!parseValue(N))
            return false;
          Bound = static_cast<uint64_t>(N);
        }
        if (!expectPunct(">"))
          return false;
        Out.Type = Module->make<AoiSequence>(prim(AoiPrimKind::Octet),
                                             Bound, Out.Loc);
        return true;
      }
      error("opaque requires an array declarator");
      return false;
    }

    if (acceptIdent("string")) {
      Out.Name = expectIdent("a declarator");
      if (!expectPunct("<"))
        return false;
      uint64_t Bound = 0;
      if (!Lex.peek().isPunct(">")) {
        int64_t N = 0;
        if (!parseValue(N))
          return false;
        Bound = static_cast<uint64_t>(N);
      }
      if (!expectPunct(">"))
        return false;
      Out.Type = Module->make<AoiString>(Bound, Out.Loc);
      return true;
    }

    if (Lex.peek().isIdent("void") && AllowVoid) {
      Lex.next();
      Out.Type = prim(AoiPrimKind::Void);
      Out.Name.clear();
      return true;
    }

    AoiType *Base = parseTypeSpecifier(false);
    if (!Base)
      return false;
    bool Optional = acceptPunct("*");
    Out.Name = expectIdent("a declarator");
    if (Optional) {
      Out.Type = Module->make<AoiOptional>(Base, Out.Loc);
      return true;
    }
    if (acceptPunct("[")) {
      int64_t N = 0;
      if (!parseValue(N) || !expectPunct("]"))
        return false;
      Out.Type = Module->make<AoiArray>(
          Base, std::vector<uint64_t>{uint64_t(N)}, Out.Loc);
      return true;
    }
    if (acceptPunct("<")) {
      uint64_t Bound = 0;
      if (!Lex.peek().isPunct(">")) {
        int64_t N = 0;
        if (!parseValue(N))
          return false;
        Bound = static_cast<uint64_t>(N);
      }
      if (!expectPunct(">"))
        return false;
      Out.Type = Module->make<AoiSequence>(Base, Bound, Out.Loc);
      return true;
    }
    Out.Type = Base;
    return true;
  }

  bool parseEnum() {
    SourceLoc Loc = Lex.loc();
    std::string Name = expectIdent("an enum name");
    if (!expectPunct("{"))
      return false;
    std::vector<AoiEnumerator> Ens;
    int64_t Next = 0;
    do {
      std::string EName = expectIdent("an enumerator");
      if (EName.empty())
        return false;
      if (acceptPunct("=")) {
        if (!parseValue(Next))
          return false;
      }
      Ens.push_back(AoiEnumerator{EName, Next});
      Consts[EName] = Next;
      ++Next;
    } while (acceptPunct(","));
    if (!expectPunct("}"))
      return false;
    auto *E = Module->make<AoiEnum>(Name, std::move(Ens), Loc);
    Types[Name] = E;
    Module->addNamedType(E);
    EnumTypes[Name] = E;
    return expectPunct(";");
  }

  bool parseStruct() {
    SourceLoc Loc = Lex.loc();
    std::string Name = expectIdent("a struct name");
    if (!expectPunct("{"))
      return false;
    auto *S = Module->make<AoiStruct>(Name, std::vector<AoiField>{}, Loc);
    Types[Name] = S; // visible to self-referential members via '*'
    std::vector<AoiField> Fields;
    while (!Lex.peek().isPunct("}") && !Lex.peek().is(Token::Kind::Eof)) {
      AoiField F;
      if (!parseDeclaration(F))
        return false;
      Fields.push_back(std::move(F));
      if (!expectPunct(";"))
        return false;
    }
    expectPunct("}");
    S->setFields(std::move(Fields));
    Module->addNamedType(S);
    return expectPunct(";");
  }

  bool parseUnion() {
    SourceLoc Loc = Lex.loc();
    std::string Name = expectIdent("a union name");
    if (!acceptIdent("switch")) {
      error("expected 'switch' in union declaration");
      return false;
    }
    if (!expectPunct("("))
      return false;
    AoiField DiscDecl;
    if (!parseDeclaration(DiscDecl))
      return false;
    if (!expectPunct(")") || !expectPunct("{"))
      return false;
    std::vector<AoiUnionCase> Cases;
    while (!Lex.peek().isPunct("}") && !Lex.peek().is(Token::Kind::Eof)) {
      AoiUnionCase C;
      C.Loc = Lex.loc();
      bool Any = false;
      while (true) {
        if (acceptIdent("case")) {
          int64_t V = 0;
          // Enum discriminators accept enumerator names (already in
          // Consts).
          if (!parseValue(V))
            return false;
          if (!expectPunct(":"))
            return false;
          C.Labels.push_back(AoiCaseLabel{false, V});
          Any = true;
          continue;
        }
        if (acceptIdent("default")) {
          if (!expectPunct(":"))
            return false;
          C.Labels.push_back(AoiCaseLabel{true, 0});
          Any = true;
          continue;
        }
        break;
      }
      if (!Any) {
        error("expected 'case' or 'default'");
        return false;
      }
      if (acceptIdent("void")) {
        C.Type = nullptr;
      } else {
        AoiField F;
        if (!parseDeclaration(F))
          return false;
        C.FieldName = F.Name;
        C.Type = F.Type;
      }
      if (!expectPunct(";"))
        return false;
      Cases.push_back(std::move(C));
    }
    expectPunct("}");
    auto *U = Module->make<AoiUnion>(Name, DiscDecl.Type, std::move(Cases),
                                     Loc);
    Types[Name] = U;
    Module->addNamedType(U);
    return expectPunct(";");
  }

  bool parseTypedef() {
    AoiField F;
    if (!parseDeclaration(F))
      return false;
    auto *TD = Module->make<AoiTypedef>(F.Name, F.Type, F.Loc);
    Types[F.Name] = TD;
    Module->addNamedType(TD);
    return expectPunct(";");
  }

  bool parseConst() {
    std::string Name = expectIdent("a constant name");
    if (!expectPunct("="))
      return false;
    int64_t V = 0;
    if (!parseValue(V))
      return false;
    Consts[Name] = V;
    AoiConst C;
    C.Name = Name;
    C.Type = prim(AoiPrimKind::Long);
    C.Value.K = AoiConstValue::Kind::Int;
    C.Value.IntValue = V;
    Module->addConst(std::move(C));
    return expectPunct(";");
  }

  /// A procedure argument/result type: a type specifier or `void` (plus
  /// `string<>`-style specs rpcgen allows).
  AoiType *parseProcType() {
    if (acceptIdent("void"))
      return prim(AoiPrimKind::Void);
    if (acceptIdent("string")) {
      uint64_t Bound = 0;
      if (acceptPunct("<")) {
        if (!Lex.peek().isPunct(">")) {
          int64_t N = 0;
          if (!parseValue(N))
            return nullptr;
          Bound = static_cast<uint64_t>(N);
        }
        if (!expectPunct(">"))
          return nullptr;
      }
      return Module->make<AoiString>(Bound, Lex.loc());
    }
    return parseTypeSpecifier(false);
  }

  bool parseProgram() {
    std::string ProgName = expectIdent("a program name");
    if (!expectPunct("{"))
      return false;
    struct VersionAcc {
      std::string Name;
      AoiInterface *If;
    };
    std::vector<AoiInterface *> Versions;
    while (acceptIdent("version")) {
      std::string VersName = expectIdent("a version name");
      if (!expectPunct("{"))
        return false;
      AoiInterface *If = Module->makeInterface();
      If->Name = ProgName;
      If->ScopedName = ProgName + "::" + VersName;
      If->Loc = Lex.loc();
      while (!Lex.peek().isPunct("}") &&
             !Lex.peek().is(Token::Kind::Eof)) {
        AoiOperation Op;
        Op.Loc = Lex.loc();
        Op.ReturnType = parseProcType();
        if (!Op.ReturnType)
          return false;
        Op.Name = expectIdent("a procedure name");
        if (!expectPunct("("))
          return false;
        unsigned ArgIdx = 0;
        if (!Lex.peek().isPunct(")")) {
          do {
            AoiType *ArgT = parseProcType();
            if (!ArgT)
              return false;
            const auto *Prim = dyn_cast<AoiPrimitive>(ArgT);
            if (Prim && Prim->prim() == AoiPrimKind::Void)
              break; // `proc(void)`
            AoiParam P;
            P.Dir = AoiParamDir::In;
            P.Name = "arg" + std::to_string(++ArgIdx);
            P.Type = ArgT;
            P.Loc = Lex.loc();
            Op.Params.push_back(std::move(P));
          } while (acceptPunct(","));
        }
        if (!expectPunct(")") || !expectPunct("="))
          return false;
        int64_t Proc = 0;
        if (!parseValue(Proc) || !expectPunct(";"))
          return false;
        Op.RequestCode = static_cast<uint32_t>(Proc);
        If->Operations.push_back(std::move(Op));
      }
      if (!expectPunct("}") || !expectPunct("="))
        return false;
      int64_t Vers = 0;
      if (!parseValue(Vers) || !expectPunct(";"))
        return false;
      If->VersionNumber = static_cast<uint32_t>(Vers);
      Versions.push_back(If);
    }
    if (!expectPunct("}") || !expectPunct("="))
      return false;
    int64_t Prog = 0;
    if (!parseValue(Prog) || !expectPunct(";"))
      return false;
    for (AoiInterface *If : Versions)
      If->ProgramNumber = static_cast<uint32_t>(Prog);
    if (Versions.empty())
      error("program '" + ProgName + "' declares no versions");
    return true;
  }

  bool parseDefinition() {
    if (acceptIdent("const"))
      return parseConst();
    if (acceptIdent("typedef"))
      return parseTypedef();
    if (acceptIdent("enum"))
      return parseEnum();
    if (acceptIdent("struct"))
      return parseStruct();
    if (acceptIdent("union"))
      return parseUnion();
    if (acceptIdent("program"))
      return parseProgram();
    error("expected a definition");
    return false;
  }

  DiagnosticEngine &Diags;
  Lexer Lex;
  std::unique_ptr<AoiModule> Module;
  std::map<std::string, AoiType *> Types;
  std::map<std::string, AoiEnum *> EnumTypes;
  std::map<std::string, int64_t> Consts;
};

} // namespace

std::unique_ptr<AoiModule> flick::parseOncIdl(const std::string &Source,
                                              const std::string &Filename,
                                              DiagnosticEngine &Diags) {
  return OncParser(Source, Filename, Diags).run();
}
