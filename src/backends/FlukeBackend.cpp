//===- backends/FlukeBackend.cpp - Fluke kernel-IPC framing ---------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluke kernel IPC message framing (paper §3.2, "Specialized
/// Transports"): the first eight 32-bit words of a message model the
/// register window the Fluke IPC path transfers in machine registers --
/// the FlukeIpcSim transport charges no copy cost for them.  Small
/// messages therefore ride entirely "in registers".
///
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"

using namespace flick;

namespace {
/// Register-window size in bytes (eight 32-bit words).
constexpr uint64_t RegWindowBytes = 32;
} // namespace

void FlukeBackend::emitRequestHeader(StubGen &G, const PresCInterface &If,
                                     const PresCOperation &Op) {
  CastBuilder &B = G.builder();
  G.openChunk(RegWindowBytes);
  G.putU32(B.unum(Op.RequestCode)); // reg0: operation
  G.putU32(B.id("_xid"));           // reg1: sequence
  G.putU32(B.unum(If.ProgramNumber ? If.ProgramNumber : 1)); // reg2
  G.putU32(B.num(0));               // reg3..reg7 reserved
  G.putU32(B.num(0));
  G.putU32(B.num(0));
  G.putU32(B.num(0));
  G.putU32(B.num(0));
  G.closeChunk();
}

void FlukeBackend::emitReplyHeader(StubGen &G, const PresCInterface &If,
                                   CastExpr *Status) {
  CastBuilder &B = G.builder();
  G.openChunk(RegWindowBytes);
  G.putU32(Status);       // reg0: reply status
  G.putU32(B.id("_xid")); // reg1: sequence
  G.putU32(B.num(0));
  G.putU32(B.num(0));
  G.putU32(B.num(0));
  G.putU32(B.num(0));
  G.putU32(B.num(0));
  G.putU32(B.num(0));
  G.closeChunk();
}

void FlukeBackend::emitReplyHeaderDecode(StubGen &G,
                                         const PresCInterface &If) {
  CastBuilder &B = G.builder();
  G.openChunk(RegWindowBytes);
  G.stmt(B.varDecl(B.prim("uint32_t"), "_status", G.getU32()));
  // reg1..reg7 are consumed with the chunk.
  G.closeChunk();
}

void FlukeBackend::emitRequestHeaderDecode(StubGen &G,
                                           const PresCInterface &If) {
  CastBuilder &B = G.builder();
  G.openChunk(RegWindowBytes);
  G.stmt(B.varDecl(B.prim("uint32_t"), "_opcode", G.getU32()));
  G.stmt(B.varDecl(B.prim("uint32_t"), "_xid", G.getU32()));
  std::string Prog = G.freshVar("_prog");
  G.stmt(B.varDecl(B.prim("uint32_t"), Prog, G.getU32()));
  G.closeChunk();
  G.stmt(B.ifStmt(
      B.ne(B.id(Prog),
           B.unum(If.ProgramNumber ? If.ProgramNumber : 1)),
      B.ret(B.id("FLICK_ERR_NO_SUCH_OP"))));
}
