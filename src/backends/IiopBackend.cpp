//===- backends/IiopBackend.cpp - CORBA IIOP / GIOP message framing ------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"
#include "support/StringExtras.h"
#include <cassert>

using namespace flick;

//===----------------------------------------------------------------------===//
// CORBA IIOP (GIOP 1.0 over little-endian CDR)
//===----------------------------------------------------------------------===//

namespace {

/// "GIOP" as the little-endian word the demux compares against.
constexpr uint32_t GiopMagicLE = 0x504F4947u;

/// The operation name as it travels: length-counted including the NUL,
/// padded to a word boundary with NULs.
std::string paddedOpName(const std::string &Name) {
  std::string Bytes = Name;
  Bytes.push_back('\0');
  while (Bytes.size() % 4 != 0)
    Bytes.push_back('\0');
  return Bytes;
}

std::vector<uint32_t> opNameWords(const std::string &Name) {
  std::string Bytes = paddedOpName(Name);
  std::vector<uint32_t> Words;
  for (size_t I = 0; I < Bytes.size(); I += 4) {
    uint32_t W = static_cast<uint8_t>(Bytes[I]) |
                 static_cast<uint32_t>(static_cast<uint8_t>(Bytes[I + 1]))
                     << 8 |
                 static_cast<uint32_t>(static_cast<uint8_t>(Bytes[I + 2]))
                     << 16 |
                 static_cast<uint32_t>(static_cast<uint8_t>(Bytes[I + 3]))
                     << 24;
    Words.push_back(W);
  }
  return Words;
}

/// Emits the 12-byte GIOP header into an open chunk.
void putGiopHeader(StubGen &G, uint8_t MsgType) {
  CastBuilder &B = G.builder();
  G.putBytes("GIOP");
  G.putU8(B.num(1)); // version 1
  G.putU8(B.num(0)); // .0
  G.putU8(B.num(1)); // flags: little-endian
  G.putU8(B.num(MsgType));
  G.putU32(B.num(0)); // message size, patched afterwards
}

/// Patches the GIOP message-size field recorded by markPosition().  With
/// the gather pass armed the body length is the *logical* length
/// (flick_buf_total: owned + borrowed bytes); without it the historical
/// `len` expression is kept so default output stays byte-identical.
void patchGiopSize(StubGen &G) {
  CastBuilder &B = G.builder();
  CastExpr *Base = B.add(B.arrow(G.bufExpr(), "data"),
                         B.add(B.id(G.lastMark()), B.num(8)));
  CastExpr *Len = G.options().GatherMinBytes > 0
                      ? B.call("flick_buf_total", {G.bufExpr()})
                      : B.arrow(G.bufExpr(), "len");
  CastExpr *Size = B.castTo(
      B.prim("uint32_t"),
      B.sub(B.sub(Len, B.id(G.lastMark())), B.num(12)));
  G.stmt(B.exprStmt(B.call("flick_enc_u32le", {Base, Size})));
}

} // namespace

void IiopBackend::emitRequestHeader(StubGen &G, const PresCInterface &If,
                                    const PresCOperation &Op) {
  CastBuilder &B = G.builder();
  G.markPosition();
  std::string Name = paddedOpName(Op.IdlName);
  // GIOP header + request header; the operation name is a compile-time
  // constant, so the whole thing is one fixed chunk.
  uint64_t Bytes = 12 + 4 /*svc ctx*/ + 4 /*request id*/ +
                   4 /*response_expected*/ + 4 /*key len*/ + 4 /*key*/ +
                   4 /*name len*/ + Name.size() + 4 /*principal len*/;
  G.openChunk((Bytes + 7) / 8 * 8);
  putGiopHeader(G, /*MsgType=*/0);
  G.putU32(B.num(0));                       // service context count
  G.putU32(B.id("_xid"));                   // request id
  G.putU32(B.num(Op.Oneway ? 0 : 1));       // response_expected (widened)
  G.putU32(B.num(4));                       // object key length
  G.putBytes("OBJ1");                       // object key
  G.putU32(B.unum(Op.IdlName.size() + 1));  // name length incl. NUL
  G.putBytes(Name);
  G.putU32(B.num(0)); // principal length
  G.closeChunk();
  G.alignTo(8);
}

void IiopBackend::emitRequestFinish(StubGen &G, const PresCInterface &If,
                                    const PresCOperation &Op) {
  patchGiopSize(G);
}

void IiopBackend::emitReplyHeader(StubGen &G, const PresCInterface &If,
                                  CastExpr *Status) {
  CastBuilder &B = G.builder();
  G.markPosition();
  G.openChunk(24);
  putGiopHeader(G, /*MsgType=*/1);
  G.putU32(B.num(0));     // service context count
  G.putU32(B.id("_xid")); // request id
  G.putU32(Status);       // GIOP reply_status == FLICK_REPLY_*
  G.closeChunk();
}

void IiopBackend::emitReplyFinish(StubGen &G, const PresCInterface &If) {
  patchGiopSize(G);
}

void IiopBackend::emitReplyHeaderDecode(StubGen &G,
                                        const PresCInterface &If) {
  CastBuilder &B = G.builder();
  G.openChunk(24);
  G.stmt(B.ifStmt(B.ne(G.getU32(), B.unum(GiopMagicLE)),
                  B.ret(B.id("FLICK_ERR_DECODE"))));
  G.getU8(); // version major
  G.getU8(); // version minor
  G.getU8(); // flags
  G.stmt(B.ifStmt(B.ne(G.getU8(), B.num(1)),
                  B.ret(B.id("FLICK_ERR_DECODE")))); // Reply
  G.getU32();                                        // message size
  G.getU32();                                        // service contexts
  G.getU32();                                        // request id
  G.stmt(B.varDecl(B.prim("uint32_t"), "_status", G.getU32()));
  G.closeChunk();
}

void IiopBackend::emitRequestHeaderDecode(StubGen &G,
                                          const PresCInterface &If) {
  CastBuilder &B = G.builder();
  // Fixed prefix: GIOP header through the object key.
  G.openChunk(32);
  G.stmt(B.ifStmt(B.ne(G.getU32(), B.unum(GiopMagicLE)),
                  B.ret(B.id("FLICK_ERR_DECODE"))));
  G.getU8();
  G.getU8();
  G.getU8();
  G.stmt(B.ifStmt(B.ne(G.getU8(), B.num(0)),
                  B.ret(B.id("FLICK_ERR_DECODE")))); // Request
  G.getU32();                                        // message size
  G.getU32();                                        // service contexts
  G.stmt(B.varDecl(B.prim("uint32_t"), "_xid", G.getU32()));
  G.getU32(); // response_expected (widened)
  G.stmt(B.ifStmt(B.ne(G.getU32(), B.num(4)),
                  B.ret(B.id("FLICK_ERR_DECODE")))); // key length
  G.getU32();                                        // key bytes
  G.closeChunk();
  // Operation name: length word, then the padded bytes.
  G.openChunk(4);
  G.stmt(B.varDecl(B.prim("uint32_t"), "_nlen", G.getU32()));
  G.closeChunk();
  G.stmt(B.ifStmt(
      B.bin("||", B.bin("<", B.id("_nlen"), B.num(1)),
            B.bin(">", B.id("_nlen"), B.num(1024))),
      B.ret(B.id("FLICK_ERR_DECODE"))));
  G.checkAvail(B.id("_nlen"));
  G.stmt(B.varDecl(
      B.constPtr(B.prim("uint8_t")), "_opname",
      B.call("flick_buf_take", {G.bufExpr(), B.id("_nlen")})));
  G.stmt(B.rawStmt("if (flick_buf_align_read(_req, 4)) "
                   "return FLICK_ERR_DECODE;"));
  G.openChunk(4); // principal length (ignored)
  G.getU32();
  G.closeChunk();
  // The encoder rounds its fixed header chunk up to 8 bytes; skip the
  // same padding here so the body starts on the shared boundary.
  G.alignTo(8);
}

void IiopBackend::emitDispatchDemux(
    StubGen &G, const PresCInterface &If,
    const std::function<std::vector<CastStmt *>(const PresCOperation &)>
        &CaseBody) {
  CastBuilder &B = G.builder();
  emitRequestHeaderDecode(G, If);

  // Word-at-a-time operation-name matching (paper §3.3, "Message
  // Demultiplexing"): nested switches over 32-bit words of the padded
  // name.  The terminating NUL is inside the counted bytes, so no padded
  // word sequence is a prefix of another operation's.
  struct Cand {
    const PresCOperation *Op;
    std::vector<uint32_t> Words;
  };
  std::vector<Cand> Cands;
  for (const PresCOperation &Op : If.Ops)
    Cands.push_back(Cand{&Op, opNameWords(Op.IdlName)});

  auto WordExpr = [&](size_t Idx) {
    CastExpr *Addr = Idx == 0
                         ? B.id("_opname")
                         : B.add(B.id("_opname"), B.unum(4 * Idx));
    return B.call("flick_dec_u32ne", {Addr});
  };

  std::function<std::vector<CastStmt *>(size_t, std::vector<Cand>)> Build =
      [&](size_t Depth,
          std::vector<Cand> Subset) -> std::vector<CastStmt *> {
    std::vector<CastStmt *> S;
    if (Subset.size() == 1) {
      const Cand &C = Subset[0];
      // Verify the remaining words and the exact length, then dispatch.
      for (size_t I = Depth; I < C.Words.size(); ++I)
        S.push_back(B.ifStmt(B.ne(WordExpr(I), B.unum(C.Words[I])),
                             B.ret(B.id("FLICK_ERR_NO_SUCH_OP"))));
      S.push_back(B.ifStmt(
          B.ne(B.id("_nlen"), B.unum(C.Op->IdlName.size() + 1)),
          B.ret(B.id("FLICK_ERR_NO_SUCH_OP"))));
      std::vector<CastStmt *> Body = CaseBody(*C.Op);
      S.insert(S.end(), Body.begin(), Body.end());
      return S;
    }
    // Group by the word at this depth.  (All candidates have a word here:
    // a fully-consumed shorter name differs in its final padded word.)
    std::map<uint32_t, std::vector<Cand>> Groups;
    for (const Cand &C : Subset) {
      assert(Depth < C.Words.size() && "padded names cannot be prefixes");
      Groups[C.Words[Depth]].push_back(C);
    }
    std::vector<CastSwitchCase> Cases;
    for (auto &[W, Grp] : Groups) {
      CastSwitchCase C;
      C.Values.push_back(B.unum(W));
      C.Stmts = Build(Depth + 1, Grp);
      C.FallsThrough = true;
      Cases.push_back(std::move(C));
    }
    CastSwitchCase D;
    D.Stmts.push_back(B.ret(B.id("FLICK_ERR_NO_SUCH_OP")));
    D.FallsThrough = true;
    Cases.push_back(std::move(D));
    S.push_back(B.switchStmt(WordExpr(Depth), std::move(Cases)));
    return S;
  };

  for (CastStmt *S : Build(0, Cands))
    G.stmt(S);
  G.stmt(B.ret(B.id("FLICK_ERR_NO_SUCH_OP")));
}

