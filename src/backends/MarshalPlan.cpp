//===- backends/MarshalPlan.cpp - Marshal-plan IR and analysis ------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis half of the back end: shape classification, fixed-layout
/// measurement, host/wire bit-identity, memcpy run merging, structural
/// type keys, and the strategy-neutral plan builder.  Nothing in this file
/// touches CAST output; the pass pipeline (Passes.cpp) rewrites the plans
/// built here and the plan emitter (PlanEmit.cpp) lowers them.
///
//===----------------------------------------------------------------------===//

#include "backends/MarshalPlan.h"
#include <algorithm>
#include <cassert>
#include <map>

using namespace flick;

//===----------------------------------------------------------------------===//
// Shared shape classification
//===----------------------------------------------------------------------===//

PKind flick::classifyPres(const PresNode *P) {
  if (!P)
    return PKind::Void;
  switch (P->kind()) {
  case PresNode::Kind::Void:
    return PKind::Void;
  case PresNode::Kind::Prim:
  case PresNode::Kind::Enum:
    return PKind::Scalar;
  case PresNode::Kind::String:
    return PKind::Str;
  case PresNode::Kind::FixedArray:
    return PKind::FixArr;
  case PresNode::Kind::OptPtr:
    return PKind::Opt;
  case PresNode::Kind::Struct:
  case PresNode::Kind::Counted:
  case PresNode::Kind::Union:
    return PKind::Agg;
  }
  return PKind::Void;
}

namespace {

bool containsUnionImpl(const PresNode *P, std::set<const PresNode *> &Seen) {
  if (!P || !Seen.insert(P).second)
    return false;
  switch (P->kind()) {
  case PresNode::Kind::Union:
    return true;
  case PresNode::Kind::Struct:
    for (const PresField &F : cast<PresStruct>(P)->fields())
      if (containsUnionImpl(F.Pres, Seen))
        return true;
    return false;
  case PresNode::Kind::FixedArray:
    return containsUnionImpl(cast<PresFixedArray>(P)->elem(), Seen);
  case PresNode::Kind::Counted:
    return containsUnionImpl(cast<PresCounted>(P)->elem(), Seen);
  case PresNode::Kind::OptPtr:
    return containsUnionImpl(cast<PresOptPtr>(P)->elem(), Seen);
  default:
    return false;
  }
}

} // namespace

bool flick::presContainsUnion(const PresNode *P) {
  std::set<const PresNode *> Seen;
  return containsUnionImpl(P, Seen);
}

bool flick::isAtomicMint(const MintType *T) {
  switch (T->kind()) {
  case MintType::Kind::Integer:
  case MintType::Kind::Float:
  case MintType::Kind::Char:
  case MintType::Kind::Boolean:
    return true;
  default:
    return false;
  }
}

bool flick::isByteElem(const WireLayout &L, const MintType *T) {
  (void)L;
  if (T->kind() == MintType::Kind::Char)
    return true;
  const auto *I = dyn_cast<MintInteger>(T);
  return I && I->bits() == 8;
}

const char *flick::endianSuffix(WireKind K) {
  switch (K) {
  case WireKind::Xdr:
  case WireKind::CdrBE:
    return "be";
  case WireKind::CdrLE:
    return "le";
  case WireKind::MachTyped:
  case WireKind::FlukeReg:
    return "ne";
  }
  return "ne";
}

std::string flick::encFnFor(const WireLayout &L, unsigned Size) {
  if (Size == 1)
    return "flick_enc_u8";
  return "flick_enc_u" + std::to_string(Size * 8) + endianSuffix(L.kind());
}

std::string flick::decFnFor(const WireLayout &L, unsigned Size) {
  if (Size == 1)
    return "flick_dec_u8";
  return "flick_dec_u" + std::to_string(Size * 8) + endianSuffix(L.kind());
}

unsigned flick::chunkAlignFor(const WireLayout &L) {
  return L.kind() == WireKind::Xdr ? 4 : 8;
}

//===----------------------------------------------------------------------===//
// Fixed-layout measurement
//===----------------------------------------------------------------------===//

FixedLayout LayoutMeasurer::measure(const PresNode *P) {
  FixedLayout FL;
  uint64_t Off = 0;
  FL.IsFixed = walk(P, Off, FL.MaxAlign);
  FL.Size = Off;
  return FL;
}

FixedLayout
LayoutMeasurer::measureSeq(const std::vector<const PresNode *> &Items) {
  FixedLayout FL;
  uint64_t Off = 0;
  for (const PresNode *P : Items)
    if (!walk(P, Off, FL.MaxAlign)) {
      FL.IsFixed = false;
      break;
    }
  FL.Size = Off;
  return FL;
}

bool LayoutMeasurer::walk(const PresNode *P, uint64_t &Off,
                          unsigned &MaxAlign) {
  if (!P)
    return true;
  if (!Seen.insert(P).second)
    return false; // recursive types are never fixed-size
  bool Ok = walkNew(P, Off, MaxAlign);
  Seen.erase(P);
  return Ok;
}

bool LayoutMeasurer::walkNew(const PresNode *P, uint64_t &Off,
                             unsigned &MaxAlign) {
  switch (P->kind()) {
  case PresNode::Kind::Void:
    return true;
  case PresNode::Kind::Prim:
  case PresNode::Kind::Enum: {
    unsigned A = L.atomAlign(P->mint());
    unsigned S = L.atomSize(P->mint());
    Off = alignUpTo(Off, A);
    Off += S;
    MaxAlign = std::max(MaxAlign, A);
    return true;
  }
  case PresNode::Kind::Struct: {
    for (const PresField &F : cast<PresStruct>(P)->fields())
      if (!walk(F.Pres, Off, MaxAlign))
        return false;
    return true;
  }
  case PresNode::Kind::FixedArray: {
    const auto *A = cast<PresFixedArray>(P);
    const MintType *EM = A->elem()->mint();
    if (isByteElem(L, EM)) {
      unsigned PU = L.padUnit();
      Off = alignUpTo(Off, PU);
      Off += L.padded(A->count());
      MaxAlign = std::max<unsigned>(MaxAlign, PU);
      return true;
    }
    FixedLayout EL;
    {
      uint64_t EOff = 0;
      if (!walk(A->elem(), EOff, EL.MaxAlign))
        return false;
      EL.Size = EOff;
    }
    uint64_t Stride =
        L.padded(alignUpTo(EL.Size, std::max<uint64_t>(EL.MaxAlign, 1)));
    Off = alignUpTo(Off, std::max<unsigned>(EL.MaxAlign, 1));
    Off += A->count() * Stride;
    MaxAlign = std::max(MaxAlign, EL.MaxAlign);
    return true;
  }
  case PresNode::Kind::Counted:
  case PresNode::Kind::String:
  case PresNode::Kind::OptPtr:
  case PresNode::Kind::Union:
    return false;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Aggregate bit-identity
//===----------------------------------------------------------------------===//

CScalar flick::hostScalarOf(const PresNode *P) {
  if (isa<PresEnum>(P))
    return {4, 4};
  const MintType *T = P->mint();
  switch (T->kind()) {
  case MintType::Kind::Integer: {
    unsigned S = cast<MintInteger>(T)->bits() / 8;
    return {S, S};
  }
  case MintType::Kind::Float: {
    unsigned S = cast<MintFloat>(T)->bits() / 8;
    return {S, S};
  }
  case MintType::Kind::Char:
  case MintType::Kind::Boolean:
    return {1, 1};
  default:
    return {0, 0};
  }
}

bool flick::walkBitIdentical(const PresNode *P, const WireLayout &L,
                             uint64_t &WOff, uint64_t &COff,
                             unsigned &CAlign) {
  switch (P->kind()) {
  case PresNode::Kind::Prim:
  case PresNode::Kind::Enum: {
    CScalar H = hostScalarOf(P);
    if (!H.Size || !L.hostIdentical(P->mint()))
      return false;
    unsigned WA = L.atomAlign(P->mint());
    unsigned WS = L.atomSize(P->mint());
    WOff = alignUpTo(WOff, WA);
    COff = alignUpTo(COff, H.Align);
    if (WOff != COff || WS != H.Size)
      return false;
    WOff += WS;
    COff += H.Size;
    CAlign = std::max(CAlign, H.Align);
    return true;
  }
  case PresNode::Kind::Struct: {
    uint64_t SW = WOff, SC = COff;
    unsigned Inner = 1;
    for (const PresField &F : cast<PresStruct>(P)->fields())
      if (!walkBitIdentical(F.Pres, L, WOff, COff, Inner))
        return false;
    // C pads the struct tail to its alignment; the wire stride (computed
    // by LayoutMeasurer) pads to max member alignment the same way, so
    // require the padded ends to agree.
    uint64_t CEnd = alignUpTo(COff, Inner);
    uint64_t WEnd = alignUpTo(WOff, Inner);
    if (CEnd - SC != WEnd - SW)
      return false;
    WOff = WEnd;
    COff = CEnd;
    CAlign = std::max(CAlign, Inner);
    return true;
  }
  case PresNode::Kind::FixedArray: {
    const auto *A = cast<PresFixedArray>(P);
    for (uint64_t I = 0; I != A->count(); ++I)
      if (!walkBitIdentical(A->elem(), L, WOff, COff, CAlign))
        return false;
    return true;
  }
  default:
    return false;
  }
}

bool flick::presBitIdentical(const PresNode *Elem, const WireLayout &L,
                             uint64_t &StrideOut) {
  uint64_t W = 0, C = 0;
  unsigned Align = 1;
  if (!walkBitIdentical(Elem, L, W, C, Align))
    return false;
  uint64_t CStride = alignUpTo(C, Align);
  // The wire stride emitArrayElems uses comes from LayoutMeasurer.
  LayoutMeasurer M(L);
  FixedLayout FL = M.measure(Elem);
  if (!FL.IsFixed)
    return false;
  uint64_t WStride =
      L.padded(alignUpTo(FL.Size, std::max<uint64_t>(FL.MaxAlign, 1)));
  if (CStride != WStride)
    return false;
  StrideOut = CStride;
  return true;
}

//===----------------------------------------------------------------------===//
// Memcpy run merging
//===----------------------------------------------------------------------===//
//
// A lockstep wire/host walk that mirrors LayoutMeasurer::walkNew on the
// wire side.  It differs from walkBitIdentical in one load-bearing rule:
// struct tails pad only the *host* side here, because walkNew lays struct
// members inline with no tail padding, whereas array elements (where
// walkBitIdentical is used) stride over the padded size on both sides.
// Tail divergence then shows up as a later leaf-offset mismatch or as a
// final HostSize != WireSize, which denseBitIdentical rejects.

namespace {

class RunCollector {
public:
  explicit RunCollector(const WireLayout &L) : L(L) {}

  bool walk(const PresNode *P, uint64_t &WOff, uint64_t &COff,
            unsigned &CAlign, MemcpyRuns &R) {
    if (!P)
      return true;
    if (!Seen.insert(P).second)
      return false;
    bool Ok = walkNew(P, WOff, COff, CAlign, R);
    Seen.erase(P);
    return Ok;
  }

private:
  void addLeaf(MemcpyRuns &R, uint64_t Off, uint64_t Bytes) {
    if (!R.Runs.empty() && R.Runs.back().Off + R.Runs.back().Bytes == Off)
      R.Runs.back().Bytes += Bytes;
    else
      R.Runs.push_back({Off, Bytes});
  }

  bool walkNew(const PresNode *P, uint64_t &WOff, uint64_t &COff,
               unsigned &CAlign, MemcpyRuns &R) {
    switch (P->kind()) {
    case PresNode::Kind::Void:
      return true;
    case PresNode::Kind::Prim:
    case PresNode::Kind::Enum: {
      CScalar H = hostScalarOf(P);
      if (!H.Size || !L.hostIdentical(P->mint()))
        return false;
      unsigned WA = L.atomAlign(P->mint());
      unsigned WS = L.atomSize(P->mint());
      WOff = alignUpTo(WOff, WA);
      COff = alignUpTo(COff, H.Align);
      if (WOff != COff || WS != H.Size)
        return false;
      addLeaf(R, WOff, WS);
      WOff += WS;
      COff += H.Size;
      CAlign = std::max(CAlign, H.Align);
      ++R.Leaves;
      return true;
    }
    case PresNode::Kind::Struct: {
      unsigned Inner = 1;
      for (const PresField &F : cast<PresStruct>(P)->fields())
        if (!walk(F.Pres, WOff, COff, Inner, R))
          return false;
      // Host side pads the struct tail; the wire lays the next sibling
      // straight after the last member (walkNew semantics).
      COff = alignUpTo(COff, Inner);
      CAlign = std::max(CAlign, Inner);
      return true;
    }
    case PresNode::Kind::FixedArray: {
      const auto *A = cast<PresFixedArray>(P);
      const MintType *EM = A->elem()->mint();
      if (isByteElem(L, EM)) {
        unsigned PU = L.padUnit();
        WOff = alignUpTo(WOff, PU);
        if (WOff != COff)
          return false;
        if (A->count()) {
          addLeaf(R, WOff, A->count());
          R.Leaves += static_cast<unsigned>(A->count());
        }
        WOff += L.padded(A->count());
        COff += A->count();
        return true;
      }
      LayoutMeasurer M(L);
      FixedLayout EL = M.measure(A->elem());
      if (!EL.IsFixed)
        return false;
      uint64_t WStride =
          L.padded(alignUpTo(EL.Size, std::max<uint64_t>(EL.MaxAlign, 1)));
      WOff = alignUpTo(WOff, std::max<unsigned>(EL.MaxAlign, 1));
      for (uint64_t I = 0; I != A->count(); ++I) {
        uint64_t WS = WOff, CS = COff;
        unsigned ElemCAlign = 1;
        if (!walk(A->elem(), WOff, COff, ElemCAlign, R))
          return false;
        WOff = WS + WStride;
        COff = CS + alignUpTo(COff - CS, ElemCAlign);
        CAlign = std::max(CAlign, ElemCAlign);
      }
      return true;
    }
    case PresNode::Kind::Counted:
    case PresNode::Kind::String:
    case PresNode::Kind::OptPtr:
    case PresNode::Kind::Union:
      return false;
    }
    return false;
  }

  const WireLayout &L;
  std::set<const PresNode *> Seen;
};

} // namespace

MemcpyRuns flick::memcpyRunsOf(const PresNode *P, const WireLayout &L) {
  MemcpyRuns R;
  uint64_t WOff = 0, COff = 0;
  unsigned CAlign = 1;
  RunCollector C(L);
  if (!C.walk(P, WOff, COff, CAlign, R)) {
    R.Runs.clear();
    R.Leaves = 0;
    R.Identical = false;
    return R;
  }
  R.WireSize = WOff;
  R.HostSize = alignUpTo(COff, CAlign);
  R.Identical = true;
  return R;
}

bool flick::denseBitIdentical(const MemcpyRuns &R) {
  return R.Identical && R.Leaves >= 2 && R.WireSize >= 8 &&
         R.Runs.size() == 1 && R.Runs[0].Off == 0 &&
         R.Runs[0].Bytes == R.WireSize && R.HostSize == R.WireSize;
}

//===----------------------------------------------------------------------===//
// Structural keys
//===----------------------------------------------------------------------===//

namespace {

std::string atomKeyOf(const MintType *T) {
  switch (T->kind()) {
  case MintType::Kind::Integer: {
    const auto *I = cast<MintInteger>(T);
    return (I->isSigned() ? "i" : "u") + std::to_string(I->bits());
  }
  case MintType::Kind::Float:
    return "f" + std::to_string(cast<MintFloat>(T)->bits());
  case MintType::Kind::Char:
    return "c";
  case MintType::Kind::Boolean:
    return "b";
  default:
    return "?";
  }
}

std::string ctypeKeyOf(const PresNode *P) {
  return P->ctype() ? printCastType(P->ctype(), "") : "?";
}

std::string allocKeyOf(const AllocSemantics &A) {
  std::string S;
  if (A.AllowBufferAlias)
    S += 'a';
  if (A.AllowStackAlloc)
    S += 's';
  if (A.AllowHeap)
    S += 'h';
  return S;
}

std::string boundKeyOf(const PresNode *P) {
  const auto *MA = dyn_cast<MintArray>(P->mint());
  if (!MA || !MA->isBounded())
    return "u";
  return "b" + std::to_string(MA->maxLen());
}

void structureKeyImpl(const PresNode *P, std::string &Out,
                      std::map<const PresNode *, unsigned> &Seen) {
  if (!P) {
    Out += "v;";
    return;
  }
  auto Known = Seen.find(P);
  if (Known != Seen.end()) {
    Out += "@" + std::to_string(Known->second) + ";";
    return;
  }
  Seen.emplace(P, static_cast<unsigned>(Seen.size()));
  switch (P->kind()) {
  case PresNode::Kind::Void:
    Out += "v;";
    return;
  case PresNode::Kind::Prim:
    Out += "p(" + atomKeyOf(P->mint()) + "," + ctypeKeyOf(P) + ");";
    return;
  case PresNode::Kind::Enum:
    Out += "e(" + atomKeyOf(P->mint()) + "," + ctypeKeyOf(P) + ");";
    return;
  case PresNode::Kind::Struct: {
    Out += "s(" + ctypeKeyOf(P) + "){";
    for (const PresField &F : cast<PresStruct>(P)->fields()) {
      Out += F.CName + ":";
      structureKeyImpl(F.Pres, Out, Seen);
    }
    Out += "};";
    return;
  }
  case PresNode::Kind::FixedArray: {
    const auto *A = cast<PresFixedArray>(P);
    Out += "a(" + std::to_string(A->count()) + "," + ctypeKeyOf(P) + ")";
    structureKeyImpl(A->elem(), Out, Seen);
    return;
  }
  case PresNode::Kind::Counted: {
    const auto *C = cast<PresCounted>(P);
    Out += "c(" + C->lenField() + "," + C->bufField() + "," + C->maxField() +
           "," + boundKeyOf(P) + "," + allocKeyOf(C->alloc()) + "," +
           ctypeKeyOf(P) + ")";
    structureKeyImpl(C->elem(), Out, Seen);
    return;
  }
  case PresNode::Kind::String:
    Out += "str(" + boundKeyOf(P) + "," +
           allocKeyOf(cast<PresString>(P)->alloc()) + ");";
    return;
  case PresNode::Kind::OptPtr: {
    const auto *O = cast<PresOptPtr>(P);
    Out += "o(" + allocKeyOf(O->alloc()) + "," + ctypeKeyOf(P) + ")";
    structureKeyImpl(O->elem(), Out, Seen);
    return;
  }
  case PresNode::Kind::Union: {
    const auto *U = cast<PresUnion>(P);
    Out += "u(" + ctypeKeyOf(P) + "," + U->discField() + "," +
           U->unionField() + ")[";
    structureKeyImpl(U->discPres(), Out, Seen);
    Out += "]{";
    for (const PresUnionArm &Arm : U->arms()) {
      for (int64_t V : Arm.CaseValues)
        Out += std::to_string(V) + ",";
      if (Arm.IsDefault)
        Out += "d";
      Out += ":" + Arm.ArmField + ":";
      structureKeyImpl(Arm.Pres, Out, Seen);
    }
    Out += "};";
    return;
  }
  }
}

} // namespace

std::string flick::presStructureKey(const PresNode *P) {
  std::string Out;
  std::map<const PresNode *, unsigned> Seen;
  structureKeyImpl(P, Out, Seen);
  return Out;
}

//===----------------------------------------------------------------------===//
// The plan builder
//===----------------------------------------------------------------------===//

SeqPlan flick::buildSeqPlan(const std::vector<const PresNode *> &Items,
                            const std::vector<std::string> &Names,
                            const WireLayout &L, bool Encode, bool ServerSide,
                            const std::set<const PresNode *> &Active) {
  SeqPlan Plan;
  Plan.Encode = Encode;
  Plan.ServerSide = ServerSide;
  for (size_t I = 0; I != Items.size(); ++I) {
    const PresNode *P = Items[I];
    PlanItem It;
    It.Pres = P;
    It.Name = I < Names.size() && !Names[I].empty()
                  ? Names[I]
                  : "item" + std::to_string(I);
    PKind K = classifyPres(P);
    if (K == PKind::Void) {
      // Keep the item (Items stays index-parallel with the value list),
      // but a void marshals nothing: no step.
      Plan.Items.push_back(std::move(It));
      continue;
    }
    It.Scalar = K == PKind::Scalar;
    It.HasUnion = presContainsUnion(P);
    It.Recursive = Active.count(P) != 0;
    LayoutMeasurer M(L);
    FixedLayout FL = M.measure(P);
    It.Fixed = FL.IsFixed;
    if (It.Fixed) {
      It.FixedSize = FL.Size;
      It.FixedAlign = FL.MaxAlign;
      It.Storage = StorageClass::Fixed;
      It.MaxBytes = FL.Size;
    } else if (P->mint()) {
      StorageInfo SI = analyzeStorage(P->mint(), L);
      It.Storage = SI.Class;
      It.MaxBytes = SI.MaxBytes;
    }
    // Build-time strategy mirrors the no-pass world: only recursion forces
    // nothing, every non-scalar goes out of line, and only scalars may
    // coalesce.  The inline pass relaxes both.
    It.OutOfLine = It.Recursive || !It.Scalar;
    It.CoalesceOK = It.Scalar && It.Fixed && !It.HasUnion && !It.Recursive;
    auto Idx = static_cast<unsigned>(Plan.Items.size());
    Plan.Items.push_back(std::move(It));
    MarshalStep St;
    St.Kind = StepKind::VariableSegment;
    St.Item = Idx;
    Plan.Steps.push_back(St);
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// Plan dumping
//===----------------------------------------------------------------------===//

namespace {

const char *hookName(HookKind K) {
  switch (K) {
  case HookKind::RequestHeader:
    return "request_header";
  case HookKind::RequestFinish:
    return "request_finish";
  case HookKind::ReplyHeader:
    return "reply_header";
  case HookKind::ReplyFinish:
    return "reply_finish";
  }
  return "?";
}

std::string itos(uint64_t V) { return std::to_string(V); }

} // namespace

std::string flick::dumpSeqPlanSteps(const SeqPlan &Plan) {
  std::string Out;
  for (const MarshalStep &St : Plan.Steps) {
    switch (St.Kind) {
    case StepKind::FramingHook:
      Out += std::string("  framing ") + hookName(St.Hook) + "\n";
      break;
    case StepKind::TraceHook:
      Out += std::string("  trace ") + (St.TraceBegin ? "begin " : "end") +
             (St.TraceBegin ? St.TraceLabel : "") + "\n";
      break;
    case StepKind::VariableSegment: {
      Out += "  segment [" + itos(St.Item) + "] " + Plan.Items[St.Item].Name;
      if (St.PreEnsureBytes)
        Out += " pre_ensure=" + itos(St.PreEnsureBytes);
      if (St.Alloc == AllocKind::Arena)
        Out += " alloc=arena";
      else if (St.Alloc == AllocKind::Heap)
        Out += " alloc=heap";
      if (St.Alias)
        Out += " alias";
      Out += "\n";
      break;
    }
    case StepKind::GatherRef:
      Out += "  GatherRef [" + itos(St.Item) + "] " + Plan.Items[St.Item].Name +
             " min_bytes=" + itos(St.GatherMinBytes) + "\n";
      break;
    case StepKind::FixedChunk: {
      Out += "  chunk size=" + itos(St.Size) + " align=" + itos(St.Align) +
             "\n";
      for (const PlanMember &M : St.Members) {
        Out += "    [" + itos(M.Item) + "] " + Plan.Items[M.Item].Name +
               " off=" + itos(M.WireOff) + " size=" + itos(M.WireSize);
        if (M.Memcpy)
          Out += " memcpy=" + itos(M.MemcpyBytes);
        Out += "\n";
      }
      break;
    }
    }
  }
  return Out;
}

std::string flick::dumpSeqPlan(const SeqPlan &Before, const SeqPlan &After) {
  std::string Out = "== " + After.Label + " (";
  Out += After.Encode ? "encode" : "decode";
  if (After.ServerSide)
    Out += ", server";
  Out += ")\n";
  Out += "items:\n";
  for (size_t I = 0; I != After.Items.size(); ++I) {
    const PlanItem &It = After.Items[I];
    Out += "  [" + itos(I) + "] " + It.Name + ":";
    if (classifyPres(It.Pres) == PKind::Void)
      Out += " void";
    else if (It.Fixed)
      Out += " fixed size=" + itos(It.FixedSize) +
             " align=" + itos(It.FixedAlign);
    else if (It.Storage == StorageClass::Bounded)
      Out += " bounded max=" + itos(It.MaxBytes);
    else
      Out += " unbounded";
    if (It.Scalar)
      Out += " scalar";
    if (It.HasUnion)
      Out += " union";
    if (It.Recursive)
      Out += " recursive";
    if (It.OutOfLine)
      Out += " out-of-line";
    if (It.CoalesceOK)
      Out += " coalesce";
    Out += "\n";
  }
  Out += "before:\n" + dumpSeqPlanSteps(Before);
  Out += "after:\n" + dumpSeqPlanSteps(After);
  Out += "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Shared policy predicates
//===----------------------------------------------------------------------===//

uint64_t flick::boundedPreEnsureBytes(const PresNode *P, const WireLayout &L,
                                      uint64_t Threshold) {
  if (!P || !P->mint())
    return 0;
  StorageInfo SI = analyzeStorage(P->mint(), L);
  if (SI.Class != StorageClass::Bounded)
    return 0;
  // +16 covers the length words and framing slop around the segment.
  if (SI.MaxBytes + 16 > Threshold)
    return 0;
  return SI.MaxBytes + 16;
}

bool flick::aliasableCountedElem(const PresCounted *P, const WireLayout &L) {
  const MintType *EM = P->elem()->mint();
  if (!isAtomicMint(EM) || !L.hostIdentical(EM))
    return false;
  // XDR pads every element to 4 bytes, so only <=4-byte atoms lie
  // contiguously in the buffer.
  return L.atomSize(EM) <= 4 || L.kind() != WireKind::Xdr;
}

bool flick::aliasableString(const PresString *P, const WireLayout &L) {
  (void)P;
  // The presented char* can only point into the buffer when the wire
  // carries the terminating NUL (CDR counts it; XDR does not).
  return L.stringCountsNul();
}

bool flick::gatherableSegment(const PresNode *P, const WireLayout &L,
                              bool MemcpyOn) {
  const PresNode *Elem = nullptr;
  if (const auto *C = dyn_cast_or_null<PresCounted>(P))
    Elem = C->elem();
  else if (const auto *A = dyn_cast_or_null<PresFixedArray>(P))
    Elem = A->elem();
  if (!Elem)
    return false;
  const MintType *EM = Elem->mint();
  // Byte arrays always lower to one dense copy from presented storage.
  if (isByteElem(L, EM))
    return true;
  // The wider cases are the memcpy pass's bulk copies: without that pass
  // the emitter marshals per element and there is no copy to replace.
  if (!MemcpyOn)
    return false;
  if (isAtomicMint(EM) && L.hostIdentical(EM))
    return true;
  uint64_t Stride = 0;
  return classifyPres(Elem) != PKind::Scalar && Elem->ctype() &&
         presBitIdentical(Elem, L, Stride);
}
