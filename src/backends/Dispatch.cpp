//===- backends/Dispatch.cpp - Server dispatch generation -----------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Server-side dispatch: the default numeric demultiplexer, per-operation
/// dispatch case bodies (decode -> work function -> reply), and the
/// dispatch function itself (paper §3.3, "Message Demultiplexing").
///
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"
#include "backends/StubShape.h"
#include "presgen/PresGen.h"
#include "support/StringExtras.h"
#include <cassert>

using namespace flick;

//===----------------------------------------------------------------------===//
// Default numeric demultiplexer
//===----------------------------------------------------------------------===//

void Backend::emitDispatchDemux(
    StubGen &G, const PresCInterface &If,
    const std::function<std::vector<CastStmt *>(const PresCOperation &)>
        &CaseBody) {
  CastBuilder &B = G.builder();
  emitRequestHeaderDecode(G, If); // declares _xid and _opcode
  std::vector<CastSwitchCase> Cases;
  for (const PresCOperation &Op : If.Ops) {
    CastSwitchCase C;
    C.Values.push_back(B.unum(Op.RequestCode));
    C.Stmts = CaseBody(Op);
    C.FallsThrough = true; // bodies end in return
    Cases.push_back(std::move(C));
  }
  CastSwitchCase D;
  D.Stmts.push_back(B.ret(B.id("FLICK_ERR_NO_SUCH_OP")));
  D.FallsThrough = true;
  Cases.push_back(std::move(D));
  G.stmt(B.switchStmt(B.id("_opcode"), std::move(Cases)));
  G.stmt(B.ret(B.id("FLICK_ERR_NO_SUCH_OP")));
}

//===----------------------------------------------------------------------===//
// Server dispatch
//===----------------------------------------------------------------------===//

std::vector<CastStmt *>
StubGen::genDispatchCase(const PresCInterface &If,
                         const PresCOperation &Op) {
  bool Corba = UseEnv;
  bool HasExcHelper = Corba && !P.Exceptions.empty();
  std::vector<CastStmt *> S;
  auto *SaveCur = Cur;
  Cur = &S;

  // Locals for every parameter.
  bool HasIns = false;
  for (const PresCParam &Pp : Op.Params) {
    PKind K = classifyPres(Pp.Pres);
    if (Pp.Dir != AoiParamDir::Out)
      HasIns = true;
    switch (K) {
    case PKind::Scalar:
      stmt(B.varDecl(Pp.Pres->ctype(), Pp.Name, B.num(0)));
      break;
    case PKind::Str:
      stmt(B.varDecl(B.ptr(B.prim("char")), Pp.Name, B.num(0)));
      if (!Pp.LenParamName.empty())
        stmt(B.varDecl(B.prim("uint32_t"), Pp.LenParamName, B.num(0)));
      break;
    case PKind::FixArr:
      stmt(B.varDecl(Pp.Pres->ctype(), Pp.Name));
      break;
    case PKind::Opt:
      stmt(B.varDecl(B.ptr(cast<PresOptPtr>(Pp.Pres)->elem()->ctype()),
                     Pp.Name, B.num(0)));
      break;
    case PKind::Agg:
      if (Pp.Dir == AoiParamDir::Out && presIsVariable(Pp.Pres) && Corba)
        stmt(B.varDecl(B.ptr(Pp.Pres->ctype()), Pp.Name, B.num(0)));
      else
        stmt(B.varDecl(Pp.Pres->ctype(), Pp.Name));
      break;
    case PKind::Void:
      break;
    }
  }

  // Decode in-parameters.
  if (HasIns) {
    std::vector<CastExpr *> Args = {
        B.id("_req"), B.addr(B.arrow(B.id("_srv"), "arena"))};
    for (const PresCParam &Pp : Op.Params) {
      if (Pp.Dir == AoiParamDir::Out)
        continue;
      PKind K = classifyPres(Pp.Pres);
      Args.push_back(K == PKind::FixArr
                         ? B.id(Pp.Name)
                         : static_cast<CastExpr *>(B.addr(B.id(Pp.Name))));
      if (!Pp.LenParamName.empty())
        Args.push_back(B.addr(B.id(Pp.LenParamName)));
    }
    std::string Ev = freshVar("_de");
    stmt(B.varDecl(B.prim("int"), Ev,
                   B.call(Op.CName + "_decode_request", Args)));
    stmt(B.ifStmt(B.id(Ev), B.ret(B.id(Ev))));
  }

  if (Corba) {
    stmt(B.rawStmt("CORBA_Environment _ev;"));
    stmt(B.rawStmt("_ev._major = CORBA_NO_EXCEPTION;"));
    stmt(B.rawStmt("_ev._exc_code = 0;"));
    stmt(B.rawStmt("_ev._exc_value = 0;"));
  }

  // Call the work function.
  std::vector<CastExpr *> ImplArgs;
  for (const PresCParam &Pp : Op.Params) {
    PKind K = classifyPres(Pp.Pres);
    bool ByValue =
        Pp.Dir == AoiParamDir::In &&
        (K == PKind::Scalar || K == PKind::Str || K == PKind::Opt);
    if (K == PKind::FixArr)
      ImplArgs.push_back(B.id(Pp.Name));
    else if (ByValue)
      ImplArgs.push_back(B.id(Pp.Name));
    else if (K == PKind::Agg && Pp.Dir == AoiParamDir::Out &&
             presIsVariable(Pp.Pres) && Corba)
      ImplArgs.push_back(B.addr(B.id(Pp.Name))); // CT ** (local is CT *)
    else
      ImplArgs.push_back(B.addr(B.id(Pp.Name)));
    if (!Pp.LenParamName.empty())
      ImplArgs.push_back(B.id(Pp.LenParamName));
  }

  PKind RetK = classifyPres(Op.Return.Pres);
  std::string RcVar;
  // --trace-hooks: time the user's work function apart from marshaling.
  if (options().TraceHooks)
    stmt(B.rawStmt("flick_span_begin(FLICK_SPAN_WORK, \"" + Op.CName +
                   "\");"));
  if (Corba) {
    ImplArgs.push_back(B.rawE("&_ev"));
    CastExpr *Call = B.call(Op.ServerImplName, ImplArgs);
    switch (RetK) {
    case PKind::Void:
      stmt(B.exprStmt(Call));
      break;
    case PKind::Scalar:
      stmt(B.varDecl(Op.Return.Pres->ctype(), "_retval", Call));
      break;
    case PKind::Str:
      stmt(B.varDecl(B.ptr(B.prim("char")), "_retval", Call));
      break;
    case PKind::Opt:
      stmt(B.varDecl(
          B.ptr(cast<PresOptPtr>(Op.Return.Pres)->elem()->ctype()),
          "_retval", Call));
      break;
    case PKind::Agg:
      stmt(B.varDecl(B.ptr(Op.Return.Pres->ctype()), "_retval", Call));
      break;
    case PKind::FixArr:
      break;
    }
  } else {
    // rpcgen style: int-returning work function with a result slot.
    if (RetK != PKind::Void) {
      if (RetK == PKind::Scalar || RetK == PKind::Agg) {
        stmt(B.varDecl(Op.Return.Pres->ctype(), "_retval"));
        // rpcgen requires zeroed results before the xdr routines run.
        stmt(B.exprStmt(B.call(
            "memset", {B.addr(B.id("_retval")), B.num(0),
                       B.sizeofTy(Op.Return.Pres->ctype())})));
      } else {
        stmt(B.varDecl(Op.Return.Pres->ctype(), "_retval", B.num(0)));
      }
      ImplArgs.push_back(B.addr(B.id("_retval")));
    }
    RcVar = freshVar("_rc");
    stmt(B.varDecl(B.prim("int"), RcVar,
                   B.call(Op.ServerImplName, ImplArgs)));
  }
  if (options().TraceHooks)
    stmt(B.rawStmt("flick_span_end();"));

  if (Op.Oneway) {
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = SaveCur;
    return S;
  }

  // Exceptional replies.
  if (Corba) {
    std::vector<CastStmt *> Exc;
    if (HasExcHelper) {
      Exc.push_back(B.rawStmt(
          "int _xe = " + If.Name +
          "_encode_reply_exc(_rep, _xid, _ev._exc_code, _ev._exc_value);"));
      Exc.push_back(B.rawStmt("free(_ev._exc_value);"));
      Exc.push_back(B.rawStmt("return _xe;"));
    } else {
      Exc.push_back(B.rawStmt("return " + If.Name +
                              "_encode_reply_err(_rep, _xid);"));
    }
    stmt(B.ifStmt(B.eq(B.rawE("_ev._major"), B.id("CORBA_USER_EXCEPTION")),
                  B.block(Exc)));
    stmt(B.ifStmt(B.ne(B.rawE("_ev._major"), B.id("CORBA_NO_EXCEPTION")),
                  B.rawStmt("return " + If.Name +
                            "_encode_reply_err(_rep, _xid);")));
  } else {
    stmt(B.ifStmt(B.id(RcVar),
                  B.rawStmt("return " + If.Name +
                            "_encode_reply_err(_rep, _xid);")));
  }

  // Successful reply.
  std::vector<CastExpr *> RepArgs = {B.id("_rep"), B.id("_xid")};
  if (RetK != PKind::Void) {
    if (!Corba && RetK == PKind::Agg)
      RepArgs.push_back(B.addr(B.id("_retval")));
    else if (!Corba && RetK == PKind::Scalar)
      RepArgs.push_back(B.id("_retval"));
    else if (Corba)
      RepArgs.push_back(B.id("_retval"));
    else
      RepArgs.push_back(B.id("_retval"));
  }
  for (const PresCParam &Pp : Op.Params) {
    if (Pp.Dir == AoiParamDir::In)
      continue;
    PKind K = classifyPres(Pp.Pres);
    if (K == PKind::Agg) {
      bool VarOut =
          Pp.Dir == AoiParamDir::Out && presIsVariable(Pp.Pres) && Corba;
      RepArgs.push_back(VarOut ? B.id(Pp.Name)
                               : static_cast<CastExpr *>(
                                     B.addr(B.id(Pp.Name))));
    } else {
      RepArgs.push_back(B.id(Pp.Name));
    }
  }
  std::string Re = freshVar("_re");
  stmt(B.varDecl(B.prim("int"), Re,
                 B.call(Op.CName + "_encode_reply", RepArgs)));
  stmt(B.ifStmt(B.id(Re), B.ret(B.id(Re))));

  // Free heap storage produced by the work function.
  if (Corba) {
    switch (RetK) {
    case PKind::Str:
      stmt(B.exprStmt(B.call("free", {B.id("_retval")})));
      break;
    case PKind::Opt:
      emitFree(Op.Return.Pres, B.id("_retval"));
      break;
    case PKind::Agg:
      emitFree(Op.Return.Pres, B.deref(B.id("_retval")));
      stmt(B.exprStmt(B.call("free", {B.id("_retval")})));
      break;
    default:
      break;
    }
    for (const PresCParam &Pp : Op.Params) {
      if (Pp.Dir != AoiParamDir::Out)
        continue;
      PKind K = classifyPres(Pp.Pres);
      if (K == PKind::Str) {
        stmt(B.exprStmt(B.call("free", {B.id(Pp.Name)})));
      } else if (K == PKind::Opt) {
        emitFree(Pp.Pres, B.id(Pp.Name));
      } else if (K == PKind::Agg && presIsVariable(Pp.Pres)) {
        emitFree(Pp.Pres, B.deref(B.id(Pp.Name)));
        stmt(B.exprStmt(B.call("free", {B.id(Pp.Name)})));
      }
    }
  }
  // Without the scratch arena, decoded in-parameters were heap-allocated:
  // release them (rpcgen's xdr_free role).
  if (!options().ScratchAlloc) {
    for (const PresCParam &Pp : Op.Params) {
      if (Pp.Dir == AoiParamDir::Out)
        continue;
      PKind K = classifyPres(Pp.Pres);
      if (K == PKind::Str)
        stmt(B.exprStmt(B.call("free", {B.id(Pp.Name)})));
      else if (K == PKind::Opt)
        emitFree(Pp.Pres, B.id(Pp.Name));
      else if ((K == PKind::Agg || K == PKind::FixArr) &&
               presIsVariable(Pp.Pres))
        emitFree(Pp.Pres, B.id(Pp.Name));
    }
  }

  stmt(B.ret(B.id("FLICK_OK")));
  Cur = SaveCur;
  return S;
}

void StubGen::genServerDispatch(const PresCInterface &If) {
  // Work-function prototypes.
  bool Corba = UseEnv;
  for (const PresCOperation &Op : If.Ops) {
    PKind RetK = classifyPres(Op.Return.Pres);
    CastType *RetTy = B.voidTy();
    switch (RetK) {
    case PKind::Void:
      break;
    case PKind::Scalar:
      RetTy = Op.Return.Pres->ctype();
      break;
    case PKind::Str:
      RetTy = B.ptr(B.prim("char"));
      break;
    case PKind::Opt:
      RetTy = B.ptr(cast<PresOptPtr>(Op.Return.Pres)->elem()->ctype());
      break;
    case PKind::Agg:
      RetTy = B.ptr(Op.Return.Pres->ctype());
      break;
    case PKind::FixArr:
      break;
    }
    std::vector<CastParam> Ps;
    for (const PresCParam &Pp : Op.Params) {
      Ps.push_back(CastParam{Pp.SigType, Pp.Name});
      if (!Pp.LenParamName.empty())
        Ps.push_back(CastParam{B.prim("uint32_t"), Pp.LenParamName});
    }
    if (Corba) {
      Ps.push_back(CastParam{B.ptr(B.prim("CORBA_Environment")), "_ev"});
    } else {
      if (RetK != PKind::Void)
        Ps.push_back(CastParam{B.ptr(Op.Return.Pres->ctype()), "_result"});
      RetTy = B.prim("int");
    }
    PublicProtos.push_back(B.func(RetTy, Op.ServerImplName, Ps, nullptr));
  }

  // The dispatch function itself.
  std::vector<CastParam> Ps = {
      CastParam{B.ptr(B.structTy("flick_server")), "_srv"},
      CastParam{B.ptr(B.structTy("flick_buf")), "_req"},
      CastParam{B.ptr(B.structTy("flick_buf")), "_rep"}};
  std::vector<CastStmt *> Body;
  Cur = &Body;
  ServerSide = true;
  CurEncode = false;
  stmt(B.rawStmt("(void)_srv;"));
  setBufName("_req");
  BE.emitDispatchDemux(*this, If, [&](const PresCOperation &Op) {
    return genDispatchCase(If, Op);
  });
  setBufName("_buf");
  ServerSide = false;
  Cur = nullptr;
  std::string Name = If.Name + "_dispatch";
  ServerFile.add(B.func(B.prim("int"), Name, Ps, B.block(Body)));
  PublicProtos.push_back(B.func(B.prim("int"), Name, Ps, nullptr));
}

