//===- backends/StubShape.h - Stub signature shape tables -------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-shape signature tables shared by the stub, helper, and
/// dispatch generators: how each presented parameter kind appears in the
/// encode/decode helper signatures and how its value expression is
/// reached from the parameter name.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_BACKENDS_STUBSHAPE_H
#define FLICK_BACKENDS_STUBSHAPE_H

#include "backends/MarshalPlan.h"
#include "cast/Builder.h"
#include "presgen/PresGen.h"

namespace flick {


inline CastType *encodeSigType(CastBuilder &B, const PresNode *P) {
  switch (classifyPres(P)) {
  case PKind::Scalar:
    return P->ctype();
  case PKind::Str:
    return B.constPtr(B.prim("char"));
  case PKind::FixArr:
    return B.constPtr(cast<PresFixedArray>(P)->elem()->ctype());
  case PKind::Agg:
    return B.constPtr(P->ctype());
  case PKind::Opt:
    return B.ptr(cast<PresOptPtr>(P)->elem()->ctype());
  case PKind::Void:
    break;
  }
  return B.voidTy();
}

/// Value expression for an encode-helper parameter named \p Name.
inline CastExpr *encodeValExpr(CastBuilder &B, const PresNode *P,
                        const std::string &Name) {
  if (classifyPres(P) == PKind::Agg)
    return B.deref(B.id(Name));
  return B.id(Name);
}

inline CastType *decodeReqSigType(CastBuilder &B, const PresNode *P) {
  switch (classifyPres(P)) {
  case PKind::Scalar:
    return B.ptr(P->ctype());
  case PKind::Str:
    return B.ptr(B.ptr(B.prim("char")));
  case PKind::FixArr:
    return B.ptr(cast<PresFixedArray>(P)->elem()->ctype());
  case PKind::Agg:
    return B.ptr(P->ctype());
  case PKind::Opt:
    return B.ptr(B.ptr(cast<PresOptPtr>(P)->elem()->ctype()));
  case PKind::Void:
    break;
  }
  return B.voidTy();
}

inline CastExpr *decodeReqValExpr(CastBuilder &B, const PresNode *P,
                           const std::string &Name) {
  if (classifyPres(P) == PKind::FixArr)
    return B.id(Name);
  return B.deref(B.id(Name));
}

/// True when the client-side reply decode allocates the value on the heap
/// and returns it through a double pointer (CORBA variable out / any
/// aggregate return value).
inline bool decRepDoublePtr(const PresNode *P, AoiParamDir Dir, bool IsRet,
                     bool Corba) {
  if (!Corba || classifyPres(P) != PKind::Agg)
    return false;
  return IsRet || (Dir == AoiParamDir::Out && presIsVariable(P));
}

inline CastType *decodeRepSigType(CastBuilder &B, const PresNode *P,
                           AoiParamDir Dir, bool IsRet, bool Corba) {
  switch (classifyPres(P)) {
  case PKind::Scalar:
    return B.ptr(P->ctype());
  case PKind::Str:
    return B.ptr(B.ptr(B.prim("char")));
  case PKind::FixArr:
    return B.ptr(cast<PresFixedArray>(P)->elem()->ctype());
  case PKind::Agg:
    return decRepDoublePtr(P, Dir, IsRet, Corba)
               ? B.ptr(B.ptr(P->ctype()))
               : B.ptr(P->ctype());
  case PKind::Opt:
    return B.ptr(B.ptr(cast<PresOptPtr>(P)->elem()->ctype()));
  case PKind::Void:
    break;
  }
  return B.voidTy();
}


} // namespace flick

#endif // FLICK_BACKENDS_STUBSHAPE_H
