//===- backends/Passes.cpp - Marshal-plan pass pipeline -------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass pipeline over the MarshalPlan IR.  Every pass reads the
/// analysis facts buildSeqPlan recorded and rewrites only the step list:
/// chunk coalescing replaces runs of segments with FixedChunks, the other
/// passes annotate.  The bounded/scratch/alias annotations use the same
/// shared predicates the emitter consults, so the dumped plan and the
/// generated code cannot disagree.
///
//===----------------------------------------------------------------------===//

#include "backends/Passes.h"
#include "support/Stats.h"
#include <cassert>

using namespace flick;

//===----------------------------------------------------------------------===//
// Registry and CLI surface
//===----------------------------------------------------------------------===//

const std::vector<PassInfo> &flick::passRegistry() {
  static const std::vector<PassInfo> Registry = {
      {"inline", "inline aggregate marshal code into the stubs "
                 "(out-of-line helpers only for recursive types)",
       [](const BackendOptions &O) { return O.Inline; }},
      {"chunk", "coalesce fixed-size segments into single-check chunks "
                "with chunk-pointer addressing",
       [](const BackendOptions &O) { return O.Chunk; }},
      {"memcpy", "block-copy bit-identical arrays and dense chunk members",
       [](const BackendOptions &O) { return O.Memcpy; }},
      {"gather", "rewrite large dense copies into by-reference "
                 "scatter-gather segments (flick_iov)",
       [](const BackendOptions &O) { return O.GatherMinBytes > 0; }},
      {"bounded", "pre-ensure bounded variable segments below the "
                  "threshold, eliding their space checks",
       [](const BackendOptions &O) { return O.BoundedThreshold > 0; }},
      {"scratch", "unmarshal server parameters into per-request arena "
                  "storage instead of malloc",
       [](const BackendOptions &O) { return O.ScratchAlloc; }},
      {"alias", "let unmarshaled server data alias the request buffer "
                "in place",
       [](const BackendOptions &O) { return O.BufferAlias; }},
  };
  return Registry;
}

std::vector<std::string> flick::enabledPassNames(const BackendOptions &O) {
  std::vector<std::string> Names;
  for (const PassInfo &P : passRegistry())
    if (P.Enabled(O))
      Names.push_back(P.Name);
  return Names;
}

namespace {

bool setPass(BackendOptions &O, const std::string &Name, bool On) {
  if (Name == "inline")
    O.Inline = On;
  else if (Name == "chunk")
    O.Chunk = On;
  else if (Name == "memcpy")
    O.Memcpy = On;
  else if (Name == "bounded")
    O.BoundedThreshold =
        On ? (O.BoundedThreshold ? O.BoundedThreshold : DefaultBoundedThreshold)
           : 0;
  else if (Name == "gather")
    O.GatherMinBytes =
        On ? (O.GatherMinBytes ? O.GatherMinBytes : DefaultGatherMinBytes) : 0;
  else if (Name == "scratch")
    O.ScratchAlloc = On;
  else if (Name == "alias")
    O.BufferAlias = On;
  else
    return false;
  return true;
}

void setAllPasses(BackendOptions &O, bool On) {
  for (const PassInfo &P : passRegistry())
    setPass(O, P.Name, On);
}

} // namespace

bool flick::parsePassList(const std::string &Spec, BackendOptions &O,
                          std::string &Err) {
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    size_t End = Comma == std::string::npos ? Spec.size() : Comma;
    std::string Tok = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Tok.empty())
      continue;
    if (Tok == "all") {
      setAllPasses(O, true);
      continue;
    }
    if (Tok == "none") {
      setAllPasses(O, false);
      continue;
    }
    bool On = true;
    std::string Name = Tok;
    if (Tok[0] == '+' || Tok[0] == '-') {
      On = Tok[0] == '+';
      Name = Tok.substr(1);
    }
    if (!setPass(O, Name, On)) {
      Err = "unknown pass '" + Name +
            "' (valid: inline, chunk, memcpy, gather, bounded, scratch, "
            "alias, plus 'all' and 'none')";
      return false;
    }
  }
  return true;
}

std::string flick::passCatalog() {
  std::string Out = "marshal-plan passes (pipeline order):\n";
  for (const PassInfo &P : passRegistry()) {
    Out += "  ";
    Out += P.Name;
    for (size_t Pad = std::string(P.Name).size(); Pad < 9; ++Pad)
      Out += ' ';
    Out += P.Summary;
    Out += "\n";
  }
  Out += "--passes syntax: comma-separated tokens applied left to right,\n"
         "each 'all', 'none', '<name>', '+<name>', or '-<name>'\n"
         "(e.g. --passes=all,-memcpy); --no-<name> is shorthand for\n"
         "--passes=-<name>\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// The pipeline
//===----------------------------------------------------------------------===//

namespace {

/// Times one pass into a "pass.<name>" Stats region so --stats exposes
/// the pipeline alongside the front-end phases.
template <typename Fn> void runTimed(const char *Name, Fn &&F) {
  if (!Stats::get().enabled()) {
    F();
    return;
  }
  std::string Region = std::string("pass.") + Name;
  StatsPhase Phase(Region.c_str());
  F();
}

} // namespace

void PassPipeline::run(SeqPlan &Plan) const {
  if (O.Inline)
    runTimed("inline", [&] { passInline(Plan); });
  if (O.Chunk)
    runTimed("chunk", [&] { passChunk(Plan); });
  if (O.Memcpy)
    runTimed("memcpy", [&] { passMemcpy(Plan); });
  if (O.GatherMinBytes > 0)
    runTimed("gather", [&] { passGather(Plan); });
  if (O.BoundedThreshold > 0)
    runTimed("bounded", [&] { passBounded(Plan); });
  if (O.ScratchAlloc)
    runTimed("scratch", [&] { passScratch(Plan); });
  if (O.BufferAlias)
    runTimed("alias", [&] { passAlias(Plan); });
}

/// Relaxes the out-of-line policy: with inlining on, only recursive types
/// marshal through helpers, and any fixed union-free aggregate becomes a
/// chunk-coalescing candidate alongside the scalars.
void PassPipeline::passInline(SeqPlan &Plan) const {
  uint64_t Relaxed = 0;
  for (PlanItem &It : Plan.Items) {
    if (It.Pres && classifyPres(It.Pres) == PKind::Void)
      continue; // voids marshal nothing; synthetic test items pass through
    bool Was = It.OutOfLine;
    It.OutOfLine = It.Recursive;
    if (Was && !It.OutOfLine)
      ++Relaxed;
    It.CoalesceOK = It.Fixed && !It.HasUnion && !It.OutOfLine;
  }
  FLICK_STAT_COUNT("plan.inline_items", Relaxed);
}

/// Greedy coalescing: maximal runs of adjacent CoalesceOK segments become
/// one FixedChunk with precomputed member windows (paper §3.1, coalesced
/// buffer checks).  Framing hooks and variable segments break runs.
void PassPipeline::passChunk(SeqPlan &Plan) const {
  std::vector<MarshalStep> Out;
  std::vector<unsigned> Run;
  uint64_t AtomsIn = 0, ChunkBytes = 0, ChunksOut = 0;

  auto Flush = [&] {
    if (Run.empty())
      return;
    MarshalStep St;
    St.Kind = StepKind::FixedChunk;
    uint64_t Off = 0;
    unsigned MaxA = 1;
    for (unsigned Idx : Run) {
      const PlanItem &It = Plan.Items[Idx];
      PlanMember M;
      M.Item = Idx;
      M.WireOff = Off;
      if (It.Pres) {
        LayoutMeasurer Meas(L);
        bool Ok = Meas.walk(It.Pres, Off, MaxA);
        (void)Ok;
        assert(Ok && "coalesced item must be fixed-size");
      } else {
        // Synthetic items (pass unit tests) carry their layout directly.
        Off = alignUpTo(Off, It.FixedAlign) + It.FixedSize;
        MaxA = std::max(MaxA, It.FixedAlign);
      }
      M.WireSize = Off - M.WireOff;
      St.Members.push_back(M);
    }
    St.Size = Off;
    St.Align = MaxA;
    ChunkBytes += Off;
    ++ChunksOut;
    Out.push_back(std::move(St));
    Run.clear();
  };

  for (MarshalStep &St : Plan.Steps) {
    if (St.Kind == StepKind::VariableSegment &&
        Plan.Items[St.Item].CoalesceOK) {
      Run.push_back(St.Item);
      ++AtomsIn;
      continue;
    }
    Flush();
    Out.push_back(St);
  }
  Flush();
  Plan.Steps = std::move(Out);

  FLICK_STAT_COUNT("plan.chunks_before", AtomsIn);
  FLICK_STAT_COUNT("plan.chunks_after", ChunksOut);
  FLICK_STAT_COUNT("plan.chunk_bytes", ChunkBytes);
}

/// Run merging: a chunk member whose wire image is one dense
/// host-identical byte run (no gaps, no swaps, host size == wire size)
/// lowers as a single block copy instead of per-field stores.  Byte
/// arrays and host-identical atomic arrays already block-copy in the
/// emitter, so only Struct and aggregate-element FixedArray members are
/// considered here.
void PassPipeline::passMemcpy(SeqPlan &Plan) const {
  uint64_t Members = 0, Bytes = 0;
  for (MarshalStep &St : Plan.Steps) {
    if (St.Kind != StepKind::FixedChunk)
      continue;
    for (PlanMember &M : St.Members) {
      const PlanItem &It = Plan.Items[M.Item];
      const PresNode *P = It.Pres;
      if (!P || !P->ctype() || It.HasUnion)
        continue;
      switch (P->kind()) {
      case PresNode::Kind::Struct:
        break;
      case PresNode::Kind::FixedArray: {
        const auto *A = cast<PresFixedArray>(P);
        const MintType *EM = A->elem()->mint();
        if (isByteElem(L, EM) || isAtomicMint(EM))
          continue; // the emitter's existing block-copy/loop paths
        break;
      }
      default:
        continue;
      }
      MemcpyRuns R = memcpyRunsOf(P, L);
      if (!denseBitIdentical(R))
        continue;
      // The in-context window must equal the dense wire size: a leading
      // alignment gap would shift every interior offset.
      if (M.WireSize != R.WireSize)
        continue;
      M.Memcpy = true;
      M.MemcpyBytes = R.WireSize;
      ++Members;
      Bytes += R.WireSize;
    }
  }
  FLICK_STAT_COUNT("plan.memcpy_members", Members);
  FLICK_STAT_COUNT("plan.memcpy_bytes", Bytes);
}

/// Scatter-gather rewrite: an encode-request variable segment whose bulk
/// would lower to one dense copy from presented storage becomes a
/// GatherRef step -- the emitter borrows the storage via flick_buf_ref
/// when at least GatherMinBytes are in play and copies below that.
/// Restricted to client request encoding: the segments are only borrowed
/// until the synchronous send inside flick_client_invoke/send_oneway
/// returns, whereas reply buffers are sent after the dispatch frame (and
/// its locals) is gone (DESIGN.md §11).
void PassPipeline::passGather(SeqPlan &Plan) const {
  static const std::string ReqSuffix = "_encode_request";
  uint64_t Segs = 0, MaxBytes = 0;
  if (Plan.Encode && Plan.Label.size() > ReqSuffix.size() &&
      Plan.Label.compare(Plan.Label.size() - ReqSuffix.size(),
                         ReqSuffix.size(), ReqSuffix) == 0) {
    for (MarshalStep &St : Plan.Steps) {
      if (St.Kind != StepKind::VariableSegment)
        continue;
      const PlanItem &It = Plan.Items[St.Item];
      if (!It.Pres || It.HasUnion || It.Recursive || It.OutOfLine)
        continue;
      if (!gatherableSegment(It.Pres, L, O.Memcpy))
        continue;
      St.Kind = StepKind::GatherRef;
      St.GatherMinBytes = O.GatherMinBytes;
      ++Segs;
      if (It.Storage == StorageClass::Bounded)
        MaxBytes += It.MaxBytes;
    }
  }
  FLICK_STAT_COUNT("plan.gather_segments", Segs);
  FLICK_STAT_COUNT("plan.gather_bytes_max", MaxBytes);
}

/// Bounded→fixed promotion (annotation): an encode-side variable segment
/// whose static bound fits the threshold is pre-ensured once; the emitter
/// elides its interior space checks.  Uses the same predicate the emitter
/// consults, so this is documentation-grade truth, not a parallel guess.
void PassPipeline::passBounded(SeqPlan &Plan) const {
  uint64_t Segs = 0, PreBytes = 0;
  if (O.Chunk && Plan.Encode) {
    for (MarshalStep &St : Plan.Steps) {
      if (St.Kind != StepKind::VariableSegment)
        continue;
      const PlanItem &It = Plan.Items[St.Item];
      if (!It.Pres || It.Fixed || It.HasUnion || It.Recursive || It.OutOfLine)
        continue;
      uint64_t N = boundedPreEnsureBytes(It.Pres, L, O.BoundedThreshold);
      if (!N)
        continue;
      St.PreEnsureBytes = N;
      ++Segs;
      PreBytes += N;
    }
  }
  FLICK_STAT_COUNT("plan.bounded_segments", Segs);
  FLICK_STAT_COUNT("plan.bounded_preensure_bytes", PreBytes);
}

namespace {

/// Allocation contract of a pointer-presented segment, or null when the
/// item manages no unmarshal storage.
const AllocSemantics *allocSemOf(const PresNode *P) {
  if (!P)
    return nullptr;
  switch (P->kind()) {
  case PresNode::Kind::Counted:
    return &cast<PresCounted>(P)->alloc();
  case PresNode::Kind::String:
    return &cast<PresString>(P)->alloc();
  case PresNode::Kind::OptPtr:
    return &cast<PresOptPtr>(P)->alloc();
  default:
    return nullptr;
  }
}

} // namespace

/// Scratch-allocation placement (annotation): decode-side server
/// segments whose contract allows request-lifetime storage unmarshal into
/// the per-request arena; everything else stays on the heap.
void PassPipeline::passScratch(SeqPlan &Plan) const {
  uint64_t Segs = 0;
  if (!Plan.Encode) {
    for (MarshalStep &St : Plan.Steps) {
      if (St.Kind != StepKind::VariableSegment)
        continue;
      const PlanItem &It = Plan.Items[St.Item];
      if (It.Fixed)
        continue;
      const AllocSemantics *A = allocSemOf(It.Pres);
      if (!A)
        continue;
      St.Alloc = Plan.ServerSide && A->AllowStackAlloc ? AllocKind::Arena
                                                       : AllocKind::Heap;
      if (St.Alloc == AllocKind::Arena)
        ++Segs;
    }
  }
  FLICK_STAT_COUNT("plan.scratch_segments", Segs);
}

/// Buffer-alias marking (annotation): decode-side server segments whose
/// wire bytes are usable in place skip the copy entirely and point into
/// the request buffer (paper §3.1; requires the scratch contract since
/// the buffer lives exactly as long as the request).
void PassPipeline::passAlias(SeqPlan &Plan) const {
  uint64_t Segs = 0, MaxBytes = 0;
  if (!Plan.Encode && Plan.ServerSide && O.ScratchAlloc) {
    for (MarshalStep &St : Plan.Steps) {
      if (St.Kind != StepKind::VariableSegment)
        continue;
      const PlanItem &It = Plan.Items[St.Item];
      bool Ok = false;
      if (const auto *C = dyn_cast_or_null<PresCounted>(It.Pres))
        Ok = C->alloc().AllowBufferAlias && aliasableCountedElem(C, L);
      else if (const auto *S = dyn_cast_or_null<PresString>(It.Pres))
        Ok = S->alloc().AllowBufferAlias && aliasableString(S, L);
      if (!Ok)
        continue;
      St.Alias = true;
      ++Segs;
      if (It.Storage == StorageClass::Bounded)
        MaxBytes += It.MaxBytes;
    }
  }
  FLICK_STAT_COUNT("plan.alias_segments", Segs);
  FLICK_STAT_COUNT("plan.alias_bytes_max", MaxBytes);
}
