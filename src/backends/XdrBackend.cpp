//===- backends/XdrBackend.cpp - ONC RPC / XDR message framing ------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"
#include "support/StringExtras.h"
#include <cassert>

using namespace flick;

//===----------------------------------------------------------------------===//
// ONC RPC / XDR
//===----------------------------------------------------------------------===//

static uint32_t oncProg(const PresCInterface &If) {
  return If.ProgramNumber ? If.ProgramNumber : 0x20000000u;
}

static uint32_t oncVers(const PresCInterface &If) {
  return If.VersionNumber ? If.VersionNumber : 1u;
}

void XdrBackend::emitRequestHeader(StubGen &G, const PresCInterface &If,
                                   const PresCOperation &Op) {
  CastBuilder &B = G.builder();
  // RFC 1831 call header: xid, CALL, rpcvers=2, prog, vers, proc, and
  // empty AUTH_NONE credential and verifier -- ten words, one chunk.
  G.openChunk(40);
  G.putU32(B.id("_xid"));
  G.putU32(B.num(0)); // CALL
  G.putU32(B.num(2)); // RPC version
  G.putU32(B.unum(oncProg(If)));
  G.putU32(B.unum(oncVers(If)));
  G.putU32(B.unum(Op.RequestCode));
  G.putU32(B.num(0)); // cred flavor AUTH_NONE
  G.putU32(B.num(0)); // cred length
  G.putU32(B.num(0)); // verf flavor
  G.putU32(B.num(0)); // verf length
  G.closeChunk();
}

void XdrBackend::emitReplyHeader(StubGen &G, const PresCInterface &If,
                                 CastExpr *Status) {
  CastBuilder &B = G.builder();
  // RFC 1831 accepted reply plus this runtime's reply-status word.
  G.openChunk(28);
  G.putU32(B.id("_xid"));
  G.putU32(B.num(1)); // REPLY
  G.putU32(B.num(0)); // MSG_ACCEPTED
  G.putU32(B.num(0)); // verf flavor
  G.putU32(B.num(0)); // verf length
  G.putU32(B.num(0)); // accept_stat SUCCESS
  G.putU32(Status);
  G.closeChunk();
}

void XdrBackend::emitReplyHeaderDecode(StubGen &G,
                                       const PresCInterface &If) {
  CastBuilder &B = G.builder();
  G.openChunk(28);
  G.getU32(); // xid (single outstanding call; not matched)
  G.stmt(B.ifStmt(B.ne(G.getU32(), B.num(1)),
                  B.ret(B.id("FLICK_ERR_DECODE")))); // REPLY
  G.stmt(B.ifStmt(B.ne(G.getU32(), B.num(0)),
                  B.ret(B.id("FLICK_ERR_DECODE")))); // MSG_ACCEPTED
  G.getU32();                                        // verf flavor
  G.getU32();                                        // verf length
  G.stmt(B.ifStmt(B.ne(G.getU32(), B.num(0)),
                  B.ret(B.id("FLICK_ERR_DECODE")))); // accept_stat
  G.stmt(B.varDecl(B.prim("uint32_t"), "_status", G.getU32()));
  G.closeChunk();
}

void XdrBackend::emitRequestHeaderDecode(StubGen &G,
                                         const PresCInterface &If) {
  CastBuilder &B = G.builder();
  G.openChunk(40);
  G.stmt(B.varDecl(B.prim("uint32_t"), "_xid", G.getU32()));
  G.stmt(B.ifStmt(B.ne(G.getU32(), B.num(0)),
                  B.ret(B.id("FLICK_ERR_DECODE")))); // CALL
  G.stmt(B.ifStmt(B.ne(G.getU32(), B.num(2)),
                  B.ret(B.id("FLICK_ERR_DECODE")))); // rpcvers
  G.stmt(B.ifStmt(B.ne(G.getU32(), B.unum(oncProg(If))),
                  B.ret(B.id("FLICK_ERR_NO_SUCH_OP"))));
  G.stmt(B.ifStmt(B.ne(G.getU32(), B.unum(oncVers(If))),
                  B.ret(B.id("FLICK_ERR_NO_SUCH_OP"))));
  G.stmt(B.varDecl(B.prim("uint32_t"), "_opcode", G.getU32()));
  // cred/verf words are consumed with the chunk; nothing to validate for
  // AUTH_NONE.
  G.closeChunk();
}

