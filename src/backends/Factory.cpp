//===- backends/Factory.cpp - back-end registry ---------------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"

using namespace flick;

std::unique_ptr<Backend> flick::createBackend(const std::string &Name,
                                              BackendOptions Opts) {
  if (Name == "xdr")
    return std::make_unique<XdrBackend>(Opts);
  if (Name == "iiop")
    return std::make_unique<IiopBackend>(Opts);
  if (Name == "naive")
    return std::make_unique<NaiveBackend>(Opts);
  if (Name == "mach")
    return std::make_unique<MachBackend>(Opts);
  if (Name == "fluke")
    return std::make_unique<FlukeBackend>(Opts);
  return nullptr;
}
