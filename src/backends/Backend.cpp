//===- backends/Backend.cpp - Optimizing back-end base --------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// StubGen walks the encode-type -> MINT -> PRES -> CAST chains of a PRES_C
/// and emits the marshal, unmarshal, stub, and dispatch code, applying the
/// paper's optimizations (§3): coalesced buffer checks over fixed segments,
/// chunk-pointer addressing, memcpy for bit-identical arrays, aggressive
/// inlining with out-of-line helpers only for recursive types, scratch/alias
/// parameter management, and switch-based demultiplexing.
///
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"
#include "backends/StubShape.h"
#include "presgen/PresGen.h"
#include "support/Stats.h"
#include "support/StringExtras.h"
#include <cassert>

using namespace flick;

Backend::~Backend() = default;

BackendOutput Backend::generate(PresC &P, const std::string &BaseName) {
  FLICK_STAT_PHASE("backend");
  FLICK_STAT_COUNT("backend." + name(), 1);
  StubGen G(*this, P, BaseName);
  BackendOutput Out = G.run();
  FLICK_STAT_COUNT("backend.header_bytes", Out.Header.size());
  FLICK_STAT_COUNT("backend.client_bytes", Out.ClientSrc.size());
  FLICK_STAT_COUNT("backend.server_bytes", Out.ServerSrc.size());
  FLICK_STAT_COUNT("backend.common_bytes", Out.CommonSrc.size());
  FLICK_STAT_COUNT("backend.bytes_total",
                   Out.Header.size() + Out.ClientSrc.size() +
                       Out.ServerSrc.size() + Out.CommonSrc.size());
  return Out;
}

//===----------------------------------------------------------------------===//
// StubGen basics
//===----------------------------------------------------------------------===//

StubGen::StubGen(Backend &BE, PresC &P, const std::string &BaseName)
    : BE(BE), P(P), BaseName(BaseName), B(P.Cast), Layout(BE.wire()),
      Pipeline(BE.options(), Layout) {
  UseEnv = P.Style == "corba" || P.Style == "fluke";
}

//===----------------------------------------------------------------------===//
// Per-operation helper generation
//===----------------------------------------------------------------------===//

void StubGen::genOpHelpers(const PresCInterface &If,
                           const PresCOperation &Op) {
  bool Corba = UseEnv;
  auto PlaceOp = [&](const std::string &Name, std::vector<CastParam> Ps,
                     std::vector<CastStmt *> Body, bool ToClient) {
    bool Inline = options().Inline;
    auto *Def = B.func(B.prim("int"), Name, Ps, B.block(Body),
                       /*Static=*/Inline, /*Inline=*/Inline);
    if (Inline) {
      OpHelperDefs.push_back(Def);
      return;
    }
    OpHelperDefs.push_back(
        B.func(B.prim("int"), Name, Ps, nullptr));
    (ToClient ? ClientFile : ServerFile).add(Def);
  };
  CastType *BufPtr = B.ptr(B.structTy("flick_buf"));
  CastType *ArenaPtr = B.ptr(B.structTy("flick_arena"));

  // Framing hooks enter the plan as FramingHook steps, so the pass
  // pipeline sees the whole message and the dump shows it in order; this
  // callback lowers them back to the concrete back end.
  auto HookFn = [this, &If, &Op](HookKind H) {
    switch (H) {
    case HookKind::RequestHeader:
      BE.emitRequestHeader(*this, If, Op);
      break;
    case HookKind::RequestFinish:
      BE.emitRequestFinish(*this, If, Op);
      break;
    case HookKind::ReplyHeader:
      BE.emitReplyHeader(*this, If, B.id("FLICK_REPLY_OK"));
      break;
    case HookKind::ReplyFinish:
      BE.emitReplyFinish(*this, If);
      break;
    }
  };

  // ---- encode_request (client side) ----
  {
    std::vector<CastParam> Ps = {CastParam{BufPtr, "_buf"},
                                 CastParam{B.prim("uint32_t"), "_xid"}};
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::Out) {
        Ps.push_back(CastParam{encodeSigType(B, Pp.Pres), Pp.Name});
        if (!Pp.LenParamName.empty())
          Ps.push_back(CastParam{B.prim("uint32_t"), Pp.LenParamName});
      }
    std::vector<CastStmt *> Body;
    Cur = &Body;
    ServerSide = false;
    CurEncode = true;
    stmt(B.rawStmt("(void)_xid;"));
    std::vector<std::pair<const PresNode *, CastExpr *>> Items;
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::Out) {
        if (!Pp.LenParamName.empty())
          KnownStrLenIn[Pp.Pres] = B.id(Pp.LenParamName);
        Items.push_back({Pp.Pres, encodeValExpr(B, Pp.Pres, Pp.Name)});
        NextPlanNames.push_back(Pp.Name);
      }
    NextPlanLabel = Op.CName + "_encode_request";
    NextPreHooks = {HookKind::RequestHeader};
    NextPostHooks = {HookKind::RequestFinish};
    PlanHookFn = HookFn;
    emitSequence(Items, true);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = nullptr;
    PlaceOp(Op.CName + "_encode_request", Ps, Body, /*ToClient=*/true);
  }

  // ---- decode_request (server side) ----
  bool HasIns = false;
  for (const PresCParam &Pp : Op.Params)
    if (Pp.Dir != AoiParamDir::Out)
      HasIns = true;
  if (HasIns) {
    std::vector<CastParam> Ps = {CastParam{BufPtr, "_buf"},
                                 CastParam{ArenaPtr, "_ar"}};
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::Out) {
        Ps.push_back(CastParam{decodeReqSigType(B, Pp.Pres), Pp.Name});
        if (!Pp.LenParamName.empty())
          Ps.push_back(CastParam{B.ptr(B.prim("uint32_t")),
                                 Pp.LenParamName});
      }
    std::vector<CastStmt *> Body;
    Cur = &Body;
    ServerSide = true;
    CurEncode = false;
    stmt(B.rawStmt("(void)_ar;"));
    std::vector<std::pair<const PresNode *, CastExpr *>> Items;
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::Out) {
        if (!Pp.LenParamName.empty())
          KnownStrLenOut[Pp.Pres] = B.deref(B.id(Pp.LenParamName));
        Items.push_back({Pp.Pres, decodeReqValExpr(B, Pp.Pres, Pp.Name)});
        NextPlanNames.push_back(Pp.Name);
      }
    NextPlanLabel = Op.CName + "_decode_request";
    emitSequence(Items, false);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = nullptr;
    ServerSide = false;
    PlaceOp(Op.CName + "_decode_request", Ps, Body, /*ToClient=*/false);
  }

  if (Op.Oneway)
    return;

  // ---- encode_reply (server side) ----
  {
    std::vector<CastParam> Ps = {CastParam{BufPtr, "_buf"},
                                 CastParam{B.prim("uint32_t"), "_xid"}};
    if (Op.Return.Pres)
      Ps.push_back(
          CastParam{encodeSigType(B, Op.Return.Pres), "_retval"});
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::In)
        Ps.push_back(CastParam{encodeSigType(B, Pp.Pres), Pp.Name});
    std::vector<CastStmt *> Body;
    Cur = &Body;
    ServerSide = false;
    CurEncode = true;
    stmt(B.rawStmt("(void)_xid;"));
    std::vector<std::pair<const PresNode *, CastExpr *>> Items;
    if (Op.Return.Pres) {
      Items.push_back(
          {Op.Return.Pres, encodeValExpr(B, Op.Return.Pres, "_retval")});
      NextPlanNames.push_back("_retval");
    }
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::In) {
        Items.push_back({Pp.Pres, encodeValExpr(B, Pp.Pres, Pp.Name)});
        NextPlanNames.push_back(Pp.Name);
      }
    NextPlanLabel = Op.CName + "_encode_reply";
    NextPreHooks = {HookKind::ReplyHeader};
    NextPostHooks = {HookKind::ReplyFinish};
    PlanHookFn = HookFn;
    emitSequence(Items, true);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = nullptr;
    PlaceOp(Op.CName + "_encode_reply", Ps, Body, /*ToClient=*/false);
  }

  // ---- decode_reply (client side) ----
  {
    std::vector<CastParam> Ps = {CastParam{BufPtr, "_buf"}};
    if (Op.Return.Pres)
      Ps.push_back(CastParam{
          decodeRepSigType(B, Op.Return.Pres, AoiParamDir::Out,
                           /*IsRet=*/true, Corba),
          "_retval"});
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::In)
        Ps.push_back(CastParam{
            decodeRepSigType(B, Pp.Pres, Pp.Dir, false, Corba), Pp.Name});
    if (Corba)
      Ps.push_back(
          CastParam{B.ptr(B.prim("CORBA_Environment")), "_ev"});
    std::vector<CastStmt *> Body;
    Cur = &Body;
    ServerSide = false;
    CurEncode = false;
    stmt(B.varDecl(ArenaPtr, "_ar", B.num(0)));
    stmt(B.rawStmt("(void)_ar;"));
    BE.emitReplyHeaderDecode(*this, If); // declares uint32_t _status

    if (Corba) {
      // User exceptions: decode the code word, then the matching members.
      std::vector<CastStmt *> Usr;
      auto *SaveCur = Cur;
      Cur = &Usr;
      openChunk(alignUpTo(Layout.padded(4), chunkAlign()));
      std::string Code = freshVar("_code");
      stmt(B.varDecl(B.prim("uint32_t"), Code, getU32()));
      closeChunk();
      std::vector<CastSwitchCase> ExcCases;
      for (uint32_t Idx : Op.RaisesIdx) {
        const PresCException &E = P.Exceptions[Idx];
        CastSwitchCase C;
        C.Values.push_back(B.unum(E.Code));
        C.FallsThrough = true;
        auto *Save2 = Cur;
        Cur = &C.Stmts;
        std::string Ev = freshVar("_e");
        stmt(B.varDecl(B.ptr(B.prim(E.Name)), Ev,
                       B.castTo(B.ptr(B.prim(E.Name)),
                                B.call("malloc",
                                       {B.sizeofTy(B.prim(E.Name))}))));
        stmt(B.ifStmt(B.nt(B.id(Ev)), B.ret(B.id("FLICK_ERR_ALLOC"))));
        emitValue(E.Members, B.deref(B.id(Ev)), false);
        stmt(B.exprStmt(B.assign(B.arrow(B.id("_ev"), "_major"),
                                 B.id("CORBA_USER_EXCEPTION"))));
        stmt(B.exprStmt(
            B.assign(B.arrow(B.id("_ev"), "_exc_code"), B.id(Code))));
        stmt(B.exprStmt(B.assign(B.arrow(B.id("_ev"), "_exc_value"),
                                 B.castTo(B.ptr(B.voidTy()), B.id(Ev)))));
        stmt(B.ret(B.id("FLICK_OK")));
        Cur = Save2;
        ExcCases.push_back(std::move(C));
      }
      CastSwitchCase D;
      D.Stmts.push_back(B.ret(B.id("FLICK_ERR_DECODE")));
      D.FallsThrough = true;
      ExcCases.push_back(std::move(D));
      stmt(B.switchStmt(B.id(Code), std::move(ExcCases)));
      Cur = SaveCur;
      stmt(B.ifStmt(B.eq(B.id("_status"),
                         B.id("FLICK_REPLY_USER_EXCEPTION")),
                    B.block(Usr)));
      std::vector<CastStmt *> Sys;
      Sys.push_back(B.exprStmt(B.assign(B.arrow(B.id("_ev"), "_major"),
                                        B.id("CORBA_SYSTEM_EXCEPTION"))));
      Sys.push_back(B.ret(B.id("FLICK_OK")));
      stmt(B.ifStmt(B.eq(B.id("_status"),
                         B.id("FLICK_REPLY_SYSTEM_EXCEPTION")),
                    B.block(Sys)));
      stmt(B.ifStmt(B.ne(B.id("_status"), B.id("FLICK_REPLY_OK")),
                    B.ret(B.id("FLICK_ERR_DECODE"))));
    } else {
      stmt(B.ifStmt(B.ne(B.id("_status"), B.id("FLICK_REPLY_OK")),
                    B.ret(B.id("FLICK_ERR_EXCEPTION"))));
    }

    // Decode return value and out/inout parameters.  Storage for
    // stub-allocated values is set up first; the values then decode as ONE
    // sequence so the chunk grouping mirrors encode_reply exactly.
    std::vector<std::pair<const PresNode *, CastExpr *>> Items;
    auto AddItem = [&](const PresNode *Pn, const std::string &Name,
                       AoiParamDir Dir, bool IsRet) {
      PKind K = classifyPres(Pn);
      CastExpr *Val = nullptr;
      if (K == PKind::FixArr) {
        Val = B.id(Name);
      } else if (decRepDoublePtr(Pn, Dir, IsRet, Corba)) {
        stmt(B.exprStmt(B.assign(
            B.deref(B.id(Name)),
            B.castTo(B.ptr(Pn->ctype()),
                     B.call("malloc", {B.sizeofTy(Pn->ctype())})))));
        stmt(B.ifStmt(B.nt(B.deref(B.id(Name))),
                      B.ret(B.id("FLICK_ERR_ALLOC"))));
        Val = B.deref(B.deref(B.id(Name)));
      } else {
        Val = B.deref(B.id(Name));
      }
      Items.push_back({Pn, Val});
      NextPlanNames.push_back(Name);
    };
    if (Op.Return.Pres)
      AddItem(Op.Return.Pres, "_retval", AoiParamDir::Out, true);
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::In)
        AddItem(Pp.Pres, Pp.Name, Pp.Dir, false);
    NextPlanLabel = Op.CName + "_decode_reply";
    emitSequence(Items, false);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = nullptr;
    PlaceOp(Op.CName + "_decode_reply", Ps, Body, /*ToClient=*/true);
  }
}

//===----------------------------------------------------------------------===//
// Interface-level reply helpers (error + exception replies)
//===----------------------------------------------------------------------===//

void StubGen::genExcEncodeHelper(const PresCInterface &If) {
  CastType *BufPtr = B.ptr(B.structTy("flick_buf"));
  auto PlaceOp = [&](const std::string &Name, std::vector<CastParam> Ps,
                     std::vector<CastStmt *> Body) {
    bool Inline = options().Inline;
    auto *Def = B.func(B.prim("int"), Name, Ps, B.block(Body),
                       Inline, Inline);
    if (Inline) {
      OpHelperDefs.push_back(Def);
    } else {
      OpHelperDefs.push_back(B.func(B.prim("int"), Name, Ps, nullptr));
      ServerFile.add(Def);
    }
  };

  // Minimal system-error reply, used for failed work functions.
  {
    std::vector<CastParam> Ps = {CastParam{BufPtr, "_buf"},
                                 CastParam{B.prim("uint32_t"), "_xid"}};
    std::vector<CastStmt *> Body;
    Cur = &Body;
    CurEncode = true;
    stmt(B.rawStmt("(void)_xid;"));
    BE.emitReplyHeader(*this, If, B.id("FLICK_REPLY_SYSTEM_EXCEPTION"));
    BE.emitReplyFinish(*this, If);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = nullptr;
    PlaceOp(If.Name + "_encode_reply_err", Ps, Body);
  }

  if (!UseEnv || P.Exceptions.empty())
    return;

  // User-exception reply: status word, exception code, members.
  std::vector<CastParam> Ps = {
      CastParam{BufPtr, "_buf"}, CastParam{B.prim("uint32_t"), "_xid"},
      CastParam{B.prim("uint32_t"), "_code"},
      CastParam{B.constPtr(B.voidTy()), "_val"}};
  std::vector<CastStmt *> Body;
  Cur = &Body;
  CurEncode = true;
  stmt(B.rawStmt("(void)_xid;"));
  BE.emitReplyHeader(*this, If, B.id("FLICK_REPLY_USER_EXCEPTION"));
  openChunk(alignUpTo(Layout.padded(4), chunkAlign()));
  putU32(B.id("_code"));
  closeChunk();
  std::vector<CastSwitchCase> Cases;
  for (const PresCException &E : P.Exceptions) {
    CastSwitchCase C;
    C.Values.push_back(B.unum(E.Code));
    auto *SaveCur = Cur;
    Cur = &C.Stmts;
    std::string Ev = freshVar("_e");
    stmt(B.varDecl(B.constPtr(B.prim(E.Name)), Ev,
                   B.castTo(B.constPtr(B.prim(E.Name)), B.id("_val"))));
    emitValue(E.Members, B.deref(B.id(Ev)), true);
    Cur = SaveCur;
    Cases.push_back(std::move(C));
  }
  CastSwitchCase D;
  D.Stmts.push_back(B.ret(B.id("FLICK_ERR_DECODE")));
  D.FallsThrough = true;
  Cases.push_back(std::move(D));
  stmt(B.switchStmt(B.id("_code"), std::move(Cases)));
  BE.emitReplyFinish(*this, If);
  stmt(B.ret(B.id("FLICK_OK")));
  Cur = nullptr;
  PlaceOp(If.Name + "_encode_reply_exc", Ps, Body);
}

//===----------------------------------------------------------------------===//
// Client stubs
//===----------------------------------------------------------------------===//

void StubGen::genClientStub(const PresCInterface &If,
                            const PresCOperation &Op) {
  bool Corba = UseEnv;
  PKind RetK = classifyPres(Op.Return.Pres);

  // Return type of the stub itself.
  CastType *RetTy = B.voidTy();
  switch (RetK) {
  case PKind::Void:
    break;
  case PKind::Scalar:
    RetTy = Op.Return.Pres->ctype();
    break;
  case PKind::Str:
    RetTy = B.ptr(B.prim("char"));
    break;
  case PKind::Opt:
    RetTy = B.ptr(cast<PresOptPtr>(Op.Return.Pres)->elem()->ctype());
    break;
  case PKind::Agg:
    RetTy = B.ptr(Op.Return.Pres->ctype());
    break;
  case PKind::FixArr:
    assert(false && "operations cannot return arrays");
    break;
  }

  std::vector<CastParam> Ps;
  if (Corba)
    Ps.push_back(CastParam{B.prim(If.Name), "_obj"});
  for (const PresCParam &Pp : Op.Params) {
    Ps.push_back(CastParam{Pp.SigType, Pp.Name});
    if (!Pp.LenParamName.empty())
      Ps.push_back(CastParam{B.prim("uint32_t"), Pp.LenParamName});
  }
  CastType *StubRet = RetTy;
  if (Corba) {
    Ps.push_back(CastParam{B.ptr(B.prim("CORBA_Environment")), "_ev"});
  } else {
    // rpcgen style: status-returning stub with an explicit result slot.
    if (RetK != PKind::Void)
      Ps.push_back(CastParam{
          decodeRepSigType(B, Op.Return.Pres, AoiParamDir::Out, true,
                           false),
          "_result"});
    Ps.push_back(
        CastParam{B.ptr(B.structTy("flick_client")), "_cli"});
    StubRet = B.prim("int");
  }

  std::vector<CastStmt *> Body;
  Cur = &Body;
  CurEncode = true;
  // --trace-hooks: the stub owns the RPC root span, named after the
  // operation, so traces show per-op marshal/unmarshal children.  The
  // epilogue closes back to the saved depth rather than popping once, so
  // a decode helper that error-returns mid-span cannot skew the stack.
  if (options().TraceHooks) {
    stmt(B.rawStmt("uint32_t _tdepth = flick_trace_depth();"));
    stmt(B.rawStmt("flick_span_begin(FLICK_SPAN_RPC, \"" + Op.CName +
                   "\");"));
  }
  if (Corba)
    stmt(B.varDecl(B.ptr(B.structTy("flick_client")), "_cli",
                   B.arrow(B.id("_obj"), "client")));
  // Local return slot (CORBA style only).
  std::string RetLocal = "_retval";
  if (Corba && RetK != PKind::Void) {
    if (RetK == PKind::Scalar)
      stmt(B.varDecl(RetTy, RetLocal, B.num(0)));
    else
      stmt(B.varDecl(RetTy, RetLocal, B.num(0)));
  }
  if (Corba) {
    stmt(B.exprStmt(B.assign(B.arrow(B.id("_ev"), "_major"),
                             B.id("CORBA_NO_EXCEPTION"))));
    stmt(B.exprStmt(
        B.assign(B.arrow(B.id("_ev"), "_exc_code"), B.num(0))));
    stmt(B.exprStmt(
        B.assign(B.arrow(B.id("_ev"), "_exc_value"), B.num(0))));
  }
  stmt(B.varDecl(B.ptr(B.structTy("flick_buf")), "_buf",
                 B.call("flick_client_begin", {B.id("_cli")})));

  // Encode the request.
  std::vector<CastExpr *> EncArgs = {B.id("_buf"),
                                     B.arrow(B.id("_cli"), "next_xid")};
  for (const PresCParam &Pp : Op.Params) {
    if (Pp.Dir == AoiParamDir::Out)
      continue;
    PKind K = classifyPres(Pp.Pres);
    bool Deref = Pp.Dir == AoiParamDir::InOut &&
                 (K == PKind::Scalar || K == PKind::Str || K == PKind::Opt);
    EncArgs.push_back(Deref ? B.deref(B.id(Pp.Name))
                            : static_cast<CastExpr *>(B.id(Pp.Name)));
    if (!Pp.LenParamName.empty())
      EncArgs.push_back(B.id(Pp.LenParamName));
  }
  stmt(B.varDecl(B.prim("int"), "_err",
                 B.call(Op.CName + "_encode_request", EncArgs)));

  if (Op.Oneway) {
    stmt(B.ifStmt(B.nt(B.id("_err")),
                  B.exprStmt(B.assign(
                      B.id("_err"),
                      B.call("flick_client_send_oneway", {B.id("_cli")})))));
  } else {
    stmt(B.ifStmt(B.nt(B.id("_err")),
                  B.exprStmt(B.assign(
                      B.id("_err"),
                      B.call("flick_client_invoke", {B.id("_cli")})))));
    std::vector<CastExpr *> DecArgs = {
        B.addr(B.arrow(B.id("_cli"), "rep"))};
    if (RetK != PKind::Void)
      DecArgs.push_back(Corba ? B.addr(B.id(RetLocal))
                              : static_cast<CastExpr *>(B.id("_result")));
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::In)
        DecArgs.push_back(B.id(Pp.Name));
    if (Corba)
      DecArgs.push_back(B.id("_ev"));
    stmt(B.ifStmt(B.nt(B.id("_err")),
                  B.exprStmt(B.assign(
                      B.id("_err"),
                      B.call(Op.CName + "_decode_reply", DecArgs)))));
  }

  if (Corba) {
    std::vector<CastStmt *> OnErr;
    OnErr.push_back(B.exprStmt(B.assign(B.arrow(B.id("_ev"), "_major"),
                                        B.id("CORBA_SYSTEM_EXCEPTION"))));
    OnErr.push_back(B.exprStmt(
        B.assign(B.arrow(B.id("_ev"), "_exc_code"),
                 B.castTo(B.prim("uint32_t"), B.id("_err")))));
    stmt(B.ifStmt(B.bin("&&", B.id("_err"),
                        B.eq(B.arrow(B.id("_ev"), "_major"),
                             B.id("CORBA_NO_EXCEPTION"))),
                  B.block(OnErr)));
    if (options().TraceHooks)
      stmt(B.rawStmt("flick_trace_close_to(_tdepth);"));
    if (RetK != PKind::Void)
      stmt(B.ret(B.id(RetLocal)));
  } else {
    if (options().TraceHooks)
      stmt(B.rawStmt("flick_trace_close_to(_tdepth);"));
    stmt(B.ret(B.id("_err")));
  }
  Cur = nullptr;

  auto *Def = B.func(StubRet, Op.CName, Ps, B.block(Body));
  ClientFile.add(Def);
  PublicProtos.push_back(B.func(StubRet, Op.CName, Ps, nullptr));
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

BackendOutput StubGen::run() {
  std::string Guard =
      "FLICK_GEN_" + toUpper(sanitizeIdentifier(BaseName)) + "_H";
  HeaderFile.HeaderGuard = Guard;
  HeaderFile.Includes = {"\"flick_runtime.h\"", "<stdlib.h>",
                         "<string.h>"};
  std::string HdrInc = "\"" + BaseName + ".h\"";
  ClientFile.Includes = {HdrInc};
  ServerFile.Includes = {HdrInc};
  CommonFile.Includes = {HdrInc};

  {
    FLICK_STAT_PHASE("stubs");
    for (const PresCInterface &If : P.Interfaces) {
      genExcEncodeHelper(If);
      for (const PresCOperation &Op : If.Ops) {
        genOpHelpers(If, Op);
        genClientStub(If, Op);
      }
      genServerDispatch(If);
    }
    FLICK_STAT_COUNT("backend.helpers", Helpers.size());
    FLICK_STAT_COUNT("backend.public_protos", PublicProtos.size());
  }
  FLICK_STAT_PHASE("print");

  // Assemble the header: types, helper protos/defs, op helpers, publics.
  HeaderFile.add(B.declComment("Generated by flickc backend '" +
                               BE.name() + "' (" +
                               wireKindName(Layout.kind()) +
                               " encoding), presentation '" + P.Style +
                               "'."));
  for (CastDecl *D : P.TypeDecls)
    HeaderFile.add(D);
  for (CastDecl *D : HelperProtos)
    HeaderFile.add(D);
  for (CastDecl *D : HelperDefs)
    HeaderFile.add(D);
  for (CastDecl *D : OpHelperDefs)
    HeaderFile.add(D);
  for (CastDecl *D : PublicProtos)
    HeaderFile.add(D);

  for (CastDecl *D : CommonDefs)
    CommonFile.add(D);

  BackendOutput Out;
  Out.HeaderName = BaseName + ".h";
  Out.PlanDump = PlanDump;
  Out.Header = printCastFile(HeaderFile);
  Out.ClientSrc = printCastFile(ClientFile);
  Out.ServerSrc = printCastFile(ServerFile);
  if (!CommonDefs.empty())
    Out.CommonSrc = printCastFile(CommonFile);
  return Out;
}
