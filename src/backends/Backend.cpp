//===- backends/Backend.cpp - Optimizing back-end base --------------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// StubGen walks the encode-type -> MINT -> PRES -> CAST chains of a PRES_C
/// and emits the marshal, unmarshal, stub, and dispatch code, applying the
/// paper's optimizations (§3): coalesced buffer checks over fixed segments,
/// chunk-pointer addressing, memcpy for bit-identical arrays, aggressive
/// inlining with out-of-line helpers only for recursive types, scratch/alias
/// parameter management, and switch-based demultiplexing.
///
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"
#include "presgen/PresGen.h"
#include "support/Stats.h"
#include "support/StringExtras.h"
#include <cassert>

using namespace flick;

Backend::~Backend() = default;

BackendOutput Backend::generate(PresC &P, const std::string &BaseName) {
  FLICK_STAT_PHASE("backend");
  FLICK_STAT_COUNT("backend." + name(), 1);
  StubGen G(*this, P, BaseName);
  BackendOutput Out = G.run();
  FLICK_STAT_COUNT("backend.header_bytes", Out.Header.size());
  FLICK_STAT_COUNT("backend.client_bytes", Out.ClientSrc.size());
  FLICK_STAT_COUNT("backend.server_bytes", Out.ServerSrc.size());
  FLICK_STAT_COUNT("backend.common_bytes", Out.CommonSrc.size());
  FLICK_STAT_COUNT("backend.bytes_total",
                   Out.Header.size() + Out.ClientSrc.size() +
                       Out.ServerSrc.size() + Out.CommonSrc.size());
  return Out;
}

//===----------------------------------------------------------------------===//
// Small shared helpers
//===----------------------------------------------------------------------===//

namespace {

/// Broad parameter-shape classification used by the signature tables.
enum class PKind { Scalar, Str, FixArr, Agg, Opt, Void };

PKind classifyPres(const PresNode *P) {
  if (!P)
    return PKind::Void;
  switch (P->kind()) {
  case PresNode::Kind::Void:
    return PKind::Void;
  case PresNode::Kind::Prim:
  case PresNode::Kind::Enum:
    return PKind::Scalar;
  case PresNode::Kind::String:
    return PKind::Str;
  case PresNode::Kind::FixedArray:
    return PKind::FixArr;
  case PresNode::Kind::OptPtr:
    return PKind::Opt;
  case PresNode::Kind::Struct:
  case PresNode::Kind::Counted:
  case PresNode::Kind::Union:
    return PKind::Agg;
  }
  return PKind::Void;
}

bool containsUnionImpl(const PresNode *P, std::set<const PresNode *> &Seen) {
  if (!P || !Seen.insert(P).second)
    return false;
  switch (P->kind()) {
  case PresNode::Kind::Union:
    return true;
  case PresNode::Kind::Struct:
    for (const PresField &F : cast<PresStruct>(P)->fields())
      if (containsUnionImpl(F.Pres, Seen))
        return true;
    return false;
  case PresNode::Kind::FixedArray:
    return containsUnionImpl(cast<PresFixedArray>(P)->elem(), Seen);
  case PresNode::Kind::Counted:
    return containsUnionImpl(cast<PresCounted>(P)->elem(), Seen);
  case PresNode::Kind::OptPtr:
    return containsUnionImpl(cast<PresOptPtr>(P)->elem(), Seen);
  default:
    return false;
  }
}

bool presContainsUnion(const PresNode *P) {
  std::set<const PresNode *> Seen;
  return containsUnionImpl(P, Seen);
}

uint64_t alignUpTo(uint64_t V, uint64_t A) { return (V + A - 1) / A * A; }

bool isAtomicMint(const MintType *T) {
  switch (T->kind()) {
  case MintType::Kind::Integer:
  case MintType::Kind::Float:
  case MintType::Kind::Char:
  case MintType::Kind::Boolean:
    return true;
  default:
    return false;
  }
}

/// True for char/octet elements, which arrays pack one byte each with
/// trailing padding only (the XDR `opaque` convention; CDR packs bytes
/// naturally).  Standalone scalars still use atomSize (XDR widens them).
bool isByteElem(const WireLayout &L, const MintType *T) {
  (void)L;
  if (T->kind() == MintType::Kind::Char)
    return true;
  const auto *I = dyn_cast<MintInteger>(T);
  return I && I->bits() == 8;
}

/// Endianness suffix of the runtime encode/decode primitive family.
const char *endianSuffix(WireKind K) {
  switch (K) {
  case WireKind::Xdr:
  case WireKind::CdrBE:
    return "be";
  case WireKind::CdrLE:
    return "le";
  case WireKind::MachTyped:
  case WireKind::FlukeReg:
    return "ne";
  }
  return "ne";
}

std::string encFnFor(const WireLayout &L, unsigned Size) {
  if (Size == 1)
    return "flick_enc_u8";
  return "flick_enc_u" + std::to_string(Size * 8) + endianSuffix(L.kind());
}

std::string decFnFor(const WireLayout &L, unsigned Size) {
  if (Size == 1)
    return "flick_dec_u8";
  return "flick_dec_u" + std::to_string(Size * 8) + endianSuffix(L.kind());
}

//===----------------------------------------------------------------------===//
// Fixed-layout measurement
//===----------------------------------------------------------------------===//
//
// Exact wire offsets of a fixed-size PRES subtree, mirrored exactly by
// StubGen::emitFixedInChunk.  Chunks start aligned to chunkAlign(), so
// member alignment within a chunk is valid whenever MaxAlign <= chunkAlign.

struct FixedLayout {
  uint64_t Size = 0; ///< exact encoded bytes (before chunk padding)
  unsigned MaxAlign = 1;
  bool IsFixed = true; ///< false when the subtree has variable size
};

class LayoutMeasurer {
public:
  explicit LayoutMeasurer(const WireLayout &L) : L(L) {}

  FixedLayout measure(const PresNode *P) {
    FixedLayout FL;
    uint64_t Off = 0;
    FL.IsFixed = walk(P, Off, FL.MaxAlign);
    FL.Size = Off;
    return FL;
  }

  /// Measures a run of items laid out sequentially (struct fields or
  /// top-level parameters sharing one chunk).
  FixedLayout measureSeq(const std::vector<const PresNode *> &Items) {
    FixedLayout FL;
    uint64_t Off = 0;
    for (const PresNode *P : Items)
      if (!walk(P, Off, FL.MaxAlign)) {
        FL.IsFixed = false;
        break;
      }
    FL.Size = Off;
    return FL;
  }

  bool walk(const PresNode *P, uint64_t &Off, unsigned &MaxAlign) {
    if (!P)
      return true;
    if (!Seen.insert(P).second)
      return false; // recursive types are never fixed-size
    bool Ok = walkNew(P, Off, MaxAlign);
    Seen.erase(P);
    return Ok;
  }

private:
  bool walkNew(const PresNode *P, uint64_t &Off, unsigned &MaxAlign) {
    switch (P->kind()) {
    case PresNode::Kind::Void:
      return true;
    case PresNode::Kind::Prim:
    case PresNode::Kind::Enum: {
      unsigned A = L.atomAlign(P->mint());
      unsigned S = L.atomSize(P->mint());
      Off = alignUpTo(Off, A);
      Off += S;
      MaxAlign = std::max(MaxAlign, A);
      return true;
    }
    case PresNode::Kind::Struct: {
      for (const PresField &F : cast<PresStruct>(P)->fields())
        if (!walk(F.Pres, Off, MaxAlign))
          return false;
      return true;
    }
    case PresNode::Kind::FixedArray: {
      const auto *A = cast<PresFixedArray>(P);
      const MintType *EM = A->elem()->mint();
      if (isByteElem(L, EM)) {
        unsigned PU = L.padUnit();
        Off = alignUpTo(Off, PU);
        Off += L.padded(A->count());
        MaxAlign = std::max<unsigned>(MaxAlign, PU);
        return true;
      }
      FixedLayout EL;
      {
        uint64_t EOff = 0;
        if (!walk(A->elem(), EOff, EL.MaxAlign))
          return false;
        EL.Size = EOff;
      }
      uint64_t Stride = L.padded(
          alignUpTo(EL.Size, std::max<uint64_t>(EL.MaxAlign, 1)));
      Off = alignUpTo(Off, std::max<unsigned>(EL.MaxAlign, 1));
      Off += A->count() * Stride;
      MaxAlign = std::max(MaxAlign, EL.MaxAlign);
      return true;
    }
    case PresNode::Kind::Counted:
    case PresNode::Kind::String:
    case PresNode::Kind::OptPtr:
    case PresNode::Kind::Union:
      return false;
    }
    return false;
  }

  const WireLayout &L;
  std::set<const PresNode *> Seen;
};

//===----------------------------------------------------------------------===//
// Aggregate bit-identity (USC-style extension; the paper's §3.2 future
// work): a presented aggregate whose host-C layout matches its wire
// layout byte for byte may be block-copied whole.
//===----------------------------------------------------------------------===//

/// Host-C size/alignment of a presented scalar (System V x86-64-ish
/// rules: natural alignment; enums are int-sized).  The generated code
/// carries a static_assert so a mismatched ABI fails the build instead of
/// corrupting messages.
struct CScalar {
  unsigned Size = 0;
  unsigned Align = 0;
};

CScalar hostScalarOf(const PresNode *P) {
  if (isa<PresEnum>(P))
    return {4, 4};
  const MintType *T = P->mint();
  switch (T->kind()) {
  case MintType::Kind::Integer: {
    unsigned S = cast<MintInteger>(T)->bits() / 8;
    return {S, S};
  }
  case MintType::Kind::Float: {
    unsigned S = cast<MintFloat>(T)->bits() / 8;
    return {S, S};
  }
  case MintType::Kind::Char:
  case MintType::Kind::Boolean:
    return {1, 1};
  default:
    return {0, 0};
  }
}

/// Walks wire and host layouts in lockstep; true when every scalar lands
/// at the same offset with the same size and no byte swap, i.e. the
/// encoded bytes equal the in-memory bytes.
bool walkBitIdentical(const PresNode *P, const WireLayout &L,
                      uint64_t &WOff, uint64_t &COff, unsigned &CAlign) {
  switch (P->kind()) {
  case PresNode::Kind::Prim:
  case PresNode::Kind::Enum: {
    CScalar H = hostScalarOf(P);
    if (!H.Size || !L.hostIdentical(P->mint()))
      return false;
    unsigned WA = L.atomAlign(P->mint());
    unsigned WS = L.atomSize(P->mint());
    WOff = alignUpTo(WOff, WA);
    COff = alignUpTo(COff, H.Align);
    if (WOff != COff || WS != H.Size)
      return false;
    WOff += WS;
    COff += H.Size;
    CAlign = std::max(CAlign, H.Align);
    return true;
  }
  case PresNode::Kind::Struct: {
    uint64_t SW = WOff, SC = COff;
    unsigned Inner = 1;
    for (const PresField &F : cast<PresStruct>(P)->fields())
      if (!walkBitIdentical(F.Pres, L, WOff, COff, Inner))
        return false;
    // C pads the struct tail to its alignment; the wire stride (computed
    // by LayoutMeasurer) pads to max member alignment the same way, so
    // require the padded ends to agree.
    uint64_t CEnd = alignUpTo(COff, Inner);
    uint64_t WEnd = alignUpTo(WOff, Inner);
    if (CEnd - SC != WEnd - SW)
      return false;
    WOff = WEnd;
    COff = CEnd;
    CAlign = std::max(CAlign, Inner);
    return true;
  }
  case PresNode::Kind::FixedArray: {
    const auto *A = cast<PresFixedArray>(P);
    for (uint64_t I = 0; I != A->count(); ++I)
      if (!walkBitIdentical(A->elem(), L, WOff, COff, CAlign))
        return false;
    return true;
  }
  default:
    return false;
  }
}

/// True when arrays of \p Elem may be copied whole with memcpy under
/// \p L; \p StrideOut receives the shared element stride.
bool presBitIdentical(const PresNode *Elem, const WireLayout &L,
                      uint64_t &StrideOut) {
  uint64_t W = 0, C = 0;
  unsigned Align = 1;
  if (!walkBitIdentical(Elem, L, W, C, Align))
    return false;
  uint64_t CStride = alignUpTo(C, Align);
  // The wire stride emitArrayElems uses comes from LayoutMeasurer.
  LayoutMeasurer M(L);
  FixedLayout FL = M.measure(Elem);
  if (!FL.IsFixed)
    return false;
  uint64_t WStride = L.padded(
      alignUpTo(FL.Size, std::max<uint64_t>(FL.MaxAlign, 1)));
  if (CStride != WStride)
    return false;
  StrideOut = CStride;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// StubGen basics
//===----------------------------------------------------------------------===//

StubGen::StubGen(Backend &BE, PresC &P, const std::string &BaseName)
    : BE(BE), P(P), BaseName(BaseName), B(P.Cast), Layout(BE.wire()) {
  UseEnv = P.Style == "corba" || P.Style == "fluke";
}

std::string StubGen::freshVar(const std::string &Hint) {
  return Hint + std::to_string(++VarCounter);
}

void StubGen::checkCall(CastExpr *Call, const char *ErrId) {
  stmt(B.ifStmt(Call, B.ret(B.id(ErrId))));
}

void StubGen::checkAvail(CastExpr *N) {
  stmt(B.ifStmt(B.nt(B.call("flick_buf_check", {bufExpr(), N})),
                B.ret(B.id("FLICK_ERR_DECODE"))));
}

unsigned StubGen::chunkAlign() const {
  return Layout.kind() == WireKind::Xdr ? 4 : 8;
}

void StubGen::alignTo(unsigned Align) {
  if (Align <= 1)
    return;
  assert(!ChunkActive && "alignTo with open chunk");
  if (CurEncode)
    checkCall(B.call("flick_buf_align_write", {bufExpr(), B.unum(Align)}),
              "FLICK_ERR_ALLOC");
  else
    checkCall(B.call("flick_buf_align_read", {bufExpr(), B.unum(Align)}),
              "FLICK_ERR_DECODE");
}

std::string StubGen::markPosition() {
  LastMark = freshVar("_mark");
  stmt(B.varDecl(B.prim("size_t"), LastMark,
                 B.arrow(bufExpr(), "len")));
  return LastMark;
}

void StubGen::openChunk(uint64_t Bytes) {
  assert(!ChunkActive && "chunk already open");
  ChunkActive = true;
  ChunkEncode = CurEncode;
  ChunkOff = 0;
  ChunkCap = Bytes;
  ChunkVar = "_chk" + std::to_string(++ChunkCounter);
  if (ChunkEncode) {
    if (NoEnsure == 0)
      checkCall(B.call("flick_buf_ensure", {bufExpr(), B.unum(Bytes)}),
                "FLICK_ERR_ALLOC");
    stmt(B.varDecl(B.ptr(B.prim("uint8_t")), ChunkVar,
                   B.call("flick_buf_grab", {bufExpr(), B.unum(Bytes)})));
  } else {
    checkAvail(B.unum(Bytes));
    stmt(B.varDecl(B.constPtr(B.prim("uint8_t")), ChunkVar,
                   B.call("flick_buf_take", {bufExpr(), B.unum(Bytes)})));
  }
}

/// Chunk-relative address expression `_chk + Off` (or just `_chk`).
static CastExpr *chunkAddr(CastBuilder &B, const std::string &Var,
                           uint64_t Off) {
  if (Off == 0)
    return B.id(Var);
  return B.add(B.id(Var), B.unum(Off));
}

void StubGen::closeChunk() {
  assert(ChunkActive && "no chunk open");
  assert(ChunkOff <= ChunkCap && "chunk overflow");
  // Zero trailing chunk padding on the encode side so the wire is
  // deterministic (presentations of one interface must produce identical
  // messages -- paper §2).
  if (ChunkEncode && ChunkOff < ChunkCap)
    stmt(B.exprStmt(B.call("memset",
                           {chunkAddr(B, ChunkVar, ChunkOff), B.num(0),
                            B.unum(ChunkCap - ChunkOff)})));
  ChunkActive = false;
}

void StubGen::putWire(unsigned Size, CastExpr *WireVal) {
  assert(ChunkActive && ChunkEncode && "putWire outside encode chunk");
  unsigned Align = Layout.kind() == WireKind::Xdr ? 4 : Size;
  uint64_t Aligned = alignUpTo(ChunkOff, Align);
  if (Aligned != ChunkOff) // zero alignment gaps for determinism
    stmt(B.exprStmt(B.call("memset",
                           {chunkAddr(B, ChunkVar, ChunkOff), B.num(0),
                            B.unum(Aligned - ChunkOff)})));
  ChunkOff = Aligned;
  stmt(B.exprStmt(B.call(encFnFor(Layout, Size),
                         {chunkAddr(B, ChunkVar, ChunkOff), WireVal})));
  ChunkOff += Size;
}

CastExpr *StubGen::getWire(unsigned Size) {
  assert(ChunkActive && !ChunkEncode && "getWire outside decode chunk");
  unsigned Align = Layout.kind() == WireKind::Xdr ? 4 : Size;
  ChunkOff = alignUpTo(ChunkOff, Align);
  CastExpr *Load =
      B.call(decFnFor(Layout, Size), {chunkAddr(B, ChunkVar, ChunkOff)});
  ChunkOff += Size;
  return Load;
}

void StubGen::putU8(CastExpr *V) { putWire(1, V); }
void StubGen::putU16(CastExpr *V) { putWire(2, V); }
void StubGen::putU32(CastExpr *V) { putWire(4, V); }
void StubGen::putU64(CastExpr *V) { putWire(8, V); }
CastExpr *StubGen::getU8() { return getWire(1); }
CastExpr *StubGen::getU16() { return getWire(2); }
CastExpr *StubGen::getU32() { return getWire(4); }
CastExpr *StubGen::getU64() { return getWire(8); }

void StubGen::putBytes(const std::string &Bytes) {
  assert(ChunkActive && ChunkEncode && "putBytes outside encode chunk");
  stmt(B.exprStmt(B.call(
      "memcpy", {chunkAddr(B, ChunkVar, ChunkOff), B.str(Bytes),
                 B.unum(Bytes.size())})));
  ChunkOff += Bytes.size();
}

//===----------------------------------------------------------------------===//
// Atomic conversion helpers
//===----------------------------------------------------------------------===//

/// Converts the presented C value \p Val to its wire integer and stores it
/// at the current chunk offset.
void StubGen::putAtomicConv(const PresNode *P, CastExpr *Val) {
  const MintType *T = P->mint();
  unsigned Size = Layout.atomSize(T);
  CastExpr *Wire = Val;
  switch (T->kind()) {
  case MintType::Kind::Integer: {
    const char *U = Size == 8 ? "uint64_t"
                    : Size == 4 ? "uint32_t"
                    : Size == 2 ? "uint16_t"
                                : "uint8_t";
    Wire = B.castTo(B.prim(U), Val);
    break;
  }
  case MintType::Kind::Float:
    Wire = B.call(cast<MintFloat>(T)->bits() == 64 ? "flick_f64_bits"
                                                   : "flick_f32_bits",
                  {Val});
    break;
  case MintType::Kind::Char:
    Wire = Size == 4
               ? B.castTo(B.prim("uint32_t"),
                          B.castTo(B.prim("unsigned char"), Val))
               : B.castTo(B.prim("uint8_t"), Val);
    break;
  case MintType::Kind::Boolean:
    Wire = B.castTo(B.prim(Size == 4 ? "uint32_t" : "uint8_t"), Val);
    break;
  default:
    assert(false && "putAtomicConv on non-atomic");
  }
  putWire(Size, Wire);
}

/// Loads an atomic from the chunk and assigns the converted value to
/// \p Val.
void StubGen::getAtomicConv(const PresNode *P, CastExpr *Val) {
  const MintType *T = P->mint();
  unsigned Size = Layout.atomSize(T);
  CastExpr *Load = getWire(Size);
  CastExpr *Conv = Load;
  if (isa<PresEnum>(P)) {
    Conv = B.castTo(P->ctype(), Load);
  } else {
    switch (T->kind()) {
    case MintType::Kind::Integer: {
      const auto *I = cast<MintInteger>(T);
      unsigned HostBytes = I->bits() / 8;
      if (HostBytes != Size) // XDR widened small integers
        Conv = B.castTo(B.prim("uint" + std::to_string(I->bits()) + "_t"),
                        Load);
      if (I->isSigned())
        Conv = B.castTo(
            B.prim("int" + std::to_string(I->bits()) + "_t"), Conv);
      break;
    }
    case MintType::Kind::Float:
      Conv = B.call(cast<MintFloat>(T)->bits() == 64 ? "flick_bits_f64"
                                                     : "flick_bits_f32",
                    {Load});
      break;
    case MintType::Kind::Char:
      Conv = B.castTo(B.prim("char"), Load);
      break;
    case MintType::Kind::Boolean:
      Conv = B.castTo(B.prim("uint8_t"), B.bin("!=", Load, B.num(0)));
      break;
    default:
      assert(false && "getAtomicConv on non-atomic");
    }
  }
  stmt(B.exprStmt(B.assign(Val, Conv)));
}

void StubGen::emitAtomicValue(const PresNode *P, CastExpr *Val,
                              bool Encode) {
  if (options().PerDatumCalls) {
    emitNaiveAtomic(P, Val, Encode);
    return;
  }
  bool Single = !ChunkActive;
  if (Single) {
    unsigned Size = Layout.atomSize(P->mint());
    openChunk(Layout.padded(Size));
  }
  if (Encode)
    putAtomicConv(P, Val);
  else
    getAtomicConv(P, Val);
  if (Single)
    closeChunk();
}

/// Traditional per-datum marshaling: one out-of-line runtime call per
/// atomic value, with its own buffer check and cursor bump.
void StubGen::emitNaiveAtomic(const PresNode *P, CastExpr *Val,
                              bool Encode) {
  const MintType *T = P->mint();
  unsigned Size = Layout.atomSize(T);
  int BigEndian = endianSuffix(Layout.kind())[0] == 'b' ? 1 : 0;
  std::string Fn = std::string(Encode ? "flick_naive_put_u"
                                      : "flick_naive_get_u") +
                   std::to_string(Size * 8);
  if (Encode) {
    // Reuse the conversion logic: wire value expression.
    CastExpr *Wire = Val;
    switch (T->kind()) {
    case MintType::Kind::Float:
      Wire = B.call(cast<MintFloat>(T)->bits() == 64 ? "flick_f64_bits"
                                                     : "flick_f32_bits",
                    {Val});
      break;
    case MintType::Kind::Char:
      Wire = Size == 4 ? B.castTo(B.prim("uint32_t"),
                                  B.castTo(B.prim("unsigned char"), Val))
                       : B.castTo(B.prim("uint8_t"), Val);
      break;
    default: {
      const char *U = Size == 8 ? "uint64_t"
                      : Size == 4 ? "uint32_t"
                      : Size == 2 ? "uint16_t"
                                  : "uint8_t";
      Wire = B.castTo(B.prim(U), Val);
    }
    }
    std::vector<CastExpr *> Args = {bufExpr(), Wire};
    if (Size > 1)
      Args.push_back(B.num(BigEndian));
    checkCall(B.call(Fn, Args), "FLICK_ERR_ALLOC");
    return;
  }
  std::string Tmp = freshVar("_t");
  const char *U = Size == 8 ? "uint64_t"
                  : Size == 4 ? "uint32_t"
                  : Size == 2 ? "uint16_t"
                              : "uint8_t";
  stmt(B.varDecl(B.prim(U), Tmp));
  std::vector<CastExpr *> Args = {bufExpr(), B.addr(B.id(Tmp))};
  if (Size > 1)
    Args.push_back(B.num(BigEndian));
  checkCall(B.call(Fn, Args), "FLICK_ERR_DECODE");
  CastExpr *Conv = B.id(Tmp);
  if (isa<PresEnum>(P)) {
    Conv = B.castTo(P->ctype(), Conv);
  } else {
    switch (T->kind()) {
    case MintType::Kind::Integer: {
      const auto *I = cast<MintInteger>(T);
      if (I->bits() / 8 != Size)
        Conv = B.castTo(B.prim("uint" + std::to_string(I->bits()) + "_t"),
                        Conv);
      if (I->isSigned())
        Conv = B.castTo(B.prim("int" + std::to_string(I->bits()) + "_t"),
                        Conv);
      break;
    }
    case MintType::Kind::Float:
      Conv = B.call(cast<MintFloat>(T)->bits() == 64 ? "flick_bits_f64"
                                                     : "flick_bits_f32",
                    {Conv});
      break;
    case MintType::Kind::Char:
      Conv = B.castTo(B.prim("char"), Conv);
      break;
    case MintType::Kind::Boolean:
      Conv = B.castTo(B.prim("uint8_t"), B.bin("!=", Conv, B.num(0)));
      break;
    default:
      break;
    }
  }
  stmt(B.exprStmt(B.assign(Val, Conv)));
}

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

CastExpr *StubGen::allocExpr(const AllocSemantics &A, CastExpr *Bytes) {
  // Scratch storage is the default when the presentation allows it and the
  // option is on; the helper falls back to malloc when no arena is in
  // scope (client side passes a null arena).  Paper §3.1, "Parameter
  // Management".
  if (options().ScratchAlloc && A.AllowStackAlloc && ServerSide)
    return B.call("flick_arena_alloc", {B.id("_ar"), Bytes});
  return B.call("malloc", {Bytes});
}

//===----------------------------------------------------------------------===//
// emitValue: policy wrapper
//===----------------------------------------------------------------------===//

void StubGen::emitValue(const PresNode *P, CastExpr *Val, bool Encode) {
  CurEncode = Encode;
  PKind K = classifyPres(P);
  if (K == PKind::Void)
    return;

  // Recursive types and non-inlining mode go through out-of-line helpers
  // (paper §3.3: Flick inlines everything except recursive types).  The
  // helper-root check comes first: when generating a helper body, the node
  // is already on the emission stack and must inline exactly once.
  bool NonScalar = K != PKind::Scalar;
  const PresNode *SavedRoot = HelperRoot;
  if (P == HelperRoot) {
    HelperRoot = nullptr;
  } else if (Emitting.count(P) ||
             (!options().Inline && NonScalar)) {
    callHelper(P, Val, Encode);
    return;
  }
  bool Inserted = Emitting.insert(P).second;

  bool Handled = false;
  if (options().Chunk && !ChunkActive && !presContainsUnion(P)) {
    LayoutMeasurer M(Layout);
    FixedLayout FL = M.measure(P);
    if (FL.IsFixed) {
      // One buffer check for the whole fixed segment, then static-offset
      // chunk addressing (paper §3.1/§3.2).
      if (FL.Size > 0) {
        openChunk(alignUpTo(FL.Size, chunkAlign()));
        emitFixedInChunk(P, Val, Encode);
        closeChunk();
      }
      Handled = true;
    } else if (Encode && NoEnsure == 0) {
      StorageInfo SI = analyzeStorage(P->mint(), Layout);
      if (SI.Class == StorageClass::Bounded &&
          SI.MaxBytes + 16 <= options().BoundedThreshold) {
        // Variable but bounded below the threshold: ensure the maximum
        // once, then marshal with no further space checks.
        checkCall(B.call("flick_buf_ensure",
                         {bufExpr(), B.unum(SI.MaxBytes + 16)}),
                  "FLICK_ERR_ALLOC");
        ++NoEnsure;
        emitValueInner(P, Val, Encode);
        --NoEnsure;
        Handled = true;
      }
    }
  }
  if (!Handled)
    emitValueInner(P, Val, Encode);

  if (Inserted)
    Emitting.erase(P);
  HelperRoot = SavedRoot;
}

void StubGen::emitValueInner(const PresNode *P, CastExpr *Val, bool Encode) {
  switch (P->kind()) {
  case PresNode::Kind::Void:
    return;
  case PresNode::Kind::Prim:
  case PresNode::Kind::Enum:
    emitAtomicValue(P, Val, Encode);
    return;
  case PresNode::Kind::Struct:
    emitStruct(cast<PresStruct>(P), Val, Encode);
    return;
  case PresNode::Kind::FixedArray: {
    const auto *A = cast<PresFixedArray>(P);
    emitArrayElems(A->elem(), Val, B.unum(A->count()), Encode);
    return;
  }
  case PresNode::Kind::Counted:
    emitCounted(cast<PresCounted>(P), Val, Encode);
    return;
  case PresNode::Kind::String:
    emitString(cast<PresString>(P), Val, Encode);
    return;
  case PresNode::Kind::OptPtr:
    emitOptPtr(cast<PresOptPtr>(P), Val, Encode);
    return;
  case PresNode::Kind::Union:
    emitUnion(cast<PresUnion>(P), Val, Encode);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Fixed-chunk emission (mirrors LayoutMeasurer)
//===----------------------------------------------------------------------===//

uint64_t StubGen::elemStrideOf(const PresNode *Elem) const {
  LayoutMeasurer M(Layout);
  FixedLayout EL = M.measure(Elem);
  assert(EL.IsFixed && "stride of variable element");
  return Layout.padded(
      alignUpTo(EL.Size, std::max<uint64_t>(EL.MaxAlign, 1)));
}

void StubGen::emitFixedInChunk(const PresNode *P, CastExpr *Val,
                               bool Encode) {
  switch (P->kind()) {
  case PresNode::Kind::Void:
    return;
  case PresNode::Kind::Prim:
  case PresNode::Kind::Enum:
    if (Encode)
      putAtomicConv(P, Val);
    else
      getAtomicConv(P, Val);
    return;
  case PresNode::Kind::Struct:
    for (const PresField &F : cast<PresStruct>(P)->fields())
      emitFixedInChunk(F.Pres, B.mem(Val, F.CName), Encode);
    return;
  case PresNode::Kind::FixedArray: {
    const auto *A = cast<PresFixedArray>(P);
    const PresNode *Elem = A->elem();
    const MintType *EM = Elem->mint();
    uint64_t N = A->count();
    if (isByteElem(Layout, EM)) {
      // Packed byte array (XDR opaque semantics): one memcpy.
      ChunkOff = alignUpTo(ChunkOff, Layout.padUnit());
      CastExpr *Addr = chunkAddr(B, ChunkVar, ChunkOff);
      if (Encode) {
        stmt(B.exprStmt(B.call("memcpy", {Addr, Val, B.unum(N)})));
        uint64_t Pad = Layout.padded(N) - N;
        if (Pad)
          stmt(B.exprStmt(B.call(
              "memset",
              {chunkAddr(B, ChunkVar, ChunkOff + N), B.num(0),
               B.unum(Pad)})));
      } else {
        stmt(B.exprStmt(B.call(
            "memcpy", {Val, B.castTo(B.constPtr(B.voidTy()), Addr),
                       B.unum(N)})));
      }
      ChunkOff += Layout.padded(N);
      return;
    }
    if (isAtomicMint(EM)) {
      unsigned S = Layout.atomSize(EM);
      unsigned HostS = S; // hostIdentical implies sizes match
      ChunkOff = alignUpTo(ChunkOff, Layout.atomAlign(EM));
      CastExpr *Addr = chunkAddr(B, ChunkVar, ChunkOff);
      if (options().Memcpy && Layout.hostIdentical(EM)) {
        if (Encode)
          stmt(B.exprStmt(
              B.call("memcpy", {Addr, Val, B.unum(N * HostS)})));
        else
          stmt(B.exprStmt(B.call(
              "memcpy", {Val, B.castTo(B.constPtr(B.voidTy()), Addr),
                         B.unum(N * HostS)})));
        ChunkOff += N * S;
        return;
      }
      // Endian-mismatched arrays marshal through an element loop with
      // chunk-relative addressing; with the single coalesced space check
      // the compiler vectorizes it to a byte-swapping block copy (the
      // modern equivalent of the paper's USC-style swap copy).
      uint64_t Stride = S;
      std::string IV = freshVar("_i");
      uint64_t BaseOff = ChunkOff;
      std::vector<CastStmt *> Body;
      auto *SaveCur = Cur;
      uint64_t SaveOff = ChunkOff;
      std::string SaveVar = ChunkVar;
      uint64_t SaveCap = ChunkCap;
      std::string EP = freshVar("_ep");
      Cur = &Body;
      stmt(B.varDecl(Encode ? B.ptr(B.prim("uint8_t"))
                            : B.constPtr(B.prim("uint8_t")),
                     EP,
                     B.add(chunkAddr(B, SaveVar, BaseOff),
                           B.mul(B.id(IV), B.unum(Stride)))));
      ChunkVar = EP;
      ChunkOff = 0;
      ChunkCap = Stride;
      emitFixedInChunk(A->elem(), B.idx(Val, B.id(IV)), Encode);
      Cur = SaveCur;
      ChunkVar = SaveVar;
      ChunkCap = SaveCap;
      ChunkOff = SaveOff + N * Stride;
      stmt(B.forStmt(
          B.varDecl(B.prim("size_t"), IV, B.num(0)),
          B.lt(B.id(IV), B.unum(N)),
          B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))), B.block(Body)));
      return;
    }
    // Fixed array of fixed aggregates: loop with per-element chunk base.
    uint64_t Stride = elemStrideOf(Elem);
    LayoutMeasurer M(Layout);
    FixedLayout EL = M.measure(Elem);
    ChunkOff = alignUpTo(ChunkOff, std::max<unsigned>(EL.MaxAlign, 1));
    uint64_t BaseOff = ChunkOff;
    std::string IV = freshVar("_i");
    std::vector<CastStmt *> Body;
    auto *SaveCur = Cur;
    uint64_t SaveOff = ChunkOff;
    std::string SaveVar = ChunkVar;
    uint64_t SaveCap = ChunkCap;
    std::string EP = freshVar("_ep");
    Cur = &Body;
    stmt(B.varDecl(Encode ? B.ptr(B.prim("uint8_t"))
                          : B.constPtr(B.prim("uint8_t")),
                   EP,
                   B.add(chunkAddr(B, SaveVar, BaseOff),
                         B.mul(B.id(IV), B.unum(Stride)))));
    ChunkVar = EP;
    ChunkOff = 0;
    ChunkCap = Stride;
    emitFixedInChunk(Elem, B.idx(Val, B.id(IV)), Encode);
    Cur = SaveCur;
    ChunkVar = SaveVar;
    ChunkCap = SaveCap;
    ChunkOff = SaveOff + A->count() * Stride;
    stmt(B.forStmt(B.varDecl(B.prim("size_t"), IV, B.num(0)),
                   B.lt(B.id(IV), B.unum(A->count())),
                   B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
                   B.block(Body)));
    return;
  }
  default:
    assert(false && "variable-size node inside fixed chunk");
  }
}

//===----------------------------------------------------------------------===//
// Sequences (struct fields / parameter lists): greedy fixed-run chunking
//===----------------------------------------------------------------------===//

void StubGen::emitSequence(
    const std::vector<std::pair<const PresNode *, CastExpr *>> &Items,
    bool Encode) {
  CurEncode = Encode;
  std::vector<std::pair<const PresNode *, CastExpr *>> Run;

  auto FlushRun = [&] {
    if (Run.empty())
      return;
    if (Run.size() == 1) {
      // Single item: let emitValue pick the best strategy (it will chunk
      // it by itself).
      emitValue(Run[0].first, Run[0].second, Encode);
      Run.clear();
      return;
    }
    LayoutMeasurer M(Layout);
    std::vector<const PresNode *> Ps;
    for (auto &[Pn, V] : Run)
      Ps.push_back(Pn);
    FixedLayout FL = M.measureSeq(Ps);
    assert(FL.IsFixed && "non-fixed item in run");
    if (FL.Size > 0) {
      openChunk(alignUpTo(FL.Size, chunkAlign()));
      for (auto &[Pn, V] : Run)
        emitFixedInChunk(Pn, V, Encode);
      closeChunk();
    }
    Run.clear();
  };

  for (const auto &[Pn, V] : Items) {
    if (classifyPres(Pn) == PKind::Void)
      continue;
    bool CanRun = options().Chunk && !presContainsUnion(Pn) &&
                  !Emitting.count(Pn) &&
                  (options().Inline || classifyPres(Pn) == PKind::Scalar);
    if (CanRun) {
      LayoutMeasurer M(Layout);
      if (M.measure(Pn).IsFixed) {
        Run.push_back({Pn, V});
        continue;
      }
    }
    FlushRun();
    emitValue(Pn, V, Encode);
  }
  FlushRun();
}

void StubGen::emitStruct(const PresStruct *P, CastExpr *Val, bool Encode) {
  std::vector<std::pair<const PresNode *, CastExpr *>> Items;
  for (const PresField &F : P->fields())
    Items.push_back({F.Pres, B.mem(Val, F.CName)});
  emitSequence(Items, Encode);
}

//===----------------------------------------------------------------------===//
// Arrays
//===----------------------------------------------------------------------===//

/// Shared element path once a destination/source base pointer and runtime
/// count are known.  Handles memcpy/swap bulk copies and per-element loops.
void StubGen::emitArrayElems(const PresNode *Elem, CastExpr *BaseE,
                             CastExpr *CountE, bool Encode) {
  const MintType *EM = Elem->mint();
  unsigned CA = chunkAlign();

  // Bulk byte copy (strings use emitString, so this is opaque/char data).
  if (isByteElem(Layout, EM)) {
    std::string NB = freshVar("_nb");
    stmt(B.varDecl(B.prim("size_t"), NB,
                   B.castTo(B.prim("size_t"), CountE)));
    if (Encode) {
      if (NoEnsure == 0)
        checkCall(B.call("flick_buf_ensure", {bufExpr(), B.id(NB)}),
                  "FLICK_ERR_ALLOC");
      stmt(B.exprStmt(B.call(
          "memcpy",
          {B.call("flick_buf_grab", {bufExpr(), B.id(NB)}), BaseE,
           B.id(NB)})));
    } else {
      checkAvail(B.id(NB));
      stmt(B.exprStmt(B.call(
          "memcpy",
          {BaseE,
           B.castTo(B.constPtr(B.voidTy()),
                    B.call("flick_buf_take", {bufExpr(), B.id(NB)})),
           B.id(NB)})));
    }
    alignTo(Layout.padUnit() > 1 ? Layout.padUnit() : CA);
    return;
  }

  if (isAtomicMint(EM)) {
    unsigned S = Layout.atomSize(EM);
    const auto *I = dyn_cast<MintInteger>(EM);
    bool SizeMatch = !I || I->bits() / 8 == S;
    std::string NB = freshVar("_nb");
    if (options().Memcpy && Layout.hostIdentical(EM)) {
      stmt(B.varDecl(B.prim("size_t"), NB,
                     B.mul(B.castTo(B.prim("size_t"), CountE), B.unum(S))));
      if (Encode) {
        if (NoEnsure == 0)
          checkCall(B.call("flick_buf_ensure", {bufExpr(), B.id(NB)}),
                    "FLICK_ERR_ALLOC");
        stmt(B.exprStmt(B.call(
            "memcpy",
            {B.call("flick_buf_grab", {bufExpr(), B.id(NB)}), BaseE,
             B.id(NB)})));
      } else {
        checkAvail(B.id(NB));
        stmt(B.exprStmt(B.call(
            "memcpy",
            {BaseE,
             B.castTo(B.constPtr(B.voidTy()),
                      B.call("flick_buf_take", {bufExpr(), B.id(NB)})),
             B.id(NB)})));
      }
      alignTo(CA);
      return;
    }
    (void)S;
    (void)SizeMatch;
  }

  // USC-style aggregate block copy (the paper's §3.2 future work): when
  // the element's host layout is bit-identical to its wire layout, whole
  // arrays of aggregates move with one memcpy.  A static_assert in the
  // generated code pins the ABI assumption.
  uint64_t IdStride = 0;
  if (options().Memcpy && classifyPres(Elem) != PKind::Scalar &&
      Elem->ctype() && presBitIdentical(Elem, Layout, IdStride)) {
    stmt(B.rawStmt("static_assert(sizeof(" +
                   printCastType(Elem->ctype(), "") + ") == " +
                   std::to_string(IdStride) +
                   ", \"wire/host layout assumption\");"));
    std::string NB = freshVar("_nb");
    stmt(B.varDecl(
        B.prim("size_t"), NB,
        B.mul(B.castTo(B.prim("size_t"), CountE), B.unum(IdStride))));
    if (Encode) {
      if (NoEnsure == 0)
        checkCall(B.call("flick_buf_ensure", {bufExpr(), B.id(NB)}),
                  "FLICK_ERR_ALLOC");
      stmt(B.exprStmt(B.call(
          "memcpy",
          {B.call("flick_buf_grab", {bufExpr(), B.id(NB)}), BaseE,
           B.id(NB)})));
    } else {
      checkAvail(B.id(NB));
      stmt(B.exprStmt(B.call(
          "memcpy",
          {BaseE,
           B.castTo(B.constPtr(B.voidTy()),
                    B.call("flick_buf_take", {bufExpr(), B.id(NB)})),
           B.id(NB)})));
    }
    alignTo(CA);
    return;
  }

  // Fixed-size elements: one space check for the whole array, then a loop
  // with chunk-relative addressing (this is how the paper's rectangle
  // arrays marshal).
  LayoutMeasurer M(Layout);
  FixedLayout EL = M.measure(Elem);
  if (options().Chunk && EL.IsFixed && !presContainsUnion(Elem) &&
      (options().Inline || classifyPres(Elem) == PKind::Scalar)) {
    uint64_t Stride = elemStrideOf(Elem);
    std::string NB = freshVar("_nb");
    stmt(B.varDecl(
        B.prim("size_t"), NB,
        B.mul(B.castTo(B.prim("size_t"), CountE), B.unum(Stride))));
    std::string Base = freshVar("_ab");
    if (Encode) {
      if (NoEnsure == 0)
        checkCall(B.call("flick_buf_ensure", {bufExpr(), B.id(NB)}),
                  "FLICK_ERR_ALLOC");
      stmt(B.varDecl(B.ptr(B.prim("uint8_t")), Base,
                     B.call("flick_buf_grab", {bufExpr(), B.id(NB)})));
    } else {
      checkAvail(B.id(NB));
      stmt(B.varDecl(B.constPtr(B.prim("uint8_t")), Base,
                     B.call("flick_buf_take", {bufExpr(), B.id(NB)})));
    }
    std::string IV = freshVar("_i");
    std::vector<CastStmt *> Body;
    auto *SaveCur = Cur;
    Cur = &Body;
    std::string EP = freshVar("_ep");
    stmt(B.varDecl(Encode ? B.ptr(B.prim("uint8_t"))
                          : B.constPtr(B.prim("uint8_t")),
                   EP,
                   B.add(B.id(Base), B.mul(B.id(IV), B.unum(Stride)))));
    bool SaveActive = ChunkActive;
    ChunkActive = true;
    ChunkEncode = Encode;
    std::string SaveVar = ChunkVar;
    uint64_t SaveOff = ChunkOff, SaveCap = ChunkCap;
    ChunkVar = EP;
    ChunkOff = 0;
    ChunkCap = Stride;
    emitFixedInChunk(Elem, B.idx(BaseE, B.id(IV)), Encode);
    ChunkActive = SaveActive;
    ChunkVar = SaveVar;
    ChunkOff = SaveOff;
    ChunkCap = SaveCap;
    Cur = SaveCur;
    stmt(B.forStmt(B.varDecl(B.prim("size_t"), IV, B.num(0)),
                   B.lt(B.id(IV), B.castTo(B.prim("size_t"), CountE)),
                   B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
                   B.block(Body)));
    alignTo(CA);
    return;
  }

  // General per-element path (variable-size or non-chunked elements).
  std::string IV = freshVar("_i");
  std::vector<CastStmt *> Body;
  auto *SaveCur = Cur;
  Cur = &Body;
  emitValue(Elem, B.idx(BaseE, B.id(IV)), Encode);
  Cur = SaveCur;
  stmt(B.forStmt(B.varDecl(B.prim("size_t"), IV, B.num(0)),
                 B.lt(B.id(IV), B.castTo(B.prim("size_t"), CountE)),
                 B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
                 B.block(Body)));
  alignTo(CA);
}

//===----------------------------------------------------------------------===//
// Counted arrays, strings, optional pointers, unions
//===----------------------------------------------------------------------===//

void StubGen::emitCounted(const PresCounted *P, CastExpr *Val, bool Encode) {
  const PresNode *Elem = P->elem();
  const auto *MA = cast<MintArray>(P->mint());
  const MintType *EM = Elem->mint();
  unsigned CA = chunkAlign();

  if (Encode) {
    std::string Len = freshVar("_len");
    stmt(B.varDecl(B.prim("uint32_t"), Len,
                   B.castTo(B.prim("uint32_t"), B.mem(Val, P->lenField()))));
    if (MA->isBounded())
      stmt(B.ifStmt(B.bin(">", B.id(Len), B.unum(MA->maxLen())),
                    B.ret(B.id("FLICK_ERR_DECODE"))));
    openChunk(alignUpTo(Layout.padded(4), CA));
    putU32(B.id(Len));
    closeChunk();
    emitArrayElems(Elem, B.mem(Val, P->bufField()), B.id(Len), true);
    return;
  }

  // Decode: length word, bound check, destination storage, elements.
  openChunk(alignUpTo(Layout.padded(4), CA));
  std::string Len = freshVar("_len");
  stmt(B.varDecl(B.prim("uint32_t"), Len, getU32()));
  closeChunk();
  if (MA->isBounded())
    stmt(B.ifStmt(B.bin(">", B.id(Len), B.unum(MA->maxLen())),
                  B.ret(B.id("FLICK_ERR_DECODE"))));
  stmt(B.exprStmt(B.assign(B.mem(Val, P->lenField()), B.id(Len))));
  if (!P->maxField().empty())
    stmt(B.exprStmt(B.assign(B.mem(Val, P->maxField()), B.id(Len))));

  CastType *ElemCT = Elem->ctype();
  bool AliasOk = options().BufferAlias && options().ScratchAlloc &&
                 ServerSide && P->alloc().AllowBufferAlias &&
                 isAtomicMint(EM) && Layout.hostIdentical(EM) &&
                 (Layout.atomSize(EM) <= 4 ||
                  Layout.kind() != WireKind::Xdr);
  if (AliasOk) {
    // Decode in place: the presented array aliases the request buffer
    // (paper §3.1); legal because the presentation forbids the servant
    // from keeping references.
    unsigned S = Layout.atomSize(EM);
    std::string NB = freshVar("_nb");
    stmt(B.varDecl(B.prim("size_t"), NB,
                   B.mul(B.castTo(B.prim("size_t"), B.id(Len)),
                         B.unum(S))));
    checkAvail(B.id(NB));
    stmt(B.exprStmt(B.assign(
        B.mem(Val, P->bufField()),
        B.castTo(B.ptr(ElemCT),
                 B.call("flick_buf_take_mut", {bufExpr(), B.id(NB)})))));
    alignTo(Layout.padUnit() > 1 ? Layout.padUnit() : CA);
    return;
  }

  // Every element is at least one wire byte, so a length beyond the
  // remaining buffer is malformed; reject before allocating (avoids
  // attacker-controlled allocation bombs).
  checkAvail(B.castTo(B.prim("size_t"), B.id(Len)));
  std::string Dst = freshVar("_dst");
  CastExpr *Bytes =
      B.mul(B.add(B.castTo(B.prim("size_t"), B.id(Len)), B.num(1)),
            B.sizeofTy(ElemCT));
  stmt(B.varDecl(B.ptr(ElemCT), Dst,
                 B.castTo(B.ptr(ElemCT), allocExpr(P->alloc(), Bytes))));
  stmt(B.ifStmt(B.nt(B.id(Dst)), B.ret(B.id("FLICK_ERR_ALLOC"))));
  emitArrayElems(Elem, B.id(Dst), B.id(Len), false);
  stmt(B.exprStmt(B.assign(B.mem(Val, P->bufField()), B.id(Dst))));
}

void StubGen::emitString(const PresString *P, CastExpr *Val, bool Encode) {
  const auto *MA = cast<MintArray>(P->mint());
  bool CountsNul = Layout.stringCountsNul();
  unsigned CA = chunkAlign();

  if (Encode) {
    std::string Sp = freshVar("_sp");
    stmt(B.varDecl(B.constPtr(B.prim("char")), Sp,
                   B.ternary(Val, Val, B.str(""))));
    std::string Sl = freshVar("_sl");
    auto KnownIt = KnownStrLenIn.find(P);
    if (KnownIt != KnownStrLenIn.end()) {
      // Explicit-length presentation (paper §2): the caller already knows
      // the length, so the stub never calls strlen.
      stmt(B.varDecl(B.prim("size_t"), Sl,
                     B.castTo(B.prim("size_t"), KnownIt->second)));
      KnownStrLenIn.erase(KnownIt);
    } else {
      stmt(B.varDecl(B.prim("size_t"), Sl, B.call("strlen", {B.id(Sp)})));
    }
    if (MA->isBounded())
      stmt(B.ifStmt(B.bin(">", B.id(Sl), B.unum(MA->maxLen())),
                    B.ret(B.id("FLICK_ERR_DECODE"))));
    std::string Wl = freshVar("_wl");
    stmt(B.varDecl(B.prim("size_t"), Wl,
                   CountsNul ? B.add(B.id(Sl), B.num(1))
                             : static_cast<CastExpr *>(B.id(Sl))));
    openChunk(alignUpTo(Layout.padded(4), CA));
    putU32(B.castTo(B.prim("uint32_t"), B.id(Wl)));
    closeChunk();
    if (options().Memcpy || options().PerDatumCalls) {
      // Strings copy in bulk (paper §3.2: 60-70% faster than
      // character-by-character processing).  rpcgen also bulk-copied
      // opaque data, so the naive baseline keeps this path.  Copy only
      // the Sl characters and store the wire NUL explicitly: with the
      // explicit-length presentation the source need not be terminated.
      if (NoEnsure == 0)
        checkCall(B.call("flick_buf_ensure", {bufExpr(), B.id(Wl)}),
                  "FLICK_ERR_ALLOC");
      std::string Sd = freshVar("_sd");
      stmt(B.varDecl(B.ptr(B.prim("uint8_t")), Sd,
                     B.call("flick_buf_grab", {bufExpr(), B.id(Wl)})));
      stmt(B.exprStmt(B.call("memcpy", {B.id(Sd), B.id(Sp), B.id(Sl)})));
      if (CountsNul)
        stmt(B.exprStmt(
            B.assign(B.idx(B.id(Sd), B.id(Sl)), B.num(0))));
    } else {
      // Ablation: component-by-component character processing.
      std::string IV = freshVar("_i");
      std::vector<CastStmt *> Body;
      auto *SaveCur = Cur;
      Cur = &Body;
      checkCall(B.call("flick_naive_put_u8",
                       {bufExpr(), B.castTo(B.prim("uint8_t"),
                                            B.idx(B.id(Sp), B.id(IV)))}),
                "FLICK_ERR_ALLOC");
      Cur = SaveCur;
      stmt(B.forStmt(B.varDecl(B.prim("size_t"), IV, B.num(0)),
                     B.lt(B.id(IV), B.id(Wl)),
                     B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
                     B.block(Body)));
    }
    alignTo(Layout.padUnit() > 1 ? Layout.padUnit() : CA);
    return;
  }

  openChunk(alignUpTo(Layout.padded(4), CA));
  std::string Wl = freshVar("_wl");
  stmt(B.varDecl(B.prim("uint32_t"), Wl, getU32()));
  closeChunk();
  if (CountsNul)
    stmt(B.ifStmt(B.bin("<", B.id(Wl), B.num(1)),
                  B.ret(B.id("FLICK_ERR_DECODE"))));
  if (MA->isBounded())
    stmt(B.ifStmt(B.bin(">", B.id(Wl),
                        B.unum(MA->maxLen() + (CountsNul ? 1 : 0))),
                  B.ret(B.id("FLICK_ERR_DECODE"))));
  checkAvail(B.id(Wl));

  bool AliasOk = options().BufferAlias && options().ScratchAlloc &&
                 ServerSide && P->alloc().AllowBufferAlias && CountsNul;
  if (AliasOk) {
    // CDR strings carry their NUL on the wire, so the presented char*
    // can point straight into the request buffer.
    std::string Sv = freshVar("_s");
    stmt(B.varDecl(B.ptr(B.prim("char")), Sv,
                   B.castTo(B.ptr(B.prim("char")),
                            B.call("flick_buf_take_mut",
                                   {bufExpr(), B.id(Wl)}))));
    stmt(B.ifStmt(B.ne(B.idx(B.id(Sv), B.sub(B.id(Wl), B.num(1))),
                       B.num(0)),
                  B.ret(B.id("FLICK_ERR_DECODE"))));
    stmt(B.exprStmt(B.assign(Val, B.id(Sv))));
    {
      auto It = KnownStrLenOut.find(P);
      if (It != KnownStrLenOut.end()) {
        stmt(B.exprStmt(B.assign(It->second,
                                 B.sub(B.id(Wl), B.num(1)))));
        KnownStrLenOut.erase(It);
      }
    }
    alignTo(Layout.padUnit() > 1 ? Layout.padUnit() : CA);
    return;
  }

  auto EmitLenOut = [&](CastExpr *WireLenE) {
    auto It = KnownStrLenOut.find(P);
    if (It == KnownStrLenOut.end())
      return;
    CastExpr *Logical = CountsNul ? B.sub(WireLenE, B.num(1)) : WireLenE;
    stmt(B.exprStmt(B.assign(It->second, Logical)));
    KnownStrLenOut.erase(It);
  };
  std::string Sv = freshVar("_s");
  CastExpr *Bytes = B.add(B.castTo(B.prim("size_t"), B.id(Wl)), B.num(1));
  stmt(B.varDecl(
      B.ptr(B.prim("char")), Sv,
      B.castTo(B.ptr(B.prim("char")), allocExpr(P->alloc(), Bytes))));
  stmt(B.ifStmt(B.nt(B.id(Sv)), B.ret(B.id("FLICK_ERR_ALLOC"))));
  stmt(B.exprStmt(B.call(
      "memcpy", {B.id(Sv),
                 B.castTo(B.constPtr(B.voidTy()),
                          B.call("flick_buf_take", {bufExpr(), B.id(Wl)})),
                 B.id(Wl)})));
  stmt(B.exprStmt(
      B.assign(B.idx(B.id(Sv), B.id(Wl)), B.num(0))));
  stmt(B.exprStmt(B.assign(Val, B.id(Sv))));
  EmitLenOut(B.id(Wl));
  alignTo(Layout.padUnit() > 1 ? Layout.padUnit() : CA);
}

void StubGen::emitOptPtr(const PresOptPtr *P, CastExpr *Val, bool Encode) {
  const PresNode *Elem = P->elem();
  CastType *ElemCT = Elem->ctype();
  unsigned CA = chunkAlign();

  if (Encode) {
    openChunk(alignUpTo(Layout.padded(4), CA));
    putU32(B.ternary(Val, B.num(1), B.num(0)));
    closeChunk();
    std::vector<CastStmt *> Then;
    auto *SaveCur = Cur;
    Cur = &Then;
    emitValue(Elem, B.deref(Val), true);
    Cur = SaveCur;
    stmt(B.ifStmt(Val, B.block(Then)));
    return;
  }

  openChunk(alignUpTo(Layout.padded(4), CA));
  std::string Tag = freshVar("_tag");
  stmt(B.varDecl(B.prim("uint32_t"), Tag, getU32()));
  closeChunk();
  stmt(B.ifStmt(B.bin(">", B.id(Tag), B.num(1)),
                B.ret(B.id("FLICK_ERR_DECODE"))));
  std::vector<CastStmt *> Then, Else;
  auto *SaveCur = Cur;
  Cur = &Then;
  std::string Pv = freshVar("_p");
  stmt(B.varDecl(
      B.ptr(ElemCT), Pv,
      B.castTo(B.ptr(ElemCT),
               allocExpr(P->alloc(), B.sizeofTy(ElemCT)))));
  stmt(B.ifStmt(B.nt(B.id(Pv)), B.ret(B.id("FLICK_ERR_ALLOC"))));
  emitValue(Elem, B.deref(B.id(Pv)), false);
  stmt(B.exprStmt(B.assign(Val, B.id(Pv))));
  Cur = &Else;
  stmt(B.exprStmt(B.assign(Val, B.num(0))));
  Cur = SaveCur;
  stmt(B.ifStmt(B.id(Tag), B.block(Then), B.block(Else)));
}

void StubGen::emitUnion(const PresUnion *P, CastExpr *Val, bool Encode) {
  CastExpr *DiscL = B.mem(Val, P->discField());
  emitAtomicValue(P->discPres(), DiscL, Encode);

  std::vector<CastSwitchCase> Cases;
  bool HasDefault = false;
  for (const PresUnionArm &Arm : P->arms()) {
    CastSwitchCase C;
    if (Arm.IsDefault) {
      HasDefault = true;
    } else {
      for (int64_t V : Arm.CaseValues)
        C.Values.push_back(B.num(V));
    }
    auto *SaveCur = Cur;
    Cur = &C.Stmts;
    if (Arm.Pres)
      emitValue(Arm.Pres,
                B.mem(B.mem(Val, P->unionField()), Arm.ArmField), Encode);
    else
      stmt(B.comment("void case"));
    Cur = SaveCur;
    Cases.push_back(std::move(C));
  }
  if (!HasDefault) {
    CastSwitchCase D;
    D.Stmts.push_back(B.ret(B.id("FLICK_ERR_DECODE")));
    D.FallsThrough = true;
    Cases.push_back(std::move(D));
  }
  CastExpr *Cond = B.castTo(B.prim("int64_t"), DiscL);
  stmt(B.switchStmt(Cond, std::move(Cases)));
  alignTo(chunkAlign());
}

//===----------------------------------------------------------------------===//
// Out-of-line helpers (recursive types; non-inlining mode)
//===----------------------------------------------------------------------===//

void StubGen::placeHelperFunc(CDFunc *Proto, CSBlock *Body, bool IntoClient,
                              bool IntoServer) {
  bool Inline = options().Inline;
  auto *Def = B.func(Proto->ret(), Proto->name(), Proto->params(), Body,
                     /*Static=*/Inline, /*Inline=*/Inline);
  auto *Decl = B.func(Proto->ret(), Proto->name(), Proto->params(), nullptr,
                      /*Static=*/Inline, /*Inline=*/Inline);
  HelperProtos.push_back(Decl);
  if (Inline) {
    HelperDefs.push_back(Def);
    return;
  }
  (void)IntoClient;
  (void)IntoServer;
  CommonDefs.push_back(Def);
}

void StubGen::callHelper(const PresNode *Pn, CastExpr *Val, bool Encode) {
  assert(!ChunkActive && "helper call with open chunk");
  PKind K = classifyPres(Pn);
  HelperKey Key{Pn, Encode};
  auto It = Helpers.find(Key);
  std::string Name;
  if (It != Helpers.end()) {
    Name = It->second;
  } else {
    Name = sanitizeIdentifier(BaseName) +
           (Encode ? "_enc_h" : "_dec_h") +
           std::to_string(++HelperCounter);
    Helpers.emplace(Key, Name);

    // Build the helper signature.
    CastType *VT = nullptr;
    switch (K) {
    case PKind::Agg:
      VT = Encode ? B.constPtr(Pn->ctype()) : B.ptr(Pn->ctype());
      break;
    case PKind::Str:
      VT = Encode ? B.constPtr(B.prim("char"))
                  : B.ptr(B.ptr(B.prim("char")));
      break;
    case PKind::FixArr: {
      CastType *E = cast<PresFixedArray>(Pn)->elem()->ctype();
      VT = Encode ? B.constPtr(E) : B.ptr(E);
      break;
    }
    case PKind::Opt: {
      CastType *E = B.ptr(cast<PresOptPtr>(Pn)->elem()->ctype());
      VT = Encode ? E : B.ptr(E);
      break;
    }
    default:
      assert(false && "helper for scalar");
    }
    std::vector<CastParam> Params;
    Params.push_back(CastParam{B.ptr(B.structTy("flick_buf")), "_buf"});
    if (!Encode)
      Params.push_back(
          CastParam{B.ptr(B.structTy("flick_arena")), "_ar"});
    Params.push_back(CastParam{VT, "_v"});

    // Generate the body with fresh chunk/recursion state.
    auto *SaveCur = Cur;
    bool SaveActive = ChunkActive;
    bool SaveServer = ServerSide;
    unsigned SaveNoEnsure = NoEnsure;
    const PresNode *SaveRoot = HelperRoot;
    ChunkActive = false;
    ServerSide = false; // shared helpers must not buffer-alias
    NoEnsure = 0;
    HelperRoot = Pn;
    std::vector<CastStmt *> Body;
    Cur = &Body;
    CastExpr *Inner = nullptr;
    switch (K) {
    case PKind::Agg:
      Inner = B.deref(B.id("_v"));
      break;
    case PKind::Str:
      Inner = Encode ? B.id("_v")
                     : static_cast<CastExpr *>(B.deref(B.id("_v")));
      break;
    case PKind::FixArr:
      Inner = B.id("_v");
      break;
    case PKind::Opt:
      Inner = Encode ? B.id("_v")
                     : static_cast<CastExpr *>(B.deref(B.id("_v")));
      break;
    default:
      break;
    }
    emitValue(Pn, Inner, Encode);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = SaveCur;
    ChunkActive = SaveActive;
    ServerSide = SaveServer;
    NoEnsure = SaveNoEnsure;
    HelperRoot = SaveRoot;

    auto *Proto = B.func(B.prim("int"), Name, Params, nullptr);
    placeHelperFunc(Proto, B.block(Body), true, true);
  }

  // Emit the call.
  CastExpr *Arg = nullptr;
  switch (K) {
  case PKind::Agg:
    Arg = B.addr(Val);
    break;
  case PKind::Str:
    Arg = Encode ? Val : static_cast<CastExpr *>(B.addr(Val));
    break;
  case PKind::FixArr:
    Arg = Val;
    break;
  case PKind::Opt:
    Arg = Encode ? Val : static_cast<CastExpr *>(B.addr(Val));
    break;
  default:
    break;
  }
  std::vector<CastExpr *> Args = {bufExpr()};
  if (!Encode)
    Args.push_back(B.id("_ar"));
  Args.push_back(Arg);
  std::string Rv = freshVar("_hr");
  stmt(B.varDecl(B.prim("int"), Rv, B.call(Name, Args)));
  stmt(B.ifStmt(B.id(Rv), B.ret(B.id(Rv))));
}

//===----------------------------------------------------------------------===//
// Deep-free helpers
//===----------------------------------------------------------------------===//

void StubGen::emitFree(const PresNode *Pn, CastExpr *Val) {
  if (!presIsVariable(Pn))
    return;
  switch (Pn->kind()) {
  case PresNode::Kind::String:
    stmt(B.exprStmt(B.call("free", {Val})));
    return;
  case PresNode::Kind::OptPtr: {
    const auto *O = cast<PresOptPtr>(Pn);
    std::vector<CastStmt *> Then;
    auto *SaveCur = Cur;
    Cur = &Then;
    emitFree(O->elem(), B.deref(Val));
    stmt(B.exprStmt(B.call("free", {Val})));
    Cur = SaveCur;
    stmt(B.ifStmt(Val, B.block(Then)));
    return;
  }
  case PresNode::Kind::FixedArray: {
    const auto *A = cast<PresFixedArray>(Pn);
    std::string IV = freshVar("_i");
    std::vector<CastStmt *> Body;
    auto *SaveCur = Cur;
    Cur = &Body;
    emitFree(A->elem(), B.idx(Val, B.id(IV)));
    Cur = SaveCur;
    stmt(B.forStmt(B.varDecl(B.prim("size_t"), IV, B.num(0)),
                   B.lt(B.id(IV), B.unum(A->count())),
                   B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
                   B.block(Body)));
    return;
  }
  case PresNode::Kind::Struct:
  case PresNode::Kind::Counted:
  case PresNode::Kind::Union: {
    std::string Fn = freeHelper(Pn);
    stmt(B.exprStmt(B.call(Fn, {B.addr(Val)})));
    return;
  }
  default:
    return;
  }
}

std::string StubGen::freeHelper(const PresNode *Pn) {
  auto It = FreeHelpers.find(Pn);
  if (It != FreeHelpers.end())
    return It->second;
  std::string Name;
  if (const auto *Prim = dyn_cast_or_null<CastPrim>(Pn->ctype()))
    Name = Prim->name() + "_flick_free";
  else
    Name = sanitizeIdentifier(BaseName) + "_free_h" +
           std::to_string(++HelperCounter);
  FreeHelpers.emplace(Pn, Name);

  std::vector<CastParam> Params = {CastParam{B.ptr(Pn->ctype()), "_v"}};
  auto *SaveCur = Cur;
  std::vector<CastStmt *> Body;
  Cur = &Body;
  switch (Pn->kind()) {
  case PresNode::Kind::Struct:
    for (const PresField &F : cast<PresStruct>(Pn)->fields())
      emitFree(F.Pres, B.arrow(B.id("_v"), F.CName));
    break;
  case PresNode::Kind::Counted: {
    const auto *C = cast<PresCounted>(Pn);
    if (presIsVariable(C->elem())) {
      std::string IV = freshVar("_i");
      std::vector<CastStmt *> Loop;
      Cur = &Loop;
      emitFree(C->elem(),
               B.idx(B.arrow(B.id("_v"), C->bufField()), B.id(IV)));
      Cur = &Body;
      stmt(B.forStmt(
          B.varDecl(B.prim("size_t"), IV, B.num(0)),
          B.lt(B.id(IV), B.arrow(B.id("_v"), C->lenField())),
          B.bin("=", B.id(IV), B.add(B.id(IV), B.num(1))),
          B.block(Loop)));
    }
    stmt(B.exprStmt(
        B.call("free", {B.arrow(B.id("_v"), C->bufField())})));
    break;
  }
  case PresNode::Kind::Union: {
    const auto *U = cast<PresUnion>(Pn);
    std::vector<CastSwitchCase> Cases;
    for (const PresUnionArm &Arm : U->arms()) {
      if (!Arm.Pres || !presIsVariable(Arm.Pres))
        continue;
      CastSwitchCase C;
      if (!Arm.IsDefault)
        for (int64_t V : Arm.CaseValues)
          C.Values.push_back(B.num(V));
      Cur = &C.Stmts;
      emitFree(Arm.Pres, B.mem(B.arrow(B.id("_v"), U->unionField()),
                               Arm.ArmField));
      Cur = &Body;
      Cases.push_back(std::move(C));
    }
    if (!Cases.empty())
      stmt(B.switchStmt(B.castTo(B.prim("int64_t"),
                                 B.arrow(B.id("_v"), U->discField())),
                        std::move(Cases)));
    break;
  }
  default:
    break;
  }
  Cur = SaveCur;
  auto *Proto = B.func(B.voidTy(), Name, Params, nullptr);
  placeHelperFunc(Proto, B.block(Body), true, true);
  return Name;
}

//===----------------------------------------------------------------------===//
// Signature tables
//===----------------------------------------------------------------------===//

namespace {

CastType *encodeSigType(CastBuilder &B, const PresNode *P) {
  switch (classifyPres(P)) {
  case PKind::Scalar:
    return P->ctype();
  case PKind::Str:
    return B.constPtr(B.prim("char"));
  case PKind::FixArr:
    return B.constPtr(cast<PresFixedArray>(P)->elem()->ctype());
  case PKind::Agg:
    return B.constPtr(P->ctype());
  case PKind::Opt:
    return B.ptr(cast<PresOptPtr>(P)->elem()->ctype());
  case PKind::Void:
    break;
  }
  return B.voidTy();
}

/// Value expression for an encode-helper parameter named \p Name.
CastExpr *encodeValExpr(CastBuilder &B, const PresNode *P,
                        const std::string &Name) {
  if (classifyPres(P) == PKind::Agg)
    return B.deref(B.id(Name));
  return B.id(Name);
}

CastType *decodeReqSigType(CastBuilder &B, const PresNode *P) {
  switch (classifyPres(P)) {
  case PKind::Scalar:
    return B.ptr(P->ctype());
  case PKind::Str:
    return B.ptr(B.ptr(B.prim("char")));
  case PKind::FixArr:
    return B.ptr(cast<PresFixedArray>(P)->elem()->ctype());
  case PKind::Agg:
    return B.ptr(P->ctype());
  case PKind::Opt:
    return B.ptr(B.ptr(cast<PresOptPtr>(P)->elem()->ctype()));
  case PKind::Void:
    break;
  }
  return B.voidTy();
}

CastExpr *decodeReqValExpr(CastBuilder &B, const PresNode *P,
                           const std::string &Name) {
  if (classifyPres(P) == PKind::FixArr)
    return B.id(Name);
  return B.deref(B.id(Name));
}

/// True when the client-side reply decode allocates the value on the heap
/// and returns it through a double pointer (CORBA variable out / any
/// aggregate return value).
bool decRepDoublePtr(const PresNode *P, AoiParamDir Dir, bool IsRet,
                     bool Corba) {
  if (!Corba || classifyPres(P) != PKind::Agg)
    return false;
  return IsRet || (Dir == AoiParamDir::Out && presIsVariable(P));
}

CastType *decodeRepSigType(CastBuilder &B, const PresNode *P,
                           AoiParamDir Dir, bool IsRet, bool Corba) {
  switch (classifyPres(P)) {
  case PKind::Scalar:
    return B.ptr(P->ctype());
  case PKind::Str:
    return B.ptr(B.ptr(B.prim("char")));
  case PKind::FixArr:
    return B.ptr(cast<PresFixedArray>(P)->elem()->ctype());
  case PKind::Agg:
    return decRepDoublePtr(P, Dir, IsRet, Corba)
               ? B.ptr(B.ptr(P->ctype()))
               : B.ptr(P->ctype());
  case PKind::Opt:
    return B.ptr(B.ptr(cast<PresOptPtr>(P)->elem()->ctype()));
  case PKind::Void:
    break;
  }
  return B.voidTy();
}

} // namespace

//===----------------------------------------------------------------------===//
// Default numeric demultiplexer
//===----------------------------------------------------------------------===//

void Backend::emitDispatchDemux(
    StubGen &G, const PresCInterface &If,
    const std::function<std::vector<CastStmt *>(const PresCOperation &)>
        &CaseBody) {
  CastBuilder &B = G.builder();
  emitRequestHeaderDecode(G, If); // declares _xid and _opcode
  std::vector<CastSwitchCase> Cases;
  for (const PresCOperation &Op : If.Ops) {
    CastSwitchCase C;
    C.Values.push_back(B.unum(Op.RequestCode));
    C.Stmts = CaseBody(Op);
    C.FallsThrough = true; // bodies end in return
    Cases.push_back(std::move(C));
  }
  CastSwitchCase D;
  D.Stmts.push_back(B.ret(B.id("FLICK_ERR_NO_SUCH_OP")));
  D.FallsThrough = true;
  Cases.push_back(std::move(D));
  G.stmt(B.switchStmt(B.id("_opcode"), std::move(Cases)));
  G.stmt(B.ret(B.id("FLICK_ERR_NO_SUCH_OP")));
}

//===----------------------------------------------------------------------===//
// Per-operation helper generation
//===----------------------------------------------------------------------===//

void StubGen::genOpHelpers(const PresCInterface &If,
                           const PresCOperation &Op) {
  bool Corba = UseEnv;
  auto PlaceOp = [&](const std::string &Name, std::vector<CastParam> Ps,
                     std::vector<CastStmt *> Body, bool ToClient) {
    bool Inline = options().Inline;
    auto *Def = B.func(B.prim("int"), Name, Ps, B.block(Body),
                       /*Static=*/Inline, /*Inline=*/Inline);
    if (Inline) {
      OpHelperDefs.push_back(Def);
      return;
    }
    OpHelperDefs.push_back(
        B.func(B.prim("int"), Name, Ps, nullptr));
    (ToClient ? ClientFile : ServerFile).add(Def);
  };
  CastType *BufPtr = B.ptr(B.structTy("flick_buf"));
  CastType *ArenaPtr = B.ptr(B.structTy("flick_arena"));

  // ---- encode_request (client side) ----
  {
    std::vector<CastParam> Ps = {CastParam{BufPtr, "_buf"},
                                 CastParam{B.prim("uint32_t"), "_xid"}};
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::Out) {
        Ps.push_back(CastParam{encodeSigType(B, Pp.Pres), Pp.Name});
        if (!Pp.LenParamName.empty())
          Ps.push_back(CastParam{B.prim("uint32_t"), Pp.LenParamName});
      }
    std::vector<CastStmt *> Body;
    Cur = &Body;
    ServerSide = false;
    CurEncode = true;
    stmt(B.rawStmt("(void)_xid;"));
    BE.emitRequestHeader(*this, If, Op);
    std::vector<std::pair<const PresNode *, CastExpr *>> Items;
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::Out) {
        if (!Pp.LenParamName.empty())
          KnownStrLenIn[Pp.Pres] = B.id(Pp.LenParamName);
        Items.push_back({Pp.Pres, encodeValExpr(B, Pp.Pres, Pp.Name)});
      }
    emitSequence(Items, true);
    BE.emitRequestFinish(*this, If, Op);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = nullptr;
    PlaceOp(Op.CName + "_encode_request", Ps, Body, /*ToClient=*/true);
  }

  // ---- decode_request (server side) ----
  bool HasIns = false;
  for (const PresCParam &Pp : Op.Params)
    if (Pp.Dir != AoiParamDir::Out)
      HasIns = true;
  if (HasIns) {
    std::vector<CastParam> Ps = {CastParam{BufPtr, "_buf"},
                                 CastParam{ArenaPtr, "_ar"}};
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::Out) {
        Ps.push_back(CastParam{decodeReqSigType(B, Pp.Pres), Pp.Name});
        if (!Pp.LenParamName.empty())
          Ps.push_back(CastParam{B.ptr(B.prim("uint32_t")),
                                 Pp.LenParamName});
      }
    std::vector<CastStmt *> Body;
    Cur = &Body;
    ServerSide = true;
    CurEncode = false;
    stmt(B.rawStmt("(void)_ar;"));
    std::vector<std::pair<const PresNode *, CastExpr *>> Items;
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::Out) {
        if (!Pp.LenParamName.empty())
          KnownStrLenOut[Pp.Pres] = B.deref(B.id(Pp.LenParamName));
        Items.push_back({Pp.Pres, decodeReqValExpr(B, Pp.Pres, Pp.Name)});
      }
    emitSequence(Items, false);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = nullptr;
    ServerSide = false;
    PlaceOp(Op.CName + "_decode_request", Ps, Body, /*ToClient=*/false);
  }

  if (Op.Oneway)
    return;

  // ---- encode_reply (server side) ----
  {
    std::vector<CastParam> Ps = {CastParam{BufPtr, "_buf"},
                                 CastParam{B.prim("uint32_t"), "_xid"}};
    if (Op.Return.Pres)
      Ps.push_back(
          CastParam{encodeSigType(B, Op.Return.Pres), "_retval"});
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::In)
        Ps.push_back(CastParam{encodeSigType(B, Pp.Pres), Pp.Name});
    std::vector<CastStmt *> Body;
    Cur = &Body;
    ServerSide = false;
    CurEncode = true;
    stmt(B.rawStmt("(void)_xid;"));
    BE.emitReplyHeader(*this, If, B.id("FLICK_REPLY_OK"));
    std::vector<std::pair<const PresNode *, CastExpr *>> Items;
    if (Op.Return.Pres)
      Items.push_back(
          {Op.Return.Pres, encodeValExpr(B, Op.Return.Pres, "_retval")});
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::In)
        Items.push_back({Pp.Pres, encodeValExpr(B, Pp.Pres, Pp.Name)});
    emitSequence(Items, true);
    BE.emitReplyFinish(*this, If);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = nullptr;
    PlaceOp(Op.CName + "_encode_reply", Ps, Body, /*ToClient=*/false);
  }

  // ---- decode_reply (client side) ----
  {
    std::vector<CastParam> Ps = {CastParam{BufPtr, "_buf"}};
    if (Op.Return.Pres)
      Ps.push_back(CastParam{
          decodeRepSigType(B, Op.Return.Pres, AoiParamDir::Out,
                           /*IsRet=*/true, Corba),
          "_retval"});
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::In)
        Ps.push_back(CastParam{
            decodeRepSigType(B, Pp.Pres, Pp.Dir, false, Corba), Pp.Name});
    if (Corba)
      Ps.push_back(
          CastParam{B.ptr(B.prim("CORBA_Environment")), "_ev"});
    std::vector<CastStmt *> Body;
    Cur = &Body;
    ServerSide = false;
    CurEncode = false;
    stmt(B.varDecl(ArenaPtr, "_ar", B.num(0)));
    stmt(B.rawStmt("(void)_ar;"));
    BE.emitReplyHeaderDecode(*this, If); // declares uint32_t _status

    if (Corba) {
      // User exceptions: decode the code word, then the matching members.
      std::vector<CastStmt *> Usr;
      auto *SaveCur = Cur;
      Cur = &Usr;
      openChunk(alignUpTo(Layout.padded(4), chunkAlign()));
      std::string Code = freshVar("_code");
      stmt(B.varDecl(B.prim("uint32_t"), Code, getU32()));
      closeChunk();
      std::vector<CastSwitchCase> ExcCases;
      for (uint32_t Idx : Op.RaisesIdx) {
        const PresCException &E = P.Exceptions[Idx];
        CastSwitchCase C;
        C.Values.push_back(B.unum(E.Code));
        C.FallsThrough = true;
        auto *Save2 = Cur;
        Cur = &C.Stmts;
        std::string Ev = freshVar("_e");
        stmt(B.varDecl(B.ptr(B.prim(E.Name)), Ev,
                       B.castTo(B.ptr(B.prim(E.Name)),
                                B.call("malloc",
                                       {B.sizeofTy(B.prim(E.Name))}))));
        stmt(B.ifStmt(B.nt(B.id(Ev)), B.ret(B.id("FLICK_ERR_ALLOC"))));
        emitValue(E.Members, B.deref(B.id(Ev)), false);
        stmt(B.exprStmt(B.assign(B.arrow(B.id("_ev"), "_major"),
                                 B.id("CORBA_USER_EXCEPTION"))));
        stmt(B.exprStmt(
            B.assign(B.arrow(B.id("_ev"), "_exc_code"), B.id(Code))));
        stmt(B.exprStmt(B.assign(B.arrow(B.id("_ev"), "_exc_value"),
                                 B.castTo(B.ptr(B.voidTy()), B.id(Ev)))));
        stmt(B.ret(B.id("FLICK_OK")));
        Cur = Save2;
        ExcCases.push_back(std::move(C));
      }
      CastSwitchCase D;
      D.Stmts.push_back(B.ret(B.id("FLICK_ERR_DECODE")));
      D.FallsThrough = true;
      ExcCases.push_back(std::move(D));
      stmt(B.switchStmt(B.id(Code), std::move(ExcCases)));
      Cur = SaveCur;
      stmt(B.ifStmt(B.eq(B.id("_status"),
                         B.id("FLICK_REPLY_USER_EXCEPTION")),
                    B.block(Usr)));
      std::vector<CastStmt *> Sys;
      Sys.push_back(B.exprStmt(B.assign(B.arrow(B.id("_ev"), "_major"),
                                        B.id("CORBA_SYSTEM_EXCEPTION"))));
      Sys.push_back(B.ret(B.id("FLICK_OK")));
      stmt(B.ifStmt(B.eq(B.id("_status"),
                         B.id("FLICK_REPLY_SYSTEM_EXCEPTION")),
                    B.block(Sys)));
      stmt(B.ifStmt(B.ne(B.id("_status"), B.id("FLICK_REPLY_OK")),
                    B.ret(B.id("FLICK_ERR_DECODE"))));
    } else {
      stmt(B.ifStmt(B.ne(B.id("_status"), B.id("FLICK_REPLY_OK")),
                    B.ret(B.id("FLICK_ERR_EXCEPTION"))));
    }

    // Decode return value and out/inout parameters.  Storage for
    // stub-allocated values is set up first; the values then decode as ONE
    // sequence so the chunk grouping mirrors encode_reply exactly.
    std::vector<std::pair<const PresNode *, CastExpr *>> Items;
    auto AddItem = [&](const PresNode *Pn, const std::string &Name,
                       AoiParamDir Dir, bool IsRet) {
      PKind K = classifyPres(Pn);
      CastExpr *Val = nullptr;
      if (K == PKind::FixArr) {
        Val = B.id(Name);
      } else if (decRepDoublePtr(Pn, Dir, IsRet, Corba)) {
        stmt(B.exprStmt(B.assign(
            B.deref(B.id(Name)),
            B.castTo(B.ptr(Pn->ctype()),
                     B.call("malloc", {B.sizeofTy(Pn->ctype())})))));
        stmt(B.ifStmt(B.nt(B.deref(B.id(Name))),
                      B.ret(B.id("FLICK_ERR_ALLOC"))));
        Val = B.deref(B.deref(B.id(Name)));
      } else {
        Val = B.deref(B.id(Name));
      }
      Items.push_back({Pn, Val});
    };
    if (Op.Return.Pres)
      AddItem(Op.Return.Pres, "_retval", AoiParamDir::Out, true);
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::In)
        AddItem(Pp.Pres, Pp.Name, Pp.Dir, false);
    emitSequence(Items, false);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = nullptr;
    PlaceOp(Op.CName + "_decode_reply", Ps, Body, /*ToClient=*/true);
  }
}

//===----------------------------------------------------------------------===//
// Interface-level reply helpers (error + exception replies)
//===----------------------------------------------------------------------===//

void StubGen::genExcEncodeHelper(const PresCInterface &If) {
  CastType *BufPtr = B.ptr(B.structTy("flick_buf"));
  auto PlaceOp = [&](const std::string &Name, std::vector<CastParam> Ps,
                     std::vector<CastStmt *> Body) {
    bool Inline = options().Inline;
    auto *Def = B.func(B.prim("int"), Name, Ps, B.block(Body),
                       Inline, Inline);
    if (Inline) {
      OpHelperDefs.push_back(Def);
    } else {
      OpHelperDefs.push_back(B.func(B.prim("int"), Name, Ps, nullptr));
      ServerFile.add(Def);
    }
  };

  // Minimal system-error reply, used for failed work functions.
  {
    std::vector<CastParam> Ps = {CastParam{BufPtr, "_buf"},
                                 CastParam{B.prim("uint32_t"), "_xid"}};
    std::vector<CastStmt *> Body;
    Cur = &Body;
    CurEncode = true;
    stmt(B.rawStmt("(void)_xid;"));
    BE.emitReplyHeader(*this, If, B.id("FLICK_REPLY_SYSTEM_EXCEPTION"));
    BE.emitReplyFinish(*this, If);
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = nullptr;
    PlaceOp(If.Name + "_encode_reply_err", Ps, Body);
  }

  if (!UseEnv || P.Exceptions.empty())
    return;

  // User-exception reply: status word, exception code, members.
  std::vector<CastParam> Ps = {
      CastParam{BufPtr, "_buf"}, CastParam{B.prim("uint32_t"), "_xid"},
      CastParam{B.prim("uint32_t"), "_code"},
      CastParam{B.constPtr(B.voidTy()), "_val"}};
  std::vector<CastStmt *> Body;
  Cur = &Body;
  CurEncode = true;
  stmt(B.rawStmt("(void)_xid;"));
  BE.emitReplyHeader(*this, If, B.id("FLICK_REPLY_USER_EXCEPTION"));
  openChunk(alignUpTo(Layout.padded(4), chunkAlign()));
  putU32(B.id("_code"));
  closeChunk();
  std::vector<CastSwitchCase> Cases;
  for (const PresCException &E : P.Exceptions) {
    CastSwitchCase C;
    C.Values.push_back(B.unum(E.Code));
    auto *SaveCur = Cur;
    Cur = &C.Stmts;
    std::string Ev = freshVar("_e");
    stmt(B.varDecl(B.constPtr(B.prim(E.Name)), Ev,
                   B.castTo(B.constPtr(B.prim(E.Name)), B.id("_val"))));
    emitValue(E.Members, B.deref(B.id(Ev)), true);
    Cur = SaveCur;
    Cases.push_back(std::move(C));
  }
  CastSwitchCase D;
  D.Stmts.push_back(B.ret(B.id("FLICK_ERR_DECODE")));
  D.FallsThrough = true;
  Cases.push_back(std::move(D));
  stmt(B.switchStmt(B.id("_code"), std::move(Cases)));
  BE.emitReplyFinish(*this, If);
  stmt(B.ret(B.id("FLICK_OK")));
  Cur = nullptr;
  PlaceOp(If.Name + "_encode_reply_exc", Ps, Body);
}

//===----------------------------------------------------------------------===//
// Client stubs
//===----------------------------------------------------------------------===//

void StubGen::genClientStub(const PresCInterface &If,
                            const PresCOperation &Op) {
  bool Corba = UseEnv;
  PKind RetK = classifyPres(Op.Return.Pres);

  // Return type of the stub itself.
  CastType *RetTy = B.voidTy();
  switch (RetK) {
  case PKind::Void:
    break;
  case PKind::Scalar:
    RetTy = Op.Return.Pres->ctype();
    break;
  case PKind::Str:
    RetTy = B.ptr(B.prim("char"));
    break;
  case PKind::Opt:
    RetTy = B.ptr(cast<PresOptPtr>(Op.Return.Pres)->elem()->ctype());
    break;
  case PKind::Agg:
    RetTy = B.ptr(Op.Return.Pres->ctype());
    break;
  case PKind::FixArr:
    assert(false && "operations cannot return arrays");
    break;
  }

  std::vector<CastParam> Ps;
  if (Corba)
    Ps.push_back(CastParam{B.prim(If.Name), "_obj"});
  for (const PresCParam &Pp : Op.Params) {
    Ps.push_back(CastParam{Pp.SigType, Pp.Name});
    if (!Pp.LenParamName.empty())
      Ps.push_back(CastParam{B.prim("uint32_t"), Pp.LenParamName});
  }
  CastType *StubRet = RetTy;
  if (Corba) {
    Ps.push_back(CastParam{B.ptr(B.prim("CORBA_Environment")), "_ev"});
  } else {
    // rpcgen style: status-returning stub with an explicit result slot.
    if (RetK != PKind::Void)
      Ps.push_back(CastParam{
          decodeRepSigType(B, Op.Return.Pres, AoiParamDir::Out, true,
                           false),
          "_result"});
    Ps.push_back(
        CastParam{B.ptr(B.structTy("flick_client")), "_cli"});
    StubRet = B.prim("int");
  }

  std::vector<CastStmt *> Body;
  Cur = &Body;
  CurEncode = true;
  if (Corba)
    stmt(B.varDecl(B.ptr(B.structTy("flick_client")), "_cli",
                   B.arrow(B.id("_obj"), "client")));
  // Local return slot (CORBA style only).
  std::string RetLocal = "_retval";
  if (Corba && RetK != PKind::Void) {
    if (RetK == PKind::Scalar)
      stmt(B.varDecl(RetTy, RetLocal, B.num(0)));
    else
      stmt(B.varDecl(RetTy, RetLocal, B.num(0)));
  }
  if (Corba) {
    stmt(B.exprStmt(B.assign(B.arrow(B.id("_ev"), "_major"),
                             B.id("CORBA_NO_EXCEPTION"))));
    stmt(B.exprStmt(
        B.assign(B.arrow(B.id("_ev"), "_exc_code"), B.num(0))));
    stmt(B.exprStmt(
        B.assign(B.arrow(B.id("_ev"), "_exc_value"), B.num(0))));
  }
  stmt(B.varDecl(B.ptr(B.structTy("flick_buf")), "_buf",
                 B.call("flick_client_begin", {B.id("_cli")})));

  // Encode the request.
  std::vector<CastExpr *> EncArgs = {B.id("_buf"),
                                     B.arrow(B.id("_cli"), "next_xid")};
  for (const PresCParam &Pp : Op.Params) {
    if (Pp.Dir == AoiParamDir::Out)
      continue;
    PKind K = classifyPres(Pp.Pres);
    bool Deref = Pp.Dir == AoiParamDir::InOut &&
                 (K == PKind::Scalar || K == PKind::Str || K == PKind::Opt);
    EncArgs.push_back(Deref ? B.deref(B.id(Pp.Name))
                            : static_cast<CastExpr *>(B.id(Pp.Name)));
    if (!Pp.LenParamName.empty())
      EncArgs.push_back(B.id(Pp.LenParamName));
  }
  stmt(B.varDecl(B.prim("int"), "_err",
                 B.call(Op.CName + "_encode_request", EncArgs)));

  if (Op.Oneway) {
    stmt(B.ifStmt(B.nt(B.id("_err")),
                  B.exprStmt(B.assign(
                      B.id("_err"),
                      B.call("flick_client_send_oneway", {B.id("_cli")})))));
  } else {
    stmt(B.ifStmt(B.nt(B.id("_err")),
                  B.exprStmt(B.assign(
                      B.id("_err"),
                      B.call("flick_client_invoke", {B.id("_cli")})))));
    std::vector<CastExpr *> DecArgs = {
        B.addr(B.arrow(B.id("_cli"), "rep"))};
    if (RetK != PKind::Void)
      DecArgs.push_back(Corba ? B.addr(B.id(RetLocal))
                              : static_cast<CastExpr *>(B.id("_result")));
    for (const PresCParam &Pp : Op.Params)
      if (Pp.Dir != AoiParamDir::In)
        DecArgs.push_back(B.id(Pp.Name));
    if (Corba)
      DecArgs.push_back(B.id("_ev"));
    stmt(B.ifStmt(B.nt(B.id("_err")),
                  B.exprStmt(B.assign(
                      B.id("_err"),
                      B.call(Op.CName + "_decode_reply", DecArgs)))));
  }

  if (Corba) {
    std::vector<CastStmt *> OnErr;
    OnErr.push_back(B.exprStmt(B.assign(B.arrow(B.id("_ev"), "_major"),
                                        B.id("CORBA_SYSTEM_EXCEPTION"))));
    OnErr.push_back(B.exprStmt(
        B.assign(B.arrow(B.id("_ev"), "_exc_code"),
                 B.castTo(B.prim("uint32_t"), B.id("_err")))));
    stmt(B.ifStmt(B.bin("&&", B.id("_err"),
                        B.eq(B.arrow(B.id("_ev"), "_major"),
                             B.id("CORBA_NO_EXCEPTION"))),
                  B.block(OnErr)));
    if (RetK != PKind::Void)
      stmt(B.ret(B.id(RetLocal)));
  } else {
    stmt(B.ret(B.id("_err")));
  }
  Cur = nullptr;

  auto *Def = B.func(StubRet, Op.CName, Ps, B.block(Body));
  ClientFile.add(Def);
  PublicProtos.push_back(B.func(StubRet, Op.CName, Ps, nullptr));
}

//===----------------------------------------------------------------------===//
// Server dispatch
//===----------------------------------------------------------------------===//

std::vector<CastStmt *>
StubGen::genDispatchCase(const PresCInterface &If,
                         const PresCOperation &Op) {
  bool Corba = UseEnv;
  bool HasExcHelper = Corba && !P.Exceptions.empty();
  std::vector<CastStmt *> S;
  auto *SaveCur = Cur;
  Cur = &S;

  // Locals for every parameter.
  bool HasIns = false;
  for (const PresCParam &Pp : Op.Params) {
    PKind K = classifyPres(Pp.Pres);
    if (Pp.Dir != AoiParamDir::Out)
      HasIns = true;
    switch (K) {
    case PKind::Scalar:
      stmt(B.varDecl(Pp.Pres->ctype(), Pp.Name, B.num(0)));
      break;
    case PKind::Str:
      stmt(B.varDecl(B.ptr(B.prim("char")), Pp.Name, B.num(0)));
      if (!Pp.LenParamName.empty())
        stmt(B.varDecl(B.prim("uint32_t"), Pp.LenParamName, B.num(0)));
      break;
    case PKind::FixArr:
      stmt(B.varDecl(Pp.Pres->ctype(), Pp.Name));
      break;
    case PKind::Opt:
      stmt(B.varDecl(B.ptr(cast<PresOptPtr>(Pp.Pres)->elem()->ctype()),
                     Pp.Name, B.num(0)));
      break;
    case PKind::Agg:
      if (Pp.Dir == AoiParamDir::Out && presIsVariable(Pp.Pres) && Corba)
        stmt(B.varDecl(B.ptr(Pp.Pres->ctype()), Pp.Name, B.num(0)));
      else
        stmt(B.varDecl(Pp.Pres->ctype(), Pp.Name));
      break;
    case PKind::Void:
      break;
    }
  }

  // Decode in-parameters.
  if (HasIns) {
    std::vector<CastExpr *> Args = {
        B.id("_req"), B.addr(B.arrow(B.id("_srv"), "arena"))};
    for (const PresCParam &Pp : Op.Params) {
      if (Pp.Dir == AoiParamDir::Out)
        continue;
      PKind K = classifyPres(Pp.Pres);
      Args.push_back(K == PKind::FixArr
                         ? B.id(Pp.Name)
                         : static_cast<CastExpr *>(B.addr(B.id(Pp.Name))));
      if (!Pp.LenParamName.empty())
        Args.push_back(B.addr(B.id(Pp.LenParamName)));
    }
    std::string Ev = freshVar("_de");
    stmt(B.varDecl(B.prim("int"), Ev,
                   B.call(Op.CName + "_decode_request", Args)));
    stmt(B.ifStmt(B.id(Ev), B.ret(B.id(Ev))));
  }

  if (Corba) {
    stmt(B.rawStmt("CORBA_Environment _ev;"));
    stmt(B.rawStmt("_ev._major = CORBA_NO_EXCEPTION;"));
    stmt(B.rawStmt("_ev._exc_code = 0;"));
    stmt(B.rawStmt("_ev._exc_value = 0;"));
  }

  // Call the work function.
  std::vector<CastExpr *> ImplArgs;
  for (const PresCParam &Pp : Op.Params) {
    PKind K = classifyPres(Pp.Pres);
    bool ByValue =
        Pp.Dir == AoiParamDir::In &&
        (K == PKind::Scalar || K == PKind::Str || K == PKind::Opt);
    if (K == PKind::FixArr)
      ImplArgs.push_back(B.id(Pp.Name));
    else if (ByValue)
      ImplArgs.push_back(B.id(Pp.Name));
    else if (K == PKind::Agg && Pp.Dir == AoiParamDir::Out &&
             presIsVariable(Pp.Pres) && Corba)
      ImplArgs.push_back(B.addr(B.id(Pp.Name))); // CT ** (local is CT *)
    else
      ImplArgs.push_back(B.addr(B.id(Pp.Name)));
    if (!Pp.LenParamName.empty())
      ImplArgs.push_back(B.id(Pp.LenParamName));
  }

  PKind RetK = classifyPres(Op.Return.Pres);
  std::string RcVar;
  if (Corba) {
    ImplArgs.push_back(B.rawE("&_ev"));
    CastExpr *Call = B.call(Op.ServerImplName, ImplArgs);
    switch (RetK) {
    case PKind::Void:
      stmt(B.exprStmt(Call));
      break;
    case PKind::Scalar:
      stmt(B.varDecl(Op.Return.Pres->ctype(), "_retval", Call));
      break;
    case PKind::Str:
      stmt(B.varDecl(B.ptr(B.prim("char")), "_retval", Call));
      break;
    case PKind::Opt:
      stmt(B.varDecl(
          B.ptr(cast<PresOptPtr>(Op.Return.Pres)->elem()->ctype()),
          "_retval", Call));
      break;
    case PKind::Agg:
      stmt(B.varDecl(B.ptr(Op.Return.Pres->ctype()), "_retval", Call));
      break;
    case PKind::FixArr:
      break;
    }
  } else {
    // rpcgen style: int-returning work function with a result slot.
    if (RetK != PKind::Void) {
      if (RetK == PKind::Scalar || RetK == PKind::Agg) {
        stmt(B.varDecl(Op.Return.Pres->ctype(), "_retval"));
        // rpcgen requires zeroed results before the xdr routines run.
        stmt(B.exprStmt(B.call(
            "memset", {B.addr(B.id("_retval")), B.num(0),
                       B.sizeofTy(Op.Return.Pres->ctype())})));
      } else {
        stmt(B.varDecl(Op.Return.Pres->ctype(), "_retval", B.num(0)));
      }
      ImplArgs.push_back(B.addr(B.id("_retval")));
    }
    RcVar = freshVar("_rc");
    stmt(B.varDecl(B.prim("int"), RcVar,
                   B.call(Op.ServerImplName, ImplArgs)));
  }

  if (Op.Oneway) {
    stmt(B.ret(B.id("FLICK_OK")));
    Cur = SaveCur;
    return S;
  }

  // Exceptional replies.
  if (Corba) {
    std::vector<CastStmt *> Exc;
    if (HasExcHelper) {
      Exc.push_back(B.rawStmt(
          "int _xe = " + If.Name +
          "_encode_reply_exc(_rep, _xid, _ev._exc_code, _ev._exc_value);"));
      Exc.push_back(B.rawStmt("free(_ev._exc_value);"));
      Exc.push_back(B.rawStmt("return _xe;"));
    } else {
      Exc.push_back(B.rawStmt("return " + If.Name +
                              "_encode_reply_err(_rep, _xid);"));
    }
    stmt(B.ifStmt(B.eq(B.rawE("_ev._major"), B.id("CORBA_USER_EXCEPTION")),
                  B.block(Exc)));
    stmt(B.ifStmt(B.ne(B.rawE("_ev._major"), B.id("CORBA_NO_EXCEPTION")),
                  B.rawStmt("return " + If.Name +
                            "_encode_reply_err(_rep, _xid);")));
  } else {
    stmt(B.ifStmt(B.id(RcVar),
                  B.rawStmt("return " + If.Name +
                            "_encode_reply_err(_rep, _xid);")));
  }

  // Successful reply.
  std::vector<CastExpr *> RepArgs = {B.id("_rep"), B.id("_xid")};
  if (RetK != PKind::Void) {
    if (!Corba && RetK == PKind::Agg)
      RepArgs.push_back(B.addr(B.id("_retval")));
    else if (!Corba && RetK == PKind::Scalar)
      RepArgs.push_back(B.id("_retval"));
    else if (Corba)
      RepArgs.push_back(B.id("_retval"));
    else
      RepArgs.push_back(B.id("_retval"));
  }
  for (const PresCParam &Pp : Op.Params) {
    if (Pp.Dir == AoiParamDir::In)
      continue;
    PKind K = classifyPres(Pp.Pres);
    if (K == PKind::Agg) {
      bool VarOut =
          Pp.Dir == AoiParamDir::Out && presIsVariable(Pp.Pres) && Corba;
      RepArgs.push_back(VarOut ? B.id(Pp.Name)
                               : static_cast<CastExpr *>(
                                     B.addr(B.id(Pp.Name))));
    } else {
      RepArgs.push_back(B.id(Pp.Name));
    }
  }
  std::string Re = freshVar("_re");
  stmt(B.varDecl(B.prim("int"), Re,
                 B.call(Op.CName + "_encode_reply", RepArgs)));
  stmt(B.ifStmt(B.id(Re), B.ret(B.id(Re))));

  // Free heap storage produced by the work function.
  if (Corba) {
    switch (RetK) {
    case PKind::Str:
      stmt(B.exprStmt(B.call("free", {B.id("_retval")})));
      break;
    case PKind::Opt:
      emitFree(Op.Return.Pres, B.id("_retval"));
      break;
    case PKind::Agg:
      emitFree(Op.Return.Pres, B.deref(B.id("_retval")));
      stmt(B.exprStmt(B.call("free", {B.id("_retval")})));
      break;
    default:
      break;
    }
    for (const PresCParam &Pp : Op.Params) {
      if (Pp.Dir != AoiParamDir::Out)
        continue;
      PKind K = classifyPres(Pp.Pres);
      if (K == PKind::Str) {
        stmt(B.exprStmt(B.call("free", {B.id(Pp.Name)})));
      } else if (K == PKind::Opt) {
        emitFree(Pp.Pres, B.id(Pp.Name));
      } else if (K == PKind::Agg && presIsVariable(Pp.Pres)) {
        emitFree(Pp.Pres, B.deref(B.id(Pp.Name)));
        stmt(B.exprStmt(B.call("free", {B.id(Pp.Name)})));
      }
    }
  }
  // Without the scratch arena, decoded in-parameters were heap-allocated:
  // release them (rpcgen's xdr_free role).
  if (!options().ScratchAlloc) {
    for (const PresCParam &Pp : Op.Params) {
      if (Pp.Dir == AoiParamDir::Out)
        continue;
      PKind K = classifyPres(Pp.Pres);
      if (K == PKind::Str)
        stmt(B.exprStmt(B.call("free", {B.id(Pp.Name)})));
      else if (K == PKind::Opt)
        emitFree(Pp.Pres, B.id(Pp.Name));
      else if ((K == PKind::Agg || K == PKind::FixArr) &&
               presIsVariable(Pp.Pres))
        emitFree(Pp.Pres, B.id(Pp.Name));
    }
  }

  stmt(B.ret(B.id("FLICK_OK")));
  Cur = SaveCur;
  return S;
}

void StubGen::genServerDispatch(const PresCInterface &If) {
  // Work-function prototypes.
  bool Corba = UseEnv;
  for (const PresCOperation &Op : If.Ops) {
    PKind RetK = classifyPres(Op.Return.Pres);
    CastType *RetTy = B.voidTy();
    switch (RetK) {
    case PKind::Void:
      break;
    case PKind::Scalar:
      RetTy = Op.Return.Pres->ctype();
      break;
    case PKind::Str:
      RetTy = B.ptr(B.prim("char"));
      break;
    case PKind::Opt:
      RetTy = B.ptr(cast<PresOptPtr>(Op.Return.Pres)->elem()->ctype());
      break;
    case PKind::Agg:
      RetTy = B.ptr(Op.Return.Pres->ctype());
      break;
    case PKind::FixArr:
      break;
    }
    std::vector<CastParam> Ps;
    for (const PresCParam &Pp : Op.Params) {
      Ps.push_back(CastParam{Pp.SigType, Pp.Name});
      if (!Pp.LenParamName.empty())
        Ps.push_back(CastParam{B.prim("uint32_t"), Pp.LenParamName});
    }
    if (Corba) {
      Ps.push_back(CastParam{B.ptr(B.prim("CORBA_Environment")), "_ev"});
    } else {
      if (RetK != PKind::Void)
        Ps.push_back(CastParam{B.ptr(Op.Return.Pres->ctype()), "_result"});
      RetTy = B.prim("int");
    }
    PublicProtos.push_back(B.func(RetTy, Op.ServerImplName, Ps, nullptr));
  }

  // The dispatch function itself.
  std::vector<CastParam> Ps = {
      CastParam{B.ptr(B.structTy("flick_server")), "_srv"},
      CastParam{B.ptr(B.structTy("flick_buf")), "_req"},
      CastParam{B.ptr(B.structTy("flick_buf")), "_rep"}};
  std::vector<CastStmt *> Body;
  Cur = &Body;
  ServerSide = true;
  CurEncode = false;
  stmt(B.rawStmt("(void)_srv;"));
  setBufName("_req");
  BE.emitDispatchDemux(*this, If, [&](const PresCOperation &Op) {
    return genDispatchCase(If, Op);
  });
  setBufName("_buf");
  ServerSide = false;
  Cur = nullptr;
  std::string Name = If.Name + "_dispatch";
  ServerFile.add(B.func(B.prim("int"), Name, Ps, B.block(Body)));
  PublicProtos.push_back(B.func(B.prim("int"), Name, Ps, nullptr));
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

BackendOutput StubGen::run() {
  std::string Guard =
      "FLICK_GEN_" + toUpper(sanitizeIdentifier(BaseName)) + "_H";
  HeaderFile.HeaderGuard = Guard;
  HeaderFile.Includes = {"\"flick_runtime.h\"", "<stdlib.h>",
                         "<string.h>"};
  std::string HdrInc = "\"" + BaseName + ".h\"";
  ClientFile.Includes = {HdrInc};
  ServerFile.Includes = {HdrInc};
  CommonFile.Includes = {HdrInc};

  {
    FLICK_STAT_PHASE("stubs");
    for (const PresCInterface &If : P.Interfaces) {
      genExcEncodeHelper(If);
      for (const PresCOperation &Op : If.Ops) {
        genOpHelpers(If, Op);
        genClientStub(If, Op);
      }
      genServerDispatch(If);
    }
    FLICK_STAT_COUNT("backend.helpers", Helpers.size());
    FLICK_STAT_COUNT("backend.public_protos", PublicProtos.size());
  }
  FLICK_STAT_PHASE("print");

  // Assemble the header: types, helper protos/defs, op helpers, publics.
  HeaderFile.add(B.declComment("Generated by flickc backend '" +
                               BE.name() + "' (" +
                               wireKindName(Layout.kind()) +
                               " encoding), presentation '" + P.Style +
                               "'."));
  for (CastDecl *D : P.TypeDecls)
    HeaderFile.add(D);
  for (CastDecl *D : HelperProtos)
    HeaderFile.add(D);
  for (CastDecl *D : HelperDefs)
    HeaderFile.add(D);
  for (CastDecl *D : OpHelperDefs)
    HeaderFile.add(D);
  for (CastDecl *D : PublicProtos)
    HeaderFile.add(D);

  for (CastDecl *D : CommonDefs)
    CommonFile.add(D);

  BackendOutput Out;
  Out.HeaderName = BaseName + ".h";
  Out.Header = printCastFile(HeaderFile);
  Out.ClientSrc = printCastFile(ClientFile);
  Out.ServerSrc = printCastFile(ServerFile);
  if (!CommonDefs.empty())
    Out.CommonSrc = printCastFile(CommonFile);
  return Out;
}
