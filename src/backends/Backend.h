//===- backends/Backend.h - Optimizing back-end base ------------*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The back end consumes a PRES_C and emits the C stubs (paper §2.3).  The
/// Backend base class is the shared optimization library: storage analysis
/// driving coalesced buffer checks, chunk-pointer addressing, memcpy array
/// copying, aggressive inlining with out-of-line helpers only for recursive
/// types, scratch-allocation / buffer-alias parameter management, and
/// word-at-a-time server demultiplexing (paper §3).  Concrete back ends
/// (XDR/ONC, IIOP/CDR, Mach, Fluke, naive) override only the wire format
/// and message framing -- the specialization structure Table 1 measures.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_BACKENDS_BACKEND_H
#define FLICK_BACKENDS_BACKEND_H

#include "backends/MarshalPlan.h"
#include "backends/Passes.h"
#include "cast/Builder.h"
#include "mint/Wire.h"
#include "pres/Pres.h"
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

namespace flick {

// BackendOptions (the pass-set façade) lives in backends/Passes.h.

/// The generated files for one compilation.  CommonSrc holds out-of-line
/// per-type marshal functions and is only non-empty for non-inlining
/// back ends (the naive baseline), mirroring rpcgen's `_xdr.c` file.
struct BackendOutput {
  std::string HeaderName;
  std::string Header;
  std::string ClientSrc;
  std::string ServerSrc;
  std::string CommonSrc;
  /// Accumulated --dump-marshal-plan text (empty unless DumpPlans).
  std::string PlanDump;
};

class StubGen;

/// Base class of all back ends.
class Backend {
public:
  explicit Backend(BackendOptions Opts) : Opts(Opts) {}
  virtual ~Backend();

  /// Short tag ("xdr", "iiop", "mach", "fluke", "naive").
  virtual std::string name() const = 0;

  /// The wire encoding this back end produces.
  virtual WireKind wire() const = 0;

  /// Generates header, client source, and server source for \p P.
  BackendOutput generate(PresC &P, const std::string &BaseName);

  const BackendOptions &options() const { return Opts; }

protected:
  friend class StubGen;

  //===--------------------------------------------------------------------===//
  // Framing hooks.  Each emits statements into the current function; the
  // StubGen provides chunked marshal utilities so framing enjoys the same
  // optimizations as payload data.
  //===--------------------------------------------------------------------===//

  /// Client side: marshal the request message header for \p Op.  `_xid`
  /// names the transaction id variable in scope.
  virtual void emitRequestHeader(StubGen &G, const PresCInterface &If,
                                 const PresCOperation &Op) = 0;

  /// Client side: run after the request body is marshaled (e.g. GIOP
  /// patches the message-size field).
  virtual void emitRequestFinish(StubGen &G, const PresCInterface &If,
                                 const PresCOperation &Op) {}

  /// Server side: marshal the reply header.  `_xid` is in scope; \p Status
  /// is the FLICK_REPLY_* status expression to embed.
  virtual void emitReplyHeader(StubGen &G, const PresCInterface &If,
                               CastExpr *Status) = 0;

  /// Server side: run after the reply body (size patches).
  virtual void emitReplyFinish(StubGen &G, const PresCInterface &If) {}

  /// Client side: parse the reply header; must declare `uint32_t _status`
  /// holding the FLICK_REPLY_* word and bail out with FLICK_ERR_DECODE on
  /// framing errors.
  virtual void emitReplyHeaderDecode(StubGen &G,
                                     const PresCInterface &If) = 0;

  /// Server side: parse the request header inside the dispatch function and
  /// emit the demultiplexer.  Must declare `uint32_t _xid`, validate
  /// framing, and route to per-operation case bodies obtained from
  /// \p CaseBody (paper §3.3, "Message Demultiplexing").  The default
  /// implementation in Backend.cpp handles numeric-discriminator formats;
  /// IIOP overrides it with word-at-a-time operation-name matching.
  virtual void emitDispatchDemux(
      StubGen &G, const PresCInterface &If,
      const std::function<std::vector<CastStmt *>(const PresCOperation &)>
          &CaseBody);

  /// Reads the numeric request discriminator during dispatch; used by the
  /// default demux.  Must emit code declaring `uint32_t _opcode`.
  virtual void emitRequestHeaderDecode(StubGen &G,
                                       const PresCInterface &If) = 0;

  BackendOptions Opts;
};

//===----------------------------------------------------------------------===//
// StubGen: per-compilation code generation state
//===----------------------------------------------------------------------===//

/// Generates all stub code for one PresC with one backend.  Exposes the
/// chunked marshal machinery to the framing hooks.
class StubGen {
public:
  StubGen(Backend &BE, PresC &P, const std::string &BaseName);

  BackendOutput run();

  //===--------------------------------------------------------------------===//
  // Emission context (used by Backend framing hooks)
  //===--------------------------------------------------------------------===//

  CastBuilder &builder() { return B; }
  const WireLayout &layout() const { return Layout; }
  const BackendOptions &options() const { return BE.options(); }

  /// Appends a statement to the function currently being generated.
  void stmt(CastStmt *S) { Cur->push_back(S); }

  /// The statement list currently being generated.
  std::vector<CastStmt *> *curStmts() { return Cur; }
  void setCurStmts(std::vector<CastStmt *> *S) { Cur = S; }

  /// Opens a fixed-size marshal chunk of \p Bytes (encode: ensure+grab;
  /// decode: check+take) in the direction of the function being generated.
  void openChunk(uint64_t Bytes);
  void closeChunk();
  bool chunkOpen() const { return ChunkActive; }

  /// Wire-level chunk accessors for framing code (no presentation
  /// conversion).  put* store at the current chunk offset (encode side);
  /// get* return the loaded value expression (decode side).
  void putU8(CastExpr *V);
  void putU16(CastExpr *V);
  void putU32(CastExpr *V);
  void putU64(CastExpr *V);
  CastExpr *getU8();
  CastExpr *getU16();
  CastExpr *getU32();
  CastExpr *getU64();
  /// Raw bytes at the current chunk offset (e.g. the "GIOP" magic).
  void putBytes(const std::string &Bytes);
  uint64_t chunkOffset() const { return ChunkOff; }

  /// Emits the full marshal (Encode=true) or unmarshal code for \p P with
  /// presented value \p Val.  Respects all optimization options.
  void emitValue(const PresNode *P, CastExpr *Val, bool Encode);

  /// True while generating server-side code (enables alias/scratch).
  bool serverSide() const { return ServerSide; }

  /// Expression for the buffer variable in scope (`_buf` inside helpers,
  /// `_req` while the dispatcher parses the request header).
  CastExpr *bufExpr() { return B.id(BufName); }
  void setBufName(const std::string &N) { BufName = N; }

  /// Records the current encode length in a fresh variable so framing can
  /// patch a size field later; returns the variable name (also kept as
  /// lastMark()).
  std::string markPosition();
  const std::string &lastMark() const { return LastMark; }

  /// Emits a chunk-boundary alignment to \p Align bytes (no-op for 1).
  void alignTo(unsigned Align);

  /// Chunk alignment for this wire format (4 for XDR, 8 otherwise).
  unsigned chunkAlign() const;

  /// Error-check helper: `if (<Call>) return <ErrId>;`
  void checkCall(CastExpr *Call, const char *ErrId);

  /// `if (!flick_buf_check(_buf, N)) return FLICK_ERR_DECODE;`
  void checkAvail(CastExpr *N);

  /// Unique local variable name.
  std::string freshVar(const std::string &Hint);

private:
  /// Out-of-line helpers are keyed by (structural type key, direction),
  /// so structurally identical presentations share one emitted helper
  /// (shrinking Table 2 object sizes).
  using HelperKey = std::pair<std::string, bool>;

  // Top-level generation.
  void genExcEncodeHelper(const PresCInterface &If);
  void genOpHelpers(const PresCInterface &If, const PresCOperation &Op);
  void genClientStub(const PresCInterface &If, const PresCOperation &Op);
  void genServerDispatch(const PresCInterface &If);
  std::vector<CastStmt *> genDispatchCase(const PresCInterface &If,
                                          const PresCOperation &Op);

  /// Finishes a generated function: wraps \p Stmts into a CDFunc placed per
  /// the inlining policy (header static-inline vs out-of-line prototype +
  /// definition in the given source file).
  void placeHelperFunc(CDFunc *Proto, CSBlock *Body, bool IntoClient,
                       bool IntoServer);

  // Marshal core.
  void emitValueInner(const PresNode *P, CastExpr *Val, bool Encode);
  void emitFixedInChunk(const PresNode *P, CastExpr *Val, bool Encode);
  void emitSequence(
      const std::vector<std::pair<const PresNode *, CastExpr *>> &Items,
      bool Encode);

  /// Lowers a transformed plan: FixedChunks become openChunk /
  /// per-member stores / closeChunk, VariableSegments route through
  /// emitValue, FramingHooks call back into \p HookFn.
  void emitPlanSteps(const SeqPlan &Plan, const std::vector<CastExpr *> &Vals,
                     const std::function<void(HookKind)> &HookFn);

  /// Lowers one chunk member marked by the memcpy pass as a single block
  /// copy (with a layout static_assert in the generated code).
  void emitMemberMemcpy(const PresNode *P, CastExpr *Val, const PlanMember &M,
                        bool Encode);
  void emitStruct(const PresStruct *P, CastExpr *Val, bool Encode);
  void emitCounted(const PresCounted *P, CastExpr *Val, bool Encode);
  void emitString(const PresString *P, CastExpr *Val, bool Encode);
  void emitOptPtr(const PresOptPtr *P, CastExpr *Val, bool Encode);
  void emitUnion(const PresUnion *P, CastExpr *Val, bool Encode);
  void emitAtomicValue(const PresNode *P, CastExpr *Val, bool Encode);

  /// Shared element-marshal path for fixed and counted arrays.
  void emitArrayElems(const PresNode *Elem, CastExpr *BaseE, CastExpr *CountE,
                      bool Encode);

  /// Emits the encode-side bulk copy of \p NB bytes from \p BaseE:
  /// ensure+grab+memcpy, or -- inside a GatherRef step -- a size branch
  /// between flick_buf_ref and that copy.
  void emitBulkEncode(const std::string &NB, CastExpr *BaseE);

  /// Wire stride of one fixed-size array element (padded to alignment).
  uint64_t elemStrideOf(const PresNode *Elem) const;

  /// Allocates \p Bytes of unmarshal storage per semantics/options/side and
  /// returns the (void*) expression.
  CastExpr *allocExpr(const AllocSemantics &A, CastExpr *Bytes);

  /// Per-datum (naive) atomic put/get.
  void emitNaiveAtomic(const PresNode *P, CastExpr *Val, bool Encode);

  /// Calls (emitting the definition on first use) an out-of-line marshal
  /// helper for \p P; used for recursive types and when inlining is off.
  void callHelper(const PresNode *P, CastExpr *ValAddr, bool Encode);

  /// Deep-free helper for a presented type; returns its name.
  std::string freeHelper(const PresNode *P);

  /// Emits deep-free statements for \p Val of presentation \p P (may call
  /// freeHelper for aggregates).
  void emitFree(const PresNode *P, CastExpr *Val);

  Backend &BE;
  PresC &P;
  std::string BaseName;
  CastBuilder B;
  WireLayout Layout;
  /// The optimization pipeline run over every built plan.
  PassPipeline Pipeline;

  /// Plan context for the next top-level emitSequence, set by
  /// genOpHelpers and consumed (then cleared) when the sequence starts:
  /// framing hook steps to splice in, the dump label, item names, and
  /// the callback that lowers FramingHook steps to backend framing.
  std::vector<HookKind> NextPreHooks, NextPostHooks;
  std::function<void(HookKind)> PlanHookFn;
  std::string NextPlanLabel;
  std::vector<std::string> NextPlanNames;
  /// Accumulated --dump-marshal-plan text; copied into the output.
  std::string PlanDump;

  CastFile HeaderFile, ClientFile, ServerFile, CommonFile;
  std::vector<CastStmt *> *Cur = nullptr;
  bool ServerSide = false;
  bool UseEnv = false;

  // Chunk state.
  bool ChunkActive = false;
  bool ChunkEncode = false;
  std::string ChunkVar;
  uint64_t ChunkOff = 0;
  uint64_t ChunkCap = 0;
  unsigned ChunkCounter = 0;
  unsigned VarCounter = 0;
  /// When positive (encode side), buffer space is pre-ensured for the
  /// current bounded segment and ensure calls are elided (paper §3.1).
  unsigned NoEnsure = 0;
  /// When positive, the current GatherRef step's threshold: bulk encode
  /// copies of at least this many bytes lower to flick_buf_ref (borrow)
  /// with the plain copy kept as the runtime small-size branch.  Zero
  /// outside GatherRef steps and inside out-of-line helpers.
  uint64_t GatherMin = 0;
  /// Direction of the function body being generated (mirrors the Encode
  /// argument; consulted by openChunk/alignTo).
  bool CurEncode = false;

  // Recursion detection and generated helpers.
  std::set<const PresNode *> Emitting;
  const PresNode *HelperRoot = nullptr;
  std::map<HelperKey, std::string> Helpers;
  /// Prototypes for out-of-line helpers (header).
  std::vector<CastDecl *> HelperProtos;
  /// static-inline helper definitions (header; inlining mode).
  std::vector<CastDecl *> HelperDefs;
  /// Out-of-line helper definitions (common source; naive mode).
  std::vector<CastDecl *> CommonDefs;
  /// Per-operation encode/decode helpers destined for the header.
  std::vector<CastDecl *> OpHelperDefs;
  /// Public prototypes (stubs, work functions, dispatch).
  std::vector<CastDecl *> PublicProtos;
  /// Deep-free helpers, keyed structurally like Helpers.
  std::map<std::string, std::string> FreeHelpers;
  /// Explicit string-length presentation (paper §2): value expression of
  /// the caller-supplied length (encode side) / destination lvalue for
  /// the decoded length (decode side), keyed by the PresString node.
  std::map<const PresNode *, CastExpr *> KnownStrLenIn;
  std::map<const PresNode *, CastExpr *> KnownStrLenOut;
  unsigned HelperCounter = 0;
  std::string LastMark;
  std::string BufName = "_buf";

  // Wire-level chunk primitives shared by the public put*/get* wrappers.
  void putWire(unsigned Size, CastExpr *WireVal);
  CastExpr *getWire(unsigned Size);
  void putAtomicConv(const PresNode *P, CastExpr *Val);
  void getAtomicConv(const PresNode *P, CastExpr *Val);
};

//===----------------------------------------------------------------------===//
// Concrete back ends
//===----------------------------------------------------------------------===//

/// ONC RPC over XDR (RFC 1831/1832 framing, simplified auth).
class XdrBackend : public Backend {
public:
  explicit XdrBackend(BackendOptions Opts) : Backend(Opts) {}
  std::string name() const override { return "xdr"; }
  WireKind wire() const override { return WireKind::Xdr; }

protected:
  void emitRequestHeader(StubGen &G, const PresCInterface &If,
                         const PresCOperation &Op) override;
  void emitReplyHeader(StubGen &G, const PresCInterface &If,
                       CastExpr *Status) override;
  void emitReplyHeaderDecode(StubGen &G, const PresCInterface &If) override;
  void emitRequestHeaderDecode(StubGen &G, const PresCInterface &If) override;
};

/// CORBA IIOP: GIOP 1.0 framing over CDR (little-endian flavor), with
/// word-at-a-time operation-name demultiplexing.
class IiopBackend : public Backend {
public:
  explicit IiopBackend(BackendOptions Opts) : Backend(Opts) {}
  std::string name() const override { return "iiop"; }
  WireKind wire() const override { return WireKind::CdrLE; }

protected:
  void emitRequestHeader(StubGen &G, const PresCInterface &If,
                         const PresCOperation &Op) override;
  void emitRequestFinish(StubGen &G, const PresCInterface &If,
                         const PresCOperation &Op) override;
  void emitReplyHeader(StubGen &G, const PresCInterface &If,
                       CastExpr *Status) override;
  void emitReplyFinish(StubGen &G, const PresCInterface &If) override;
  void emitReplyHeaderDecode(StubGen &G, const PresCInterface &If) override;
  void emitRequestHeaderDecode(StubGen &G, const PresCInterface &If) override;
  void emitDispatchDemux(
      StubGen &G, const PresCInterface &If,
      const std::function<std::vector<CastStmt *>(const PresCOperation &)>
          &CaseBody) override;
};

/// The baseline: XDR framing with every optimization disabled and
/// per-datum out-of-line marshal calls -- the codegen style of rpcgen and
/// PowerRPC that the paper benchmarks against.
class NaiveBackend : public XdrBackend {
public:
  explicit NaiveBackend(BackendOptions Opts)
      : XdrBackend(makeNaive(Opts)) {}
  std::string name() const override { return "naive"; }

private:
  static BackendOptions makeNaive(BackendOptions O) {
    O.Inline = false;
    O.Memcpy = false;
    O.Chunk = false;
    O.ScratchAlloc = false;
    O.BufferAlias = false;
    O.GatherMinBytes = 0;
    O.PerDatumCalls = true;
    return O;
  }
};

/// Mach 3 typed messages (MIG-style msgh header, host-endian data).  The
/// per-field type descriptor words real Mach messages carry are elided --
/// both ends are compiled from the same IDL, so the layout is static
/// (documented simplification; see DESIGN.md §7).
class MachBackend : public Backend {
public:
  explicit MachBackend(BackendOptions Opts) : Backend(Opts) {}
  std::string name() const override { return "mach"; }
  WireKind wire() const override { return WireKind::MachTyped; }

protected:
  void emitRequestHeader(StubGen &G, const PresCInterface &If,
                         const PresCOperation &Op) override;
  void emitRequestFinish(StubGen &G, const PresCInterface &If,
                         const PresCOperation &Op) override;
  void emitReplyHeader(StubGen &G, const PresCInterface &If,
                       CastExpr *Status) override;
  void emitReplyFinish(StubGen &G, const PresCInterface &If) override;
  void emitReplyHeaderDecode(StubGen &G, const PresCInterface &If) override;
  void emitRequestHeaderDecode(StubGen &G, const PresCInterface &If) override;
};

/// Fluke kernel IPC: the first eight message words model the register
/// window the Fluke path passes in machine registers (paper §3.2,
/// "Specialized Transports"); the FlukeIpcSim transport charges nothing
/// for them.
class FlukeBackend : public Backend {
public:
  explicit FlukeBackend(BackendOptions Opts) : Backend(Opts) {}
  std::string name() const override { return "fluke"; }
  WireKind wire() const override { return WireKind::FlukeReg; }

protected:
  void emitRequestHeader(StubGen &G, const PresCInterface &If,
                         const PresCOperation &Op) override;
  void emitReplyHeader(StubGen &G, const PresCInterface &If,
                       CastExpr *Status) override;
  void emitReplyHeaderDecode(StubGen &G, const PresCInterface &If) override;
  void emitRequestHeaderDecode(StubGen &G, const PresCInterface &If) override;
};

/// Creates a back end by tag name; null for unknown tags.
std::unique_ptr<Backend> createBackend(const std::string &Name,
                                       BackendOptions Opts);

} // namespace flick

#endif // FLICK_BACKENDS_BACKEND_H
