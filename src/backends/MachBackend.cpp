//===- backends/MachBackend.cpp - Mach 3 typed-message framing ------------===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MIG-style Mach 3 message framing: a mach_msg_header_t-shaped header
/// (bits, size, remote/local port, id) in host byte order, followed by the
/// body.  Request ids are 400 + procedure number and replies answer with
/// id + 100, the MIG convention.  The message-size field is patched after
/// the body marshals, like GIOP.
///
//===----------------------------------------------------------------------===//

#include "backends/Backend.h"

using namespace flick;

namespace {

/// The msgh_id base MIG uses for subsystem 400.
constexpr uint32_t MsghIdBase = 400;
constexpr uint32_t ReplyIdDelta = 100;

void patchMsghSize(StubGen &G) {
  CastBuilder &B = G.builder();
  CastExpr *Base = B.add(B.arrow(G.bufExpr(), "data"),
                         B.add(B.id(G.lastMark()), B.num(4)));
  // Like GIOP, the size must cover borrowed gather segments (host-endian
  // Mach data is gatherable); the historical `len` form is kept when the
  // gather pass is off so default output stays byte-identical.
  CastExpr *Len = G.options().GatherMinBytes > 0
                      ? B.call("flick_buf_total", {G.bufExpr()})
                      : B.arrow(G.bufExpr(), "len");
  CastExpr *Size = B.castTo(
      B.prim("uint32_t"),
      B.sub(Len, B.id(G.lastMark())));
  G.stmt(B.exprStmt(B.call("flick_enc_u32ne", {Base, Size})));
}

} // namespace

void MachBackend::emitRequestHeader(StubGen &G, const PresCInterface &If,
                                    const PresCOperation &Op) {
  CastBuilder &B = G.builder();
  G.markPosition();
  G.openChunk(24);
  G.putU32(B.num(0));                       // msgh_bits (simple message)
  G.putU32(B.num(0));                       // msgh_size, patched below
  G.putU32(B.num(1));                       // msgh_remote_port
  G.putU32(B.num(2));                       // msgh_local_port
  G.putU32(B.unum(MsghIdBase + Op.RequestCode)); // msgh_id
  G.putU32(B.id("_xid"));                   // sequence (reserved slot)
  G.closeChunk();
}

void MachBackend::emitRequestFinish(StubGen &G, const PresCInterface &If,
                                    const PresCOperation &Op) {
  patchMsghSize(G);
}

void MachBackend::emitReplyHeader(StubGen &G, const PresCInterface &If,
                                  CastExpr *Status) {
  CastBuilder &B = G.builder();
  G.markPosition();
  G.openChunk(32);
  G.putU32(B.num(0)); // msgh_bits
  G.putU32(B.num(0)); // msgh_size, patched
  G.putU32(B.num(2)); // msgh_remote_port (reply port)
  G.putU32(B.num(0)); // msgh_local_port
  // Reply band id; with one outstanding call per client the specific
  // procedure is implied (MIG would add the request's offset).
  G.putU32(B.unum(MsghIdBase + ReplyIdDelta));
  G.putU32(B.id("_xid"));
  G.putU32(Status);
  G.closeChunk();
}

void MachBackend::emitReplyFinish(StubGen &G, const PresCInterface &If) {
  patchMsghSize(G);
}

void MachBackend::emitReplyHeaderDecode(StubGen &G,
                                        const PresCInterface &If) {
  CastBuilder &B = G.builder();
  G.openChunk(32);
  G.getU32(); // msgh_bits
  G.getU32(); // msgh_size
  G.getU32(); // remote port
  G.getU32(); // local port
  // Any id in the reply band is acceptable for a single outstanding call.
  G.stmt(B.ifStmt(
      B.bin("<", G.getU32(), B.unum(MsghIdBase + ReplyIdDelta)),
      B.ret(B.id("FLICK_ERR_DECODE"))));
  G.getU32(); // sequence
  G.stmt(B.varDecl(B.prim("uint32_t"), "_status", G.getU32()));
  G.closeChunk();
}

void MachBackend::emitRequestHeaderDecode(StubGen &G,
                                          const PresCInterface &If) {
  CastBuilder &B = G.builder();
  G.openChunk(24);
  G.getU32(); // msgh_bits
  G.getU32(); // msgh_size
  G.getU32(); // remote port
  G.getU32(); // local port
  std::string Id = G.freshVar("_id");
  G.stmt(B.varDecl(B.prim("uint32_t"), Id, G.getU32()));
  G.stmt(B.varDecl(B.prim("uint32_t"), "_xid", G.getU32()));
  G.closeChunk();
  G.stmt(B.ifStmt(B.bin("<", B.id(Id), B.unum(MsghIdBase)),
                  B.ret(B.id("FLICK_ERR_NO_SUCH_OP"))));
  G.stmt(B.varDecl(B.prim("uint32_t"), "_opcode",
                   B.sub(B.id(Id), B.unum(MsghIdBase))));
}
