//===- backends/MarshalPlan.h - Marshal-plan IR and analysis ----*- C++ -*-===//
//
// Part of the Flick reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MarshalPlan IR: a per-operation sequence of typed marshal steps
/// built from PRES_C by pure analysis, transformed by the pass pipeline
/// (Passes.h), and lowered to CAST by the plan emitter (PlanEmit.cpp).
/// This is the explicit middle layer the paper's architecture implies
/// between presentation and code: the builder only *describes* the
/// message, the passes decide the optimization strategy, and the emitter
/// owns every chunkAddr/putWire/getWire detail.
///
/// This header also hosts the shared layout analyses (fixed-size
/// measurement, host/wire bit-identity, memcpy run merging) so the
/// builder, the passes, and the emitter agree on one set of predicates --
/// the invariant that keeps plan annotations and emitted code in sync.
///
//===----------------------------------------------------------------------===//

#ifndef FLICK_BACKENDS_MARSHALPLAN_H
#define FLICK_BACKENDS_MARSHALPLAN_H

#include "mint/Wire.h"
#include "pres/Pres.h"
#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace flick {

//===----------------------------------------------------------------------===//
// Shared shape classification
//===----------------------------------------------------------------------===//

/// Broad parameter-shape classification used by the signature tables and
/// the inlining policy.
enum class PKind { Scalar, Str, FixArr, Agg, Opt, Void };

PKind classifyPres(const PresNode *P);

/// True when the subtree contains a discriminated union (unions never
/// share chunks: their size depends on the discriminator).
bool presContainsUnion(const PresNode *P);

inline uint64_t alignUpTo(uint64_t V, uint64_t A) {
  return (V + A - 1) / A * A;
}

bool isAtomicMint(const MintType *T);

/// True for char/octet elements, which arrays pack one byte each with
/// trailing padding only (the XDR `opaque` convention; CDR packs bytes
/// naturally).  Standalone scalars still use atomSize (XDR widens them).
bool isByteElem(const WireLayout &L, const MintType *T);

/// Endianness suffix of the runtime encode/decode primitive family.
const char *endianSuffix(WireKind K);

std::string encFnFor(const WireLayout &L, unsigned Size);
std::string decFnFor(const WireLayout &L, unsigned Size);

/// Chunk alignment for a wire format (4 for XDR, 8 otherwise).
unsigned chunkAlignFor(const WireLayout &L);

//===----------------------------------------------------------------------===//
// Fixed-layout measurement
//===----------------------------------------------------------------------===//
//
// Exact wire offsets of a fixed-size PRES subtree, mirrored exactly by
// StubGen::emitFixedInChunk.  Chunks start aligned to chunkAlign(), so
// member alignment within a chunk is valid whenever MaxAlign <= chunkAlign.

struct FixedLayout {
  uint64_t Size = 0; ///< exact encoded bytes (before chunk padding)
  unsigned MaxAlign = 1;
  bool IsFixed = true; ///< false when the subtree has variable size
};

class LayoutMeasurer {
public:
  explicit LayoutMeasurer(const WireLayout &L) : L(L) {}

  FixedLayout measure(const PresNode *P);

  /// Measures a run of items laid out sequentially (struct fields or
  /// top-level parameters sharing one chunk).
  FixedLayout measureSeq(const std::vector<const PresNode *> &Items);

  bool walk(const PresNode *P, uint64_t &Off, unsigned &MaxAlign);

private:
  bool walkNew(const PresNode *P, uint64_t &Off, unsigned &MaxAlign);

  const WireLayout &L;
  std::set<const PresNode *> Seen;
};

//===----------------------------------------------------------------------===//
// Aggregate bit-identity (USC-style extension; the paper's §3.2 future
// work): a presented aggregate whose host-C layout matches its wire
// layout byte for byte may be block-copied whole.
//===----------------------------------------------------------------------===//

/// Host-C size/alignment of a presented scalar (System V x86-64-ish
/// rules: natural alignment; enums are int-sized).  The generated code
/// carries a static_assert so a mismatched ABI fails the build instead of
/// corrupting messages.
struct CScalar {
  unsigned Size = 0;
  unsigned Align = 0;
};

CScalar hostScalarOf(const PresNode *P);

/// Walks wire and host layouts in lockstep; true when every scalar lands
/// at the same offset with the same size and no byte swap, i.e. the
/// encoded bytes equal the in-memory bytes.
bool walkBitIdentical(const PresNode *P, const WireLayout &L, uint64_t &WOff,
                      uint64_t &COff, unsigned &CAlign);

/// True when arrays of \p Elem may be copied whole with memcpy under
/// \p L; \p StrideOut receives the shared element stride.
bool presBitIdentical(const PresNode *Elem, const WireLayout &L,
                      uint64_t &StrideOut);

//===----------------------------------------------------------------------===//
// Memcpy run merging
//===----------------------------------------------------------------------===//
//
// The memcpy pass views a fixed subtree as a list of host-identical leaf
// byte ranges at wire offsets (relative to the subtree start) and merges
// adjacent ranges into maximal runs.  A subtree whose merged runs reduce
// to one run covering the whole wire image, with the host image the same
// size, is "dense bit-identical": the emitter may replace its per-field
// chunk stores with a single block copy without changing any wire byte
// (there is no padding for closeChunk/putWire to zero).

struct MemcpyRun {
  uint64_t Off = 0;   ///< wire offset relative to the subtree start
  uint64_t Bytes = 0; ///< merged length
};

struct MemcpyRuns {
  /// Maximal merged runs in offset order.  Empty when Identical is false.
  std::vector<MemcpyRun> Runs;
  uint64_t WireSize = 0; ///< walkNew-style wire size of the subtree
  uint64_t HostSize = 0; ///< padded host sizeof
  unsigned Leaves = 0;   ///< scalar leaves merged into the runs
  /// False when some leaf is byte-swapped, differently sized, or at a
  /// diverging host offset -- the subtree cannot block-copy at all.
  bool Identical = false;
};

/// Collects and merges the host-identical leaf runs of \p P.
MemcpyRuns memcpyRunsOf(const PresNode *P, const WireLayout &L);

/// True when \p R merged to a single run covering the whole subtree with
/// matching host size -- the precondition for whole-subtree memcpy.
bool denseBitIdentical(const MemcpyRuns &R);

//===----------------------------------------------------------------------===//
// Structural keys
//===----------------------------------------------------------------------===//

/// A stable string fingerprint of a presented type's *structure*: node
/// kinds, printed C types, field/discriminator names, bounds, and
/// allocation semantics, with cycles broken by back-references.  Two
/// nodes with equal keys marshal identically and share one out-of-line
/// helper (shrinking Table 2 object sizes).
std::string presStructureKey(const PresNode *P);

//===----------------------------------------------------------------------===//
// The plan IR
//===----------------------------------------------------------------------===//

/// Analysis record for one sequence item (a top-level parameter or a
/// struct field).  Computed once by buildSeqPlan; passes only read these
/// facts and write strategy flags into the steps.
struct PlanItem {
  const PresNode *Pres = nullptr; ///< null only in synthetic pass tests
  std::string Name;               ///< dump label
  bool Fixed = false;             ///< wire size is static
  uint64_t FixedSize = 0;         ///< walkNew size when Fixed
  unsigned FixedAlign = 1;        ///< max interior alignment when Fixed
  bool Scalar = false;            ///< Prim/Enum
  bool HasUnion = false;          ///< subtree contains a union
  bool Recursive = false;         ///< already on the emission stack
  /// Lowered through an out-of-line helper call (recursive types always;
  /// every non-scalar aggregate unless the inline pass runs).
  bool OutOfLine = false;
  /// Eligible for chunk coalescing (set by the builder for scalars, by
  /// the inline pass for fixed aggregates).
  bool CoalesceOK = false;
  StorageClass Storage = StorageClass::Unbounded;
  uint64_t MaxBytes = 0; ///< bound when Storage != Unbounded
};

enum class StepKind {
  FixedChunk,
  VariableSegment,
  FramingHook,
  TraceHook,
  GatherRef
};

/// Message-framing positions owned by the concrete back end; the plan
/// records where they sit so coalescing never crosses them and the dump
/// shows the full message.
enum class HookKind { RequestHeader, RequestFinish, ReplyHeader, ReplyFinish };

/// Where a decode-side variable segment places unmarshaled storage.
enum class AllocKind { None, Arena, Heap };

/// One item inside a FixedChunk with its precomputed wire window.
struct PlanMember {
  unsigned Item = 0;     ///< index into SeqPlan::Items
  uint64_t WireOff = 0;  ///< chunk offset before this member's first atom
  uint64_t WireSize = 0; ///< bytes this member advances the chunk cursor
  /// Lower the whole member as one block copy (memcpy run-merge pass).
  bool Memcpy = false;
  uint64_t MemcpyBytes = 0;
};

struct MarshalStep {
  StepKind Kind = StepKind::VariableSegment;

  // FixedChunk: one coalesced buffer check + chunk-relative addressing.
  uint64_t Size = 0;  ///< exact bytes before chunk-alignment padding
  unsigned Align = 1; ///< max member alignment (dump/diagnostics)
  std::vector<PlanMember> Members;

  // VariableSegment: per-item lowering through emitValue.
  unsigned Item = 0;
  /// Bounded->fixed promotion: ensure this many bytes once up front, then
  /// marshal with no further space checks (0 = no promotion).
  uint64_t PreEnsureBytes = 0;
  /// Decode side may alias the request buffer instead of copying.
  bool Alias = false;
  AllocKind Alloc = AllocKind::None;

  // FramingHook.
  HookKind Hook = HookKind::RequestHeader;

  // TraceHook (--trace-hooks): lowers to flick_span_begin(kind, label)
  // when TraceBegin, flick_span_end() otherwise.
  bool TraceBegin = false;
  std::string TraceKind;  ///< span-kind enumerator, e.g. "FLICK_SPAN_MARSHAL"
  std::string TraceLabel; ///< span name literal (the plan label)

  // GatherRef (--gather-min-bytes): an encode-side VariableSegment whose
  // dense bulk copies should instead *borrow* the presented storage via
  // flick_buf_ref when at least this many bytes are in play (the emitter
  // keeps the copying path as the small-size / ref-overflow fallback).
  uint64_t GatherMinBytes = 0;
};

/// The plan for one generated function body (or one struct interior).
struct SeqPlan {
  std::string Label; ///< "<op>_encode_request" etc.; empty for interiors
  bool Encode = false;
  bool ServerSide = false;
  std::vector<PlanItem> Items;
  std::vector<MarshalStep> Steps;
};

/// Builds the strategy-neutral plan: analyzes every item and emits one
/// VariableSegment per non-void item (passes introduce chunks and
/// annotations afterwards).  \p Active is the set of nodes currently
/// being emitted (recursion context).  \p Names may be empty or parallel
/// to \p Items.
SeqPlan buildSeqPlan(const std::vector<const PresNode *> &Items,
                     const std::vector<std::string> &Names,
                     const WireLayout &L, bool Encode, bool ServerSide,
                     const std::set<const PresNode *> &Active);

/// Renders the step list as stable text (one line per step, two-space
/// indent) for --dump-marshal-plan and the golden tests.
std::string dumpSeqPlanSteps(const SeqPlan &Plan);

/// Renders a full before/after record: header line, item table, and both
/// step lists.
std::string dumpSeqPlan(const SeqPlan &Before, const SeqPlan &After);

//===----------------------------------------------------------------------===//
// Shared policy predicates
//===----------------------------------------------------------------------===//
//
// The bounded/alias predicates are consulted both by the passes (to
// annotate the plan) and by the emitter (to generate the code), so the
// dumped plan can never drift from the emitted strategy.

/// Bytes to pre-ensure for a bounded variable segment, or 0 when the
/// segment does not qualify under \p Threshold (paper §3.1's 8KB rule;
/// the +16 covers framing slop).
uint64_t boundedPreEnsureBytes(const PresNode *P, const WireLayout &L,
                               uint64_t Threshold);

/// Type-level half of the counted-array alias decision: element bytes are
/// usable in place straight from the wire.
bool aliasableCountedElem(const PresCounted *P, const WireLayout &L);

/// Type-level half of the string alias decision (the wire must carry the
/// NUL for the presented char* to point into the buffer).
bool aliasableString(const PresString *P, const WireLayout &L);

/// True when an encode-side array segment of \p P's elements would lower
/// to a single dense memcpy from presented storage (byte elements, or --
/// when the memcpy pass is on -- host-identical atoms / bit-identical
/// aggregates), i.e. the bulk copy the gather pass can replace with a
/// borrowed reference.
bool gatherableSegment(const PresNode *P, const WireLayout &L, bool MemcpyOn);

} // namespace flick

#endif // FLICK_BACKENDS_MARSHALPLAN_H
